// OwnerUploader invariants (DP-Sync record-synchronization policies,
// paper Section 8) plus UploadPolicyConfig validation:
//  * the emitted batch-size sequence is a function of the arrival *count*
//    process and the policy noise only — never of record contents — and
//    under the fixed-size policy not even of the counts;
//  * pending() tracks the Theorem-15 logical gap (records arrived minus
//    real records uploaded) exactly, across all three policies;
//  * Config::Validate rejects the degenerate policy parameters.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/upload_policy.h"
#include "src/oblivious/formats.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

UploadPolicyConfig Policy(UploadPolicyKind kind) {
  UploadPolicyConfig p;
  p.kind = kind;
  p.eps_sync = 1.0;
  p.sync_interval = 3;
  p.sync_theta = 6;
  return p;
}

/// Per-step arrival lists with the given counts; record contents are drawn
/// from `rng` so two calls with different seeds share counts but nothing
/// else.
std::vector<std::vector<LogicalRecord>> StreamWithCounts(
    const std::vector<size_t>& counts, Rng* rng) {
  std::vector<std::vector<LogicalRecord>> stream(counts.size());
  Word rid = 1;
  for (size_t t = 0; t < counts.size(); ++t) {
    for (size_t i = 0; i < counts[t]; ++i) {
      stream[t].push_back({t + 1, rid++,
                           static_cast<Word>(rng->Uniform(1u << 20)),
                           static_cast<Word>(rng->Uniform(1000)),
                           static_cast<Word>(rng->Uniform(1u << 30))});
    }
  }
  return stream;
}

std::vector<uint64_t> EmittedSizes(
    const UploadPolicyConfig& policy,
    const std::vector<std::vector<LogicalRecord>>& stream,
    uint64_t policy_seed, uint64_t share_seed) {
  OwnerUploader up(policy, /*fixed_rows=*/4, /*is_public=*/false,
                   policy_seed);
  Rng share_rng(share_seed);
  std::vector<uint64_t> sizes;
  for (size_t t = 0; t < stream.size(); ++t) {
    sizes.push_back(up.BuildBatch(t + 1, stream[t], &share_rng).size());
  }
  return sizes;
}

class UploadPolicyKindTest
    : public ::testing::TestWithParam<UploadPolicyKind> {};

TEST_P(UploadPolicyKindTest, SizesIgnoreRecordContents) {
  // Same per-step counts, completely different record contents and share
  // randomness: the size sequences must be identical — batch sizes may
  // depend only on the (DP-protected) count process and the policy noise.
  const std::vector<size_t> counts = {3, 0, 7, 1, 0, 0, 12, 2, 5, 0, 4, 9};
  Rng content_a(101), content_b(202);
  const auto stream_a = StreamWithCounts(counts, &content_a);
  const auto stream_b = StreamWithCounts(counts, &content_b);
  const UploadPolicyConfig policy = Policy(GetParam());
  EXPECT_EQ(EmittedSizes(policy, stream_a, /*policy_seed=*/7, 1),
            EmittedSizes(policy, stream_b, /*policy_seed=*/7, 2));
}

TEST_P(UploadPolicyKindTest, PendingMatchesTheorem15LogicalGap) {
  // pending() is DP-Sync's logical gap: everything arrived and not yet
  // uploaded as a *real* row. Recover each emitted batch and keep the exact
  // ledger.
  const std::vector<size_t> counts = {5, 2, 0, 9, 3, 0, 0, 8, 1, 6, 0, 2,
                                      4, 0, 7};
  Rng content(55);
  const auto stream = StreamWithCounts(counts, &content);
  OwnerUploader up(Policy(GetParam()), /*fixed_rows=*/4,
                   /*is_public=*/false, /*seed=*/9);
  Rng share_rng(3);
  uint64_t arrived = 0, uploaded_real = 0;
  for (size_t t = 0; t < stream.size(); ++t) {
    arrived += stream[t].size();
    const SharedRows batch = up.BuildBatch(t + 1, stream[t], &share_rng);
    for (size_t r = 0; r < batch.size(); ++r) {
      uploaded_real += batch.RecoverRow(r)[kSrcValidCol] & 1;
    }
    EXPECT_EQ(up.pending(), arrived - uploaded_real) << "step " << t + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, UploadPolicyKindTest,
                         ::testing::Values(UploadPolicyKind::kFixedSize,
                                           UploadPolicyKind::kDpTimerSync,
                                           UploadPolicyKind::kDpAntSync),
                         [](const auto& param_info) -> std::string {
                           switch (param_info.param) {
                             case UploadPolicyKind::kFixedSize:
                               return "FixedSize";
                             case UploadPolicyKind::kDpTimerSync:
                               return "DpTimerSync";
                             case UploadPolicyKind::kDpAntSync:
                               return "DpAntSync";
                           }
                           return "Unknown";
                         });

TEST(UploadPolicyTest, FixedSizePolicyIgnoresArrivalCountsEntirely) {
  // The non-DP baseline pads every step to exactly C_r rows whatever
  // arrives — its size sequence is a public constant.
  Rng content_a(1), content_b(2);
  const auto heavy = StreamWithCounts({9, 9, 9, 9, 9, 9}, &content_a);
  const auto light = StreamWithCounts({0, 1, 0, 0, 2, 0}, &content_b);
  const UploadPolicyConfig policy = Policy(UploadPolicyKind::kFixedSize);
  const auto sizes = EmittedSizes(policy, heavy, 7, 1);
  EXPECT_EQ(sizes, EmittedSizes(policy, light, 7, 2));
  for (const uint64_t s : sizes) EXPECT_EQ(s, 4u);
}

TEST(UploadPolicyTest, PolicyEpsilonHelperMatchesUploader) {
  for (const UploadPolicyKind kind :
       {UploadPolicyKind::kFixedSize, UploadPolicyKind::kDpTimerSync,
        UploadPolicyKind::kDpAntSync}) {
    const UploadPolicyConfig policy = Policy(kind);
    OwnerUploader up(policy, 4, false, 1);
    EXPECT_EQ(UploadPolicyEpsilon(policy), up.PolicyEpsilon());
  }
  EXPECT_EQ(UploadPolicyEpsilon(Policy(UploadPolicyKind::kFixedSize)), 0.0);
}

// ---------------------------------------------------------------------------
// UploadPolicyConfig validation
// ---------------------------------------------------------------------------

TEST(UploadPolicyValidationTest, RejectsNonPositiveEpsForDpPolicies) {
  for (const UploadPolicyKind kind :
       {UploadPolicyKind::kDpTimerSync, UploadPolicyKind::kDpAntSync}) {
    IncShrinkConfig cfg = DefaultTpcDsConfig();
    cfg.upload_policy1 = Policy(kind);
    ASSERT_TRUE(cfg.Validate().ok());
    cfg.upload_policy1.eps_sync = 0;
    EXPECT_FALSE(cfg.Validate().ok());
    cfg.upload_policy1.eps_sync = -0.5;
    EXPECT_FALSE(cfg.Validate().ok());
  }
  // The fixed-size policy carries no budget: eps_sync is ignored.
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.upload_policy2.kind = UploadPolicyKind::kFixedSize;
  cfg.upload_policy2.eps_sync = -1;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(UploadPolicyValidationTest, RejectsZeroSyncInterval) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.upload_policy2 = Policy(UploadPolicyKind::kDpTimerSync);
  ASSERT_TRUE(cfg.Validate().ok());
  cfg.upload_policy2.sync_interval = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  // Interval 0 is only meaningful for the timer policy.
  cfg.upload_policy2.kind = UploadPolicyKind::kDpAntSync;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(UploadPolicyValidationTest, RejectsNegativeSyncTheta) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.upload_policy1 = Policy(UploadPolicyKind::kDpAntSync);
  ASSERT_TRUE(cfg.Validate().ok());
  cfg.upload_policy1.sync_theta = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.upload_policy1.sync_theta = 0;  // boundary: a zero threshold is legal
  EXPECT_TRUE(cfg.Validate().ok());
  // Theta only gates the SVT policy.
  cfg.upload_policy1.kind = UploadPolicyKind::kDpTimerSync;
  cfg.upload_policy1.sync_theta = -1;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(UploadPolicyValidationTest, BothPoliciesAreChecked) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.upload_policy2 = Policy(UploadPolicyKind::kDpAntSync);
  cfg.upload_policy2.sync_theta = -3;
  EXPECT_FALSE(cfg.Validate().ok());
}

}  // namespace
}  // namespace incshrink
