// Dedicated coverage for two previously untested surfaces:
//
//   1. Engine::AnswerAdHocQuery — the KI-3 claim that a rich class of
//      rewritten selections (date-range / key restrictions) is answerable
//      from the materialized view alone: empty-view behavior, out-of-window
//      ranges, and exact partition identities of the oblivious counts.
//
//   2. MultiLevelPipeline overflow handling — the owners' fixed-size upload
//      batches buffer arrival bursts in overflow1_/overflow2_ and drain
//      them over subsequent steps; no logical record may be dropped.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/core/multilevel.h"
#include "src/oblivious/formats.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Engine::AnswerAdHocQuery
// ---------------------------------------------------------------------------

GeneratedWorkload AdHocWorkload() {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 55;
  return GenerateTpcDs(p);
}

TEST(AdHocQueryTest, EmptyViewAnswersZeroBeforeAnyStep) {
  SynchronousDeployment deployment(DefaultTpcDsConfig());
  Engine& engine = deployment.engine();
  const Engine::AdHocResult r = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  EXPECT_EQ(r.answer, 0u);
  EXPECT_EQ(r.truth, 0u);
  EXPECT_GE(r.query_seconds, 0.0);
}

TEST(AdHocQueryTest, EmptyViewAnswersZeroWhileTruthGrows) {
  // A timer that never fires (and no cache flush) keeps the view empty for
  // the whole run: the server's answer stays 0 while ground truth grows.
  const GeneratedWorkload w = AdHocWorkload();
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.timer_T = 100000;
  cfg.flush_interval = 0;
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  Engine& engine = deployment.engine();
  ASSERT_EQ(engine.view().size(), 0u);
  const Engine::AdHocResult r = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  EXPECT_EQ(r.answer, 0u);
  EXPECT_EQ(r.truth, w.total_view_entries);
}

TEST(AdHocQueryTest, OutOfWindowDateRangeAnswersExactZero) {
  // Generated dates stay below steps + window; a far-future range matches
  // neither truth pairs nor any real view row, and dummy rows never count
  // (isView = 0) — so the oblivious answer is exactly 0, not merely small.
  const GeneratedWorkload w = AdHocWorkload();
  SynchronousDeployment deployment(DefaultTpcDsConfig());
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  Engine& engine = deployment.engine();
  ASSERT_GT(engine.view().size(), 0u);
  const Engine::AdHocResult r = engine.AnswerAdHocQuery(
      AnalystQuery::CountDateRange(1u << 20, 1u << 21));
  EXPECT_EQ(r.answer, 0u);
  EXPECT_EQ(r.truth, 0u);
}

TEST(AdHocQueryTest, CountAllMatchesStandingQueryAnswer) {
  const GeneratedWorkload w = AdHocWorkload();
  SynchronousDeployment deployment(DefaultTpcDsConfig());
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  Engine& engine = deployment.engine();
  const Engine::AdHocResult all = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  // Same view, same oblivious count: must agree with the last step's
  // standing COUNT(*) answer and with the exact stream truth.
  EXPECT_EQ(all.answer, engine.step_metrics().back().view_answer);
  EXPECT_EQ(all.truth, w.total_view_entries);
}

TEST(AdHocQueryTest, DateRangePartitionIsExact) {
  // Every real view row has one T2-side date, so splitting the full date
  // domain partitions both the oblivious answer and the truth exactly.
  const GeneratedWorkload w = AdHocWorkload();
  SynchronousDeployment deployment(DefaultTpcDsConfig());
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  Engine& engine = deployment.engine();
  const Word mid = 20;
  const Engine::AdHocResult all = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  const Engine::AdHocResult lo =
      engine.AnswerAdHocQuery(AnalystQuery::CountDateRange(0, mid));
  const Engine::AdHocResult hi =
      engine.AnswerAdHocQuery(AnalystQuery::CountDateRange(mid + 1, 0xFFFFFFFFu));
  EXPECT_EQ(lo.answer + hi.answer, all.answer);
  EXPECT_EQ(lo.truth + hi.truth, all.truth);
  EXPECT_GT(all.truth, 0u);
}

TEST(AdHocQueryTest, KeyEqualsRestrictionsAreConsistent) {
  const GeneratedWorkload w = AdHocWorkload();
  SynchronousDeployment deployment(DefaultTpcDsConfig());
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  Engine& engine = deployment.engine();
  const Engine::AdHocResult all = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  // TPC-ds keys have join multiplicity 1: every per-key slice answers 0 or
  // 1, and an absent key answers exactly 0.
  uint64_t matched = 0;
  for (Word key = 1; key <= 30; ++key) {
    const Engine::AdHocResult r =
        engine.AnswerAdHocQuery(AnalystQuery::CountKeyEquals(key));
    EXPECT_LE(r.answer, 1u);
    EXPECT_LE(r.truth, 1u);
    matched += r.answer;
  }
  EXPECT_LE(matched, all.answer);
  const Engine::AdHocResult absent =
      engine.AnswerAdHocQuery(AnalystQuery::CountKeyEquals(0x7FFFFFF0u));
  EXPECT_EQ(absent.answer, 0u);
  EXPECT_EQ(absent.truth, 0u);
}

// ---------------------------------------------------------------------------
// MultiLevelPipeline overflow draining
// ---------------------------------------------------------------------------

MultiLevelPipeline::Config OverflowConfig() {
  MultiLevelPipeline::Config cfg;
  cfg.eps1 = 20;  // near-exact DP so draining is the only effect under test
  cfg.eps2 = 20;
  cfg.filter = FilterSpec{100, 0xFFFFFFFF};
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.omega = 1;
  cfg.budget_b = 10;
  cfg.window_steps = 8;
  cfg.timer_T1 = 2;
  cfg.timer_T2 = 3;
  cfg.upload_rows_t1 = 2;  // burst capacity: bursts must queue in overflow
  cfg.upload_rows_t2 = 2;
  return cfg;
}

/// Counts real (isView = 1) rows in a recovered view.
uint64_t CountRealRows(const MaterializedView& view) {
  uint64_t real = 0;
  const SharedRows& rows = view.rows();
  for (size_t r = 0; r < rows.size(); ++r) {
    real += rows.RecoverRow(r)[kViewIsViewCol] & 1;
  }
  return real;
}

TEST(MultiLevelOverflowTest, BurstOnT1DrainsWithoutRecordLoss) {
  // 6 filter-passing records arrive in step 1 against an upload capacity of
  // 2 rows/step: 4 must queue in overflow1_ and drain over steps 2-3. With
  // near-exact DP every one of them must eventually reach V1.
  MultiLevelPipeline pipeline(OverflowConfig());
  std::vector<LogicalRecord> burst;
  for (Word i = 0; i < 6; ++i) {
    burst.push_back({1, /*rid=*/100 + i, /*key=*/200 + i, /*date=*/1,
                     /*payload=*/500});
  }
  ASSERT_TRUE(pipeline.Step(burst, {}).ok());
  for (int t = 0; t < 29; ++t) {
    ASSERT_TRUE(pipeline.Step({}, {}).ok());
  }
  EXPECT_EQ(CountRealRows(pipeline.v1()), 6u);
}

TEST(MultiLevelOverflowTest, WithoutBurstSameRecordsArriveDirectly) {
  // Control: the same 6 records spread at <= capacity arrive without ever
  // touching the overflow queue and produce the same V1 content count.
  MultiLevelPipeline pipeline(OverflowConfig());
  Word i = 0;
  for (int t = 0; t < 3; ++t) {
    std::vector<LogicalRecord> two;
    for (int k = 0; k < 2; ++k, ++i) {
      two.push_back({static_cast<uint64_t>(t + 1), 100 + i, 200 + i, 1, 500});
    }
    ASSERT_TRUE(pipeline.Step(two, {}).ok());
  }
  for (int t = 0; t < 27; ++t) {
    ASSERT_TRUE(pipeline.Step({}, {}).ok());
  }
  EXPECT_EQ(CountRealRows(pipeline.v1()), 6u);
}

TEST(MultiLevelOverflowTest, BurstOnT2DrainsThroughJoin) {
  // T2-side burst: 2 allegations with 3 awards each (6 award records) hit
  // the 2-row T2 capacity in one step, so 4 awards queue in overflow2_.
  // The first upload batch carries only allegation #0's first two awards —
  // any view answer above 2 proves drained awards joined downstream.
  MultiLevelPipeline::Config cfg = OverflowConfig();
  cfg.omega = 4;  // join multiplicity is 3 here; don't truncate true pairs
  MultiLevelPipeline pipeline(cfg);
  std::vector<LogicalRecord> t1;
  std::vector<LogicalRecord> t2;
  for (Word a = 0; a < 2; ++a) {
    t1.push_back({1, 10 + a, 40 + a, 1, 500});  // passes the filter
    for (Word j = 0; j < 3; ++j) {
      t2.push_back({1, 20 + 3 * a + j, 40 + a, 2, 0});
    }
  }
  ASSERT_TRUE(pipeline.Step(t1, t2).ok());
  for (int t = 0; t < 35; ++t) {
    ASSERT_TRUE(pipeline.Step({}, {}).ok());
  }
  const StepMetrics& last = pipeline.step_metrics().back();
  EXPECT_EQ(last.true_count, 6u);
  EXPECT_GE(last.view_answer, 3u);  // > 2 is only reachable via overflow2_
  EXPECT_LE(last.view_answer, 6u);
}

TEST(MultiLevelOverflowTest, SustainedOverCapacityStreamKeepsDraining) {
  // 3 arrivals/step against capacity 2: the overflow queue grows during the
  // feed phase and fully drains during the quiet tail; nothing is lost.
  MultiLevelPipeline pipeline(OverflowConfig());
  Word i = 0;
  for (int t = 0; t < 8; ++t) {
    std::vector<LogicalRecord> three;
    for (int k = 0; k < 3; ++k, ++i) {
      three.push_back(
          {static_cast<uint64_t>(t + 1), 1000 + i, 2000 + i, 1, 500});
    }
    ASSERT_TRUE(pipeline.Step(three, {}).ok());
  }
  // 24 records total, 16 uploaded during the feed; 8 queued. Drain.
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(pipeline.Step({}, {}).ok());
  }
  EXPECT_EQ(CountRealRows(pipeline.v1()), 24u);
}

}  // namespace
}  // namespace incshrink
