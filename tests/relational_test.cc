#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/relational/encode.h"
#include "src/relational/growing_table.h"
#include "src/relational/query.h"
#include "src/relational/schema.h"

namespace incshrink {
namespace {

TEST(SchemaTest, ColumnsAndLookup) {
  Schema s({{"pid", ColumnType::kId},
            {"sale_date", ColumnType::kDate},
            {"amount", ColumnType::kUInt32}});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.name(1), "sale_date");
  EXPECT_EQ(s.type(0), ColumnType::kId);
  ASSERT_TRUE(s.IndexOf("amount").ok());
  EXPECT_EQ(*s.IndexOf("amount"), 2u);
  EXPECT_EQ(s.IndexOf("missing").status().code(), StatusCode::kNotFound);
}

TEST(GrowingTableTest, InsertAndSnapshot) {
  GrowingTable t("sales");
  t.Insert({1, 10, 100, 5, 0});
  t.Insert({2, 11, 100, 6, 0});
  t.Insert({3, 12, 200, 7, 0});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.SnapshotSize(1), 1u);
  EXPECT_EQ(t.SnapshotSize(2), 2u);
  EXPECT_EQ(t.SnapshotSize(99), 3u);
  ASSERT_NE(t.FindByKey(100), nullptr);
  EXPECT_EQ(t.FindByKey(100)->size(), 2u);
  EXPECT_EQ(t.FindByKey(999), nullptr);
}

TEST(WindowJoinQueryTest, MatchSemantics) {
  WindowJoinQuery q{0, 10, true};
  LogicalRecord a{1, 1, 7, 100, 0};
  LogicalRecord b{1, 2, 7, 105, 0};
  EXPECT_TRUE(q.Matches(a, b));
  b.date = 111;
  EXPECT_FALSE(q.Matches(a, b));  // delta 11 > 10
  b.date = 99;
  EXPECT_FALSE(q.Matches(a, b));  // negative delta
  b.date = 105;
  b.key = 8;
  EXPECT_FALSE(q.Matches(a, b));  // key mismatch
  WindowJoinQuery no_window{0, 10, false};
  b.key = 7;
  b.date = 5000;
  EXPECT_TRUE(no_window.Matches(a, b));
}

class WindowJoinCounterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowJoinCounterTest, IncrementalMatchesFullRecount) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  WindowJoinQuery q{0, 10, true};
  WindowJoinCounter counter(q);
  std::vector<LogicalRecord> all1, all2;
  Word rid = 1;
  for (uint64_t t = 1; t <= 40; ++t) {
    std::vector<LogicalRecord> n1, n2;
    const uint64_t c1 = rng.Uniform(5);
    const uint64_t c2 = rng.Uniform(5);
    for (uint64_t i = 0; i < c1; ++i) {
      n1.push_back({t, rid++, 1 + static_cast<Word>(rng.Uniform(10)),
                    static_cast<Word>(t + rng.Uniform(3)), 0});
    }
    for (uint64_t i = 0; i < c2; ++i) {
      n2.push_back({t, rid++, 1 + static_cast<Word>(rng.Uniform(10)),
                    static_cast<Word>(t + rng.Uniform(12)), 0});
    }
    counter.Step(n1, n2);
    all1.insert(all1.end(), n1.begin(), n1.end());
    all2.insert(all2.end(), n2.begin(), n2.end());
    ASSERT_EQ(counter.count(),
              WindowJoinCounter::CountFull(q, all1, all2))
        << "step " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowJoinCounterTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99));

TEST(WindowJoinCounterTest, SameStepPairsCountedOnce) {
  WindowJoinQuery q{0, 10, true};
  WindowJoinCounter counter(q);
  // One matching pair arriving in the same step.
  counter.Step({{1, 1, 7, 100, 0}}, {{1, 2, 7, 103, 0}});
  EXPECT_EQ(counter.count(), 1u);
  // A later record joining the old one.
  counter.Step({}, {{2, 3, 7, 104, 0}});
  EXPECT_EQ(counter.count(), 2u);
}

TEST(EncodeTest, SourceRowRoundTrip) {
  LogicalRecord rec{3, 42, 1234, 99, 777};
  const Row row = EncodeSourceRow(rec);
  EXPECT_EQ(row.size(), kSrcWidth);
  EXPECT_EQ(row[kSrcValidCol], 1u);
  EXPECT_EQ(row[kSrcKeyCol], 1234u);
  EXPECT_EQ(row[kSrcDateCol], 99u);
  EXPECT_EQ(row[kSrcRidCol], 42u);
  EXPECT_EQ(row[kSrcPayloadCol], 777u);
}

TEST(EncodeTest, DummyRowsAreInvalidWithHighKeys) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Row d = MakeDummySourceRow(&rng);
    EXPECT_EQ(d[kSrcValidCol], 0u);
    EXPECT_GE(d[kSrcKeyCol], 0x40000000u);  // above the real key space
    EXPECT_LT(d[kSrcKeyCol], 0x80000000u);  // fits the composite sort key
  }
}

}  // namespace
}  // namespace incshrink
