// Parallel-equivalence suite: the deterministic parallel execution layer
// must be *observationally invisible*. Every comparison here is exact
// (`EXPECT_EQ` on doubles — bit identity, not closeness):
//
//   * RunWorkloadAveraged at 1, 2 and 8 threads == the no-thread serial
//     reference, for both datasets under Timer / ANT / EP strategies;
//   * RunSeedSweep / RunConfigSweep results are independent of the worker
//     count;
//   * DeploymentFleet per-tenant summaries AND transcripts match N
//     standalone single-engine runs with the same derived seeds, at any
//     thread count.
//
// This suite (with determinism_test) is what the ThreadSanitizer CI job
// runs: a data race that perturbs any result bit fails loudly here.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool basics
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ResolveThreadCountHonorsRequest) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_GE(ResolveThreadCount(0), 1);  // env/hardware fallback is positive
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeAndReuse) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
  // The same pool handles many fork-joins back to back.
  std::vector<int> out(64, 0);
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(out.size(),
                     [&](size_t i) { out[i] = static_cast<int>(i) + round; });
    for (size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i) + round);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<size_t> count{0};
  pool.ParallelFor(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16u);
}

// ---------------------------------------------------------------------------
// Exact-equality helpers
// ---------------------------------------------------------------------------

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

void ExpectAveragedIdentical(const AveragedRun& a, const AveragedRun& b) {
  EXPECT_EQ(a.l1_error, b.l1_error);
  EXPECT_EQ(a.relative_error, b.relative_error);
  EXPECT_EQ(a.qet_seconds, b.qet_seconds);
  EXPECT_EQ(a.transform_seconds, b.transform_seconds);
  EXPECT_EQ(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.view_mb, b.view_mb);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.l1_error_sd, b.l1_error_sd);
  EXPECT_EQ(a.relative_error_sd, b.relative_error_sd);
  EXPECT_EQ(a.qet_seconds_sd, b.qet_seconds_sd);
  EXPECT_EQ(a.transform_seconds_sd, b.transform_seconds_sd);
  EXPECT_EQ(a.shrink_seconds_sd, b.shrink_seconds_sd);
  EXPECT_EQ(a.total_mpc_seconds_sd, b.total_mpc_seconds_sd);
  EXPECT_EQ(a.total_query_seconds_sd, b.total_query_seconds_sd);
  EXPECT_EQ(a.view_mb_sd, b.view_mb_sd);
  EXPECT_EQ(a.updates_sd, b.updates_sd);
  EXPECT_EQ(a.num_seeds, b.num_seeds);
}

GeneratedWorkload SmallTpcDs() {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 21;
  return GenerateTpcDs(p);
}

GeneratedWorkload SmallCpdb() {
  CpdbParams p;
  p.steps = 24;
  p.seed = 31;
  return GenerateCpdb(p);
}

// ---------------------------------------------------------------------------
// RunWorkloadAveraged: parallel == serial, bit for bit
// ---------------------------------------------------------------------------

void CheckAveragedEquivalence(const IncShrinkConfig& base,
                              const GeneratedWorkload& workload) {
  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kEp}) {
    IncShrinkConfig cfg = base;
    cfg.strategy = strategy;
    const AveragedRun serial = RunWorkloadAveragedSerial(cfg, workload, 3);
    EXPECT_EQ(serial.num_seeds, 3);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(StrategyName(strategy)) + " threads=" +
                   std::to_string(threads));
      const AveragedRun parallel =
          RunWorkloadAveraged(cfg, workload, 3, threads);
      ExpectAveragedIdentical(serial, parallel);
    }
  }
}

TEST(ParallelEquivalenceTest, AveragedRunMatchesSerialTpcDs) {
  CheckAveragedEquivalence(DefaultTpcDsConfig(), SmallTpcDs());
}

TEST(ParallelEquivalenceTest, AveragedRunMatchesSerialCpdb) {
  CheckAveragedEquivalence(DefaultCpdbConfig(), SmallCpdb());
}

TEST(ParallelEquivalenceTest, SeedSweepThreadCountInvariant) {
  const GeneratedWorkload workload = SmallTpcDs();
  const IncShrinkConfig cfg = DefaultTpcDsConfig();
  const std::vector<RunSummary> ref = RunSeedSweep(cfg, workload, 4, 1);
  ASSERT_EQ(ref.size(), 4u);
  for (const int threads : {2, 8}) {
    const std::vector<RunSummary> got =
        RunSeedSweep(cfg, workload, 4, threads);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      SCOPED_TRACE("seed index " + std::to_string(i));
      ExpectSummaryIdentical(ref[i], got[i]);
    }
  }
}

TEST(ParallelEquivalenceTest, SeedSweepEntryMatchesStandaloneReplica) {
  // Slot i of a sweep is exactly the engine run with DeriveReplicaSeed(i),
  // whichever worker computed it.
  const GeneratedWorkload workload = SmallCpdb();
  const IncShrinkConfig cfg = DefaultCpdbConfig();
  const std::vector<RunSummary> sweep = RunSeedSweep(cfg, workload, 3, 8);
  for (int i = 0; i < 3; ++i) {
    IncShrinkConfig replica = cfg;
    replica.seed = DeriveReplicaSeed(cfg.seed, i);
    SCOPED_TRACE("replica " + std::to_string(i));
    ExpectSummaryIdentical(RunWorkload(replica, workload),
                           sweep[static_cast<size_t>(i)]);
  }
}

TEST(ParallelEquivalenceTest, ConfigSweepMatchesPerPointAveraged) {
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  std::vector<SweepPoint> points;
  IncShrinkConfig a = DefaultTpcDsConfig();
  a.strategy = Strategy::kDpTimer;
  IncShrinkConfig b = DefaultTpcDsConfig();
  b.strategy = Strategy::kDpAnt;
  b.eps = 0.5;
  IncShrinkConfig c = DefaultCpdbConfig();
  c.strategy = Strategy::kDpTimer;
  points.push_back({"a", a, &tpcds, 3});
  points.push_back({"b", b, &tpcds, 2});
  points.push_back({"c", c, &cpdb, 1});
  const std::vector<AveragedRun> swept = RunConfigSweep(points, 8);
  ASSERT_EQ(swept.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    ExpectAveragedIdentical(
        RunWorkloadAveragedSerial(points[i].config, *points[i].workload,
                                  points[i].num_seeds),
        swept[i]);
  }
}

// ---------------------------------------------------------------------------
// DeploymentFleet: concurrent tenants == standalone engines
// ---------------------------------------------------------------------------

std::vector<DeploymentFleet::TenantSpec> MixedTenants(
    const GeneratedWorkload* tpcds, const GeneratedWorkload* cpdb) {
  IncShrinkConfig t1 = DefaultTpcDsConfig();
  t1.strategy = Strategy::kDpTimer;
  IncShrinkConfig t2 = DefaultTpcDsConfig();
  t2.strategy = Strategy::kDpAnt;
  t2.eps = 0.8;
  IncShrinkConfig t3 = DefaultCpdbConfig();
  t3.strategy = Strategy::kDpTimer;
  IncShrinkConfig t4 = DefaultTpcDsConfig();
  t4.strategy = Strategy::kEp;
  return {{"tpcds-timer", t1, tpcds},
          {"tpcds-ant", t2, tpcds},
          {"cpdb-timer", t3, cpdb},
          {"tpcds-ep", t4, tpcds}};
}

TEST(DeploymentFleetTest, DerivedSeedsAreDistinct) {
  for (const uint64_t root : {0ull, 42ull, 0xFEEDFACEull}) {
    std::vector<uint64_t> seeds;
    for (size_t i = 0; i < 64; ++i)
      seeds.push_back(DeriveTenantSeed(root, i));
    for (size_t i = 0; i < seeds.size(); ++i) {
      for (size_t j = i + 1; j < seeds.size(); ++j) {
        EXPECT_NE(seeds[i], seeds[j]) << i << "," << j;
      }
    }
  }
}

TEST(DeploymentFleetTest, MatchesStandaloneEnginesWithDerivedSeeds) {
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 99;
  DeploymentFleet fleet(MixedTenants(&tpcds, &cpdb),
                        {kRoot, /*num_threads=*/4});
  fleet.RunAll();
  EXPECT_TRUE(fleet.done());

  const std::vector<DeploymentFleet::TenantSpec> specs =
      MixedTenants(&tpcds, &cpdb);
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    IncShrinkConfig cfg = specs[i].config;
    cfg.seed = DeriveTenantSeed(kRoot, i);
    EXPECT_EQ(fleet.tenant_seed(i), cfg.seed);
    SynchronousDeployment deployment(cfg);
    ASSERT_TRUE(
        deployment.Run(specs[i].workload->t1, specs[i].workload->t2).ok());
    const Engine& engine = deployment.engine();
    ExpectSummaryIdentical(engine.Summary(), fleet.TenantSummary(i));
    // The whole observable transcript matches, event for event.
    EXPECT_EQ(engine.transcript(), fleet.engine(i).transcript());
    EXPECT_EQ(engine.per_step_real_entries(),
              fleet.engine(i).per_step_real_entries());
  }
}

TEST(DeploymentFleetTest, ThreadCountInvariant) {
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  DeploymentFleet ref(MixedTenants(&tpcds, &cpdb), {7, /*num_threads=*/1});
  ref.RunAll();
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DeploymentFleet fleet(MixedTenants(&tpcds, &cpdb), {7, threads});
    fleet.RunAll();
    ASSERT_EQ(fleet.num_tenants(), ref.num_tenants());
    for (size_t i = 0; i < ref.num_tenants(); ++i) {
      SCOPED_TRACE("tenant " + std::to_string(i));
      ExpectSummaryIdentical(ref.TenantSummary(i), fleet.TenantSummary(i));
      EXPECT_EQ(ref.engine(i).transcript(), fleet.engine(i).transcript());
    }
  }
}

TEST(DeploymentFleetTest, StepAllCountsAndRaggedStreams) {
  // Tenants with different stream lengths: StepAll reports how many are
  // still live, and AggregateStats counts total tenant-steps.
  const GeneratedWorkload tpcds = SmallTpcDs();  // 40 steps
  const GeneratedWorkload cpdb = SmallCpdb();    // 24 steps
  IncShrinkConfig a = DefaultTpcDsConfig();
  IncShrinkConfig b = DefaultCpdbConfig();
  DeploymentFleet fleet({{"long", a, &tpcds}, {"short", b, &cpdb}},
                        {5, /*num_threads=*/2});
  size_t rounds = 0;
  size_t stepped = 0;
  while (size_t n = fleet.StepAll()) {
    stepped += n;
    ++rounds;
    ASSERT_LE(rounds, 100u);
  }
  EXPECT_EQ(rounds, 40u);           // the longer stream bounds the rounds
  EXPECT_EQ(stepped, 40u + 24u);    // short tenant idles after step 24
  EXPECT_TRUE(fleet.done());
  const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
  EXPECT_EQ(stats.engine_steps, 64u);
  EXPECT_EQ(stats.rounds, 40u);
  EXPECT_GT(stats.simulated_mpc_seconds, 0.0);
  EXPECT_GT(stats.simulated_query_seconds, 0.0);
}

}  // namespace
}  // namespace incshrink
