#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/dp/laplace.h"
#include "src/mpc/cost_model.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"

namespace incshrink {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : s0_(0, 111), s1_(1, 222), proto_(&s0_, &s1_,
                                                    CostModel::EmpLikeLan()) {}
  Party s0_;
  Party s1_;
  Protocol2PC proto_;
  Rng rng_{333};
};

// ---------------------------------------------------------------------------
// Cost model arithmetic
// ---------------------------------------------------------------------------

TEST(CostModelTest, FreeModelCostsNothing) {
  CircuitStats stats{1000, 2000, 3000, 4};
  EXPECT_DOUBLE_EQ(stats.SimulatedSeconds(CostModel::Free()), 0.0);
}

TEST(CostModelTest, EmpLikeChargesGatesBytesRounds) {
  CostModel m = CostModel::EmpLikeLan();
  CircuitStats stats{1000000, 0, 0, 0};  // 1M AND gates
  const double secs = stats.SimulatedSeconds(m);
  // 1M gates * 1e-7 s + 32 MB of labels * 8e-9 s/byte.
  EXPECT_NEAR(secs, 0.1 + 32e6 * 8e-9, 1e-9);
}

TEST(CostModelTest, StatsDiffIsMonotone) {
  CircuitStats a{10, 10, 10, 1};
  CircuitStats b{25, 30, 50, 3};
  const CircuitStats d = b.Diff(a);
  EXPECT_EQ(d.and_gates, 15u);
  EXPECT_EQ(d.xor_gates, 20u);
  EXPECT_EQ(d.bytes, 40u);
  EXPECT_EQ(d.rounds, 2u);
}

// ---------------------------------------------------------------------------
// Secure word operations
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, FreshShareAndReveal) {
  for (int i = 0; i < 100; ++i) {
    const Word x = rng_.Next32();
    const WordShares s = proto_.FreshShare(x);
    EXPECT_EQ(proto_.RecoverInside(s), x);
    EXPECT_EQ(proto_.Reveal(s), x);
  }
}

TEST_F(ProtocolTest, ConstShareNeedsNoRandomness) {
  const WordShares s = Protocol2PC::ConstShare(99);
  EXPECT_EQ(RecoverWord(s), 99u);
}

TEST_F(ProtocolTest, ArithmeticMatchesRing) {
  for (int i = 0; i < 500; ++i) {
    const Word a = rng_.Next32();
    const Word b = rng_.Next32();
    const WordShares sa = proto_.FreshShare(a);
    const WordShares sb = proto_.FreshShare(b);
    EXPECT_EQ(proto_.RecoverInside(proto_.Add(sa, sb)),
              static_cast<Word>(a + b));
    EXPECT_EQ(proto_.RecoverInside(proto_.Sub(sa, sb)),
              static_cast<Word>(a - b));
    EXPECT_EQ(proto_.RecoverInside(proto_.Mul(sa, sb)),
              static_cast<Word>(a * b));
    EXPECT_EQ(proto_.RecoverInside(proto_.Xor(sa, sb)),
              static_cast<Word>(a ^ b));
  }
}

TEST_F(ProtocolTest, ComparisonsMatch) {
  for (int i = 0; i < 500; ++i) {
    const Word a = rng_.Next32();
    const Word b = i % 3 == 0 ? a : rng_.Next32();
    const WordShares sa = proto_.FreshShare(a);
    const WordShares sb = proto_.FreshShare(b);
    EXPECT_EQ(proto_.RecoverInside(proto_.LessThan(sa, sb)),
              a < b ? 1u : 0u);
    EXPECT_EQ(proto_.RecoverInside(proto_.Equal(sa, sb)), a == b ? 1u : 0u);
  }
}

TEST_F(ProtocolTest, MuxSelects) {
  const WordShares a = proto_.FreshShare(111);
  const WordShares b = proto_.FreshShare(222);
  const WordShares one = proto_.FreshShare(1);
  const WordShares zero = proto_.FreshShare(0);
  EXPECT_EQ(proto_.RecoverInside(proto_.Mux(one, a, b)), 111u);
  EXPECT_EQ(proto_.RecoverInside(proto_.Mux(zero, a, b)), 222u);
}

TEST_F(ProtocolTest, BooleanOps) {
  const WordShares t = proto_.FreshShare(1);
  const WordShares f = proto_.FreshShare(0);
  EXPECT_EQ(proto_.RecoverInside(proto_.And(t, t)), 1u);
  EXPECT_EQ(proto_.RecoverInside(proto_.And(t, f)), 0u);
  EXPECT_EQ(proto_.RecoverInside(proto_.Or(f, t)), 1u);
  EXPECT_EQ(proto_.RecoverInside(proto_.Or(f, f)), 0u);
  EXPECT_EQ(proto_.RecoverInside(proto_.Not(t)), 0u);
  EXPECT_EQ(proto_.RecoverInside(proto_.Not(f)), 1u);
}

// ---------------------------------------------------------------------------
// Gate accounting
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, AddChargesWordWidthAndGates) {
  const WordShares a = proto_.FreshShare(1);
  const WordShares b = proto_.FreshShare(2);
  const CircuitStats before = proto_.Snapshot();
  proto_.Add(a, b);
  EXPECT_EQ(proto_.StatsSince(before).and_gates, kWordBits);
}

TEST_F(ProtocolTest, MulChargesQuadratic) {
  const WordShares a = proto_.FreshShare(1);
  const CircuitStats before = proto_.Snapshot();
  proto_.Mul(a, a);
  EXPECT_EQ(proto_.StatsSince(before).and_gates, kWordBits * kWordBits);
}

TEST_F(ProtocolTest, XorIsFree) {
  const WordShares a = proto_.FreshShare(1);
  const CircuitStats before = proto_.Snapshot();
  proto_.Xor(a, a);
  const CircuitStats d = proto_.StatsSince(before);
  EXPECT_EQ(d.and_gates, 0u);
  EXPECT_EQ(d.xor_gates, kWordBits);
}

TEST_F(ProtocolTest, RevealCostsOneRoundTwoWords) {
  const WordShares a = proto_.FreshShare(5);
  const CircuitStats before = proto_.Snapshot();
  proto_.Reveal(a);
  const CircuitStats d = proto_.StatsSince(before);
  EXPECT_EQ(d.bytes, 8u);
  EXPECT_EQ(d.rounds, 1u);
}

TEST_F(ProtocolTest, SimulatedSecondsGrowMonotonically) {
  const double t0 = proto_.SimulatedSeconds();
  const WordShares a = proto_.FreshShare(1);
  proto_.Mul(a, a);
  EXPECT_GT(proto_.SimulatedSeconds(), t0);
}

// ---------------------------------------------------------------------------
// Row operations
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, MuxSwapRowsSwapsIffBitSet) {
  SharedRows rows(2);
  rows.AppendSecretRow({1, 2}, &rng_);
  rows.AppendSecretRow({3, 4}, &rng_);

  proto_.MuxSwapRows(&rows, 0, 1, proto_.FreshShare(0));
  EXPECT_EQ(rows.RecoverRow(0), (std::vector<Word>{1, 2}));

  proto_.MuxSwapRows(&rows, 0, 1, proto_.FreshShare(1));
  EXPECT_EQ(rows.RecoverRow(0), (std::vector<Word>{3, 4}));
  EXPECT_EQ(rows.RecoverRow(1), (std::vector<Word>{1, 2}));
}

TEST_F(ProtocolTest, MuxSwapRefreshesShares) {
  SharedRows rows(1);
  rows.AppendSecretRow({7}, &rng_);
  rows.AppendSecretRow({9}, &rng_);
  const Word old_share = rows.share0_at(0, 0);
  proto_.MuxSwapRows(&rows, 0, 1, proto_.FreshShare(0));
  // Even a non-swap re-shares the payload (new garbled labels).
  EXPECT_NE(rows.share0_at(0, 0), old_share);
  EXPECT_EQ(rows.RecoverAt(0, 0), 7u);
}

TEST_F(ProtocolTest, CompareExchangeOrdersPairs) {
  SharedRows rows(2);
  rows.AppendSecretRow({30, 1}, &rng_);
  rows.AppendSecretRow({10, 2}, &rng_);
  proto_.CompareExchangeRows(&rows, 0, 1, 0, /*ascending=*/true);
  EXPECT_EQ(rows.RecoverAt(0, 0), 10u);
  EXPECT_EQ(rows.RecoverAt(1, 0), 30u);
  proto_.CompareExchangeRows(&rows, 0, 1, 0, /*ascending=*/false);
  EXPECT_EQ(rows.RecoverAt(0, 0), 30u);
}

TEST_F(ProtocolTest, SumColumn) {
  SharedRows rows(2);
  for (Word i = 1; i <= 10; ++i) rows.AppendSecretRow({i, 0}, &rng_);
  EXPECT_EQ(proto_.RecoverInside(proto_.SumColumn(rows, 0)), 55u);
  EXPECT_EQ(proto_.RecoverInside(proto_.SumColumn(rows, 1)), 0u);
}

// ---------------------------------------------------------------------------
// Joint noise (Alg. 2 lines 4-6)
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, JointLaplaceMatchesLaplaceDistribution) {
  const double scale = 5.0;
  SampleSet samples;
  for (int i = 0; i < 50000; ++i) samples.Add(proto_.JointLaplace(scale));
  EXPECT_NEAR(samples.Mean(), 0.0, 0.15);
  EXPECT_NEAR(samples.Variance(), 2 * scale * scale, 3.0);
  const double ks =
      KsDistance(samples, [&](double x) { return LaplaceCdf(x, scale); });
  EXPECT_LT(ks, 0.015);
}

TEST_F(ProtocolTest, JointLaplaceChargesCircuitCost) {
  const CircuitStats before = proto_.Snapshot();
  proto_.JointLaplace(1.0);
  const CircuitStats d = proto_.StatsSince(before);
  EXPECT_GT(d.and_gates, 0u);
  EXPECT_EQ(d.rounds, 1u);
}

TEST(JointNoiseSecurityTest, HonestPartyRandomnessSuffices) {
  // Two protocol instances whose *first* party uses the same seed but whose
  // second party differs must still produce different noise: a single
  // corrupted server cannot predict the output (it is masked by the honest
  // server's contribution).
  Party a0(0, 1), a1(1, 2);
  Party b0(0, 1), b1(1, 99999);
  Protocol2PC pa(&a0, &a1, CostModel::Free());
  Protocol2PC pb(&b0, &b1, CostModel::Free());
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (pa.JointLaplace(1.0) != pb.JointLaplace(1.0)) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(JointNoiseSecurityTest, DeterministicGivenBothSeeds) {
  Party a0(0, 5), a1(1, 6);
  Party b0(0, 5), b1(1, 6);
  Protocol2PC pa(&a0, &a1, CostModel::Free());
  Protocol2PC pb(&b0, &b1, CostModel::Free());
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(pa.JointLaplace(2.0), pb.JointLaplace(2.0));
  }
}

// ---------------------------------------------------------------------------
// Share uniformity through protocol operations
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, OperationOutputsHaveUniformShares) {
  // The share a single server holds after any secure operation must look
  // uniform regardless of the plaintext (here: all-zero inputs).
  int64_t bits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const WordShares out =
        proto_.Add(proto_.FreshShare(0), proto_.FreshShare(0));
    bits += __builtin_popcount(out.s0);
  }
  EXPECT_NEAR(static_cast<double>(bits) / kTrials, 16.0, 0.12);
}

}  // namespace
}  // namespace incshrink
