// Golden-transcript regression suite (build-system bring-up).
//
// Runs a fixed matrix of (workload x strategy) deployments with pinned seeds
// and compares a canonical, integer-only rendering of each run's observables
// — transcript events, DP releases, per-step answers — against checked-in
// fixtures under tests/golden/. Future PRs that change behavior (a perf
// rewrite of the sort network, a new cache layout, a tweaked mechanism) will
// trip this suite unless they consciously regenerate the baselines:
//
//   INCSHRINK_REGEN_GOLDENS=1 ./golden_transcript_test
//
// Only integers are serialized, so the fixtures are stable across compilers
// and floating-point flag choices.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/transcript.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(INCSHRINK_SOURCE_DIR) + "/tests/golden/" + name + ".txt";
}

std::string RenderRun(const Engine& engine) {
  std::ostringstream out;
  out << "# canonical IncShrink run transcript (integers only)\n";
  for (const TranscriptEvent& ev : engine.transcript()) {
    out << "event " << TranscriptKindName(ev.kind) << " t=" << ev.t
        << " rows=" << ev.rows << "\n";
  }
  for (const LeakageRelease& rel : engine.releases()) {
    out << "release t=" << rel.t << " size=" << rel.size
        << " fired=" << (rel.fired ? 1 : 0) << "\n";
  }
  for (const StepMetrics& m : engine.step_metrics()) {
    out << "step t=" << m.t << " answer=" << m.view_answer
        << " truth=" << m.true_count << " view_rows=" << m.view_rows
        << " cache_rows=" << m.cache_rows << "\n";
  }
  const RunSummary summary = engine.Summary();
  out << "summary updates=" << summary.updates
      << " flushes=" << summary.flushes << " steps=" << summary.steps
      << " final_view_rows=" << summary.final_view_rows
      << " final_cache_rows=" << summary.final_cache_rows
      << " real_entries=" << summary.total_real_entries_cached << "\n";
  return out.str();
}

void CheckGolden(const std::string& name, const Engine& engine) {
  const std::string rendered = RenderRun(engine);
  const std::string path = GoldenPath(name);
  if (std::getenv("INCSHRINK_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — run with INCSHRINK_REGEN_GOLDENS=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "observable behavior drifted from the checked-in baseline for '"
      << name << "'. If the change is intentional, regenerate with "
      << "INCSHRINK_REGEN_GOLDENS=1 ./golden_transcript_test and review the "
      << "fixture diff.";
}

struct GoldenCase {
  const char* name;
  bool cpdb;
  Strategy strategy;
  TransformOperator op = TransformOperator::kSortMergeJoin;
};

class GoldenTranscriptTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTranscriptTest, MatchesBaseline) {
  const GoldenCase& gc = GetParam();
  IncShrinkConfig config;
  GeneratedWorkload workload;
  if (gc.cpdb) {
    CpdbParams params;
    params.steps = 30;
    workload = GenerateCpdb(params);
    config = DefaultCpdbConfig();
  } else {
    TpcDsParams params;
    params.steps = 40;
    workload = GenerateTpcDs(params);
    config = DefaultTpcDsConfig();
  }
  config.strategy = gc.strategy;
  config.op = gc.op;
  config.flush_interval = 16;  // exercise flush events inside the stream
  SynchronousDeployment deployment(config);
  ASSERT_TRUE(deployment.Run(workload.t1, workload.t2).ok());
  CheckGolden(gc.name, deployment.engine());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GoldenTranscriptTest,
    ::testing::Values(
        GoldenCase{"tpcds_timer", false, Strategy::kDpTimer},
        GoldenCase{"tpcds_ant", false, Strategy::kDpAnt},
        GoldenCase{"tpcds_ep", false, Strategy::kEp},
        GoldenCase{"tpcds_otm", false, Strategy::kOtm},
        GoldenCase{"tpcds_nm", false, Strategy::kNm},
        GoldenCase{"tpcds_timer_nlj", false, Strategy::kDpTimer,
                   TransformOperator::kNestedLoopJoin},
        GoldenCase{"cpdb_timer", true, Strategy::kDpTimer},
        GoldenCase{"cpdb_ant", true, Strategy::kDpAnt},
        GoldenCase{"cpdb_ep", true, Strategy::kEp}),
    [](const ::testing::TestParamInfo<GoldenCase>& param_info) {
      return std::string(param_info.param.name);
    });

// Filter views (Appendix A.1.1): selection is 1-stable, so omega = b = 1.
TEST(GoldenTranscriptTest, FilterViewMatchesBaseline) {
  IncShrinkConfig config;
  config.eps = 1.5;
  config.omega = 1;
  config.budget_b = 1;
  config.view_kind = ViewKind::kFilter;
  config.filter = FilterSpec{100, 199};
  config.join.omega = 1;
  config.strategy = Strategy::kDpTimer;
  config.timer_T = 4;
  config.flush_interval = 16;
  config.upload_rows_t1 = 4;
  config.upload_rows_t2 = 4;
  config.seed = 21;

  std::vector<std::vector<LogicalRecord>> t1(40), t2(40);
  Rng rng(22);
  Word rid = 1;
  for (uint64_t t = 0; t < 40; ++t) {
    const uint64_t n = rng.Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      LogicalRecord rec;
      rec.step = t + 1;
      rec.rid = rid++;
      rec.key = rid;
      rec.date = static_cast<Word>(t + 1);
      rec.payload = static_cast<Word>(rng.Uniform(300));
      t1[t].push_back(rec);
    }
  }
  SynchronousDeployment deployment(config);
  ASSERT_TRUE(deployment.Run(t1, t2).ok());
  CheckGolden("tpcds_filter_timer", deployment.engine());
}

}  // namespace
}  // namespace incshrink
