// Crash-safe checkpoint/restore property suite (robustness tentpole):
//
//   * kill-at-step-k + restore must reproduce the uninterrupted run BIT FOR
//     BIT — summaries, step metrics, transcripts, DP releases, and the final
//     snapshot bytes themselves — for every Shrink strategy, sharded and
//     unsharded, at 1 / 2 / 8 shard threads, for every kill step;
//   * snapshotting draws no randomness: an auto-checkpointing run equals an
//     uncheckpointed one;
//   * fleet tenants checkpoint out of one fleet and resume bit-identically
//     inside a freshly built fleet (live migration), including their
//     scheduling state;
//   * every malformed snapshot — truncated, bit-flipped, config-mismatched —
//     is rejected with a Status, never loaded, and leaves the target usable.
//
// Runs under the TSan CI job (see .github/workflows/ci.yml) because the
// sharded restore paths touch the same state the shard pool does.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/storage/checkpoint.h"
#include "src/testing/fault_injector.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

constexpr uint64_t kSteps = 8;

GeneratedWorkload SmallWorkload() {
  TpcDsParams p;
  p.steps = kSteps;
  p.seed = 77;
  return GenerateTpcDs(p);
}

IncShrinkConfig CheckpointConfig(Strategy strategy, uint32_t shards,
                                 int threads) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = strategy;
  cfg.timer_T = 3;          // several timer fires inside 8 steps
  cfg.ant_theta = 6;        // low enough that ANT fires
  cfg.flush_interval = 4;   // exercise the flush path across a restore
  cfg.flush_size = 4;
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  return cfg;
}

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

void ExpectEngineIdentical(const Engine& a, const Engine& b) {
  ExpectSummaryIdentical(a.Summary(), b.Summary());
  ASSERT_EQ(a.transcript().size(), b.transcript().size());
  for (size_t i = 0; i < a.transcript().size(); ++i) {
    EXPECT_EQ(a.transcript()[i], b.transcript()[i]) << "event " << i;
  }
  ASSERT_EQ(a.releases().size(), b.releases().size());
  for (size_t i = 0; i < a.releases().size(); ++i) {
    EXPECT_EQ(a.releases()[i].t, b.releases()[i].t);
    EXPECT_EQ(a.releases()[i].size, b.releases()[i].size);
    EXPECT_EQ(a.releases()[i].fired, b.releases()[i].fired);
  }
  ASSERT_EQ(a.step_metrics().size(), b.step_metrics().size());
  for (size_t i = 0; i < a.step_metrics().size(); ++i) {
    const StepMetrics& ma = a.step_metrics()[i];
    const StepMetrics& mb = b.step_metrics()[i];
    EXPECT_EQ(ma.t, mb.t);
    EXPECT_EQ(ma.transform_seconds, mb.transform_seconds);
    EXPECT_EQ(ma.shrink_seconds, mb.shrink_seconds);
    EXPECT_EQ(ma.query_seconds, mb.query_seconds);
    EXPECT_EQ(ma.true_count, mb.true_count);
    EXPECT_EQ(ma.view_answer, mb.view_answer);
    EXPECT_EQ(ma.view_rows, mb.view_rows);
    EXPECT_EQ(ma.cache_rows, mb.cache_rows);
    EXPECT_EQ(ma.synced, mb.synced);
    EXPECT_EQ(ma.sync_rows, mb.sync_rows);
    EXPECT_EQ(ma.flushed, mb.flushed);
  }
}

// ---------------------------------------------------------------------------
// The core property: kill-at-step-k + restore == uninterrupted, bit for bit.
// ---------------------------------------------------------------------------

class CrashRestartTest
    : public ::testing::TestWithParam<std::tuple<Strategy, uint32_t, int>> {};

TEST_P(CrashRestartTest, KillAtEveryStepRestoresBitIdentical) {
  const auto [strategy, shards, threads] = GetParam();
  const GeneratedWorkload w = SmallWorkload();
  const IncShrinkConfig cfg = CheckpointConfig(strategy, shards, threads);

  SynchronousDeployment uninterrupted(cfg);
  ASSERT_TRUE(uninterrupted.Run(w.t1, w.t2).ok());
  Result<std::vector<uint8_t>> golden = uninterrupted.SaveCheckpoint();
  ASSERT_TRUE(golden.ok());

  for (uint64_t k = 1; k < kSteps; ++k) {
    Result<std::unique_ptr<SynchronousDeployment>> restored =
        RunWithCrashAtStep(cfg, w.t1, w.t2, k);
    ASSERT_TRUE(restored.ok()) << "kill step " << k << ": "
                               << restored.status().message();
    ExpectEngineIdentical(uninterrupted.engine(), (*restored)->engine());
    EXPECT_EQ((*restored)->owner1().clock(), uninterrupted.owner1().clock());
    EXPECT_EQ((*restored)->owner2().clock(), uninterrupted.owner2().clock());
    // The strongest form of the property: the final snapshots — covering
    // every RNG cursor, share array, ledger row and counter — are the same
    // bytes.
    Result<std::vector<uint8_t>> after = (*restored)->SaveCheckpoint();
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*golden, *after) << "kill step " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesShardsThreads, CrashRestartTest,
    ::testing::Values(
        std::make_tuple(Strategy::kDpTimer, 1u, 1),
        std::make_tuple(Strategy::kDpAnt, 1u, 1),
        std::make_tuple(Strategy::kEp, 1u, 1),
        std::make_tuple(Strategy::kDpTimer, 4u, 2),
        std::make_tuple(Strategy::kDpAnt, 4u, 2),
        std::make_tuple(Strategy::kEp, 4u, 2),
        std::make_tuple(Strategy::kDpTimer, 4u, 8),
        std::make_tuple(Strategy::kDpAnt, 4u, 8),
        std::make_tuple(Strategy::kEp, 4u, 8)));

// Checkpointing draws no randomness: an auto-checkpointing run must equal an
// uncheckpointed one observable for observable.
TEST(CheckpointNeutralityTest, AutoCheckpointingLeavesRunBitIdentical) {
  const GeneratedWorkload w = SmallWorkload();
  IncShrinkConfig plain = CheckpointConfig(Strategy::kDpAnt, 1, 1);
  IncShrinkConfig snapping = plain;
  snapping.checkpoint_interval = 1;  // checkpoint after every step

  SynchronousDeployment a(plain);
  SynchronousDeployment b(snapping);
  ASSERT_TRUE(a.Run(w.t1, w.t2).ok());
  ASSERT_TRUE(b.Run(w.t1, w.t2).ok());
  ExpectEngineIdentical(a.engine(), b.engine());
  EXPECT_EQ(b.engine().checkpoints_taken(), kSteps);
  EXPECT_EQ(b.engine().last_checkpoint_step(), kSteps);
  EXPECT_FALSE(b.engine().last_checkpoint().empty());

  // The auto slot is a real engine snapshot: it restores into a fresh
  // engine, and re-snapshotting that engine reproduces the slot bytes.
  Engine fresh(snapping);
  ASSERT_TRUE(fresh.RestoreCheckpoint(b.engine().last_checkpoint()).ok());
  Result<std::vector<uint8_t>> again = fresh.SaveCheckpoint();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(b.engine().last_checkpoint(), *again);
}

// ---------------------------------------------------------------------------
// Fleet tenant migration.
// ---------------------------------------------------------------------------

TEST(FleetMigrationTest, TenantsMigrateBitIdentically) {
  const GeneratedWorkload w1 = SmallWorkload();
  TpcDsParams p2;
  p2.steps = kSteps;
  p2.seed = 78;
  const GeneratedWorkload w2 = GenerateTpcDs(p2);

  std::vector<DeploymentFleet::TenantSpec> specs(2);
  specs[0].name = "timer";
  specs[0].config = CheckpointConfig(Strategy::kDpTimer, 1, 1);
  specs[0].workload = &w1;
  specs[1].name = "ant";
  specs[1].config = CheckpointConfig(Strategy::kDpAnt, 1, 1);
  specs[1].workload = &w2;

  DeploymentFleet::Options opts;
  opts.root_seed = 9;
  opts.num_threads = 2;

  // Reference: one fleet runs the whole stream uninterrupted.
  DeploymentFleet reference(specs, opts);
  reference.RunAll();

  // Migration: run half the rounds, checkpoint both tenants, restore them
  // into a freshly built fleet (different worker budget — scheduling knobs
  // are outside the fingerprint) and finish there.
  DeploymentFleet source(specs, opts);
  for (int r = 0; r < 4; ++r) source.StepAll();
  Result<std::vector<uint8_t>> blob0 = source.CheckpointTenant(0);
  Result<std::vector<uint8_t>> blob1 = source.CheckpointTenant(1);
  ASSERT_TRUE(blob0.ok());
  ASSERT_TRUE(blob1.ok());

  DeploymentFleet::Options migrated_opts = opts;
  migrated_opts.num_threads = 1;
  DeploymentFleet migrated(specs, migrated_opts);
  ASSERT_TRUE(migrated.RestoreTenant(0, *blob0).ok());
  ASSERT_TRUE(migrated.RestoreTenant(1, *blob1).ok());
  migrated.RunAll();

  for (size_t i = 0; i < 2; ++i) {
    ExpectEngineIdentical(reference.engine(i), migrated.engine(i));
    EXPECT_EQ(reference.owner1(i).clock(), migrated.owner1(i).clock());
    EXPECT_EQ(reference.owner2(i).clock(), migrated.owner2(i).clock());
  }

  // Cross-tenant mixups must fail closed: tenant 1's blob does not restore
  // into slot 0 (different config fingerprint), and the failed attempt
  // leaves the tenant running.
  DeploymentFleet again(specs, opts);
  const Status mixed = again.RestoreTenant(0, *blob1);
  EXPECT_EQ(mixed.code(), StatusCode::kFailedPrecondition);
  again.RunAll();
  ExpectEngineIdentical(reference.engine(0), again.engine(0));
}

// ---------------------------------------------------------------------------
// Fail-closed rejection.
// ---------------------------------------------------------------------------

TEST(CheckpointRejectionTest, ConfigMismatchIsRejectedAtomically) {
  const GeneratedWorkload w = SmallWorkload();
  const IncShrinkConfig cfg = CheckpointConfig(Strategy::kDpTimer, 1, 1);
  SynchronousDeployment source(cfg);
  ASSERT_TRUE(source.Run(w.t1, w.t2).ok());
  Result<std::vector<uint8_t>> blob = source.SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  IncShrinkConfig other = cfg;
  other.seed = cfg.seed + 1;
  SynchronousDeployment victim(other);
  const Status st = victim.RestoreCheckpoint(*blob);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The refused restore left the victim untouched and fully usable.
  ASSERT_TRUE(victim.Run(w.t1, w.t2).ok());
  EXPECT_EQ(victim.engine().current_step(), kSteps);
}

TEST(CheckpointRejectionTest, MidStepCheckpointIsRefused) {
  const GeneratedWorkload w = SmallWorkload();
  const IncShrinkConfig cfg = CheckpointConfig(Strategy::kDpTimer, 1, 1);
  Engine engine(cfg);
  ASSERT_TRUE(engine.BeginStep().ok());
  EXPECT_EQ(engine.SaveCheckpoint().status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<uint8_t> junk(64, 0);
  EXPECT_EQ(engine.RestoreCheckpoint(junk).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.FinishStep().ok());
  // Between steps the same engine checkpoints fine.
  EXPECT_TRUE(engine.SaveCheckpoint().ok());
  (void)w;
}

TEST(CheckpointRejectionTest, SnapshotSizeCeilingIsEnforced) {
  IncShrinkConfig cfg = CheckpointConfig(Strategy::kDpTimer, 1, 1);
  cfg.checkpoint_max_bytes = 4096;  // smallest legal ceiling
  const GeneratedWorkload w = SmallWorkload();
  SynchronousDeployment d(cfg);
  ASSERT_TRUE(d.Run(w.t1, w.t2).ok());
  // Eight steps of shares cannot fit 4 KiB.
  EXPECT_EQ(d.engine().SaveCheckpoint().status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(d.SaveCheckpoint().status().code(), StatusCode::kOutOfRange);
}

TEST(CheckpointRejectionTest, ValidateRejectsTinyCeiling) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.checkpoint_max_bytes = 4095;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg.checkpoint_max_bytes = 4096;
  EXPECT_TRUE(cfg.Validate().ok());
}

// Deterministic fault schedules: every corruption the injector draws from a
// seed is rejected with a Status and leaves the engine able to load the
// pristine snapshot afterwards.
TEST(CheckpointRejectionTest, InjectedCorruptionsAllFailClosed) {
  const GeneratedWorkload w = SmallWorkload();
  const IncShrinkConfig cfg = CheckpointConfig(Strategy::kDpAnt, 1, 1);
  SynchronousDeployment source(cfg);
  ASSERT_TRUE(source.Run(w.t1, w.t2).ok());
  Result<std::vector<uint8_t>> blob = source.SaveCheckpoint();
  ASSERT_TRUE(blob.ok());

  SynchronousDeployment victim(cfg);
  FaultInjector inject(0xC0FFEE);
  const FaultPlan plan = inject.MakePlan(
      /*horizon=*/kSteps, /*kills=*/0, /*corruptions=*/64,
      /*snapshot_bytes=*/blob->size(), /*drops=*/0, /*max_drop_rounds=*/1);
  for (const FaultEvent& ev : plan.events) {
    std::vector<uint8_t> bad;
    if (ev.kind == FaultKind::kTornWrite) {
      bad = FaultInjector::TruncateAt(*blob, ev.param);
    } else {
      ASSERT_EQ(ev.kind, FaultKind::kBitFlip);
      bad = FaultInjector::FlipBit(*blob, ev.param);
    }
    EXPECT_FALSE(victim.RestoreCheckpoint(bad).ok())
        << "seed " << plan.seed << " accepted a corrupted snapshot";
  }
  // After every hostile blob bounced, the pristine one still loads.
  EXPECT_TRUE(victim.RestoreCheckpoint(*blob).ok());
  Result<std::vector<uint8_t>> after = victim.SaveCheckpoint();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*blob, *after);
}

}  // namespace
}  // namespace incshrink
