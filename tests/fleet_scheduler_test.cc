// Deterministic priority fleet scheduler (the traffic-serving round
// discipline of DeploymentFleet): uniform-weight configurations must
// reproduce the legacy lockstep sweep bit for bit; skewed configurations
// must be exactly thread-count invariant (summaries, transcripts AND the
// round-by-round service schedule); and the aging term must make the
// discipline starvation-free — every continuously backlogged tenant is
// serviced within the computable StarvationBoundRounds() bound, even under
// adversarial weight/depth patterns. Runs under the TSan CI job alongside
// the other equivalence suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/metrics.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

GeneratedWorkload SmallTpcDs(uint64_t seed = 21, uint64_t steps = 40) {
  TpcDsParams p;
  p.steps = steps;
  p.seed = seed;
  return GenerateTpcDs(p);
}

GeneratedWorkload SmallCpdb(uint64_t seed = 31, uint64_t steps = 24) {
  CpdbParams p;
  p.steps = steps;
  p.seed = seed;
  return GenerateCpdb(p);
}

std::vector<DeploymentFleet::TenantSpec> MixedTenants(
    const GeneratedWorkload* tpcds, const GeneratedWorkload* cpdb,
    uint32_t max_batches, uint32_t capacity) {
  std::vector<DeploymentFleet::TenantSpec> tenants;
  const struct {
    const char* name;
    bool cpdb;
    Strategy strategy;
  } kMix[] = {
      {"tpcds-timer", false, Strategy::kDpTimer},
      {"tpcds-ant", false, Strategy::kDpAnt},
      {"tpcds-ep", false, Strategy::kEp},
      {"cpdb-timer", true, Strategy::kDpTimer},
      {"cpdb-ant", true, Strategy::kDpAnt},
      {"tpcds-nm", false, Strategy::kNm},
  };
  for (const auto& m : kMix) {
    DeploymentFleet::TenantSpec t;
    t.name = m.name;
    t.config = m.cpdb ? DefaultCpdbConfig() : DefaultTpcDsConfig();
    t.config.strategy = m.strategy;
    t.config.flush_interval = 16;
    t.config.max_batches_per_step = max_batches;
    t.config.upload_channel_capacity = capacity;
    t.workload = m.cpdb ? cpdb : tpcds;
    tenants.push_back(t);
  }
  return tenants;
}

DeploymentFleet::Options WithScheduler(uint64_t root, int threads,
                                       uint32_t lead, bool coalesce,
                                       DeploymentFleet::SchedulerOptions s) {
  DeploymentFleet::Options o;
  o.root_seed = root;
  o.num_threads = threads;
  o.owner_lead = lead;
  o.coalesce_sorts = coalesce;
  o.scheduler = s;
  return o;
}

// ---------------------------------------------------------------------------
// Helper metrics: percentiles and fairness index
// ---------------------------------------------------------------------------

TEST(ServiceMetricsTest, NearestRankPercentile) {
  EXPECT_EQ(NearestRankPercentile({}, 50), 0u);
  EXPECT_EQ(NearestRankPercentile({7}, 50), 7u);
  EXPECT_EQ(NearestRankPercentile({7}, 99), 7u);
  // 1..100: nearest-rank pXX is exactly XX.
  std::vector<uint64_t> v;
  for (uint64_t i = 100; i >= 1; --i) v.push_back(i);  // unsorted on purpose
  EXPECT_EQ(NearestRankPercentile(v, 50), 50u);
  EXPECT_EQ(NearestRankPercentile(v, 95), 95u);
  EXPECT_EQ(NearestRankPercentile(v, 99), 99u);
  EXPECT_EQ(NearestRankPercentile(v, 100), 100u);
  // rank = ceil(0.5 * 4) = 2 -> second smallest.
  EXPECT_EQ(NearestRankPercentile({1, 2, 3, 4}, 50), 2u);
}

TEST(ServiceMetricsTest, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({3.0, 3.0, 3.0}), 1.0);
  // One tenant hogging everything: 1/n.
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0, 0.0, 0.0, 0.0}), 0.25);
  // (1+3)^2 / (2 * (1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0, 3.0}), 0.8);
}

// ---------------------------------------------------------------------------
// Public deadline distance (the scheduler's urgency input)
// ---------------------------------------------------------------------------

TEST(PublicDeadlineTest, TimerAndFlushDistances) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();  // timer_T = 10, flush = 120
  cfg.strategy = Strategy::kDpTimer;
  Engine timer_engine(cfg);
  EXPECT_EQ(timer_engine.StepsToNextPublicRelease(), 10u);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(timer_engine.Step().ok());
  EXPECT_EQ(timer_engine.StepsToNextPublicRelease(), 7u);  // fires at t = 10

  // sDPANT fires data-dependently; only the public flush cadence counts.
  cfg.strategy = Strategy::kDpAnt;
  cfg.flush_interval = 16;
  Engine ant_engine(cfg);
  EXPECT_EQ(ant_engine.StepsToNextPublicRelease(), 16u);
  ASSERT_TRUE(ant_engine.Step().ok());
  EXPECT_EQ(ant_engine.StepsToNextPublicRelease(), 15u);

  // No publicly scheduled release at all.
  cfg.strategy = Strategy::kEp;
  Engine ep_engine(cfg);
  EXPECT_EQ(ep_engine.StepsToNextPublicRelease(),
            std::numeric_limits<uint64_t>::max());
}

TEST(PublicDeadlineTest, SlaWeightValidation) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.sla_weight = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.sla_weight = (1u << 20) + 1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.sla_weight = 1u << 20;
  EXPECT_TRUE(cfg.Validate().ok());
}

// ---------------------------------------------------------------------------
// Priority keys: public, weight-scaled, aging
// ---------------------------------------------------------------------------

TEST(PrioritySchedulerTest, PriorityKeyCompositionAndAging) {
  const GeneratedWorkload tpcds = SmallTpcDs();
  std::vector<DeploymentFleet::TenantSpec> specs(2);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = std::string("t") + std::to_string(i);
    specs[i].config = DefaultTpcDsConfig();  // timer_T = 10
    specs[i].workload = &tpcds;
  }
  specs[0].config.sla_weight = 3;
  specs[1].config.sla_weight = 1;

  DeploymentFleet::SchedulerOptions sched;
  sched.enabled = true;
  sched.services_per_round = 1;
  sched.aging_weight = 5;
  sched.depth_weight = 2;
  sched.deadline_horizon = 16;
  DeploymentFleet fleet(specs, WithScheduler(/*root=*/3, /*threads=*/1,
                                             /*lead=*/0, /*coalesce=*/false,
                                             sched));

  // Before any round: depth 0, t = 0 => timer distance 10, urgency 6.
  EXPECT_EQ(fleet.PriorityKey(0), 3u * 6u);
  EXPECT_EQ(fleet.PriorityKey(1), 1u * 6u);

  // Round 1: both push one frame pair; only tenant 0 (heavier weight) is
  // serviced. Tenant 1 is left backlogged with one queued frame and one
  // round of age.
  EXPECT_EQ(fleet.StepAll(), 2u);
  ASSERT_EQ(fleet.schedule_log().size(), 1u);
  EXPECT_EQ(fleet.schedule_log()[0], std::vector<uint32_t>{0});
  EXPECT_EQ(fleet.QueueDepth(0), 0u);
  EXPECT_EQ(fleet.QueueDepth(1), 1u);
  // Tenant 0: depth 0, t = 1 => distance 9, urgency 7, age 0.
  EXPECT_EQ(fleet.PriorityKey(0), 3u * 7u);
  // Tenant 1: depth 1, t = 0 => urgency 6, age 1: 1*(2*1 + 6) + 5*1.
  EXPECT_EQ(fleet.PriorityKey(1), 8u + 5u);
}

// ---------------------------------------------------------------------------
// Uniform configuration == legacy lockstep sweep, bit for bit
// ---------------------------------------------------------------------------

TEST(PrioritySchedulerTest, UniformConfigIsBitIdenticalToLockstep) {
  // With uniform weights and a budget covering every tenant, the scheduler
  // must select exactly the tenants the lockstep sweep steps, so every
  // per-tenant observable — summary and transcript — is bit-identical to
  // the legacy fleet (whose behavior the PR 5 goldens pin). Covers both
  // budget spellings (0 = "all" and B = num_tenants), owner leads, and the
  // coalesce_sorts fusion path.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 77;
  const std::vector<DeploymentFleet::TenantSpec> specs =
      MixedTenants(&tpcds, &cpdb, /*max_batches=*/1, /*capacity=*/32);

  for (const bool coalesce : {false, true}) {
    for (const uint32_t lead : {0u, 3u}) {
      SCOPED_TRACE("coalesce=" + std::to_string(coalesce) +
                   " lead=" + std::to_string(lead));
      DeploymentFleet legacy(
          specs, WithScheduler(kRoot, /*threads=*/2, lead, coalesce, {}));
      legacy.RunAll();
      ASSERT_TRUE(legacy.done());
      const DeploymentFleet::FleetStats legacy_stats =
          legacy.AggregateStats();

      for (const uint32_t budget :
           {0u, static_cast<uint32_t>(specs.size())}) {
        SCOPED_TRACE("budget=" + std::to_string(budget));
        DeploymentFleet::SchedulerOptions sched;
        sched.enabled = true;
        sched.services_per_round = budget;
        DeploymentFleet scheduled(
            specs, WithScheduler(kRoot, /*threads=*/2, lead, coalesce, sched));
        scheduled.RunAll();
        ASSERT_TRUE(scheduled.done());
        for (size_t i = 0; i < specs.size(); ++i) {
          SCOPED_TRACE(specs[i].name);
          ExpectSummaryIdentical(legacy.TenantSummary(i),
                                 scheduled.TenantSummary(i));
          EXPECT_EQ(legacy.engine(i).transcript(),
                    scheduled.engine(i).transcript());
        }
        const DeploymentFleet::FleetStats stats =
            scheduled.AggregateStats();
        EXPECT_EQ(stats.rounds, legacy_stats.rounds);
        EXPECT_EQ(stats.engine_steps, legacy_stats.engine_steps);
        EXPECT_EQ(stats.fused_sort_jobs, legacy_stats.fused_sort_jobs);
        EXPECT_EQ(stats.max_queue_depth, legacy_stats.max_queue_depth);
      }
    }
  }
}

TEST(PrioritySchedulerTest, UniformConfigMatchesSynchronousDeployment) {
  // Transitively the same guarantee the PR 4/5 suites pin: lockstep cadence
  // (lead 0, drain 1) through the *scheduler* path still reproduces the
  // fused SynchronousDeployment exactly.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 91;
  const std::vector<DeploymentFleet::TenantSpec> specs =
      MixedTenants(&tpcds, &cpdb, /*max_batches=*/1, /*capacity=*/32);
  DeploymentFleet::SchedulerOptions sched;
  sched.enabled = true;
  DeploymentFleet fleet(specs, WithScheduler(kRoot, /*threads=*/2, /*lead=*/0,
                                             /*coalesce=*/false, sched));
  fleet.RunAll();
  ASSERT_TRUE(fleet.done());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    IncShrinkConfig cfg = specs[i].config;
    cfg.seed = DeriveTenantSeed(kRoot, i);
    SynchronousDeployment lockstep(cfg);
    ASSERT_TRUE(
        lockstep.Run(specs[i].workload->t1, specs[i].workload->t2).ok());
    ExpectSummaryIdentical(lockstep.Summary(), fleet.TenantSummary(i));
    EXPECT_EQ(lockstep.transcript(), fleet.engine(i).transcript());
  }
}

// ---------------------------------------------------------------------------
// Determinism: exact equality at 1/2/8 threads
// ---------------------------------------------------------------------------

TEST(PrioritySchedulerTest, ScheduleIsThreadCountInvariant) {
  // Skewed weights, a tight budget and owner leads: the round-by-round
  // service schedule, all per-tenant summaries/transcripts and the
  // aggregated latency/fairness stats must be exactly equal at 1, 2 and 8
  // threads, with and without cross-tenant sort fusion.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 57;
  std::vector<DeploymentFleet::TenantSpec> specs =
      MixedTenants(&tpcds, &cpdb, /*max_batches=*/2, /*capacity=*/16);
  const uint32_t kWeights[] = {1, 8, 2, 1, 16, 4};
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].config.sla_weight = kWeights[i];
  }
  DeploymentFleet::SchedulerOptions sched;
  sched.enabled = true;
  sched.services_per_round = 2;
  sched.aging_weight = 4;
  sched.deadline_horizon = 8;

  for (const bool coalesce : {false, true}) {
    SCOPED_TRACE("coalesce=" + std::to_string(coalesce));
    DeploymentFleet ref(specs, WithScheduler(kRoot, /*threads=*/1,
                                             /*lead=*/8, coalesce, sched));
    ref.RunAll();
    ASSERT_TRUE(ref.done());
    const DeploymentFleet::FleetStats ref_stats = ref.AggregateStats();
    EXPECT_GT(ref_stats.rounds, 0u);

    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      DeploymentFleet fleet(specs, WithScheduler(kRoot, threads, /*lead=*/8,
                                                 coalesce, sched));
      fleet.RunAll();
      ASSERT_TRUE(fleet.done());
      EXPECT_EQ(ref.schedule_log(), fleet.schedule_log());
      for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ExpectSummaryIdentical(ref.TenantSummary(i), fleet.TenantSummary(i));
        EXPECT_EQ(ref.engine(i).transcript(), fleet.engine(i).transcript());
      }
      const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
      EXPECT_EQ(stats.rounds, ref_stats.rounds);
      EXPECT_EQ(stats.engine_steps, ref_stats.engine_steps);
      EXPECT_EQ(stats.jain_fairness, ref_stats.jain_fairness);
      ASSERT_EQ(stats.tenant_service.size(),
                ref_stats.tenant_service.size());
      for (size_t i = 0; i < stats.tenant_service.size(); ++i) {
        EXPECT_EQ(stats.tenant_service[i].services,
                  ref_stats.tenant_service[i].services);
        EXPECT_EQ(stats.tenant_service[i].gap_p50,
                  ref_stats.tenant_service[i].gap_p50);
        EXPECT_EQ(stats.tenant_service[i].gap_p95,
                  ref_stats.tenant_service[i].gap_p95);
        EXPECT_EQ(stats.tenant_service[i].gap_p99,
                  ref_stats.tenant_service[i].gap_p99);
        EXPECT_EQ(stats.tenant_service[i].gap_max,
                  ref_stats.tenant_service[i].gap_max);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Starvation-freedom property: adversarial weight / depth patterns
// ---------------------------------------------------------------------------

struct StarvationCase {
  const char* name;
  std::vector<uint32_t> weights;
  std::vector<uint32_t> capacities;
  uint32_t aging_weight;
  uint32_t services_per_round;
  uint32_t deadline_horizon;
};

TEST(PrioritySchedulerTest, StarvationFreedomUnderAdversarialPatterns) {
  // Heavy tenants (large weights / deep channels) try to monopolize a
  // single service slot. The aging term must still get every continuously
  // backlogged tenant serviced within StarvationBoundRounds() rounds —
  // checked against the empirically observed worst gap of every tenant.
  const GeneratedWorkload tpcds = SmallTpcDs(/*seed=*/21, /*steps=*/48);
  const std::vector<StarvationCase> cases = {
      // Strong aging: the bound is dominated by the rotation term.
      {"strong-aging", {8, 8, 8, 1, 1}, {32, 32, 32, 8, 8}, 16, 1, 8},
      // Weak aging vs skewed weights: the Pmax/A term dominates.
      {"weak-aging", {4, 4, 1, 1}, {8, 8, 8, 8}, 1, 1, 4},
      // Budget 2, extreme weight ratio at the validation cap's scale.
      {"extreme-weights", {64, 64, 1, 1, 1, 1}, {16, 16, 16, 16, 16, 16},
       32, 2, 16},
  };
  for (const StarvationCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<DeploymentFleet::TenantSpec> specs(c.weights.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      specs[i].name = std::string(c.name) + "#" + std::to_string(i);
      specs[i].config = DefaultTpcDsConfig();
      specs[i].config.strategy =
          i % 2 == 0 ? Strategy::kDpTimer : Strategy::kDpAnt;
      specs[i].config.flush_interval = 16;
      specs[i].config.sla_weight = c.weights[i];
      specs[i].config.upload_channel_capacity = c.capacities[i];
      specs[i].workload = &tpcds;
    }
    DeploymentFleet::SchedulerOptions sched;
    sched.enabled = true;
    sched.services_per_round = c.services_per_round;
    sched.aging_weight = c.aging_weight;
    sched.deadline_horizon = c.deadline_horizon;
    // A large owner lead keeps every tenant's queue non-empty (adversarial
    // depth pressure) until its stream is exhausted.
    DeploymentFleet fleet(specs, WithScheduler(/*root=*/11, /*threads=*/2,
                                               /*lead=*/16,
                                               /*coalesce=*/false, sched));
    const uint64_t bound = fleet.StarvationBoundRounds();
    fleet.RunAll();
    ASSERT_TRUE(fleet.done());
    const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
    for (size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(specs[i].name);
      EXPECT_GT(stats.tenant_service[i].services, 0u)
          << "tenant was never serviced";
      EXPECT_LE(stats.tenant_service[i].gap_max, bound)
          << "observed a service gap beyond the starvation bound ("
          << bound << " rounds)";
      // Everyone eventually drains completely.
      EXPECT_EQ(fleet.QueueDepth(i), 0u);
      EXPECT_EQ(fleet.TenantSummary(i).final_true_count,
                fleet.engine(i).Summary().final_true_count);
    }
    // The schedule actually rationed service: some round left a backlogged
    // tenant waiting (otherwise the case exercised nothing).
    uint64_t max_gap = 0;
    for (const auto& ts : stats.tenant_service) {
      max_gap = std::max(max_gap, ts.gap_max);
    }
    EXPECT_GT(max_gap, 1u);
  }
}

TEST(PrioritySchedulerTest, HotTenantsGetMoreServiceUnderSkewedTraffic) {
  // Zipf-skewed arrival volumes with a tight service budget: the scheduler
  // should grant backlogged (hot) tenants more engine steps than near-idle
  // tail tenants — while still servicing the tail (no starvation) — and the
  // weighted Jain index should stay well above the 1/N monopoly floor.
  ZipfFleetParams zp;
  zp.num_tenants = 4;
  zp.s = 1.2;
  zp.steps = 48;
  zp.seed = 5;
  const std::vector<GeneratedWorkload> streams =
      GenerateZipfFleetWorkloads(zp);
  std::vector<DeploymentFleet::TenantSpec> specs(zp.num_tenants);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "zipf#" + std::to_string(i);
    specs[i].config = DefaultTpcDsConfig();
    specs[i].config.max_batches_per_step = 2;
    specs[i].workload = &streams[i];
  }
  DeploymentFleet::SchedulerOptions sched;
  sched.enabled = true;
  sched.services_per_round = 2;
  sched.aging_weight = 2;
  DeploymentFleet fleet(specs, WithScheduler(/*root=*/23, /*threads=*/2,
                                             /*lead=*/8, /*coalesce=*/false,
                                             sched));
  fleet.RunAll();
  ASSERT_TRUE(fleet.done());
  const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_GT(stats.tenant_service[i].services, 0u);
  }
  EXPECT_GT(stats.jain_fairness, 1.0 / static_cast<double>(zp.num_tenants));
  EXPECT_LE(stats.jain_fairness, 1.0);
}

}  // namespace
}  // namespace incshrink
