// Sharded-cache equivalence suite (extends the parallel_equivalence_test
// pattern to sharding *inside* one deployment):
//
//   * K == 1 must be the unsharded engine bit for bit (the golden-transcript
//     suite pins this against checked-in baselines; here we additionally
//     verify the thread knob is inert and the budget slice is the whole
//     eps);
//   * K in {2, 4} must produce bit-identical summaries AND transcripts at
//     1 / 2 / 8 shard threads, for all three Shrink strategies;
//   * the per-shard budget slices must sequentially compose to exactly the
//     configured eps, and the per-shard counters must keep the Alg.-1
//     conservation invariant shard by shard.
//
// Run under the TSan CI job together with the parallel/determinism suites.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/dp/composition.h"
#include "src/oblivious/cache_ops.h"
#include "src/storage/sharded_cache.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

void ExpectEngineIdentical(const Engine& a, const Engine& b) {
  ExpectSummaryIdentical(a.Summary(), b.Summary());
  ASSERT_EQ(a.transcript().size(), b.transcript().size());
  for (size_t i = 0; i < a.transcript().size(); ++i) {
    EXPECT_EQ(a.transcript()[i], b.transcript()[i]) << "event " << i;
  }
  ASSERT_EQ(a.releases().size(), b.releases().size());
  for (size_t i = 0; i < a.releases().size(); ++i) {
    EXPECT_EQ(a.releases()[i].t, b.releases()[i].t);
    EXPECT_EQ(a.releases()[i].size, b.releases()[i].size);
    EXPECT_EQ(a.releases()[i].fired, b.releases()[i].fired);
  }
}

GeneratedWorkload SmallTpcDs() {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 21;
  return GenerateTpcDs(p);
}

IncShrinkConfig ShardTestConfig(Strategy strategy, uint32_t shards,
                                int threads) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = strategy;
  cfg.ant_theta = 8;         // low enough that sharded ANT counters fire
  cfg.flush_interval = 16;   // exercise the sharded flush merge
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  return cfg;
}

// ---------------------------------------------------------------------------
// Shard map and seed derivation
// ---------------------------------------------------------------------------

TEST(ShardMapTest, DerivedShardSeedsDistinctAndDisjointFromTenantSeeds) {
  for (const uint64_t seed : {0ull, 42ull, 0xFEEDFACEull}) {
    std::vector<uint64_t> all;
    for (size_t k = 0; k < 16; ++k) {
      all.push_back(DeriveShardSeed(seed, k));
      all.push_back(DeriveTenantSeed(seed, k));  // salted streams: no alias
    }
    for (size_t i = 0; i < all.size(); ++i) {
      for (size_t j = i + 1; j < all.size(); ++j) {
        EXPECT_NE(all[i], all[j]) << i << "," << j;
      }
    }
  }
}

TEST(ShardMapTest, AppendIndexRoutingIsDeterministicAndCoversAllShards) {
  for (const size_t shards : {1u, 2u, 4u, 7u}) {
    std::vector<uint64_t> hits(shards, 0);
    for (uint64_t idx = 0; idx < 4000; ++idx) {
      const size_t k = ShardOfAppendIndex(idx, shards);
      ASSERT_LT(k, shards);
      EXPECT_EQ(k, ShardOfAppendIndex(idx, shards));  // pure function
      ++hits[k];
    }
    for (size_t k = 0; k < shards; ++k) {
      // splitmix64 spreads consecutive indices near-uniformly.
      EXPECT_GT(hits[k], 4000 / shards / 2) << "shard " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Budget split: sequential composition reproduces the configured eps exactly
// ---------------------------------------------------------------------------

TEST(ShardBudgetTest, SlicesComposeToConfiguredEpsExactly) {
  for (const double eps : {1.5, 1.0, 0.3, 7.25}) {
    for (const size_t shards : {1u, 2u, 3u, 4u, 5u, 8u}) {
      const std::vector<double> slices =
          SplitShardBudget(eps, shards, /*sensitivity=*/10, /*releases=*/1);
      ASSERT_EQ(slices.size(), shards);
      for (const double s : slices) EXPECT_GT(s, 0.0);
      EXPECT_EQ(SequentialComposition(slices), eps)
          << "eps " << eps << " shards " << shards;
    }
  }
  // The unsharded split is the identity — not merely close to it.
  EXPECT_EQ(SplitShardBudget(1.5, 1, 10, 1), std::vector<double>{1.5});
}

TEST(ShardBudgetTest, EngineExposesComposedSlices) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const uint32_t shards : {1u, 4u}) {
    const IncShrinkConfig cfg =
        ShardTestConfig(Strategy::kDpTimer, shards, 1);
    SynchronousDeployment engine_dep(cfg);
    ASSERT_TRUE(engine_dep.Run(w.t1, w.t2).ok());
    const Engine& engine = engine_dep.engine();
    ASSERT_EQ(engine.shard_epsilons().size(), shards);
    EXPECT_EQ(SequentialComposition(engine.shard_epsilons()), cfg.eps);
    // The owner-side composition story is untouched by sharding.
    EXPECT_EQ(engine.ComposedEpsilon(), cfg.eps);
  }
}

// ---------------------------------------------------------------------------
// K == 1: the thread knob must be completely inert
// ---------------------------------------------------------------------------

TEST(ShardedEquivalenceTest, UnshardedEngineIgnoresThreadKnob) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kEp}) {
    SCOPED_TRACE(StrategyName(strategy));
    SynchronousDeployment ref_dep(ShardTestConfig(strategy, 1, 1));
    ASSERT_TRUE(ref_dep.Run(w.t1, w.t2).ok());
    const Engine& ref = ref_dep.engine();
    EXPECT_EQ(ref.shard_epsilons(), std::vector<double>{ref.config().eps});
    SynchronousDeployment other_dep(ShardTestConfig(strategy, 1, 8));
    ASSERT_TRUE(other_dep.Run(w.t1, w.t2).ok());
    const Engine& other = other_dep.engine();
    ExpectEngineIdentical(ref, other);
  }
}

// ---------------------------------------------------------------------------
// K in {2, 4}: bit-identical across 1 / 2 / 8 shard threads
// ---------------------------------------------------------------------------

TEST(ShardedEquivalenceTest, ShardedRunsInvariantAcrossThreadCounts) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kEp}) {
    for (const uint32_t shards : {2u, 4u}) {
      SynchronousDeployment ref_dep(ShardTestConfig(strategy, shards, 1));
      ASSERT_TRUE(ref_dep.Run(w.t1, w.t2).ok());
      const Engine& ref = ref_dep.engine();
      for (const int threads : {2, 8}) {
        SCOPED_TRACE(std::string(StrategyName(strategy)) + " shards=" +
                     std::to_string(shards) + " threads=" +
                     std::to_string(threads));
        SynchronousDeployment run_dep(ShardTestConfig(strategy, shards, threads));
        ASSERT_TRUE(run_dep.Run(w.t1, w.t2).ok());
        const Engine& run = run_dep.engine();
        ExpectEngineIdentical(ref, run);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded conservation: per-shard counters keep the Alg.-1 invariant and
// no real row is created or destroyed by the routing
// ---------------------------------------------------------------------------

TEST(ShardedConservationTest, PerShardCountersMatchShardContents) {
  const GeneratedWorkload w = SmallTpcDs();
  IncShrinkConfig cfg = ShardTestConfig(Strategy::kDpTimer, 4, 2);
  cfg.timer_T = 1000;       // beyond the stream: never release ...
  cfg.flush_interval = 0;   // ... never flush: everything stays cached
  SynchronousDeployment engine_dep(cfg);
  ASSERT_TRUE(engine_dep.Run(w.t1, w.t2).ok());
  const Engine& engine = engine_dep.engine();

  Party probe0(0, 1), probe1(1, 2);
  Protocol2PC probe(&probe0, &probe1, CostModel::Free());
  const ShardedSecureCache& cache = engine.sharded_cache();
  uint32_t cached_real = 0;
  for (size_t k = 0; k < cache.num_shards(); ++k) {
    const uint32_t in_shard = CountRealInside(&probe, cache.shard(k).rows());
    EXPECT_EQ(cache.shard(k).RecoverCounterInside(&probe), in_shard)
        << "shard " << k;
    cached_real += in_shard;
  }
  EXPECT_EQ(cached_real, engine.Summary().total_real_entries_cached);
}

TEST(ShardedConservationTest, ShardedViewLosesNothingWithoutFlushes) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const uint32_t shards : {2u, 4u}) {
    IncShrinkConfig cfg = ShardTestConfig(Strategy::kDpTimer, shards, 2);
    cfg.flush_interval = 0;  // flushing is the only lossy operation
    SynchronousDeployment engine_dep(cfg);
    ASSERT_TRUE(engine_dep.Run(w.t1, w.t2).ok());
    const Engine& engine = engine_dep.engine();
    Party probe0(0, 1), probe1(1, 2);
    Protocol2PC probe(&probe0, &probe1, CostModel::Free());
    uint32_t cached_real = 0;
    const ShardedSecureCache& cache = engine.sharded_cache();
    for (size_t k = 0; k < cache.num_shards(); ++k) {
      cached_real += CountRealInside(&probe, cache.shard(k).rows());
    }
    const uint32_t in_view = CountRealInside(&probe, engine.view().rows());
    EXPECT_EQ(in_view + cached_real,
              engine.Summary().total_real_entries_cached)
        << "shards " << shards;
  }
}

// ---------------------------------------------------------------------------
// Sharded engines inside a fleet: the two parallel layers compose
// ---------------------------------------------------------------------------

TEST(ShardedFleetTest, ShardedTenantsMatchStandaloneShardedEngines) {
  const GeneratedWorkload w = SmallTpcDs();
  IncShrinkConfig cfg = ShardTestConfig(Strategy::kDpTimer, 2, 2);
  DeploymentFleet fleet({{"a", cfg, &w}, {"b", cfg, &w}},
                        {/*root_seed=*/99, /*num_threads=*/2});
  fleet.RunAll();
  for (size_t i = 0; i < fleet.num_tenants(); ++i) {
    IncShrinkConfig standalone_cfg = cfg;
    standalone_cfg.seed = DeriveTenantSeed(99, i);
    SynchronousDeployment standalone_dep(standalone_cfg);
    ASSERT_TRUE(standalone_dep.Run(w.t1, w.t2).ok());
    const Engine& standalone = standalone_dep.engine();
    SCOPED_TRACE("tenant " + std::to_string(i));
    ExpectEngineIdentical(standalone, fleet.engine(i));
  }
}

}  // namespace
}  // namespace incshrink
