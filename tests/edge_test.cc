#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/bounds.h"
#include "src/mpc/party.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/join.h"
#include "src/relational/encode.h"
#include "src/storage/serialization.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Share-blob serialization (server restart / snapshot support)
// ---------------------------------------------------------------------------

TEST(SerializationTest, RoundTripBothServers) {
  Rng rng(1);
  SharedRows rows(3);
  for (int i = 0; i < 50; ++i) {
    rows.AppendSecretRow({rng.Next32(), rng.Next32(), rng.Next32()}, &rng);
  }
  const auto blob0 = SerializeShares(rows, 0);
  const auto blob1 = SerializeShares(rows, 1);
  const auto restored = CombineShareBlobs(blob0, blob1);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), rows.size());
  ASSERT_EQ(restored->width(), rows.width());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(restored->RecoverRow(r), rows.RecoverRow(r));
  }
}

TEST(SerializationTest, EmptyTable) {
  SharedRows rows(5);
  const auto restored =
      CombineShareBlobs(SerializeShares(rows, 0), SerializeShares(rows, 1));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(restored->width(), 5u);
}

TEST(SerializationTest, RejectsCorruptBlobs) {
  Rng rng(2);
  SharedRows rows(2);
  rows.AppendSecretRow({1, 2}, &rng);
  auto blob = SerializeShares(rows, 0);

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseShareBlob(bad_magic).ok());

  std::vector<uint8_t> truncated(blob.begin(), blob.end() - 3);
  EXPECT_FALSE(ParseShareBlob(truncated).ok());

  EXPECT_FALSE(ParseShareBlob({1, 2, 3}).ok());
}

TEST(SerializationTest, RejectsMismatchedDimensions) {
  Rng rng(3);
  SharedRows a(2), b(3);
  a.AppendSecretRow({1, 2}, &rng);
  b.AppendSecretRow({1, 2, 3}, &rng);
  EXPECT_FALSE(
      CombineShareBlobs(SerializeShares(a, 0), SerializeShares(b, 1)).ok());
}

TEST(SerializationTest, SingleBlobLooksUniform) {
  // One server's snapshot alone must be statistically uniform even for
  // all-zero plaintext (confidentiality at rest).
  Rng rng(4);
  SharedRows rows(1);
  for (int i = 0; i < 20000; ++i) rows.AppendSecretRow({0}, &rng);
  const auto parsed = ParseShareBlob(SerializeShares(rows, 1));
  ASSERT_TRUE(parsed.ok());
  int64_t bits = 0;
  for (Word w : parsed->words) bits += __builtin_popcount(w);
  EXPECT_NEAR(static_cast<double>(bits) / parsed->words.size(), 16.0, 0.15);
}

// ---------------------------------------------------------------------------
// Banded windows (window_lo > 0) — supported but otherwise unexercised
// ---------------------------------------------------------------------------

TEST(BandedWindowTest, JoinRespectsLowerBound) {
  Party s0(0, 5), s1(1, 6);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(7);
  SharedRows t1(kSrcWidth), t2(kSrcWidth);
  t1.AppendSecretRow(EncodeSourceRow({1, 1, 9, 100, 0}), &rng);
  // Deltas: 2 (below band), 5 (inside), 9 (above).
  t2.AppendSecretRow(EncodeSourceRow({1, 2, 9, 102, 0}), &rng);
  t2.AppendSecretRow(EncodeSourceRow({1, 3, 9, 105, 0}), &rng);
  t2.AppendSecretRow(EncodeSourceRow({1, 4, 9, 109, 0}), &rng);
  JoinSpec spec{3, 7, true, 5, true, true};  // band [3, 7]
  uint64_t seq = 0;
  const JoinResult r = TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq);
  EXPECT_EQ(r.real_count, 1u);
  // The surviving pair is the delta-5 one.
  bool found = false;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    if (r.rows.RecoverAt(i, kViewIsViewCol) & 1) {
      EXPECT_EQ(r.rows.RecoverAt(i, kViewDate2Col), 105u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BandedWindowTest, NoWindowJoinsEverything) {
  Party s0(0, 8), s1(1, 9);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(10);
  SharedRows t1(kSrcWidth), t2(kSrcWidth);
  t1.AppendSecretRow(EncodeSourceRow({1, 1, 9, 1, 0}), &rng);
  t2.AppendSecretRow(EncodeSourceRow({1, 2, 9, 4000000000u, 0}), &rng);
  JoinSpec spec{0, 10, /*use_window=*/false, 1, true, true};
  uint64_t seq = 0;
  EXPECT_EQ(TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq).real_count,
            1u);
}

// ---------------------------------------------------------------------------
// Oblivious selection trace invariance
// ---------------------------------------------------------------------------

TEST(SelectObliviousnessTest, TraceIndependentOfSelectivity) {
  CircuitStats traces[2];
  for (int variant = 0; variant < 2; ++variant) {
    Party s0(0, 1), s1(1, 2);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    Rng rng(11);
    SharedRows rows(2);
    for (Word i = 0; i < 64; ++i) {
      // Variant 0: everything passes; variant 1: nothing passes.
      rows.AppendSecretRow({1, variant == 0 ? 5u : 500u}, &rng);
    }
    const CircuitStats before = proto.Snapshot();
    ObliviousSelect(&proto, &rows, 0,
                    ObliviousPredicate::ColumnLess(1, 100));
    traces[variant] = proto.StatsSince(before);
  }
  EXPECT_EQ(traces[0].and_gates, traces[1].and_gates);
  EXPECT_EQ(traces[0].bytes, traces[1].bytes);
}

// ---------------------------------------------------------------------------
// Degenerate engine inputs
// ---------------------------------------------------------------------------

TEST(DegenerateInputTest, EmptyStreamRunsCleanly) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  SynchronousDeployment engine(cfg);
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(engine.Step({}, {}).ok());
  }
  const RunSummary s = engine.Summary();
  EXPECT_EQ(s.final_true_count, 0u);
  // Noise can still pull dummies into the view, but answers stay 0.
  for (const StepMetrics& m : engine.step_metrics()) {
    EXPECT_EQ(m.view_answer, 0u);
  }
}

TEST(DegenerateInputTest, SingleStepRun) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kEp;
  SynchronousDeployment engine(cfg);
  ASSERT_TRUE(
      engine.Step({{1, 1, 7, 1, 0}}, {{1, 2, 7, 2, 0}}).ok());
  EXPECT_EQ(engine.step_metrics().back().true_count, 1u);
  EXPECT_EQ(engine.step_metrics().back().view_answer, 1u);
}

TEST(DegenerateInputTest, TimerLongerThanRunNeverFires) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 1000;
  cfg.flush_interval = 0;
  TpcDsParams p;
  p.steps = 20;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  EXPECT_EQ(deployment.Summary().updates, 0u);
  EXPECT_EQ(deployment.engine().view().size(), 0u);
}

TEST(DegenerateInputTest, ZeroEpsRejected) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.eps = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

// ---------------------------------------------------------------------------
// ANT deferred data against the Theorem-6 bound
// ---------------------------------------------------------------------------

TEST(TheoremSixTest, AntDeferredDataUnderBound) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpAnt;
  cfg.flush_interval = 0;
  TpcDsParams p;
  p.steps = 200;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();

  Party probe0(0, 1), probe1(1, 2);
  Protocol2PC probe(&probe0, &probe1, CostModel::Free());
  uint32_t deferred = 0;
  for (size_t r = 0; r < engine.shard_cache(0).rows().size(); ++r) {
    deferred += engine.shard_cache(0).rows().RecoverAt(r, 0) & 1;
  }
  const double bound =
      AntDeferredBound(cfg.budget_b, cfg.eps, p.steps, 0.05);
  EXPECT_LT(static_cast<double>(deferred), bound);
}

}  // namespace
}  // namespace incshrink
