#include <gtest/gtest.h>

#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"
#include "src/common/rng.h"
#include "src/storage/materialized_view.h"
#include "src/storage/outsourced_store.h"
#include "src/storage/secure_cache.h"
#include "src/storage/serialization.h"

namespace incshrink {
namespace {

SharedRows MakeBatch(Rng* rng, size_t width, const std::vector<Word>& firsts) {
  SharedRows batch(width);
  for (Word f : firsts) {
    std::vector<Word> row(width, 0);
    row[0] = f;
    batch.AppendSecretRow(row, rng);
  }
  return batch;
}

TEST(OutsourcedTableTest, BatchesByStep) {
  Rng rng(1);
  OutsourcedTable t(3);
  EXPECT_EQ(t.AppendBatch(MakeBatch(&rng, 3, {1, 2})), 0u);
  EXPECT_EQ(t.AppendBatch(MakeBatch(&rng, 3, {3})), 1u);
  EXPECT_EQ(t.AppendBatch(MakeBatch(&rng, 3, {4, 5, 6})), 2u);
  EXPECT_EQ(t.steps(), 3u);
  EXPECT_EQ(t.total_rows(), 6u);
  EXPECT_EQ(t.batch(1).size(), 1u);
  EXPECT_EQ(t.batch(1).RecoverAt(0, 0), 3u);
}

TEST(OutsourcedTableTest, ConcatRange) {
  Rng rng(2);
  OutsourcedTable t(1);
  for (Word s = 0; s < 5; ++s) t.AppendBatch(MakeBatch(&rng, 1, {s * 10}));
  const SharedRows mid = t.ConcatRange(1, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.RecoverAt(0, 0), 10u);
  EXPECT_EQ(mid.RecoverAt(2, 0), 30u);
  EXPECT_EQ(t.ConcatRange(4, 100).size(), 1u);  // clamps
  EXPECT_EQ(t.ConcatAll().size(), 5u);
}

TEST(OutsourcedTableTest, EmptyRanges) {
  OutsourcedTable t(2);
  EXPECT_EQ(t.ConcatAll().size(), 0u);
  EXPECT_EQ(t.ConcatRange(0, 5).size(), 0u);
}

class SecureCacheTest : public ::testing::Test {
 protected:
  SecureCacheTest()
      : s0_(0, 5), s1_(1, 6), proto_(&s0_, &s1_, CostModel::EmpLikeLan()) {}
  Party s0_;
  Party s1_;
  Protocol2PC proto_;
};

TEST_F(SecureCacheTest, CounterStartsAtZeroShared) {
  SecureCache cache(&proto_);
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 0u);
  // The shared representation itself must not be the trivial (0, 0) pair.
  EXPECT_NE(cache.counter().s0, 0u);
}

TEST_F(SecureCacheTest, AddAndResetCounter) {
  SecureCache cache(&proto_);
  cache.AddToCounter(&proto_, 7);
  cache.AddToCounter(&proto_, 5);
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 12u);
  const WordShares before = cache.counter();
  cache.ResetCounter(&proto_);
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 0u);
  EXPECT_NE(cache.counter().s0, before.s0);  // fresh randomness
}

TEST_F(SecureCacheTest, CounterResharedEachUpdate) {
  SecureCache cache(&proto_);
  cache.AddToCounter(&proto_, 1);
  const Word share_a = cache.counter().s0;
  cache.AddToCounter(&proto_, 0);  // same value, new shares
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 1u);
  EXPECT_NE(cache.counter().s0, share_a);
}

TEST_F(SecureCacheTest, AppendGrowsRows) {
  SecureCache cache(&proto_);
  Rng rng(7);
  SharedRows delta(kViewWidth);
  uint64_t seq = 0;
  AppendDummyViewRow(&delta, &rng, &seq);
  AppendDummyViewRow(&delta, &rng, &seq);
  cache.Append(delta);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.seq(), 0u);  // engine-side seq is separate
}

TEST(CacheSortKeyTest, MonotoneAcrossOldWrapBoundaries) {
  // Regression: with a uint32_t sequence the FIFO key field wrapped at 2^31
  // (31-bit mask) and the counter itself aliased at 2^32. The 64-bit
  // sequence maps real rows onto [1, 2^32 - 1], strictly decreasing through
  // both old boundaries (the key cycles only after 2^32 - 1 insertions).
  const uint64_t kWindows[][2] = {
      {(1ull << 31) - 4, (1ull << 31) + 4},   // old mask-wrap boundary
      {(1ull << 32) - 8, (1ull << 32) - 2},   // old counter-overflow edge
  };
  for (const auto& w : kWindows) {
    for (uint64_t seq = w[0]; seq < w[1]; ++seq) {
      const Word newer = MakeCacheSortKey(true, seq + 1);
      const Word older = MakeCacheSortKey(true, seq);
      EXPECT_LT(newer, older) << "seq " << seq;
      EXPECT_GT(newer, MakeCacheSortKey(false, seq)) << "seq " << seq;
    }
  }
}

TEST_F(SecureCacheTest, FifoSurvivesTheOldWrapBoundary) {
  // End-to-end: rows appended with insertion sequences straddling 2^31 (the
  // old wrap point) come back in FIFO order from an oblivious cache read.
  SecureCache cache(&proto_);
  Rng rng(9);
  *cache.seq() = (1ull << 31) - 3;
  for (Word i = 0; i < 6; ++i) {
    std::vector<Word> row(kViewWidth, 0);
    row[kViewIsViewCol] = 1;
    row[kViewSortKeyCol] = MakeCacheSortKey(true, (*cache.seq())++);
    row[kViewKeyCol] = i;  // insertion rank
    cache.rows()->AppendSecretRow(row, &rng);
  }
  SharedRows out = ObliviousCacheRead(&proto_, cache.rows(), 6);
  ASSERT_EQ(out.size(), 6u);
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out.RecoverAt(r, kViewKeyCol), r) << "position " << r;
  }
}

TEST(MaterializedViewTest, AppendAndSize) {
  MaterializedView view;
  EXPECT_EQ(view.size(), 0u);
  EXPECT_DOUBLE_EQ(view.SizeMb(), 0.0);
  Rng rng(8);
  SharedRows batch(kViewWidth);
  uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) AppendDummyViewRow(&batch, &rng, &seq);
  view.Append(batch);
  EXPECT_EQ(view.size(), 100u);
  // 100 rows * 7 words * 4 bytes * 2 servers.
  EXPECT_NEAR(view.SizeMb(), 100.0 * 7 * 4 * 2 / (1024.0 * 1024.0), 1e-12);
}


// ---------------------------------------------------------------------------
// Share-blob serialization hardening
// ---------------------------------------------------------------------------

// Builds the 20-byte ISR1 header claiming the given dimensions, with
// `payload_words` actual u32 words behind it.
std::vector<uint8_t> HostileBlobHeader(uint64_t width, uint64_t rows,
                                       size_t payload_words) {
  std::vector<uint8_t> bytes = {'I', 'S', 'R', '1'};
  for (int i = 0; i < 8; ++i) bytes.push_back((width >> (8 * i)) & 0xFF);
  for (int i = 0; i < 8; ++i) bytes.push_back((rows >> (8 * i)) & 0xFF);
  bytes.resize(bytes.size() + payload_words * 4, 0xAB);
  return bytes;
}

TEST(ShareBlobTest, OverflowingDimensionHeadersRejected) {
  // Regression: width = rows = 2^32 wraps width*rows to 0, so the hostile
  // 20-byte header used to pass the exact-size check and come back as a
  // blob claiming 2^64 dimensions with zero words.
  const uint64_t two32 = 1ull << 32;
  EXPECT_FALSE(ParseShareBlob(HostileBlobHeader(two32, two32, 0)).ok());
  // Regression: width = 1, rows = 2^62 wraps the expected byte count
  // (20 + 2^62*4) back to 20, again matching the bare header exactly.
  EXPECT_FALSE(ParseShareBlob(HostileBlobHeader(1, 1ull << 62, 0)).ok());
  // Zero width must not smuggle a nonzero row count through words == 0.
  EXPECT_FALSE(ParseShareBlob(HostileBlobHeader(0, 1ull << 62, 0)).ok());
  // Other wrap points around the u64 boundary.
  EXPECT_FALSE(ParseShareBlob(HostileBlobHeader(1ull << 33, 1ull << 31, 2)).ok());
  EXPECT_FALSE(ParseShareBlob(HostileBlobHeader(UINT64_MAX, UINT64_MAX, 1)).ok());
  // Honest dimensions still parse.
  const Result<ShareBlob> ok = ParseShareBlob(HostileBlobHeader(2, 3, 6));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->width, 2u);
  EXPECT_EQ(ok->rows, 3u);
  EXPECT_EQ(ok->words.size(), 6u);
}

TEST(ShareBlobTest, CombineOnHostileBlobsReturnsStatusNeverCrashes) {
  // CombineShareBlobs indexes words[r*width + c] for r < rows: a blob that
  // claimed huge dimensions with an empty words array would read (far) out
  // of bounds. Every hostile pairing must surface as a Status.
  Rng rng(17);
  SharedRows honest(3);
  std::vector<Word> row(3);
  for (int i = 0; i < 4; ++i) {
    for (Word& w : row) w = rng.Next32();
    honest.AppendSecretRow(row, &rng);
  }
  const std::vector<uint8_t> good0 = SerializeShares(honest, 0);
  const std::vector<uint8_t> good1 = SerializeShares(honest, 1);
  ASSERT_TRUE(CombineShareBlobs(good0, good1).ok());
  const std::vector<std::vector<uint8_t>> hostile = {
      HostileBlobHeader(1ull << 32, 1ull << 32, 0),
      HostileBlobHeader(1, 1ull << 62, 0),
      HostileBlobHeader(0, 5, 0),
  };
  for (const std::vector<uint8_t>& bad : hostile) {
    EXPECT_FALSE(CombineShareBlobs(bad, bad).ok());
    EXPECT_FALSE(CombineShareBlobs(good0, bad).ok());
    EXPECT_FALSE(CombineShareBlobs(bad, good1).ok());
  }
}

TEST(ShareBlobDeathTest, SerializeSharesRejectsUnknownServer) {
  Rng rng(5);
  SharedRows rows(2);
  rows.AppendSecretRow({1, 2}, &rng);
  // Any server other than 0/1 used to silently alias server 1's shares;
  // now it is a loud programming-error abort.
  EXPECT_DEATH(SerializeShares(rows, 2), "server");
  EXPECT_DEATH(SerializeShares(rows, -1), "server");
}

// ---------------------------------------------------------------------------
// Upload-frame wire format (transport serialization)
// ---------------------------------------------------------------------------

UploadFrame RandomFrame(Rng* rng, size_t width, size_t rows,
                        size_t arrivals) {
  UploadFrame frame;
  frame.owner_step = rng->Next64();
  frame.batch = SharedRows(width);
  std::vector<Word> row0(width), row1(width);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < width; ++c) {
      row0[c] = rng->Next32();
      row1[c] = rng->Next32();
    }
    frame.batch.AppendSharedRow(row0, row1);
  }
  for (size_t i = 0; i < arrivals; ++i) {
    frame.arrivals.push_back({rng->Next64(), rng->Next32(), rng->Next32(),
                              rng->Next32(), rng->Next32()});
  }
  return frame;
}

TEST(UploadFrameTest, RandomFramesRoundTripByteExactly) {
  Rng rng(4711);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t width = 1 + rng.Uniform(9);
    const size_t rows = rng.Uniform(40);
    const size_t arrivals = rng.Uniform(20);
    const UploadFrame frame = RandomFrame(&rng, width, rows, arrivals);
    const std::vector<uint8_t> bytes = EncodeUploadFrame(frame);
    const Result<UploadFrame> decoded = DecodeUploadFrame(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->owner_step, frame.owner_step);
    EXPECT_EQ(decoded->batch.width(), width);
    EXPECT_EQ(decoded->batch.size(), rows);
    EXPECT_EQ(decoded->batch.shares0(), frame.batch.shares0());
    EXPECT_EQ(decoded->batch.shares1(), frame.batch.shares1());
    ASSERT_EQ(decoded->arrivals.size(), arrivals);
    for (size_t i = 0; i < arrivals; ++i) {
      EXPECT_EQ(decoded->arrivals[i].step, frame.arrivals[i].step);
      EXPECT_EQ(decoded->arrivals[i].rid, frame.arrivals[i].rid);
      EXPECT_EQ(decoded->arrivals[i].key, frame.arrivals[i].key);
      EXPECT_EQ(decoded->arrivals[i].date, frame.arrivals[i].date);
      EXPECT_EQ(decoded->arrivals[i].payload, frame.arrivals[i].payload);
    }
    // Byte-exactness: re-encoding the decoded frame reproduces the original
    // buffer bit for bit (the format has one canonical encoding).
    EXPECT_EQ(EncodeUploadFrame(*decoded), bytes);
  }
}

TEST(UploadFrameTest, EveryTruncationReturnsStatusNotCrash) {
  Rng rng(99);
  const UploadFrame frame = RandomFrame(&rng, kSrcWidth, 7, 5);
  const std::vector<uint8_t> bytes = EncodeUploadFrame(frame);
  // Chop the frame at every possible length: all prefixes must decode to a
  // clean InvalidArgument, never crash or succeed.
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.begin() + len);
    const Result<UploadFrame> r = DecodeUploadFrame(truncated);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
  ASSERT_TRUE(DecodeUploadFrame(bytes).ok());
}

TEST(UploadFrameTest, CorruptHeadersRejected) {
  Rng rng(7);
  const UploadFrame frame = RandomFrame(&rng, 3, 2, 1);
  std::vector<uint8_t> bytes = EncodeUploadFrame(frame);
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;  // magic
    EXPECT_FALSE(DecodeUploadFrame(bad).ok());
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[3] = 0x7F;  // unknown version
    EXPECT_FALSE(DecodeUploadFrame(bad).ok());
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);  // trailing garbage
    EXPECT_FALSE(DecodeUploadFrame(bad).ok());
  }
  {
    // A hostile row count far beyond the buffer must fail cleanly before
    // any allocation.
    std::vector<uint8_t> bad = bytes;
    for (int i = 0; i < 8; ++i) bad[20 + i] = 0xFF;  // rows field
    EXPECT_FALSE(DecodeUploadFrame(bad).ok());
  }
  {
    // width = 0 must not smuggle an unbounded row count past the
    // payload-fit check (zero-width rows carry no payload bytes): the
    // decode must reject immediately, not loop for 2^64 appends.
    std::vector<uint8_t> bad = bytes;
    for (int i = 0; i < 8; ++i) bad[12 + i] = 0;     // width field
    for (int i = 0; i < 8; ++i) bad[20 + i] = 0xFF;  // rows field
    EXPECT_FALSE(DecodeUploadFrame(bad).ok());
  }
}

}  // namespace
}  // namespace incshrink
