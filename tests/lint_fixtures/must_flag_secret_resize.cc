// Lint self-test fixture: secret-sized allocations MUST be flagged.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 3
#include <vector>

#include "src/mpc/protocol.h"

namespace incshrink {

void LeakyAlloc(Protocol2PC* proto, SharedRows* cache, WordShares n) {
  const Word sz = proto->RecoverInside(n);
  std::vector<Word> buf;
  buf.resize(sz);           // FINDING: allocation size from secret
  buf.reserve(sz * 2);      // FINDING: reservation size from secret
  cache->Truncate(sz);      // FINDING: public row count changed by secret
  buf.resize(cache->size());  // public metadata: clean
}

}  // namespace incshrink
