// Lint self-test fixture: secret-derived memory indices MUST be flagged.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 2
#include <vector>

#include "src/mpc/protocol.h"

namespace incshrink {

Word LeakyIndex(Protocol2PC* proto, const SharedRows& rows,
                const std::vector<Word>& table, WordShares idx) {
  const Word i = proto->RecoverInside(idx);
  Word out = table[i];  // FINDING: array subscript on secret index
  const std::vector<Word> row = rows.RecoverRow(0);
  out ^= table[row[2]];  // FINDING: subscript on recovered row value
  out ^= table[rows.size() - 1];  // public metadata index: clean
  return out;
}

}  // namespace incshrink
