// Lint self-test fixture: secret-dependent control flow MUST be flagged.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 4
#include "src/mpc/protocol.h"

namespace incshrink {

void LeakyBranches(Protocol2PC* proto, const SharedRows& rows, WordShares x) {
  const Word v = RecoverWord(x);  // recovered secret plaintext
  if (v > 16) {  // FINDING: if condition on secret
    proto->AccountRounds(1);
  }
  while (v != 0) {  // FINDING: while condition on secret
    break;
  }
  for (size_t i = 0; i < v; ++i) {  // FINDING: loop bound on secret
    proto->AccountRounds(1);
  }
  const int cls = v > 100 ? 1 : 0;  // FINDING: ternary condition on secret
  (void)cls;
  (void)rows;
}

}  // namespace incshrink
