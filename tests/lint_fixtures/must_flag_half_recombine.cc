// Lint self-test fixture: combining BOTH shares of one word recovers the
// secret; a single share is uniform noise and stays public.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 2
#include "src/mpc/protocol.h"

namespace incshrink {

void HalfShares(const SharedRows& rows, WordShares x) {
  const Word k = rows.share0_at(0, 0) ^ rows.share1_at(0, 0);
  if (k != 0) {  // FINDING: both halves recombined -> secret
    return;
  }
  if (x.s0 ^ x.s1) {  // FINDING: field-level recombination
    return;
  }
  const Word h = rows.share0_at(0, 0);
  if (h != 0) {  // single share: uniform noise, clean
    return;
  }
  if (x.s1 == 7) {  // single share field: clean
    return;
  }
}

}  // namespace incshrink
