// Lint self-test fixture: branches on DECLASSIFIED values are clean — a
// deliberate Reveal, the DP release clamp, and public container metadata
// are the sanctioned laundering points.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 0
#include "src/dp/laplace.h"
#include "src/mpc/protocol.h"

namespace incshrink {

void DeclassifiedBranches(Protocol2PC* proto, const SharedRows& rows,
                          WordShares count) {
  const Word opened = proto->Reveal(count);  // sanctioned opening
  if (opened > 4) {  // clean: declassified by Reveal
    proto->AccountRounds(1);
  }
  const uint32_t released =
      ClampRoundNonNegative(static_cast<double>(proto->Reveal(count)) + 0.5);
  for (uint32_t i = 0; i < released; ++i) {  // clean: DP-released size
    proto->AccountRounds(1);
  }
  if (rows.size() > 8 && rows.width() == 7) {  // clean: public metadata
    proto->AccountRounds(1);
  }
  const bool big = rows.TotalBytes() > 1024 ? true : false;  // clean
  (void)big;
}

}  // namespace incshrink
