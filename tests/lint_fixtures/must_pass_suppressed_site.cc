// Lint self-test fixture: `oblivious-ok` markers suppress (and count) both
// line-level and region-level findings.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 0
// expect-suppressed: 3
#include "src/mpc/protocol.h"

namespace incshrink {

void SuppressedSites(Protocol2PC* proto, WordShares x) {
  const Word v = RecoverWord(x);
  // oblivious-ok: fixture — standalone marker covers the next code line
  if (v > 1) {
    proto->AccountRounds(1);
  }
  if (v > 2) {  // oblivious-ok: fixture — same-line marker
    proto->AccountRounds(1);
  }
  // oblivious-ok-begin: fixture — region marker for scan-kernel idiom
  while (v != 0) {
    break;
  }
  // oblivious-ok-end
}

}  // namespace incshrink
