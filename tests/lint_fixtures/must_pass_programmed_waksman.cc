// Lint self-test fixture: a programmed-Waksman shuffle site is clean — the
// permutation comes from the jointly seeded resharing stream, so the routing
// program (network topology, layer sizes, every switch's control bit) is
// PUBLIC and may steer branches, loop bounds, and allocations. Only the
// shuffled payload (SharedRows) stays secret.
// Not compiled — analyzed by tools/lint/oblivious_lint.py --selftest.
// expect-findings: 0
#include "src/mpc/protocol.h"
#include "src/oblivious/shuffle.h"

namespace incshrink {

void ProgrammedWaksmanSite(Protocol2PC* proto, SharedRows* rows) {
  // Drawing the permutation is a sanctioned declassification: both servers
  // derive it from the shared resharing stream, independent of any payload.
  const std::vector<uint32_t> perm =
      DrawPublicPermutation(proto, rows->size());
  const std::vector<std::vector<ProgrammedSwitch>> layers =
      WaksmanNetwork(perm);
  for (const auto& layer : layers) {  // clean: public network topology
    for (const auto& sw : layer) {    // clean: public layer population
      if (sw.swap) {  // clean: control bits are public by construction
        proto->AccountRounds(0);
      }
    }
  }
  // Closed-form network stats are public too — fine as loop/alloc drivers.
  const uint64_t switches = ShuffleNetworkSwitches(rows->size());
  std::vector<uint64_t> per_layer(ShuffleNetworkDepth(rows->size()));
  for (uint64_t i = 0; i < switches && i < per_layer.size(); ++i) {
    per_layer[i] = i;
  }
  (void)per_layer;
}

}  // namespace incshrink
