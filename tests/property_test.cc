#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/accountant.h"
#include "src/dp/composition.h"
#include "src/dp/laplace.h"
#include "src/dp/svt.h"
#include "src/core/transform.h"
#include "src/mpc/party.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Oblivious sort properties
// ---------------------------------------------------------------------------

class SortPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SortPropertyTest, PreservesMultisetAndOrders) {
  const auto [n, width] = GetParam();
  Party s0(0, n * 31 + width), s1(1, n * 37 + width);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(n + width * 1000);

  SharedRows rows(width);
  std::multiset<Word> keys;
  std::map<Word, std::multiset<Word>> row_payloads;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Word> row(width);
    row[0] = rng.Next32() % 50;  // many duplicates
    for (size_t c = 1; c < width; ++c) row[c] = rng.Next32();
    keys.insert(row[0]);
    if (width > 1) row_payloads[row[0]].insert(row[1]);
    rows.AppendSecretRow(row, &rng);
  }
  ObliviousSort(&proto, &rows, 0, true);

  // Sorted order + exact key multiset preserved.
  std::multiset<Word> after;
  Word prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const Word k = rows.RecoverAt(i, 0);
    if (i > 0) {
      EXPECT_GE(k, prev);
    }
    prev = k;
    after.insert(k);
  }
  EXPECT_EQ(after, keys);

  // Rows moved as units: payloads still travel with their keys.
  if (width > 1) {
    std::map<Word, std::multiset<Word>> after_payloads;
    for (size_t i = 0; i < n; ++i) {
      after_payloads[rows.RecoverAt(i, 0)].insert(rows.RecoverAt(i, 1));
    }
    EXPECT_EQ(after_payloads, row_payloads);
  }
}

TEST_P(SortPropertyTest, Idempotent) {
  const auto [n, width] = GetParam();
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(n * 7 + width);
  SharedRows rows(width);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Word> row(width);
    for (size_t c = 0; c < width; ++c) row[c] = rng.Next32() % 100;
    rows.AppendSecretRow(row, &rng);
  }
  ObliviousSort(&proto, &rows, 0, true);
  std::vector<Word> once;
  for (size_t i = 0; i < n; ++i) once.push_back(rows.RecoverAt(i, 0));
  ObliviousSort(&proto, &rows, 0, true);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(rows.RecoverAt(i, 0), once[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 13, 64, 200),
                       ::testing::Values(1, 2, 7)));

// ---------------------------------------------------------------------------
// Cache read/flush conservation
// ---------------------------------------------------------------------------

class CacheConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheConservationTest, ReadsConserveRealRows) {
  const uint64_t seed = GetParam();
  Party s0(0, seed), s1(1, seed + 1);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(seed + 2);

  SharedRows cache(kViewWidth);
  uint64_t seq = 0;
  uint32_t total_real = 0;
  for (int i = 0; i < 120; ++i) {
    const bool real = rng.Bernoulli(0.35);
    std::vector<Word> row(kViewWidth, 0);
    row[kViewIsViewCol] = real;
    row[kViewSortKeyCol] = MakeCacheSortKey(real, seq++);
    cache.AppendSecretRow(row, &rng);
    total_real += real;
  }

  // Repeated random-size reads never create or destroy real rows.
  uint32_t fetched_real = 0;
  while (!cache.empty()) {
    const size_t read = 1 + rng.Uniform(30);
    SharedRows out = ObliviousCacheRead(&proto, &cache, read);
    fetched_real += CountRealInside(&proto, out);
    // FIFO: within this batch all real rows precede all dummies.
    bool seen_dummy = false;
    for (size_t r = 0; r < out.size(); ++r) {
      const bool real = out.RecoverAt(r, kViewIsViewCol) & 1;
      if (!real) seen_dummy = true;
      EXPECT_FALSE(real && seen_dummy) << "real row after dummy";
    }
  }
  EXPECT_EQ(fetched_real, total_real);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheConservationTest,
                         ::testing::Values(3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Truncated join properties
// ---------------------------------------------------------------------------

class JoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint32_t>> {
};

TEST_P(JoinPropertyTest, OutputSizeAndCountBounds) {
  const auto [n1, n2, omega] = GetParam();
  Party s0(0, n1 + 1), s1(1, n2 + 2);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(n1 * 100 + n2 * 10 + omega);

  SharedRows t1(kSrcWidth), t2(kSrcWidth);
  Word rid = 1;
  for (size_t i = 0; i < n1; ++i) {
    LogicalRecord r{1, rid++, 1 + static_cast<Word>(rng.Uniform(5)),
                    static_cast<Word>(rng.Uniform(20)), 0};
    t1.AppendSecretRow(EncodeSourceRow(r), &rng);
  }
  for (size_t i = 0; i < n2; ++i) {
    LogicalRecord r{1, rid++, 1 + static_cast<Word>(rng.Uniform(5)),
                    static_cast<Word>(rng.Uniform(20)), 0};
    t2.AppendSecretRow(EncodeSourceRow(r), &rng);
  }

  JoinSpec spec{0, 10, true, omega, true, true};
  uint64_t seq = 0;
  const JoinResult r = TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq);

  // Output size is the public formula, always.
  EXPECT_EQ(r.rows.size(), omega * (n1 + n2));
  // Eq. 3: per-record contributions capped by omega -> total real rows are
  // bounded by omega * min side.
  EXPECT_LE(r.real_count, omega * std::min(n1, n2));
  // isView bits agree with the reported count.
  uint32_t real = 0;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    real += r.rows.RecoverAt(i, kViewIsViewCol) & 1;
  }
  EXPECT_EQ(real, r.real_count);
  // The sequence counter advanced exactly once per emitted row.
  EXPECT_EQ(seq, r.rows.size());
}

TEST_P(JoinPropertyTest, CountMonotoneInOmega) {
  const auto [n1, n2, omega] = GetParam();
  if (omega > 8) return;  // the pair (omega, omega+1) is what we test
  Rng data_rng(n1 * 7 + n2 * 3);
  std::vector<LogicalRecord> recs1, recs2;
  Word rid = 1;
  for (size_t i = 0; i < n1; ++i)
    recs1.push_back({1, rid++, 1 + static_cast<Word>(data_rng.Uniform(4)),
                     static_cast<Word>(data_rng.Uniform(15)), 0});
  for (size_t i = 0; i < n2; ++i)
    recs2.push_back({1, rid++, 1 + static_cast<Word>(data_rng.Uniform(4)),
                     static_cast<Word>(data_rng.Uniform(15)), 0});

  auto run = [&](uint32_t w) {
    Party s0(0, 1), s1(1, 2);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(99);
    SharedRows t1(kSrcWidth), t2(kSrcWidth);
    for (const auto& r : recs1)
      t1.AppendSecretRow(EncodeSourceRow(r), &rng);
    for (const auto& r : recs2)
      t2.AppendSecretRow(EncodeSourceRow(r), &rng);
    JoinSpec spec{0, 10, true, w, true, true};
    uint64_t seq = 0;
    return TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq).real_count;
  };
  EXPECT_LE(run(omega), run(omega + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JoinPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 5, 20),
                       ::testing::Values(0, 1, 5, 25),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Transform conservation: counter == real rows in cache
// ---------------------------------------------------------------------------

TEST(TransformConservationTest, CounterMatchesCacheContents) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  Party s0(0, 4), s1(1, 5);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto);

  TpcDsParams p;
  p.steps = 25;
  const GeneratedWorkload w = GenerateTpcDs(p);
  Rng rng(6);
  for (uint64_t t = 1; t <= p.steps; ++t) {
    SharedRows b1(kSrcWidth), b2(kSrcWidth);
    for (const auto& r : w.t1[t - 1])
      b1.AppendSecretRow(EncodeSourceRow(r), &rng);
    while (b1.size() < cfg.upload_rows_t1)
      b1.AppendSecretRow(MakeDummySourceRow(&rng), &rng);
    for (const auto& r : w.t2[t - 1])
      b2.AppendSecretRow(EncodeSourceRow(r), &rng);
    while (b2.size() < cfg.upload_rows_t2)
      b2.AppendSecretRow(MakeDummySourceRow(&rng), &rng);
    store1.AppendBatch(std::move(b1));
    store2.AppendBatch(std::move(b2));
    ASSERT_TRUE(transform.Step(t, store1, store2, &cache).ok());
    // Invariant (Alg. 1): c counts exactly the real entries in the cache
    // (no Shrink ran, so nothing has been removed).
    EXPECT_EQ(cache.RecoverCounterInside(&proto),
              CountRealInside(&proto, *cache.rows()))
        << "step " << t;
  }
}

TEST(TransformConservationTest, ExhaustedLedgerSurfacesError) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  Party s0(0, 7), s1(1, 8);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  // Pre-exhaust record 1's budget (simulating a policy violation).
  for (uint32_t i = 0; i < cfg.budget_b; ++i) {
    ASSERT_TRUE(acc.ChargeParticipation(1).ok());
  }
  TransformProtocol transform(&proto, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto);
  Rng rng(9);
  SharedRows b1(kSrcWidth), b2(kSrcWidth);
  b1.AppendSecretRow(EncodeSourceRow({1, 1, 5, 1, 0}), &rng);
  b2.AppendSecretRow(MakeDummySourceRow(&rng), &rng);
  store1.AppendBatch(std::move(b1));
  store2.AppendBatch(std::move(b2));
  const auto result = transform.Step(1, store1, store2, &cache);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPrivacyBudgetExhausted);
}

// ---------------------------------------------------------------------------
// End-to-end conservation: generated = in view + deferred (no flush)
// ---------------------------------------------------------------------------

class EngineConservationTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(EngineConservationTest, RealRowsNeitherCreatedNorDestroyed) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = GetParam();
  cfg.flush_interval = 0;  // flushing is the only lossy operation
  TpcDsParams p;
  p.steps = 80;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();

  Party probe0(0, 1), probe1(1, 2);
  Protocol2PC probe(&probe0, &probe1, CostModel::Free());
  const uint32_t in_view = CountRealInside(&probe, engine.view().rows());
  const uint32_t in_cache =
      CountRealInside(&probe, engine.shard_cache(0).rows());
  EXPECT_EQ(in_view + in_cache,
            engine.Summary().total_real_entries_cached);
}

INSTANTIATE_TEST_SUITE_P(Strategies, EngineConservationTest,
                         ::testing::Values(Strategy::kDpTimer,
                                           Strategy::kDpAnt, Strategy::kEp));

// ---------------------------------------------------------------------------
// DP answers never exceed the truth (deferral-only error, no flush)
// ---------------------------------------------------------------------------

TEST(EngineMonotonicityTest, ViewAnswerNeverExceedsTruth) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.flush_interval = 0;
  TpcDsParams p;
  p.steps = 100;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment engine(cfg);
  ASSERT_TRUE(engine.Run(w.t1, w.t2).ok());
  for (const StepMetrics& m : engine.step_metrics()) {
    // The view holds a subset of the true join (dummies don't count).
    EXPECT_LE(m.view_answer, m.true_count) << "step " << m.t;
  }
}

// ---------------------------------------------------------------------------
// Released sizes follow the leakage mechanism's distribution
// ---------------------------------------------------------------------------

TEST(ReleaseDistributionTest, TimerReleasesMatchMechanismModel) {
  // Run the engine and M_timer on identical per-step real-entry streams
  // with matched noise scale; their release sequences must agree in mean.
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.flush_interval = 0;
  TpcDsParams p;
  p.steps = 200;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();

  Rng mech_rng(9999);
  TimerLeakageMechanism mech(cfg.eps, cfg.budget_b, cfg.timer_T, &mech_rng);
  RunningStat real_releases, mech_releases;
  const auto& entries = engine.per_step_real_entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LeakageRelease model = mech.Step(entries[i]);
    const LeakageRelease& actual = engine.releases()[i];
    ASSERT_EQ(model.fired, actual.fired) << i;
    if (model.fired) {
      mech_releases.Add(model.size);
      real_releases.Add(actual.size);
    }
  }
  ASSERT_GT(real_releases.count(), 10u);
  // Same underlying counts, independent Laplace draws at the same scale.
  EXPECT_NEAR(real_releases.mean(), mech_releases.mean(),
              3.0 * cfg.budget_b / cfg.eps);
}

// ---------------------------------------------------------------------------
// DP mechanism properties (build-system bring-up satellite)
// ---------------------------------------------------------------------------

class LaplaceMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceMomentsTest, MeanAndVarianceWithinTolerance) {
  const double scale = GetParam();
  Rng rng(static_cast<uint64_t>(scale * 1000) + 17);
  RunningStat stat;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) stat.Add(SampleLaplace(&rng, scale));
  // Lap(0, s): mean 0, variance 2 s^2. Tolerances are ~5 empirical standard
  // errors, so the test is deterministic-seed stable yet tight enough to
  // catch a mis-scaled sampler (e.g. s vs. 2s, or exponential-only).
  const double se_mean = std::sqrt(2.0 * scale * scale / kSamples);
  EXPECT_NEAR(stat.mean(), 0.0, 5.0 * se_mean);
  EXPECT_NEAR(stat.variance(), 2.0 * scale * scale,
              0.05 * 2.0 * scale * scale);
  // Symmetry: median of Lap(0, s) is 0, so signs split evenly.
  Rng rng2(static_cast<uint64_t>(scale * 1000) + 18);
  int positive = 0;
  for (int i = 0; i < kSamples; ++i)
    positive += (SampleLaplace(&rng2, scale) > 0);
  EXPECT_NEAR(static_cast<double>(positive) / kSamples, 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceMomentsTest,
                         ::testing::Values(0.5, 1.0, 10.0 / 1.5, 20.0));

TEST(SvtBudgetPropertyTest, ReleaseCounterMatchesFiresExactly) {
  // Each SVT fire+release cycle consumes eps1 + eps2 = eps, so the composed
  // privacy loss of a run is releases() * eps (sequential composition). That
  // makes releases() the budget ledger — it must track the observable fires
  // exactly: +1 on every true Observe, unchanged otherwise, never skipping
  // or double-counting. (A drifting counter would silently under-report the
  // consumed budget.)
  Rng stream_rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const double eps = 0.5 + stream_rng.NextDouble() * 2.0;
    Rng svt_rng(1000 + trial);
    NumericAboveNoisyThreshold svt(eps, 1.0, 30.0, &svt_rng);
    uint64_t observed_fires = 0;
    double count = 0;
    for (int t = 0; t < 2000; ++t) {
      count += stream_rng.Poisson(3.0);
      const uint64_t before = svt.releases();
      double release = 0;
      if (svt.Observe(count, &release)) {
        ++observed_fires;
        EXPECT_EQ(svt.releases(), before + 1);
        count = 0;
      } else {
        EXPECT_EQ(svt.releases(), before);
      }
    }
    EXPECT_GT(observed_fires, 0u) << "stream never crossed the threshold";
    EXPECT_EQ(svt.releases(), observed_fires);
    // The sequentially composed loss of the run, as the accountant sums it.
    const std::vector<double> per_release(svt.releases(), eps);
    const double composed = SequentialComposition(per_release);
    const double expected = static_cast<double>(observed_fires) * eps;
    EXPECT_NEAR(composed, expected, 1e-9 * expected);  // summation rounding
  }
}

TEST(SvtBudgetPropertyTest, ContributionLedgerEnforcesLifetimeBudget) {
  // The accountant is the runtime guard behind the b-stability premise:
  // whatever interleaving of charges and contributions, no record may ever
  // exceed its lifetime budget b, and contributions never exceed charges.
  Rng rng(77);
  const uint32_t b = 10, omega = 2;
  PrivacyAccountant acc(1.5, b, omega);
  std::unordered_map<uint32_t, uint32_t> charged, contributed;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t rid = static_cast<uint32_t>(rng.Uniform(40));
    if (rng.Bernoulli(0.6)) {
      const Status s = acc.ChargeParticipation(rid);
      if (charged[rid] + omega <= b) {
        EXPECT_TRUE(s.ok());
        charged[rid] += omega;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kPrivacyBudgetExhausted);
      }
    } else {
      const uint32_t rows = static_cast<uint32_t>(rng.Uniform(3));
      const Status s = acc.RecordContribution(rid, rows);
      if (contributed[rid] + rows <= charged[rid]) {
        EXPECT_TRUE(s.ok());
        contributed[rid] += rows;
      } else {
        EXPECT_FALSE(s.ok());
      }
    }
    EXPECT_EQ(acc.RemainingBudget(rid), b - charged[rid]);
    EXPECT_EQ(acc.CanParticipate(rid), charged[rid] + omega <= b);
  }
}

TEST(CompositionPropertyTest, SequentialCompositionMonotoneInEpsilon) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> epsilons(1 + rng.Uniform(8));
    for (double& e : epsilons) e = rng.NextDouble() * 3.0;
    const double base = SequentialComposition(epsilons);
    // Raising any single epsilon raises the composed bound; adding a
    // mechanism never lowers it.
    std::vector<double> bumped = epsilons;
    const size_t i = rng.Uniform(bumped.size());
    bumped[i] += 0.25;
    EXPECT_GT(SequentialComposition(bumped), base);
    std::vector<double> extended = epsilons;
    extended.push_back(rng.NextDouble());
    EXPECT_GE(SequentialComposition(extended), base);
    // Parallel composition is bounded by sequential composition.
    EXPECT_LE(ParallelComposition(epsilons), base + 1e-12);
  }
}

TEST(CompositionPropertyTest, DerivedEpsilonsMonotone) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const double eps = 0.1 + rng.NextDouble() * 3.0;
    const uint32_t l = 1 + static_cast<uint32_t>(rng.Uniform(20));
    // Group privacy: more updates per user -> weaker (larger) epsilon.
    EXPECT_GE(UserLevelEpsilon(eps, l + 1), UserLevelEpsilon(eps, l));
    EXPECT_GE(UserLevelEpsilon(eps + 0.1, l), UserLevelEpsilon(eps, l));
    // Lemma 2: record-level loss grows with stability and with budget.
    const double q = 1.0 + rng.NextDouble() * 9.0;
    EXPECT_GE(StableTransformationEpsilon(eps, q + 1.0),
              StableTransformationEpsilon(eps, q));
    EXPECT_GE(StableTransformationEpsilon(eps + 0.1, q),
              StableTransformationEpsilon(eps, q));
    // Theorem 3: componentwise-larger inputs give a larger record-level sum.
    std::vector<double> stabilities(3), eps_v(3);
    for (int k = 0; k < 3; ++k) {
      stabilities[k] = 1.0 + rng.NextDouble() * 4.0;
      eps_v[k] = rng.NextDouble();
    }
    std::vector<double> stabilities_hi = stabilities;
    stabilities_hi[rng.Uniform(3)] += 1.0;
    EXPECT_GE(RecordLevelEpsilon(stabilities_hi, eps_v),
              RecordLevelEpsilon(stabilities, eps_v));
  }
}

TEST(CompositionPropertyTest, DeploymentBudgetComposes) {
  DeploymentBudget budget;
  budget.view_update_eps = 1.5;
  budget.owner_policy_eps = 0.5;
  budget.max_updates_per_user = 4;
  EXPECT_DOUBLE_EQ(budget.EventLevel(), 2.0);
  EXPECT_DOUBLE_EQ(budget.UserLevel(), 8.0);
  // Monotone in every field.
  DeploymentBudget more = budget;
  more.owner_policy_eps = 1.0;
  EXPECT_GT(more.EventLevel(), budget.EventLevel());
  more.max_updates_per_user = 5;
  EXPECT_GT(more.UserLevel(), budget.UserLevel());
}

}  // namespace
}  // namespace incshrink
