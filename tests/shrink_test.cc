#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/shrink.h"
#include "src/mpc/party.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"

namespace incshrink {
namespace {

IncShrinkConfig TimerConfig() {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 1;
  cfg.budget_b = 10;
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 5;
  cfg.flush_interval = 0;
  return cfg;
}

class ShrinkTest : public ::testing::Test {
 protected:
  ShrinkTest()
      : s0_(0, 1), s1_(1, 2), proto_(&s0_, &s1_, CostModel::EmpLikeLan()),
        cache_(&proto_), rng_(3) {}

  /// Fills the cache with `real` real entries and `dummies` dummy rows and
  /// sets the counter to `real`.
  void FillCache(uint32_t real, uint32_t dummies) {
    for (uint32_t i = 0; i < real; ++i) {
      std::vector<Word> row(kViewWidth);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, (*cache_.seq())++);
      row[kViewKeyCol] = i;
      cache_.rows()->AppendSecretRow(row, &rng_);
    }
    for (uint32_t i = 0; i < dummies; ++i) {
      AppendDummyViewRow(cache_.rows(), &rng_, cache_.seq());
    }
    cache_.AddToCounter(&proto_, real);
  }

  Party s0_;
  Party s1_;
  Protocol2PC proto_;
  SecureCache cache_;
  MaterializedView view_;
  Rng rng_;
};

// ---------------------------------------------------------------------------
// Fixed-point threshold encoding
// ---------------------------------------------------------------------------

TEST(ThresholdEncodingTest, RoundTripsTypicalRange) {
  for (double x : {-5000.0, -30.5, 0.0, 12.25, 30.0, 100000.0}) {
    EXPECT_NEAR(DecodeThresholdFixedPoint(EncodeThresholdFixedPoint(x)), x,
                1e-3);
  }
}

TEST(ThresholdEncodingTest, SaturatesOutOfRange) {
  EXPECT_EQ(EncodeThresholdFixedPoint(-2e6), 0u);
  EXPECT_EQ(EncodeThresholdFixedPoint(1e10), 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// sDPTimer
// ---------------------------------------------------------------------------

TEST_F(ShrinkTest, TimerFiresOnlyOnMultiplesOfT) {
  ShrinkTimer timer(&proto_, TimerConfig());
  FillCache(3, 10);
  for (uint64_t t = 1; t <= 20; ++t) {
    const ShrinkResult r = timer.Step(t, &cache_, &view_);
    EXPECT_EQ(r.fired, t % 5 == 0) << t;
  }
}

TEST_F(ShrinkTest, TimerMovesRealEntriesFirstAndResetsCounter) {
  IncShrinkConfig cfg = TimerConfig();
  cfg.eps = 50;  // tiny noise so sz ~ c
  ShrinkTimer timer(&proto_, cfg);
  FillCache(4, 20);
  const ShrinkResult r = timer.Step(5, &cache_, &view_);
  ASSERT_TRUE(r.fired);
  EXPECT_EQ(cache_.RecoverCounterInside(&proto_), 0u);
  // With eps = 50 the noise is < 1 w.h.p., so ~4 rows move; all real rows
  // come before any dummy in the fetched prefix.
  EXPECT_NEAR(static_cast<double>(r.sync_rows), 4.0, 2.0);
  EXPECT_EQ(view_.size(), r.sync_rows);
  const uint32_t real_in_view = CountRealInside(&proto_, view_.rows());
  const uint32_t real_in_cache = CountRealInside(&proto_, *cache_.rows());
  EXPECT_EQ(real_in_view + real_in_cache, 4u);
  EXPECT_GE(real_in_view, 3u);
}

TEST_F(ShrinkTest, TimerReleaseSizesCenterOnTrueCardinality) {
  IncShrinkConfig cfg = TimerConfig();
  cfg.timer_T = 1;
  ShrinkTimer timer(&proto_, cfg);
  RunningStat sizes;
  for (int i = 0; i < 3000; ++i) {
    FillCache(10, 30);
    const ShrinkResult r = timer.Step(1, &cache_, &view_);
    sizes.Add(static_cast<double>(r.released_size));
    cache_.rows()->Clear();
    cache_.ResetCounter(&proto_);
  }
  // E[max(0, 10 + Lap(b/eps))] is slightly above 10 because of the clamp at
  // zero; with b/eps = 6.67 the skew is ~1.3.
  EXPECT_NEAR(sizes.mean(), 10.0, 2.5);
  EXPECT_GT(sizes.stddev(), 3.0);  // noise is really there
}

TEST_F(ShrinkTest, TimerConsumesSimulatedTime) {
  ShrinkTimer timer(&proto_, TimerConfig());
  FillCache(2, 50);
  const ShrinkResult r = timer.Step(5, &cache_, &view_);
  ASSERT_TRUE(r.fired);
  EXPECT_GT(r.simulated_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// sDPANT
// ---------------------------------------------------------------------------

IncShrinkConfig AntConfig(double theta) {
  IncShrinkConfig cfg = TimerConfig();
  cfg.strategy = Strategy::kDpAnt;
  cfg.ant_theta = theta;
  return cfg;
}

TEST_F(ShrinkTest, AntFiresWhenCountWellAboveThreshold) {
  ShrinkAnt ant(&proto_, AntConfig(5));
  FillCache(500, 20);
  const ShrinkResult r = ant.Step(1, &cache_, &view_);
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(cache_.RecoverCounterInside(&proto_), 0u);
}

TEST_F(ShrinkTest, AntStaysQuietWellBelowThreshold) {
  ShrinkAnt ant(&proto_, AntConfig(5000));
  FillCache(1, 20);
  int fires = 0;
  for (uint64_t t = 1; t <= 200; ++t) {
    if (ant.Step(t, &cache_, &view_).fired) ++fires;
  }
  EXPECT_LT(fires, 5);
}

TEST_F(ShrinkTest, AntRefreshesThresholdAfterFiring) {
  ShrinkAnt ant(&proto_, AntConfig(5));
  const double before = ant.noisy_threshold_inside();
  FillCache(500, 10);
  ASSERT_TRUE(ant.Step(1, &cache_, &view_).fired);
  EXPECT_NE(ant.noisy_threshold_inside(), before);
}

TEST_F(ShrinkTest, AntFiringRateAdaptsToLoad) {
  // Denser data -> more frequent updates (the paper's Observation 5).
  for (const uint32_t per_step : {2u, 20u}) {
    Party s0(0, 100 + per_step), s1(1, 200 + per_step);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    SecureCache cache(&proto);
    MaterializedView view;
    Rng rng(7);
    ShrinkAnt ant(&proto, AntConfig(30));
    int fires = 0;
    for (uint64_t t = 1; t <= 120; ++t) {
      for (uint32_t i = 0; i < per_step; ++i)
        AppendDummyViewRow(cache.rows(), &rng, cache.seq());
      cache.AddToCounter(&proto, per_step);
      if (ant.Step(t, &cache, &view).fired) ++fires;
    }
    if (per_step == 2) {
      EXPECT_LT(fires, 30);
    } else {
      EXPECT_GT(fires, 40);
    }
  }
}

// ---------------------------------------------------------------------------
// Cache flush
// ---------------------------------------------------------------------------

TEST_F(ShrinkTest, FlushOnlyAtConfiguredInterval) {
  IncShrinkConfig cfg = TimerConfig();
  cfg.flush_interval = 7;
  cfg.flush_size = 3;
  FillCache(2, 10);
  for (uint64_t t = 1; t <= 6; ++t) {
    EXPECT_FALSE(MaybeFlushCache(&proto_, cfg, t, &cache_, &view_).fired);
  }
  const ShrinkResult r = MaybeFlushCache(&proto_, cfg, 7, &cache_, &view_);
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(r.sync_rows, 3u);
  EXPECT_EQ(cache_.size(), 0u);  // recycled
  EXPECT_EQ(view_.size(), 3u);
  // Both real entries were within the flush prefix.
  EXPECT_EQ(CountRealInside(&proto_, view_.rows()), 2u);
}

TEST_F(ShrinkTest, FlushResetsCardinalityCounter) {
  // Regression: the flush drains the cache completely (fetch + recycle) but
  // used to leave the secret-shared counter standing, so the next DP
  // release re-counted rows that were no longer cached.
  IncShrinkConfig cfg = TimerConfig();
  cfg.flush_interval = 4;
  cfg.flush_size = 3;
  FillCache(5, 10);
  ASSERT_EQ(cache_.RecoverCounterInside(&proto_), 5u);
  const ShrinkResult r = MaybeFlushCache(&proto_, cfg, 4, &cache_, &view_);
  ASSERT_TRUE(r.fired);
  EXPECT_EQ(cache_.size(), 0u);
  EXPECT_EQ(cache_.RecoverCounterInside(&proto_), 0u);
}

TEST_F(ShrinkTest, ReleasesAfterFlushCountOnlyFreshEntries) {
  // Interleaves flushes with Timer releases. eps is huge, so the Laplace
  // noise rounds to zero w.h.p. and every released size must equal the real
  // entries cached since the previous release-or-flush — never the
  // cumulative count the old code reported after a flush.
  IncShrinkConfig cfg = TimerConfig();
  cfg.eps = 500;  // b/eps = 0.02: |noise| < 0.5 except with prob ~e^-25
  cfg.timer_T = 2;
  cfg.flush_interval = 3;
  cfg.flush_size = 50;  // flush everything cached so far
  ShrinkTimer timer(&proto_, cfg);
  uint32_t fresh_entries = 0;
  for (uint64_t t = 1; t <= 24; ++t) {
    const uint32_t arriving = 1 + static_cast<uint32_t>(t % 3);
    FillCache(arriving, 2);
    fresh_entries += arriving;
    const ShrinkResult sync = timer.Step(t, &cache_, &view_);
    if (sync.fired) {
      EXPECT_EQ(sync.released_size, fresh_entries) << "step " << t;
      fresh_entries = 0;
    }
    if (MaybeFlushCache(&proto_, cfg, t, &cache_, &view_).fired) {
      fresh_entries = 0;  // the flush recycled everything still cached
    }
  }
}

TEST_F(ShrinkTest, AntReleasesAfterFlushCountOnlyFreshEntries) {
  // Same regression through the ANT path: after a flush the noisy-threshold
  // comparison and the released size must both see a zeroed counter.
  IncShrinkConfig cfg = AntConfig(/*theta=*/2);
  cfg.eps = 800;  // tiny threshold + tiny noise: fires whenever c >= ~2
  cfg.flush_interval = 5;
  cfg.flush_size = 50;
  ShrinkAnt ant(&proto_, cfg);
  uint32_t fresh_entries = 0;
  for (uint64_t t = 1; t <= 30; ++t) {
    FillCache(2, 1);
    fresh_entries += 2;
    const ShrinkResult sync = ant.Step(t, &cache_, &view_);
    if (sync.fired) {
      EXPECT_EQ(sync.released_size, fresh_entries) << "step " << t;
      fresh_entries = 0;
    }
    if (MaybeFlushCache(&proto_, cfg, t, &cache_, &view_).fired) {
      EXPECT_EQ(cache_.RecoverCounterInside(&proto_), 0u) << "step " << t;
      fresh_entries = 0;
    }
  }
}

TEST_F(ShrinkTest, FlushDisabledWithZeroInterval) {
  IncShrinkConfig cfg = TimerConfig();
  cfg.flush_interval = 0;
  FillCache(2, 2);
  for (uint64_t t = 1; t <= 50; ++t) {
    EXPECT_FALSE(MaybeFlushCache(&proto_, cfg, t, &cache_, &view_).fired);
  }
}

}  // namespace
}  // namespace incshrink
