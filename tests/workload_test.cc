#include <gtest/gtest.h>

#include "src/relational/query.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

TEST(TpcDsGeneratorTest, MatchesPaperViewEntryRate) {
  TpcDsParams p;
  p.steps = 2000;
  const GeneratedWorkload w = GenerateTpcDs(p);
  // Paper: ~2.7 new view entries per step.
  EXPECT_NEAR(w.avg_view_entries_per_step(), 2.7, 0.35);
  EXPECT_GT(w.total_t1, w.total_t2);  // not every sale is returned
}

TEST(TpcDsGeneratorTest, MultiplicityOneAndWindowed) {
  TpcDsParams p;
  p.steps = 200;
  const GeneratedWorkload w = GenerateTpcDs(p);
  std::vector<LogicalRecord> all1, all2;
  for (const auto& v : w.t1) all1.insert(all1.end(), v.begin(), v.end());
  for (const auto& v : w.t2) all2.insert(all2.end(), v.begin(), v.end());
  // Every return matches exactly one sale, within [0, 9] days.
  WindowJoinQuery q{0, 10, true};
  EXPECT_EQ(WindowJoinCounter::CountFull(q, all1, all2),
            w.total_view_entries);
  EXPECT_EQ(w.total_view_entries, w.total_t2);
}

TEST(TpcDsGeneratorTest, DeterministicBySeed) {
  TpcDsParams p;
  p.steps = 50;
  const GeneratedWorkload a = GenerateTpcDs(p);
  const GeneratedWorkload b = GenerateTpcDs(p);
  EXPECT_EQ(a.total_t1, b.total_t1);
  EXPECT_EQ(a.total_view_entries, b.total_view_entries);
  p.seed = 1234;
  const GeneratedWorkload c = GenerateTpcDs(p);
  EXPECT_NE(a.total_t1, c.total_t1);
}

TEST(TpcDsGeneratorTest, SparseAndBurstScaleViewEntries) {
  TpcDsParams p;
  p.steps = 1500;
  const double base = GenerateTpcDs(p).avg_view_entries_per_step();
  p.view_rate_scale = 0.1;
  const double sparse = GenerateTpcDs(p).avg_view_entries_per_step();
  p.view_rate_scale = 2.0;
  const double burst = GenerateTpcDs(p).avg_view_entries_per_step();
  EXPECT_NEAR(sparse / base, 0.1, 0.05);
  EXPECT_NEAR(burst / base, 2.0, 0.25);
}

TEST(TpcDsGeneratorTest, ScaleGrowsStream) {
  TpcDsParams p;
  p.steps = 500;
  const uint64_t base = GenerateTpcDs(p).total_t1;
  p.scale = 4.0;
  const uint64_t big = GenerateTpcDs(p).total_t1;
  EXPECT_NEAR(static_cast<double>(big) / base, 4.0, 0.5);
}

TEST(CpdbGeneratorTest, MatchesPaperViewEntryRate) {
  CpdbParams p;
  p.steps = 1500;
  const GeneratedWorkload w = GenerateCpdb(p);
  // Paper: ~9.8 new view entries per step.
  EXPECT_NEAR(w.avg_view_entries_per_step(), 9.8, 1.2);
}

TEST(CpdbGeneratorTest, AwardsStayInWindowAndEligibility) {
  CpdbParams p;
  p.steps = 300;
  const GeneratedWorkload w = GenerateCpdb(p);
  // Index allegations by key.
  std::vector<LogicalRecord> all1;
  for (const auto& v : w.t1) all1.insert(all1.end(), v.begin(), v.end());
  std::vector<LogicalRecord> all2;
  for (const auto& v : w.t2) all2.insert(all2.end(), v.begin(), v.end());
  GrowingTable idx("alleg");
  for (const auto& a : all1) idx.Insert(a);
  uint32_t checked = 0;
  for (const auto& award : all2) {
    const auto* hits = idx.FindByKey(award.key);
    ASSERT_NE(hits, nullptr);
    ASSERT_EQ(hits->size(), 1u);  // unique officer per allegation
    const LogicalRecord& alleg = idx.record((*hits)[0]);
    EXPECT_GE(award.date, alleg.date);
    EXPECT_LE(award.date - alleg.date, 10u);          // window
    EXPECT_LE(award.step, alleg.step + 1);            // eligibility
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(CpdbGeneratorTest, MultiplicityBoundedByMaxAwards) {
  CpdbParams p;
  p.steps = 300;
  const GeneratedWorkload w = GenerateCpdb(p);
  std::unordered_map<Word, uint32_t> per_officer;
  for (const auto& v : w.t2)
    for (const auto& award : v) ++per_officer[award.key];
  for (const auto& [key, count] : per_officer) {
    EXPECT_LE(count, p.max_awards) << key;
  }
}

TEST(CpdbGeneratorTest, SparseScalesRate) {
  CpdbParams p;
  p.steps = 1000;
  const double base = GenerateCpdb(p).avg_view_entries_per_step();
  p.view_rate_scale = 0.1;
  const double sparse = GenerateCpdb(p).avg_view_entries_per_step();
  EXPECT_NEAR(sparse / base, 0.1, 0.06);
}

TEST(DefaultConfigTest, TpcDsMatchesPaperParameters) {
  const IncShrinkConfig cfg = DefaultTpcDsConfig();
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_DOUBLE_EQ(cfg.eps, 1.5);
  EXPECT_EQ(cfg.omega, 1u);
  EXPECT_EQ(cfg.budget_b, 10u);
  EXPECT_EQ(cfg.timer_T, 10u);
  EXPECT_DOUBLE_EQ(cfg.ant_theta, 30);
  EXPECT_FALSE(cfg.t2_is_public);
}

TEST(DefaultConfigTest, CpdbMatchesPaperParameters) {
  const IncShrinkConfig cfg = DefaultCpdbConfig();
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_EQ(cfg.omega, 10u);
  EXPECT_EQ(cfg.budget_b, 20u);
  EXPECT_EQ(cfg.timer_T, 3u);
  EXPECT_TRUE(cfg.t2_is_public);
  EXPECT_FALSE(cfg.join.cap_t2);
}

TEST(ZipfTest, WeightsNormalizedAndMonotone) {
  for (const double s : {0.0, 0.8, 1.0, 1.6}) {
    SCOPED_TRACE(s);
    const std::vector<double> w = ZipfWeights(12, s);
    ASSERT_EQ(w.size(), 12u);
    double sum = 0.0;
    for (size_t r = 0; r < w.size(); ++r) {
      EXPECT_GT(w[r], 0.0);
      if (r > 0) {
        EXPECT_LE(w[r], w[r - 1]);  // rank-ordered skew
      }
      sum += w[r];
    }
    EXPECT_NEAR(sum, 12.0, 1e-9);  // mean-1 normalization
  }
  // s = 0 is the uniform fleet.
  for (const double v : ZipfWeights(5, 0.0)) EXPECT_DOUBLE_EQ(v, 1.0);
  // Classic s = 1 head/tail ratio: w[0]/w[k-1] = k.
  const std::vector<double> harmonic = ZipfWeights(8, 1.0);
  EXPECT_NEAR(harmonic[0] / harmonic[7], 8.0, 1e-9);
}

TEST(ZipfTest, SamplerHistogramPinnedForFixedSeed) {
  // CDF inversion over the seeded Rng is the sampler's only entropy source,
  // so this histogram is a bitwise-stable function of (n, s, seed, draws) —
  // any change to the sampler or the Rng shows up here.
  ZipfSampler sampler(4, 1.0);
  ASSERT_EQ(sampler.n(), 4u);
  // pmf is the mean-1 weight vector scaled by 1/n: proportional to 1/r.
  EXPECT_NEAR(sampler.pmf()[0], 2.0 * sampler.pmf()[1], 1e-9);
  EXPECT_NEAR(sampler.pmf()[0], 4.0 * sampler.pmf()[3], 1e-9);
  Rng rng(99);
  std::vector<uint64_t> hist(4, 0);
  for (int i = 0; i < 1000; ++i) ++hist[sampler.Sample(&rng)];
  const std::vector<uint64_t> expected = {480, 249, 168, 103};
  EXPECT_EQ(hist, expected);
  // Head-heavy ordering holds even at this sample size.
  EXPECT_GT(hist[0], hist[1]);
  EXPECT_GT(hist[1], hist[3]);
}

TEST(ZipfTest, FleetWorkloadsSkewedAndDeterministic) {
  ZipfFleetParams p;
  p.num_tenants = 4;
  p.s = 1.2;
  p.steps = 60;
  p.seed = 5;
  const std::vector<GeneratedWorkload> fleet = GenerateZipfFleetWorkloads(p);
  ASSERT_EQ(fleet.size(), p.num_tenants);
  // Per-tenant totals, pinned for this exact (seed, s, steps): regenerating
  // must be bit-stable, and the hot head must dominate the tail.
  const std::vector<uint64_t> expected_t1 = {785, 318, 215, 151};
  for (size_t i = 0; i < fleet.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(fleet[i].steps(), p.steps);
    EXPECT_EQ(fleet[i].total_t1, expected_t1[i]);
  }
  EXPECT_GT(fleet[0].total_t1, 3 * fleet[3].total_t1);
  const std::vector<GeneratedWorkload> again = GenerateZipfFleetWorkloads(p);
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(again[i].total_t1, fleet[i].total_t1);
    EXPECT_EQ(again[i].total_view_entries, fleet[i].total_view_entries);
  }
  // Tenant streams are independent: different seeds, different realizations.
  EXPECT_NE(fleet[1].total_t1 * 1000 + fleet[1].total_t2,
            fleet[2].total_t1 * 1000 + fleet[2].total_t2);
}

TEST(DefaultConfigTest, ScaleConfigBatches) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  const uint32_t base1 = cfg.upload_rows_t1;
  ScaleConfigBatches(&cfg, 2.0);
  EXPECT_EQ(cfg.upload_rows_t1, base1 * 2);
  ScaleConfigBatches(&cfg, 0.1);
  EXPECT_GE(cfg.upload_rows_t1, 1u);  // never zero
}

}  // namespace
}  // namespace incshrink
