#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/composition.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Composition calculators (Section 4.2 / Section 8)
// ---------------------------------------------------------------------------

TEST(CompositionTest, SequentialSums) {
  EXPECT_DOUBLE_EQ(SequentialComposition({}), 0.0);
  EXPECT_DOUBLE_EQ(SequentialComposition({0.5, 1.0, 0.25}), 1.75);
}

TEST(CompositionTest, ParallelTakesMax) {
  EXPECT_DOUBLE_EQ(ParallelComposition({0.5, 1.0, 0.25}), 1.0);
  EXPECT_DOUBLE_EQ(ParallelComposition({}), 0.0);
}

TEST(CompositionTest, GroupPrivacyScalesLinearly) {
  EXPECT_DOUBLE_EQ(UserLevelEpsilon(1.5, 1), 1.5);
  EXPECT_DOUBLE_EQ(UserLevelEpsilon(1.5, 4), 6.0);
}

TEST(CompositionTest, StabilityRule) {
  // Lemma 2: eps/b mechanism over a b-stable transformation = eps total.
  EXPECT_DOUBLE_EQ(StableTransformationEpsilon(1.5 / 10, 10), 1.5);
}

TEST(CompositionTest, RecordLevelSumsInvocations) {
  // Theorem 3: a record influencing 3 invocations of a 1-stable transform,
  // each released at eps = 0.15, loses 0.45.
  EXPECT_DOUBLE_EQ(RecordLevelEpsilon({1, 1, 1}, {0.15, 0.15, 0.15}), 0.45);
}

TEST(CompositionTest, DeploymentBudget) {
  DeploymentBudget budget;
  budget.view_update_eps = 1.5;
  budget.owner_policy_eps = 0.5;
  budget.max_updates_per_user = 3;
  EXPECT_DOUBLE_EQ(budget.EventLevel(), 2.0);
  EXPECT_DOUBLE_EQ(budget.UserLevel(), 6.0);
}

// ---------------------------------------------------------------------------
// Ad-hoc view-based query answering (KI-1 / KI-3)
// ---------------------------------------------------------------------------

class AdHocQueryTest : public ::testing::Test {
 protected:
  AdHocQueryTest() {
    TpcDsParams p;
    p.steps = 100;
    workload_ = GenerateTpcDs(p);
  }

  SynchronousDeployment MakeDeployment(Strategy strategy) {
    IncShrinkConfig cfg = DefaultTpcDsConfig();
    cfg.strategy = strategy;
    return SynchronousDeployment(cfg);
  }

  GeneratedWorkload workload_;
};

TEST_F(AdHocQueryTest, EpAnswersAdHocExactly) {
  SynchronousDeployment deployment = MakeDeployment(Strategy::kEp);
  ASSERT_TRUE(deployment.Run(workload_.t1, workload_.t2).ok());
  Engine& engine = deployment.engine();

  const auto all = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  EXPECT_EQ(all.answer, all.truth);
  EXPECT_GT(all.truth, 100u);

  // Date-range restriction: returns recorded in the first half of the run.
  const auto range =
      engine.AnswerAdHocQuery(AnalystQuery::CountDateRange(0, 50));
  EXPECT_EQ(range.answer, range.truth);
  EXPECT_LT(range.truth, all.truth);
  EXPECT_GT(range.truth, 0u);

  // An empty range must answer zero.
  const auto empty = engine.AnswerAdHocQuery(
      AnalystQuery::CountDateRange(4000000000u, 4000000001u));
  EXPECT_EQ(empty.answer, 0u);
  EXPECT_EQ(empty.truth, 0u);
}

TEST_F(AdHocQueryTest, KeyEqualsQueries) {
  SynchronousDeployment deployment = MakeDeployment(Strategy::kEp);
  ASSERT_TRUE(deployment.Run(workload_.t1, workload_.t2).ok());
  Engine& engine = deployment.engine();
  // Find a key that actually joined.
  ASSERT_FALSE(workload_.t2.empty());
  Word key = 0;
  for (const auto& step : workload_.t2) {
    if (!step.empty()) {
      key = step.front().key;
      break;
    }
  }
  ASSERT_NE(key, 0u);
  const auto by_key = engine.AnswerAdHocQuery(AnalystQuery::CountKeyEquals(key));
  EXPECT_EQ(by_key.answer, by_key.truth);
  EXPECT_EQ(by_key.truth, 1u);  // multiplicity-1 stream
}

TEST_F(AdHocQueryTest, DpViewAnswersWithBoundedError) {
  SynchronousDeployment deployment = MakeDeployment(Strategy::kDpTimer);
  ASSERT_TRUE(deployment.Run(workload_.t1, workload_.t2).ok());
  Engine& engine = deployment.engine();
  const auto all = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  // Deferred data only: the view answer must undershoot by a bounded amount
  // and never exceed the truth.
  EXPECT_LE(all.answer, all.truth);
  EXPECT_GT(all.answer, all.truth / 2);
  const auto range =
      engine.AnswerAdHocQuery(AnalystQuery::CountDateRange(0, 60));
  EXPECT_LE(range.answer, range.truth);
}

TEST_F(AdHocQueryTest, AdHocQueriesChargeQet) {
  SynchronousDeployment deployment = MakeDeployment(Strategy::kEp);
  ASSERT_TRUE(deployment.Run(workload_.t1, workload_.t2).ok());
  Engine& engine = deployment.engine();
  const auto r = engine.AnswerAdHocQuery(AnalystQuery::CountAll());
  EXPECT_GT(r.query_seconds, 0.0);
}

TEST(RewriteTest, PredicatesMatchViewColumns) {
  // Directly exercise the rewriting on raw rows.
  std::vector<Word> row(kViewWidth, 0);
  row[kViewKeyCol] = 42;
  row[kViewDate2Col] = 100;
  EXPECT_TRUE(RewriteToViewPredicate(AnalystQuery::CountAll()).eval(row));
  EXPECT_TRUE(
      RewriteToViewPredicate(AnalystQuery::CountDateRange(50, 150)).eval(row));
  EXPECT_FALSE(
      RewriteToViewPredicate(AnalystQuery::CountDateRange(101, 150)).eval(row));
  EXPECT_TRUE(
      RewriteToViewPredicate(AnalystQuery::CountKeyEquals(42)).eval(row));
  EXPECT_FALSE(
      RewriteToViewPredicate(AnalystQuery::CountKeyEquals(43)).eval(row));
}

}  // namespace
}  // namespace incshrink
