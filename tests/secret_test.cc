#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/secret/share.h"
#include "src/secret/shared_rows.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// (2,2)-XOR sharing (paper Section 3)
// ---------------------------------------------------------------------------

TEST(ShareTest, RoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Word x = rng.Next32();
    const WordShares s = ShareWord(x, &rng);
    EXPECT_EQ(RecoverWord(s), x);
  }
}

TEST(ShareTest, AvailabilityBothSharesNeeded) {
  Rng rng(2);
  const WordShares s = ShareWord(0xDEADBEEF, &rng);
  // Neither share alone equals the secret except with negligible chance
  // (checked over many trials below); here: recover needs the XOR.
  EXPECT_EQ(s.s0 ^ s.s1, 0xDEADBEEFu);
}

TEST(ShareTest, SingleShareIsUniform) {
  // Confidentiality: the distribution of share s1 for a fixed secret is
  // uniform — its mean bit frequency must match an unbiased source.
  Rng rng(3);
  int64_t bit_count = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const WordShares s = ShareWord(7, &rng);  // constant secret
    bit_count += __builtin_popcount(s.s1);
  }
  const double mean_bits = static_cast<double>(bit_count) / kTrials;
  EXPECT_NEAR(mean_bits, 16.0, 0.05);
}

TEST(ShareTest, SharesOfDifferentSecretsIndistinguishableInMean) {
  // For two different messages, the marginal distribution of each share must
  // match (Lemma 9) — compare empirical means of share s0.
  Rng rng(4);
  RunningStat a, b;
  for (int i = 0; i < 100000; ++i) {
    a.Add(static_cast<double>(ShareWord(0, &rng).s0));
    b.Add(static_cast<double>(ShareWord(0xFFFFFFFF, &rng).s0));
  }
  const double center = 2147483647.5;
  EXPECT_NEAR(a.mean() / center, 1.0, 0.02);
  EXPECT_NEAR(b.mean() / center, 1.0, 0.02);
}

TEST(ShareTest, RerandomizePreservesSecretAndChangesShares) {
  Rng rng(5);
  const WordShares s = ShareWord(12345, &rng);
  const WordShares r = RerandomizeWord(s, &rng);
  EXPECT_EQ(RecoverWord(r), 12345u);
  EXPECT_NE(r.s0, s.s0);  // fresh mask (fails w.p. 2^-32)
}

TEST(ShareTest, VectorShareRecover) {
  Rng rng(6);
  std::vector<Word> values = {1, 2, 3, 0xFFFFFFFF, 0};
  std::vector<Word> s0, s1;
  ShareWords(values, &rng, &s0, &s1);
  EXPECT_EQ(RecoverWords(s0, s1), values);
}

// ---------------------------------------------------------------------------
// SharedRows
// ---------------------------------------------------------------------------

TEST(SharedRowsTest, AppendAndRecover) {
  Rng rng(7);
  SharedRows rows(3);
  rows.AppendSecretRow({1, 2, 3}, &rng);
  rows.AppendSecretRow({4, 5, 6}, &rng);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.width(), 3u);
  EXPECT_EQ(rows.RecoverRow(0), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(rows.RecoverRow(1), (std::vector<Word>{4, 5, 6}));
  EXPECT_EQ(rows.RecoverAt(1, 2), 6u);
}

TEST(SharedRowsTest, AppendSharedRow) {
  SharedRows rows(2);
  rows.AppendSharedRow({0xA, 0xB}, {0x1, 0x2});
  EXPECT_EQ(rows.RecoverRow(0), (std::vector<Word>{0xA ^ 0x1, 0xB ^ 0x2}));
}

TEST(SharedRowsTest, AppendAllConcatenates) {
  Rng rng(8);
  SharedRows a(2), b(2);
  a.AppendSecretRow({1, 1}, &rng);
  b.AppendSecretRow({2, 2}, &rng);
  b.AppendSecretRow({3, 3}, &rng);
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.RecoverRow(2), (std::vector<Word>{3, 3}));
}

TEST(SharedRowsTest, SplitPrefix) {
  Rng rng(9);
  SharedRows rows(1);
  for (Word i = 0; i < 10; ++i) rows.AppendSecretRow({i}, &rng);
  SharedRows head = rows.SplitPrefix(4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(head.RecoverRow(0)[0], 0u);
  EXPECT_EQ(head.RecoverRow(3)[0], 3u);
  EXPECT_EQ(rows.RecoverRow(0)[0], 4u);
}

TEST(SharedRowsTest, SplitPrefixClampsToSize) {
  Rng rng(10);
  SharedRows rows(1);
  rows.AppendSecretRow({1}, &rng);
  SharedRows head = rows.SplitPrefix(100);
  EXPECT_EQ(head.size(), 1u);
  EXPECT_EQ(rows.size(), 0u);
  EXPECT_TRUE(rows.empty());
}

TEST(SharedRowsTest, TruncateAndClear) {
  Rng rng(11);
  SharedRows rows(2);
  for (Word i = 0; i < 5; ++i) rows.AppendSecretRow({i, i}, &rng);
  rows.Truncate(3);
  EXPECT_EQ(rows.size(), 3u);
  rows.Truncate(10);  // no-op
  EXPECT_EQ(rows.size(), 3u);
  rows.Clear();
  EXPECT_EQ(rows.size(), 0u);
}

TEST(SharedRowsTest, TotalBytesCountsBothServers) {
  Rng rng(12);
  SharedRows rows(4);
  rows.AppendSecretRow({0, 0, 0, 0}, &rng);
  EXPECT_EQ(rows.TotalBytes(), 4u * 4u * 2u);
}

class SharedRowsSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SharedRowsSizeTest, RecoverAllRowsAtScale) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  SharedRows rows(3);
  std::vector<std::vector<Word>> expect;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Word> row = {static_cast<Word>(i), rng.Next32(),
                             static_cast<Word>(i * 7)};
    expect.push_back(row);
    rows.AppendSecretRow(row, &rng);
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(rows.RecoverRow(i), expect[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SharedRowsSizeTest,
                         ::testing::Values(0, 1, 2, 17, 256, 1000));

}  // namespace
}  // namespace incshrink
