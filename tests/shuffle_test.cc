// Waksman permutation-network shuffle suite:
//
//   * network construction: the programmed network realizes *every*
//     permutation — exhaustively for n in [0, 8], sampled up to n = 64 —
//     with layer-disjoint switches whose topology (pair placement, layer
//     sizes, depth, switch count) is a pure function of n;
//   * execution equivalence: ObliviousShuffle / ObliviousShuffleBatch are
//     bit-identical (shares, randomness stream, aggregate cost) across
//     1 / 2 / 8 threads, single- and multi-job;
//   * shuffle-then-sort: same sorted key order as Batcher, thread- and
//     batch-knob-invariant, with an input-invariant circuit trace across
//     same-cardinality inputs;
//   * gate budget: the Waksman flush path beats the Batcher flush by the
//     targeted >= 1.8x AND-gate margin at n = 4096;
//   * engine/fleet tier: `sort_algorithm = shuffle_sort` deployments are
//     bit-identical across thread counts, shard counts and fleet
//     coalescing, and (ShuffleSortGolden*) semantically equivalent to the
//     Batcher reference when flushes are disabled.
//
// Runs under the TSan CI job together with the parallel/sharded suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/shuffle.h"
#include "src/oblivious/sort.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatsEqual(const CircuitStats& a, const CircuitStats& b) {
  EXPECT_EQ(a.and_gates, b.and_gates);
  EXPECT_EQ(a.xor_gates, b.xor_gates);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.rounds, b.rounds);
}

void ExpectRowsIdentical(const SharedRows& a, const SharedRows& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.width(), b.width());
  EXPECT_EQ(a.shares0(), b.shares0());
  EXPECT_EQ(a.shares1(), b.shares1());
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.RecoverRow(r), b.RecoverRow(r)) << "row " << r;
  }
}

SharedRows RandomViewRows(Rng* rng, size_t n) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.4)) {
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, seq++);
      row[kViewKeyCol] = rng->Next32() % 97;
      rows.AppendSecretRow(row, rng);
    } else {
      AppendDummyViewRow(&rows, rng, &seq);
    }
  }
  return rows;
}

struct ProtoPair {
  Party s0{0, 11}, s1{1, 22};
  Protocol2PC proto{&s0, &s1, CostModel::EmpLikeLan()};
};

/// Applies the programmed network to a plaintext array: crossed switches
/// swap, straight switches don't. Layer order; within a layer switch order
/// is irrelevant (disjointness — asserted separately).
std::vector<uint32_t> ApplyNetworkPlain(
    const std::vector<std::vector<ProgrammedSwitch>>& layers,
    std::vector<uint32_t> values) {
  for (const auto& layer : layers) {
    for (const ProgrammedSwitch& sw : layer) {
      if (sw.swap) std::swap(values[sw.pair.a], values[sw.pair.b]);
    }
  }
  return values;
}

void ExpectNetworkRealizes(const std::vector<uint32_t>& perm) {
  const size_t n = perm.size();
  const auto layers = WaksmanNetwork(perm);
  EXPECT_EQ(layers.size(), ShuffleNetworkDepth(n));
  std::vector<uint32_t> src(n);
  std::iota(src.begin(), src.end(), 0u);
  const std::vector<uint32_t> dst = ApplyNetworkPlain(layers, src);
  for (size_t k = 0; k < n; ++k) {
    ASSERT_EQ(dst[k], perm[k]) << "n=" << n << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Network construction
// ---------------------------------------------------------------------------

TEST(WaksmanNetworkTest, RealizesEveryPermutationExhaustivelyUpTo8) {
  for (size_t n = 0; n <= 8; ++n) {
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    do {
      ExpectNetworkRealizes(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(WaksmanNetworkTest, RealizesSampledPermutationsUpTo64) {
  Rng gen(1234);
  for (size_t n = 9; n <= 64; ++n) {
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<uint32_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      SeededShuffle(perm.begin(), perm.end(), &gen);
      ExpectNetworkRealizes(perm);
    }
  }
}

TEST(WaksmanNetworkTest, LayersAreDisjointAndMatchTheSizeFormulas) {
  Rng gen(99);
  for (const size_t n : {2u, 3u, 5u, 7u, 8u, 16u, 33u, 64u, 100u, 257u}) {
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    SeededShuffle(perm.begin(), perm.end(), &gen);
    const auto layers = WaksmanNetwork(perm);
    const std::vector<uint64_t> sizes = ShuffleNetworkLayerSizes(n);
    ASSERT_EQ(layers.size(), sizes.size()) << "n=" << n;
    ASSERT_EQ(layers.size(), ShuffleNetworkDepth(n)) << "n=" << n;
    uint64_t total = 0;
    for (size_t l = 0; l < layers.size(); ++l) {
      EXPECT_EQ(layers[l].size(), sizes[l]) << "n=" << n << " layer " << l;
      std::set<uint32_t> touched;
      for (const ProgrammedSwitch& sw : layers[l]) {
        EXPECT_LT(sw.pair.a, sw.pair.b) << "n=" << n << " layer " << l;
        EXPECT_LT(sw.pair.b, n) << "n=" << n << " layer " << l;
        EXPECT_TRUE(touched.insert(sw.pair.a).second) << "n=" << n;
        EXPECT_TRUE(touched.insert(sw.pair.b).second) << "n=" << n;
      }
      total += layers[l].size();
    }
    EXPECT_EQ(total, ShuffleNetworkSwitches(n)) << "n=" << n;
  }
}

TEST(WaksmanNetworkTest, TopologyIsAPureFunctionOfN) {
  // Two different permutations of the same size must produce networks with
  // identical switch *placement* — only the control bits may differ. This
  // is the structural half of trace invariance.
  Rng gen(7);
  for (const size_t n : {3u, 8u, 31u, 64u}) {
    std::vector<uint32_t> a(n), b(n);
    std::iota(a.begin(), a.end(), 0u);
    b = a;
    SeededShuffle(b.begin(), b.end(), &gen);
    const auto la = WaksmanNetwork(a);
    const auto lb = WaksmanNetwork(b);
    ASSERT_EQ(la.size(), lb.size()) << "n=" << n;
    for (size_t l = 0; l < la.size(); ++l) {
      ASSERT_EQ(la[l].size(), lb[l].size()) << "n=" << n << " layer " << l;
      for (size_t p = 0; p < la[l].size(); ++p) {
        EXPECT_EQ(la[l][p].pair.a, lb[l][p].pair.a) << "n=" << n;
        EXPECT_EQ(la[l][p].pair.b, lb[l][p].pair.b) << "n=" << n;
      }
    }
  }
}

TEST(WaksmanNetworkTest, SwitchCountIsNLogNMinusNPlusOneAtPowersOfTwo) {
  for (const auto& [n, lg] : std::vector<std::pair<size_t, uint64_t>>{
           {2, 1}, {4, 2}, {8, 3}, {64, 6}, {256, 8}, {4096, 12}}) {
    EXPECT_EQ(ShuffleNetworkSwitches(n), n * lg - n + 1) << "n=" << n;
  }
  EXPECT_EQ(ShuffleNetworkSwitches(0), 0u);
  EXPECT_EQ(ShuffleNetworkSwitches(1), 0u);
  EXPECT_EQ(ShuffleNetworkSwitches(3), 3u);
}

TEST(ShuffleLayerCursorTest, EnumeratesExactlyTheMaterializedLayers) {
  std::vector<uint32_t> perm{3, 0, 4, 1, 2};
  const auto layers = WaksmanNetwork(perm);
  ShuffleLayerCursor cursor(perm);
  std::vector<ProgrammedSwitch> layer;
  size_t l = 0;
  while (cursor.Next(&layer)) {
    ASSERT_LT(l, layers.size());
    ASSERT_EQ(layer.size(), layers[l].size());
    for (size_t p = 0; p < layer.size(); ++p) {
      EXPECT_EQ(layer[p].pair.a, layers[l][p].pair.a);
      EXPECT_EQ(layer[p].pair.b, layers[l][p].pair.b);
      EXPECT_EQ(layer[p].swap, layers[l][p].swap);
    }
    ++l;
  }
  EXPECT_EQ(l, layers.size());
}

// ---------------------------------------------------------------------------
// Permutation draws
// ---------------------------------------------------------------------------

TEST(DrawPublicPermutationTest, DrawsValidDeterministicPermutations) {
  for (const size_t n : {0u, 1u, 2u, 7u, 64u, 257u}) {
    ProtoPair a, b;  // same seeds -> same joint stream
    const std::vector<uint32_t> pa = DrawPublicPermutation(&a.proto, n);
    const std::vector<uint32_t> pb = DrawPublicPermutation(&b.proto, n);
    EXPECT_EQ(pa, pb) << "n=" << n;
    ASSERT_EQ(pa.size(), n);
    std::vector<bool> seen(n, false);
    for (const uint32_t v : pa) {
      ASSERT_LT(v, n);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(DrawPublicPermutationTest, ConsumesExactlyTwoWordsPerStep) {
  // Stream-alignment contract: drawing a permutation of n advances the
  // resharing stream by exactly 2*(n-1) words, for every n — the property
  // that keeps shuffle traces aligned across same-cardinality inputs.
  for (const size_t n : {2u, 3u, 17u, 100u}) {
    ProtoPair a, b;
    (void)DrawPublicPermutation(&a.proto, n);
    std::vector<Word> skip(2 * (n - 1));
    b.proto.DrawReshareMasks(skip.size(), skip.data());
    std::vector<Word> next_a(4), next_b(4);
    a.proto.DrawReshareMasks(4, next_a.data());
    b.proto.DrawReshareMasks(4, next_b.data());
    EXPECT_EQ(next_a, next_b) << "n=" << n;
  }
}

TEST(DrawPublicPermutationTest, PermutationsActuallyVaryAcrossDraws) {
  ProtoPair p;
  const std::vector<uint32_t> first = DrawPublicPermutation(&p.proto, 64);
  const std::vector<uint32_t> second = DrawPublicPermutation(&p.proto, 64);
  EXPECT_NE(first, second);  // astronomically unlikely to collide
}

// ---------------------------------------------------------------------------
// Oblivious execution: single job
// ---------------------------------------------------------------------------

TEST(ObliviousShuffleTest, AppliesThePermutationToSecretRows) {
  Rng rng(5);
  for (const size_t n : {0u, 1u, 2u, 5u, 33u, 64u}) {
    SharedRows rows = RandomViewRows(&rng, n);
    std::vector<std::vector<Word>> before(n);
    for (size_t i = 0; i < n; ++i) before[i] = rows.RecoverRow(i);
    ProtoPair p;
    const std::vector<uint32_t> perm = DrawPublicPermutation(&p.proto, n);
    ObliviousShuffle(&p.proto, &rows, perm);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(rows.RecoverRow(k), before[perm[k]]) << "n=" << n;
    }
  }
}

TEST(ObliviousShuffleTest, ChargesExactlyOneMuxSwapPerSwitch) {
  Rng rng(6);
  SharedRows rows = RandomViewRows(&rng, 100);
  ProtoPair p;
  const std::vector<uint32_t> perm = DrawPublicPermutation(&p.proto, 100);
  const CircuitStats before = p.proto.Snapshot();
  ObliviousShuffle(&p.proto, &rows, perm);
  const CircuitStats after = p.proto.stats();
  EXPECT_EQ(after.and_gates - before.and_gates,
            ShuffleNetworkSwitches(100) * kViewWidth * kWordBits);
}

TEST(ObliviousShuffleTest, BatchedEqualsSerialAtAllThreadCounts) {
  Rng rng(7);
  for (const size_t n : {2u, 37u, 128u, 200u}) {
    const SharedRows input = RandomViewRows(&rng, n);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " threads=" +
                   std::to_string(threads));
      ProtoPair serial, batched;  // same seeds -> identical joint streams
      const std::vector<uint32_t> perm =
          DrawPublicPermutation(&serial.proto, n);
      EXPECT_EQ(DrawPublicPermutation(&batched.proto, n), perm);
      SharedRows s = input, b = input;
      ObliviousShuffle(&serial.proto, &s, perm);
      ThreadPool pool(threads);
      ObliviousShuffle(&batched.proto, &b, perm, BatchExec{&pool, 1});
      ExpectRowsIdentical(s, b);
      ExpectStatsEqual(serial.proto.stats(), batched.proto.stats());
      // The post-shuffle randomness streams must agree too.
      std::vector<Word> ws(4), wb(4);
      serial.proto.DrawReshareMasks(4, ws.data());
      batched.proto.DrawReshareMasks(4, wb.data());
      EXPECT_EQ(ws, wb);
    }
  }
}

// ---------------------------------------------------------------------------
// Oblivious execution: multi-job fusion
// ---------------------------------------------------------------------------

TEST(ObliviousShuffleBatchTest, FusedJobsEqualEachJobAlone) {
  Rng rng(8);
  const std::vector<size_t> sizes{64, 33, 128, 5};
  std::vector<SharedRows> inputs;
  for (const size_t n : sizes) inputs.push_back(RandomViewRows(&rng, n));
  // Reference: each job alone, serial, on its own protocol.
  std::vector<ProtoPair> ref(sizes.size());
  std::vector<SharedRows> ref_rows = inputs;
  std::vector<std::vector<uint32_t>> perms(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    perms[i] = DrawPublicPermutation(&ref[i].proto, sizes[i]);
    ObliviousShuffle(&ref[i].proto, &ref_rows[i], perms[i]);
  }
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<ProtoPair> fused(sizes.size());
    std::vector<SharedRows> fused_rows = inputs;
    std::vector<ShuffleJob> jobs;
    for (size_t i = 0; i < sizes.size(); ++i) {
      (void)DrawPublicPermutation(&fused[i].proto, sizes[i]);
      jobs.push_back({&fused[i].proto, &fused_rows[i], &perms[i]});
    }
    ThreadPool pool(threads);
    ObliviousShuffleBatch(jobs.data(), jobs.size(), BatchExec{&pool, 1});
    for (size_t i = 0; i < sizes.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      ExpectRowsIdentical(ref_rows[i], fused_rows[i]);
      ExpectStatsEqual(ref[i].proto.stats(), fused[i].proto.stats());
    }
  }
}

TEST(ObliviousRandomPermuteTest, PreservesRowsAndFusesLikeSingles) {
  Rng rng(9);
  const std::vector<size_t> sizes{48, 96};
  std::vector<SharedRows> inputs;
  for (const size_t n : sizes) inputs.push_back(RandomViewRows(&rng, n));

  std::vector<ProtoPair> ref(sizes.size());
  std::vector<SharedRows> ref_rows = inputs;
  for (size_t i = 0; i < sizes.size(); ++i) {
    ObliviousRandomPermute(&ref[i].proto, &ref_rows[i]);
    // Multiset of recovered rows is preserved.
    std::multiset<std::vector<Word>> before_set, after_set;
    for (size_t r = 0; r < inputs[i].size(); ++r) {
      before_set.insert(inputs[i].RecoverRow(r));
      after_set.insert(ref_rows[i].RecoverRow(r));
    }
    EXPECT_EQ(before_set, after_set) << "job " << i;
  }
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<ProtoPair> fused(sizes.size());
    std::vector<SharedRows> fused_rows = inputs;
    std::vector<PermuteJob> jobs;
    for (size_t i = 0; i < sizes.size(); ++i) {
      jobs.push_back({&fused[i].proto, &fused_rows[i]});
    }
    ThreadPool pool(threads);
    ObliviousRandomPermuteBatch(jobs.data(), jobs.size(),
                                BatchExec{&pool, 1});
    for (size_t i = 0; i < sizes.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      ExpectRowsIdentical(ref_rows[i], fused_rows[i]);
      ExpectStatsEqual(ref[i].proto.stats(), fused[i].proto.stats());
    }
  }
}

// ---------------------------------------------------------------------------
// Shuffle-then-sort
// ---------------------------------------------------------------------------

TEST(ShuffleSortTest, KeyOrderMatchesBatcherSort) {
  Rng rng(10);
  for (const size_t n : {0u, 1u, 2u, 17u, 64u, 150u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const SharedRows input = RandomViewRows(&rng, n);
    ProtoPair pb, ps;
    SharedRows batcher_rows = input;
    ObliviousSort(&pb.proto, &batcher_rows, kViewSortKeyCol,
                  /*ascending=*/false);
    SharedRows shuffle_rows = input;
    ObliviousShuffleSort(&ps.proto, &shuffle_rows, kViewSortKeyCol,
                         /*ascending=*/false);
    std::multiset<std::vector<Word>> batcher_set, shuffle_set;
    for (size_t r = 0; r < n; ++r) {
      // Identical key sequences (ties may place different rows, so full
      // rows are compared as a multiset below).
      EXPECT_EQ(shuffle_rows.RecoverRow(r)[kViewSortKeyCol],
                batcher_rows.RecoverRow(r)[kViewSortKeyCol])
          << "row " << r;
      batcher_set.insert(batcher_rows.RecoverRow(r));
      shuffle_set.insert(shuffle_rows.RecoverRow(r));
    }
    EXPECT_EQ(batcher_set, shuffle_set);
    // Real cache rows carry unique FIFO keys, so the real-row prefix must
    // agree row for row, not just as key sequences.
    for (size_t r = 0; r < n; ++r) {
      const std::vector<Word> row = batcher_rows.RecoverRow(r);
      if (row[kViewIsViewCol] != 1) break;
      EXPECT_EQ(shuffle_rows.RecoverRow(r), row) << "real row " << r;
    }
  }
}

TEST(ShuffleSortTest, AscendingOrderWorksToo) {
  Rng rng(11);
  const SharedRows input = RandomViewRows(&rng, 80);
  ProtoPair p;
  SharedRows rows = input;
  ObliviousShuffleSort(&p.proto, &rows, kViewSortKeyCol, /*ascending=*/true);
  for (size_t r = 1; r < rows.size(); ++r) {
    EXPECT_LE(rows.RecoverRow(r - 1)[kViewSortKeyCol],
              rows.RecoverRow(r)[kViewSortKeyCol]);
  }
}

TEST(ShuffleSortTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(12);
  for (const size_t n : {64u, 150u}) {
    const SharedRows input = RandomViewRows(&rng, n);
    ProtoPair serial;
    SharedRows s = input;
    ObliviousShuffleSort(&serial.proto, &s, kViewSortKeyCol,
                         /*ascending=*/false);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " threads=" +
                   std::to_string(threads));
      ProtoPair batched;
      SharedRows b = input;
      ThreadPool pool(threads);
      ObliviousShuffleSort(&batched.proto, &b, kViewSortKeyCol,
                           /*ascending=*/false, BatchExec{&pool, 1});
      ExpectRowsIdentical(s, b);
      ExpectStatsEqual(serial.proto.stats(), batched.proto.stats());
    }
  }
}

TEST(ShuffleSortTest, FusedJobsEqualEachJobAlone) {
  Rng rng(13);
  const std::vector<size_t> sizes{64, 31, 100};
  std::vector<SharedRows> inputs;
  for (const size_t n : sizes) inputs.push_back(RandomViewRows(&rng, n));
  std::vector<ProtoPair> ref(sizes.size());
  std::vector<SharedRows> ref_rows = inputs;
  for (size_t i = 0; i < sizes.size(); ++i) {
    ObliviousShuffleSort(&ref[i].proto, &ref_rows[i], kViewSortKeyCol,
                         /*ascending=*/false);
  }
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<ProtoPair> fused(sizes.size());
    std::vector<SharedRows> fused_rows = inputs;
    std::vector<SortJob> jobs;
    for (size_t i = 0; i < sizes.size(); ++i) {
      jobs.push_back(SortJob{&fused[i].proto, &fused_rows[i],
                             kViewSortKeyCol, 0, /*lex=*/false,
                             /*ascending=*/false,
                             SortAlgorithm::kShuffleSort});
    }
    ThreadPool pool(threads);
    // Through the ObliviousSortBatch dispatcher — the engine/fleet seam.
    ObliviousSortBatch(jobs.data(), jobs.size(), BatchExec{&pool, 1});
    for (size_t i = 0; i < sizes.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      ExpectRowsIdentical(ref_rows[i], fused_rows[i]);
      ExpectStatsEqual(ref[i].proto.stats(), fused[i].proto.stats());
    }
  }
}

TEST(ShuffleSortTest, MixedAlgorithmBatchesDispatchCorrectly) {
  Rng rng(14);
  const SharedRows in_a = RandomViewRows(&rng, 60);
  const SharedRows in_b = RandomViewRows(&rng, 60);
  ProtoPair ref_a, ref_b;
  SharedRows ra = in_a, rb = in_b;
  ObliviousSort(&ref_a.proto, &ra, kViewSortKeyCol, /*ascending=*/false);
  ObliviousShuffleSort(&ref_b.proto, &rb, kViewSortKeyCol,
                       /*ascending=*/false);
  ProtoPair mix_a, mix_b;
  SharedRows ma = in_a, mb = in_b;
  std::vector<SortJob> jobs{
      SortJob{&mix_a.proto, &ma, kViewSortKeyCol, 0, false, false,
              SortAlgorithm::kBatcher},
      SortJob{&mix_b.proto, &mb, kViewSortKeyCol, 0, false, false,
              SortAlgorithm::kShuffleSort}};
  ThreadPool pool(2);
  ObliviousSortBatch(jobs.data(), jobs.size(), BatchExec{&pool, 1});
  ExpectRowsIdentical(ra, ma);
  ExpectRowsIdentical(rb, mb);
  ExpectStatsEqual(ref_a.proto.stats(), mix_a.proto.stats());
  ExpectStatsEqual(ref_b.proto.stats(), mix_b.proto.stats());
}

// ---------------------------------------------------------------------------
// Trace invariance and the gate budget
// ---------------------------------------------------------------------------

TEST(ShuffleSortTest, TraceIsInvariantAcrossSameCardinalityInputs) {
  Rng rng_a(15), rng_b(16);
  const size_t n = 96;
  SharedRows rows_a = RandomViewRows(&rng_a, n);
  SharedRows rows_b = RandomViewRows(&rng_b, n);
  ProtoPair pa, pb;  // same seeds: identical joint streams
  pa.proto.EnableBatchTrace(true);
  pb.proto.EnableBatchTrace(true);
  const CircuitStats before_a = pa.proto.Snapshot();
  const CircuitStats before_b = pb.proto.Snapshot();
  ObliviousShuffleSort(&pa.proto, &rows_a, kViewSortKeyCol, false);
  ObliviousShuffleSort(&pb.proto, &rows_b, kViewSortKeyCol, false);
  const CircuitStats after_a = pa.proto.stats();
  const CircuitStats after_b = pb.proto.stats();
  EXPECT_EQ(after_a.and_gates - before_a.and_gates,
            after_b.and_gates - before_b.and_gates);
  EXPECT_EQ(after_a.bytes - before_a.bytes, after_b.bytes - before_b.bytes);
  EXPECT_EQ(after_a.rounds - before_a.rounds,
            after_b.rounds - before_b.rounds);
  ASSERT_EQ(pa.proto.batch_trace().size(), pb.proto.batch_trace().size());
  for (size_t i = 0; i < pa.proto.batch_trace().size(); ++i) {
    const BatchTraceEvent& ea = pa.proto.batch_trace()[i];
    const BatchTraceEvent& eb = pb.proto.batch_trace()[i];
    EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind)) << i;
    EXPECT_EQ(ea.ops, eb.ops) << "event " << i;
    EXPECT_EQ(ea.cost.and_gates, eb.cost.and_gates) << "event " << i;
  }
}

TEST(ShuffleGateBudgetTest, WaksmanFlushBeatsBatcherFlushAt4096) {
  // The acceptance bar: >= 1.8x fewer compare/mux AND gates per flush.
  // Batcher flush: one compare-exchange = key comparison + row mux-swap.
  // Waksman flush: one mux-swap per switch, no comparisons at all.
  const size_t n = 4096;
  const uint64_t batcher_gates =
      SortNetworkCompareExchanges(n) *
      (kWordBits + kViewWidth * kWordBits);
  const uint64_t waksman_gates =
      ShuffleNetworkSwitches(n) * kViewWidth * kWordBits;
  EXPECT_GE(static_cast<double>(batcher_gates),
            1.8 * static_cast<double>(waksman_gates))
      << "batcher=" << batcher_gates << " waksman=" << waksman_gates;
  // And the measured path agrees with the formula (width-kViewWidth rows).
  Rng rng(17);
  SharedRows rows = RandomViewRows(&rng, 256);
  ProtoPair p;
  const CircuitStats before = p.proto.Snapshot();
  SharedRows fetched =
      CacheFlush(&p.proto, &rows, 15, SortAlgorithm::kShuffleSort);
  EXPECT_EQ(fetched.size(), 15u);
  EXPECT_EQ(p.proto.stats().and_gates - before.and_gates,
            ShuffleNetworkSwitches(256) * kViewWidth * kWordBits);
}

TEST(ShuffleSortComparisonsTest, IsNCeilLogN) {
  EXPECT_EQ(ShuffleSortComparisons(0), 0u);
  EXPECT_EQ(ShuffleSortComparisons(1), 0u);
  EXPECT_EQ(ShuffleSortComparisons(2), 2u);
  EXPECT_EQ(ShuffleSortComparisons(5), 5u * 3);
  EXPECT_EQ(ShuffleSortComparisons(4096), 4096u * 12);
}

// ---------------------------------------------------------------------------
// Cache-op tier dispatch
// ---------------------------------------------------------------------------

TEST(ShuffleCacheOpsTest, ShuffleSortCacheReadReturnsTheRealPrefix) {
  Rng rng(18);
  SharedRows cache = RandomViewRows(&rng, 128);
  Party probe0(0, 1), probe1(1, 2);
  Protocol2PC probe(&probe0, &probe1, CostModel::Free());
  const uint32_t real = CountRealInside(&probe, cache);
  ProtoPair p;
  SharedRows fetched = ObliviousCacheRead(&p.proto, &cache, real,
                                          SortAlgorithm::kShuffleSort);
  ASSERT_EQ(fetched.size(), real);
  for (size_t r = 0; r < fetched.size(); ++r) {
    EXPECT_EQ(fetched.RecoverRow(r)[kViewIsViewCol], 1u) << "row " << r;
  }
}

TEST(ShuffleCacheOpsTest, BatcherAlgorithmOverloadIsTheLegacyPath) {
  Rng rng(19);
  const SharedRows input = RandomViewRows(&rng, 64);
  ProtoPair legacy, dispatched;
  SharedRows a = input, b = input;
  SharedRows fa = CacheFlush(&legacy.proto, &a, 10);
  SharedRows fb =
      CacheFlush(&dispatched.proto, &b, 10, SortAlgorithm::kBatcher);
  ExpectRowsIdentical(fa, fb);
  ExpectStatsEqual(legacy.proto.stats(), dispatched.proto.stats());
}

// ---------------------------------------------------------------------------
// Engine / fleet tier
// ---------------------------------------------------------------------------

void ExpectEngineIdentical(const Engine& a, const Engine& b) {
  ASSERT_EQ(a.transcript().size(), b.transcript().size());
  for (size_t i = 0; i < a.transcript().size(); ++i) {
    EXPECT_EQ(a.transcript()[i], b.transcript()[i]) << "event " << i;
  }
  ASSERT_EQ(a.releases().size(), b.releases().size());
  for (size_t i = 0; i < a.releases().size(); ++i) {
    EXPECT_EQ(a.releases()[i].t, b.releases()[i].t);
    EXPECT_EQ(a.releases()[i].size, b.releases()[i].size);
    EXPECT_EQ(a.releases()[i].fired, b.releases()[i].fired);
  }
  const RunSummary sa = a.Summary(), sb = b.Summary();
  EXPECT_EQ(sa.final_view_rows, sb.final_view_rows);
  EXPECT_EQ(sa.final_cache_rows, sb.final_cache_rows);
  EXPECT_EQ(sa.updates, sb.updates);
  EXPECT_EQ(sa.flushes, sb.flushes);
  EXPECT_EQ(sa.steps, sb.steps);
  EXPECT_EQ(sa.final_true_count, sb.final_true_count);
  EXPECT_EQ(sa.l1_error.sum(), sb.l1_error.sum());
  EXPECT_EQ(sa.total_mpc_seconds, sb.total_mpc_seconds);
}

GeneratedWorkload SmallTpcDs() {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 21;
  return GenerateTpcDs(p);
}

IncShrinkConfig ShuffleSortConfig(Strategy strategy, uint32_t shards,
                                  int threads) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = strategy;
  cfg.ant_theta = 8;
  cfg.flush_interval = 16;
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  cfg.sort_algorithm = SortAlgorithm::kShuffleSort;
  return cfg;
}

TEST(ShuffleSortEngineTest, InvariantAcrossThreadAndBatchKnobs) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const Strategy strategy : {Strategy::kDpTimer, Strategy::kDpAnt}) {
    SCOPED_TRACE(StrategyName(strategy));
    SynchronousDeployment ref_dep(ShuffleSortConfig(strategy, 1, 1));
    ASSERT_TRUE(ref_dep.Run(w.t1, w.t2).ok());
    for (const int threads : {2, 8}) {
      for (const uint32_t min_layer : {1u, 128u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " min_layer=" +
                     std::to_string(min_layer));
        IncShrinkConfig cfg = ShuffleSortConfig(strategy, 1, threads);
        cfg.oblivious_batch_min_layer = min_layer;
        SynchronousDeployment run_dep(cfg);
        ASSERT_TRUE(run_dep.Run(w.t1, w.t2).ok());
        ExpectEngineIdentical(ref_dep.engine(), run_dep.engine());
      }
    }
  }
}

TEST(ShuffleSortEngineTest, ShardedRunsInvariantAcrossThreadCounts) {
  const GeneratedWorkload w = SmallTpcDs();
  for (const uint32_t shards : {2u, 4u}) {
    SynchronousDeployment ref_dep(
        ShuffleSortConfig(Strategy::kDpTimer, shards, 1));
    ASSERT_TRUE(ref_dep.Run(w.t1, w.t2).ok());
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" +
                   std::to_string(threads));
      SynchronousDeployment run_dep(
          ShuffleSortConfig(Strategy::kDpTimer, shards, threads));
      ASSERT_TRUE(run_dep.Run(w.t1, w.t2).ok());
      ExpectEngineIdentical(ref_dep.engine(), run_dep.engine());
    }
  }
}

TEST(ShuffleSortFleetTest, CoalescedFleetMatchesStandaloneEngines) {
  const GeneratedWorkload w = SmallTpcDs();
  // Mixed tenants: one Batcher, one shuffle-sort — the coalesced fleet's
  // fused submission must dispatch both groups correctly.
  IncShrinkConfig batcher_cfg = ShuffleSortConfig(Strategy::kDpTimer, 1, 1);
  batcher_cfg.sort_algorithm = SortAlgorithm::kBatcher;
  const IncShrinkConfig shuffle_cfg =
      ShuffleSortConfig(Strategy::kDpTimer, 1, 1);
  for (const bool coalesce : {false, true}) {
    SCOPED_TRACE(coalesce ? "coalesced" : "unfused");
    DeploymentFleet::Options opts;
    opts.root_seed = 99;
    opts.num_threads = 2;
    opts.coalesce_sorts = coalesce;
    opts.batch_min_layer = 1;
    DeploymentFleet fleet(
        {{"batcher", batcher_cfg, &w}, {"shuffle", shuffle_cfg, &w}}, opts);
    fleet.RunAll();
    const std::vector<IncShrinkConfig> cfgs{batcher_cfg, shuffle_cfg};
    for (size_t i = 0; i < fleet.num_tenants(); ++i) {
      IncShrinkConfig standalone_cfg = cfgs[i];
      standalone_cfg.seed = DeriveTenantSeed(99, i);
      SynchronousDeployment standalone_dep(standalone_cfg);
      ASSERT_TRUE(standalone_dep.Run(w.t1, w.t2).ok());
      SCOPED_TRACE("tenant " + std::to_string(i));
      ExpectEngineIdentical(standalone_dep.engine(), fleet.engine(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence (registered as the shuffle_sort_golden_smoke ctest
// entry via --gtest_filter=ShuffleSortGolden*)
// ---------------------------------------------------------------------------

TEST(ShuffleSortGoldenTest, SemanticObservablesMatchBatcherWithoutFlushes) {
  // With flushes disabled, both policies release the same DP sizes (the
  // Laplace draws come from the party streams, untouched by the sort
  // algorithm) and fetch prefixes with the same real-row contents (real
  // rows carry unique FIFO keys; ties exist only among dummies). So every
  // semantic observable — transcripts, release schedule, error stats, true
  // counts — must agree exactly; only circuit costs and tie placement may
  // differ from the Batcher goldens.
  const GeneratedWorkload w = SmallTpcDs();
  for (const Strategy strategy : {Strategy::kDpTimer, Strategy::kDpAnt}) {
    SCOPED_TRACE(StrategyName(strategy));
    IncShrinkConfig batcher_cfg = DefaultTpcDsConfig();
    batcher_cfg.strategy = strategy;
    batcher_cfg.ant_theta = 8;
    batcher_cfg.flush_interval = 0;  // flushing is the lossy tier
    IncShrinkConfig shuffle_cfg = batcher_cfg;
    shuffle_cfg.sort_algorithm = SortAlgorithm::kShuffleSort;

    SynchronousDeployment batcher_dep(batcher_cfg);
    ASSERT_TRUE(batcher_dep.Run(w.t1, w.t2).ok());
    SynchronousDeployment shuffle_dep(shuffle_cfg);
    ASSERT_TRUE(shuffle_dep.Run(w.t1, w.t2).ok());
    const Engine& batcher = batcher_dep.engine();
    const Engine& shuffle = shuffle_dep.engine();

    ASSERT_EQ(batcher.transcript().size(), shuffle.transcript().size());
    for (size_t i = 0; i < batcher.transcript().size(); ++i) {
      EXPECT_EQ(batcher.transcript()[i], shuffle.transcript()[i])
          << "event " << i;
    }
    ASSERT_EQ(batcher.releases().size(), shuffle.releases().size());
    for (size_t i = 0; i < batcher.releases().size(); ++i) {
      EXPECT_EQ(batcher.releases()[i].t, shuffle.releases()[i].t);
      EXPECT_EQ(batcher.releases()[i].size, shuffle.releases()[i].size);
      EXPECT_EQ(batcher.releases()[i].fired, shuffle.releases()[i].fired);
    }
    const RunSummary sb = batcher.Summary(), ss = shuffle.Summary();
    EXPECT_EQ(sb.final_view_rows, ss.final_view_rows);
    EXPECT_EQ(sb.final_cache_rows, ss.final_cache_rows);
    EXPECT_EQ(sb.updates, ss.updates);
    EXPECT_EQ(sb.flushes, ss.flushes);
    EXPECT_EQ(sb.steps, ss.steps);
    EXPECT_EQ(sb.final_true_count, ss.final_true_count);
    EXPECT_EQ(sb.total_real_entries_cached, ss.total_real_entries_cached);
    EXPECT_EQ(sb.l1_error.sum(), ss.l1_error.sum());
    EXPECT_EQ(sb.relative_error.sum(), ss.relative_error.sum());
    EXPECT_EQ(sb.true_count_stat.sum(), ss.true_count_stat.sum());
    // The view's real contents agree row-set-wise.
    Party probe0(0, 1), probe1(1, 2);
    Protocol2PC probe(&probe0, &probe1, CostModel::Free());
    EXPECT_EQ(CountRealInside(&probe, batcher.view().rows()),
              CountRealInside(&probe, shuffle.view().rows()));
  }
}

}  // namespace
}  // namespace incshrink
