#include <gtest/gtest.h>

#include "src/core/transform.h"
#include "src/mpc/party.h"
#include "src/oblivious/cache_ops.h"
#include "src/relational/encode.h"
#include "src/storage/secure_cache.h"

namespace incshrink {
namespace {

IncShrinkConfig SmallConfig() {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 1;
  cfg.budget_b = 4;  // eligible 3 steps back
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.window_steps = 10;
  cfg.upload_rows_t1 = 3;
  cfg.upload_rows_t2 = 3;
  return cfg;
}

class TransformTest : public ::testing::Test {
 protected:
  TransformTest()
      : s0_(0, 1), s1_(1, 2), proto_(&s0_, &s1_, CostModel::EmpLikeLan()),
        rng_(3) {}

  /// Uploads a fixed-size padded batch of the given records.
  void UploadBatch(OutsourcedTable* store,
                   const std::vector<LogicalRecord>& recs,
                   uint32_t batch_rows) {
    SharedRows batch(kSrcWidth);
    for (const auto& r : recs)
      batch.AppendSecretRow(EncodeSourceRow(r), &rng_);
    while (batch.size() < batch_rows)
      batch.AppendSecretRow(MakeDummySourceRow(&rng_), &rng_);
    store->AppendBatch(std::move(batch));
  }

  Party s0_;
  Party s1_;
  Protocol2PC proto_;
  Rng rng_;
};

LogicalRecord Rec(uint64_t step, Word rid, Word key, Word date) {
  return LogicalRecord{step, rid, key, date, 0};
}

TEST_F(TransformTest, EligibleStepsFormula) {
  IncShrinkConfig cfg = SmallConfig();
  EXPECT_EQ(TransformProtocol::EligibleSteps(cfg), 3u);  // min(10, 4/1-1)
  cfg.budget_b = 20;
  cfg.omega = 10;
  cfg.window_steps = 2;
  EXPECT_EQ(TransformProtocol::EligibleSteps(cfg), 1u);  // min(2, 2-1)
  cfg.window_steps = 0;
  EXPECT_EQ(TransformProtocol::EligibleSteps(cfg), 0u);
}

TEST_F(TransformTest, PublicCacheAppendRowsFormula) {
  IncShrinkConfig cfg = SmallConfig();
  // Both private, sort-merge: omega * (C1 + C2) regardless of t.
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 1), 6u);
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 50), 6u);
  // Public T2: omega * C1 * (1 + wlen).
  cfg.t2_is_public = true;
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 1), 3u);
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 2), 6u);
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 10), 12u);
  // Nested loop: same T1-side bound.
  cfg.t2_is_public = false;
  cfg.op = TransformOperator::kNestedLoopJoin;
  EXPECT_EQ(TransformProtocol::PublicCacheAppendRows(cfg, 10), 12u);
}

TEST_F(TransformTest, SingleStepJoinCachesRealEntries) {
  IncShrinkConfig cfg = SmallConfig();
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto_, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto_);

  UploadBatch(&store1, {Rec(1, 1, 100, 5), Rec(1, 2, 200, 5)}, 3);
  UploadBatch(&store2, {Rec(1, 3, 100, 7)}, 3);

  auto result = transform.Step(1, store1, store2, &cache);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->real_entries, 1u);
  EXPECT_EQ(result->appended_rows,
            TransformProtocol::PublicCacheAppendRows(cfg, 1));
  EXPECT_EQ(cache.size(), result->appended_rows);
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 1u);
  EXPECT_EQ(CountRealInside(&proto_, *cache.rows()), 1u);
  EXPECT_GT(result->simulated_seconds, 0.0);
}

TEST_F(TransformTest, CrossStepPairsAreFoundOnce) {
  IncShrinkConfig cfg = SmallConfig();
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto_, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto_);

  // Step 1: sale (key 100). Step 2: its return.
  UploadBatch(&store1, {Rec(1, 1, 100, 1)}, 3);
  UploadBatch(&store2, {}, 3);
  auto r1 = transform.Step(1, store1, store2, &cache);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->real_entries, 0u);

  UploadBatch(&store1, {}, 3);
  UploadBatch(&store2, {Rec(2, 2, 100, 3)}, 3);
  auto r2 = transform.Step(2, store1, store2, &cache);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->real_entries, 1u);  // old1 x new2 pair found exactly once
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 1u);

  // Step 3: nothing new; the old pair must NOT be regenerated.
  UploadBatch(&store1, {}, 3);
  UploadBatch(&store2, {}, 3);
  auto r3 = transform.Step(3, store1, store2, &cache);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->real_entries, 0u);
  EXPECT_EQ(cache.RecoverCounterInside(&proto_), 1u);
}

TEST_F(TransformTest, RetiredRecordsStopJoining) {
  // budget 4, omega 1 -> eligible 3 steps after upload; a partner arriving
  // later than that is dropped (bounded privacy loss at work).
  IncShrinkConfig cfg = SmallConfig();
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto_, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto_);

  UploadBatch(&store1, {Rec(1, 1, 100, 1)}, 3);
  UploadBatch(&store2, {}, 3);
  ASSERT_TRUE(transform.Step(1, store1, store2, &cache).ok());
  for (uint64_t t = 2; t <= 4; ++t) {
    UploadBatch(&store1, {}, 3);
    UploadBatch(&store2, {}, 3);
    ASSERT_TRUE(transform.Step(t, store1, store2, &cache).ok());
  }
  // Step 5: matching return arrives, but the sale retired after step 4.
  UploadBatch(&store1, {}, 3);
  UploadBatch(&store2, {Rec(5, 2, 100, 2)}, 3);
  auto r5 = transform.Step(5, store1, store2, &cache);
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->real_entries, 0u);
}

TEST_F(TransformTest, BudgetLedgerNeverExceedsB) {
  IncShrinkConfig cfg = SmallConfig();
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto_, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto_);

  UploadBatch(&store1, {Rec(1, 1, 100, 1)}, 3);
  UploadBatch(&store2, {}, 3);
  ASSERT_TRUE(transform.Step(1, store1, store2, &cache).ok());
  EXPECT_EQ(acc.RemainingBudget(1), cfg.budget_b - cfg.omega);
  for (uint64_t t = 2; t <= 8; ++t) {
    UploadBatch(&store1, {}, 3);
    UploadBatch(&store2, {}, 3);
    ASSERT_TRUE(transform.Step(t, store1, store2, &cache).ok())
        << "step " << t;
  }
  // Participations: steps 1..4 (then retired). Budget exactly exhausted.
  EXPECT_EQ(acc.RemainingBudget(1), 0u);
}

TEST_F(TransformTest, PublicT2PathCapsOnlyPrivateSide) {
  IncShrinkConfig cfg = SmallConfig();
  cfg.t2_is_public = true;
  cfg.omega = 2;
  cfg.join.omega = 2;
  cfg.budget_b = 4;
  PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
  TransformProtocol transform(&proto_, cfg, &acc);
  OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
  SecureCache cache(&proto_);

  // One public T2 row matching three private T1 rows: with cap_t2 lifted the
  // public row can serve several private partners (up to omega slots per
  // access); with omega = 2 two pairs survive.
  UploadBatch(&store1, {Rec(1, 1, 9, 5), Rec(1, 2, 9, 5), Rec(1, 3, 9, 5)},
              3);
  SharedRows pub(kSrcWidth);
  pub.AppendSecretRow(EncodeSourceRow(Rec(1, 50, 9, 6)), &rng_);
  store2.AppendBatch(std::move(pub));

  auto r = transform.Step(1, store1, store2, &cache);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->real_entries, 2u);
  // Public rows are not charged against any budget.
  EXPECT_EQ(acc.RemainingBudget(50), cfg.budget_b);
  EXPECT_EQ(acc.RemainingBudget(1), cfg.budget_b - cfg.omega);
}

TEST_F(TransformTest, NestedLoopOperatorProducesSameCounts) {
  for (auto op : {TransformOperator::kSortMergeJoin,
                  TransformOperator::kNestedLoopJoin}) {
    IncShrinkConfig cfg = SmallConfig();
    cfg.op = op;
    Party s0(0, 10), s1(1, 20);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
    TransformProtocol transform(&proto, cfg, &acc);
    OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
    SecureCache cache(&proto);

    Rng rng(30);
    SharedRows b1(kSrcWidth), b2(kSrcWidth);
    b1.AppendSecretRow(EncodeSourceRow(Rec(1, 1, 100, 5)), &rng);
    b1.AppendSecretRow(EncodeSourceRow(Rec(1, 2, 200, 5)), &rng);
    b1.AppendSecretRow(MakeDummySourceRow(&rng), &rng);
    b2.AppendSecretRow(EncodeSourceRow(Rec(1, 3, 100, 7)), &rng);
    b2.AppendSecretRow(EncodeSourceRow(Rec(1, 4, 200, 30)), &rng);  // no win
    b2.AppendSecretRow(MakeDummySourceRow(&rng), &rng);
    store1.AppendBatch(std::move(b1));
    store2.AppendBatch(std::move(b2));

    auto r = transform.Step(1, store1, store2, &cache);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->real_entries, 1u) << "operator " << static_cast<int>(op);
    EXPECT_EQ(r->appended_rows,
              TransformProtocol::PublicCacheAppendRows(cfg, 1));
  }
}

TEST_F(TransformTest, CacheAppendSizeIsDeterministicAcrossData) {
  // Two different data streams with identical public sizes must append the
  // same number of rows at every step.
  std::vector<std::vector<uint64_t>> appended(2);
  for (int variant = 0; variant < 2; ++variant) {
    IncShrinkConfig cfg = SmallConfig();
    Party s0(0, 40), s1(1, 41);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    PrivacyAccountant acc(cfg.eps, cfg.budget_b, cfg.omega);
    TransformProtocol transform(&proto, cfg, &acc);
    OutsourcedTable store1(kSrcWidth), store2(kSrcWidth);
    SecureCache cache(&proto);
    Rng rng(50 + variant);
    Word rid = 1;
    for (uint64_t t = 1; t <= 6; ++t) {
      SharedRows b1(kSrcWidth), b2(kSrcWidth);
      // Variant 0 generates matching keys, variant 1 disjoint keys.
      for (int i = 0; i < 3; ++i) {
        const Word key = variant == 0 ? 7 : 1000 + rid;
        b1.AppendSecretRow(
            EncodeSourceRow(Rec(t, rid++, key, static_cast<Word>(t))), &rng);
        b2.AppendSecretRow(
            EncodeSourceRow(Rec(t, rid++, key, static_cast<Word>(t + 1))),
            &rng);
      }
      store1.AppendBatch(std::move(b1));
      store2.AppendBatch(std::move(b2));
      auto r = transform.Step(t, store1, store2, &cache);
      ASSERT_TRUE(r.ok());
      appended[variant].push_back(r->appended_rows);
    }
  }
  EXPECT_EQ(appended[0], appended[1]);
}

}  // namespace
}  // namespace incshrink
