#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

/// Builds two TPC-ds-like streams with IDENTICAL public characteristics
/// (same per-step arrival counts) but different record contents. Anything a
/// corrupted server observes must be identically distributed across the two;
/// with the same protocol seeds the *sizes* must be exactly equal.
void MakeTwinStreams(uint64_t steps, GeneratedWorkload* a,
                     GeneratedWorkload* b) {
  TpcDsParams p;
  p.steps = steps;
  *a = GenerateTpcDs(p);
  // Stream b: same arrival counts per step, different keys/dates.
  b->t1.resize(steps);
  b->t2.resize(steps);
  Word rid = 1000000, key = 500000;
  for (uint64_t t = 0; t < steps; ++t) {
    for (size_t i = 0; i < a->t1[t].size(); ++i) {
      b->t1[t].push_back(
          {t + 1, rid++, key++, static_cast<Word>(t + 1), 77});
    }
    for (size_t i = 0; i < a->t2[t].size(); ++i) {
      // No returns ever match: view stays empty (maximally different data).
      b->t2[t].push_back(
          {t + 1, rid++, key++, static_cast<Word>(t + 1), 77});
    }
    b->total_t1 += a->t1[t].size();
    b->total_t2 += a->t2[t].size();
  }
}

TEST(ObliviousnessTest, TimerTranscriptSizesDependOnlyOnDpReleases) {
  // With sDPTimer, update *times* are fixed; only the DP-released sizes can
  // differ between two equal-shape streams. Verify every other transcript
  // dimension is identical, and that sync-size differences stay within what
  // the DP noise explains (they reflect the different true cardinalities).
  GeneratedWorkload a, b;
  MakeTwinStreams(60, &a, &b);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  SynchronousDeployment ea(cfg), eb(cfg);
  ASSERT_TRUE(ea.Run(a.t1, a.t2).ok());
  ASSERT_TRUE(eb.Run(b.t1, b.t2).ok());

  const Transcript& ta = ea.transcript();
  const Transcript& tb = eb.transcript();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].kind, tb[i].kind) << i;
    EXPECT_EQ(ta[i].t, tb[i].t) << i;
    if (ta[i].kind != TranscriptEvent::Kind::kSync) {
      // Upload / transform / flush sizes are data-independent.
      EXPECT_EQ(ta[i].rows, tb[i].rows) << i;
    }
  }
}

TEST(ObliviousnessTest, GateTraceIdenticalAcrossDataStreams) {
  // The full protocol execution (Transform + Shrink + queries) must consume
  // the same circuit work for equal public shapes, except for cache-size
  // dependent sorting after DP-sized reads. Compare per-step Transform gate
  // counts, which must match exactly.
  GeneratedWorkload a, b;
  MakeTwinStreams(40, &a, &b);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kEp;  // no DP-sized reads -> fully deterministic
  SynchronousDeployment ea(cfg), eb(cfg);
  ASSERT_TRUE(ea.Run(a.t1, a.t2).ok());
  ASSERT_TRUE(eb.Run(b.t1, b.t2).ok());
  ASSERT_EQ(ea.step_metrics().size(), eb.step_metrics().size());
  for (size_t i = 0; i < ea.step_metrics().size(); ++i) {
    EXPECT_DOUBLE_EQ(ea.step_metrics()[i].transform_seconds,
                     eb.step_metrics()[i].transform_seconds)
        << i;
    EXPECT_DOUBLE_EQ(ea.step_metrics()[i].query_seconds,
                     eb.step_metrics()[i].query_seconds)
        << i;
  }
}

TEST(ShareUniformityTest, ViewSharesLookUniformRegardlessOfData) {
  // A corrupted S0 sees only its share array of the materialized view; its
  // bit distribution must be indistinguishable from uniform whatever the
  // data is.
  GeneratedWorkload a, b;
  MakeTwinStreams(40, &a, &b);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kEp;
  for (const GeneratedWorkload* w : {&a, &b}) {
    SynchronousDeployment deployment(cfg);
    ASSERT_TRUE(deployment.Run(w->t1, w->t2).ok());
    const auto& shares0 = deployment.engine().view().rows().shares0();
    ASSERT_GT(shares0.size(), 1000u);
    int64_t bits = 0;
    for (Word s : shares0) bits += __builtin_popcount(s);
    const double mean_bits =
        static_cast<double>(bits) / static_cast<double>(shares0.size());
    EXPECT_NEAR(mean_bits, 16.0, 0.25);
  }
}

TEST(ShareUniformityTest, CounterSharesNeverRevealCount) {
  // Across many counter updates the stored share must stay uniform even
  // when the underlying count is constant.
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  SecureCache cache(&proto);
  int64_t bits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    cache.ResetCounter(&proto);
    bits += __builtin_popcount(cache.counter().s0);
  }
  EXPECT_NEAR(static_cast<double>(bits) / kTrials, 16.0, 0.15);
}

TEST(LeakageScopeTest, TranscriptContainsOnlySizes) {
  // Structural guarantee: the transcript type carries no payload fields, so
  // anything simulated from DP releases + public parameters covers it. Here
  // we double-check the recorded events reference only public quantities
  // (row counts bounded by public formulas).
  TpcDsParams p;
  p.steps = 50;
  const GeneratedWorkload w = GenerateTpcDs(p);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();
  for (const auto& e : engine.transcript()) {
    switch (e.kind) {
      case TranscriptEvent::Kind::kUpload:
        EXPECT_EQ(e.rows, cfg.upload_rows_t1 + cfg.upload_rows_t2);
        break;
      case TranscriptEvent::Kind::kTransformOut:
        EXPECT_EQ(e.rows, TransformProtocol::PublicCacheAppendRows(cfg, e.t));
        break;
      case TranscriptEvent::Kind::kFlush:
        EXPECT_LE(e.rows, cfg.flush_size);
        break;
      case TranscriptEvent::Kind::kSync:
        break;  // DP-released size
    }
  }
}

TEST(JointNoiseSecurityTest, NoiseDiffersAcrossHonestSeeds) {
  // Same adversarial seed for S0, different honest seeds for S1 give
  // unpredictable noise; this is the non-collusion assumption in action.
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  TpcDsParams p;
  p.steps = 40;
  const GeneratedWorkload w = GenerateTpcDs(p);

  cfg.seed = 1;
  SynchronousDeployment da(cfg);
  ASSERT_TRUE(da.Run(w.t1, w.t2).ok());
  const Engine& ea = da.engine();
  cfg.seed = 2;
  SynchronousDeployment db(cfg);
  ASSERT_TRUE(db.Run(w.t1, w.t2).ok());
  const Engine& eb = db.engine();

  // Same data, same policy — but the jointly generated noise differs, so the
  // released sizes differ somewhere.
  bool any_diff = false;
  for (size_t i = 0; i < ea.releases().size(); ++i) {
    if (ea.releases()[i].fired &&
        ea.releases()[i].size != eb.releases()[i].size) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace incshrink
