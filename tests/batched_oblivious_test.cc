// Batched-oblivious-execution equivalence suite: the layer-vectorized batch
// path must be *bit-identical* to the scalar per-op path — same output
// shares, same revealed values, same internal randomness stream, same
// aggregate circuit cost — at any thread count and any batch threshold.
//
//   * layer structure: every (p, k) pass of Batcher's network is one batch
//     whose pairs are disjoint; per-layer sizes sum to the total
//     compare-exchange count for every n in [0, 257];
//   * kernel equality: batched sort / lex-sort / mux / count vs their
//     scalar reference implementations at 1 / 2 / 8 threads;
//   * cross-shard and multi-job fusion: ObliviousSortBatch over many jobs
//     equals each job sorted alone;
//   * engine equality: the `oblivious_batch_min_layer` knob is inert for
//     all three DP strategies (sort, lex-sort and count all sit on the
//     engine's hot path);
//   * fleet equality: cross-tenant sort coalescing reproduces the unfused
//     fleet bit for bit and actually fuses jobs.
//
// Runs under the TSan CI job together with the parallel/sharded suites.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/sort.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatsEqual(const CircuitStats& a, const CircuitStats& b) {
  EXPECT_EQ(a.and_gates, b.and_gates);
  EXPECT_EQ(a.xor_gates, b.xor_gates);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.rounds, b.rounds);
}

/// Shares (and, because XOR recovery is share-determined, revealed values)
/// of two tables must agree word for word.
void ExpectRowsIdentical(const SharedRows& a, const SharedRows& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.width(), b.width());
  EXPECT_EQ(a.shares0(), b.shares0());
  EXPECT_EQ(a.shares1(), b.shares1());
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.RecoverRow(r), b.RecoverRow(r)) << "row " << r;
  }
}

SharedRows RandomViewRows(Rng* rng, size_t n) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.4)) {
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, seq++);
      row[kViewKeyCol] = rng->Next32() % 97;
      rows.AppendSecretRow(row, rng);
    } else {
      AppendDummyViewRow(&rows, rng, &seq);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Layer structure of the sorting network
// ---------------------------------------------------------------------------

TEST(SortNetworkLayerTest, LayerSizesSumToTotalComparesForAllSmallN) {
  for (size_t n = 0; n <= 257; ++n) {
    const std::vector<uint64_t> sizes = SortNetworkLayerSizes(n);
    uint64_t sum = 0;
    for (const uint64_t s : sizes) sum += s;
    EXPECT_EQ(sum, SortNetworkCompareExchanges(n)) << "n=" << n;
    if (n < 2) {
      EXPECT_TRUE(sizes.empty()) << "n=" << n;
    }
  }
}

TEST(SortNetworkLayerTest, LayersAreDisjointAndOrdered) {
  for (const size_t n : {2u, 3u, 7u, 16u, 63u, 64u, 100u, 257u}) {
    const auto layers = SortNetworkLayers(n);
    uint64_t total = 0;
    for (size_t l = 0; l < layers.size(); ++l) {
      std::set<uint32_t> touched;
      for (const RowPair& pr : layers[l]) {
        EXPECT_LT(pr.a, pr.b) << "n=" << n << " layer " << l;
        EXPECT_LT(pr.b, n) << "n=" << n << " layer " << l;
        // Disjointness: no row index appears twice within one layer — the
        // property that makes a layer an order-free batch.
        EXPECT_TRUE(touched.insert(pr.a).second) << "n=" << n << " l=" << l;
        EXPECT_TRUE(touched.insert(pr.b).second) << "n=" << n << " l=" << l;
      }
      total += layers[l].size();
    }
    EXPECT_EQ(total, SortNetworkCompareExchanges(n)) << "n=" << n;
  }
}

TEST(SortNetworkLayerTest, PowerOfTwoLayerCountIsLogSquaredTriangle) {
  // For n = 2^m Batcher's network has exactly m(m+1)/2 (p, k) passes.
  for (const auto& [n, m] : std::vector<std::pair<size_t, uint64_t>>{
           {2, 1}, {4, 2}, {8, 3}, {64, 6}, {256, 8}}) {
    EXPECT_EQ(SortNetworkLayerSizes(n).size(), m * (m + 1) / 2)
        << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Batched vs scalar kernels (sort / lex-sort / mux / count)
// ---------------------------------------------------------------------------

struct ProtoPair {
  Party s0{0, 11}, s1{1, 22};
  Protocol2PC proto{&s0, &s1, CostModel::EmpLikeLan()};
};

TEST(BatchedScalarEquivalenceTest, SortMatchesScalarBitForBit) {
  for (const size_t n : {0u, 1u, 2u, 3u, 5u, 64u, 100u, 257u}) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      Rng data_rng(7 + n);
      const SharedRows input = RandomViewRows(&data_rng, n);

      ProtoPair scalar;
      SharedRows a = input;
      ObliviousSortScalar(&scalar.proto, &a, kViewSortKeyCol, false);

      ProtoPair batched;
      ThreadPool pool(threads);
      SharedRows b = input;
      // min_parallel_ops = 1: force the pool-split path for every layer.
      ObliviousSort(&batched.proto, &b, kViewSortKeyCol, false,
                    BatchExec{&pool, 1});

      ExpectRowsIdentical(a, b);
      ExpectStatsEqual(scalar.proto.Snapshot(), batched.proto.Snapshot());
      // The internal resharing streams must stay aligned: the next draw
      // from each side is the same word.
      EXPECT_EQ(scalar.proto.internal_rng()->Next32(),
                batched.proto.internal_rng()->Next32());
    }
  }
}

TEST(BatchedScalarEquivalenceTest, LexSortMatchesScalarBitForBit) {
  for (const size_t n : {0u, 2u, 5u, 64u, 100u, 257u}) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      Rng data_rng(100 + n);
      SharedRows input(4);
      for (size_t i = 0; i < n; ++i) {
        input.AppendSecretRow({data_rng.Next32() % 13, data_rng.Next32() % 7,
                               data_rng.Next32(), data_rng.Next32()},
                              &data_rng);
      }

      ProtoPair scalar;
      SharedRows a = input;
      ObliviousSortLexScalar(&scalar.proto, &a, 0, 1, true);

      ProtoPair batched;
      ThreadPool pool(threads);
      SharedRows b = input;
      ObliviousSortLex(&batched.proto, &b, 0, 1, true, BatchExec{&pool, 1});

      ExpectRowsIdentical(a, b);
      ExpectStatsEqual(scalar.proto.Snapshot(), batched.proto.Snapshot());
      EXPECT_EQ(scalar.proto.internal_rng()->Next32(),
                batched.proto.internal_rng()->Next32());
    }
  }
}

TEST(BatchedScalarEquivalenceTest, CompareExchangeBatchMatchesScalarOps) {
  // The batch APIs directly, over an explicit disjoint pair list (the
  // pooled single-sort path submits exactly these calls per layer).
  const size_t n = 128;
  Rng data_rng(17);
  const SharedRows input = RandomViewRows(&data_rng, n);
  std::vector<RowPair> pairs;
  for (uint32_t p = 0; p < n / 2; ++p) {
    pairs.push_back({p, static_cast<uint32_t>(p + n / 2)});
  }
  for (const bool lex : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(lex ? "lex" : "plain") +
                   " threads=" + std::to_string(threads));
      ProtoPair scalar;
      SharedRows a = input;
      for (const RowPair& pr : pairs) {
        if (lex) {
          scalar.proto.CompareExchangeRowsLex(&a, pr.a, pr.b, kViewKeyCol,
                                              kViewSortKeyCol, true);
        } else {
          scalar.proto.CompareExchangeRows(&a, pr.a, pr.b, kViewSortKeyCol,
                                           false);
        }
      }
      ProtoPair batched;
      ThreadPool pool(threads);
      SharedRows b = input;
      if (lex) {
        batched.proto.CompareExchangeRowsLexBatch(&b, pairs.data(),
                                                  pairs.size(), kViewKeyCol,
                                                  kViewSortKeyCol, true,
                                                  BatchExec{&pool, 1});
      } else {
        batched.proto.CompareExchangeRowsBatch(&b, pairs.data(),
                                               pairs.size(), kViewSortKeyCol,
                                               false, BatchExec{&pool, 1});
      }
      ExpectRowsIdentical(a, b);
      ExpectStatsEqual(scalar.proto.Snapshot(), batched.proto.Snapshot());
      EXPECT_EQ(scalar.proto.internal_rng()->Next32(),
                batched.proto.internal_rng()->Next32());
    }
  }
}

TEST(BatchedScalarEquivalenceTest, MuxRowsBatchMatchesScalarMuxSwaps) {
  const size_t n = 64;
  Rng data_rng(5);
  const SharedRows input = RandomViewRows(&data_rng, n);
  // Disjoint pairs (2p, 2p+1) with a deterministic swap-bit pattern, shared
  // with fixed masks so neither path consumes protocol randomness for them.
  std::vector<RowPair> pairs;
  std::vector<WordShares> bits;
  for (uint32_t p = 0; p < n / 2; ++p) {
    pairs.push_back({2 * p, 2 * p + 1});
    const Word bit = (p % 3 == 0) ? 1 : 0;
    bits.push_back(WordShares{0xABCD0000u + p, (0xABCD0000u + p) ^ bit});
  }

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ProtoPair scalar;
    SharedRows a = input;
    for (size_t p = 0; p < pairs.size(); ++p) {
      scalar.proto.MuxSwapRows(&a, pairs[p].a, pairs[p].b, bits[p]);
    }
    ProtoPair batched;
    ThreadPool pool(threads);
    SharedRows b = input;
    batched.proto.MuxRowsBatch(&b, pairs.data(), bits.data(), pairs.size(),
                               BatchExec{&pool, 1});
    ExpectRowsIdentical(a, b);
    ExpectStatsEqual(scalar.proto.Snapshot(), batched.proto.Snapshot());
    EXPECT_EQ(scalar.proto.internal_rng()->Next32(),
              batched.proto.internal_rng()->Next32());
  }
}

TEST(BatchedScalarEquivalenceTest, CountWhereBatchMatchesPerTaskCounts) {
  Rng data_rng(9);
  std::vector<SharedRows> tables;
  for (const size_t n : {0u, 17u, 64u, 129u}) {
    tables.push_back(RandomViewRows(&data_rng, n));
  }
  const ObliviousPredicate pred = ObliviousPredicate::True();
  std::vector<CountWhereTask> tasks;
  for (const SharedRows& t : tables) {
    tasks.push_back(
        {&t, kViewIsViewCol, pred.and_gates_per_row, &pred.eval});
  }

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ProtoPair scalar;
    std::vector<WordShares> want;
    for (const SharedRows& t : tables) {
      want.push_back(
          ObliviousCountWhere(&scalar.proto, t, kViewIsViewCol, pred));
    }
    ProtoPair batched;
    ThreadPool pool(threads);
    std::vector<WordShares> got(tasks.size());
    batched.proto.CountWhereBatch(tasks.data(), tasks.size(), got.data(),
                                  BatchExec{&pool, 1});
    ASSERT_EQ(got.size(), want.size());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].s0, want[k].s0) << "task " << k;
      EXPECT_EQ(got[k].s1, want[k].s1) << "task " << k;
      EXPECT_EQ(batched.proto.Reveal(got[k]), scalar.proto.Reveal(want[k]))
          << "task " << k;
    }
    ExpectStatsEqual(scalar.proto.Snapshot(), batched.proto.Snapshot());
  }
}

TEST(BatchTraceTest, TraceEventsCarryExactAggregateCost) {
  const size_t n = 100;
  Rng data_rng(13);
  const SharedRows input = RandomViewRows(&data_rng, n);

  ProtoPair scalar;
  SharedRows a = input;
  const CircuitStats scalar_before = scalar.proto.Snapshot();
  ObliviousSortScalar(&scalar.proto, &a, kViewSortKeyCol, false);
  const CircuitStats scalar_cost =
      scalar.proto.Snapshot().Diff(scalar_before);

  ProtoPair batched;
  batched.proto.EnableBatchTrace(true);
  SharedRows b = input;
  ObliviousSort(&batched.proto, &b, kViewSortKeyCol, false);

  // One event per non-empty layer; ops and gate totals sum to the scalar
  // path's exactly — amortized bookkeeping, identical totals.
  uint64_t ops = 0;
  CircuitStats traced;
  for (const BatchTraceEvent& e : batched.proto.batch_trace()) {
    EXPECT_EQ(e.kind, BatchTraceEvent::Kind::kCompareExchange);
    ops += e.ops;
    traced.Add(e.cost);
  }
  size_t nonempty_layers = 0;
  for (const uint64_t s : SortNetworkLayerSizes(n)) {
    if (s > 0) ++nonempty_layers;
  }
  EXPECT_EQ(batched.proto.batch_trace().size(), nonempty_layers);
  EXPECT_EQ(ops, SortNetworkCompareExchanges(n));
  EXPECT_EQ(traced.and_gates, scalar_cost.and_gates);

  // Disabling stops recording but keeps the collected trace readable;
  // re-enabling starts a fresh one.
  batched.proto.EnableBatchTrace(false);
  EXPECT_EQ(batched.proto.batch_trace().size(), nonempty_layers);
  batched.proto.EnableBatchTrace(true);
  EXPECT_TRUE(batched.proto.batch_trace().empty());
}

// ---------------------------------------------------------------------------
// Multi-job fusion: many sorts in lockstep layer rounds == each sort alone
// ---------------------------------------------------------------------------

TEST(SortFusionTest, FusedJobsMatchStandaloneSorts) {
  const std::vector<size_t> sizes = {3, 64, 64, 100, 17, 1};
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Reference: each job sorted alone on its own protocol.
    std::vector<SharedRows> want;
    std::vector<CircuitStats> want_stats;
    for (size_t j = 0; j < sizes.size(); ++j) {
      Rng data_rng(31 + j);
      SharedRows rows = RandomViewRows(&data_rng, sizes[j]);
      Party s0(0, 100 + j), s1(1, 200 + j);
      Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
      ObliviousSort(&proto, &rows, kViewSortKeyCol, false);
      want.push_back(std::move(rows));
      want_stats.push_back(proto.Snapshot());
    }
    // Fused: all jobs in one submission, pooled layer rounds.
    std::vector<SharedRows> got;
    std::vector<std::unique_ptr<Party>> parties;
    std::vector<std::unique_ptr<Protocol2PC>> protos;
    for (size_t j = 0; j < sizes.size(); ++j) {
      Rng data_rng(31 + j);
      got.push_back(RandomViewRows(&data_rng, sizes[j]));
      parties.push_back(std::make_unique<Party>(0, 100 + j));
      parties.push_back(std::make_unique<Party>(1, 200 + j));
      protos.push_back(std::make_unique<Protocol2PC>(
          parties[2 * j].get(), parties[2 * j + 1].get(),
          CostModel::EmpLikeLan()));
    }
    std::vector<SortJob> jobs;
    for (size_t j = 0; j < sizes.size(); ++j) {
      jobs.push_back(SortJob{protos[j].get(), &got[j], kViewSortKeyCol, 0,
                             false, false});
    }
    ThreadPool pool(threads);
    ObliviousSortBatch(jobs.data(), jobs.size(), BatchExec{&pool, 1});
    for (size_t j = 0; j < sizes.size(); ++j) {
      SCOPED_TRACE("job " + std::to_string(j));
      ExpectRowsIdentical(want[j], got[j]);
      ExpectStatsEqual(want_stats[j], protos[j]->Snapshot());
    }
  }
}

// ---------------------------------------------------------------------------
// Engine equality: the batch knob and thread count are inert for every DP
// strategy (exercising cache sorts, join lex-sorts and query counts)
// ---------------------------------------------------------------------------

void ExpectEngineIdentical(const Engine& a, const Engine& b) {
  const RunSummary sa = a.Summary();
  const RunSummary sb = b.Summary();
  EXPECT_EQ(sa.total_mpc_seconds, sb.total_mpc_seconds);
  EXPECT_EQ(sa.total_query_seconds, sb.total_query_seconds);
  EXPECT_EQ(sa.final_view_rows, sb.final_view_rows);
  EXPECT_EQ(sa.final_cache_rows, sb.final_cache_rows);
  EXPECT_EQ(sa.updates, sb.updates);
  EXPECT_EQ(sa.flushes, sb.flushes);
  EXPECT_EQ(sa.l1_error.sum(), sb.l1_error.sum());
  EXPECT_EQ(sa.final_true_count, sb.final_true_count);
  ASSERT_EQ(a.transcript().size(), b.transcript().size());
  for (size_t i = 0; i < a.transcript().size(); ++i) {
    EXPECT_EQ(a.transcript()[i], b.transcript()[i]) << "event " << i;
  }
  ExpectRowsIdentical(a.view().rows(), b.view().rows());
}

IncShrinkConfig BatchTestConfig(Strategy strategy, uint32_t shards,
                                int threads, uint32_t min_layer) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = strategy;
  cfg.ant_theta = 8;
  cfg.flush_interval = 16;
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  cfg.oblivious_batch_min_layer = min_layer;
  return cfg;
}

TEST(BatchedEngineEquivalenceTest, BatchKnobAndThreadsInertForDpStrategies) {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 21;
  const GeneratedWorkload w = GenerateTpcDs(p);
  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kEp}) {
    SCOPED_TRACE(StrategyName(strategy));
    SynchronousDeployment ref_dep(BatchTestConfig(strategy, 2, 1, 128));
    ASSERT_TRUE(ref_dep.Run(w.t1, w.t2).ok());
    for (const int threads : {1, 2, 8}) {
      for (const uint32_t min_layer : {1u, 4096u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " min_layer=" + std::to_string(min_layer));
        SynchronousDeployment run_dep(
            BatchTestConfig(strategy, 2, threads, min_layer));
        ASSERT_TRUE(run_dep.Run(w.t1, w.t2).ok());
        ExpectEngineIdentical(ref_dep.engine(), run_dep.engine());
      }
    }
  }
}

TEST(BatchedEngineEquivalenceTest, ConfigRejectsZeroMinLayer) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.oblivious_batch_min_layer = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

// ---------------------------------------------------------------------------
// Fleet: cross-tenant sort coalescing is bit-identical and actually fuses
// ---------------------------------------------------------------------------

TEST(FleetCoalescingTest, CoalescedFleetMatchesUnfusedFleetBitForBit) {
  TpcDsParams p;
  p.steps = 32;
  p.seed = 77;
  const GeneratedWorkload w = GenerateTpcDs(p);
  std::vector<DeploymentFleet::TenantSpec> specs;
  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kDpTimer,
        Strategy::kEp}) {
    specs.push_back(
        {StrategyName(strategy), BatchTestConfig(strategy, 1, 0, 128), &w});
  }
  // A sharded tenant: its own shard pool nests under the fleet workers and
  // it contributes multiple same-round jobs to the fused submission.
  specs.push_back({"sharded", BatchTestConfig(Strategy::kDpTimer, 2, 2, 1),
                   &w});

  DeploymentFleet::Options ref_opts;
  ref_opts.root_seed = 99;
  ref_opts.num_threads = 1;
  DeploymentFleet ref(specs, ref_opts);
  ref.RunAll();
  EXPECT_EQ(ref.AggregateStats().fused_sort_jobs, 0u);

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DeploymentFleet::Options opts;
    opts.root_seed = 99;
    opts.num_threads = threads;
    opts.coalesce_sorts = true;
    opts.batch_min_layer = 1;  // force pooled layer rounds
    DeploymentFleet fused(specs, opts);
    fused.RunAll();
    const DeploymentFleet::FleetStats stats = fused.AggregateStats();
    // Timer tenants fire on the shared schedule, so fused submissions must
    // actually have pooled multiple tenants' sorts.
    EXPECT_GT(stats.fused_sort_jobs, stats.fused_sort_submissions);
    for (size_t i = 0; i < fused.num_tenants(); ++i) {
      SCOPED_TRACE("tenant " + std::to_string(i));
      ExpectEngineIdentical(ref.engine(i), fused.engine(i));
    }
  }
}

}  // namespace
}  // namespace incshrink
