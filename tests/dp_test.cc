#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/dp/accountant.h"
#include "src/dp/bounds.h"
#include "src/dp/laplace.h"
#include "src/dp/mechanisms.h"
#include "src/dp/simulator.h"
#include "src/dp/svt.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Laplace utilities
// ---------------------------------------------------------------------------

TEST(LaplaceTest, CdfEndpoints) {
  EXPECT_DOUBLE_EQ(LaplaceCdf(0.0, 1.0), 0.5);
  EXPECT_NEAR(LaplaceCdf(-50.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(LaplaceCdf(50.0, 1.0), 1.0, 1e-12);
  EXPECT_GT(LaplaceCdf(1.0, 1.0), LaplaceCdf(0.5, 1.0));
}

TEST(LaplaceTest, SamplerMatchesCdf) {
  Rng rng(1);
  SampleSet samples;
  for (int i = 0; i < 50000; ++i) samples.Add(SampleLaplace(&rng, 2.0));
  const double ks =
      KsDistance(samples, [](double x) { return LaplaceCdf(x, 2.0); });
  EXPECT_LT(ks, 0.012);
}

TEST(LaplaceTest, ClampRoundNonNegative) {
  EXPECT_EQ(ClampRoundNonNegative(-5.0), 0u);
  EXPECT_EQ(ClampRoundNonNegative(0.4), 0u);
  EXPECT_EQ(ClampRoundNonNegative(0.6), 1u);
  EXPECT_EQ(ClampRoundNonNegative(41.5), 42u);
}

TEST(LaplaceTest, NoisyCountCentersOnValue) {
  Rng rng(2);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i)
    stat.Add(NoisyNonNegativeCount(100, 3.0, &rng));
  EXPECT_NEAR(stat.mean(), 100.0, 0.2);
}

// ---------------------------------------------------------------------------
// SVT / NANT (Algorithm 5)
// ---------------------------------------------------------------------------

TEST(SvtTest, FiresWhenCountFarAboveThreshold) {
  Rng rng(3);
  NumericAboveNoisyThreshold svt(/*eps=*/2.0, /*sensitivity=*/1.0,
                                 /*threshold=*/10.0, &rng);
  double release = 0;
  // Count 1000 >> theta 10: fires essentially surely.
  EXPECT_TRUE(svt.Observe(1000.0, &release));
  EXPECT_NEAR(release, 1000.0, 50.0);
  EXPECT_EQ(svt.releases(), 1u);
}

TEST(SvtTest, RarelyFiresFarBelowThreshold) {
  Rng rng(4);
  NumericAboveNoisyThreshold svt(2.0, 1.0, 1000.0, &rng);
  double release = 0;
  int fires = 0;
  for (int i = 0; i < 1000; ++i) {
    if (svt.Observe(0.0, &release)) ++fires;
  }
  EXPECT_LT(fires, 10);
}

TEST(SvtTest, FiringRateTracksThresholdCrossing) {
  // Feed a ramp; the protocol should fire roughly every `theta` increments.
  Rng rng(5);
  const double theta = 50.0;
  NumericAboveNoisyThreshold svt(4.0, 1.0, theta, &rng);
  double count = 0;
  int fires = 0;
  double release = 0;
  for (int i = 0; i < 5000; ++i) {
    count += 1.0;
    if (svt.Observe(count, &release)) {
      count = 0;
      ++fires;
    }
  }
  EXPECT_NEAR(fires, 100, 35);  // ~5000/50 firings
}

TEST(SvtTest, ThresholdRefreshedAfterFire) {
  Rng rng(6);
  NumericAboveNoisyThreshold svt(2.0, 1.0, 100.0, &rng);
  const double before = svt.noisy_threshold();
  double release = 0;
  ASSERT_TRUE(svt.Observe(10000.0, &release));
  EXPECT_NE(svt.noisy_threshold(), before);
}

// ---------------------------------------------------------------------------
// Theorem bounds
// ---------------------------------------------------------------------------

TEST(BoundsTest, LaplaceSumTailFormula) {
  // alpha = 2*(delta/eps)*sqrt(k ln(1/beta))
  const double alpha = LaplaceSumTailBound(10, 1.5, 36, 0.05);
  EXPECT_NEAR(alpha, 2.0 * 10 / 1.5 * std::sqrt(36 * std::log(20.0)), 1e-9);
}

TEST(BoundsTest, TimerDeferredBoundShrinksWithEps) {
  EXPECT_GT(TimerDeferredBound(10, 0.1, 20, 0.05),
            TimerDeferredBound(10, 1.0, 20, 0.05));
  EXPECT_GT(TimerDeferredBound(10, 1.0, 80, 0.05),
            TimerDeferredBound(10, 1.0, 20, 0.05));
}

TEST(BoundsTest, TimerDummyBoundAddsFlushTerm) {
  const double without = TimerDeferredBound(10, 1.5, 20, 0.05);
  const double with = TimerDummyBound(10, 1.5, 20, 0.05, /*T=*/10,
                                      /*f=*/100, /*s=*/15);
  EXPECT_NEAR(with - without, 15.0 * (20.0 * 10.0 / 100.0), 1e-9);
}

TEST(BoundsTest, AntDeferredGrowsLogarithmically) {
  const double t100 = AntDeferredBound(10, 1.5, 100, 0.05);
  const double t10000 = AntDeferredBound(10, 1.5, 10000, 0.05);
  EXPECT_GT(t10000, t100);
  // log-growth: doubling from 100 -> 10000 multiplies the log term, not the
  // bound, by a large factor.
  EXPECT_LT(t10000 / t100, 4.0);
}

TEST(BoundsTest, MinUpdatesForBound) {
  EXPECT_EQ(MinUpdatesForBound(0.05), 12u);  // ceil(4 ln 20)
}

// ---------------------------------------------------------------------------
// Empirical check of Theorem 4's tail bound
// ---------------------------------------------------------------------------

class LaplaceSumTailTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LaplaceSumTailTest, SumOfLaplacesStaysBelowAlpha) {
  const uint64_t k = GetParam();
  const double b = 10, eps = 1.5, beta = 0.05;
  const double alpha = LaplaceSumTailBound(b, eps, k, beta);
  Rng rng(1000 + k);
  int violations = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    double sum = 0;
    for (uint64_t i = 0; i < k; ++i) sum += SampleLaplace(&rng, b / eps);
    if (sum >= alpha) ++violations;
  }
  // The bound guarantees violation probability <= beta.
  EXPECT_LE(violations, static_cast<int>(kTrials * beta * 1.5));
}

INSTANTIATE_TEST_SUITE_P(Ks, LaplaceSumTailTest,
                         ::testing::Values(12, 16, 36, 100));

// ---------------------------------------------------------------------------
// Privacy accountant
// ---------------------------------------------------------------------------

TEST(AccountantTest, BudgetArithmetic) {
  PrivacyAccountant acc(1.5, /*b=*/10, /*omega=*/1);
  EXPECT_EQ(acc.RemainingBudget(7), 10u);
  EXPECT_TRUE(acc.CanParticipate(7));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acc.ChargeParticipation(7).ok());
  }
  EXPECT_EQ(acc.RemainingBudget(7), 0u);
  EXPECT_FALSE(acc.CanParticipate(7));
  EXPECT_EQ(acc.ChargeParticipation(7).code(),
            StatusCode::kPrivacyBudgetExhausted);
}

TEST(AccountantTest, OmegaChargedPerParticipation) {
  PrivacyAccountant acc(1.5, /*b=*/20, /*omega=*/10);
  EXPECT_TRUE(acc.ChargeParticipation(1).ok());
  EXPECT_EQ(acc.RemainingBudget(1), 10u);
  EXPECT_TRUE(acc.ChargeParticipation(1).ok());
  EXPECT_FALSE(acc.CanParticipate(1));
}

TEST(AccountantTest, ContributionsBoundedByCharges) {
  PrivacyAccountant acc(1.5, 10, 1);
  EXPECT_TRUE(acc.ChargeParticipation(5).ok());  // charged 1
  EXPECT_TRUE(acc.RecordContribution(5, 1).ok());
  // Contributing more rows than charged is an internal invariant violation.
  EXPECT_EQ(acc.RecordContribution(5, 1).code(), StatusCode::kInternal);
}

TEST(AccountantTest, EpsilonReporting) {
  PrivacyAccountant acc(1.5, 10, 1);
  EXPECT_DOUBLE_EQ(acc.EventLevelEpsilon(), 1.5);
  EXPECT_DOUBLE_EQ(acc.UserLevelEpsilon(4), 6.0);
  EXPECT_DOUBLE_EQ(acc.ReleaseScale(), 10 / 1.5);
}

// ---------------------------------------------------------------------------
// Leakage mechanisms (Theorems 7 / 8)
// ---------------------------------------------------------------------------

TEST(TimerMechanismTest, FiresExactlyEveryT) {
  Rng rng(9);
  TimerLeakageMechanism mech(1.5, 10, /*T=*/5, &rng);
  for (int t = 1; t <= 50; ++t) {
    const LeakageRelease rel = mech.Step(3);
    EXPECT_EQ(rel.fired, t % 5 == 0) << t;
  }
  EXPECT_EQ(mech.updates(), 10u);
}

TEST(TimerMechanismTest, ReleaseCentersOnWindowCount) {
  Rng rng(10);
  TimerLeakageMechanism mech(/*eps=*/5.0, /*b=*/1, /*T=*/4, &rng);
  RunningStat stat;
  for (int t = 1; t <= 40000; ++t) {
    const LeakageRelease rel = mech.Step(3);  // window count = 12
    if (rel.fired) stat.Add(rel.size);
  }
  EXPECT_NEAR(stat.mean(), 12.0, 0.2);
}

TEST(AntMechanismTest, FiresWhenAccumulatedCountsCross) {
  Rng rng(11);
  AntLeakageMechanism mech(/*eps=*/3.0, /*b=*/1, /*theta=*/30, &rng);
  uint64_t fires = 0;
  for (int t = 1; t <= 3000; ++t) {
    const LeakageRelease rel = mech.Step(3);  // ~ every 10 steps
    if (rel.fired) ++fires;
  }
  EXPECT_NEAR(static_cast<double>(fires), 300.0, 90.0);
}

TEST(AntMechanismTest, SilentOnEmptyStream) {
  Rng rng(12);
  AntLeakageMechanism mech(3.0, 1.0, 1000, &rng);
  uint64_t fires = 0;
  for (int t = 1; t <= 1000; ++t) {
    if (mech.Step(0).fired) ++fires;
  }
  EXPECT_LT(fires, 5u);
}

// ---------------------------------------------------------------------------
// Table-1 simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, ProducesStructuralEventsFromReleasesOnly) {
  std::vector<LeakageRelease> releases = {
      {1, 0, false}, {2, 7, true}, {3, 0, false}, {4, 100, true}};
  SimulatorPublicParams pp;
  pp.upload_rows = [](uint64_t) { return 16; };
  pp.transform_rows = [](uint64_t) { return 20; };
  pp.flush_interval = 3;
  pp.flush_size = 5;
  const Transcript tr = SimulateTranscript(releases, pp);

  // t=1: upload, transform. t=2: upload, transform, sync(7).
  // t=3: upload, transform, flush(5 then cache reset).
  // t=4: upload, transform, sync clamped to cache (20).
  ASSERT_EQ(tr.size(), 11u);
  EXPECT_EQ(tr[0], (TranscriptEvent{TranscriptEvent::Kind::kUpload, 1, 16}));
  EXPECT_EQ(tr[1],
            (TranscriptEvent{TranscriptEvent::Kind::kTransformOut, 1, 20}));
  EXPECT_EQ(tr[4], (TranscriptEvent{TranscriptEvent::Kind::kSync, 2, 7}));
  EXPECT_EQ(tr[7], (TranscriptEvent{TranscriptEvent::Kind::kFlush, 3, 5}));
  // After the flush the public cache is empty; at t=4 it holds only the new
  // transform output (20 rows), so the sync of v=100 clamps to 20.
  EXPECT_EQ(tr[10], (TranscriptEvent{TranscriptEvent::Kind::kSync, 4, 20}));
}

TEST(SimulatorTest, NoFlushWhenDisabled) {
  std::vector<LeakageRelease> releases = {{1, 0, false}, {2, 0, false}};
  SimulatorPublicParams pp;
  pp.upload_rows = [](uint64_t) { return 4; };
  pp.transform_rows = [](uint64_t) { return 4; };
  pp.flush_interval = 0;
  const Transcript tr = SimulateTranscript(releases, pp);
  for (const auto& e : tr) {
    EXPECT_NE(e.kind, TranscriptEvent::Kind::kFlush);
  }
}

}  // namespace
}  // namespace incshrink
