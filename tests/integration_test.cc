#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/bounds.h"
#include "src/dp/simulator.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

struct DatasetCase {
  const char* name;
  bool cpdb;
};

class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<bool, Strategy>> {};

/// Builds a scaled-down dataset + config pair for fast end-to-end runs.
void MakeCase(bool cpdb, Strategy strategy, IncShrinkConfig* cfg,
              GeneratedWorkload* w) {
  if (cpdb) {
    CpdbParams p;
    p.steps = 72;
    *w = GenerateCpdb(p);
    *cfg = DefaultCpdbConfig();
    cfg->flush_interval = 24;
  } else {
    TpcDsParams p;
    p.steps = 120;
    *w = GenerateTpcDs(p);
    *cfg = DefaultTpcDsConfig();
    cfg->flush_interval = 40;
  }
  cfg->strategy = strategy;
}

TEST_P(EndToEndTest, RunsAndTracksTruth) {
  const auto [cpdb, strategy] = GetParam();
  IncShrinkConfig cfg;
  GeneratedWorkload w;
  MakeCase(cpdb, strategy, &cfg, &w);
  SynchronousDeployment deployment(cfg);
  const Status st = deployment.Run(w.t1, w.t2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const RunSummary s = deployment.engine().Summary();
  EXPECT_EQ(s.steps, w.steps());
  EXPECT_GT(s.final_true_count, 0u);

  if (strategy == Strategy::kDpTimer || strategy == Strategy::kDpAnt) {
    EXPECT_GT(s.updates, 2u);
    // Bounded error: well below the OTM error (which equals the full truth).
    EXPECT_LT(s.l1_error.mean(),
              0.6 * static_cast<double>(s.final_true_count));
  }
  if (strategy == Strategy::kEp || strategy == Strategy::kNm) {
    // Transformation loss is the only error source for EP; the synthetic
    // streams are loss-free by construction (delays within eligibility,
    // multiplicity within omega), so both are exact.
    EXPECT_LT(s.l1_error.mean(), 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EndToEndTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(Strategy::kDpTimer, Strategy::kDpAnt,
                                         Strategy::kEp, Strategy::kNm,
                                         Strategy::kOtm)));

// ---------------------------------------------------------------------------
// SIM-CDP structural indistinguishability (Theorems 7/8, Table 1)
// ---------------------------------------------------------------------------

class SimCdpTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(SimCdpTest, SimulatorReproducesRealTranscript) {
  const auto [cpdb, use_ant] = GetParam();
  IncShrinkConfig cfg;
  GeneratedWorkload w;
  MakeCase(cpdb, use_ant ? Strategy::kDpAnt : Strategy::kDpTimer, &cfg, &w);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();

  // The simulator sees ONLY the DP releases {(t, v_t)} plus public
  // parameters — never the data. It must reproduce the exact sequence of
  // observable events (kind, time, size) of the real execution.
  const Transcript simulated =
      SimulateTranscript(engine.releases(), engine.MakeSimulatorParams());
  const Transcript& real = engine.transcript();
  ASSERT_EQ(simulated.size(), real.size());
  for (size_t i = 0; i < real.size(); ++i) {
    EXPECT_EQ(simulated[i].kind, real[i].kind)
        << i << " " << TranscriptKindName(real[i].kind);
    EXPECT_EQ(simulated[i].t, real[i].t) << i;
    EXPECT_EQ(simulated[i].rows, real[i].rows)
        << i << " " << TranscriptKindName(real[i].kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SimCdpTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// Theorem 4: deferred data stays under the tail bound
// ---------------------------------------------------------------------------

TEST(TheoremBoundsIntegrationTest, TimerDeferredDataBounded) {
  TpcDsParams p;
  p.steps = 200;
  const GeneratedWorkload w = GenerateTpcDs(p);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.flush_interval = 0;  // isolate the deferred-data process
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();

  // Count deferred (real) entries left in the cache at the end and compare
  // with the Theorem-4 bound for k updates at beta = 0.05.
  const uint64_t k = engine.Summary().updates;
  ASSERT_GE(k, MinUpdatesForBound(0.05));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC probe(&s0, &s1, CostModel::Free());
  uint32_t deferred = 0;
  for (size_t r = 0; r < engine.shard_cache(0).rows().size(); ++r) {
    deferred += engine.shard_cache(0).rows().RecoverAt(r, 0) & 1;
  }
  // Subtract entries cached since the last update (c*, not "deferred").
  const double alpha = TimerDeferredBound(cfg.budget_b, cfg.eps, k, 0.05);
  EXPECT_LT(static_cast<double>(deferred),
            alpha + 3.0 * cfg.timer_T);  // c* slack: ~2.7/step * T
}

// ---------------------------------------------------------------------------
// Privacy ledger: full runs never violate the b-stability invariant
// ---------------------------------------------------------------------------

TEST(PrivacyLedgerIntegrationTest, RunsWithinBudgets) {
  TpcDsParams p;
  p.steps = 150;
  const GeneratedWorkload w = GenerateTpcDs(p);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  SynchronousDeployment deployment(cfg);
  // Any ChargeParticipation overflow would surface as a non-OK status.
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();
  EXPECT_GT(engine.accountant().tracked_records(), 100u);
  EXPECT_DOUBLE_EQ(engine.accountant().EventLevelEpsilon(), cfg.eps);
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds reproduce runs exactly
// ---------------------------------------------------------------------------

TEST(DeterminismTest, SameSeedSameResults) {
  TpcDsParams p;
  p.steps = 60;
  const GeneratedWorkload w = GenerateTpcDs(p);
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpAnt;

  SynchronousDeployment a(cfg), b(cfg);
  ASSERT_TRUE(a.Run(w.t1, w.t2).ok());
  ASSERT_TRUE(b.Run(w.t1, w.t2).ok());
  ASSERT_EQ(a.step_metrics().size(), b.step_metrics().size());
  for (size_t i = 0; i < a.step_metrics().size(); ++i) {
    EXPECT_EQ(a.step_metrics()[i].view_answer,
              b.step_metrics()[i].view_answer);
    EXPECT_EQ(a.step_metrics()[i].sync_rows, b.step_metrics()[i].sync_rows);
  }
  EXPECT_EQ(a.transcript(), b.transcript());
}

}  // namespace
}  // namespace incshrink
