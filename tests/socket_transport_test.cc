// Real socket transport (wire layer of the owners→servers architecture):
// frame codec hardening, listener/sender loopback behavior, hostile-frame
// rejection with per-connection public counters, wire backpressure, and the
// determinism contract: a SocketDeployment (frames over real TCP) reproduces
// the in-process SynchronousDeployment bit for bit — summaries and
// transcripts — for every DP strategy at 1/2/8 threads, on both the epoll
// and the portable poll() event paths. Runs under the TSan CI job alongside
// the other transport suites, and under the ASan job for the hostile paths.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/core/socket_deployment.h"
#include "src/net/frame_codec.h"
#include "src/net/socket_transport.h"
#include "src/net/upload_channel.h"
#include "src/oblivious/formats.h"
#include "src/storage/serialization.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

GeneratedWorkload SmallTpcDs() {
  TpcDsParams p;
  p.steps = 30;
  p.seed = 77;
  return GenerateTpcDs(p);
}

std::vector<uint8_t> SmallFramePayload(uint64_t owner_step) {
  UploadFrame frame;
  frame.owner_step = owner_step;
  frame.batch = SharedRows(kSrcWidth);
  frame.arrivals.push_back({owner_step, 1, 2, 3, 4});
  return EncodeUploadFrame(frame);
}

/// Polls the listener until `pred` holds or `limit` sweeps elapse.
template <typename Pred>
bool PollUntil(SocketListener* listener, Pred pred, int limit = 5000) {
  for (int i = 0; i < limit; ++i) {
    listener->Poll();
    if (pred()) return true;
  }
  return pred();
}

SocketListenerOptions TestListenerOptions() {
  SocketListenerOptions opt;
  opt.poll_timeout_ms = 1;
  return opt;
}

/// A hostile peer: a raw blocking TCP connection that can put arbitrary
/// bytes on the wire, under no codec discipline whatsoever.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() { Close(); }

  bool ok() const { return fd_ >= 0; }

  void Send(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Frame codec (pure bytes, no sockets)
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, HelloAndEnvelopesRoundTripIncrementally) {
  std::vector<uint8_t> stream = EncodeHello(3);
  const std::vector<uint8_t> p1 = SmallFramePayload(1);
  const std::vector<uint8_t> p2 = SmallFramePayload(2);
  AppendEnvelope(&stream, 1, p1);
  AppendEnvelope(&stream, 2, p2);
  FrameAssembler assembler(1 << 20);
  // Feed byte by byte: the assembler must never mis-frame a partial read.
  uint32_t channel_id = 99;
  bool hello_done = false;
  std::vector<WireFrame> frames;
  for (uint8_t byte : stream) {
    assembler.Feed(&byte, 1);
    if (!hello_done) {
      const Result<bool> hello = assembler.TakeHello(&channel_id);
      ASSERT_TRUE(hello.ok());
      hello_done = *hello;
      continue;
    }
    for (;;) {
      WireFrame frame;
      const Result<bool> got = assembler.TakeFrame(&frame);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (!*got) break;
      frames.push_back(std::move(frame));
    }
  }
  EXPECT_EQ(channel_id, 3u);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].seq, 1u);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].seq, 2u);
  EXPECT_EQ(frames[1].payload, p2);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  EXPECT_EQ(assembler.last_seq(), 2u);
}

TEST(FrameCodecTest, HostileEnvelopesPoisonTheStream) {
  {
    FrameAssembler assembler(1 << 20);
    const std::vector<uint8_t> bad_hello = {'X', 'X', 'X', 'X', 0, 0, 0, 0};
    assembler.Feed(bad_hello.data(), bad_hello.size());
    uint32_t channel_id = 0;
    EXPECT_FALSE(assembler.TakeHello(&channel_id).ok());
    EXPECT_TRUE(assembler.poisoned());
    // Poison is sticky.
    EXPECT_FALSE(assembler.TakeHello(&channel_id).ok());
  }
  {
    // Oversized length prefix: rejected from the header alone, before any
    // payload arrives (a hostile 4 GiB claim must never allocate).
    FrameAssembler assembler(1024);
    std::vector<uint8_t> env;
    AppendEnvelope(&env, 1, std::vector<uint8_t>(2048, 0));
    assembler.Feed(env.data(), kEnvelopeBytes);  // header only
    WireFrame frame;
    EXPECT_FALSE(assembler.TakeFrame(&frame).ok());
    EXPECT_TRUE(assembler.poisoned());
  }
  {
    // Sequence stamp break (2 instead of 1): dropped/reordered/injected
    // frames are detected at the envelope, before the payload decoder.
    FrameAssembler assembler(1 << 20);
    std::vector<uint8_t> env;
    AppendEnvelope(&env, 2, SmallFramePayload(1));
    assembler.Feed(env.data(), env.size());
    WireFrame frame;
    EXPECT_FALSE(assembler.TakeFrame(&frame).ok());
  }
  {
    // A zero-length payload is not expressible: reject, don't spin.
    FrameAssembler assembler(1 << 20);
    const std::vector<uint8_t> env = {0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0};
    assembler.Feed(env.data(), env.size());
    WireFrame frame;
    EXPECT_FALSE(assembler.TakeFrame(&frame).ok());
  }
}

// ---------------------------------------------------------------------------
// Listener/sender loopback behavior — parameterized over both event paths
// ---------------------------------------------------------------------------

class SocketLoopbackTest : public ::testing::TestWithParam<bool> {
 protected:
  SocketListenerOptions ListenerOptions() {
    SocketListenerOptions opt = TestListenerOptions();
    opt.use_epoll = GetParam();
    return opt;
  }
};

INSTANTIATE_TEST_SUITE_P(EventPaths, SocketLoopbackTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "epoll" : "poll";
                         });

TEST_P(SocketLoopbackTest, FramesArriveInOrderWithPublicCounters) {
  UploadChannel ch0(16), ch1(16);
  SocketListener listener({&ch0, &ch1}, ListenerOptions());
  ASSERT_TRUE(listener.Bind().ok());
  ASSERT_GT(listener.port(), 0);

  SocketSender s0, s1;
  ASSERT_TRUE(s0.Connect("127.0.0.1", listener.port(), 0).ok());
  ASSERT_TRUE(s1.Connect("127.0.0.1", listener.port(), 1).ok());
  std::vector<std::vector<uint8_t>> sent0, sent1;
  for (uint64_t i = 1; i <= 5; ++i) {
    sent0.push_back(SmallFramePayload(i));
    ASSERT_TRUE(s0.QueueFrame(sent0.back()).ok());
    sent1.push_back(SmallFramePayload(i + 100));
    ASSERT_TRUE(s1.QueueFrame(sent1.back()).ok());
  }
  ASSERT_TRUE(s0.Flush().ok());
  ASSERT_TRUE(s1.Flush().ok());
  ASSERT_TRUE(s0.fully_flushed());
  ASSERT_TRUE(PollUntil(&listener,
                        [&] { return ch0.depth() == 5 && ch1.depth() == 5; }));

  for (uint64_t i = 0; i < 5; ++i) {
    std::vector<uint8_t> frame;
    ASSERT_TRUE(ch0.TryPop(&frame));
    EXPECT_EQ(frame, sent0[i]);  // FIFO, byte-exact
    ASSERT_TRUE(ch1.TryPop(&frame));
    EXPECT_EQ(frame, sent1[i]);
  }
  EXPECT_EQ(listener.connections_accepted(), 2u);
  EXPECT_EQ(listener.frames_delivered(), 10u);
  EXPECT_EQ(listener.frames_rejected(), 0u);
  const std::vector<ConnectionStats> stats = listener.Stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const ConnectionStats& cs : stats) {
    EXPECT_TRUE(cs.hello_done);
    EXPECT_EQ(cs.frames_delivered, 5u);
    EXPECT_EQ(cs.last_seq, 5u);
    EXPECT_TRUE(cs.open);
  }
}

TEST_P(SocketLoopbackTest, HostileFramesRejectedWithoutPerturbingOthers) {
  UploadChannel ch0(64), ch1(64);
  SocketListener listener({&ch0, &ch1}, ListenerOptions());
  ASSERT_TRUE(listener.Bind().ok());

  // An honest tenant on channel 0; its stream must survive every attack on
  // channel 1 (and on the hello) untouched.
  SocketSender honest;
  ASSERT_TRUE(honest.Connect("127.0.0.1", listener.port(), 0).ok());

  struct HostileCase {
    const char* name;
    std::vector<uint8_t> wire_bytes;  // sent verbatim on a fresh connection
    bool close_after = false;         // truncate-then-close attacks
  };
  std::vector<HostileCase> cases;
  cases.push_back(
      {"bad hello magic", {'X', 'X', 'X', 'X', 1, 0, 0, 0}, false});
  {
    // Hello naming a channel the engine does not have.
    cases.push_back({"unknown channel id", EncodeHello(7), false});
  }
  {
    // Zero length prefix after a valid hello.
    std::vector<uint8_t> wire = EncodeHello(1);
    const std::vector<uint8_t> env = {0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0};
    wire.insert(wire.end(), env.begin(), env.end());
    cases.push_back({"zero length prefix", wire, false});
  }
  {
    // Length prefix beyond max_frame_bytes: rejected from the header, no
    // allocation, no waiting for the (never-coming) payload.
    std::vector<uint8_t> wire = EncodeHello(1);
    const uint32_t huge = (1u << 20) + 1;
    wire.push_back(static_cast<uint8_t>(huge));
    wire.push_back(static_cast<uint8_t>(huge >> 8));
    wire.push_back(static_cast<uint8_t>(huge >> 16));
    wire.push_back(static_cast<uint8_t>(huge >> 24));
    for (int i = 0; i < 8; ++i) wire.push_back(i == 0 ? 1 : 0);  // seq 1
    cases.push_back({"oversized length prefix", wire, false});
  }
  {
    // First stamp is 7, not 1: transport-level injection/reorder.
    std::vector<uint8_t> wire = EncodeHello(1);
    AppendEnvelope(&wire, 7, SmallFramePayload(1));
    cases.push_back({"sequence break", wire, false});
  }
  {
    // Hostile IUF dimension header (width = rows = 2^32, the ParseShareBlob
    // wrap) inside a perfectly well-formed envelope: the payload validator
    // must reject it at the door.
    std::vector<uint8_t> payload = {'I', 'U', 'F', 1};
    for (int i = 0; i < 8; ++i) payload.push_back(0);  // owner_step
    for (int i = 0; i < 16; ++i) {
      payload.push_back((i % 8) == 4 ? 1 : 0);  // width = rows = 2^32
    }
    std::vector<uint8_t> wire = EncodeHello(1);
    AppendEnvelope(&wire, 1, payload);
    cases.push_back({"overflowing dimensions", wire, false});
  }
  {
    // Garbage payload (bad IUF magic).
    std::vector<uint8_t> wire = EncodeHello(1);
    AppendEnvelope(&wire, 1, std::vector<uint8_t>(40, 0xEE));
    cases.push_back({"garbage payload", wire, false});
  }
  {
    // Truncated IUF body (valid prefix, missing tail) in a valid envelope.
    std::vector<uint8_t> payload = SmallFramePayload(1);
    payload.resize(payload.size() / 2);
    std::vector<uint8_t> wire = EncodeHello(1);
    AppendEnvelope(&wire, 1, payload);
    cases.push_back({"truncated payload", wire, false});
  }
  {
    // Part of an envelope header, then the peer vanishes: the leftover
    // partial bytes are a protocol violation, not a silent no-op.
    std::vector<uint8_t> wire = EncodeHello(1);
    wire.push_back(12);
    wire.push_back(0);
    wire.push_back(0);  // 3 of the 12 envelope header bytes
    cases.push_back({"truncated then closed", wire, true});
  }

  uint64_t honest_sent = 0;
  for (const HostileCase& hostile : cases) {
    SCOPED_TRACE(hostile.name);
    const uint64_t rejected_before = listener.frames_rejected();
    RawConn attacker(listener.port());
    ASSERT_TRUE(attacker.ok());
    attacker.Send(hostile.wire_bytes);
    if (hostile.close_after) attacker.Close();
    ASSERT_TRUE(PollUntil(&listener, [&] {
      return listener.frames_rejected() > rejected_before;
    })) << "attack was never rejected";
    EXPECT_EQ(listener.frames_rejected(), rejected_before + 1);

    // The honest tenant's stream is unperturbed: its next frame still
    // arrives, in order, on its own sequence stamps.
    ++honest_sent;
    ASSERT_TRUE(honest.QueueFrame(SmallFramePayload(honest_sent)).ok());
    ASSERT_TRUE(honest.Flush().ok());
    ASSERT_TRUE(
        PollUntil(&listener, [&] { return ch0.depth() == honest_sent; }));
    attacker.Close();
  }

  // Every attack cost exactly one closed connection with a public reason;
  // the honest connection is still open and clean.
  const std::vector<ConnectionStats> stats = listener.Stats();
  ASSERT_EQ(stats.size(), 1 + cases.size());
  size_t open_count = 0, rejected_conns = 0;
  for (const ConnectionStats& cs : stats) {
    if (cs.open) {
      ++open_count;
      EXPECT_EQ(cs.frames_rejected, 0u);
      EXPECT_EQ(cs.frames_delivered, honest_sent);
    } else {
      ++rejected_conns;
      EXPECT_EQ(cs.frames_rejected, 1u);
      EXPECT_FALSE(cs.last_error.empty());
    }
  }
  EXPECT_EQ(open_count, 1u);
  EXPECT_EQ(rejected_conns, cases.size());
  EXPECT_EQ(listener.frames_rejected(), cases.size());
  // Engine-side channels never saw a hostile frame, and the listener's
  // probe-before-push discipline kept their reject counters owner-only.
  EXPECT_TRUE(ch1.empty());
  EXPECT_EQ(ch0.push_rejects(), 0u);
  EXPECT_EQ(ch1.push_rejects(), 0u);
}

TEST_P(SocketLoopbackTest, FullChannelStagesFramesWithoutChannelRejects) {
  // A full engine channel pauses the connection (frames stay staged in the
  // listener, reads stop) instead of dropping frames or polluting the
  // channel's public reject counter — rejects stay an owner-side signal.
  UploadChannel ch(1);
  SocketListener listener({&ch}, ListenerOptions());
  ASSERT_TRUE(listener.Bind().ok());

  SocketSender sender;
  ASSERT_TRUE(sender.Connect("127.0.0.1", listener.port(), 0).ok());
  std::vector<std::vector<uint8_t>> sent;
  for (uint64_t i = 1; i <= 3; ++i) {
    sent.push_back(SmallFramePayload(i));
    ASSERT_TRUE(sender.QueueFrame(sent.back()).ok());
  }
  ASSERT_TRUE(sender.Flush().ok());

  ASSERT_TRUE(PollUntil(&listener, [&] { return ch.depth() == 1; }));
  // More sweeps change nothing: the channel is full, the rest stays staged.
  for (int i = 0; i < 50; ++i) listener.Poll();
  EXPECT_EQ(ch.depth(), 1u);
  EXPECT_EQ(listener.frames_delivered(), 1u);
  EXPECT_EQ(ch.push_rejects(), 0u);

  // Draining the channel lets the staged frames through, in order.
  std::vector<uint8_t> frame;
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(PollUntil(&listener, [&] { return !ch.empty(); }));
    ASSERT_TRUE(ch.TryPop(&frame));
    EXPECT_EQ(frame, sent[i]);
  }
  EXPECT_EQ(listener.frames_delivered(), 3u);
  EXPECT_EQ(listener.frames_rejected(), 0u);
  EXPECT_EQ(ch.push_rejects(), 0u);
}

TEST_P(SocketLoopbackTest, ReconnectRestartsStampsWithoutPerturbingOthers) {
  UploadChannel ch0(16), ch1(16);
  SocketListener listener({&ch0, &ch1}, ListenerOptions());
  ASSERT_TRUE(listener.Bind().ok());

  SocketSender bystander, flaky;
  ASSERT_TRUE(bystander.Connect("127.0.0.1", listener.port(), 0).ok());
  ASSERT_TRUE(flaky.Connect("127.0.0.1", listener.port(), 1).ok());
  ASSERT_TRUE(flaky.QueueFrame(SmallFramePayload(1)).ok());
  ASSERT_TRUE(flaky.QueueFrame(SmallFramePayload(2)).ok());
  ASSERT_TRUE(flaky.Flush().ok());
  ASSERT_TRUE(PollUntil(&listener, [&] { return ch1.depth() == 2; }));

  // The owner dies and comes back: a fresh connection, stamps restart at 1.
  ASSERT_TRUE(flaky.Reconnect().ok());
  EXPECT_EQ(flaky.next_seq(), 1u);
  ASSERT_TRUE(flaky.QueueFrame(SmallFramePayload(3)).ok());
  ASSERT_TRUE(flaky.Flush().ok());
  ASSERT_TRUE(PollUntil(&listener, [&] { return ch1.depth() == 3; }));

  // The old connection's EOF was a clean close, not a reject, and the
  // bystander still works.
  EXPECT_EQ(listener.frames_rejected(), 0u);
  EXPECT_GE(listener.connections_closed(), 1u);
  ASSERT_TRUE(bystander.QueueFrame(SmallFramePayload(1)).ok());
  ASSERT_TRUE(bystander.Flush().ok());
  ASSERT_TRUE(PollUntil(&listener, [&] { return ch0.depth() == 1; }));
  EXPECT_EQ(listener.frames_delivered(), 4u);
}

TEST_P(SocketLoopbackTest, IdleConnectionsEvictedByPollRoundsNotWallTime) {
  SocketListenerOptions opt = ListenerOptions();
  opt.idle_poll_limit = 8;
  UploadChannel ch(16);
  SocketListener listener({&ch}, opt);
  ASSERT_TRUE(listener.Bind().ok());

  SocketSender sender;
  ASSERT_TRUE(sender.Connect("127.0.0.1", listener.port(), 0).ok());
  ASSERT_TRUE(sender.Flush().ok());  // hello
  ASSERT_TRUE(PollUntil(&listener,
                        [&] { return listener.open_connections() == 1; }));

  // A dead owner is evicted after idle_poll_limit byte-less sweeps — a
  // deterministic function of the driver's schedule, not of wall time.
  for (int i = 0; i < 64 && listener.open_connections() > 0; ++i) {
    listener.Poll();
  }
  EXPECT_EQ(listener.open_connections(), 0u);
  EXPECT_GE(listener.connections_closed(), 1u);
  EXPECT_EQ(listener.frames_rejected(), 0u);  // idleness is not hostility

  // ... and just reconnects.
  ASSERT_TRUE(sender.Reconnect().ok());
  ASSERT_TRUE(sender.QueueFrame(SmallFramePayload(1)).ok());
  ASSERT_TRUE(sender.Flush().ok());
  ASSERT_TRUE(PollUntil(&listener, [&] { return ch.depth() == 1; }));
}

TEST(SocketReconnectTest, BoundedRoundScheduleGivesUpAfterNAttempts) {
  // A port that refuses connections: bind a listener, note the port, tear
  // the listener down. Loopback refusals are immediate, so each re-dial
  // attempt fails within one ReconnectRound call.
  uint16_t dead_port = 0;
  {
    UploadChannel ch(4);
    SocketListener listener({&ch}, TestListenerOptions());
    ASSERT_TRUE(listener.Bind().ok());
    dead_port = listener.port();
  }

  SocketSenderOptions opt;
  opt.connect_attempts = 1;  // one dial per ReconnectRound
  opt.connect_timeout_ms = 50;
  opt.reconnect_backoff_rounds = 1;
  opt.reconnect_backoff_max_rounds = 4;
  opt.reconnect_max_attempts = 3;
  SocketSender sender(opt);
  EXPECT_FALSE(sender.Connect("127.0.0.1", dead_port, 0).ok());
  EXPECT_FALSE(sender.connected());

  // Deterministic round schedule with base 1 doubling to cap 4 and three
  // attempts per outage:
  //   round 1: attempt #1 fails, back off 1 round
  //   round 2: wait
  //   round 3: attempt #2 fails, back off 2 rounds
  //   rounds 4-5: wait
  //   round 6: attempt #3 fails -> permanent give-up
  const bool expect_wait[] = {false, true, false, true, true, false};
  for (int round = 0; round < 6; ++round) {
    const uint64_t attempts_before = sender.reconnect_attempts();
    EXPECT_FALSE(sender.ReconnectRound());
    const bool waited = sender.reconnect_attempts() == attempts_before;
    EXPECT_EQ(waited, expect_wait[round]) << "round " << round + 1;
  }
  EXPECT_TRUE(sender.reconnect_gave_up());
  EXPECT_EQ(sender.reconnect_attempts(), 3u);
  EXPECT_EQ(sender.reconnect_rounds_waited(), 3u);
  EXPECT_EQ(sender.reconnect_successes(), 0u);

  // Given up means given up: further rounds are inert no-ops, not retries.
  for (int round = 0; round < 16; ++round) {
    EXPECT_FALSE(sender.ReconnectRound());
  }
  EXPECT_EQ(sender.reconnect_attempts(), 3u);
  EXPECT_EQ(sender.reconnect_rounds_waited(), 3u);

  // An explicit Connect() starts a fresh outage cycle: the verdict clears,
  // and against a live listener the sender comes back and delivers.
  UploadChannel ch(4);
  SocketListener listener({&ch}, TestListenerOptions());
  ASSERT_TRUE(listener.Bind().ok());
  ASSERT_TRUE(sender.Connect("127.0.0.1", listener.port(), 0).ok());
  EXPECT_FALSE(sender.reconnect_gave_up());
  EXPECT_TRUE(sender.ReconnectRound());  // already-connected round: no-op
  EXPECT_EQ(sender.reconnect_attempts(), 3u);
  ASSERT_TRUE(sender.QueueFrame(SmallFramePayload(1)).ok());
  ASSERT_TRUE(sender.Flush().ok());
  ASSERT_TRUE(PollUntil(&listener, [&] { return ch.depth() == 1; }));

  // Mid-outage recovery: drop the connection while the listener stays up —
  // the first re-dial round succeeds, counting a success and no give-up.
  sender.CloseConn();
  EXPECT_FALSE(sender.connected());
  EXPECT_TRUE(sender.ReconnectRound());
  EXPECT_TRUE(sender.connected());
  EXPECT_EQ(sender.reconnect_successes(), 1u);
  EXPECT_FALSE(sender.reconnect_gave_up());
}

TEST(SocketBackpressureTest, KernelBackpressureReachesTheSenderAndConserves) {
  // End-to-end wire backpressure: a full engine channel pauses reads, the
  // kernel buffers fill, Flush stops making progress (!fully_flushed) — and
  // once the engine drains, every byte arrives intact and in order.
  SocketListenerOptions opt = TestListenerOptions();
  opt.validate_frames = false;  // opaque big frames, transport-level test
  UploadChannel ch(1);
  SocketListener listener({&ch}, opt);
  ASSERT_TRUE(listener.Bind().ok());

  SocketSender sender;
  ASSERT_TRUE(sender.Connect("127.0.0.1", listener.port(), 0).ok());

  // Deterministic 1 MiB payloads (pattern, not entropy). The total (16 MiB)
  // clears the worst-case kernel absorption — sndbuf autotunes to at most
  // tcp_wmem[2] (4 MiB here) and the paused receive side stops growing —
  // so the sender is guaranteed to observe a stall.
  auto make_payload = [](uint64_t stamp) {
    std::vector<uint8_t> payload(1024 * 1024);
    for (size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<uint8_t>(stamp * 31 + j * 7);
    }
    return payload;
  };
  const uint64_t kFrames = 16;
  for (uint64_t i = 1; i <= kFrames; ++i) {
    ASSERT_TRUE(sender.QueueFrame(make_payload(i)).ok());
  }

  // Flush + poll without draining the channel: the first frame lands, the
  // rest back up through the kernel into the sender's buffer.
  bool saw_stall = false;
  for (int i = 0; i < 2000 && !sender.fully_flushed(); ++i) {
    ASSERT_TRUE(sender.Flush().ok());
    listener.Poll();
    if (!sender.fully_flushed() && ch.depth() == 1) saw_stall = true;
  }
  EXPECT_TRUE(saw_stall) << "sender never observed wire backpressure";
  EXPECT_FALSE(sender.fully_flushed());
  EXPECT_GT(sender.pending_bytes(), 0u);
  EXPECT_EQ(ch.depth(), 1u);

  // Drain: pop frames while pumping both ends; conservation requires all
  // kFrames payloads byte-exact in emission order.
  uint64_t received = 0;
  for (int i = 0; i < 20000 && received < kFrames; ++i) {
    ASSERT_TRUE(sender.Flush().ok());
    listener.Poll();
    std::vector<uint8_t> frame;
    while (ch.TryPop(&frame)) {
      ++received;
      EXPECT_EQ(frame, make_payload(received));
    }
  }
  EXPECT_EQ(received, kFrames);
  EXPECT_TRUE(sender.fully_flushed());
  EXPECT_EQ(listener.frames_delivered(), kFrames);
  EXPECT_EQ(listener.frames_rejected(), 0u);
}

// ---------------------------------------------------------------------------
// Socket-run == in-process-run, bit for bit
// ---------------------------------------------------------------------------

class SocketEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndThreads, SocketEquivalenceTest,
    ::testing::Combine(::testing::Values(Strategy::kDpTimer, Strategy::kDpAnt,
                                         Strategy::kEp),
                       ::testing::Values(1, 2, 8)),
    [](const ::testing::TestParamInfo<std::tuple<Strategy, int>>& pinfo) {
      const char* strategy =
          std::get<0>(pinfo.param) == Strategy::kDpTimer  ? "Timer"
          : std::get<0>(pinfo.param) == Strategy::kDpAnt ? "ANT"
                                                         : "EP";
      return std::string(strategy) + "_threads" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST_P(SocketEquivalenceTest, WireRunReproducesInProcessRunBitForBit) {
  const GeneratedWorkload workload = SmallTpcDs();
  IncShrinkConfig config = DefaultTpcDsConfig();
  config.strategy = std::get<0>(GetParam());
  // Exercise the engine's internal parallelism under the socket feed: the
  // sharded cache steps on a deployment-local pool at every thread count.
  config.num_cache_shards = 2;
  config.cache_shard_threads = std::get<1>(GetParam());

  SynchronousDeployment in_process(config);
  ASSERT_TRUE(in_process.Run(workload.t1, workload.t2).ok());

  SocketDeployment wire(config);
  ASSERT_TRUE(wire.Start().ok());
  ASSERT_TRUE(wire.Run(workload.t1, workload.t2).ok());

  ExpectSummaryIdentical(wire.Summary(), in_process.Summary());
  EXPECT_EQ(wire.transcript(), in_process.transcript());
  EXPECT_EQ(wire.engine().frames_drained(),
            in_process.engine().frames_drained());
  EXPECT_EQ(wire.listener().frames_rejected(), 0u);
}

IncShrinkConfig SmallFilterConfig() {
  IncShrinkConfig config;
  config.eps = 1.5;
  config.omega = 1;
  config.budget_b = 1;
  config.view_kind = ViewKind::kFilter;
  config.filter = FilterSpec{100, 199};
  config.join.omega = 1;
  config.strategy = Strategy::kDpTimer;
  config.timer_T = 4;
  config.ant_theta = 6;
  config.flush_interval = 0;
  config.upload_rows_t1 = 4;
  config.upload_rows_t2 = 4;
  config.seed = 21;
  return config;
}

TEST(SocketDeploymentTest, FilterViewRunsOverTheWire) {
  // Filter views have a single owner stream; the deployment must not dial
  // (or wait on) a second connection, and must still be bit-identical.
  const uint64_t kSteps = 30;
  std::vector<std::vector<LogicalRecord>> t1(kSteps);
  const std::vector<std::vector<LogicalRecord>> t2(kSteps);
  Rng rng(22);
  Word rid = 1;
  for (uint64_t t = 0; t < kSteps; ++t) {
    const uint64_t n = rng.Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      t1[t].push_back({t + 1, rid++, rid, static_cast<Word>(t + 1),
                       static_cast<Word>(rng.Uniform(300))});
    }
  }
  const IncShrinkConfig config = SmallFilterConfig();

  SynchronousDeployment in_process(config);
  ASSERT_TRUE(in_process.Run(t1, t2).ok());

  SocketDeployment wire(config);
  ASSERT_TRUE(wire.Start().ok());
  ASSERT_TRUE(wire.Run(t1, t2).ok());

  ExpectSummaryIdentical(wire.Summary(), in_process.Summary());
  EXPECT_EQ(wire.transcript(), in_process.transcript());
  EXPECT_EQ(wire.listener().connections_accepted(), 1u);
}

TEST(SocketDeploymentTest, PollFallbackPathIsBitIdenticalToo) {
  const GeneratedWorkload workload = SmallTpcDs();
  IncShrinkConfig config = DefaultTpcDsConfig();
  config.strategy = Strategy::kDpTimer;

  SynchronousDeployment in_process(config);
  ASSERT_TRUE(in_process.Run(workload.t1, workload.t2).ok());

  SocketDeployment::Options options = SocketDeployment::DefaultOptions();
  options.listener.use_epoll = false;
  SocketDeployment wire(config, options);
  ASSERT_TRUE(wire.Start().ok());
  ASSERT_TRUE(wire.Run(workload.t1, workload.t2).ok());

  ExpectSummaryIdentical(wire.Summary(), in_process.Summary());
  EXPECT_EQ(wire.transcript(), in_process.transcript());
}

}  // namespace
}  // namespace incshrink
