// Oblivious-ops leakage invariants (build-system bring-up satellite).
//
// The paper's leakage model allows an admissible adversary to observe only
// the *sizes* of the secure arrays each operator touches — never anything
// data-dependent. This suite pins that down operationally: for any two
// inputs of the same public cardinality, every oblivious operator must
// produce (a) the same output length and (b) the same protocol trace
// (AND gates, XOR gates, bytes, rounds). A data-dependent branch anywhere
// in sort/filter/join would show up as diverging gate counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/fleet.h"
#include "src/mpc/cost_model.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"

namespace incshrink {
namespace {

struct TraceResult {
  size_t out_rows = 0;
  CircuitStats stats;
};

void ExpectSameTrace(const TraceResult& a, const TraceResult& b,
                     const char* what) {
  EXPECT_EQ(a.out_rows, b.out_rows) << what << ": output length leaked";
  EXPECT_EQ(a.stats.and_gates, b.stats.and_gates) << what << ": AND gates";
  EXPECT_EQ(a.stats.xor_gates, b.stats.xor_gates) << what << ": XOR gates";
  EXPECT_EQ(a.stats.bytes, b.stats.bytes) << what << ": bytes";
  EXPECT_EQ(a.stats.rounds, b.stats.rounds) << what << ": rounds";
}

// Builds `n` random source-format rows; `density` controls how many are real
// (the data-dependent quantity that must NOT influence any trace).
SharedRows MakeSourceRows(size_t n, double density, Rng* rng) {
  SharedRows rows(kSrcWidth);
  uint32_t rid = 1;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(density)) {
      LogicalRecord rec;
      rec.rid = rid++;
      rec.key = rng->Next32() % 64;  // few keys -> many joins at density 1
      rec.date = rng->Next32() % 30;
      rec.payload = rng->Next32();
      rows.AppendSecretRow(EncodeSourceRow(rec), rng);
    } else {
      rows.AppendSecretRow(MakeDummySourceRow(rng), rng);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

TEST(ObliviousInvariantsTest, SortTraceIndependentOfData) {
  constexpr size_t kN = 96;
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows rows = MakeSourceRows(kN, density, &rng);
    ObliviousSort(&proto, &rows, kSrcKeyCol, true);
    return TraceResult{rows.size(), proto.stats()};
  };
  const TraceResult base = run(1, 0.5);
  ExpectSameTrace(base, run(999, 0.5), "sort(other data)");
  ExpectSameTrace(base, run(1, 0.0), "sort(all dummies)");
  ExpectSameTrace(base, run(5, 1.0), "sort(all real)");
  EXPECT_EQ(base.stats.and_gates % SortNetworkCompareExchanges(kN), 0u)
      << "sort cost should be a per-exchange multiple of the network size";
}

// ---------------------------------------------------------------------------
// Selection / count
// ---------------------------------------------------------------------------

TEST(ObliviousInvariantsTest, SelectTraceIndependentOfData) {
  constexpr size_t kN = 80;
  const ObliviousPredicate pred = ObliviousPredicate::ColumnBetween(
      kSrcDateCol, 5, 15);
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows rows = MakeSourceRows(kN, density, &rng);
    ObliviousSelect(&proto, &rows, kSrcValidCol, pred);
    return TraceResult{rows.size(), proto.stats()};
  };
  const TraceResult base = run(3, 0.5);
  ExpectSameTrace(base, run(1234, 0.5), "select(other data)");
  ExpectSameTrace(base, run(3, 0.0), "select(none match)");
  ExpectSameTrace(base, run(3, 1.0), "select(all real)");
  EXPECT_EQ(base.out_rows, kN) << "selection must not shrink its input";
}

TEST(ObliviousInvariantsTest, CountWhereTraceIndependentOfData) {
  constexpr size_t kN = 80;
  const ObliviousPredicate pred =
      ObliviousPredicate::ColumnLess(kSrcDateCol, 10);
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows rows = MakeSourceRows(kN, density, &rng);
    (void)ObliviousCountWhere(&proto, rows, kSrcValidCol, pred);
    return TraceResult{rows.size(), proto.stats()};
  };
  ExpectSameTrace(run(7, 0.3), run(1007, 0.9), "count-where");
}

// ---------------------------------------------------------------------------
// Joins: output size must be a function of public cardinalities only
// ---------------------------------------------------------------------------

class JoinInvariantsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(JoinInvariantsTest, SortMergeJoinTraceIndependentOfData) {
  const uint32_t omega = GetParam();
  constexpr size_t kN1 = 40, kN2 = 24;
  JoinSpec spec;
  spec.omega = omega;
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows t1 = MakeSourceRows(kN1, density, &rng);
    SharedRows t2 = MakeSourceRows(kN2, density, &rng);
    uint64_t seq = 0;
    JoinResult res = TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq);
    return TraceResult{res.rows.size(), proto.stats()};
  };
  const TraceResult base = run(11, 0.5);
  // Paper invariant: |output| = omega * (|t1| + |t2|), content-independent.
  EXPECT_EQ(base.out_rows, omega * (kN1 + kN2));
  ExpectSameTrace(base, run(2048, 0.5), "smj(other data)");
  ExpectSameTrace(base, run(11, 0.0), "smj(no real rows)");
  ExpectSameTrace(base, run(11, 1.0), "smj(every row real)");
}

TEST_P(JoinInvariantsTest, NestedLoopJoinTraceIndependentOfData) {
  const uint32_t omega = GetParam();
  constexpr size_t kN1 = 12, kN2 = 10;
  JoinSpec spec;
  spec.omega = omega;
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    // Nested-loop inputs carry a per-row budget column appended to the
    // source format.
    SharedRows t1(kSrcWidth + 1), t2(kSrcWidth + 1);
    auto fill = [&](SharedRows* t, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        std::vector<Word> row =
            rng.Bernoulli(density)
                ? EncodeSourceRow({0, static_cast<Word>(i + 1),
                                   rng.Next32() % 16, rng.Next32() % 30,
                                   rng.Next32()})
                : MakeDummySourceRow(&rng);
        row.push_back(omega);  // remaining contribution budget
        t->AppendSecretRow(row, &rng);
      }
    };
    fill(&t1, kN1);
    fill(&t2, kN2);
    uint64_t seq = 0;
    JoinResult res = TruncatedNestedLoopJoin(&proto, &t1, &t2, kSrcWidth,
                                             kSrcWidth, spec, &seq);
    return TraceResult{res.rows.size(), proto.stats()};
  };
  const TraceResult base = run(21, 0.5);
  // Paper Algorithm 4: |output| = omega * |t1| regardless of content.
  EXPECT_EQ(base.out_rows, omega * kN1);
  ExpectSameTrace(base, run(4096, 0.5), "nlj(other data)");
  ExpectSameTrace(base, run(21, 0.0), "nlj(no real rows)");
  ExpectSameTrace(base, run(21, 1.0), "nlj(every row real)");
}

INSTANTIATE_TEST_SUITE_P(Omegas, JoinInvariantsTest,
                         ::testing::Values(1u, 3u));

// ---------------------------------------------------------------------------
// Cache read / flush: prefix length is public, trace is data-independent
// ---------------------------------------------------------------------------

TEST(ObliviousInvariantsTest, CacheReadTraceIndependentOfData) {
  constexpr size_t kCache = 64, kRead = 20;
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows cache(kViewWidth);
    uint64_t seq = 0;
    for (size_t i = 0; i < kCache; ++i) {
      const bool real = rng.Bernoulli(density);
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = real;
      row[kViewSortKeyCol] = MakeCacheSortKey(real, seq++);
      for (size_t c = kViewKeyCol; c < kViewWidth; ++c) row[c] = rng.Next32();
      cache.AppendSecretRow(row, &rng);
    }
    SharedRows got = ObliviousCacheRead(&proto, &cache, kRead);
    EXPECT_EQ(got.size(), kRead);
    EXPECT_EQ(cache.size(), kCache - kRead);
    return TraceResult{got.size(), proto.stats()};
  };
  const TraceResult base = run(41, 0.5);
  ExpectSameTrace(base, run(977, 0.5), "cache-read(other data)");
  ExpectSameTrace(base, run(41, 0.0), "cache-read(all dummies)");
  ExpectSameTrace(base, run(41, 1.0), "cache-read(all real)");
}

TEST(ObliviousInvariantsTest, FullJoinCountTraceIndependentOfData) {
  constexpr size_t kN1 = 32, kN2 = 16;
  JoinSpec spec;
  auto run = [&](uint64_t seed, double density) {
    Party s0(0, seed), s1(1, seed + 1);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(seed + 2);
    SharedRows t1 = MakeSourceRows(kN1, density, &rng);
    SharedRows t2 = MakeSourceRows(kN2, density, &rng);
    (void)ObliviousJoinCountFull(&proto, t1, t2, spec);
    return TraceResult{0, proto.stats()};
  };
  ExpectSameTrace(run(31, 0.2), run(8191, 0.95), "full-join-count");
}

// ---------------------------------------------------------------------------
// Fleet scheduler: the service order is a function of public state only
// ---------------------------------------------------------------------------

// Same-cardinality rewrite of a stream: every record keeps its arrival step
// (so per-step upload counts — the public sizes — are unchanged) while the
// secret contents diverge: payloads are XOR-scrambled and T2 join keys are
// shifted out of range, destroying most join matches. True counts, cache
// contents and sDPANT's data-dependent firing pattern all change; nothing
// public does.
GeneratedWorkload ScrambleSecretContents(const GeneratedWorkload& in) {
  GeneratedWorkload out = in;
  for (auto& step : out.t1) {
    for (LogicalRecord& r : step) r.payload ^= 0xDEADBEEFu;
  }
  for (auto& step : out.t2) {
    for (LogicalRecord& r : step) {
      r.payload ^= 0xDEADBEEFu;
      r.key += 1u << 20;  // no longer matches any T1 key; still in-ring
    }
  }
  out.total_view_entries = 0;  // metadata only; the fleet never reads it
  return out;
}

TEST(ObliviousInvariantsTest, FleetScheduleIndependentOfSecretContents) {
  // Two priority-scheduled fleets over equal-shaped streams with different
  // secret contents must log the *identical* round-by-round service
  // schedule: the scheduler's inputs (queue depths, engine clocks, config
  // weights, age counters) are all public, so the schedule cannot be a
  // leakage channel — even with sDPANT tenants whose internal firing
  // pattern genuinely diverges between the two runs.
  const GeneratedWorkload base = [] {
    TpcDsParams p;
    p.steps = 40;
    p.seed = 21;
    return GenerateTpcDs(p);
  }();
  const GeneratedWorkload scrambled = ScrambleSecretContents(base);

  auto make_fleet = [](const GeneratedWorkload* w) {
    std::vector<DeploymentFleet::TenantSpec> specs(4);
    const Strategy kStrategies[] = {Strategy::kDpTimer, Strategy::kDpAnt,
                                    Strategy::kDpAnt, Strategy::kDpTimer};
    const uint32_t kWeights[] = {1, 4, 2, 8};
    for (size_t i = 0; i < specs.size(); ++i) {
      specs[i].name = std::string("tenant") + std::to_string(i);
      specs[i].config = DefaultTpcDsConfig();
      specs[i].config.strategy = kStrategies[i];
      specs[i].config.flush_interval = 16;
      specs[i].config.sla_weight = kWeights[i];
      specs[i].workload = w;
    }
    DeploymentFleet::Options o;
    o.root_seed = 77;
    o.num_threads = 2;
    o.owner_lead = 4;
    o.scheduler.enabled = true;
    o.scheduler.services_per_round = 1;
    o.scheduler.aging_weight = 2;
    o.scheduler.deadline_horizon = 8;
    return std::make_unique<DeploymentFleet>(std::move(specs), o);
  };

  auto fleet_a = make_fleet(&base);
  auto fleet_b = make_fleet(&scrambled);
  fleet_a->RunAll();
  fleet_b->RunAll();

  // The secret observables really diverged (the test is not vacuous)...
  bool some_truth_differs = false;
  for (size_t i = 0; i < fleet_a->num_tenants(); ++i) {
    if (fleet_a->TenantSummary(i).final_true_count !=
        fleet_b->TenantSummary(i).final_true_count) {
      some_truth_differs = true;
    }
  }
  EXPECT_TRUE(some_truth_differs)
      << "scrambling should have changed the true join counts";

  // ...yet the public schedule is bit-identical.
  EXPECT_EQ(fleet_a->schedule_log(), fleet_b->schedule_log());
  const auto stats_a = fleet_a->AggregateStats();
  const auto stats_b = fleet_b->AggregateStats();
  EXPECT_EQ(stats_a.rounds, stats_b.rounds);
  EXPECT_EQ(stats_a.engine_steps, stats_b.engine_steps);
  EXPECT_EQ(stats_a.max_queue_depth, stats_b.max_queue_depth);
  ASSERT_EQ(stats_a.tenant_service.size(), stats_b.tenant_service.size());
  for (size_t i = 0; i < stats_a.tenant_service.size(); ++i) {
    EXPECT_EQ(stats_a.tenant_service[i].services,
              stats_b.tenant_service[i].services);
    EXPECT_EQ(stats_a.tenant_service[i].gap_max,
              stats_b.tenant_service[i].gap_max);
  }
}

}  // namespace
}  // namespace incshrink
