#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/core/engine.h"
#include "src/core/multilevel.h"
#include "src/core/owner_client.h"
#include "src/core/upload_policy.h"
#include "src/dp/allocation.h"
#include "src/dp/laplace.h"
#include "src/secret/nparty.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// (N, N)-secret sharing (Section 8, multi-server extension)
// ---------------------------------------------------------------------------

class NPartyShareTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NPartyShareTest, RoundTrip) {
  const size_t n = GetParam();
  Rng rng(n);
  for (int i = 0; i < 200; ++i) {
    const Word x = rng.Next32();
    const std::vector<Word> shares = ShareWordN(x, n, &rng);
    ASSERT_EQ(shares.size(), n);
    EXPECT_EQ(RecoverWordN(shares), x);
  }
}

TEST_P(NPartyShareTest, AnyNMinusOneSharesAreUniform) {
  const size_t n = GetParam();
  Rng rng(n + 99);
  // Drop one share; the rest must have unbiased bits for a constant secret.
  for (size_t dropped = 0; dropped < n; ++dropped) {
    int64_t bits = 0;
    const int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
      const std::vector<Word> shares = ShareWordN(0xABCD, n, &rng);
      for (size_t j = 0; j < n; ++j) {
        if (j != dropped) bits += __builtin_popcount(shares[j]);
      }
    }
    const double per_word =
        static_cast<double>(bits) / (kTrials * static_cast<double>(n - 1));
    EXPECT_NEAR(per_word, 16.0, 0.15) << "dropped " << dropped;
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, NPartyShareTest, ::testing::Values(2, 3, 5, 8));

TEST(NPartyReshareTest, ReshareInsideMpcRecovers) {
  Rng rng(5);
  for (size_t n : {2u, 3u, 6u}) {
    std::vector<std::vector<Word>> contributions(n);
    for (auto& c : contributions) {
      for (size_t j = 0; j + 1 < n; ++j) c.push_back(rng.Next32());
    }
    const std::vector<Word> shares = ReshareInsideMpcN(777, contributions);
    EXPECT_EQ(RecoverWordN(shares), 777u);
  }
}

TEST(NPartyReshareTest, OneHonestContributorMasksShares) {
  // All parties but one use fixed (adversarial) contributions; the honest
  // party's randomness alone keeps the first n-1 shares unpredictable.
  Rng honest(9);
  SampleSet first_share;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::vector<Word>> contributions(3);
    contributions[0] = {0x11111111, 0x22222222};  // corrupt, constant
    contributions[1] = {0x33333333, 0x44444444};  // corrupt, constant
    contributions[2] = {honest.Next32(), honest.Next32()};
    const std::vector<Word> shares = ReshareInsideMpcN(42, contributions);
    first_share.Add(static_cast<double>(shares[0]));
  }
  EXPECT_NEAR(first_share.Mean() / 2147483647.5, 1.0, 0.05);
}

TEST(NPartyNoiseTest, JointLaplaceNMatchesDistribution) {
  Rng rng(11);
  SampleSet samples;
  for (int i = 0; i < 40000; ++i) {
    const std::vector<Word> contributions = {rng.Next32(), rng.Next32(),
                                             rng.Next32(), rng.Next32()};
    samples.Add(JointLaplaceN(contributions, 3.0));
  }
  EXPECT_NEAR(samples.Mean(), 0.0, 0.12);
  const double ks =
      KsDistance(samples, [](double x) { return LaplaceCdf(x, 3.0); });
  EXPECT_LT(ks, 0.015);
}

TEST(NPartyNoiseTest, SingleHonestContributionSuffices) {
  // Three constant (adversarial) contributions + one honest: the noise must
  // still follow the Laplace distribution.
  Rng honest(13);
  SampleSet samples;
  for (int i = 0; i < 40000; ++i) {
    samples.Add(JointLaplaceN({0xDEAD, 0xBEEF, 0xCAFE, honest.Next32()},
                              2.0));
  }
  const double ks =
      KsDistance(samples, [](double x) { return LaplaceCdf(x, 2.0); });
  EXPECT_LT(ks, 0.015);
}

// ---------------------------------------------------------------------------
// Owner upload policies (Section 8, DP-Sync composition)
// ---------------------------------------------------------------------------

std::vector<LogicalRecord> Arrivals(uint64_t t, size_t n, Word* rid) {
  std::vector<LogicalRecord> v;
  for (size_t i = 0; i < n; ++i)
    v.push_back({t, (*rid)++, 7, static_cast<Word>(t), 0});
  return v;
}

TEST(UploadPolicyTest, FixedSizePadsAndQueues) {
  UploadPolicyConfig cfg;  // kFixedSize
  OwnerUploader up(cfg, /*fixed_rows=*/4, /*is_public=*/false, 1);
  Rng rng(2);
  Word rid = 1;
  SharedRows b1 = up.BuildBatch(1, Arrivals(1, 6, &rid), &rng);
  EXPECT_EQ(b1.size(), 4u);
  EXPECT_EQ(up.pending(), 2u);
  SharedRows b2 = up.BuildBatch(2, {}, &rng);
  EXPECT_EQ(b2.size(), 4u);  // 2 real + 2 dummies
  EXPECT_EQ(up.pending(), 0u);
  EXPECT_DOUBLE_EQ(up.PolicyEpsilon(), 0.0);
}

TEST(UploadPolicyTest, PublicUploadsEverythingUnpadded) {
  UploadPolicyConfig cfg;
  OwnerUploader up(cfg, 4, /*is_public=*/true, 1);
  Rng rng(3);
  Word rid = 1;
  EXPECT_EQ(up.BuildBatch(1, Arrivals(1, 9, &rid), &rng).size(), 9u);
  EXPECT_EQ(up.BuildBatch(2, {}, &rng).size(), 0u);
}

TEST(UploadPolicyTest, DpTimerUploadsOnlyOnSchedule) {
  UploadPolicyConfig cfg;
  cfg.kind = UploadPolicyKind::kDpTimerSync;
  cfg.eps_sync = 5.0;
  cfg.sync_interval = 3;
  OwnerUploader up(cfg, 4, false, 7);
  Rng rng(8);
  Word rid = 1;
  for (uint64_t t = 1; t <= 12; ++t) {
    const SharedRows batch = up.BuildBatch(t, Arrivals(t, 2, &rid), &rng);
    if (t % 3 != 0) {
      EXPECT_EQ(batch.size(), 0u) << t;
    }
  }
  EXPECT_DOUBLE_EQ(up.PolicyEpsilon(), 5.0);
}

TEST(UploadPolicyTest, DpTimerBatchSizeCentersOnPending) {
  UploadPolicyConfig cfg;
  cfg.kind = UploadPolicyKind::kDpTimerSync;
  cfg.eps_sync = 2.0;
  cfg.sync_interval = 1;
  OwnerUploader up(cfg, 4, false, 9);
  Rng rng(10);
  Word rid = 1;
  RunningStat sizes;
  for (uint64_t t = 1; t <= 4000; ++t) {
    const SharedRows batch = up.BuildBatch(t, Arrivals(t, 3, &rid), &rng);
    sizes.Add(static_cast<double>(batch.size()));
  }
  // Uploads 3/step on average (what arrives must eventually ship).
  EXPECT_NEAR(sizes.mean(), 3.0, 0.25);
  EXPECT_GT(sizes.stddev(), 0.3);  // DP noise visible in sizes
}

TEST(UploadPolicyTest, DpAntFiresOnBacklog) {
  UploadPolicyConfig cfg;
  cfg.kind = UploadPolicyKind::kDpAntSync;
  cfg.eps_sync = 4.0;
  cfg.sync_theta = 10;
  OwnerUploader up(cfg, 4, false, 11);
  Rng rng(12);
  Word rid = 1;
  uint64_t uploads = 0;
  for (uint64_t t = 1; t <= 300; ++t) {
    const SharedRows batch = up.BuildBatch(t, Arrivals(t, 2, &rid), &rng);
    if (!batch.empty()) ++uploads;
  }
  // ~2 records/step against theta 10: roughly every 5 steps.
  EXPECT_NEAR(static_cast<double>(uploads), 60.0, 30.0);
  EXPECT_LT(up.pending(), 60u);  // backlog keeps draining
}

TEST(UploadPolicyComposedTest, EngineComposesEpsilons) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.upload_policy1.kind = UploadPolicyKind::kDpTimerSync;
  cfg.upload_policy1.eps_sync = 0.5;
  cfg.upload_policy1.sync_interval = 2;
  cfg.upload_policy2.kind = UploadPolicyKind::kDpTimerSync;
  cfg.upload_policy2.eps_sync = 0.25;
  cfg.upload_policy2.sync_interval = 2;

  TpcDsParams p;
  p.steps = 60;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  // eps_total = eps_view + max(owner policies) = 1.5 + 0.5.
  EXPECT_DOUBLE_EQ(deployment.engine().ComposedEpsilon(), 2.0);
  EXPECT_DOUBLE_EQ(deployment.owner1().PolicyEpsilon(), 0.5);
  EXPECT_DOUBLE_EQ(deployment.owner2().PolicyEpsilon(), 0.25);
  // The composed system still answers with bounded error.
  const RunSummary s = deployment.Summary();
  EXPECT_GT(s.updates, 2u);
  EXPECT_LT(s.l1_error.mean(),
            static_cast<double>(s.final_true_count));
}

TEST(UploadPolicyComposedTest, SimulatorStillReproducesTranscript) {
  // The SIM-CDP structural test must hold under DP upload policies too: the
  // upload sizes are themselves DP releases, and every other event size
  // derives from them.
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.upload_policy1.kind = UploadPolicyKind::kDpTimerSync;
  cfg.upload_policy1.eps_sync = 1.0;
  cfg.upload_policy1.sync_interval = 2;

  TpcDsParams p;
  p.steps = 80;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Run(w.t1, w.t2).ok());
  const Engine& engine = deployment.engine();
  const Transcript simulated =
      SimulateTranscript(engine.releases(), engine.MakeSimulatorParams());
  EXPECT_EQ(simulated, engine.transcript());
}

// ---------------------------------------------------------------------------
// Filter views (Appendix A.1.1 as a view definition)
// ---------------------------------------------------------------------------

IncShrinkConfig FilterConfig(Strategy strategy) {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 1;
  cfg.budget_b = 1;
  cfg.view_kind = ViewKind::kFilter;
  cfg.filter = FilterSpec{100, 199};
  cfg.join.omega = 1;
  cfg.strategy = strategy;
  cfg.timer_T = 4;
  cfg.ant_theta = 6;
  cfg.flush_interval = 0;
  cfg.upload_rows_t1 = 4;
  cfg.upload_rows_t2 = 4;
  cfg.seed = 21;
  return cfg;
}

std::vector<std::vector<LogicalRecord>> FilterStream(uint64_t steps) {
  std::vector<std::vector<LogicalRecord>> t1(steps);
  Rng rng(22);
  Word rid = 1;
  for (uint64_t t = 0; t < steps; ++t) {
    const uint64_t n = rng.Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      t1[t].push_back({t + 1, rid++, rid,
                       static_cast<Word>(t + 1),
                       static_cast<Word>(rng.Uniform(300))});
    }
  }
  return t1;
}

TEST(FilterViewTest, EpAnswersExactly) {
  const auto t1 = FilterStream(40);
  const std::vector<std::vector<LogicalRecord>> t2(40);
  SynchronousDeployment engine(FilterConfig(Strategy::kEp));
  ASSERT_TRUE(engine.Run(t1, t2).ok());
  const RunSummary s = engine.Summary();
  EXPECT_GT(s.final_true_count, 10u);
  EXPECT_DOUBLE_EQ(s.l1_error.max(), 0.0);
}

TEST(FilterViewTest, NmAnswersExactlyByScanningDs) {
  const auto t1 = FilterStream(40);
  const std::vector<std::vector<LogicalRecord>> t2(40);
  SynchronousDeployment engine(FilterConfig(Strategy::kNm));
  ASSERT_TRUE(engine.Run(t1, t2).ok());
  EXPECT_DOUBLE_EQ(engine.Summary().l1_error.max(), 0.0);
}

TEST(FilterViewTest, DpTimerTracksWithNoise) {
  const auto t1 = FilterStream(60);
  const std::vector<std::vector<LogicalRecord>> t2(60);
  SynchronousDeployment engine(FilterConfig(Strategy::kDpTimer));
  ASSERT_TRUE(engine.Run(t1, t2).ok());
  const RunSummary s = engine.Summary();
  EXPECT_GT(s.updates, 10u);
  EXPECT_LT(s.l1_error.mean(),
            0.5 * static_cast<double>(s.final_true_count));
}

TEST(FilterViewTest, TransformOutputSizeEqualsBatchSize) {
  SynchronousDeployment engine(FilterConfig(Strategy::kDpTimer));
  ASSERT_TRUE(engine.Step({{1, 1, 5, 1, 150}}, {}).ok());
  for (const auto& e : engine.transcript()) {
    if (e.kind == TranscriptEvent::Kind::kTransformOut) {
      EXPECT_EQ(e.rows, 4u);  // == upload_rows_t1
    }
  }
}

TEST(FilterViewTest, SimulatorReproducesFilterTranscript) {
  const auto t1 = FilterStream(48);
  const std::vector<std::vector<LogicalRecord>> t2(48);
  SynchronousDeployment deployment(FilterConfig(Strategy::kDpAnt));
  ASSERT_TRUE(deployment.Run(t1, t2).ok());
  const Engine& engine = deployment.engine();
  const Transcript simulated =
      SimulateTranscript(engine.releases(), engine.MakeSimulatorParams());
  EXPECT_EQ(simulated, engine.transcript());
}

// ---------------------------------------------------------------------------
// Privacy budget allocation (Appendix D.2)
// ---------------------------------------------------------------------------

OperatorSpec FilterOp(uint64_t rows, uint64_t out) {
  OperatorSpec op;
  op.kind = OperatorSpec::Kind::kFilter;
  op.input_rows1 = rows;
  op.output_rows = out;
  op.sensitivity = 1.0;
  op.releases = 20;
  return op;
}

OperatorSpec JoinOp(uint64_t rows1, uint64_t rows2, uint64_t out, double b) {
  OperatorSpec op;
  op.kind = OperatorSpec::Kind::kJoin;
  op.input_rows1 = rows1;
  op.input_rows2 = rows2;
  op.output_rows = out;
  op.sensitivity = b;
  op.releases = 20;
  return op;
}

TEST(AllocationTest, ExpectedDummiesShrinkWithEps) {
  EXPECT_GT(ExpectedDummyRows(10, 0.1, 20), ExpectedDummyRows(10, 1.0, 20));
  EXPECT_DOUBLE_EQ(ExpectedDummyRows(10, 1.0, 20), 100.0);
}

TEST(AllocationTest, EfficienciesIncreaseWithEps) {
  const OperatorSpec f = FilterOp(1000, 500);
  EXPECT_LT(FilterEfficiency(f, 0.01), FilterEfficiency(f, 1.0));
  EXPECT_LE(FilterEfficiency(f, 1.0), 1.0);
  const OperatorSpec j = JoinOp(1000, 1000, 800, 10);
  EXPECT_LT(JoinEfficiency(j, 0.01), JoinEfficiency(j, 1.0));
}

TEST(AllocationTest, QueryEfficiencyWeightsByCardinality) {
  // A dominant operator (most output rows) should dominate E_Q.
  const std::vector<OperatorSpec> ops = {FilterOp(100, 10),
                                         JoinOp(5000, 5000, 990, 10)};
  const double eq_bad_join = QueryEfficiency(ops, {1.9, 0.1});
  const double eq_good_join = QueryEfficiency(ops, {0.1, 1.9});
  EXPECT_GT(eq_good_join, eq_bad_join);
}

TEST(AllocationTest, OptimizerRespectsBudgetAndImprovesUniform) {
  const std::vector<OperatorSpec> ops = {FilterOp(200, 50),
                                         JoinOp(4000, 4000, 950, 10)};
  const double eps_total = 2.0;
  const AllocationResult r =
      OptimizePrivacyAllocation(ops, eps_total, /*lg_total=*/1e9);
  ASSERT_TRUE(r.feasible);
  double sum = 0;
  for (double e : r.eps) {
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum, eps_total, 1e-9);
  const double uniform =
      QueryEfficiency(ops, {eps_total / 2, eps_total / 2});
  EXPECT_GE(r.efficiency, uniform - 1e-12);
  // The big join deserves the bigger slice.
  EXPECT_GT(r.eps[1], r.eps[0]);
}

TEST(AllocationTest, InfeasibleGapBudgetReported) {
  const std::vector<OperatorSpec> ops = {JoinOp(100, 100, 100, 50)};
  const AllocationResult r =
      OptimizePrivacyAllocation(ops, /*eps_total=*/0.01, /*lg_total=*/1.0);
  EXPECT_FALSE(r.feasible);
}

TEST(AllocationTest, GapConstraintShiftsBudget) {
  // Two identical joins, but one has a tight gap requirement via higher
  // sensitivity; the optimizer must keep the total gap under budget.
  std::vector<OperatorSpec> ops = {JoinOp(1000, 1000, 500, 2),
                                   JoinOp(1000, 1000, 500, 40)};
  const AllocationResult r =
      OptimizePrivacyAllocation(ops, 2.0, /*lg_total=*/2500.0);
  ASSERT_TRUE(r.feasible);
  const double gap = OperatorLogicalGap(ops[0], r.eps[0], 0.05) +
                     OperatorLogicalGap(ops[1], r.eps[1], 0.05);
  EXPECT_LE(gap, 2500.0 + 1e-6);
  EXPECT_GT(r.eps[1], r.eps[0]);  // the sensitive join needs more budget
}

// ---------------------------------------------------------------------------
// Multi-level pipeline (Section 8, complex query workloads)
// ---------------------------------------------------------------------------

struct PipelineStream {
  std::vector<std::vector<LogicalRecord>> t1;
  std::vector<std::vector<LogicalRecord>> t2;
  uint64_t expected_pairs = 0;
};

/// T1 records carry a payload; only payload >= 100 passes the filter. Every
/// filtered record is joined by one T2 record two steps later.
PipelineStream MakePipelineStream(uint64_t steps) {
  PipelineStream s;
  s.t1.resize(steps);
  s.t2.resize(steps);
  Rng rng(31);
  Word rid = 1, key = 1;
  for (uint64_t t = 0; t + 4 < steps; ++t) {
    for (int i = 0; i < 2; ++i) {
      const bool passes = rng.Bernoulli(0.5);
      const Word k = key++;
      s.t1[t].push_back({t + 1, rid++, k, static_cast<Word>(t + 1),
                         passes ? 150u : 50u});
      s.t2[t + 2].push_back(
          {t + 3, rid++, k, static_cast<Word>(t + 3), 0});
      if (passes) ++s.expected_pairs;
    }
  }
  return s;
}

MultiLevelPipeline::Config PipelineConfig() {
  MultiLevelPipeline::Config cfg;
  cfg.eps1 = 20;  // near-exact stages isolate the plumbing under test
  cfg.eps2 = 20;
  cfg.filter = FilterSpec{100, 0xFFFFFFFF};
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.omega = 1;
  cfg.budget_b = 10;
  cfg.window_steps = 8;
  cfg.timer_T1 = 2;
  cfg.timer_T2 = 3;
  cfg.upload_rows_t1 = 4;
  cfg.upload_rows_t2 = 4;
  return cfg;
}

TEST(MultiLevelPipelineTest, TracksFilteredJoinTruth) {
  const PipelineStream s = MakePipelineStream(40);
  MultiLevelPipeline pipeline(PipelineConfig());
  for (size_t i = 0; i < s.t1.size(); ++i) {
    ASSERT_TRUE(pipeline.Step(s.t1[i], s.t2[i]).ok()) << i;
  }
  const RunSummary sum = pipeline.Summary();
  EXPECT_EQ(sum.final_true_count, s.expected_pairs);
  EXPECT_GT(sum.final_true_count, 10u);
  // With eps = 20 per stage the pipeline lag is the only error source.
  const auto& last = pipeline.step_metrics().back();
  EXPECT_NEAR(static_cast<double>(last.view_answer),
              static_cast<double>(last.true_count),
              12.0);
  EXPECT_GT(sum.updates, 5u);
  EXPECT_GT(pipeline.v1().size(), 0u);
  EXPECT_GT(pipeline.v2().size(), 0u);
}

TEST(MultiLevelPipelineTest, StageBudgetsAffectAccuracy) {
  // Starving stage 1 (tiny eps1) must hurt accuracy relative to a balanced
  // allocation — the effect the D.2 optimizer exploits.
  const PipelineStream s = MakePipelineStream(48);
  auto run = [&](double eps1, double eps2) {
    MultiLevelPipeline::Config cfg = PipelineConfig();
    cfg.eps1 = eps1;
    cfg.eps2 = eps2;
    MultiLevelPipeline pipeline(cfg);
    for (size_t i = 0; i < s.t1.size(); ++i) {
      EXPECT_TRUE(pipeline.Step(s.t1[i], s.t2[i]).ok());
    }
    return pipeline.Summary().l1_error.mean();
  };
  double starved = 0, balanced = 0;
  for (int i = 0; i < 3; ++i) {
    starved += run(0.02, 3.98);
    balanced += run(2.0, 2.0);
  }
  EXPECT_GT(starved, balanced);
}

TEST(MultiLevelPipelineTest, ViewSizesStayDpSized) {
  const PipelineStream s = MakePipelineStream(40);
  MultiLevelPipeline::Config cfg = PipelineConfig();
  cfg.eps1 = 1.0;
  cfg.eps2 = 1.0;
  MultiLevelPipeline pipeline(cfg);
  for (size_t i = 0; i < s.t1.size(); ++i) {
    ASSERT_TRUE(pipeline.Step(s.t1[i], s.t2[i]).ok());
  }
  // V2 stays far below the exhaustive bound (40 steps * padded outputs).
  EXPECT_LT(pipeline.v2().size(), 40u * 4u * 10u);
}

}  // namespace
}  // namespace incshrink
