// Deterministic mutation-fuzz suite for the untrusted decoders: every byte
// sequence handed to ParseShareBlob / CombineShareBlobs / DecodeUploadFrame
// (and the wire-envelope FrameAssembler in front of them) must yield either
// a Status or a valid parse — never a crash, an abort, an OOM or an
// out-of-bounds access. All mutations are drawn from a seeded Rng, so a
// failing input reproduces from its seed alone. The suite is part of the
// ASan CI job, which is what turns "never an out-of-bounds access" from a
// hope into a check — including the historical ParseShareBlob
// width*rows / expected_words*4 overflow headers that used to crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/net/frame_codec.h"
#include "src/oblivious/formats.h"
#include "src/secret/shared_rows.h"
#include "src/storage/checkpoint.h"
#include "src/storage/serialization.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

/// A small honest SharedRows batch to derive valid encodings from.
SharedRows SampleRows(size_t rows, Rng* rng) {
  SharedRows out(kSrcWidth);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Word> row(kSrcWidth);
    for (Word& w : row) w = rng->Next32();
    out.AppendSecretRow(row, rng);
  }
  return out;
}

std::vector<uint8_t> SampleFrameBytes(size_t rows, Rng* rng) {
  UploadFrame frame;
  frame.owner_step = rng->Uniform(1000);
  frame.batch = SampleRows(rows, rng);
  const size_t arrivals = rng->Uniform(4);
  for (size_t i = 0; i < arrivals; ++i) {
    frame.arrivals.push_back({frame.owner_step, rng->Next32(), rng->Next32(),
                              rng->Next32(), rng->Next32()});
  }
  return EncodeUploadFrame(frame);
}

/// Overwrites the little-endian u64 at `offset`.
void PutU64(std::vector<uint8_t>* bytes, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

/// The hostile dimension values every header sweep draws from: the wrap
/// cases that used to crash ParseShareBlob, plus boundary neighbors.
const uint64_t kHostileDims[] = {0,
                                 1,
                                 2,
                                 5,
                                 (1ull << 31),
                                 (1ull << 32),
                                 (1ull << 32) + 1,
                                 (1ull << 33),
                                 (1ull << 62),
                                 (1ull << 63),
                                 UINT64_MAX - 1,
                                 UINT64_MAX};

// ---------------------------------------------------------------------------
// ParseShareBlob / CombineShareBlobs
// ---------------------------------------------------------------------------

TEST(ShareBlobFuzzTest, TruncationAtEveryPrefixYieldsStatusOrValid) {
  Rng rng(2024);
  const SharedRows rows = SampleRows(7, &rng);
  const std::vector<uint8_t> blob = SerializeShares(rows, 0);
  for (size_t len = 0; len <= blob.size(); ++len) {
    const std::vector<uint8_t> prefix(blob.begin(), blob.begin() + len);
    const Result<ShareBlob> parsed = ParseShareBlob(prefix);
    if (len == blob.size()) {
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->rows, 7u);
      EXPECT_EQ(parsed->width, kSrcWidth);
    } else {
      EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " parsed";
    }
  }
}

TEST(ShareBlobFuzzTest, SeededBitFlipsNeverCrash) {
  Rng rng(4242);
  const SharedRows rows = SampleRows(5, &rng);
  const std::vector<uint8_t> blob = SerializeShares(rows, 1);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> mutated = blob;
    // 1-4 random bit flips anywhere, header included.
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    const Result<ShareBlob> parsed = ParseShareBlob(mutated);
    if (parsed.ok()) {
      // A flip in the word section (or one that cancelled out) still parses
      // — then the parsed dimensions must be internally consistent.
      EXPECT_EQ(parsed->words.size(), parsed->width * parsed->rows);
    }
  }
}

TEST(ShareBlobFuzzTest, HostileDimensionHeaderSweepNeverCrashes) {
  Rng rng(7);
  const SharedRows rows = SampleRows(4, &rng);
  const std::vector<uint8_t> blob = SerializeShares(rows, 0);
  // Every (width, rows) pair from the hostile set, stamped over an
  // otherwise-valid blob: either the dimensions happen to match the payload
  // (the honest pair) or the parser must reject — never wrap, never
  // over-read, never allocate absurdly.
  for (uint64_t width : kHostileDims) {
    for (uint64_t rows_claim : kHostileDims) {
      std::vector<uint8_t> mutated = blob;
      PutU64(&mutated, 4, width);
      PutU64(&mutated, 12, rows_claim);
      const Result<ShareBlob> parsed = ParseShareBlob(mutated);
      const bool honest = width == kSrcWidth && rows_claim == 4;
      EXPECT_EQ(parsed.ok(), honest)
          << "width=" << width << " rows=" << rows_claim;
    }
  }
}

TEST(ShareBlobFuzzTest, RandomGarbageAlwaysRejected) {
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> garbage(rng.Uniform(256));
    for (uint8_t& byte : garbage) byte = static_cast<uint8_t>(rng.Next32());
    // Random bytes essentially never carry the magic; when they do, the
    // parse must still be internally consistent. Either way: no crash.
    const Result<ShareBlob> parsed = ParseShareBlob(garbage);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->words.size(), parsed->width * parsed->rows);
    }
  }
}

TEST(ShareBlobFuzzTest, CombineOnMutatedPairsNeverCrashes) {
  Rng rng(1234);
  const SharedRows rows = SampleRows(6, &rng);
  const std::vector<uint8_t> blob0 = SerializeShares(rows, 0);
  const std::vector<uint8_t> blob1 = SerializeShares(rows, 1);
  // Honest pair reassembles.
  ASSERT_TRUE(CombineShareBlobs(blob0, blob1).ok());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> m0 = blob0;
    std::vector<uint8_t> m1 = blob1;
    // Mutate one side, the other, or both: flips, truncations, hostile
    // dimension stamps.
    for (std::vector<uint8_t>* target : {&m0, &m1}) {
      switch (rng.Uniform(4)) {
        case 0:
          break;  // leave honest
        case 1:
          (*target)[rng.Uniform(target->size())] ^=
              static_cast<uint8_t>(1u << rng.Uniform(8));
          break;
        case 2:
          target->resize(rng.Uniform(target->size() + 1));
          break;
        default:
          if (target->size() >= 20) {
            PutU64(target, 4, kHostileDims[rng.Uniform(12)]);
            PutU64(target, 12, kHostileDims[rng.Uniform(12)]);
          }
          break;
      }
    }
    const Result<SharedRows> combined = CombineShareBlobs(m0, m1);
    if (combined.ok()) {
      EXPECT_EQ(combined->width(), kSrcWidth);
    }
  }
}

// ---------------------------------------------------------------------------
// DecodeUploadFrame
// ---------------------------------------------------------------------------

TEST(UploadFrameFuzzTest, TruncationAtEveryPrefixYieldsStatusOrValid) {
  Rng rng(55);
  const std::vector<uint8_t> frame = SampleFrameBytes(5, &rng);
  for (size_t len = 0; len <= frame.size(); ++len) {
    const std::vector<uint8_t> prefix(frame.begin(), frame.begin() + len);
    const Result<UploadFrame> parsed = DecodeUploadFrame(prefix);
    if (len == frame.size()) {
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->batch.size(), 5u);
    } else {
      EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " parsed";
    }
  }
}

TEST(UploadFrameFuzzTest, SeededBitFlipsNeverCrash) {
  Rng rng(777);
  const std::vector<uint8_t> frame = SampleFrameBytes(4, &rng);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> mutated = frame;
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    const Result<UploadFrame> parsed = DecodeUploadFrame(mutated);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->batch.width(), kSrcWidth);
    }
  }
}

TEST(UploadFrameFuzzTest, HostileDimensionHeaderSweepNeverCrashes) {
  Rng rng(31337);
  const std::vector<uint8_t> frame = SampleFrameBytes(3, &rng);
  // IUF layout: magic(3) + version(1) + owner_step(8) + width(8) + rows(8).
  for (uint64_t width : kHostileDims) {
    for (uint64_t rows_claim : kHostileDims) {
      std::vector<uint8_t> mutated = frame;
      PutU64(&mutated, 12, width);
      PutU64(&mutated, 20, rows_claim);
      const Result<UploadFrame> parsed = DecodeUploadFrame(mutated);
      const bool honest = width == kSrcWidth && rows_claim == 3;
      EXPECT_EQ(parsed.ok(), honest)
          << "width=" << width << " rows=" << rows_claim;
    }
  }
  // The arrivals count is a header too: stamp hostile values over it (it
  // sits right after the two share sections in an honest frame).
  const size_t arrivals_offset = 28 + 2 * (3 * kSrcWidth) * 4;
  for (uint64_t count : kHostileDims) {
    std::vector<uint8_t> mutated = frame;
    PutU64(&mutated, arrivals_offset, count);
    const Result<UploadFrame> parsed = DecodeUploadFrame(mutated);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->arrivals.size(), count);
    }
  }
}

TEST(UploadFrameFuzzTest, ZeroRowAstronomicWidthDoesNotAllocate) {
  // words = width * 0 = 0 sails through every payload-fit check, so a
  // 36-byte frame claiming width = 2^62 must not translate into width-sized
  // scratch allocations (it used to allocate two 2^62-word vectors). The
  // frame itself is internally consistent — zero rows, zero payload — so it
  // parses; the engine's own width check rejects it after decode.
  std::vector<uint8_t> bytes(36, 0);  // owner_step = rows = num_arrivals = 0
  bytes[0] = 'I';
  bytes[1] = 'U';
  bytes[2] = 'F';
  bytes[3] = 1;
  PutU64(&bytes, 12, 1ull << 62);  // width
  const Result<UploadFrame> parsed = DecodeUploadFrame(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->batch.size(), 0u);

  // Same shape through CombineShareBlobs: zero-row blobs claiming huge
  // widths combine without width-sized allocations.
  std::vector<uint8_t> blob(20, 0);
  blob[0] = 'I';
  blob[1] = 'S';
  blob[2] = 'R';
  blob[3] = '1';
  PutU64(&blob, 4, 1ull << 62);  // width, rows = 0, empty payload
  const Result<SharedRows> combined = CombineShareBlobs(blob, blob);
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->size(), 0u);
}

TEST(UploadFrameFuzzTest, RandomGarbageAndMultiMutationNeverCrash) {
  Rng rng(60606);
  const std::vector<uint8_t> frame = SampleFrameBytes(6, &rng);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> mutated;
    if (rng.Uniform(2) == 0) {
      // Pure garbage of random length.
      mutated.resize(rng.Uniform(512));
      for (uint8_t& byte : mutated) byte = static_cast<uint8_t>(rng.Next32());
    } else {
      // Valid frame, then a random pipeline of truncation + flips + header
      // stamps, in random order.
      mutated = frame;
      const size_t ops = 1 + rng.Uniform(3);
      for (size_t op = 0; op < ops && !mutated.empty(); ++op) {
        switch (rng.Uniform(3)) {
          case 0:
            mutated.resize(rng.Uniform(mutated.size() + 1));
            break;
          case 1:
            mutated[rng.Uniform(mutated.size())] ^=
                static_cast<uint8_t>(1u << rng.Uniform(8));
            break;
          default:
            if (mutated.size() >= 28) {
              PutU64(&mutated, 12 + 8 * rng.Uniform(2),
                     kHostileDims[rng.Uniform(12)]);
            }
            break;
        }
      }
    }
    const Result<UploadFrame> parsed = DecodeUploadFrame(mutated);
    if (parsed.ok()) {
      EXPECT_EQ(parsed->batch.width(), kSrcWidth);
    }
  }
}

// ---------------------------------------------------------------------------
// FrameAssembler (the envelope decoder in front of DecodeUploadFrame)
// ---------------------------------------------------------------------------

TEST(FrameAssemblerFuzzTest, MutatedStreamsInRandomChunksNeverCrash) {
  Rng rng(808);
  for (int iter = 0; iter < 800; ++iter) {
    // An honest stream of hello + a few frames...
    std::vector<uint8_t> stream = EncodeHello(static_cast<uint32_t>(
        rng.Uniform(4)));
    const size_t frames = 1 + rng.Uniform(3);
    for (size_t i = 0; i < frames; ++i) {
      AppendEnvelope(&stream, i + 1, SampleFrameBytes(rng.Uniform(3), &rng));
    }
    // ... mutated: flips and/or truncation.
    if (rng.Uniform(4) != 0) {
      const size_t flips = 1 + rng.Uniform(4);
      for (size_t f = 0; f < flips; ++f) {
        stream[rng.Uniform(stream.size())] ^=
            static_cast<uint8_t>(1u << rng.Uniform(8));
      }
    }
    if (rng.Uniform(3) == 0) {
      stream.resize(rng.Uniform(stream.size() + 1));
    }
    // Fed in random-sized chunks, drained after every feed: the assembler
    // must always either produce frames or poison — and once poisoned stay
    // poisoned — regardless of chunk boundaries.
    FrameAssembler assembler(1 << 20);
    uint32_t channel_id = 0;
    bool hello_done = false;
    bool poisoned = false;
    size_t fed = 0;
    while (fed < stream.size()) {
      const size_t chunk = 1 + rng.Uniform(64);
      const size_t n = chunk < stream.size() - fed ? chunk
                                                   : stream.size() - fed;
      assembler.Feed(stream.data() + fed, n);
      fed += n;
      if (!hello_done) {
        const Result<bool> hello = assembler.TakeHello(&channel_id);
        if (!hello.ok()) {
          poisoned = true;
          break;
        }
        hello_done = *hello;
        if (!hello_done) continue;
      }
      for (;;) {
        WireFrame frame;
        const Result<bool> got = assembler.TakeFrame(&frame);
        if (!got.ok()) {
          poisoned = true;
          break;
        }
        if (!*got) break;
        // Every extracted frame respects the envelope invariants.
        EXPECT_GT(frame.payload.size(), 0u);
        EXPECT_LE(frame.payload.size(), 1u << 20);
        EXPECT_EQ(frame.seq, assembler.last_seq());
      }
      if (poisoned) break;
    }
    if (poisoned) {
      // Poison is sticky through further feeds.
      const uint8_t more = 0xAB;
      assembler.Feed(&more, 1);
      WireFrame frame;
      EXPECT_FALSE(assembler.TakeFrame(&frame).ok());
      EXPECT_TRUE(assembler.poisoned());
    }
  }
}

// ---------------------------------------------------------------------------
// ICKP snapshot decoder (CheckpointReader + Engine::RestoreCheckpoint)
// ---------------------------------------------------------------------------

/// A realistic nested ICKP blob: a small engine run's full snapshot.
std::vector<uint8_t> SampleEngineSnapshot(const IncShrinkConfig& cfg) {
  TpcDsParams p;
  p.steps = 4;
  p.seed = 5;
  const GeneratedWorkload w = GenerateTpcDs(p);
  SynchronousDeployment d(cfg);
  INCSHRINK_CHECK(d.Run(w.t1, w.t2).ok());
  Result<std::vector<uint8_t>> blob = d.engine().SaveCheckpoint();
  INCSHRINK_CHECK(blob.ok());
  return *blob;
}

IncShrinkConfig SnapshotFuzzConfig() {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 2;
  cfg.flush_interval = 3;
  cfg.flush_size = 4;
  return cfg;
}

/// Recomputes the trailing FNV-1a64 after a hostile in-body edit, so the
/// mutation models an adversarial forgery rather than a disk error — the
/// structural checks, not the checksum, must contain it.
void FixupChecksum(std::vector<uint8_t>* blob) {
  INCSHRINK_CHECK(blob->size() >= 13);
  PutU64(blob, blob->size() - 8, Fnv1a64(blob->data(), blob->size() - 8));
}

TEST(IckpFuzzTest, TruncationAtEveryPrefixIsRejected) {
  const IncShrinkConfig cfg = SnapshotFuzzConfig();
  const std::vector<uint8_t> blob = SampleEngineSnapshot(cfg);
  Engine victim(cfg);
  for (size_t len = 0; len < blob.size(); ++len) {
    const std::vector<uint8_t> prefix(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(CheckpointReader::Open(prefix).ok())
        << "truncation to " << len << " opened";
    EXPECT_FALSE(victim.RestoreCheckpoint(prefix).ok())
        << "truncation to " << len << " restored";
  }
  EXPECT_TRUE(victim.RestoreCheckpoint(blob).ok());
}

TEST(IckpFuzzTest, SeededBitFlipsNeverCrashOrLoad) {
  const IncShrinkConfig cfg = SnapshotFuzzConfig();
  const std::vector<uint8_t> blob = SampleEngineSnapshot(cfg);
  Engine victim(cfg);
  Rng rng(515151);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> mutated = blob;
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    // The checksum trailer turns every flip into a clean rejection.
    EXPECT_FALSE(victim.RestoreCheckpoint(mutated).ok()) << "iter " << iter;
  }
}

TEST(IckpFuzzTest, HostileHeadersBehindValidChecksumsAreContained) {
  // An adversary who can re-stamp the checksum still cannot get a hostile
  // dimension header through: every count/length is validated against the
  // bytes actually present before any allocation or load happens.
  const IncShrinkConfig cfg = SnapshotFuzzConfig();
  const std::vector<uint8_t> blob = SampleEngineSnapshot(cfg);
  Engine victim(cfg);

  // The first section's length field lives at a fixed offset: magic+version
  // (5) + tag (4) = 9. Oversized claims over-run the body; undersized ones
  // leave unread bytes. Both must bounce.
  for (uint64_t dim : kHostileDims) {
    std::vector<uint8_t> mutated = blob;
    PutU64(&mutated, 9, dim);
    FixupChecksum(&mutated);
    const bool honest = dim == 8;  // 'CFG ' holds exactly one u64
    EXPECT_EQ(victim.RestoreCheckpoint(mutated).ok(), honest)
        << "section len " << dim;
  }

  // A forged Bytes length prefix: a hand-built container whose single
  // section claims a payload of up to 2^63 bytes. The reader must reject
  // before allocating (ASan/OOM would catch the alternative).
  for (uint64_t dim : kHostileDims) {
    CheckpointWriter w;
    w.BeginSection(CheckpointTag('F', 'U', 'Z', 'Z'));
    w.Bytes({1, 2, 3});
    w.EndSection();
    std::vector<uint8_t> crafted = w.Finish();
    // Layout: header(5) | tag(4) | section len(8) | bytes len(8) | payload.
    PutU64(&crafted, 17, dim);
    FixupChecksum(&crafted);
    Result<CheckpointReader> r = CheckpointReader::Open(crafted);
    ASSERT_TRUE(r.ok());
    r->BeginSection(CheckpointTag('F', 'U', 'Z', 'Z'));
    const std::vector<uint8_t> payload = r->Bytes();
    if (dim == 3) {
      EXPECT_TRUE(r->ok());
      EXPECT_EQ(payload.size(), 3u);
    } else if (dim < 3) {
      // An undersized claim reads a shorter prefix; the unread trailing
      // bytes are a structural error the moment the section closes.
      EXPECT_TRUE(r->ok());
      EXPECT_EQ(payload.size(), dim);
      r->EndSection();
      EXPECT_FALSE(r->ok()) << "bytes len " << dim;
    } else {
      // An oversized claim is caught against the bytes remaining BEFORE
      // any allocation happens.
      EXPECT_FALSE(r->ok()) << "bytes len " << dim;
      EXPECT_TRUE(payload.empty());
      EXPECT_FALSE(r->ExpectOk("fuzz").ok());
      EXPECT_FALSE(r->Finish().ok());
    }
  }

  // Wrong tag and unread trailing bytes are structural errors too.
  {
    CheckpointWriter w;
    w.BeginSection(CheckpointTag('A', 'B', 'C', 'D'));
    w.U64(7);
    w.EndSection();
    const std::vector<uint8_t> crafted = w.Finish();
    Result<CheckpointReader> r = CheckpointReader::Open(crafted);
    ASSERT_TRUE(r.ok());
    r->BeginSection(CheckpointTag('X', 'Y', 'Z', 'W'));
    EXPECT_FALSE(r->ok());
  }
  {
    CheckpointWriter w;
    w.BeginSection(CheckpointTag('A', 'B', 'C', 'D'));
    w.U64(7);
    w.U64(8);
    w.EndSection();
    const std::vector<uint8_t> crafted = w.Finish();
    Result<CheckpointReader> r = CheckpointReader::Open(crafted);
    ASSERT_TRUE(r.ok());
    r->BeginSection(CheckpointTag('A', 'B', 'C', 'D'));
    EXPECT_EQ(r->U64(), 7u);
    r->EndSection();  // 8 bytes unread -> structural failure
    EXPECT_FALSE(r->ok());
  }
}

TEST(IckpFuzzTest, RandomGarbageNeverOpens) {
  Rng rng(616161);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> garbage(rng.Uniform(512));
    for (uint8_t& byte : garbage) byte = static_cast<uint8_t>(rng.Next32());
    // Random bytes carry neither the magic nor a matching checksum.
    EXPECT_FALSE(CheckpointReader::Open(garbage).ok());
  }
}

TEST(IckpFuzzTest, RepeatedFailedRestoresLeaveEngineUsable) {
  const IncShrinkConfig cfg = SnapshotFuzzConfig();
  const std::vector<uint8_t> blob = SampleEngineSnapshot(cfg);
  Engine victim(cfg);
  Rng rng(717171);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> mutated = blob;
    switch (rng.Uniform(3)) {
      case 0:
        mutated.resize(rng.Uniform(mutated.size()));
        break;
      case 1:
        mutated[rng.Uniform(mutated.size())] ^=
            static_cast<uint8_t>(1u << rng.Uniform(8));
        break;
      default:
        PutU64(&mutated, 9, kHostileDims[rng.Uniform(12)]);
        FixupChecksum(&mutated);
        break;
    }
    EXPECT_FALSE(victim.RestoreCheckpoint(mutated).ok());
  }
  // Four hundred bounced forgeries later, the pristine snapshot loads and
  // round-trips bit for bit.
  ASSERT_TRUE(victim.RestoreCheckpoint(blob).ok());
  Result<std::vector<uint8_t>> again = victim.SaveCheckpoint();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(blob, *again);
}

}  // namespace
}  // namespace incshrink
