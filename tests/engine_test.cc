#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

/// A deterministic mini-workload: every step `pairs` sales arrive and are
/// returned `delay` steps later, all within window and batch capacity, so
/// transformation loss is zero and errors come only from the update policy.
struct MiniStream {
  std::vector<std::vector<LogicalRecord>> t1;
  std::vector<std::vector<LogicalRecord>> t2;
};

MiniStream MakeMiniStream(uint64_t steps, uint32_t pairs, uint32_t delay) {
  MiniStream s;
  s.t1.resize(steps);
  s.t2.resize(steps);
  Word rid = 1, key = 1;
  for (uint64_t t = 0; t < steps; ++t) {
    for (uint32_t i = 0; i < pairs; ++i) {
      const Word k = key++;
      s.t1[t].push_back({t + 1, rid++, k, static_cast<Word>(t + 1), 0});
      if (t + delay < steps) {
        s.t2[t + delay].push_back(
            {t + delay + 1, rid++, k, static_cast<Word>(t + 1 + delay), 0});
      }
    }
  }
  return s;
}

IncShrinkConfig MiniConfig(Strategy strategy) {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 1;
  cfg.budget_b = 6;
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.window_steps = 5;
  cfg.strategy = strategy;
  cfg.timer_T = 4;
  cfg.ant_theta = 8;
  cfg.flush_interval = 20;
  cfg.flush_size = 20;
  cfg.upload_rows_t1 = 3;
  cfg.upload_rows_t2 = 3;
  cfg.seed = 7;
  return cfg;
}

RunSummary RunMini(Strategy strategy, uint64_t steps = 40) {
  const MiniStream s = MakeMiniStream(steps, 2, 2);
  SynchronousDeployment deployment(MiniConfig(strategy));
  const Status st = deployment.Run(s.t1, s.t2);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return deployment.Summary();
}

TEST(EngineTest, EpHasZeroErrorOnLossFreeStream) {
  const RunSummary s = RunMini(Strategy::kEp);
  EXPECT_DOUBLE_EQ(s.l1_error.max(), 0.0);
  EXPECT_GT(s.final_view_rows, 0u);
}

TEST(EngineTest, NmHasZeroErrorOnLossFreeStream) {
  const RunSummary s = RunMini(Strategy::kNm);
  EXPECT_DOUBLE_EQ(s.l1_error.max(), 0.0);
  EXPECT_EQ(s.final_view_rows, 0u);  // no materialized view at all
  EXPECT_EQ(s.updates, 0u);
}

TEST(EngineTest, OtmErrorGrowsToOne) {
  const RunSummary s = RunMini(Strategy::kOtm);
  // The one-time view never receives later pairs; relative error approaches
  // 1 as the logical answer grows.
  EXPECT_GT(s.l1_error.max(), 50.0);
  EXPECT_GT(s.relative_error.mean(), 0.5);
  EXPECT_EQ(s.updates, 1u);
}

TEST(EngineTest, DpTimerTracksTruthWithinNoise) {
  const RunSummary s = RunMini(Strategy::kDpTimer);
  EXPECT_GT(s.updates, 5u);
  // Deferred data + Laplace noise keep the error bounded and small compared
  // to the OTM baseline (final truth ~76 pairs).
  EXPECT_LT(s.l1_error.mean(), 25.0);
  EXPECT_LT(s.relative_error.mean(), 0.7);
}

TEST(EngineTest, DpAntTracksTruthWithinNoise) {
  const RunSummary s = RunMini(Strategy::kDpAnt);
  EXPECT_GT(s.updates, 3u);
  EXPECT_LT(s.l1_error.mean(), 25.0);
}

TEST(EngineTest, ViewSizeOrderingMatchesPaper) {
  // EP materializes every padded batch; DP shrinks it; OTM never grows.
  const RunSummary ep = RunMini(Strategy::kEp);
  const RunSummary dp = RunMini(Strategy::kDpTimer);
  const RunSummary otm = RunMini(Strategy::kOtm);
  EXPECT_GT(ep.final_view_rows, dp.final_view_rows);
  EXPECT_GT(dp.final_view_rows, otm.final_view_rows);
}

TEST(EngineTest, QetOrderingMatchesPaper) {
  // NM recomputes the full join per query -> slowest; EP scans a bloated
  // view; DP scans a small view.
  const RunSummary nm = RunMini(Strategy::kNm);
  const RunSummary ep = RunMini(Strategy::kEp);
  const RunSummary dp = RunMini(Strategy::kDpTimer);
  EXPECT_GT(nm.qet_seconds.mean(), ep.qet_seconds.mean());
  EXPECT_GT(ep.qet_seconds.mean(), dp.qet_seconds.mean());
}

TEST(EngineTest, TranscriptShapesPerStrategy) {
  const MiniStream s = MakeMiniStream(12, 1, 1);
  SynchronousDeployment dp(MiniConfig(Strategy::kDpTimer));
  ASSERT_TRUE(dp.Run(s.t1, s.t2).ok());
  int syncs = 0, uploads = 0, transforms = 0;
  for (const auto& e : dp.transcript()) {
    switch (e.kind) {
      case TranscriptEvent::Kind::kSync:
        ++syncs;
        break;
      case TranscriptEvent::Kind::kUpload:
        ++uploads;
        break;
      case TranscriptEvent::Kind::kTransformOut:
        ++transforms;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(uploads, 12);
  EXPECT_EQ(transforms, 12);
  EXPECT_EQ(syncs, 3);  // T = 4 over 12 steps

  SynchronousDeployment nm(MiniConfig(Strategy::kNm));
  ASSERT_TRUE(nm.Run(s.t1, s.t2).ok());
  for (const auto& e : nm.transcript()) {
    EXPECT_EQ(e.kind, TranscriptEvent::Kind::kUpload);
  }
}

TEST(EngineTest, StepMetricsAreConsistent) {
  const MiniStream s = MakeMiniStream(20, 2, 2);
  SynchronousDeployment engine(MiniConfig(Strategy::kDpTimer));
  ASSERT_TRUE(engine.Run(s.t1, s.t2).ok());
  const auto& steps = engine.step_metrics();
  ASSERT_EQ(steps.size(), 20u);
  uint64_t last_true = 0;
  for (const auto& m : steps) {
    EXPECT_GE(m.true_count, last_true);  // growing database
    last_true = m.true_count;
    EXPECT_GE(m.l1_error, 0.0);
    EXPECT_GT(m.transform_seconds, 0.0);
    EXPECT_GT(m.query_seconds, 0.0);
    if (m.synced) {
      EXPECT_GT(m.shrink_seconds, 0.0);
    }
  }
  const RunSummary sum = engine.Summary();
  EXPECT_EQ(sum.steps, 20u);
  EXPECT_GT(sum.total_mpc_seconds, 0.0);
  EXPECT_GT(sum.total_query_seconds, 0.0);
}

TEST(EngineTest, OverflowQueueDelaysUploadsWithoutLosingRecords) {
  // Burst of 9 arrivals into batches of 3: drains over 3 steps.
  IncShrinkConfig cfg = MiniConfig(Strategy::kEp);
  SynchronousDeployment deployment(cfg);
  std::vector<LogicalRecord> burst;
  Word rid = 1;
  for (int i = 0; i < 9; ++i)
    burst.push_back({1, rid++, static_cast<Word>(100 + i), 1, 0});
  ASSERT_TRUE(deployment.Step(burst, {}).ok());
  EXPECT_EQ(deployment.engine().store1().total_rows(), 3u);
  EXPECT_EQ(deployment.owner1().pending(), 6u);  // queued at the owner
  ASSERT_TRUE(deployment.Step({}, {}).ok());
  ASSERT_TRUE(deployment.Step({}, {}).ok());
  EXPECT_EQ(deployment.engine().store1().total_rows(), 9u);
  EXPECT_EQ(deployment.owner1().pending(), 0u);
}

TEST(EngineTest, PublicT2UploadsUnpadded) {
  IncShrinkConfig cfg = MiniConfig(Strategy::kDpTimer);
  cfg.t2_is_public = true;
  cfg.join.cap_t2 = false;
  SynchronousDeployment deployment(cfg);
  ASSERT_TRUE(deployment.Step({}, {{1, 1, 5, 1, 0}, {1, 2, 6, 1, 0}}).ok());
  EXPECT_EQ(deployment.engine().store2().batch(0).size(),
            2u);  // exactly the arrivals
  ASSERT_TRUE(deployment.Step({}, {}).ok());
  EXPECT_EQ(deployment.engine().store2().batch(1).size(), 0u);
}

TEST(EngineTest, InvalidConfigRejected) {
  IncShrinkConfig cfg = MiniConfig(Strategy::kDpTimer);
  cfg.omega = 5;  // != join.omega
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = MiniConfig(Strategy::kDpTimer);
  cfg.eps = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = MiniConfig(Strategy::kDpTimer);
  cfg.budget_b = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = MiniConfig(Strategy::kDpTimer);
  cfg.max_batches_per_step = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = MiniConfig(Strategy::kDpTimer);
  cfg.upload_channel_capacity = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(EngineTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kDpTimer), "DP-Timer");
  EXPECT_STREQ(StrategyName(Strategy::kDpAnt), "DP-ANT");
  EXPECT_STREQ(StrategyName(Strategy::kEp), "EP");
  EXPECT_STREQ(StrategyName(Strategy::kOtm), "OTM");
  EXPECT_STREQ(StrategyName(Strategy::kNm), "NM");
}

}  // namespace
}  // namespace incshrink
