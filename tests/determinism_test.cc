// Deterministic-seed audit (build-system bring-up satellite).
//
// Every randomized component of the repository must draw exclusively from
// the seedable `Rng` (src/common/rng.h): re-running any pipeline with the
// same seed must reproduce the *identical* transcript, bit for bit. A single
// hidden OS-entropy draw or time-based seed anywhere in the stack would make
// these comparisons flake, so this suite doubles as a regression tripwire
// against nondeterminism sneaking into future PRs (the static half of the
// audit is tools/check_no_hidden_entropy.sh).

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/dp/laplace.h"
#include "src/dp/mechanisms.h"
#include "src/dp/svt.h"
#include "src/dp/transcript.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/sort.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Rng core: identical streams across every sampler
// ---------------------------------------------------------------------------

TEST(DeterminismTest, RngStreamsIdenticalForSameSeed) {
  for (uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    Rng a(seed), b(seed);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_EQ(a.Next64(), b.Next64());
    }
    // Exercise every sampler; any drift desynchronizes the streams and the
    // trailing raw-word comparison catches it.
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(a.Uniform(97), b.Uniform(97));
      EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
      EXPECT_DOUBLE_EQ(a.NextDoubleOpen(), b.NextDoubleOpen());
      EXPECT_DOUBLE_EQ(a.Exponential(3.0), b.Exponential(3.0));
      EXPECT_DOUBLE_EQ(a.Laplace(2.0), b.Laplace(2.0));
      EXPECT_EQ(a.Poisson(6.5), b.Poisson(6.5));
      EXPECT_DOUBLE_EQ(a.Normal(0.0, 1.0), b.Normal(0.0, 1.0));
      EXPECT_EQ(a.Bernoulli(0.3), b.Bernoulli(0.3));
    }
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(DeterminismTest, RngStreamsDivergeForDifferentSeeds) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 4);  // distinct seeds must yield unrelated streams
}

// ---------------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------------

void ExpectSameWorkload(const GeneratedWorkload& x, const GeneratedWorkload& y) {
  ASSERT_EQ(x.steps(), y.steps());
  EXPECT_EQ(x.total_t1, y.total_t1);
  EXPECT_EQ(x.total_t2, y.total_t2);
  EXPECT_EQ(x.total_view_entries, y.total_view_entries);
  for (size_t t = 0; t < x.steps(); ++t) {
    ASSERT_EQ(x.t1[t].size(), y.t1[t].size()) << "step " << t;
    ASSERT_EQ(x.t2[t].size(), y.t2[t].size()) << "step " << t;
    for (size_t i = 0; i < x.t1[t].size(); ++i) {
      EXPECT_EQ(x.t1[t][i].rid, y.t1[t][i].rid);
      EXPECT_EQ(x.t1[t][i].key, y.t1[t][i].key);
      EXPECT_EQ(x.t1[t][i].date, y.t1[t][i].date);
      EXPECT_EQ(x.t1[t][i].payload, y.t1[t][i].payload);
    }
    for (size_t i = 0; i < x.t2[t].size(); ++i) {
      EXPECT_EQ(x.t2[t][i].rid, y.t2[t][i].rid);
      EXPECT_EQ(x.t2[t][i].key, y.t2[t][i].key);
      EXPECT_EQ(x.t2[t][i].date, y.t2[t][i].date);
      EXPECT_EQ(x.t2[t][i].payload, y.t2[t][i].payload);
    }
  }
}

TEST(DeterminismTest, TpcDsGeneratorReproducible) {
  TpcDsParams params;
  params.steps = 80;
  params.seed = 123;
  ExpectSameWorkload(GenerateTpcDs(params), GenerateTpcDs(params));

  TpcDsParams bursty = params;
  bursty.bursty = true;
  ExpectSameWorkload(GenerateTpcDs(bursty), GenerateTpcDs(bursty));
}

TEST(DeterminismTest, CpdbGeneratorReproducible) {
  CpdbParams params;
  params.steps = 60;
  params.seed = 321;
  ExpectSameWorkload(GenerateCpdb(params), GenerateCpdb(params));
}

// ---------------------------------------------------------------------------
// DP mechanisms
// ---------------------------------------------------------------------------

TEST(DeterminismTest, LaplaceSamplerReproducible) {
  Rng a(99), b(99);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_DOUBLE_EQ(SampleLaplace(&a, 4.0), SampleLaplace(&b, 4.0));
  }
}

TEST(DeterminismTest, SvtTranscriptReproducible) {
  Rng ra(7), rb(7), stream_rng(11);
  NumericAboveNoisyThreshold sa(1.5, 1.0, 30.0, &ra);
  NumericAboveNoisyThreshold sb(1.5, 1.0, 30.0, &rb);
  double count = 0;
  for (int t = 0; t < 3000; ++t) {
    count += stream_rng.Poisson(2.0);
    double rel_a = 0, rel_b = 0;
    const bool fired_a = sa.Observe(count, &rel_a);
    const bool fired_b = sb.Observe(count, &rel_b);
    ASSERT_EQ(fired_a, fired_b) << "step " << t;
    if (fired_a) {
      EXPECT_DOUBLE_EQ(rel_a, rel_b);
      count = 0;
    }
    EXPECT_DOUBLE_EQ(sa.noisy_threshold(), sb.noisy_threshold());
  }
  EXPECT_EQ(sa.releases(), sb.releases());
}

template <typename Mechanism, typename... Args>
std::vector<LeakageRelease> RunMechTwiceHelper(uint64_t seed,
                                               const std::vector<uint32_t>& counts,
                                               Args... args) {
  Rng rng(seed);
  Mechanism mech(args..., &rng);
  return RunLeakageMechanism(&mech, counts);
}

TEST(DeterminismTest, LeakageMechanismsReproducible) {
  Rng stream_rng(5);
  std::vector<uint32_t> counts(2000);
  for (auto& c : counts) c = static_cast<uint32_t>(stream_rng.Poisson(2.7));

  const auto timer_a = RunMechTwiceHelper<TimerLeakageMechanism>(
      17, counts, 1.5, 10.0, uint64_t{10});
  const auto timer_b = RunMechTwiceHelper<TimerLeakageMechanism>(
      17, counts, 1.5, 10.0, uint64_t{10});
  ASSERT_EQ(timer_a.size(), timer_b.size());
  for (size_t i = 0; i < timer_a.size(); ++i) {
    EXPECT_EQ(timer_a[i].t, timer_b[i].t);
    EXPECT_EQ(timer_a[i].size, timer_b[i].size);
    EXPECT_EQ(timer_a[i].fired, timer_b[i].fired);
  }

  const auto ant_a =
      RunMechTwiceHelper<AntLeakageMechanism>(19, counts, 1.5, 10.0, 30.0);
  const auto ant_b =
      RunMechTwiceHelper<AntLeakageMechanism>(19, counts, 1.5, 10.0, 30.0);
  ASSERT_EQ(ant_a.size(), ant_b.size());
  for (size_t i = 0; i < ant_a.size(); ++i) {
    EXPECT_EQ(ant_a[i].t, ant_b[i].t);
    EXPECT_EQ(ant_a[i].size, ant_b[i].size);
    EXPECT_EQ(ant_a[i].fired, ant_b[i].fired);
  }
}

// ---------------------------------------------------------------------------
// Oblivious layer: identical share streams and cost traces
// ---------------------------------------------------------------------------

TEST(DeterminismTest, ObliviousSortSharesReproducible) {
  auto run = [] {
    Party s0(0, 100), s1(1, 200);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(300);
    SharedRows rows(3);
    for (int i = 0; i < 64; ++i) {
      rows.AppendSecretRow({rng.Next32() % 40, rng.Next32(), rng.Next32()},
                           &rng);
    }
    ObliviousSort(&proto, &rows, 0, true);
    std::vector<Word> raw;
    for (size_t i = 0; i < rows.size(); ++i) {
      raw.push_back(rows.RecoverAt(i, 0));
      raw.push_back(rows.RecoverAt(i, 1));
    }
    raw.push_back(static_cast<Word>(proto.stats().and_gates));
    raw.push_back(static_cast<Word>(proto.stats().bytes));
    return raw;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Full engine: the observable transcript is a pure function of the seed
// ---------------------------------------------------------------------------

class EngineDeterminismTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(EngineDeterminismTest, TranscriptAndMetricsReproducible) {
  TpcDsParams wparams;
  wparams.steps = 50;
  wparams.seed = 77;
  const GeneratedWorkload workload = GenerateTpcDs(wparams);

  IncShrinkConfig config = DefaultTpcDsConfig();
  config.strategy = GetParam();
  config.seed = 4242;
  config.flush_interval = 20;  // exercise flushes inside the short stream

  SynchronousDeployment d1(config);
  ASSERT_TRUE(d1.Run(workload.t1, workload.t2).ok());
  SynchronousDeployment d2(config);
  ASSERT_TRUE(d2.Run(workload.t1, workload.t2).ok());
  const Engine& e1 = d1.engine();
  const Engine& e2 = d2.engine();

  // Transcript: exactly equal, event by event.
  ASSERT_EQ(e1.transcript().size(), e2.transcript().size());
  for (size_t i = 0; i < e1.transcript().size(); ++i) {
    EXPECT_EQ(e1.transcript()[i], e2.transcript()[i])
        << "event " << i << " kind "
        << TranscriptKindName(e1.transcript()[i].kind);
  }

  // DP releases: exactly equal.
  ASSERT_EQ(e1.releases().size(), e2.releases().size());
  for (size_t i = 0; i < e1.releases().size(); ++i) {
    EXPECT_EQ(e1.releases()[i].t, e2.releases()[i].t);
    EXPECT_EQ(e1.releases()[i].size, e2.releases()[i].size);
    EXPECT_EQ(e1.releases()[i].fired, e2.releases()[i].fired);
  }

  // Step metrics: answers, truth and sizes all identical.
  ASSERT_EQ(e1.step_metrics().size(), e2.step_metrics().size());
  for (size_t i = 0; i < e1.step_metrics().size(); ++i) {
    const StepMetrics& m1 = e1.step_metrics()[i];
    const StepMetrics& m2 = e2.step_metrics()[i];
    EXPECT_EQ(m1.true_count, m2.true_count) << "step " << i;
    EXPECT_EQ(m1.view_answer, m2.view_answer) << "step " << i;
    EXPECT_EQ(m1.view_rows, m2.view_rows) << "step " << i;
    EXPECT_EQ(m1.cache_rows, m2.cache_rows) << "step " << i;
    EXPECT_EQ(m1.synced, m2.synced) << "step " << i;
    EXPECT_EQ(m1.sync_rows, m2.sync_rows) << "step " << i;
    EXPECT_EQ(m1.flushed, m2.flushed) << "step " << i;
  }

  // Simulated MPC cost is a deterministic function of the trace.
  EXPECT_DOUBLE_EQ(e1.Summary().total_mpc_seconds,
                   e2.Summary().total_mpc_seconds);
}

INSTANTIATE_TEST_SUITE_P(Strategies, EngineDeterminismTest,
                         ::testing::Values(Strategy::kDpTimer, Strategy::kDpAnt,
                                           Strategy::kEp));

}  // namespace
}  // namespace incshrink
