#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"
#include "src/relational/query.h"

namespace incshrink {
namespace {

class ObliviousTest : public ::testing::Test {
 protected:
  ObliviousTest()
      : s0_(0, 11), s1_(1, 22), proto_(&s0_, &s1_, CostModel::EmpLikeLan()) {}
  Party s0_;
  Party s1_;
  Protocol2PC proto_;
  Rng rng_{33};
};

// ---------------------------------------------------------------------------
// Oblivious sort
// ---------------------------------------------------------------------------

class ObliviousSortSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ObliviousSortSizeTest, SortsArbitraryLengths) {
  const size_t n = GetParam();
  Party s0(0, n + 1), s1(1, n + 2);
  Protocol2PC proto(&s0, &s1, CostModel::Free());
  Rng rng(n + 3);

  SharedRows rows(2);
  std::vector<Word> keys;
  for (size_t i = 0; i < n; ++i) {
    const Word k = rng.Next32() % 1000;
    keys.push_back(k);
    rows.AppendSecretRow({k, static_cast<Word>(i)}, &rng);
  }
  ObliviousSort(&proto, &rows, 0, /*ascending=*/true);
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(rows.RecoverAt(i, 0), keys[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ObliviousSortSizeTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 8, 15, 16, 17,
                                           31, 33, 64, 100, 127, 255, 1000));

TEST_F(ObliviousTest, SortDescending) {
  SharedRows rows(1);
  for (Word k : {5u, 1u, 9u, 3u}) rows.AppendSecretRow({k}, &rng_);
  ObliviousSort(&proto_, &rows, 0, /*ascending=*/false);
  EXPECT_EQ(rows.RecoverAt(0, 0), 9u);
  EXPECT_EQ(rows.RecoverAt(3, 0), 1u);
}

TEST_F(ObliviousTest, SortMovesWholeRows) {
  SharedRows rows(3);
  rows.AppendSecretRow({3, 300, 301}, &rng_);
  rows.AppendSecretRow({1, 100, 101}, &rng_);
  rows.AppendSecretRow({2, 200, 201}, &rng_);
  ObliviousSort(&proto_, &rows, 0, true);
  EXPECT_EQ(rows.RecoverRow(0), (std::vector<Word>{1, 100, 101}));
  EXPECT_EQ(rows.RecoverRow(1), (std::vector<Word>{2, 200, 201}));
  EXPECT_EQ(rows.RecoverRow(2), (std::vector<Word>{3, 300, 301}));
}

TEST(SortNetworkTest, CompareExchangeCountIsDataIndependentFormula) {
  // n log^2 n / 4 asymptotics, exact counts fixed per n.
  EXPECT_EQ(SortNetworkCompareExchanges(0), 0u);
  EXPECT_EQ(SortNetworkCompareExchanges(1), 0u);
  EXPECT_EQ(SortNetworkCompareExchanges(2), 1u);
  const uint64_t c1000 = SortNetworkCompareExchanges(1000);
  EXPECT_GT(c1000, 1000u);           // superlinear
  EXPECT_LT(c1000, 1000u * 100u);    // subquadratic
}

TEST(SortObliviousnessTest, GateTraceIndependentOfData) {
  // The defining property: two inputs of the same public size produce the
  // exact same circuit statistics.
  CircuitStats traces[2];
  for (int variant = 0; variant < 2; ++variant) {
    Party s0(0, 1), s1(1, 2);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    Rng rng(50 + variant * 1000);
    SharedRows rows(4);
    for (size_t i = 0; i < 97; ++i) {
      rows.AppendSecretRow(
          {rng.Next32(), rng.Next32(), rng.Next32(), rng.Next32()}, &rng);
    }
    const CircuitStats before = proto.Snapshot();
    ObliviousSort(&proto, &rows, 0, true);
    traces[variant] = proto.StatsSince(before);
  }
  EXPECT_EQ(traces[0].and_gates, traces[1].and_gates);
  EXPECT_EQ(traces[0].xor_gates, traces[1].xor_gates);
  EXPECT_EQ(traces[0].bytes, traces[1].bytes);
  EXPECT_EQ(traces[0].rounds, traces[1].rounds);
}

// ---------------------------------------------------------------------------
// Oblivious selection / counting (Appendix A.1.1)
// ---------------------------------------------------------------------------

SharedRows MakeFlaggedRows(Rng* rng, const std::vector<Word>& values,
                           const std::vector<Word>& flags) {
  SharedRows rows(2);
  for (size_t i = 0; i < values.size(); ++i) {
    rows.AppendSecretRow({flags[i], values[i]}, rng);
  }
  return rows;
}

TEST_F(ObliviousTest, SelectKeepsCardinalityRewritesFlags) {
  SharedRows rows = MakeFlaggedRows(&rng_, {5, 15, 25, 35}, {1, 1, 1, 0});
  ObliviousSelect(&proto_, &rows, 0, ObliviousPredicate::ColumnLess(1, 20));
  EXPECT_EQ(rows.size(), 4u);  // output size == input size (no leakage)
  EXPECT_EQ(rows.RecoverAt(0, 0), 1u);   // 5 < 20, was real
  EXPECT_EQ(rows.RecoverAt(1, 0), 1u);   // 15 < 20
  EXPECT_EQ(rows.RecoverAt(2, 0), 0u);   // 25 >= 20
  EXPECT_EQ(rows.RecoverAt(3, 0), 0u);   // dummy stays dummy
}

TEST_F(ObliviousTest, CountWherePredicates) {
  SharedRows rows =
      MakeFlaggedRows(&rng_, {5, 15, 25, 35, 45}, {1, 1, 1, 1, 0});
  auto count = [&](const ObliviousPredicate& p) {
    return proto_.RecoverInside(ObliviousCountWhere(&proto_, rows, 0, p));
  };
  EXPECT_EQ(count(ObliviousPredicate::True()), 4u);
  EXPECT_EQ(count(ObliviousPredicate::ColumnLess(1, 20)), 2u);
  EXPECT_EQ(count(ObliviousPredicate::ColumnGreaterEq(1, 25)), 2u);
  EXPECT_EQ(count(ObliviousPredicate::ColumnEquals(1, 15)), 1u);
  EXPECT_EQ(count(ObliviousPredicate::ColumnBetween(1, 10, 30)), 2u);
  EXPECT_EQ(count(ObliviousPredicate::AndThen(
                ObliviousPredicate::ColumnGreaterEq(1, 10),
                ObliviousPredicate::ColumnLess(1, 40))),
            3u);
}

// ---------------------------------------------------------------------------
// Truncated sort-merge join (Example 5.1)
// ---------------------------------------------------------------------------

SharedRows EncodeTable(Rng* rng, const std::vector<LogicalRecord>& recs,
                       size_t pad_to = 0) {
  SharedRows rows(kSrcWidth);
  for (const auto& r : recs) rows.AppendSecretRow(EncodeSourceRow(r), rng);
  while (rows.size() < pad_to)
    rows.AppendSecretRow(MakeDummySourceRow(rng), rng);
  return rows;
}

std::vector<std::vector<Word>> RecoverAll(const SharedRows& rows) {
  std::vector<std::vector<Word>> out;
  for (size_t i = 0; i < rows.size(); ++i) out.push_back(rows.RecoverRow(i));
  return out;
}

LogicalRecord Rec(Word rid, Word key, Word date) {
  return LogicalRecord{0, rid, key, date, 0};
}

TEST_F(ObliviousTest, SmjBasicJoin) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 100, 5), Rec(2, 200, 6)};
  const std::vector<LogicalRecord> t2 = {Rec(3, 100, 7), Rec(4, 300, 8)};
  SharedRows s1 = EncodeTable(&rng_, t1);
  SharedRows s2 = EncodeTable(&rng_, t2);
  JoinSpec spec{0, 10, true, 1, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  EXPECT_EQ(r.real_count, 1u);  // only key 100 matches within window
  EXPECT_EQ(r.rows.size(), spec.omega * (t1.size() + t2.size()));
}

TEST_F(ObliviousTest, SmjRespectsWindow) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 7, 100)};
  const std::vector<LogicalRecord> t2 = {
      Rec(2, 7, 105),  // in window [0,10]
      Rec(3, 7, 111),  // outside (delta 11)
      Rec(4, 7, 99),   // before t1 (negative delta)
  };
  SharedRows s1 = EncodeTable(&rng_, t1);
  SharedRows s2 = EncodeTable(&rng_, t2);
  JoinSpec spec{0, 10, true, 5, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  EXPECT_EQ(r.real_count, 1u);
}

TEST_F(ObliviousTest, SmjTruncatesContributions) {
  // One T1 record matching 5 T2 records, omega = 2 -> 2 survive.
  std::vector<LogicalRecord> t1 = {Rec(1, 7, 10)};
  std::vector<LogicalRecord> t2;
  for (Word i = 0; i < 5; ++i) t2.push_back(Rec(10 + i, 7, 12));
  SharedRows s1 = EncodeTable(&rng_, t1);
  SharedRows s2 = EncodeTable(&rng_, t2);
  JoinSpec spec{0, 10, true, 2, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  EXPECT_EQ(r.real_count, 2u);
  EXPECT_EQ(r.rows.size(), 2u * 6u);
}

TEST_F(ObliviousTest, SmjUncappedPublicSide) {
  // T2 public (cap_t2 = false): a T2 record may pair with many T1 records.
  std::vector<LogicalRecord> t1;
  for (Word i = 0; i < 4; ++i) t1.push_back(Rec(i + 1, 7, 10));
  const std::vector<LogicalRecord> t2 = {Rec(99, 7, 12)};
  SharedRows s1 = EncodeTable(&rng_, t1);
  SharedRows s2 = EncodeTable(&rng_, t2);
  JoinSpec spec{0, 10, true, 2, true, false};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  // omega slots per access still bound the per-access output: 2 pairs.
  EXPECT_EQ(r.real_count, 2u);
}

TEST_F(ObliviousTest, SmjIgnoresDummyRows) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 100, 5)};
  const std::vector<LogicalRecord> t2 = {Rec(2, 100, 7)};
  SharedRows s1 = EncodeTable(&rng_, t1, /*pad_to=*/6);
  SharedRows s2 = EncodeTable(&rng_, t2, /*pad_to=*/6);
  JoinSpec spec{0, 10, true, 1, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  EXPECT_EQ(r.real_count, 1u);
  EXPECT_EQ(r.rows.size(), 12u);
}

TEST_F(ObliviousTest, SmjViewRowsCarryJoinAttributes) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 100, 5)};
  const std::vector<LogicalRecord> t2 = {Rec(2, 100, 7)};
  SharedRows s1 = EncodeTable(&rng_, t1);
  SharedRows s2 = EncodeTable(&rng_, t2);
  JoinSpec spec{0, 10, true, 1, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedSortMergeJoin(&proto_, s1, s2, spec, &seq);
  bool found = false;
  for (const auto& row : RecoverAll(r.rows)) {
    if (row[kViewIsViewCol] == 1) {
      found = true;
      EXPECT_EQ(row[kViewKeyCol], 100u);
      EXPECT_EQ(row[kViewDate1Col], 5u);
      EXPECT_EQ(row[kViewDate2Col], 7u);
      EXPECT_EQ(row[kViewRid1Col], 1u);
      EXPECT_EQ(row[kViewRid2Col], 2u);
    }
  }
  EXPECT_TRUE(found);
}

class SmjRandomTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SmjRandomTest, MatchesReferenceSemantics) {
  const uint32_t omega = GetParam();
  for (uint64_t trial = 0; trial < 20; ++trial) {
    Party s0(0, trial * 7 + 1), s1(1, trial * 7 + 2);
    Protocol2PC proto(&s0, &s1, CostModel::Free());
    Rng rng(trial * 7 + omega);
    std::vector<LogicalRecord> t1, t2;
    Word rid = 1;
    for (int i = 0; i < 20; ++i) {
      t1.push_back(Rec(rid++, 1 + rng.Next32() % 8, rng.Next32() % 30));
    }
    for (int i = 0; i < 25; ++i) {
      t2.push_back(Rec(rid++, 1 + rng.Next32() % 8, rng.Next32() % 30));
    }
    SharedRows sh1 = EncodeTable(&rng, t1);
    SharedRows sh2 = EncodeTable(&rng, t2);
    JoinSpec spec{0, 5, true, omega, true, true};
    uint64_t seq = 0;
    JoinResult r = TruncatedSortMergeJoin(&proto, sh1, sh2, spec, &seq);

    std::vector<std::vector<Word>> p1, p2;
    for (const auto& rec : t1) p1.push_back(EncodeSourceRow(rec));
    for (const auto& rec : t2) p2.push_back(EncodeSourceRow(rec));
    uint32_t full = 0;
    const uint32_t expect = ReferenceTruncatedJoinCount(p1, p2, spec, &full);
    EXPECT_EQ(r.real_count, expect) << "trial " << trial;
    EXPECT_LE(r.real_count, full);
    // Count real rows in the output to cross-check the flag bits.
    uint32_t real_rows = 0;
    for (const auto& row : RecoverAll(r.rows)) {
      real_rows += row[kViewIsViewCol] & 1;
    }
    EXPECT_EQ(real_rows, r.real_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Omegas, SmjRandomTest,
                         ::testing::Values(1, 2, 3, 8, 100));

TEST(SmjObliviousnessTest, TraceAndOutputSizeDataIndependent) {
  CircuitStats traces[2];
  size_t out_sizes[2];
  for (int variant = 0; variant < 2; ++variant) {
    Party s0(0, 1), s1(1, 2);
    Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
    Rng rng(variant + 77);
    std::vector<LogicalRecord> t1, t2;
    for (Word i = 0; i < 15; ++i) {
      // Variant 0: everything joins; variant 1: nothing joins.
      t1.push_back(Rec(i + 1, variant == 0 ? 5 : i + 100, 10));
      t2.push_back(Rec(i + 50, variant == 0 ? 5 : i + 900, 12));
    }
    SharedRows sh1 = EncodeTable(&rng, t1);
    SharedRows sh2 = EncodeTable(&rng, t2);
    JoinSpec spec{0, 10, true, 2, true, true};
    uint64_t seq = 0;
    const CircuitStats before = proto.Snapshot();
    JoinResult r = TruncatedSortMergeJoin(&proto, sh1, sh2, spec, &seq);
    traces[variant] = proto.StatsSince(before);
    out_sizes[variant] = r.rows.size();
  }
  EXPECT_EQ(out_sizes[0], out_sizes[1]);
  EXPECT_EQ(traces[0].and_gates, traces[1].and_gates);
  EXPECT_EQ(traces[0].bytes, traces[1].bytes);
}

// ---------------------------------------------------------------------------
// Truncated nested-loop join (Algorithm 4)
// ---------------------------------------------------------------------------

SharedRows EncodeWithBudget(Rng* rng, const std::vector<LogicalRecord>& recs,
                            Word budget) {
  SharedRows rows(kSrcWidth + 1);
  for (const auto& r : recs) {
    std::vector<Word> row = EncodeSourceRow(r);
    row.push_back(budget);
    rows.AppendSecretRow(row, rng);
  }
  return rows;
}

TEST_F(ObliviousTest, NljBasicJoinAndOutputSize) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 100, 5), Rec(2, 200, 6)};
  const std::vector<LogicalRecord> t2 = {Rec(3, 100, 7), Rec(4, 300, 8)};
  SharedRows s1 = EncodeWithBudget(&rng_, t1, 5);
  SharedRows s2 = EncodeWithBudget(&rng_, t2, 5);
  JoinSpec spec{0, 10, true, 2, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedNestedLoopJoin(&proto_, &s1, &s2, kSrcWidth,
                                         kSrcWidth, spec, &seq);
  EXPECT_EQ(r.real_count, 1u);
  EXPECT_EQ(r.rows.size(), spec.omega * t1.size());
}

TEST_F(ObliviousTest, NljConsumesBudgetsInPlace) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 7, 5)};
  std::vector<LogicalRecord> t2;
  for (Word i = 0; i < 4; ++i) t2.push_back(Rec(10 + i, 7, 6));
  SharedRows s1 = EncodeWithBudget(&rng_, t1, 3);  // budget 3 < 4 matches
  SharedRows s2 = EncodeWithBudget(&rng_, t2, 9);
  JoinSpec spec{0, 10, true, 10, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedNestedLoopJoin(&proto_, &s1, &s2, kSrcWidth,
                                         kSrcWidth, spec, &seq);
  EXPECT_EQ(r.real_count, 3u);  // limited by T1 budget
  EXPECT_EQ(s1.RecoverAt(0, kSrcWidth), 0u);  // budget fully consumed
  // Exactly 3 of the 4 inner budgets decremented.
  uint32_t consumed = 0;
  for (size_t i = 0; i < 4; ++i)
    consumed += 9 - s2.RecoverAt(i, kSrcWidth);
  EXPECT_EQ(consumed, 3u);
}

TEST_F(ObliviousTest, NljOmegaTruncatesPerOuterBlock) {
  const std::vector<LogicalRecord> t1 = {Rec(1, 7, 5)};
  std::vector<LogicalRecord> t2;
  for (Word i = 0; i < 6; ++i) t2.push_back(Rec(10 + i, 7, 6));
  SharedRows s1 = EncodeWithBudget(&rng_, t1, 100);
  SharedRows s2 = EncodeWithBudget(&rng_, t2, 100);
  JoinSpec spec{0, 10, true, 2, true, true};
  uint64_t seq = 0;
  JoinResult r = TruncatedNestedLoopJoin(&proto_, &s1, &s2, kSrcWidth,
                                         kSrcWidth, spec, &seq);
  // Block sorted and truncated to omega = 2 entries.
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.real_count, 2u);
}

// ---------------------------------------------------------------------------
// Full oblivious join count (NM baseline)
// ---------------------------------------------------------------------------

TEST_F(ObliviousTest, FullJoinCountMatchesPlaintext) {
  Rng data_rng(91);
  std::vector<LogicalRecord> t1, t2;
  Word rid = 1;
  for (int i = 0; i < 30; ++i)
    t1.push_back(Rec(rid++, 1 + data_rng.Next32() % 6,
                     data_rng.Next32() % 40));
  for (int i = 0; i < 30; ++i)
    t2.push_back(Rec(rid++, 1 + data_rng.Next32() % 6,
                     data_rng.Next32() % 40));
  SharedRows s1 = EncodeTable(&rng_, t1, 40);  // with dummy padding
  SharedRows s2 = EncodeTable(&rng_, t2, 40);
  JoinSpec spec{0, 10, true, 1, true, true};
  const uint32_t count = ObliviousJoinCountFull(&proto_, s1, s2, spec);

  WindowJoinQuery q{0, 10, true};
  EXPECT_EQ(count, WindowJoinCounter::CountFull(q, t1, t2));
}

// ---------------------------------------------------------------------------
// Cache operations (Fig. 3)
// ---------------------------------------------------------------------------

SharedRows MakeCacheRows(Rng* rng, const std::vector<bool>& real_flags) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (bool real : real_flags) {
    std::vector<Word> row(kViewWidth);
    row[kViewIsViewCol] = real ? 1 : 0;
    row[kViewSortKeyCol] = MakeCacheSortKey(real, seq);
    row[kViewKeyCol] = 1000 + seq;  // payload marks insertion order
    ++seq;
    rows.AppendSecretRow(row, rng);
  }
  return rows;
}

TEST_F(ObliviousTest, CacheReadFetchesRealFirstFifo) {
  // Mixed cache: dummy, real(0), dummy, real(3), real(4), dummy.
  SharedRows cache =
      MakeCacheRows(&rng_, {false, true, false, true, true, false});
  SharedRows fetched = ObliviousCacheRead(&proto_, &cache, 2);
  EXPECT_EQ(fetched.size(), 2u);
  EXPECT_EQ(cache.size(), 4u);
  // The two oldest real entries (seq 1 and 3) come out, in FIFO order.
  EXPECT_EQ(fetched.RecoverAt(0, kViewIsViewCol), 1u);
  EXPECT_EQ(fetched.RecoverAt(1, kViewIsViewCol), 1u);
  EXPECT_EQ(fetched.RecoverAt(0, kViewKeyCol), 1001u);
  EXPECT_EQ(fetched.RecoverAt(1, kViewKeyCol), 1003u);
  // One real entry (seq 4) is deferred in the cache.
  EXPECT_EQ(CountRealInside(&proto_, cache), 1u);
}

TEST_F(ObliviousTest, CacheReadWithExcessSizeTakesDummies) {
  SharedRows cache = MakeCacheRows(&rng_, {true, false, false});
  SharedRows fetched = ObliviousCacheRead(&proto_, &cache, 2);
  EXPECT_EQ(fetched.size(), 2u);
  EXPECT_EQ(fetched.RecoverAt(0, kViewIsViewCol), 1u);
  EXPECT_EQ(fetched.RecoverAt(1, kViewIsViewCol), 0u);  // dummy padding
}

TEST_F(ObliviousTest, CacheReadClampsToCacheSize) {
  SharedRows cache = MakeCacheRows(&rng_, {true, false});
  SharedRows fetched = ObliviousCacheRead(&proto_, &cache, 100);
  EXPECT_EQ(fetched.size(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ObliviousTest, CacheFlushRecyclesEverything) {
  SharedRows cache =
      MakeCacheRows(&rng_, {false, true, false, true, false, false});
  SharedRows fetched = CacheFlush(&proto_, &cache, 3);
  EXPECT_EQ(fetched.size(), 3u);
  EXPECT_EQ(cache.size(), 0u);  // remainder recycled
  // Both real tuples are inside the flushed prefix.
  EXPECT_EQ(CountRealInside(&proto_, fetched), 2u);
}

TEST_F(ObliviousTest, CacheFlushCanLoseRealData) {
  // Flush size smaller than the number of real tuples: deferred data is
  // recycled (the beta-probability loss the paper accepts).
  SharedRows cache = MakeCacheRows(&rng_, {true, true, true});
  SharedRows fetched = CacheFlush(&proto_, &cache, 1);
  EXPECT_EQ(CountRealInside(&proto_, fetched), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ObliviousTest, CountRealInside) {
  SharedRows cache = MakeCacheRows(&rng_, {true, false, true, true});
  EXPECT_EQ(CountRealInside(&proto_, cache), 3u);
}

}  // namespace
}  // namespace incshrink
