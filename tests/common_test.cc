#include <gtest/gtest.h>

#include <cmath>

#include "src/common/fixed_point.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace incshrink {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad omega");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad omega");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad omega");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::PrivacyBudgetExhausted("x").code(),
            StatusCode::kPrivacyBudgetExhausted);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  INCSHRINK_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  INCSHRINK_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(9, &out).ok());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.NextDoubleOpen();
    EXPECT_GT(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(RngTest, UniformMeanMatches) {
  Rng rng(3);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.NextDouble());
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, LaplaceMeanAndVariance) {
  Rng rng(4);
  const double scale = 3.0;
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(rng.Laplace(scale));
  EXPECT_NEAR(stat.mean(), 0.0, 0.1);
  // Var[Lap(b)] = 2 b^2 = 18.
  EXPECT_NEAR(stat.variance(), 18.0, 1.5);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.Exponential(2.5));
  EXPECT_NEAR(stat.mean(), 2.5, 0.1);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<uint64_t>(mean * 1000) + 11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i)
    stat.Add(static_cast<double>(rng.Poisson(mean)));
  EXPECT_NEAR(stat.mean(), mean, std::max(0.1, mean * 0.05));
  EXPECT_NEAR(stat.variance(), mean, std::max(0.3, mean * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.5, 1.4, 2.7, 6.0, 9.8, 40.0,
                                           100.0));

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// Fixed point
// ---------------------------------------------------------------------------

TEST(FixedPointTest, OpenUnitNeverHitsEndpoints) {
  EXPECT_GT(FixedPointOpenUnit(0), 0.0);
  EXPECT_LT(FixedPointOpenUnit(0x7FFFFFFFu), 1.0);
  EXPECT_LT(FixedPointOpenUnit(0xFFFFFFFFu), 1.0);  // msb ignored
}

TEST(FixedPointTest, MsbControlsSign) {
  EXPECT_EQ(SignFromMsb(0x80000000u), 1.0);
  EXPECT_EQ(SignFromMsb(0x7FFFFFFFu), -1.0);
}

TEST(FixedPointTest, OpenUnitIsUniform) {
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i)
    stat.Add(FixedPointOpenUnit(rng.Next32()));
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(FixedPointTest, SaturatingToRing) {
  EXPECT_EQ(SaturatingToRing(-1.0), 0u);
  EXPECT_EQ(SaturatingToRing(0.4), 0u);
  EXPECT_EQ(SaturatingToRing(0.6), 1u);
  EXPECT_EQ(SaturatingToRing(1e20), 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(SampleSetTest, Quantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
}

TEST(SampleSetTest, EmpiricalCdf) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Cdf(10.0), 1.0);
}

TEST(KsDistanceTest, UniformSamplesAgainstUniformCdf) {
  Rng rng(8);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.NextDouble());
  const double d = KsDistance(s, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_LT(d, 0.02);  // ~1.36/sqrt(n) at 5%
}

TEST(KsDistanceTest, DetectsWrongDistribution) {
  Rng rng(9);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.NextDouble() * 0.5);
  const double d = KsDistance(s, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_GT(d, 0.3);
}

}  // namespace
}  // namespace incshrink
