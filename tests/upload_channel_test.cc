// Upload transport layer (owner/engine decoupling satellite of the paper's
// Section-3 architecture): UploadChannel semantics, OwnerClient backpressure
// behavior, and the determinism contract of asynchronous draining — owners
// running ahead of the servers by lead L, engines draining up to
// max_batches_per_step frames per step, must produce summaries and
// transcripts that are exactly equal at any worker count (and, when the
// drain bound is 1, exactly equal to the lockstep deployment whatever the
// lead). Runs under the TSan CI job alongside the other equivalence suites.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/fleet.h"
#include "src/core/owner_client.h"
#include "src/net/upload_channel.h"
#include "src/storage/serialization.h"
#include "src/workload/generators.h"

namespace incshrink {
namespace {

void ExpectStatIdentical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void ExpectSummaryIdentical(const RunSummary& a, const RunSummary& b) {
  ExpectStatIdentical(a.l1_error, b.l1_error);
  ExpectStatIdentical(a.relative_error, b.relative_error);
  ExpectStatIdentical(a.true_count_stat, b.true_count_stat);
  ExpectStatIdentical(a.qet_seconds, b.qet_seconds);
  ExpectStatIdentical(a.transform_seconds, b.transform_seconds);
  ExpectStatIdentical(a.shrink_seconds, b.shrink_seconds);
  EXPECT_EQ(a.total_mpc_seconds, b.total_mpc_seconds);
  EXPECT_EQ(a.total_query_seconds, b.total_query_seconds);
  EXPECT_EQ(a.final_view_mb, b.final_view_mb);
  EXPECT_EQ(a.final_view_rows, b.final_view_rows);
  EXPECT_EQ(a.final_cache_rows, b.final_cache_rows);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_real_entries_cached, b.total_real_entries_cached);
  EXPECT_EQ(a.final_true_count, b.final_true_count);
}

GeneratedWorkload SmallTpcDs() {
  TpcDsParams p;
  p.steps = 40;
  p.seed = 21;
  return GenerateTpcDs(p);
}

GeneratedWorkload SmallCpdb() {
  CpdbParams p;
  p.steps = 24;
  p.seed = 31;
  return GenerateCpdb(p);
}

// ---------------------------------------------------------------------------
// UploadChannel: FIFO byte-frame queue with public backpressure
// ---------------------------------------------------------------------------

TEST(UploadChannelTest, FifoOrderAndCounters) {
  UploadChannel ch(8);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.capacity(), 8u);
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ch.TryPush({i, static_cast<uint8_t>(i + 1)}));
  }
  EXPECT_EQ(ch.depth(), 5u);
  EXPECT_EQ(ch.frames_pushed(), 5u);
  EXPECT_EQ(ch.bytes_pushed(), 10u);
  EXPECT_EQ(ch.max_depth(), 5u);
  std::vector<uint8_t> frame;
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ch.TryPop(&frame));
    EXPECT_EQ(frame, (std::vector<uint8_t>{i, static_cast<uint8_t>(i + 1)}));
  }
  EXPECT_FALSE(ch.TryPop(&frame));
  EXPECT_EQ(ch.frames_popped(), 5u);
  EXPECT_EQ(ch.push_rejects(), 0u);
}

TEST(UploadChannelTest, BackpressureRefusesWhenFull) {
  UploadChannel ch(2);
  ASSERT_TRUE(ch.TryPush({1}));
  ASSERT_TRUE(ch.TryPush({2}));
  EXPECT_TRUE(ch.full());
  EXPECT_FALSE(ch.TryPush({3}));
  EXPECT_EQ(ch.push_rejects(), 1u);
  EXPECT_EQ(ch.depth(), 2u);
  std::vector<uint8_t> frame;
  ASSERT_TRUE(ch.TryPop(&frame));
  EXPECT_EQ(frame, std::vector<uint8_t>{1});  // the refused frame never entered
  EXPECT_TRUE(ch.TryPush({3}));
  EXPECT_EQ(ch.max_depth(), 2u);
}

TEST(UploadChannelTest, SnapshotTracksHighWaterThroughDrains) {
  // DepthSnapshot is the scheduler's public view of the channel: current
  // depth plus the push-time high-water mark, which must survive pops.
  UploadChannel ch(8);
  for (uint8_t i = 0; i < 6; ++i) ASSERT_TRUE(ch.TryPush({i}));
  UploadChannel::DepthSnapshot snap = ch.Snapshot();
  EXPECT_EQ(snap.depth, 6u);
  EXPECT_EQ(snap.high_water, 6u);
  std::vector<uint8_t> frame;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.TryPop(&frame));
  snap = ch.Snapshot();
  EXPECT_EQ(snap.depth, 2u);
  EXPECT_EQ(snap.high_water, 6u);  // draining never lowers the peak
  ASSERT_TRUE(ch.TryPush({9}));
  snap = ch.Snapshot();
  EXPECT_EQ(snap.depth, 3u);
  EXPECT_EQ(snap.high_water, 6u);
}

// ---------------------------------------------------------------------------
// OwnerClient: backpressure leaves the owner's state untouched
// ---------------------------------------------------------------------------

TEST(OwnerClientTest, BackpressuredStepIsSideEffectFree) {
  const IncShrinkConfig cfg = DefaultTpcDsConfig();
  UploadChannel narrow(2);
  UploadChannel wide(16);
  OwnerClient stalled = MakeOwner1(cfg, &narrow);
  OwnerClient fluent = MakeOwner1(cfg, &wide);  // identical seeds, no stall

  const std::vector<LogicalRecord> arrivals = {{1, 1, 7, 1, 0},
                                               {1, 2, 8, 1, 0}};
  ASSERT_TRUE(stalled.TryStep(arrivals));
  ASSERT_TRUE(stalled.TryStep({}));
  ASSERT_TRUE(fluent.TryStep(arrivals));
  ASSERT_TRUE(fluent.TryStep({}));

  // Channel full: the refused step must not advance the clock, consume RNG
  // draws, or queue the arrivals.
  const uint64_t pending_before = stalled.pending();
  EXPECT_FALSE(stalled.TryStep(arrivals));
  EXPECT_FALSE(stalled.TryStep(arrivals));
  EXPECT_EQ(stalled.clock(), 2u);
  EXPECT_EQ(stalled.pending(), pending_before);

  // Drain one frame and re-offer: the emitted frame must be byte-identical
  // to the never-backpressured twin's third frame.
  std::vector<uint8_t> drained;
  ASSERT_TRUE(narrow.TryPop(&drained));
  ASSERT_TRUE(stalled.TryStep(arrivals));
  ASSERT_TRUE(fluent.TryStep(arrivals));
  std::vector<uint8_t> skip, from_stalled, from_fluent;
  ASSERT_TRUE(narrow.TryPop(&skip));
  ASSERT_TRUE(narrow.TryPop(&from_stalled));
  ASSERT_TRUE(wide.TryPop(&skip));
  ASSERT_TRUE(wide.TryPop(&skip));
  ASSERT_TRUE(wide.TryPop(&from_fluent));
  EXPECT_EQ(from_stalled, from_fluent);
}

TEST(OwnerClientTest, EveryOwnerStepEmitsExactlyOneFrame) {
  // A DP-timer policy uploads only every sync_interval steps, but the frame
  // stream still ticks once per owner step (zero-row frames in between) —
  // the frame *size* is the DP-protected observable, not its presence.
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.upload_policy1.kind = UploadPolicyKind::kDpTimerSync;
  cfg.upload_policy1.eps_sync = 1.0;
  cfg.upload_policy1.sync_interval = 3;
  UploadChannel ch(64);
  OwnerClient owner = MakeOwner1(cfg, &ch);
  for (int t = 0; t < 9; ++t) {
    ASSERT_TRUE(owner.TryStep({{static_cast<uint64_t>(t + 1),
                                static_cast<Word>(t + 1),
                                static_cast<Word>(t + 1), 1, 0}}));
  }
  EXPECT_EQ(owner.frames_sent(), 9u);
  EXPECT_EQ(ch.depth(), 9u);
  int zero_row_frames = 0;
  std::vector<uint8_t> raw;
  while (ch.TryPop(&raw)) {
    const Result<UploadFrame> frame = DecodeUploadFrame(raw);
    ASSERT_TRUE(frame.ok());
    if (frame->batch.empty()) ++zero_row_frames;
    EXPECT_EQ(frame->arrivals.size(), 1u);  // truth rides every frame
  }
  EXPECT_EQ(zero_row_frames, 6);  // uploads fire at t = 3, 6, 9 only
}

// ---------------------------------------------------------------------------
// Async equivalence: owner lead x engine threads
// ---------------------------------------------------------------------------

std::vector<DeploymentFleet::TenantSpec> AsyncTenants(
    const GeneratedWorkload* tpcds, const GeneratedWorkload* cpdb,
    uint32_t max_batches, uint32_t capacity) {
  std::vector<DeploymentFleet::TenantSpec> tenants;
  const struct {
    const char* name;
    bool cpdb;
    Strategy strategy;
  } kMix[] = {
      {"tpcds-timer", false, Strategy::kDpTimer},
      {"tpcds-ant", false, Strategy::kDpAnt},
      {"tpcds-ep", false, Strategy::kEp},
      {"cpdb-timer", true, Strategy::kDpTimer},
      {"cpdb-ant", true, Strategy::kDpAnt},
      {"tpcds-nm", false, Strategy::kNm},
  };
  for (const auto& m : kMix) {
    DeploymentFleet::TenantSpec t;
    t.name = m.name;
    t.config = m.cpdb ? DefaultCpdbConfig() : DefaultTpcDsConfig();
    t.config.strategy = m.strategy;
    t.config.flush_interval = 16;
    t.config.max_batches_per_step = max_batches;
    t.config.upload_channel_capacity = capacity;
    t.workload = m.cpdb ? cpdb : tpcds;
    tenants.push_back(t);
  }
  return tenants;
}

TEST(AsyncEquivalenceTest, LeadIsInvariantWhenDrainBoundIsOne) {
  // With max_batches_per_step == 1 the engine consumes exactly one owner
  // step per engine step in owner order, so the drained frame sequence — and
  // therefore every observable — is independent of how far owners run
  // ahead. Every lead must match the lockstep deployment exactly.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 77;
  const std::vector<DeploymentFleet::TenantSpec> specs =
      AsyncTenants(&tpcds, &cpdb, /*max_batches=*/1, /*capacity=*/32);

  for (const uint32_t lead : {0u, 3u, 16u}) {
    SCOPED_TRACE("lead=" + std::to_string(lead));
    DeploymentFleet fleet(specs, {kRoot, /*num_threads=*/2, lead});
    fleet.RunAll();
    EXPECT_TRUE(fleet.done());
    for (size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(specs[i].name);
      IncShrinkConfig cfg = specs[i].config;
      cfg.seed = DeriveTenantSeed(kRoot, i);
      SynchronousDeployment lockstep(cfg);
      ASSERT_TRUE(
          lockstep.Run(specs[i].workload->t1, specs[i].workload->t2).ok());
      ExpectSummaryIdentical(lockstep.Summary(), fleet.TenantSummary(i));
      EXPECT_EQ(lockstep.transcript(), fleet.engine(i).transcript());
    }
  }
}

TEST(AsyncEquivalenceTest, DrainOrderInvariantAcrossThreadCounts) {
  // The acceptance matrix: owner lead in {0, 3, 16} x 1/2/8 engine threads,
  // with a drain bound > 1 so backlogged engines really merge several owner
  // steps per engine step. Summaries AND transcripts must be exactly equal
  // across thread counts for every lead.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 99;
  const std::vector<DeploymentFleet::TenantSpec> specs =
      AsyncTenants(&tpcds, &cpdb, /*max_batches=*/4, /*capacity=*/32);

  for (const uint32_t lead : {0u, 3u, 16u}) {
    SCOPED_TRACE("lead=" + std::to_string(lead));
    DeploymentFleet ref(specs, {kRoot, /*num_threads=*/1, lead});
    ref.RunAll();
    ASSERT_TRUE(ref.done());
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      DeploymentFleet fleet(specs, {kRoot, threads, lead});
      fleet.RunAll();
      ASSERT_TRUE(fleet.done());
      for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ExpectSummaryIdentical(ref.TenantSummary(i), fleet.TenantSummary(i));
        EXPECT_EQ(ref.engine(i).transcript(), fleet.engine(i).transcript());
      }
    }
  }
}

TEST(AsyncEquivalenceTest, BatchedDrainCatchesUpWithoutLosingRecords) {
  // Owners race ahead; the engine, draining up to 4 owner steps per engine
  // step, finishes in fewer steps — but every frame is drained, so the
  // final synchronized truth and total uploaded rows match lockstep.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const uint64_t kRoot = 5;
  DeploymentFleet::TenantSpec spec;
  spec.name = "catchup";
  spec.config = DefaultTpcDsConfig();
  spec.config.strategy = Strategy::kDpTimer;
  spec.config.max_batches_per_step = 4;
  spec.config.upload_channel_capacity = 32;
  spec.workload = &tpcds;

  DeploymentFleet fleet({spec}, {kRoot, /*num_threads=*/1,
                                 /*owner_lead=*/16});
  fleet.RunAll();
  ASSERT_TRUE(fleet.done());
  EXPECT_EQ(fleet.QueueDepth(0), 0u);

  IncShrinkConfig cfg = spec.config;
  cfg.seed = DeriveTenantSeed(kRoot, 0);
  SynchronousDeployment lockstep(cfg);
  ASSERT_TRUE(lockstep.Run(tpcds.t1, tpcds.t2).ok());

  const RunSummary async_summary = fleet.TenantSummary(0);
  const RunSummary lockstep_summary = lockstep.Summary();
  EXPECT_LT(async_summary.steps, lockstep_summary.steps);
  EXPECT_GT(async_summary.steps, lockstep_summary.steps / 4 - 1);
  EXPECT_EQ(async_summary.final_true_count,
            lockstep_summary.final_true_count);
  EXPECT_EQ(fleet.engine(0).frames_drained(),
            fleet.owner1(0).frames_sent() + fleet.owner2(0).frames_sent());
  EXPECT_EQ(fleet.owner1(0).frames_sent(), tpcds.steps());
}

TEST(AsyncEquivalenceTest, BackpressureBoundsQueueDepthDeterministically) {
  // A lead larger than the channel capacity must be clamped by public
  // backpressure — rejects happen, the queue never exceeds capacity, and
  // results remain thread-count invariant.
  const GeneratedWorkload tpcds = SmallTpcDs();
  const GeneratedWorkload cpdb = SmallCpdb();
  const uint64_t kRoot = 13;
  std::vector<DeploymentFleet::TenantSpec> specs =
      AsyncTenants(&tpcds, &cpdb, /*max_batches=*/2, /*capacity=*/4);

  DeploymentFleet ref(specs, {kRoot, /*num_threads=*/1, /*owner_lead=*/16});
  ref.RunAll();
  ASSERT_TRUE(ref.done());
  const DeploymentFleet::FleetStats stats = ref.AggregateStats();
  EXPECT_GT(stats.upload_backpressure, 0u);
  EXPECT_LE(stats.max_queue_depth, 4u);

  DeploymentFleet other(specs, {kRoot, /*num_threads=*/8, /*owner_lead=*/16});
  other.RunAll();
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    ExpectSummaryIdentical(ref.TenantSummary(i), other.TenantSummary(i));
    EXPECT_EQ(ref.engine(i).transcript(), other.engine(i).transcript());
  }
}

TEST(AsyncEquivalenceTest, MaxQueueDepthCapturesIntraRoundPeak) {
  // Regression guard for the fleet's high-water stat: with an owner lead of
  // L and a drain bound of 1, every round tops the queue up to L + 1 frames
  // before the engine drains one, so the depth at any round *boundary* is
  // only L (and 0 after the final drain). The true peak — L + 1 — exists
  // only mid-round; it must come from UploadChannel's push-time tracking,
  // not from sampling depths at round end.
  const GeneratedWorkload tpcds = SmallTpcDs();
  DeploymentFleet::TenantSpec spec;
  spec.name = "peak";
  spec.config = DefaultTpcDsConfig();
  spec.config.max_batches_per_step = 1;
  spec.config.upload_channel_capacity = 64;
  spec.workload = &tpcds;

  const uint32_t kLead = 16;
  DeploymentFleet fleet({spec}, {/*root_seed=*/7, /*num_threads=*/1, kLead});
  fleet.RunAll();
  ASSERT_TRUE(fleet.done());
  EXPECT_EQ(fleet.QueueDepth(0), 0u);
  const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
  EXPECT_EQ(stats.max_queue_depth, kLead + 1u);
}

}  // namespace
}  // namespace incshrink
