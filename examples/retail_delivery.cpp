// The paper's introductory use case (Section 1): a retail store and a
// courier company outsource their private sales / delivery records to two
// untrusted servers. The store owner wants a continuously answerable query:
//
//   "How many of my products were delivered on time (within 48 hours of the
//    courier accepting the package)?"
//
// The servers maintain a materialized join between the two private streams
// with IncShrink, so each query is a cheap scan of the view instead of a
// full re-join of everything ever outsourced.

#include <cstdio>
#include <vector>

#include "src/core/owner_client.h"
#include "src/relational/growing_table.h"

using namespace incshrink;

namespace {

// Hand-built two-week scenario, one step per day. Dates are in hours-as-days
// granularity: delivery within 2 days == within 48 hours.
struct Scenario {
  std::vector<std::vector<LogicalRecord>> orders;      // the store's stream
  std::vector<std::vector<LogicalRecord>> deliveries;  // the courier's stream
};

Scenario BuildScenario() {
  Scenario s;
  const uint64_t kDays = 30;
  s.orders.resize(kDays);
  s.deliveries.resize(kDays);
  Rng rng(2024);
  Word rid = 1, order_id = 1;
  for (uint64_t day = 0; day < kDays; ++day) {
    const uint64_t n_orders = 1 + rng.Uniform(3);
    for (uint64_t i = 0; i < n_orders; ++i) {
      const Word id = order_id++;
      s.orders[day].push_back(
          {day + 1, rid++, id, static_cast<Word>(day + 1), 0});
      // 80% of packages are delivered, usually on time (0-2 days), the rest
      // late (3-5 days) — late ones must NOT count.
      if (rng.Bernoulli(0.8)) {
        const bool on_time = rng.Bernoulli(0.75);
        const uint32_t delay = on_time
                                   ? static_cast<uint32_t>(rng.Uniform(3))
                                   : 3 + static_cast<uint32_t>(rng.Uniform(3));
        const uint64_t dday = day + delay;
        if (dday < kDays) {
          s.deliveries[dday].push_back({dday + 1, rid++, id,
                                        static_cast<Word>(day + 1 + delay),
                                        0});
        }
      }
    }
  }
  return s;
}

}  // namespace

int main() {
  Scenario scenario = BuildScenario();

  IncShrinkConfig config;
  config.eps = 1.5;
  config.omega = 1;      // an order is delivered at most once
  config.budget_b = 4;   // participates in <= 4 daily Transform invocations
  config.join = JoinSpec{0, 2, true, 1, true, true};  // within 48h
  config.window_steps = 3;
  config.strategy = Strategy::kDpAnt;  // update when ~theta new deliveries
  config.ant_theta = 5;
  config.flush_interval = 10;
  config.flush_size = 10;
  config.upload_rows_t1 = 4;
  config.upload_rows_t2 = 4;
  config.seed = 99;

  SynchronousDeployment deployment(config);
  std::printf("day | on-time (truth) | server answer | view rows | synced\n");
  std::printf("----+-----------------+---------------+-----------+-------\n");
  for (size_t day = 0; day < scenario.orders.size(); ++day) {
    const Status st =
        deployment.Step(scenario.orders[day], scenario.deliveries[day]);
    if (!st.ok()) {
      std::fprintf(stderr, "step failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const StepMetrics& m = deployment.step_metrics().back();
    std::printf("%3llu | %15llu | %13llu | %9llu | %s\n",
                static_cast<unsigned long long>(m.t),
                static_cast<unsigned long long>(m.true_count),
                static_cast<unsigned long long>(m.view_answer),
                static_cast<unsigned long long>(m.view_rows),
                m.synced ? "yes" : "");
  }

  const RunSummary s = deployment.Summary();
  std::printf("\nAfter %llu days: true on-time count = %llu, "
              "avg |error| = %.2f, %llu view updates posted.\n",
              static_cast<unsigned long long>(s.steps),
              static_cast<unsigned long long>(s.final_true_count),
              s.l1_error.mean(),
              static_cast<unsigned long long>(s.updates));
  std::printf("Neither server ever saw a sale, a delivery, or a true count "
              "— only DP-sized batches (eps = %.1f).\n",
              deployment.engine().accountant().EventLevelEpsilon());
  return 0;
}
