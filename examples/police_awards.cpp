// The paper's CPDB use case (query Q2): a private Allegation stream joined
// against a *public* Award relation —
//
//   "How many times has an officer received an award despite having been
//    found to have misconduct in the past 10 days?"
//
// This example shows two IncShrink-specific behaviours:
//   1. public relations are uploaded unpadded and carry no privacy budget;
//   2. the truncation bound omega trades accuracy for efficiency — we run
//      the same stream with a generous and a starving omega.

#include <cstdio>

#include "src/core/engine.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

using namespace incshrink;

int main() {
  CpdbParams params;
  params.steps = 72;  // one year of 5-day upload periods
  const GeneratedWorkload workload = GenerateCpdb(params);

  std::printf("CPDB-like stream: %llu allegations, %llu awards, "
              "%llu qualifying pairs (avg %.1f new view entries/step)\n\n",
              static_cast<unsigned long long>(workload.total_t1),
              static_cast<unsigned long long>(workload.total_t2),
              static_cast<unsigned long long>(workload.total_view_entries),
              workload.avg_view_entries_per_step());

  std::printf("%8s | %10s | %10s | %12s | %12s\n", "omega", "avg L1",
              "rel. err", "avg QET", "Shrink/updt");
  std::printf("---------+------------+------------+--------------+------------"
              "--\n");
  for (const uint32_t omega : {2u, 10u}) {
    IncShrinkConfig config = DefaultCpdbConfig();
    config.strategy = Strategy::kDpAnt;
    config.omega = omega;
    config.join.omega = omega;
    config.budget_b = 2 * omega;  // the paper's Fig.8 convention
    config.flush_interval = 24;

    const RunSummary s = RunWorkload(config, workload);
    std::printf("%8u | %10.2f | %10.3f | %12s | %12s\n", omega,
                s.l1_error.mean(), s.relative_error.mean(),
                FormatSeconds(s.qet_seconds.mean()).c_str(),
                FormatSeconds(s.shrink_seconds.mean()).c_str());
  }

  std::printf(
      "\nA small omega starves the view (many true joins truncated), a\n"
      "large omega keeps every pair but pays more padding per invocation —\n"
      "the trade-off of the paper's Section 7.4.\n");
  return 0;
}
