// Compares every view-maintenance strategy the paper evaluates on one
// growing stream — the live version of Table 2's trade-off story:
//
//   NM   never materializes (exact but each query re-joins everything),
//   EP   materializes everything with exhaustive padding (exact, bloated),
//   OTM  materializes once and goes stale (fast, useless answers),
//   DP-Timer / DP-ANT  shrink DP-sized batches into the view (the sweet
//        spot: near-exact answers, small view, cheap queries).

#include <cstdio>

#include "src/core/engine.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

using namespace incshrink;

int main() {
  TpcDsParams params;
  params.steps = 150;
  const GeneratedWorkload workload = GenerateTpcDs(params);

  std::printf("TPC-ds-like stream over %llu steps, %llu qualifying pairs\n\n",
              static_cast<unsigned long long>(workload.steps()),
              static_cast<unsigned long long>(workload.total_view_entries));
  std::printf("%9s | %8s | %8s | %12s | %12s | %10s\n", "strategy", "avg L1",
              "rel.err", "avg QET", "total MPC", "view MB");
  std::printf("----------+----------+----------+--------------+--------------"
              "+-----------\n");

  for (const Strategy strategy :
       {Strategy::kDpTimer, Strategy::kDpAnt, Strategy::kEp, Strategy::kOtm,
        Strategy::kNm}) {
    IncShrinkConfig config = DefaultTpcDsConfig();
    config.strategy = strategy;
    config.flush_interval = 50;
    const RunSummary s = RunWorkload(config, workload);
    std::printf("%9s | %8.2f | %8.3f | %12s | %12s | %10.3f\n",
                StrategyName(strategy), s.l1_error.mean(),
                s.relative_error.mean(),
                FormatSeconds(s.qet_seconds.mean()).c_str(),
                FormatSeconds(s.total_mpc_seconds).c_str(), s.final_view_mb);
  }

  std::printf(
      "\nReading guide: NM and EP answer exactly but pay for it (QET, view\n"
      "size); OTM is fast but wrong; the DP protocols sit in the middle —\n"
      "the paper's 3-way privacy/accuracy/efficiency trade-off.\n");
  return 0;
}
