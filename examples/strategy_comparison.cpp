// Compares every view-maintenance strategy the paper evaluates on one
// growing stream — the live version of Table 2's trade-off story:
//
//   NM   never materializes (exact but each query re-joins everything),
//   EP   materializes everything with exhaustive padding (exact, bloated),
//   OTM  materializes once and goes stale (fast, useless answers),
//   DP-Timer / DP-ANT  shrink DP-sized batches into the view (the sweet
//        spot: near-exact answers, small view, cheap queries).
//
// All five deployments run concurrently through the deterministic parallel
// sweep (RunConfigSweep); the worker count never changes any printed bit.
// Note: rel.err is the run-level relative error (mean L1 / mean true
// answer, Table 2's statistic), not the per-query mean the pre-sweep
// version of this example printed.

#include <cstdio>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

using namespace incshrink;

int main() {
  TpcDsParams params;
  params.steps = 150;
  const GeneratedWorkload workload = GenerateTpcDs(params);

  std::printf("TPC-ds-like stream over %llu steps, %llu qualifying pairs\n\n",
              static_cast<unsigned long long>(workload.steps()),
              static_cast<unsigned long long>(workload.total_view_entries));
  std::printf("%9s | %8s | %8s | %12s | %12s | %10s\n", "strategy", "avg L1",
              "rel.err", "avg QET", "total MPC", "view MB");
  std::printf("----------+----------+----------+--------------+--------------"
              "+-----------\n");

  const Strategy kStrategies[] = {Strategy::kDpTimer, Strategy::kDpAnt,
                                  Strategy::kEp, Strategy::kOtm,
                                  Strategy::kNm};
  std::vector<SweepPoint> points;
  for (const Strategy strategy : kStrategies) {
    IncShrinkConfig config = DefaultTpcDsConfig();
    config.strategy = strategy;
    config.flush_interval = 50;
    points.push_back(
        {StrategyName(strategy), config, &workload, /*num_seeds=*/1});
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  for (size_t i = 0; i < points.size(); ++i) {
    const AveragedRun& s = rows[i];
    std::printf("%9s | %8.2f | %8.3f | %12s | %12s | %10.3f\n",
                points[i].label.c_str(), s.l1_error, s.relative_error,
                FormatSeconds(s.qet_seconds).c_str(),
                FormatSeconds(s.total_mpc_seconds).c_str(), s.view_mb);
  }

  std::printf(
      "\nReading guide: NM and EP answer exactly but pay for it (QET, view\n"
      "size); OTM is fast but wrong; the DP protocols sit in the middle —\n"
      "the paper's 3-way privacy/accuracy/efficiency trade-off.\n");
  return 0;
}
