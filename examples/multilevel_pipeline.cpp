// The paper's Section-8 extension: multi-level "Transform-and-Shrink" for
// complex queries. The query
//
//   SELECT COUNT(*) FROM T1 JOIN T2 ON key
//   WHERE T1.severity >= 100 AND T2.date - T1.date <= 10
//
// is decomposed into a filter operator and a join operator, each running
// its own IncShrink instance with its own slice of the privacy budget. The
// Appendix-D.2 optimizer decides how to split the budget: a starved
// operator floods its successor with dummy tuples.

#include <cstdio>
#include <vector>

#include "src/core/multilevel.h"
#include "src/dp/allocation.h"

using namespace incshrink;

int main() {
  const uint64_t kSteps = 60;

  // Build the stream: T1 records carry a severity payload; only severe ones
  // (>= 100) should reach the join. Each record is joined by one T2 record
  // two steps later.
  std::vector<std::vector<LogicalRecord>> t1(kSteps), t2(kSteps);
  Rng rng(123);
  Word rid = 1, key = 1;
  uint64_t expected = 0;
  for (uint64_t t = 0; t + 4 < kSteps; ++t) {
    for (int i = 0; i < 3; ++i) {
      const bool severe = rng.Bernoulli(0.4);
      const Word k = key++;
      t1[t].push_back({t + 1, rid++, k, static_cast<Word>(t + 1),
                       severe ? 150u : 20u});
      t2[t + 2].push_back({t + 3, rid++, k, static_cast<Word>(t + 3), 0});
      if (severe) ++expected;
    }
  }

  // Let the Appendix-D.2 optimizer split eps = 3 across the two operators.
  std::vector<OperatorSpec> ops(2);
  ops[0].kind = OperatorSpec::Kind::kFilter;
  ops[0].input_rows1 = 4 * kSteps;
  ops[0].output_rows = 6 * kSteps / 5;
  ops[0].sensitivity = 1;
  ops[0].releases = kSteps / 2;
  ops[1].kind = OperatorSpec::Kind::kJoin;
  ops[1].input_rows1 = 6 * kSteps / 5;
  ops[1].input_rows2 = 4 * kSteps;
  ops[1].output_rows = 6 * kSteps / 5;
  ops[1].sensitivity = 10;
  ops[1].releases = kSteps / 3;
  const AllocationResult alloc =
      OptimizePrivacyAllocation(ops, /*eps_total=*/3.0, /*lg_total=*/1e9);
  std::printf("budget allocation: filter eps1 = %.2f, join eps2 = %.2f "
              "(E_Q = %.3f)\n\n",
              alloc.eps[0], alloc.eps[1], alloc.efficiency);

  MultiLevelPipeline::Config cfg;
  cfg.eps1 = alloc.eps[0];
  cfg.eps2 = alloc.eps[1];
  cfg.filter = FilterSpec{100, 0xFFFFFFFF};
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.omega = 1;
  cfg.budget_b = 10;
  cfg.window_steps = 8;
  cfg.timer_T1 = 2;
  cfg.timer_T2 = 3;
  cfg.upload_rows_t1 = 4;
  cfg.upload_rows_t2 = 4;

  MultiLevelPipeline pipeline(cfg);
  for (uint64_t t = 0; t < kSteps; ++t) {
    const Status st = pipeline.Step(t1[t], t2[t]);
    if (!st.ok()) {
      std::fprintf(stderr, "step failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const RunSummary s = pipeline.Summary();
  std::printf("steps                 : %llu\n",
              static_cast<unsigned long long>(s.steps));
  std::printf("true filtered joins   : %llu\n",
              static_cast<unsigned long long>(s.final_true_count));
  std::printf("final view answer     : %llu\n",
              static_cast<unsigned long long>(
                  pipeline.step_metrics().back().view_answer));
  std::printf("avg |error|           : %.2f\n", s.l1_error.mean());
  std::printf("V1 rows / V2 rows     : %llu / %llu\n",
              static_cast<unsigned long long>(pipeline.v1().size()),
              static_cast<unsigned long long>(pipeline.v2().size()));
  std::printf("total MPC time (sim)  : %.2f s\n", s.total_mpc_seconds);
  std::printf("avg QET (sim)         : %.4f s\n", s.qet_seconds.mean());
  return 0;
}
