// Quickstart: stand up an IncShrink deployment in ~40 lines.
//
// Two data owners stream records to two non-colluding servers; the servers
// maintain a materialized join view with the sDPTimer incremental-MPC
// protocol, and an analyst issues a COUNT query at every step.

#include <cstdio>

#include "src/core/owner_client.h"
#include "src/workload/generators.h"

using namespace incshrink;

int main() {
  // 1. Configure the deployment: join view "T2 row arrives within 10 days
  //    of its T1 partner", eps = 1.5, truncation omega = 1, lifetime
  //    contribution budget b = 10, view update every T = 10 steps.
  IncShrinkConfig config = DefaultTpcDsConfig();
  config.strategy = Strategy::kDpTimer;

  // 2. Generate a growing workload (a synthetic TPC-ds-like sales/returns
  //    stream; swap in your own per-step record lists to use real data).
  TpcDsParams params;
  params.steps = 120;
  const GeneratedWorkload workload = GenerateTpcDs(params);

  // 3. Run in lockstep: each Step() has the two OwnerClients push one
  //    upload frame each into the engine's channels, then the engine drains
  //    them, maintains the view through Transform + Shrink, and answers the
  //    analyst's count query.
  SynchronousDeployment deployment(config);
  const Status status = deployment.Run(workload.t1, workload.t2);
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. Inspect the results.
  const RunSummary s = deployment.Summary();
  std::printf("IncShrink quickstart (sDPTimer, eps = %.1f)\n", config.eps);
  std::printf("  steps processed        : %llu\n",
              static_cast<unsigned long long>(s.steps));
  std::printf("  view updates posted    : %llu\n",
              static_cast<unsigned long long>(s.updates));
  std::printf("  final true answer      : %llu\n",
              static_cast<unsigned long long>(s.final_true_count));
  std::printf("  avg |answer - truth|   : %.2f\n", s.l1_error.mean());
  std::printf("  avg relative error     : %.3f\n", s.relative_error.mean());
  std::printf("  avg query time (sim)   : %.4f s\n", s.qet_seconds.mean());
  std::printf("  total MPC time (sim)   : %.2f s\n", s.total_mpc_seconds);
  std::printf("  materialized view size : %.3f MB (%llu rows)\n",
              s.final_view_mb,
              static_cast<unsigned long long>(s.final_view_rows));
  std::printf("  event-level epsilon    : %.2f\n",
              deployment.engine().accountant().EventLevelEpsilon());
  return 0;
}
