// Owner storm: throughput and service-tail of the real socket transport
// under a fleet-scale upload storm — 10k+ simulated owners, Zipf-skewed
// arrivals, multiplexed over a bounded set of real TCP connections into one
// SocketListener.
//
// The storm is generated once, deterministically (every frame's bytes are a
// pure function of --zipf-s and the fixed storm seed), then replayed through
// TWO transports:
//
//   1. in-process — frames pushed straight into bounded UploadChannels and
//      drained with the round-robin drain bound (the pre-socket baseline);
//   2. socket     — the same frames travel through SocketSenders over real
//      loopback TCP into a SocketListener (validation on: every payload runs
//      through the hardened DecodeUploadFrame) feeding identical channels.
//
// Both runs fold every drained frame into per-channel FNV-1a fingerprints
// (combined in fixed channel order), so the bench is also a large-scale
// determinism check: the socket transport must reproduce the in-process
// byte stream exactly, or the bench exits nonzero. Reported per transport:
// drained frames/sec (wall clock, measurement-only), p50/p99 service gap in
// drain rounds (emission round -> drain round, nearest-rank).
//
// Flags: --owners N --conns M --storm-events E (0 = 3 per owner)
//        --drain-bound K --zipf-s S (0 = uniform arrivals)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/metrics.h"
#include "src/net/socket_transport.h"
#include "src/net/upload_channel.h"
#include "src/storage/serialization.h"
#include "src/workload/generators.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr uint64_t kStormSeed = 2022;  // fixed: the storm is part of the bench
constexpr size_t kChannelCapacity = 64;
constexpr uint64_t kRoundBudgetPerEvent = 64;  // stall cutoff, not a timer

// One pre-generated storm event: an encoded IUF v1 frame bound for one
// connection/channel.
struct StormEvent {
  size_t conn = 0;
  std::vector<uint8_t> payload;
};

// Deterministic storm: event e picks its owner from Zipf(s) over the owner
// ranks (s = 0 is uniform), and the frame carries that owner's own logical
// step counter plus owner-derived share words — so any reordering or
// corruption in flight lands in the fingerprints.
std::vector<StormEvent> GenerateStorm(uint64_t owners, uint64_t conns,
                                      uint64_t events, double zipf_s) {
  Rng rng(kStormSeed);
  ZipfSampler sampler(static_cast<size_t>(owners), zipf_s);
  std::vector<uint64_t> owner_step(owners, 0);
  std::vector<StormEvent> storm;
  storm.reserve(events);
  for (uint64_t e = 0; e < events; ++e) {
    const size_t owner = sampler.Sample(&rng);
    UploadFrame frame;
    frame.owner_step = ++owner_step[owner];
    frame.batch = SharedRows(kSrcWidth);
    std::vector<Word> row(kSrcWidth);
    for (size_t c = 0; c < kSrcWidth; ++c) row[c] = rng.Next32();
    frame.batch.AppendSecretRow(row, &rng);
    LogicalRecord rec;
    rec.step = frame.owner_step;
    rec.rid = static_cast<uint32_t>(owner);
    rec.key = static_cast<uint32_t>(e & 0xFFFFFFFFu);
    rec.date = rng.Next32();
    rec.payload = rng.Next32();
    frame.arrivals.push_back(rec);
    StormEvent ev;
    ev.conn = owner % conns;
    ev.payload = EncodeUploadFrame(frame);
    storm.push_back(std::move(ev));
  }
  return storm;
}

struct Fingerprint {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  void MixByte(uint8_t b) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) MixByte((v >> (8 * i)) & 0xFF);
  }
  void MixBytes(const std::vector<uint8_t>& bytes) {
    Mix(bytes.size());
    for (uint8_t b : bytes) MixByte(b);
  }
};

struct TransportReport {
  uint64_t frames = 0;
  uint64_t rounds = 0;
  uint64_t fingerprint = 0;
  uint64_t gap_p50 = 0;
  uint64_t gap_p99 = 0;
  double seconds = 0;
  bool ok = false;
};

// Folds the per-channel fingerprints, in fixed channel order, into the
// run's single fingerprint — per-channel order is all the transport
// guarantees (cross-channel interleaving is pacing, not content).
uint64_t CombineFingerprints(const std::vector<Fingerprint>& per_channel) {
  Fingerprint combined;
  for (const Fingerprint& fp : per_channel) combined.Mix(fp.hash);
  return combined.hash;
}

// Baseline: the storm pushed straight into bounded in-process channels.
// Emission and draining interleave in rounds — up to `drain_bound` frames
// enter and leave each channel per round — which is the same pacing the
// socket run below uses, so the service-gap stats are comparable.
TransportReport RunInProcess(const std::vector<StormEvent>& storm,
                             uint64_t conns, uint64_t drain_bound) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<UploadChannel> channels;
  channels.reserve(conns);
  for (uint64_t c = 0; c < conns; ++c) channels.emplace_back(kChannelCapacity);
  // Per-connection FIFO of pending events (index into storm) + the round
  // each pushed frame entered its channel.
  std::vector<std::deque<size_t>> pending(conns);
  for (size_t e = 0; e < storm.size(); ++e) pending[storm[e].conn].push_back(e);
  std::vector<std::deque<uint64_t>> emit_round(conns);
  std::vector<Fingerprint> fp(conns);
  std::vector<uint64_t> gaps;
  gaps.reserve(storm.size());
  TransportReport rep;
  const uint64_t round_budget = kRoundBudgetPerEvent * (storm.size() + 1);
  while (rep.frames < storm.size()) {
    for (uint64_t c = 0; c < conns; ++c) {
      for (uint64_t k = 0; k < drain_bound && !pending[c].empty(); ++k) {
        if (channels[c].full()) break;
        const size_t e = pending[c].front();
        channels[c].TryPush(storm[e].payload);
        pending[c].pop_front();
        emit_round[c].push_back(rep.rounds);
      }
    }
    for (uint64_t c = 0; c < conns; ++c) {
      std::vector<uint8_t> frame;
      for (uint64_t k = 0; k < drain_bound; ++k) {
        if (!channels[c].TryPop(&frame)) break;
        fp[c].MixBytes(frame);
        gaps.push_back(rep.rounds - emit_round[c].front());
        emit_round[c].pop_front();
        ++rep.frames;
      }
    }
    ++rep.rounds;
    if (rep.rounds > round_budget) {
      std::fprintf(stderr, "error: in-process storm stalled (%llu/%zu)\n",
                   static_cast<unsigned long long>(rep.frames), storm.size());
      return rep;
    }
  }
  rep.fingerprint = CombineFingerprints(fp);
  rep.gap_p50 = NearestRankPercentile(gaps, 50);
  rep.gap_p99 = NearestRankPercentile(gaps, 99);
  rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  rep.ok = true;
  return rep;
}

// The real thing: the same storm over loopback TCP. Each of the M senders
// announces channel id = its connection index; owners multiplex owner ->
// conn = owner mod M. Per round each sender wires up to `drain_bound`
// staged frames (respecting kernel backpressure), the listener sweeps, and
// each channel drains up to `drain_bound` frames in fixed order.
TransportReport RunSocket(const std::vector<StormEvent>& storm, uint64_t conns,
                          uint64_t drain_bound) {
  const auto start = std::chrono::steady_clock::now();
  TransportReport rep;
  std::vector<UploadChannel> channels;
  channels.reserve(conns);
  std::vector<UploadChannel*> channel_ptrs;
  for (uint64_t c = 0; c < conns; ++c) {
    channels.emplace_back(kChannelCapacity);
    channel_ptrs.push_back(&channels.back());
  }
  SocketListenerOptions lopt;
  lopt.validate_frames = true;  // full hardened path, per-frame decode
  lopt.max_connections = conns;
  SocketListener listener(channel_ptrs, lopt);
  if (Status s = listener.Bind(0); !s.ok()) {
    std::fprintf(stderr, "error: listener bind failed: %s\n",
                 s.message().c_str());
    return rep;
  }
  std::vector<SocketSender> senders(conns);
  for (uint64_t c = 0; c < conns; ++c) {
    if (Status s = senders[c].Connect("127.0.0.1", listener.port(),
                                      static_cast<uint32_t>(c));
        !s.ok()) {
      std::fprintf(stderr, "error: sender %llu connect failed: %s\n",
                   static_cast<unsigned long long>(c), s.message().c_str());
      return rep;
    }
  }
  std::vector<std::deque<size_t>> pending(conns);
  for (size_t e = 0; e < storm.size(); ++e) pending[storm[e].conn].push_back(e);
  std::vector<std::deque<uint64_t>> emit_round(conns);
  std::vector<Fingerprint> fp(conns);
  std::vector<uint64_t> gaps;
  gaps.reserve(storm.size());
  const uint64_t round_budget = kRoundBudgetPerEvent * (storm.size() + 1);
  while (rep.frames < storm.size()) {
    for (uint64_t c = 0; c < conns; ++c) {
      for (uint64_t k = 0; k < drain_bound && !pending[c].empty(); ++k) {
        if (Result<size_t> w = senders[c].Flush(); !w.ok()) {
          std::fprintf(stderr, "error: sender %llu flush failed: %s\n",
                       static_cast<unsigned long long>(c),
                       w.status().message().c_str());
          return rep;
        }
        if (!senders[c].fully_flushed()) break;  // kernel backpressure
        const size_t e = pending[c].front();
        if (Status s = senders[c].QueueFrame(storm[e].payload); !s.ok()) {
          std::fprintf(stderr, "error: sender %llu queue failed: %s\n",
                       static_cast<unsigned long long>(c),
                       s.message().c_str());
          return rep;
        }
        pending[c].pop_front();
        emit_round[c].push_back(rep.rounds);
      }
      if (Result<size_t> w = senders[c].Flush(); !w.ok()) {
        std::fprintf(stderr, "error: sender %llu flush failed: %s\n",
                     static_cast<unsigned long long>(c),
                     w.status().message().c_str());
        return rep;
      }
    }
    listener.Poll();
    for (uint64_t c = 0; c < conns; ++c) {
      std::vector<uint8_t> frame;
      for (uint64_t k = 0; k < drain_bound; ++k) {
        if (!channels[c].TryPop(&frame)) break;
        fp[c].MixBytes(frame);
        gaps.push_back(rep.rounds - emit_round[c].front());
        emit_round[c].pop_front();
        ++rep.frames;
      }
    }
    ++rep.rounds;
    if (rep.rounds > round_budget) {
      std::fprintf(stderr, "error: socket storm stalled (%llu/%zu)\n",
                   static_cast<unsigned long long>(rep.frames), storm.size());
      return rep;
    }
  }
  if (listener.frames_rejected() != 0) {
    std::fprintf(stderr, "error: listener rejected %llu honest frames\n",
                 static_cast<unsigned long long>(listener.frames_rejected()));
    return rep;
  }
  listener.Close();
  rep.fingerprint = CombineFingerprints(fp);
  rep.gap_p50 = NearestRankPercentile(gaps, 50);
  rep.gap_p99 = NearestRankPercentile(gaps, 99);
  rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  rep.ok = true;
  return rep;
}

void PrintReport(const char* name, const TransportReport& rep) {
  std::printf("%-12s frames=%-8llu rounds=%-7llu fps=%-11.0f "
              "gap_p50=%-4llu gap_p99=%-4llu fingerprint=%016llx\n",
              name, static_cast<unsigned long long>(rep.frames),
              static_cast<unsigned long long>(rep.rounds),
              rep.seconds > 0 ? rep.frames / rep.seconds : 0.0,
              static_cast<unsigned long long>(rep.gap_p50),
              static_cast<unsigned long long>(rep.gap_p99),
              static_cast<unsigned long long>(rep.fingerprint));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  const uint64_t owners = opt.owners == 0 ? 1 : opt.owners;
  const uint64_t conns = opt.conns == 0 ? 1 : opt.conns;
  const uint64_t drain_bound = opt.drain_bound == 0 ? 1 : opt.drain_bound;
  const uint64_t events =
      opt.storm_events == 0 ? 3 * owners : opt.storm_events;

  PrintHeader("Owner storm: socket transport vs in-process baseline");
  std::printf("owners=%llu conns=%llu events=%llu drain_bound=%llu "
              "zipf_s=%.2f\n\n",
              static_cast<unsigned long long>(owners),
              static_cast<unsigned long long>(conns),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(drain_bound), opt.zipf_s);

  const std::vector<StormEvent> storm =
      GenerateStorm(owners, conns, events, opt.zipf_s);
  uint64_t storm_bytes = 0;
  for (const StormEvent& ev : storm) storm_bytes += ev.payload.size();
  std::printf("storm: %zu frames, %llu bytes\n\n", storm.size(),
              static_cast<unsigned long long>(storm_bytes));

  const TransportReport inproc = RunInProcess(storm, conns, drain_bound);
  if (!inproc.ok) return 1;
  PrintReport("in-process", inproc);

  const TransportReport socket = RunSocket(storm, conns, drain_bound);
  if (!socket.ok) return 1;
  PrintReport("socket", socket);

  const bool match = socket.fingerprint == inproc.fingerprint &&
                     socket.frames == inproc.frames;
  std::printf("\nfingerprint cross-check: %s\n",
              match ? "MATCH (socket run reproduces in-process bytes exactly)"
                    : "MISMATCH");
  return match ? 0 : 1;
}
