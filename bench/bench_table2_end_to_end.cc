// Reproduces **Table 2**: aggregated end-to-end comparison of DP-Timer,
// DP-ANT, OTM, EP and NM on both datasets — average query error (L1,
// relative, improvement over OTM), average execution times (Transform,
// Shrink, QET, improvements over NM and EP) and materialized view sizes.
//
// Paper reference points (shape, not absolute values — see EXPERIMENTS.md):
//   * DP relative errors < 0.05, OTM relative error ~1, EP/NM exact;
//   * QET: DP << EP << NM, with >= 7800x improvement of DP over NM;
//   * view size: DP ~100-300x smaller than EP.
//
// The five strategies of a dataset run concurrently (one deployment each,
// like the paper's single-deployment table) via RunConfigSweep.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr Strategy kStrategies[] = {Strategy::kDpTimer, Strategy::kDpAnt,
                                    Strategy::kOtm, Strategy::kEp,
                                    Strategy::kNm};

void RunDataset(const DatasetSpec& spec) {
  std::vector<SweepPoint> points;
  for (const Strategy s : kStrategies) {
    points.push_back({StrategyName(s), WithStrategy(spec.config, s),
                      &spec.workload, /*num_seeds=*/1});
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);
  const AveragedRun& timer = rows[0];
  const AveragedRun& ant = rows[1];
  const AveragedRun& otm = rows[2];
  const AveragedRun& ep = rows[3];
  const AveragedRun& nm = rows[4];

  std::printf("\n--- %s (%llu steps, %llu true pairs) ---\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.workload.steps()),
              static_cast<unsigned long long>(
                  spec.workload.total_view_entries));
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "metric", "DP-Timer",
              "DP-ANT", "OTM", "EP", "NM");

  std::printf("%-28s %12.2f %12.2f %10.2f %10.2f %10.2f\n", "Avg L1 error",
              timer.l1_error, ant.l1_error, otm.l1_error, ep.l1_error,
              nm.l1_error);
  std::printf("%-28s %12.3f %12.3f %10.3f %10.3f %10.3f\n",
              "Relative error", timer.relative_error, ant.relative_error,
              otm.relative_error, ep.relative_error, nm.relative_error);
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "Error imp. (vs OTM)",
              FormatImprovement(otm.l1_error /
                                std::max(1e-9, timer.l1_error))
                  .c_str(),
              FormatImprovement(otm.l1_error / std::max(1e-9, ant.l1_error))
                  .c_str(),
              "1x", "-", "-");

  std::printf("%-28s %12.3f %12.3f %10s %10.3f %10s\n",
              "Avg Transform time (s)", timer.transform_seconds,
              ant.transform_seconds, "N/A", ep.transform_seconds, "N/A");
  std::printf("%-28s %12.3f %12.3f %10s %10s %10s\n", "Avg Shrink time (s)",
              timer.shrink_seconds, ant.shrink_seconds, "N/A", "N/A", "N/A");
  std::printf("%-28s %12.4f %12.4f %10.4f %10.4f %10.2f\n", "Avg QET (s)",
              timer.qet_seconds, ant.qet_seconds, otm.qet_seconds,
              ep.qet_seconds, nm.qet_seconds);
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "QET imp. (over NM)",
              FormatImprovement(nm.qet_seconds / timer.qet_seconds).c_str(),
              FormatImprovement(nm.qet_seconds / ant.qet_seconds).c_str(),
              "-", FormatImprovement(nm.qet_seconds / ep.qet_seconds).c_str(),
              "1x");
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "QET imp. (over EP)",
              FormatImprovement(ep.qet_seconds / timer.qet_seconds).c_str(),
              FormatImprovement(ep.qet_seconds / ant.qet_seconds).c_str(),
              "-", "1x", "N/A");

  std::printf("%-28s %12.3f %12.3f %10.3f %10.3f %10s\n",
              "Avg view size (MB)", timer.view_mb, ant.view_mb, otm.view_mb,
              ep.view_mb, "N/A");
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "View size imp. (vs EP)",
              FormatImprovement(ep.view_mb / std::max(1e-9, timer.view_mb))
                  .c_str(),
              FormatImprovement(ep.view_mb / std::max(1e-9, ant.view_mb))
                  .c_str(),
              FormatImprovement(ep.view_mb / std::max(1e-9, otm.view_mb))
                  .c_str(),
              "1x", "N/A");
  std::printf("%-28s %12.0f %12.0f %10.0f %10.0f %10.0f\n", "View updates",
              timer.updates, ant.updates, otm.updates, ep.updates,
              nm.updates);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader(
      "Table 2: end-to-end comparison (DP protocols vs OTM / EP / NM)");
  RunDataset(MakeTpcDs(opt.steps_tpcds));
  RunDataset(MakeCpdb(opt.steps_cpdb));
  return 0;
}
