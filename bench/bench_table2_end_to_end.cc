// Reproduces **Table 2**: aggregated end-to-end comparison of DP-Timer,
// DP-ANT, OTM, EP and NM on both datasets — average query error (L1,
// relative, improvement over OTM), average execution times (Transform,
// Shrink, QET, improvements over NM and EP) and materialized view sizes.
//
// Paper reference points (shape, not absolute values — see EXPERIMENTS.md):
//   * DP relative errors < 0.05, OTM relative error ~1, EP/NM exact;
//   * QET: DP << EP << NM, with >= 7800x improvement of DP over NM;
//   * view size: DP ~100-300x smaller than EP.

#include <map>

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const DatasetSpec& spec) {
  std::map<Strategy, RunSummary> results;
  for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt,
                           Strategy::kOtm, Strategy::kEp, Strategy::kNm}) {
    results[s] = RunWorkload(WithStrategy(spec.config, s), spec.workload);
  }

  const RunSummary& timer = results[Strategy::kDpTimer];
  const RunSummary& ant = results[Strategy::kDpAnt];
  const RunSummary& otm = results[Strategy::kOtm];
  const RunSummary& ep = results[Strategy::kEp];
  const RunSummary& nm = results[Strategy::kNm];

  std::printf("\n--- %s (%llu steps, %llu true pairs) ---\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.workload.steps()),
              static_cast<unsigned long long>(
                  spec.workload.total_view_entries));
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "metric", "DP-Timer",
              "DP-ANT", "OTM", "EP", "NM");

  std::printf("%-28s %12.2f %12.2f %10.2f %10.2f %10.2f\n", "Avg L1 error",
              timer.l1_error.mean(), ant.l1_error.mean(),
              otm.l1_error.mean(), ep.l1_error.mean(), nm.l1_error.mean());
  std::printf("%-28s %12.3f %12.3f %10.3f %10.3f %10.3f\n",
              "Relative error", timer.OverallRelativeError(),
              ant.OverallRelativeError(), otm.OverallRelativeError(),
              ep.OverallRelativeError(), nm.OverallRelativeError());
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "Error imp. (vs OTM)",
              FormatImprovement(otm.l1_error.mean() /
                                std::max(1e-9, timer.l1_error.mean()))
                  .c_str(),
              FormatImprovement(otm.l1_error.mean() /
                                std::max(1e-9, ant.l1_error.mean()))
                  .c_str(),
              "1x", "-", "-");

  std::printf("%-28s %12.3f %12.3f %10s %10.3f %10s\n",
              "Avg Transform time (s)", timer.transform_seconds.mean(),
              ant.transform_seconds.mean(), "N/A",
              ep.transform_seconds.mean(), "N/A");
  std::printf("%-28s %12.3f %12.3f %10s %10s %10s\n", "Avg Shrink time (s)",
              timer.shrink_seconds.mean(), ant.shrink_seconds.mean(), "N/A",
              "N/A", "N/A");
  std::printf("%-28s %12.4f %12.4f %10.4f %10.4f %10.2f\n", "Avg QET (s)",
              timer.qet_seconds.mean(), ant.qet_seconds.mean(),
              otm.qet_seconds.mean(), ep.qet_seconds.mean(),
              nm.qet_seconds.mean());
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "QET imp. (over NM)",
              FormatImprovement(nm.qet_seconds.mean() /
                                timer.qet_seconds.mean())
                  .c_str(),
              FormatImprovement(nm.qet_seconds.mean() /
                                ant.qet_seconds.mean())
                  .c_str(),
              "-",
              FormatImprovement(nm.qet_seconds.mean() /
                                ep.qet_seconds.mean())
                  .c_str(),
              "1x");
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "QET imp. (over EP)",
              FormatImprovement(ep.qet_seconds.mean() /
                                timer.qet_seconds.mean())
                  .c_str(),
              FormatImprovement(ep.qet_seconds.mean() /
                                ant.qet_seconds.mean())
                  .c_str(),
              "-", "1x", "N/A");

  std::printf("%-28s %12.3f %12.3f %10.3f %10.3f %10s\n",
              "Avg view size (MB)", timer.final_view_mb, ant.final_view_mb,
              otm.final_view_mb, ep.final_view_mb, "N/A");
  std::printf("%-28s %12s %12s %10s %10s %10s\n", "View size imp. (vs EP)",
              FormatImprovement(ep.final_view_mb /
                                std::max(1e-9, timer.final_view_mb))
                  .c_str(),
              FormatImprovement(ep.final_view_mb /
                                std::max(1e-9, ant.final_view_mb))
                  .c_str(),
              FormatImprovement(ep.final_view_mb /
                                std::max(1e-9, otm.final_view_mb))
                  .c_str(),
              "1x", "N/A");
  std::printf("%-28s %12llu %12llu %10llu %10llu %10llu\n", "View updates",
              static_cast<unsigned long long>(timer.updates),
              static_cast<unsigned long long>(ant.updates),
              static_cast<unsigned long long>(otm.updates),
              static_cast<unsigned long long>(ep.updates),
              static_cast<unsigned long long>(nm.updates));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader(
      "Table 2: end-to-end comparison (DP protocols vs OTM / EP / NM)");
  RunDataset(MakeTpcDs(opt.steps_tpcds));
  RunDataset(MakeCpdb(opt.steps_cpdb));
  return 0;
}
