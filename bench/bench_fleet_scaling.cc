// Fleet scaling: wall-clock throughput (tenant-steps/sec) of a multi-tenant
// DeploymentFleet as the tenant count and worker count grow.
//
// Each tenant is an independent deployment (alternating TPC-ds / CPDB
// streams, cycling Timer / ANT / EP strategies, per-tenant RNG substreams
// derived from one root seed). Because tenants share no protocol state, the
// fleet parallelizes embarrassingly: on a multicore host an 8-tenant fleet
// at 4 threads should finish >2x faster than at 1 thread, while producing
// bit-identical per-tenant results — the bench cross-checks a summary
// fingerprint across all thread counts and prints the verdict.
//
// Wall time here is measurement-only (std::chrono::steady_clock around
// RunAll); nothing timed ever feeds back into simulated results.

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

struct Fingerprint {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
};

uint64_t FleetFingerprint(const DeploymentFleet& fleet) {
  Fingerprint fp;
  for (size_t i = 0; i < fleet.num_tenants(); ++i) {
    const RunSummary s = fleet.TenantSummary(i);
    fp.Mix(s.steps);
    fp.Mix(s.updates);
    fp.Mix(s.final_view_rows);
    fp.Mix(s.final_true_count);
    fp.MixDouble(s.l1_error.mean());
    fp.MixDouble(s.total_mpc_seconds);
    fp.MixDouble(s.qet_seconds.mean());
  }
  return fp.hash;
}

std::vector<DeploymentFleet::TenantSpec> MakeTenants(
    size_t count, const DatasetSpec& tpcds, const DatasetSpec& cpdb) {
  const Strategy kMix[] = {Strategy::kDpTimer, Strategy::kDpAnt,
                           Strategy::kEp};
  std::vector<DeploymentFleet::TenantSpec> tenants;
  for (size_t i = 0; i < count; ++i) {
    const DatasetSpec& spec = (i % 2 == 0) ? tpcds : cpdb;
    DeploymentFleet::TenantSpec t;
    t.name = spec.name + "/" + StrategyName(kMix[i % 3]) + "#" +
             std::to_string(i);
    t.config = WithStrategy(spec.config, kMix[i % 3]);
    t.workload = &spec.workload;
    tenants.push_back(std::move(t));
  }
  return tenants;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Fleet scaling: tenant-steps/sec vs tenants x threads");
  const DatasetSpec tpcds = MakeTpcDs(opt.steps_tpcds);
  const DatasetSpec cpdb = MakeCpdb(opt.steps_cpdb);

  std::printf("%8s %8s | %12s %14s %10s | %s\n", "tenants", "threads",
              "steps", "steps/sec", "speedup", "wall");
  bool deterministic = true;
  for (const size_t tenants : {2u, 4u, 8u}) {
    const std::vector<DeploymentFleet::TenantSpec> specs =
        MakeTenants(tenants, tpcds, cpdb);
    double base_seconds = 0;
    uint64_t base_fingerprint = 0;
    for (const int threads : {1, 2, 4}) {
      DeploymentFleet fleet(specs, {/*root_seed=*/1729, threads});
      const auto t0 = std::chrono::steady_clock::now();
      fleet.RunAll();
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(t1 - t0).count();
      const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
      const uint64_t fingerprint = FleetFingerprint(fleet);
      if (threads == 1) {
        base_seconds = seconds;
        base_fingerprint = fingerprint;
      } else if (fingerprint != base_fingerprint) {
        deterministic = false;
      }
      std::printf("%8zu %8d | %12llu %14.1f %9.2fx | %s\n", tenants, threads,
                  static_cast<unsigned long long>(stats.engine_steps),
                  static_cast<double>(stats.engine_steps) /
                      std::max(1e-9, seconds),
                  base_seconds / std::max(1e-9, seconds),
                  FormatSeconds(seconds).c_str());
    }
  }
  std::printf("\nDeterminism cross-check (per-tenant summary fingerprints "
              "identical across thread counts): %s\n",
              deterministic ? "OK" : "FAILED");
  return deterministic ? 0 : 1;
}
