// Fleet scaling: wall-clock throughput (tenant-steps/sec) of a multi-tenant
// DeploymentFleet as the tenant count and worker count grow.
//
// Each tenant is an independent deployment (alternating TPC-ds / CPDB
// streams, cycling Timer / ANT / EP strategies, per-tenant RNG substreams
// derived from one root seed). Because tenants share no protocol state, the
// fleet parallelizes embarrassingly: on a multicore host an 8-tenant fleet
// at 4 threads should finish >2x faster than at 1 thread, while producing
// bit-identical per-tenant results — the bench cross-checks a summary
// fingerprint across all thread counts and prints the verdict.
//
// Wall time here is measurement-only (std::chrono::steady_clock around
// RunAll); nothing timed ever feeds back into simulated results.

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

struct Fingerprint {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
};

uint64_t FleetFingerprint(const DeploymentFleet& fleet) {
  Fingerprint fp;
  for (size_t i = 0; i < fleet.num_tenants(); ++i) {
    const RunSummary s = fleet.TenantSummary(i);
    fp.Mix(s.steps);
    fp.Mix(s.updates);
    fp.Mix(s.final_view_rows);
    fp.Mix(s.final_true_count);
    fp.MixDouble(s.l1_error.mean());
    fp.MixDouble(s.total_mpc_seconds);
    fp.MixDouble(s.qet_seconds.mean());
  }
  return fp.hash;
}

std::vector<DeploymentFleet::TenantSpec> MakeTenants(
    size_t count, const DatasetSpec& tpcds, const DatasetSpec& cpdb) {
  const Strategy kMix[] = {Strategy::kDpTimer, Strategy::kDpAnt,
                           Strategy::kEp};
  std::vector<DeploymentFleet::TenantSpec> tenants;
  for (size_t i = 0; i < count; ++i) {
    const DatasetSpec& spec = (i % 2 == 0) ? tpcds : cpdb;
    DeploymentFleet::TenantSpec t;
    t.name = spec.name + "/" + StrategyName(kMix[i % 3]) + "#" +
             std::to_string(i);
    t.config = WithStrategy(spec.config, kMix[i % 3]);
    t.workload = &spec.workload;
    tenants.push_back(std::move(t));
  }
  return tenants;
}

// Worst p99 service latency (rounds between engine services) across the
// fleet — the tail a serving SLA would bound.
uint64_t MaxGapP99(const DeploymentFleet::FleetStats& stats) {
  uint64_t worst = 0;
  for (const auto& ts : stats.tenant_service) {
    worst = std::max(worst, ts.gap_p99);
  }
  return worst;
}

// Skewed-traffic mode (--zipf-s S): a Zipf(S) fleet — hot head, near-idle
// tail — served by the lockstep sweep vs the deterministic priority
// scheduler with a rationed budget. Reports throughput, the fleet-worst p99
// service latency and the weighted Jain fairness index, cross-checking the
// per-mode summary fingerprint across thread counts (the scheduler must be
// exactly thread-count invariant too).
bool RunSkewedTrafficBench(const Options& opt) {
  PrintHeader("Skewed traffic: lockstep sweep vs priority scheduler");
  ZipfFleetParams zp;
  zp.num_tenants = opt.tenants;
  zp.s = opt.zipf_s;
  zp.steps = opt.steps_tpcds;
  zp.seed = 1729;
  const std::vector<GeneratedWorkload> streams =
      GenerateZipfFleetWorkloads(zp);
  std::vector<DeploymentFleet::TenantSpec> specs(zp.num_tenants);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "zipf#" + std::to_string(i);
    specs[i].config = DefaultTpcDsConfig();
    specs[i].config.strategy =
        i % 2 == 0 ? Strategy::kDpTimer : Strategy::kDpAnt;
    specs[i].config.max_batches_per_step = 2;
    specs[i].workload = &streams[i];
  }

  std::printf("zipf s = %.2f, %zu tenants, %llu steps/tenant (head tenant "
              "carries %.1fx the mean volume)\n\n",
              zp.s, specs.size(),
              static_cast<unsigned long long>(zp.steps),
              ZipfWeights(zp.num_tenants, zp.s)[0]);
  std::printf("%10s %8s | %12s %14s %10s %9s | %s\n", "scheduler", "threads",
              "steps", "steps/sec", "p99 gap", "fairness", "wall");
  bool deterministic = true;
  for (const bool scheduled : {false, true}) {
    DeploymentFleet::Options fo;
    fo.root_seed = 1729;
    fo.owner_lead = 8;
    if (scheduled) {
      fo.scheduler.enabled = true;
      fo.scheduler.services_per_round =
          std::max<uint32_t>(1, static_cast<uint32_t>(specs.size() / 4));
      fo.scheduler.aging_weight = 4;
    }
    uint64_t base_fingerprint = 0;
    for (const int threads : {1, 2, 4}) {
      fo.num_threads = threads;
      DeploymentFleet fleet(specs, fo);
      const auto t0 = std::chrono::steady_clock::now();
      fleet.RunAll();
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(t1 - t0).count();
      const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
      const uint64_t fingerprint = FleetFingerprint(fleet);
      if (threads == 1) {
        base_fingerprint = fingerprint;
      } else if (fingerprint != base_fingerprint) {
        deterministic = false;
      }
      std::printf("%10s %8d | %12llu %14.1f %10llu %9.3f | %s\n",
                  scheduled ? "priority" : "lockstep", threads,
                  static_cast<unsigned long long>(stats.engine_steps),
                  static_cast<double>(stats.engine_steps) /
                      std::max(1e-9, seconds),
                  static_cast<unsigned long long>(MaxGapP99(stats)),
                  stats.jain_fairness, FormatSeconds(seconds).c_str());
    }
  }
  std::printf("\n");
  return deterministic;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Fleet scaling: tenant-steps/sec vs tenants x threads");
  const DatasetSpec tpcds = MakeTpcDs(opt.steps_tpcds);
  const DatasetSpec cpdb = MakeCpdb(opt.steps_cpdb);

  std::printf("%8s %8s | %12s %14s %10s | %s\n", "tenants", "threads",
              "steps", "steps/sec", "speedup", "wall");
  bool deterministic = true;
  for (const size_t tenants : {2u, 4u, 8u}) {
    const std::vector<DeploymentFleet::TenantSpec> specs =
        MakeTenants(tenants, tpcds, cpdb);
    double base_seconds = 0;
    uint64_t base_fingerprint = 0;
    for (const int threads : {1, 2, 4}) {
      DeploymentFleet fleet(specs, {/*root_seed=*/1729, threads});
      const auto t0 = std::chrono::steady_clock::now();
      fleet.RunAll();
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(t1 - t0).count();
      const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
      const uint64_t fingerprint = FleetFingerprint(fleet);
      if (threads == 1) {
        base_seconds = seconds;
        base_fingerprint = fingerprint;
      } else if (fingerprint != base_fingerprint) {
        deterministic = false;
      }
      std::printf("%8zu %8d | %12llu %14.1f %9.2fx | %s\n", tenants, threads,
                  static_cast<unsigned long long>(stats.engine_steps),
                  static_cast<double>(stats.engine_steps) /
                      std::max(1e-9, seconds),
                  base_seconds / std::max(1e-9, seconds),
                  FormatSeconds(seconds).c_str());
    }
  }
  if (opt.zipf_s > 0) {
    std::printf("\n");
    deterministic = RunSkewedTrafficBench(opt) && deterministic;
  }
  std::printf("\nDeterminism cross-check (per-tenant summary fingerprints "
              "identical across thread counts): %s\n",
              deterministic ? "OK" : "FAILED");
  return deterministic ? 0 : 1;
}
