// Reproduces **Figure 4**: the end-to-end accuracy/efficiency scatter —
// every strategy plotted by (avg L1 error, avg QET) for both datasets.
//
// Paper shape: NM sits at the top (slowest, exact), EP upper-left (exact,
// slow), OTM lower-right (fast, useless), and both DP protocols in the
// bottom-middle — optimized for the dual objective.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const DatasetSpec& spec) {
  std::printf("\n--- %s: avg L1 error (x) vs avg QET seconds (y) ---\n",
              spec.name.c_str());
  std::printf("%-10s %14s %14s\n", "series", "avg_L1_error", "avg_QET_s");
  for (const Strategy s : {Strategy::kNm, Strategy::kEp, Strategy::kOtm,
                           Strategy::kDpAnt, Strategy::kDpTimer}) {
    const RunSummary r =
        RunWorkload(WithStrategy(spec.config, s), spec.workload);
    std::printf("%-10s %14.3f %14.6f\n", StrategyName(s), r.l1_error.mean(),
                r.qet_seconds.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 4: end-to-end comparison scatter (eps = 1.5)");
  RunDataset(MakeTpcDs(opt.steps_tpcds));
  RunDataset(MakeCpdb(opt.steps_cpdb));
  return 0;
}
