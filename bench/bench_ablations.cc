// Ablation studies for the design choices DESIGN.md calls out, plus the
// paper's Section-8 extensions:
//
//   A. DP-Sync composition — owner-side record synchronization policies
//      composed with the server-side view update protocol (eps1 + eps2).
//   B. Transform operator choice — truncated sort-merge join (Example 5.1)
//      vs truncated nested-loop join (Algorithm 4).
//   C. Cache flushing — disabled vs Theorem-4-sized vs starving flush: the
//      flush size must cover the deferred-data bound or real tuples are
//      recycled and the error becomes permanent.
//   D. Multi-level pipelines with operator-level privacy allocation
//      (Appendix D.2): uniform vs optimizer-chosen eps split.
//   E. Filter-based views across strategies.

#include "bench/bench_common.h"
#include "src/common/logging.h"
#include "src/core/multilevel.h"
#include "src/dp/allocation.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void AblationDpSync(uint64_t steps) {
  PrintHeader("Ablation A: DP-Sync owner policies composed with sDPTimer");
  const DatasetSpec spec = MakeTpcDs(steps);
  struct Policy {
    const char* name;
    UploadPolicyKind kind;
    double eps_sync;
  } policies[] = {
      {"fixed-size", UploadPolicyKind::kFixedSize, 0},
      {"DP-Timer-sync", UploadPolicyKind::kDpTimerSync, 1.0},
      {"DP-ANT-sync", UploadPolicyKind::kDpAntSync, 1.0},
  };
  std::printf("%14s | %10s | %8s | %8s | %12s\n", "upload policy",
              "eps(total)", "avg L1", "rel.err", "total MPC");
  for (const Policy& p : policies) {
    IncShrinkConfig cfg = WithStrategy(spec.config, Strategy::kDpTimer);
    cfg.upload_policy1.kind = p.kind;
    cfg.upload_policy1.eps_sync = p.eps_sync;
    cfg.upload_policy1.sync_interval = 2;
    cfg.upload_policy1.sync_theta = 10;
    cfg.upload_policy2 = cfg.upload_policy1;
    SynchronousDeployment deployment(cfg);
    const Status st = deployment.Run(spec.workload.t1, spec.workload.t2);
    INCSHRINK_CHECK(st.ok());
    const RunSummary s = deployment.Summary();
    std::printf("%14s | %10.2f | %8.2f | %8.3f | %12s\n", p.name,
                deployment.engine().ComposedEpsilon(), s.l1_error.mean(),
                s.OverallRelativeError(),
                FormatSeconds(s.total_mpc_seconds).c_str());
  }
  std::printf("(composed guarantee: eps1-DP uploads + eps2-DP view updates "
              "=> (eps1+eps2)-DP total)\n");
}

void AblationOperator(uint64_t steps) {
  PrintHeader(
      "Ablation B: sort-merge (Example 5.1) vs nested-loop (Algorithm 4)");
  const DatasetSpec spec = MakeTpcDs(steps / 2);
  std::printf("%12s | %8s | %12s | %12s\n", "operator", "avg L1",
              "avg Transform", "total MPC");
  for (const auto op : {TransformOperator::kSortMergeJoin,
                        TransformOperator::kNestedLoopJoin}) {
    IncShrinkConfig cfg = WithStrategy(spec.config, Strategy::kDpTimer);
    cfg.op = op;
    const RunSummary s = RunWorkload(cfg, spec.workload);
    std::printf("%12s | %8.2f | %12s | %12s\n",
                op == TransformOperator::kSortMergeJoin ? "sort-merge"
                                                        : "nested-loop",
                s.l1_error.mean(),
                FormatSeconds(s.transform_seconds.mean()).c_str(),
                FormatSeconds(s.total_mpc_seconds).c_str());
  }
  std::printf("(same accuracy; the quadratic nested-loop pays in MPC time "
              "as inputs grow)\n");
}

void AblationFlush(uint64_t steps) {
  PrintHeader("Ablation C: cache flush sizing (Theorem 4)");
  const DatasetSpec spec = MakeTpcDs(steps);
  struct Variant {
    const char* name;
    uint32_t interval;
    uint32_t size;
  } variants[] = {
      {"no flush", 0, 0},
      {"theorem-sized", 120, 120},
      {"starving (s=8)", 120, 8},
  };
  std::printf("%16s | %8s | %8s | %12s | %12s\n", "flush", "avg L1",
              "max L1", "final cache", "view rows");
  for (const Variant& v : variants) {
    IncShrinkConfig cfg = WithStrategy(spec.config, Strategy::kDpTimer);
    cfg.flush_interval = v.interval;
    cfg.flush_size = v.size;
    const RunSummary s = RunWorkload(cfg, spec.workload);
    std::printf("%16s | %8.2f | %8.2f | %12llu | %12llu\n", v.name,
                s.l1_error.mean(), s.l1_error.max(),
                static_cast<unsigned long long>(s.final_cache_rows),
                static_cast<unsigned long long>(s.final_view_rows));
  }
  std::printf("(a starving flush recycles deferred real tuples: permanent "
              "error; no flush lets the cache grow unboundedly)\n");
}

void AblationAllocation(uint64_t steps) {
  PrintHeader(
      "Ablation D: multi-level pipeline + Appendix-D.2 budget allocation");
  // Build the pipeline stream: filtered T1 joined against T2.
  std::vector<std::vector<LogicalRecord>> t1(steps), t2(steps);
  Rng rng(77);
  Word rid = 1, key = 1;
  for (uint64_t t = 0; t + 4 < steps; ++t) {
    for (int i = 0; i < 3; ++i) {
      const bool passes = rng.Bernoulli(0.5);
      const Word k = key++;
      t1[t].push_back({t + 1, rid++, k, static_cast<Word>(t + 1),
                       passes ? 150u : 50u});
      t2[t + 2].push_back({t + 3, rid++, k, static_cast<Word>(t + 3), 0});
    }
  }

  // Operator specs for the optimizer: the filter touches C1 rows/step; the
  // join touches the filtered stream plus the T2 window.
  std::vector<OperatorSpec> ops(2);
  ops[0].kind = OperatorSpec::Kind::kFilter;
  ops[0].input_rows1 = 4 * steps;
  ops[0].output_rows = 3 * steps / 2;
  ops[0].sensitivity = 1;
  ops[0].releases = steps / 2;
  ops[1].kind = OperatorSpec::Kind::kJoin;
  ops[1].input_rows1 = 3 * steps / 2;
  ops[1].input_rows2 = 4 * steps;
  ops[1].output_rows = 3 * steps / 2;
  ops[1].sensitivity = 10;
  ops[1].releases = steps / 3;

  const double eps_total = 3.0;
  const AllocationResult opt =
      OptimizePrivacyAllocation(ops, eps_total, /*lg_total=*/1e9);

  auto run = [&](const char* name, double eps1, double eps2) {
    MultiLevelPipeline::Config cfg;
    cfg.eps1 = eps1;
    cfg.eps2 = eps2;
    cfg.filter = FilterSpec{100, 0xFFFFFFFF};
    cfg.join = JoinSpec{0, 10, true, 1, true, true};
    cfg.omega = 1;
    cfg.budget_b = 10;
    cfg.window_steps = 8;
    cfg.timer_T1 = 2;
    cfg.timer_T2 = 3;
    cfg.upload_rows_t1 = 4;
    cfg.upload_rows_t2 = 4;
    MultiLevelPipeline pipeline(cfg);
    for (size_t i = 0; i < t1.size(); ++i) {
      INCSHRINK_CHECK(pipeline.Step(t1[i], t2[i]).ok());
    }
    const RunSummary s = pipeline.Summary();
    std::printf("%12s | eps=(%.2f, %.2f) | %8.2f | %10s | %12s\n", name,
                eps1, eps2, s.l1_error.mean(),
                FormatSeconds(s.qet_seconds.mean()).c_str(),
                FormatSeconds(s.total_mpc_seconds).c_str());
  };

  std::printf("%12s | %18s | %8s | %10s | %12s\n", "allocation",
              "(eps1, eps2)", "avg L1", "avg QET", "total MPC");
  run("uniform", eps_total / 2, eps_total / 2);
  run("optimized", opt.eps[0], opt.eps[1]);
  std::printf("(optimizer E_Q: uniform %.4f -> optimized %.4f)\n",
              QueryEfficiency(ops, {eps_total / 2, eps_total / 2}),
              opt.efficiency);
}

void AblationFilterView(uint64_t steps) {
  PrintHeader("Ablation E: filter-based views (Appendix A.1.1)");
  std::vector<std::vector<LogicalRecord>> t1(steps), t2(steps);
  Rng rng(88);
  Word rid = 1;
  for (uint64_t t = 0; t < steps; ++t) {
    const uint64_t n = rng.Uniform(5);
    for (uint64_t i = 0; i < n; ++i) {
      t1[t].push_back({t + 1, rid++, rid, static_cast<Word>(t + 1),
                       static_cast<Word>(rng.Uniform(300))});
    }
  }
  std::printf("%9s | %8s | %8s | %12s | %10s\n", "strategy", "avg L1",
              "rel.err", "avg QET", "view rows");
  for (const Strategy strategy : {Strategy::kDpTimer, Strategy::kDpAnt,
                                  Strategy::kEp, Strategy::kNm}) {
    IncShrinkConfig cfg;
    cfg.eps = 1.5;
    cfg.omega = 1;
    cfg.budget_b = 1;
    cfg.view_kind = ViewKind::kFilter;
    cfg.filter = FilterSpec{100, 199};
    cfg.join.omega = 1;
    cfg.strategy = strategy;
    cfg.timer_T = 5;
    cfg.ant_theta = 4;
    cfg.flush_interval = 0;
    cfg.upload_rows_t1 = 6;
    cfg.upload_rows_t2 = 6;
    SynchronousDeployment deployment(cfg);
    for (size_t i = 0; i < t1.size(); ++i) {
      INCSHRINK_CHECK(deployment.Step(t1[i], t2[i]).ok());
    }
    const RunSummary s = deployment.Summary();
    std::printf("%9s | %8.2f | %8.3f | %12s | %10llu\n",
                StrategyName(strategy), s.l1_error.mean(),
                s.OverallRelativeError(),
                FormatSeconds(s.qet_seconds.mean()).c_str(),
                static_cast<unsigned long long>(s.final_view_rows));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  AblationDpSync(opt.steps_tpcds / 2);
  std::printf("\n");
  AblationOperator(opt.steps_tpcds / 2);
  std::printf("\n");
  AblationFlush(opt.steps_tpcds);
  std::printf("\n");
  AblationAllocation(60);
  std::printf("\n");
  AblationFilterView(opt.steps_tpcds / 2);
  return 0;
}
