// Reproduces **Figure 7**: DP protocols with varying non-privacy parameters
// — the update interval T swept over [1, 100] with the sDPANT threshold set
// consistently (theta = rate * T), at three privacy levels eps in
// {0.1, 1, 10}. Each run is one (avg L1 error, avg QET) point.
//
// Paper shape (Observation 6): at small eps, sDPANT points sit upper-left
// (accurate, slower) and sDPTimer lower-right (fast, less accurate); the
// two clouds converge as eps grows and essentially coincide at eps = 10.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const char* name, bool cpdb, uint64_t steps,
                double view_rate) {
  for (const double eps : {0.1, 1.0, 10.0}) {
    std::printf("\n--- %s, eps = %.1f ---\n", name, eps);
    std::printf("%5s %7s | %10s %10s | %10s %10s\n", "T", "theta",
                "Timer L1", "Timer QET", "ANT L1", "ANT QET");
    for (const uint32_t T : {1u, 3u, 10u, 30u, 100u}) {
      const DatasetSpec spec = cpdb ? MakeCpdb(steps) : MakeTpcDs(steps);
      IncShrinkConfig cfg = spec.config;
      cfg.eps = eps;
      cfg.timer_T = T;
      cfg.ant_theta = std::max(1.0, view_rate * T);
      const AveragedRun timer = RunWorkloadAveraged(
          WithStrategy(cfg, Strategy::kDpTimer), spec.workload, 3);
      const AveragedRun ant = RunWorkloadAveraged(
          WithStrategy(cfg, Strategy::kDpAnt), spec.workload, 3);
      std::printf("%5u %7.0f | %10.2f %10.5f | %10.2f %10.5f\n", T,
                  cfg.ant_theta, timer.l1_error, timer.qet_seconds,
                  ant.l1_error, ant.qet_seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 7: varying T / theta at eps = 0.1, 1, 10");
  // Paper rates: ~2.7 (TPC-ds) and ~9.8 (CPDB) new view entries per step,
  // so theta = 3T and 10T respectively.
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds / 2, 3.0);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb / 2, 10.0);
  return 0;
}
