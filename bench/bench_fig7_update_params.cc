// Reproduces **Figure 7**: DP protocols with varying non-privacy parameters
// — the update interval T swept over [1, 100] with the sDPANT threshold set
// consistently (theta = rate * T), at three privacy levels eps in
// {0.1, 1, 10}. Each run is one (avg L1 error, avg QET) point.
//
// Paper shape (Observation 6): at small eps, sDPANT points sit upper-left
// (accurate, slower) and sDPTimer lower-right (fast, less accurate); the
// two clouds converge as eps grows and essentially coincide at eps = 10.
//
// The whole (eps, T, strategy, seed) grid of a dataset is one flat
// RunConfigSweep, so every engine runs concurrently.

#include <cmath>

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr int kSeeds = 3;
constexpr double kEps[] = {0.1, 1.0, 10.0};
constexpr uint32_t kIntervals[] = {1u, 3u, 10u, 30u, 100u};

void RunDataset(const char* name, bool cpdb, uint64_t steps,
                double view_rate) {
  const DatasetSpec spec = cpdb ? MakeCpdb(steps) : MakeTpcDs(steps);
  std::vector<SweepPoint> points;
  for (const double eps : kEps) {
    for (const uint32_t T : kIntervals) {
      IncShrinkConfig cfg = spec.config;
      cfg.eps = eps;
      cfg.timer_T = T;
      cfg.ant_theta = std::max(1.0, view_rate * T);
      for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt}) {
        points.push_back(
            {StrategyName(s), WithStrategy(cfg, s), &spec.workload, kSeeds});
      }
    }
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  size_t idx = 0;
  for (const double eps : kEps) {
    std::printf("\n--- %s, eps = %.1f ---\n", name, eps);
    std::printf("%5s %7s | %15s %15s | %15s %15s\n", "T", "theta",
                "Timer L1", "Timer QET", "ANT L1", "ANT QET");
    for (const uint32_t T : kIntervals) {
      const AveragedRun& timer = rows[idx++];
      const AveragedRun& ant = rows[idx++];
      // 16-byte fields: the 2-byte '±' leaves 15 display columns.
      std::printf("%5u %7.0f | %16s %16s | %16s %16s\n", T,
                  std::max(1.0, view_rate * T),
                  FormatWithError(timer.l1_error, timer.l1_error_sd).c_str(),
                  FormatWithError(timer.qet_seconds, timer.qet_seconds_sd, 5)
                      .c_str(),
                  FormatWithError(ant.l1_error, ant.l1_error_sd).c_str(),
                  FormatWithError(ant.qet_seconds, ant.qet_seconds_sd, 5)
                      .c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 7: varying T / theta at eps = 0.1, 1, 10");
  // Paper rates: ~2.7 (TPC-ds) and ~9.8 (CPDB) new view entries per step,
  // so theta = 3T and 10T respectively.
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds / 2, 3.0);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb / 2, 10.0);
  return 0;
}
