// Upload batching: throughput of the owner -> channel -> engine transport as
// the engine's drain bound (`max_batches_per_step`) and the owners' lead
// over the engine grow. With a drain bound of 1 the engine consumes one
// owner step per engine step (lockstep cadence); with larger bounds a
// backlogged engine merges several queued owner steps into one Transform
// invocation, trading per-step latency for fewer, larger MPC steps. The
// fingerprint column cross-checks that every (bound, lead) point drains the
// full stream without losing records.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/fleet.h"

namespace incshrink {
namespace {

using bench::MakeTpcDs;
using bench::Options;
using bench::ParseOptions;
using bench::PrintHeader;
using bench::WithStrategy;

}  // namespace
}  // namespace incshrink

int main(int argc, char** argv) {
  using namespace incshrink;
  const Options opt = ParseOptions(argc, argv);
  PrintHeader(
      "Upload batching: drained rows/sec vs max_batches_per_step x owner "
      "lead");
  const bench::DatasetSpec tpcds = MakeTpcDs(opt.steps_tpcds);

  std::printf("%8s %6s | %12s %12s %14s %9s | %s\n", "batches", "lead",
              "owner steps", "engine steps", "rows/sec", "rejects", "wall");
  bool all_drained = true;
  for (const uint32_t max_batches : {1u, 2u, 4u, 8u}) {
    for (const uint32_t lead : {0u, 4u, 16u}) {
      DeploymentFleet::TenantSpec spec;
      spec.name = "bench";
      spec.config = WithStrategy(tpcds.config, Strategy::kDpTimer);
      spec.config.max_batches_per_step = max_batches;
      spec.config.upload_channel_capacity = 32;
      spec.workload = &tpcds.workload;

      DeploymentFleet fleet({spec}, {/*root_seed=*/1729, /*num_threads=*/1,
                                     /*owner_lead=*/lead});
      const auto t0 = std::chrono::steady_clock::now();
      fleet.RunAll();
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();

      const RunSummary summary = fleet.TenantSummary(0);
      const DeploymentFleet::FleetStats stats = fleet.AggregateStats();
      const uint64_t owner_steps = fleet.owner1(0).clock();
      const uint64_t drained_rows =
          fleet.owner1(0).rows_sent() + fleet.owner2(0).rows_sent();
      if (!fleet.done() || fleet.QueueDepth(0) != 0 ||
          owner_steps != tpcds.workload.steps()) {
        all_drained = false;
      }
      std::printf("%8u %6u | %12llu %12llu %14.1f %9llu | %s\n", max_batches,
                  lead, static_cast<unsigned long long>(owner_steps),
                  static_cast<unsigned long long>(summary.steps),
                  static_cast<double>(drained_rows) / std::max(1e-9, seconds),
                  static_cast<unsigned long long>(stats.upload_backpressure),
                  FormatSeconds(seconds).c_str());
    }
  }
  std::printf("\nAll points drained their full streams (no queued frames "
              "left, no lost owner steps): %s\n",
              all_drained ? "OK" : "FAILED");
  return all_drained ? 0 : 1;
}
