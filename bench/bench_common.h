#pragma once

// Shared setup for the paper-reproduction bench binaries: dataset
// construction matching Section 7's configurations, plus tiny CLI parsing
// so runs can be scaled up (`--steps-tpcds N --steps-cpdb N`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

namespace incshrink::bench {

struct Options {
  uint64_t steps_tpcds = 240;
  uint64_t steps_cpdb = 144;
  /// Zipf skew exponent for bench_fleet_scaling's skewed-traffic mode and
  /// bench_owner_storm's arrival process; 0 skips the fleet-scaling section,
  /// so the standard smoke invocations are unaffected (the storm bench
  /// treats 0 as uniform arrivals).
  double zipf_s = 0;
  /// Tenant count of the skewed-traffic fleet.
  uint64_t tenants = 8;
  /// bench_owner_storm: simulated owner count.
  uint64_t owners = 10000;
  /// bench_owner_storm: real TCP connections the owners multiplex over.
  uint64_t conns = 64;
  /// bench_owner_storm: total frame-emission events (0 = 3 per owner).
  uint64_t storm_events = 0;
  /// bench_owner_storm: frames drained per channel per round.
  uint64_t drain_bound = 8;
  /// When non-empty, benches that support it write a machine-readable JSON
  /// artifact (gate counts, gates/sec, rows/sec, layer histograms) to this
  /// path in addition to the human-readable stdout report, so CI can diff
  /// perf numbers across runs without scraping text.
  std::string json_path;
};

/// Strict CLI parsing: a flag with no value or an unrecognized flag is a
/// hard error (exit 2), never silently ignored — a typoed bench invocation
/// must not silently run the wrong config.
inline Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    uint64_t* u64_field = nullptr;
    double* f64_field = nullptr;
    std::string* str_field = nullptr;
    if (std::strcmp(flag, "--json") == 0) {
      str_field = &opt.json_path;
    } else if (std::strcmp(flag, "--steps-tpcds") == 0) {
      u64_field = &opt.steps_tpcds;
    } else if (std::strcmp(flag, "--steps-cpdb") == 0) {
      u64_field = &opt.steps_cpdb;
    } else if (std::strcmp(flag, "--zipf-s") == 0) {
      f64_field = &opt.zipf_s;
    } else if (std::strcmp(flag, "--tenants") == 0) {
      u64_field = &opt.tenants;
    } else if (std::strcmp(flag, "--owners") == 0) {
      u64_field = &opt.owners;
    } else if (std::strcmp(flag, "--conns") == 0) {
      u64_field = &opt.conns;
    } else if (std::strcmp(flag, "--storm-events") == 0) {
      u64_field = &opt.storm_events;
    } else if (std::strcmp(flag, "--drain-bound") == 0) {
      u64_field = &opt.drain_bound;
    } else {
      std::fprintf(stderr, "error: unrecognized flag '%s'\n", flag);
      std::exit(2);
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' is missing its value\n", flag);
      std::exit(2);
    }
    const char* value = argv[++i];
    if (str_field != nullptr) {
      *str_field = value;
      continue;
    }
    char* end = nullptr;
    if (u64_field != nullptr) {
      *u64_field = std::strtoull(value, &end, 10);
    } else {
      *f64_field = std::strtod(value, &end);
    }
    if (end == value || *end != '\0') {
      std::fprintf(stderr, "error: flag '%s' has a non-numeric value '%s'\n",
                   flag, value);
      std::exit(2);
    }
  }
  return opt;
}

struct DatasetSpec {
  std::string name;
  GeneratedWorkload workload;
  IncShrinkConfig config;
};

/// TPC-ds-like dataset with the paper's Q1 parameters (omega = 1, b = 10,
/// T = 10, theta = 30). `view_rate_scale` builds the Fig.6 Sparse/Burst
/// variants; `scale` builds the Fig.9 size groups.
inline DatasetSpec MakeTpcDs(uint64_t steps, double view_rate_scale = 1.0,
                             double scale = 1.0, bool bursty = false) {
  TpcDsParams p;
  p.steps = steps;
  p.view_rate_scale = view_rate_scale;
  p.scale = scale;
  p.bursty = bursty;
  DatasetSpec spec;
  spec.name = "TPC-ds";
  spec.workload = GenerateTpcDs(p);
  spec.config = DefaultTpcDsConfig();
  ScaleConfigBatches(&spec.config, scale);
  return spec;
}

/// CPDB-like dataset with the paper's Q2 parameters (omega = 10, b = 20,
/// T = 3, theta = 30, public Award relation).
inline DatasetSpec MakeCpdb(uint64_t steps, double view_rate_scale = 1.0,
                            double scale = 1.0, bool bursty = false) {
  CpdbParams p;
  p.steps = steps;
  p.view_rate_scale = view_rate_scale;
  p.scale = scale;
  p.bursty = bursty;
  DatasetSpec spec;
  spec.name = "CPDB";
  spec.workload = GenerateCpdb(p);
  spec.config = DefaultCpdbConfig();
  ScaleConfigBatches(&spec.config, scale);
  return spec;
}

inline IncShrinkConfig WithStrategy(IncShrinkConfig cfg, Strategy s) {
  cfg.strategy = s;
  return cfg;
}

/// Sharded-cache variant of a config: K cache shards, each Shrink instance
/// at an eps/K slice, stepped on `threads` workers (see bench_shard_scaling
/// and the num_cache_shards docs in src/core/config.h).
inline IncShrinkConfig WithShards(IncShrinkConfig cfg, uint32_t shards,
                                  int threads) {
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  return cfg;
}

/// Minimal flat-JSON emitter for the `--json` bench artifacts: one object
/// of numeric/string/array-of-numbers fields, written atomically at the
/// end. Deliberately tiny — bench artifacts are shallow by construction,
/// and no JSON dependency is available in the image.
class JsonWriter {
 public:
  void Add(const std::string& key, uint64_t v) {
    Field(key) += std::to_string(v);
  }
  void Add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Field(key) += buf;
  }
  void Add(const std::string& key, const std::string& v) {
    Field(key) += "\"" + v + "\"";
  }
  void Add(const std::string& key, const std::vector<uint64_t>& values) {
    std::string& out = Field(key);
    out += "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values[i]);
    }
    out += "]";
  }

  /// Writes `{ ...fields... }` to `path`; exits hard on I/O failure so a
  /// CI run never silently drops its artifact.
  void WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write JSON artifact '%s'\n",
                   path.c_str());
      std::exit(2);
    }
    std::fprintf(f, "{\n%s\n}\n", body_.c_str());
    std::fclose(f);
  }

 private:
  std::string& Field(const std::string& key) {
    if (!body_.empty()) body_ += ",\n";
    body_ += "  \"" + key + "\": ";
    return body_;
  }
  std::string body_;
};

inline void PrintHeader(const char* title) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace incshrink::bench
