#pragma once

// Shared setup for the paper-reproduction bench binaries: dataset
// construction matching Section 7's configurations, plus tiny CLI parsing
// so runs can be scaled up (`--steps-tpcds N --steps-cpdb N`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"
#include "src/workload/runner.h"

namespace incshrink::bench {

struct Options {
  uint64_t steps_tpcds = 240;
  uint64_t steps_cpdb = 144;
  /// Zipf skew exponent for bench_fleet_scaling's skewed-traffic mode;
  /// 0 (the default) skips that section, so the standard smoke invocations
  /// are unaffected.
  double zipf_s = 0;
  /// Tenant count of the skewed-traffic fleet.
  uint64_t tenants = 8;
};

inline Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--steps-tpcds") == 0) {
      opt.steps_tpcds = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--steps-cpdb") == 0) {
      opt.steps_cpdb = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--zipf-s") == 0) {
      opt.zipf_s = std::strtod(argv[i + 1], nullptr);
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      opt.tenants = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return opt;
}

struct DatasetSpec {
  std::string name;
  GeneratedWorkload workload;
  IncShrinkConfig config;
};

/// TPC-ds-like dataset with the paper's Q1 parameters (omega = 1, b = 10,
/// T = 10, theta = 30). `view_rate_scale` builds the Fig.6 Sparse/Burst
/// variants; `scale` builds the Fig.9 size groups.
inline DatasetSpec MakeTpcDs(uint64_t steps, double view_rate_scale = 1.0,
                             double scale = 1.0, bool bursty = false) {
  TpcDsParams p;
  p.steps = steps;
  p.view_rate_scale = view_rate_scale;
  p.scale = scale;
  p.bursty = bursty;
  DatasetSpec spec;
  spec.name = "TPC-ds";
  spec.workload = GenerateTpcDs(p);
  spec.config = DefaultTpcDsConfig();
  ScaleConfigBatches(&spec.config, scale);
  return spec;
}

/// CPDB-like dataset with the paper's Q2 parameters (omega = 10, b = 20,
/// T = 3, theta = 30, public Award relation).
inline DatasetSpec MakeCpdb(uint64_t steps, double view_rate_scale = 1.0,
                            double scale = 1.0, bool bursty = false) {
  CpdbParams p;
  p.steps = steps;
  p.view_rate_scale = view_rate_scale;
  p.scale = scale;
  p.bursty = bursty;
  DatasetSpec spec;
  spec.name = "CPDB";
  spec.workload = GenerateCpdb(p);
  spec.config = DefaultCpdbConfig();
  ScaleConfigBatches(&spec.config, scale);
  return spec;
}

inline IncShrinkConfig WithStrategy(IncShrinkConfig cfg, Strategy s) {
  cfg.strategy = s;
  return cfg;
}

/// Sharded-cache variant of a config: K cache shards, each Shrink instance
/// at an eps/K slice, stepped on `threads` workers (see bench_shard_scaling
/// and the num_cache_shards docs in src/core/config.h).
inline IncShrinkConfig WithShards(IncShrinkConfig cfg, uint32_t shards,
                                  int threads) {
  cfg.num_cache_shards = shards;
  cfg.cache_shard_threads = threads;
  return cfg;
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace incshrink::bench
