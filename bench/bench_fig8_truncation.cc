// Reproduces **Figure 8**: the effect of the truncation bound omega on the
// CPDB workload (Q2 has join multiplicity > 1; Q1's multiplicity is 1, so
// the paper fixes omega = 1 there). omega sweeps 2..32 with b = 2*omega.
//
// Paper shape (Observations 7-8):
//   (a) L1 error falls steeply while omega < the maximum record
//       multiplicity (true joins are being dropped), then flattens /
//       slightly rises as only the DP noise scale (prop. to b) keeps
//       growing — rising for sDPTimer, flat-to-falling for sDPANT;
//   (b) QET grows with omega (more padding reaches the view);
//   (c) Transform time is roughly flat in omega (its input size is set by
//       the upload batches), while (d) Shrink time grows with omega (its
//       input — the cache — scales with omega).
//
// The (omega, strategy, seed) grid runs as one flat RunConfigSweep.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {
constexpr int kSeeds = 3;
constexpr uint32_t kOmegas[] = {2u, 4u, 8u, 16u, 32u};
}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 8: truncation bound omega sweep (CPDB, b = 2*omega)");
  const DatasetSpec spec = MakeCpdb(opt.steps_cpdb);
  std::vector<SweepPoint> points;
  for (const uint32_t omega : kOmegas) {
    IncShrinkConfig cfg = spec.config;
    cfg.omega = omega;
    cfg.join.omega = omega;
    cfg.budget_b = 2 * omega;
    for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt}) {
      points.push_back(
          {StrategyName(s), WithStrategy(cfg, s), &spec.workload, kSeeds});
    }
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "omega",
              "Tmr L1", "ANT L1", "Tmr QET", "ANT QET", "Tmr Trans",
              "ANT Trans", "Tmr Shrnk", "ANT Shrnk");
  std::printf("-------+---------------------+---------------------+----------"
              "-----------+---------------------\n");
  for (size_t i = 0; i < std::size(kOmegas); ++i) {
    const AveragedRun& timer = rows[2 * i];
    const AveragedRun& ant = rows[2 * i + 1];
    std::printf(
        "%6u | %9.2f %9.2f | %9.5f %9.5f | %9.4f %9.4f | %9.4f %9.4f\n",
        kOmegas[i], timer.l1_error, ant.l1_error, timer.qet_seconds,
        ant.qet_seconds, timer.transform_seconds, ant.transform_seconds,
        timer.shrink_seconds, ant.shrink_seconds);
  }
  return 0;
}
