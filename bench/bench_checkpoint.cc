// Snapshot/restore throughput of the ICKP checkpoint path (crash-recovery
// tentpole): how fast a full deployment — engine, sharded cache, ledgers,
// channels, both owners — serializes and restores, as the cache grows and
// as the shard count changes.
//
// For each (steps, shards) cell the bench runs a deployment over a
// deterministic TPC-DS stream, then times `--reps` SaveCheckpoint calls and
// `--reps` RestoreCheckpoint calls into a cold deployment, reporting MB/s
// over the blob size and rows/s over the shared rows the snapshot carries
// (cache + view + store + channel backlogs).
//
// The bench is also a determinism gate, not just a stopwatch: every cell
// cross-checks save(restore(save())) == save() byte for byte via FNV-1a64
// fingerprints and exits nonzero on any mismatch — so the ctest smoke
// invocation doubles as an end-to-end round-trip test at bench scale.
//
// Flags: --steps N   workload length per cell, scaled x1/x2/x4 (default 24)
//        --reps R    timed save/restore repetitions per cell (default 4)
// Timing uses steady_clock and is measurement-only: it never feeds back
// into behavior (the blobs are bit-deterministic regardless of the clock).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/storage/checkpoint.h"
#include "src/workload/generators.h"

using namespace incshrink;

namespace {

struct BenchArgs {
  uint64_t steps = 24;
  uint64_t reps = 4;
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    uint64_t* field = nullptr;
    if (std::strcmp(argv[i], "--steps") == 0) {
      field = &args.steps;
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      field = &args.reps;
    } else {
      std::fprintf(stderr, "error: unrecognized flag '%s'\n", argv[i]);
      std::exit(2);
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' is missing its value\n", argv[i]);
      std::exit(2);
    }
    *field = std::strtoull(argv[++i], nullptr, 10);
    if (*field == 0) {
      std::fprintf(stderr, "error: flag '%s' must be positive\n", argv[i - 1]);
      std::exit(2);
    }
  }
  return args;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

IncShrinkConfig CellConfig(uint32_t shards) {
  IncShrinkConfig cfg = DefaultTpcDsConfig();
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 4;
  cfg.flush_interval = 8;
  cfg.num_cache_shards = shards;
  return cfg;
}

/// One bench cell: grow a deployment for `steps`, then time save + restore.
/// Returns false on any round-trip fingerprint mismatch.
bool RunCell(uint64_t steps, uint32_t shards, uint64_t reps) {
  TpcDsParams params;
  params.steps = steps;
  params.seed = 2022;
  const GeneratedWorkload w = GenerateTpcDs(params);
  const IncShrinkConfig cfg = CellConfig(shards);

  SynchronousDeployment warm(cfg);
  if (!warm.Run(w.t1, w.t2).ok()) {
    std::fprintf(stderr, "error: warmup run failed\n");
    return false;
  }

  // Timed saves.
  std::vector<uint8_t> blob;
  const auto save_start = std::chrono::steady_clock::now();
  for (uint64_t r = 0; r < reps; ++r) {
    Result<std::vector<uint8_t>> snapshot = warm.SaveCheckpoint();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "error: save failed: %s\n",
                   snapshot.status().message().c_str());
      return false;
    }
    blob = std::move(*snapshot);
  }
  const double save_s = SecondsSince(save_start);

  // Timed restores into a cold deployment.
  SynchronousDeployment cold(cfg);
  const auto restore_start = std::chrono::steady_clock::now();
  for (uint64_t r = 0; r < reps; ++r) {
    const Status st = cold.RestoreCheckpoint(blob);
    if (!st.ok()) {
      std::fprintf(stderr, "error: restore failed: %s\n",
                   st.message().c_str());
      return false;
    }
  }
  const double restore_s = SecondsSince(restore_start);

  // Round-trip gate: the restored deployment must re-serialize to the same
  // bytes (compared via FNV-1a64 fingerprints AND directly).
  Result<std::vector<uint8_t>> again = cold.SaveCheckpoint();
  if (!again.ok()) {
    std::fprintf(stderr, "error: re-save failed\n");
    return false;
  }
  const uint64_t fp_before = Fnv1a64(blob.data(), blob.size());
  const uint64_t fp_after = Fnv1a64(again->data(), again->size());
  if (fp_before != fp_after || blob != *again) {
    std::fprintf(stderr,
                 "FINGERPRINT MISMATCH steps=%llu shards=%u: "
                 "%016llx != %016llx\n",
                 static_cast<unsigned long long>(steps), shards,
                 static_cast<unsigned long long>(fp_before),
                 static_cast<unsigned long long>(fp_after));
    return false;
  }

  const RunSummary summary = warm.Summary();
  const double mb = static_cast<double>(blob.size()) / (1024.0 * 1024.0);
  const double snapshot_rows = static_cast<double>(
      summary.final_cache_rows + summary.final_view_rows);
  const double reps_d = static_cast<double>(reps);
  std::printf(
      "steps=%-4llu shards=%u  blob=%8.3f MB  rows=%7.0f  "
      "save=%8.1f MB/s %9.0f rows/s  restore=%8.1f MB/s %9.0f rows/s  "
      "fp=%016llx\n",
      static_cast<unsigned long long>(steps), shards, mb, snapshot_rows,
      mb * reps_d / save_s, snapshot_rows * reps_d / save_s,
      mb * reps_d / restore_s, snapshot_rows * reps_d / restore_s,
      static_cast<unsigned long long>(fp_before));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf("ICKP checkpoint throughput (reps=%llu per cell)\n",
              static_cast<unsigned long long>(args.reps));
  bool ok = true;
  for (const uint64_t scale : {1ull, 2ull, 4ull}) {
    for (const uint32_t shards : {1u, 2u, 4u}) {
      ok = RunCell(args.steps * scale, shards, args.reps) && ok;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "bench_checkpoint: FAILED (see above)\n");
    return 1;
  }
  std::printf("bench_checkpoint: all round-trip fingerprints verified\n");
  return 0;
}
