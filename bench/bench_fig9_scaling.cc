// Reproduces **Figure 9**: scaling experiments — the stream is scaled to
// 50%, 1x, 2x and 4x of its standard volume (both arrival rates and upload
// batch sizes) and the DP protocols' *total* MPC maintenance time and
// *total* query time are reported.
//
// Paper shape: both totals grow roughly linearly-to-superlinearly with the
// data scale, with sDPTimer and sDPANT close to each other throughout.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const char* name, bool cpdb, uint64_t steps) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%6s | %22s | %22s\n", "", "total MPC time (s)",
              "total query time (s)");
  std::printf("%6s | %10s %11s | %10s %11s\n", "scale", "sDPTimer",
              "sDPANT", "sDPTimer", "sDPANT");
  std::printf("-------+------------------------+----------------------\n");
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    const DatasetSpec spec =
        cpdb ? MakeCpdb(steps, 1.0, scale) : MakeTpcDs(steps, 1.0, scale);
    const AveragedRun timer = RunWorkloadAveraged(
        WithStrategy(spec.config, Strategy::kDpTimer), spec.workload, 3);
    const AveragedRun ant = RunWorkloadAveraged(
        WithStrategy(spec.config, Strategy::kDpAnt), spec.workload, 3);
    std::printf("%5.1fx | %10.2f %11.2f | %10.3f %11.3f\n", scale,
                timer.total_mpc_seconds, ant.total_mpc_seconds,
                timer.total_query_seconds, ant.total_query_seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 9: scaling experiments (50% - 4x data volume)");
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb);
  return 0;
}
