// Reproduces **Figure 9**: scaling experiments — the stream is scaled to
// 50%, 1x, 2x and 4x of its standard volume (both arrival rates and upload
// batch sizes) and the DP protocols' *total* MPC maintenance time and
// *total* query time are reported (±1 sample stddev across seeds).
//
// Paper shape: both totals grow roughly linearly-to-superlinearly with the
// data scale, with sDPTimer and sDPANT close to each other throughout.
//
// All four scale groups (each with its own generated stream) sweep
// concurrently through one flat RunConfigSweep per dataset.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr int kSeeds = 3;
constexpr double kScales[] = {0.5, 1.0, 2.0, 4.0};

void RunDataset(const char* name, bool cpdb, uint64_t steps) {
  std::printf("\n--- %s ---\n", name);
  std::vector<DatasetSpec> specs;
  for (const double scale : kScales) {
    specs.push_back(cpdb ? MakeCpdb(steps, 1.0, scale)
                         : MakeTpcDs(steps, 1.0, scale));
  }
  std::vector<SweepPoint> points;
  for (size_t g = 0; g < specs.size(); ++g) {
    for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt}) {
      points.push_back({StrategyName(s), WithStrategy(specs[g].config, s),
                        &specs[g].workload, kSeeds});
    }
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  std::printf("%6s | %31s | %31s\n", "", "total MPC time (s)",
              "total query time (s)");
  std::printf("%6s | %15s %15s | %15s %15s\n", "scale", "sDPTimer", "sDPANT",
              "sDPTimer", "sDPANT");
  std::printf("-------+---------------------------------+"
              "--------------------------------\n");
  for (size_t g = 0; g < std::size(kScales); ++g) {
    const AveragedRun& timer = rows[2 * g];
    const AveragedRun& ant = rows[2 * g + 1];
    // 16-byte fields: the 2-byte '±' leaves 15 display columns.
    std::printf(
        "%5.1fx | %16s %16s | %16s %16s\n", kScales[g],
        FormatWithError(timer.total_mpc_seconds, timer.total_mpc_seconds_sd)
            .c_str(),
        FormatWithError(ant.total_mpc_seconds, ant.total_mpc_seconds_sd)
            .c_str(),
        FormatWithError(timer.total_query_seconds,
                        timer.total_query_seconds_sd, 3)
            .c_str(),
        FormatWithError(ant.total_query_seconds, ant.total_query_seconds_sd,
                        3)
            .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 9: scaling experiments (50% - 4x data volume)");
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb);
  return 0;
}
