// Microbenchmarks (google-benchmark) of the building blocks underneath the
// paper experiments: XOR sharing, secure word ops, oblivious sort, the
// truncated joins, cache reads and joint noise generation. These measure
// *host* time of the simulated protocol (useful for harness scaling); the
// simulated MPC cost of each op is reported as a counter.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"

namespace incshrink {
namespace {

void BM_ShareRecover(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const WordShares s = ShareWord(rng.Next32(), &rng);
    benchmark::DoNotOptimize(RecoverWord(s));
  }
}
BENCHMARK(BM_ShareRecover);

void BM_SecureAdd(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  const WordShares a = proto.FreshShare(123);
  const WordShares b = proto.FreshShare(456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.Add(a, b));
  }
}
BENCHMARK(BM_SecureAdd);

void BM_JointLaplace(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.JointLaplace(6.67));
  }
}
BENCHMARK(BM_JointLaplace);

SharedRows RandomViewRows(Rng* rng, size_t n) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.3)) {
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, seq++);
      rows.AppendSecretRow(row, rng);
    } else {
      AppendDummyViewRow(&rows, rng, &seq);
    }
  }
  return rows;
}

void BM_ObliviousSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows rows = RandomViewRows(&rng, n);
    const CircuitStats before = proto.Snapshot();
    state.ResumeTiming();
    ObliviousSort(&proto, &rows, kViewSortKeyCol, false);
    state.PauseTiming();
    state.counters["sim_mpc_s"] = proto.SimulatedSecondsSince(before);
    state.ResumeTiming();
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ObliviousSort)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

void BM_CacheRead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows cache = RandomViewRows(&rng, n);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ObliviousCacheRead(&proto, &cache, n / 4));
  }
}
BENCHMARK(BM_CacheRead)->Arg(256)->Arg(1024);

std::vector<LogicalRecord> RandomRecords(Rng* rng, size_t n, Word rid0) {
  std::vector<LogicalRecord> recs;
  for (size_t i = 0; i < n; ++i) {
    recs.push_back({1, static_cast<Word>(rid0 + i),
                    1 + rng->Next32() % 32, rng->Next32() % 50, 0});
  }
  return recs;
}

void BM_TruncatedSortMergeJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(5);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth), t2(kSrcWidth);
    for (const auto& r : RandomRecords(&rng, n, 1))
      t1.AppendSecretRow(EncodeSourceRow(r), &rng);
    for (const auto& r : RandomRecords(&rng, n, 100000))
      t2.AppendSecretRow(EncodeSourceRow(r), &rng);
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedSortMergeJoin)->Arg(32)->Arg(128)->Arg(512);

void BM_TruncatedNestedLoopJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(6);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth + 1), t2(kSrcWidth + 1);
    for (const auto& r : RandomRecords(&rng, n, 1)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t1.AppendSecretRow(row, &rng);
    }
    for (const auto& r : RandomRecords(&rng, n, 100000)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t2.AppendSecretRow(row, &rng);
    }
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(TruncatedNestedLoopJoin(
        &proto, &t1, &t2, kSrcWidth, kSrcWidth, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedNestedLoopJoin)->Arg(16)->Arg(64);

void BM_ObliviousCountWhere(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(7);
  const SharedRows view = RandomViewRows(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousCountWhere(
        &proto, view, kViewIsViewCol, ObliviousPredicate::True()));
  }
}
BENCHMARK(BM_ObliviousCountWhere)->Arg(1024)->Arg(8192);

// ---------------------------------------------------------------------------
// Scalar vs batched (layer-vectorized) primitive throughput
// ---------------------------------------------------------------------------

uint64_t Fnv1a64(uint64_t h, const std::vector<Word>& words) {
  for (const Word w : words) {
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

uint64_t RowsFingerprint(const SharedRows& rows) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a64(h, rows.shares0());
  return Fnv1a64(h, rows.shares1());
}

/// The batched path must reproduce the scalar path bit for bit — checked
/// here over FNV fingerprints of both share arrays so a silent divergence
/// fails the bench run itself, not just the unit suite.
void CheckSortFingerprints(size_t n, int threads) {
  Rng rng(41 + n);
  const SharedRows input = RandomViewRows(&rng, n);
  Party a0(0, 51), a1(1, 52);
  Protocol2PC scalar(&a0, &a1, CostModel::EmpLikeLan());
  SharedRows s = input;
  ObliviousSortScalar(&scalar, &s, kViewSortKeyCol, false);
  Party b0(0, 51), b1(1, 52);
  Protocol2PC batched(&b0, &b1, CostModel::EmpLikeLan());
  ThreadPool pool(threads);
  SharedRows b = input;
  ObliviousSort(&batched, &b, kViewSortKeyCol, false, BatchExec{&pool, 1});
  INCSHRINK_CHECK_EQ(RowsFingerprint(s), RowsFingerprint(b));
  INCSHRINK_CHECK_EQ(scalar.Snapshot().and_gates,
                     batched.Snapshot().and_gates);
}

/// Shared measurement body: rows/sec and (simulated) gates/sec of an
/// n-row oblivious sort under `run`.
template <typename RunFn>
void SortThroughputLoop(benchmark::State& state, size_t n, RunFn&& run) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(3);
  uint64_t gates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows rows = RandomViewRows(&rng, n);
    const CircuitStats before = proto.Snapshot();
    state.ResumeTiming();
    run(&proto, &rows);
    state.PauseTiming();
    gates += proto.Snapshot().Diff(before).and_gates;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.counters["gates_per_s"] = benchmark::Counter(
      static_cast<double>(gates), benchmark::Counter::kIsRate);
}

void BM_ObliviousSortScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SortThroughputLoop(state, n, [](Protocol2PC* proto, SharedRows* rows) {
    ObliviousSortScalar(proto, rows, kViewSortKeyCol, false);
  });
}
BENCHMARK(BM_ObliviousSortScalar)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ObliviousSortBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  CheckSortFingerprints(n, threads);
  ThreadPool pool(threads);
  const BatchExec exec{&pool, 128};
  SortThroughputLoop(state, n,
                     [&exec](Protocol2PC* proto, SharedRows* rows) {
                       ObliviousSort(proto, rows, kViewSortKeyCol, false,
                                     exec);
                     });
}
BENCHMARK(BM_ObliviousSortBatched)
    ->ArgsProduct({{256, 1024, 4096}, {1, 2, 8}});

void BM_ObliviousCountBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t num_tasks = 8;
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(7);
  std::vector<SharedRows> tables;
  for (size_t k = 0; k < num_tasks; ++k) {
    tables.push_back(RandomViewRows(&rng, n));
  }
  const ObliviousPredicate pred = ObliviousPredicate::True();
  std::vector<CountWhereTask> tasks;
  for (const SharedRows& t : tables) {
    tasks.push_back({&t, kViewIsViewCol, pred.and_gates_per_row, &pred.eval});
  }
  std::vector<WordShares> out(tasks.size());
  uint64_t gates = 0;
  for (auto _ : state) {
    const CircuitStats before = proto.Snapshot();
    proto.CountWhereBatch(tasks.data(), tasks.size(), out.data());
    gates += proto.Snapshot().Diff(before).and_gates;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * n * num_tasks));
  state.counters["gates_per_s"] = benchmark::Counter(
      static_cast<double>(gates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ObliviousCountBatched)->Arg(1024)->Arg(8192);

/// Prints the per-layer batch-size histogram of the n-row sorting network:
/// the layer structure *is* the batching opportunity (each line is one
/// fused CompareExchangeRowsBatch submission on the hot path).
void PrintLayerHistogram(size_t n) {
  const std::vector<uint64_t> sizes = SortNetworkLayerSizes(n);
  uint64_t total = 0;
  for (const uint64_t s : sizes) total += s;
  std::printf("sort network n=%zu: %zu layers, %" PRIu64
              " compare-exchanges\n",
              n, sizes.size(), total);
  // Bucket layer widths by power of two.
  std::vector<uint64_t> buckets;
  for (const uint64_t s : sizes) {
    size_t b = 0;
    while ((1ull << (b + 1)) <= s) ++b;
    if (buckets.size() <= b) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    std::printf("  layer size [%llu, %llu): %" PRIu64 " layers\n",
                static_cast<unsigned long long>(1ull << b),
                static_cast<unsigned long long>(1ull << (b + 1)),
                buckets[b]);
  }
}

}  // namespace
}  // namespace incshrink

int main(int argc, char** argv) {
  for (const size_t n : {256u, 1024u, 4096u}) {
    incshrink::PrintLayerHistogram(n);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
