// Microbenchmarks (google-benchmark) of the building blocks underneath the
// paper experiments: XOR sharing, secure word ops, oblivious sort, the
// truncated joins, cache reads and joint noise generation. These measure
// *host* time of the simulated protocol (useful for harness scaling); the
// simulated MPC cost of each op is reported as a counter.

#include <benchmark/benchmark.h>

#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"

namespace incshrink {
namespace {

void BM_ShareRecover(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const WordShares s = ShareWord(rng.Next32(), &rng);
    benchmark::DoNotOptimize(RecoverWord(s));
  }
}
BENCHMARK(BM_ShareRecover);

void BM_SecureAdd(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  const WordShares a = proto.FreshShare(123);
  const WordShares b = proto.FreshShare(456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.Add(a, b));
  }
}
BENCHMARK(BM_SecureAdd);

void BM_JointLaplace(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.JointLaplace(6.67));
  }
}
BENCHMARK(BM_JointLaplace);

SharedRows RandomViewRows(Rng* rng, size_t n) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.3)) {
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, seq++);
      rows.AppendSecretRow(row, rng);
    } else {
      AppendDummyViewRow(&rows, rng, &seq);
    }
  }
  return rows;
}

void BM_ObliviousSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows rows = RandomViewRows(&rng, n);
    const CircuitStats before = proto.Snapshot();
    state.ResumeTiming();
    ObliviousSort(&proto, &rows, kViewSortKeyCol, false);
    state.PauseTiming();
    state.counters["sim_mpc_s"] = proto.SimulatedSecondsSince(before);
    state.ResumeTiming();
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ObliviousSort)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

void BM_CacheRead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows cache = RandomViewRows(&rng, n);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ObliviousCacheRead(&proto, &cache, n / 4));
  }
}
BENCHMARK(BM_CacheRead)->Arg(256)->Arg(1024);

std::vector<LogicalRecord> RandomRecords(Rng* rng, size_t n, Word rid0) {
  std::vector<LogicalRecord> recs;
  for (size_t i = 0; i < n; ++i) {
    recs.push_back({1, static_cast<Word>(rid0 + i),
                    1 + rng->Next32() % 32, rng->Next32() % 50, 0});
  }
  return recs;
}

void BM_TruncatedSortMergeJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(5);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth), t2(kSrcWidth);
    for (const auto& r : RandomRecords(&rng, n, 1))
      t1.AppendSecretRow(EncodeSourceRow(r), &rng);
    for (const auto& r : RandomRecords(&rng, n, 100000))
      t2.AppendSecretRow(EncodeSourceRow(r), &rng);
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedSortMergeJoin)->Arg(32)->Arg(128)->Arg(512);

void BM_TruncatedNestedLoopJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(6);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth + 1), t2(kSrcWidth + 1);
    for (const auto& r : RandomRecords(&rng, n, 1)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t1.AppendSecretRow(row, &rng);
    }
    for (const auto& r : RandomRecords(&rng, n, 100000)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t2.AppendSecretRow(row, &rng);
    }
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(TruncatedNestedLoopJoin(
        &proto, &t1, &t2, kSrcWidth, kSrcWidth, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedNestedLoopJoin)->Arg(16)->Arg(64);

void BM_ObliviousCountWhere(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(7);
  const SharedRows view = RandomViewRows(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousCountWhere(
        &proto, view, kViewIsViewCol, ObliviousPredicate::True()));
  }
}
BENCHMARK(BM_ObliviousCountWhere)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace incshrink

BENCHMARK_MAIN();
