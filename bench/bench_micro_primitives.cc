// Microbenchmarks (google-benchmark) of the building blocks underneath the
// paper experiments: XOR sharing, secure word ops, oblivious sort, the
// truncated joins, cache reads and joint noise generation. These measure
// *host* time of the simulated protocol (useful for harness scaling); the
// simulated MPC cost of each op is reported as a counter.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/shuffle.h"
#include "src/oblivious/sort.h"
#include "src/relational/encode.h"

namespace incshrink {
namespace {

void BM_ShareRecover(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const WordShares s = ShareWord(rng.Next32(), &rng);
    benchmark::DoNotOptimize(RecoverWord(s));
  }
}
BENCHMARK(BM_ShareRecover);

void BM_SecureAdd(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  const WordShares a = proto.FreshShare(123);
  const WordShares b = proto.FreshShare(456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.Add(a, b));
  }
}
BENCHMARK(BM_SecureAdd);

void BM_JointLaplace(benchmark::State& state) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.JointLaplace(6.67));
  }
}
BENCHMARK(BM_JointLaplace);

SharedRows RandomViewRows(Rng* rng, size_t n) {
  SharedRows rows(kViewWidth);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.3)) {
      std::vector<Word> row(kViewWidth, 0);
      row[kViewIsViewCol] = 1;
      row[kViewSortKeyCol] = MakeCacheSortKey(true, seq++);
      rows.AppendSecretRow(row, rng);
    } else {
      AppendDummyViewRow(&rows, rng, &seq);
    }
  }
  return rows;
}

void BM_ObliviousSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows rows = RandomViewRows(&rng, n);
    const CircuitStats before = proto.Snapshot();
    state.ResumeTiming();
    ObliviousSort(&proto, &rows, kViewSortKeyCol, false);
    state.PauseTiming();
    state.counters["sim_mpc_s"] = proto.SimulatedSecondsSince(before);
    state.ResumeTiming();
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ObliviousSort)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

void BM_CacheRead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows cache = RandomViewRows(&rng, n);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ObliviousCacheRead(&proto, &cache, n / 4));
  }
}
BENCHMARK(BM_CacheRead)->Arg(256)->Arg(1024);

std::vector<LogicalRecord> RandomRecords(Rng* rng, size_t n, Word rid0) {
  std::vector<LogicalRecord> recs;
  for (size_t i = 0; i < n; ++i) {
    recs.push_back({1, static_cast<Word>(rid0 + i),
                    1 + rng->Next32() % 32, rng->Next32() % 50, 0});
  }
  return recs;
}

void BM_TruncatedSortMergeJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(5);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth), t2(kSrcWidth);
    for (const auto& r : RandomRecords(&rng, n, 1))
      t1.AppendSecretRow(EncodeSourceRow(r), &rng);
    for (const auto& r : RandomRecords(&rng, n, 100000))
      t2.AppendSecretRow(EncodeSourceRow(r), &rng);
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        TruncatedSortMergeJoin(&proto, t1, t2, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedSortMergeJoin)->Arg(32)->Arg(128)->Arg(512);

void BM_TruncatedNestedLoopJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(6);
  JoinSpec spec{0, 10, true, 2, true, true};
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows t1(kSrcWidth + 1), t2(kSrcWidth + 1);
    for (const auto& r : RandomRecords(&rng, n, 1)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t1.AppendSecretRow(row, &rng);
    }
    for (const auto& r : RandomRecords(&rng, n, 100000)) {
      std::vector<Word> row = EncodeSourceRow(r);
      row.push_back(2);
      t2.AppendSecretRow(row, &rng);
    }
    uint64_t seq = 0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(TruncatedNestedLoopJoin(
        &proto, &t1, &t2, kSrcWidth, kSrcWidth, spec, &seq));
  }
}
BENCHMARK(BM_TruncatedNestedLoopJoin)->Arg(16)->Arg(64);

void BM_ObliviousCountWhere(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(7);
  const SharedRows view = RandomViewRows(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousCountWhere(
        &proto, view, kViewIsViewCol, ObliviousPredicate::True()));
  }
}
BENCHMARK(BM_ObliviousCountWhere)->Arg(1024)->Arg(8192);

// ---------------------------------------------------------------------------
// Scalar vs batched (layer-vectorized) primitive throughput
// ---------------------------------------------------------------------------

uint64_t Fnv1a64(uint64_t h, const std::vector<Word>& words) {
  for (const Word w : words) {
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

uint64_t RowsFingerprint(const SharedRows& rows) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a64(h, rows.shares0());
  return Fnv1a64(h, rows.shares1());
}

/// The batched path must reproduce the scalar path bit for bit — checked
/// here over FNV fingerprints of both share arrays so a silent divergence
/// fails the bench run itself, not just the unit suite.
void CheckSortFingerprints(size_t n, int threads) {
  Rng rng(41 + n);
  const SharedRows input = RandomViewRows(&rng, n);
  Party a0(0, 51), a1(1, 52);
  Protocol2PC scalar(&a0, &a1, CostModel::EmpLikeLan());
  SharedRows s = input;
  ObliviousSortScalar(&scalar, &s, kViewSortKeyCol, false);
  Party b0(0, 51), b1(1, 52);
  Protocol2PC batched(&b0, &b1, CostModel::EmpLikeLan());
  ThreadPool pool(threads);
  SharedRows b = input;
  ObliviousSort(&batched, &b, kViewSortKeyCol, false, BatchExec{&pool, 1});
  INCSHRINK_CHECK_EQ(RowsFingerprint(s), RowsFingerprint(b));
  INCSHRINK_CHECK_EQ(scalar.Snapshot().and_gates,
                     batched.Snapshot().and_gates);
}

/// Shared measurement body: rows/sec and (simulated) gates/sec of an
/// n-row oblivious sort under `run`.
template <typename RunFn>
void SortThroughputLoop(benchmark::State& state, size_t n, RunFn&& run) {
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(3);
  uint64_t gates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SharedRows rows = RandomViewRows(&rng, n);
    const CircuitStats before = proto.Snapshot();
    state.ResumeTiming();
    run(&proto, &rows);
    state.PauseTiming();
    gates += proto.Snapshot().Diff(before).and_gates;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.counters["gates_per_s"] = benchmark::Counter(
      static_cast<double>(gates), benchmark::Counter::kIsRate);
}

void BM_ObliviousSortScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SortThroughputLoop(state, n, [](Protocol2PC* proto, SharedRows* rows) {
    ObliviousSortScalar(proto, rows, kViewSortKeyCol, false);
  });
}
BENCHMARK(BM_ObliviousSortScalar)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ObliviousSortBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  CheckSortFingerprints(n, threads);
  ThreadPool pool(threads);
  const BatchExec exec{&pool, 128};
  SortThroughputLoop(state, n,
                     [&exec](Protocol2PC* proto, SharedRows* rows) {
                       ObliviousSort(proto, rows, kViewSortKeyCol, false,
                                     exec);
                     });
}
BENCHMARK(BM_ObliviousSortBatched)
    ->ArgsProduct({{256, 1024, 4096}, {1, 2, 8}});

void BM_ObliviousCountBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t num_tasks = 8;
  Party s0(0, 1), s1(1, 2);
  Protocol2PC proto(&s0, &s1, CostModel::EmpLikeLan());
  Rng rng(7);
  std::vector<SharedRows> tables;
  for (size_t k = 0; k < num_tasks; ++k) {
    tables.push_back(RandomViewRows(&rng, n));
  }
  const ObliviousPredicate pred = ObliviousPredicate::True();
  std::vector<CountWhereTask> tasks;
  for (const SharedRows& t : tables) {
    tasks.push_back({&t, kViewIsViewCol, pred.and_gates_per_row, &pred.eval});
  }
  std::vector<WordShares> out(tasks.size());
  uint64_t gates = 0;
  for (auto _ : state) {
    const CircuitStats before = proto.Snapshot();
    proto.CountWhereBatch(tasks.data(), tasks.size(), out.data());
    gates += proto.Snapshot().Diff(before).and_gates;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * n * num_tasks));
  state.counters["gates_per_s"] = benchmark::Counter(
      static_cast<double>(gates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ObliviousCountBatched)->Arg(1024)->Arg(8192);

/// Prints the per-layer batch-size histogram of the n-row sorting network:
/// the layer structure *is* the batching opportunity (each line is one
/// fused CompareExchangeRowsBatch submission on the hot path).
void PrintLayerHistogram(size_t n) {
  const std::vector<uint64_t> sizes = SortNetworkLayerSizes(n);
  uint64_t total = 0;
  for (const uint64_t s : sizes) total += s;
  std::printf("sort network n=%zu: %zu layers, %" PRIu64
              " compare-exchanges\n",
              n, sizes.size(), total);
  // Bucket layer widths by power of two.
  std::vector<uint64_t> buckets;
  for (const uint64_t s : sizes) {
    size_t b = 0;
    while ((1ull << (b + 1)) <= s) ++b;
    if (buckets.size() <= b) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    std::printf("  layer size [%llu, %llu): %" PRIu64 " layers\n",
                static_cast<unsigned long long>(1ull << b),
                static_cast<unsigned long long>(1ull << (b + 1)),
                buckets[b]);
  }
}

// ---------------------------------------------------------------------------
// Waksman permutation-network shuffles
// ---------------------------------------------------------------------------

/// Serial-vs-pooled bit-equality gate for the shuffle scheduler, mirroring
/// CheckSortFingerprints: a silent divergence fails the bench run itself.
void CheckShuffleFingerprints(size_t n, int threads) {
  Rng rng(61 + n);
  const SharedRows input = RandomViewRows(&rng, n);
  Party a0(0, 71), a1(1, 72);
  Protocol2PC serial(&a0, &a1, CostModel::EmpLikeLan());
  const std::vector<uint32_t> perm = DrawPublicPermutation(&serial, n);
  SharedRows s = input;
  ObliviousShuffle(&serial, &s, perm);
  Party b0(0, 71), b1(1, 72);
  Protocol2PC batched(&b0, &b1, CostModel::EmpLikeLan());
  const std::vector<uint32_t> perm_b = DrawPublicPermutation(&batched, n);
  INCSHRINK_CHECK(perm == perm_b);
  ThreadPool pool(threads);
  SharedRows b = input;
  ObliviousShuffle(&batched, &b, perm, BatchExec{&pool, 1});
  INCSHRINK_CHECK_EQ(RowsFingerprint(s), RowsFingerprint(b));
  INCSHRINK_CHECK_EQ(serial.Snapshot().and_gates,
                     batched.Snapshot().and_gates);
}

void BM_ObliviousShuffle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  CheckShuffleFingerprints(n, threads);
  ThreadPool pool(threads);
  const BatchExec exec{&pool, 128};
  SortThroughputLoop(state, n,
                     [&exec](Protocol2PC* proto, SharedRows* rows) {
                       ObliviousRandomPermute(proto, rows, exec);
                     });
}
BENCHMARK(BM_ObliviousShuffle)->ArgsProduct({{256, 1024, 4096}, {1, 2, 8}});

void BM_ObliviousShuffleSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SortThroughputLoop(state, n, [](Protocol2PC* proto, SharedRows* rows) {
    ObliviousShuffleSort(proto, rows, kViewSortKeyCol, false);
  });
}
BENCHMARK(BM_ObliviousShuffleSort)->Arg(256)->Arg(1024)->Arg(4096);

void PrintShuffleLayerHistogram(size_t n) {
  const std::vector<uint64_t> sizes = ShuffleNetworkLayerSizes(n);
  uint64_t total = 0;
  for (const uint64_t s : sizes) total += s;
  std::printf("shuffle network n=%zu: %zu layers, %" PRIu64 " switches\n",
              n, sizes.size(), total);
}

/// Head-to-head flush measurement at the acceptance size (n = 4096): the
/// Batcher flush (sort + prefix) versus the Waksman flush (random shuffle
/// + prefix). Prints the measured AND-gate counts and their ratio, checks
/// the >= 1.8x acceptance bar, cross-checks the counts against the closed
/// forms, and fingerprints both results so the comparison is a real
/// end-to-end run, not arithmetic. When `json` is non-null the numbers
/// land in the BENCH_shuffle artifact.
void MeasureFlushGateRatio(incshrink::bench::JsonWriter* json) {
  const size_t n = 4096;
  const size_t flush_size = 15;
  Rng rng(77);
  const SharedRows input = RandomViewRows(&rng, n);

  Party a0(0, 81), a1(1, 82);
  Protocol2PC batcher(&a0, &a1, CostModel::EmpLikeLan());
  SharedRows cache_b = input;
  const auto t0 = std::chrono::steady_clock::now();
  SharedRows fetched_b =
      CacheFlush(&batcher, &cache_b, flush_size, SortAlgorithm::kBatcher);
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t batcher_gates = batcher.Snapshot().and_gates;

  Party b0(0, 81), b1(1, 82);
  Protocol2PC waksman(&b0, &b1, CostModel::EmpLikeLan());
  SharedRows cache_w = input;
  const auto t2 = std::chrono::steady_clock::now();
  SharedRows fetched_w = CacheFlush(&waksman, &cache_w, flush_size,
                                    SortAlgorithm::kShuffleSort);
  const auto t3 = std::chrono::steady_clock::now();
  const uint64_t waksman_gates = waksman.Snapshot().and_gates;

  // Closed-form cross-check: the measured counts must equal the formulas
  // the unit tests pin (comparison + mux per compare-exchange; mux per
  // switch), or the measurement itself is wrong.
  INCSHRINK_CHECK_EQ(batcher_gates,
                     SortNetworkCompareExchanges(n) *
                         (kWordBits + kViewWidth * kWordBits));
  INCSHRINK_CHECK_EQ(waksman_gates,
                     ShuffleNetworkSwitches(n) * kViewWidth * kWordBits);
  INCSHRINK_CHECK_EQ(fetched_b.size(), flush_size);
  INCSHRINK_CHECK_EQ(fetched_w.size(), flush_size);
  const uint64_t fp_batcher = RowsFingerprint(fetched_b);
  const uint64_t fp_waksman = RowsFingerprint(fetched_w);

  const double ratio = static_cast<double>(batcher_gates) /
                       static_cast<double>(waksman_gates);
  const double waksman_secs =
      std::chrono::duration<double>(t3 - t2).count();
  const double batcher_secs =
      std::chrono::duration<double>(t1 - t0).count();
  std::printf("flush @ n=%zu width=%zu: batcher %" PRIu64
              " AND gates, waksman %" PRIu64 " AND gates, ratio %.2fx\n",
              n, kViewWidth, batcher_gates, waksman_gates, ratio);
  std::printf("  fingerprints: batcher %016" PRIx64 ", waksman %016" PRIx64
              "\n",
              fp_batcher, fp_waksman);
  // Acceptance bar for the shuffle tier: >= 1.8x fewer gates per flush.
  INCSHRINK_CHECK(ratio >= 1.8);

  if (json != nullptr) {
    json->Add("bench", std::string("shuffle"));
    json->Add("n", static_cast<uint64_t>(n));
    json->Add("width", static_cast<uint64_t>(kViewWidth));
    json->Add("batcher_flush_and_gates", batcher_gates);
    json->Add("waksman_flush_and_gates", waksman_gates);
    json->Add("gate_ratio", ratio);
    json->Add("waksman_switches", ShuffleNetworkSwitches(n));
    json->Add("waksman_depth", ShuffleNetworkDepth(n));
    json->Add("shuffle_sort_comparison_sites", ShuffleSortComparisons(n));
    json->Add("batcher_gates_per_s",
              batcher_secs > 0 ? batcher_gates / batcher_secs : 0.0);
    json->Add("waksman_gates_per_s",
              waksman_secs > 0 ? waksman_gates / waksman_secs : 0.0);
    json->Add("waksman_rows_per_s",
              waksman_secs > 0 ? n / waksman_secs : 0.0);
    json->Add("fingerprint_batcher_flush", fp_batcher);
    json->Add("fingerprint_waksman_flush", fp_waksman);
    json->Add("layer_histogram", ShuffleNetworkLayerSizes(n));
  }
}

}  // namespace
}  // namespace incshrink

int main(int argc, char** argv) {
  // Pre-parse and strip `--json <path>` before benchmark::Initialize —
  // google-benchmark hard-rejects flags it does not recognize.
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag '--json' is missing its value\n");
        return 2;
      }
      json_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  for (const size_t n : {256u, 1024u, 4096u}) {
    incshrink::PrintLayerHistogram(n);
    incshrink::PrintShuffleLayerHistogram(n);
  }
  incshrink::bench::JsonWriter json;
  incshrink::MeasureFlushGateRatio(json_path.empty() ? nullptr : &json);
  if (!json_path.empty()) json.WriteTo(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
