// Reproduces **Figure 6**: DP protocols under Sparse (10% of the view
// entries), Standard, and Burst (2x view entries) workloads.
//
// Paper shape (Observation 5): sDPTimer is more accurate on Sparse data
// (its schedule fires regardless of load, so trickling entries still get
// synchronized); sDPANT is more accurate on Burst data (it adapts its
// update frequency to the arrival rate while the timer lets data pile up).
// Efficiency is similar for both across workload types.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const char* name, bool cpdb, uint64_t steps) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%9s | %20s | %20s\n", "", "avg L1 error", "avg QET (s)");
  std::printf("%9s | %9s %10s | %9s %10s\n", "workload", "sDPTimer",
              "sDPANT", "sDPTimer", "sDPANT");
  std::printf("----------+----------------------+---------------------\n");
  const struct {
    const char* label;
    double view_rate_scale;
    bool bursty;
  } kVariants[] = {{"Sparse", 0.1, false},
                   {"Standard", 1.0, false},
                   {"Burst", 2.0, true}};
  for (const auto& variant : kVariants) {
    DatasetSpec spec =
        cpdb ? MakeCpdb(steps, variant.view_rate_scale, 1.0, variant.bursty)
             : MakeTpcDs(steps, variant.view_rate_scale, 1.0,
                         variant.bursty);
    // The owner's fixed-size batches must cover the arrival peaks; burst
    // spikes carry ~4x the average rate.
    if (variant.bursty) ScaleConfigBatches(&spec.config, 4.0);
    const AveragedRun timer = RunWorkloadAveraged(
        WithStrategy(spec.config, Strategy::kDpTimer), spec.workload, 5);
    const AveragedRun ant = RunWorkloadAveraged(
        WithStrategy(spec.config, Strategy::kDpAnt), spec.workload, 5);
    std::printf("%9s | %9.2f %10.2f | %9.5f %10.5f\n", variant.label,
                timer.l1_error, ant.l1_error, timer.qet_seconds,
                ant.qet_seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 6: DP protocols under Sparse / Standard / Burst load");
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb);
  return 0;
}
