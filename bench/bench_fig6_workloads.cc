// Reproduces **Figure 6**: DP protocols under Sparse (10% of the view
// entries), Standard, and Burst (2x view entries) workloads.
//
// Paper shape (Observation 5): sDPTimer is more accurate on Sparse data
// (its schedule fires regardless of load, so trickling entries still get
// synchronized); sDPANT is more accurate on Burst data (it adapts its
// update frequency to the arrival rate while the timer lets data pile up).
// Efficiency is similar for both across workload types.
//
// The three variants x two strategies x five seeds run as one flat
// RunConfigSweep per dataset.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr int kSeeds = 5;

struct Variant {
  const char* label;
  double view_rate_scale;
  bool bursty;
};
constexpr Variant kVariants[] = {{"Sparse", 0.1, false},
                                 {"Standard", 1.0, false},
                                 {"Burst", 2.0, true}};

void RunDataset(const char* name, bool cpdb, uint64_t steps) {
  std::printf("\n--- %s ---\n", name);
  // Generate every variant's stream up front so the sweep points can hold
  // stable workload pointers.
  std::vector<DatasetSpec> specs;
  for (const Variant& variant : kVariants) {
    DatasetSpec spec =
        cpdb ? MakeCpdb(steps, variant.view_rate_scale, 1.0, variant.bursty)
             : MakeTpcDs(steps, variant.view_rate_scale, 1.0, variant.bursty);
    // The owner's fixed-size batches must cover the arrival peaks; burst
    // spikes carry ~4x the average rate.
    if (variant.bursty) ScaleConfigBatches(&spec.config, 4.0);
    specs.push_back(std::move(spec));
  }
  std::vector<SweepPoint> points;
  for (size_t v = 0; v < specs.size(); ++v) {
    for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt}) {
      points.push_back({std::string(kVariants[v].label) + "/" +
                            StrategyName(s),
                        WithStrategy(specs[v].config, s), &specs[v].workload,
                        kSeeds});
    }
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  std::printf("%9s | %31s | %31s\n", "", "avg L1 error", "avg QET (s)");
  std::printf("%9s | %15s %15s | %15s %15s\n", "workload", "sDPTimer",
              "sDPANT", "sDPTimer", "sDPANT");
  std::printf("----------+---------------------------------+"
              "--------------------------------\n");
  for (size_t v = 0; v < specs.size(); ++v) {
    const AveragedRun& timer = rows[2 * v];
    const AveragedRun& ant = rows[2 * v + 1];
    // 16-byte fields: the 2-byte '±' leaves 15 display columns (headers).
    std::printf("%9s | %16s %16s | %16s %16s\n", kVariants[v].label,
                FormatWithError(timer.l1_error, timer.l1_error_sd).c_str(),
                FormatWithError(ant.l1_error, ant.l1_error_sd).c_str(),
                FormatWithError(timer.qet_seconds, timer.qet_seconds_sd, 5)
                    .c_str(),
                FormatWithError(ant.qet_seconds, ant.qet_seconds_sd, 5)
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 6: DP protocols under Sparse / Standard / Burst load");
  RunDataset("TPC-ds", /*cpdb=*/false, opt.steps_tpcds);
  RunDataset("CPDB", /*cpdb=*/true, opt.steps_cpdb);
  return 0;
}
