// Shard scaling: wall-clock throughput (engine steps/sec) of a SINGLE hot
// deployment as the secure cache splits into K shards stepping their Shrink
// instances concurrently — the intra-tenant counterpart of
// bench_fleet_scaling's across-tenant sweep.
//
// Each (K, threads) cell runs the same TPC-ds stream through one engine
// with `num_cache_shards = K` and `cache_shard_threads = threads`. Shrink
// is configured to fire often (small timer interval, regular flushes) so
// the per-shard oblivious sorts dominate; on a multicore host the K = 4
// row should speed up toward 4 threads while producing bit-identical
// results — the bench cross-checks a summary+transcript fingerprint across
// all thread counts of each K and prints the verdict. (On a 1-core CI
// container the speedup column stays ~1x; the determinism cross-check is
// the part that must always hold.)
//
// Wall time is measurement-only (std::chrono::steady_clock around Run);
// nothing timed ever feeds back into simulated results.

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

struct Fingerprint {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
};

uint64_t EngineFingerprint(const Engine& engine) {
  Fingerprint fp;
  const RunSummary s = engine.Summary();
  fp.Mix(s.steps);
  fp.Mix(s.updates);
  fp.Mix(s.flushes);
  fp.Mix(s.final_view_rows);
  fp.Mix(s.final_cache_rows);
  fp.Mix(s.final_true_count);
  fp.MixDouble(s.l1_error.mean());
  fp.MixDouble(s.total_mpc_seconds);
  fp.MixDouble(s.qet_seconds.mean());
  for (const TranscriptEvent& e : engine.transcript()) {
    fp.Mix(static_cast<uint64_t>(e.kind));
    fp.Mix(e.t);
    fp.Mix(e.rows);
  }
  return fp.hash;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Shard scaling: engine steps/sec vs cache shards x threads");
  const DatasetSpec tpcds = MakeTpcDs(opt.steps_tpcds);

  std::printf("%8s %8s | %10s %14s %10s | %s\n", "shards", "threads",
              "steps", "steps/sec", "speedup", "wall");
  bool deterministic = true;
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    double base_seconds = 0;
    uint64_t base_fingerprint = 0;
    for (const int threads : {1, 2, 4}) {
      IncShrinkConfig cfg = WithShards(
          WithStrategy(tpcds.config, Strategy::kDpTimer), shards, threads);
      cfg.timer_T = 2;         // Shrink-heavy: release every other step
      cfg.flush_interval = 8;  // regular full-cache sorts per shard
      SynchronousDeployment deployment(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const Status st =
          deployment.Run(tpcds.workload.t1, tpcds.workload.t2);
      const auto t1 = std::chrono::steady_clock::now();
      if (!st.ok()) {
        std::printf("engine failed: %s\n", st.ToString().c_str());
        return 1;
      }
      const double seconds =
          std::chrono::duration<double>(t1 - t0).count();
      const uint64_t fingerprint = EngineFingerprint(deployment.engine());
      const uint64_t steps = deployment.Summary().steps;
      if (threads == 1) {
        base_seconds = seconds;
        base_fingerprint = fingerprint;
      } else if (fingerprint != base_fingerprint) {
        deterministic = false;
      }
      std::printf("%8u %8d | %10llu %14.1f %9.2fx | %s\n", shards, threads,
                  static_cast<unsigned long long>(steps),
                  static_cast<double>(steps) / std::max(1e-9, seconds),
                  base_seconds / std::max(1e-9, seconds),
                  FormatSeconds(seconds).c_str());
    }
  }
  std::printf("\nDeterminism cross-check (summary+transcript fingerprints "
              "identical across thread counts for every K): %s\n",
              deterministic ? "OK" : "FAILED");
  return deterministic ? 0 : 1;
}
