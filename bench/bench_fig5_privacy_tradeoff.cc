// Reproduces **Figure 5**: the privacy/accuracy and privacy/efficiency
// trade-off — sweep eps in [0.01, 50] for both DP protocols on both
// datasets, reporting average L1 error and average QET.
//
// Paper shape (Observations 3-4):
//   * sDPTimer's L1 error decreases monotonically as eps grows;
//   * sDPANT's L1 error first rises then falls (small eps -> early updates
//     -> small c*; large eps -> less deferred data);
//   * QET decreases with eps for both (fewer dummies synchronized).

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

void RunDataset(const DatasetSpec& spec) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::printf("%8s | %20s | %20s\n", "", "avg L1 error", "avg QET (s)");
  std::printf("%8s | %9s %10s | %9s %10s\n", "eps", "sDPTimer", "sDPANT",
              "sDPTimer", "sDPANT");
  std::printf("---------+----------------------+---------------------\n");
  for (const double eps : {0.01, 0.1, 0.5, 1.0, 1.5, 5.0, 10.0, 50.0}) {
    IncShrinkConfig cfg = spec.config;
    cfg.eps = eps;
    const AveragedRun timer = RunWorkloadAveraged(
        WithStrategy(cfg, Strategy::kDpTimer), spec.workload, 5);
    const AveragedRun ant = RunWorkloadAveraged(
        WithStrategy(cfg, Strategy::kDpAnt), spec.workload, 5);
    std::printf("%8.2f | %9.2f %10.2f | %9.5f %10.5f\n", eps,
                timer.l1_error, ant.l1_error, timer.qet_seconds,
                ant.qet_seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 5: privacy vs accuracy / efficiency (eps sweep)");
  RunDataset(MakeTpcDs(opt.steps_tpcds));
  RunDataset(MakeCpdb(opt.steps_cpdb));
  return 0;
}
