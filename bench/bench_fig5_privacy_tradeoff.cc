// Reproduces **Figure 5**: the privacy/accuracy and privacy/efficiency
// trade-off — sweep eps in [0.01, 50] for both DP protocols on both
// datasets, reporting average L1 error and average QET (±1 sample stddev
// across seeds).
//
// Paper shape (Observations 3-4):
//   * sDPTimer's L1 error decreases monotonically as eps grows;
//   * sDPANT's L1 error first rises then falls (small eps -> early updates
//     -> small c*; large eps -> less deferred data);
//   * QET decreases with eps for both (fewer dummies synchronized).
//
// All (eps, strategy, seed) engines of a dataset run concurrently through
// RunConfigSweep; results are reduced in fixed index order, so the table is
// bit-identical for any worker count.

#include "bench/bench_common.h"

using namespace incshrink;
using namespace incshrink::bench;

namespace {

constexpr double kEps[] = {0.01, 0.1, 0.5, 1.0, 1.5, 5.0, 10.0, 50.0};
constexpr int kSeeds = 5;

void RunDataset(const DatasetSpec& spec) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::vector<SweepPoint> points;
  for (const double eps : kEps) {
    for (const Strategy s : {Strategy::kDpTimer, Strategy::kDpAnt}) {
      IncShrinkConfig cfg = WithStrategy(spec.config, s);
      cfg.eps = eps;
      points.push_back({StrategyName(s), cfg, &spec.workload, kSeeds});
    }
  }
  const std::vector<AveragedRun> rows = RunConfigSweep(points);

  std::printf("%8s | %31s | %31s\n", "", "avg L1 error", "avg QET (s)");
  std::printf("%8s | %15s %15s | %15s %15s\n", "eps", "sDPTimer", "sDPANT",
              "sDPTimer", "sDPANT");
  std::printf("---------+---------------------------------+"
              "--------------------------------\n");
  for (size_t i = 0; i < std::size(kEps); ++i) {
    const AveragedRun& timer = rows[2 * i];
    const AveragedRun& ant = rows[2 * i + 1];
    // %16s, not %15s: printf counts bytes and '±' is 2 bytes in UTF-8, so
    // 16 bytes render as the headers' 15 display columns.
    std::printf("%8.2f | %16s %16s | %16s %16s\n", kEps[i],
                FormatWithError(timer.l1_error, timer.l1_error_sd).c_str(),
                FormatWithError(ant.l1_error, ant.l1_error_sd).c_str(),
                FormatWithError(timer.qet_seconds, timer.qet_seconds_sd, 5)
                    .c_str(),
                FormatWithError(ant.qet_seconds, ant.qet_seconds_sd, 5)
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);
  PrintHeader("Figure 5: privacy vs accuracy / efficiency (eps sweep)");
  RunDataset(MakeTpcDs(opt.steps_tpcds));
  RunDataset(MakeCpdb(opt.steps_cpdb));
  return 0;
}
