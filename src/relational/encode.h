#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/oblivious/formats.h"
#include "src/relational/growing_table.h"

namespace incshrink {

/// Encodes a logical record into the outsourced source-row format
/// (`kSrc*` columns).
inline Row EncodeSourceRow(const LogicalRecord& rec) {
  Row row(kSrcWidth);
  row[kSrcValidCol] = 1;
  row[kSrcKeyCol] = rec.key;
  row[kSrcDateCol] = rec.date;
  row[kSrcRidCol] = rec.rid;
  row[kSrcPayloadCol] = rec.payload;
  return row;
}

/// Builds a dummy padding source row with random attributes. Its valid bit
/// is 0, so it can never join; the random key keeps padding
/// indistinguishable from real content once shared.
inline Row MakeDummySourceRow(Rng* rng) {
  Row row(kSrcWidth);
  row[kSrcValidCol] = 0;
  // Dummy keys live in the upper key space so they cannot collide with
  // real keys (generators draw keys below 2^30).
  row[kSrcKeyCol] = 0x40000000u | (rng->Next32() >> 2);
  row[kSrcDateCol] = rng->Next32();
  row[kSrcRidCol] = rng->Next32();
  row[kSrcPayloadCol] = rng->Next32();
  return row;
}

}  // namespace incshrink
