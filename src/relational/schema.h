#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/secret/share.h"

namespace incshrink {

/// Column type of the plaintext relational layer. All values are encoded as
/// 32-bit ring words before outsourcing, so the layer supports unsigned
/// 32-bit attributes (ids, day-granularity dates, categorical codes).
enum class ColumnType : uint8_t {
  kUInt32,
  kDate,  ///< days since epoch, stored as uint32
  kId,    ///< key/identifier
};

/// \brief Relation schema: an ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<std::pair<std::string, ColumnType>> cols);

  size_t num_columns() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  ColumnType type(size_t i) const { return types_[i]; }

  /// Returns the index of the named column.
  Result<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return names_ == other.names_ && types_ == other.types_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<ColumnType> types_;
};

/// A plaintext row: one word per schema column.
using Row = std::vector<Word>;

}  // namespace incshrink
