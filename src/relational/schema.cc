#include "src/relational/schema.h"

namespace incshrink {

Schema::Schema(
    std::initializer_list<std::pair<std::string, ColumnType>> cols) {
  for (const auto& [name, type] : cols) {
    names_.push_back(name);
    types_.push_back(type);
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

}  // namespace incshrink
