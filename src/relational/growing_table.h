#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/relational/schema.h"

namespace incshrink {

/// \brief A timestamped logical record of a growing database (paper
/// Section 4.1: D = {u_i}, each u_i a time-stamped insertion).
struct LogicalRecord {
  uint64_t step = 0;  ///< insertion time (upload step)
  Word rid = 0;       ///< globally unique record id
  Word key = 0;       ///< join key
  Word date = 0;      ///< event date (days)
  Word payload = 0;   ///< opaque attribute
};

/// \brief The logical growing database D for one relation: insert-only,
/// queried as snapshots D_t. This plaintext object exists only on the data
/// owner / for ground-truth evaluation — servers never see it.
class GrowingTable {
 public:
  explicit GrowingTable(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return records_.size(); }

  void Insert(const LogicalRecord& rec) {
    records_.push_back(rec);
    key_index_[rec.key].push_back(records_.size() - 1);
  }

  const std::vector<LogicalRecord>& records() const { return records_; }
  const LogicalRecord& record(size_t i) const { return records_[i]; }

  /// Indices of records sharing `key` (any snapshot; filter by step).
  const std::vector<size_t>* FindByKey(Word key) const {
    const auto it = key_index_.find(key);
    return it == key_index_.end() ? nullptr : &it->second;
  }

  /// Number of records inserted at or before `step` (|D_t|).
  size_t SnapshotSize(uint64_t step) const {
    size_t n = 0;
    for (const auto& r : records_)
      if (r.step <= step) ++n;
    return n;
  }

 private:
  std::string name_;
  std::vector<LogicalRecord> records_;
  std::unordered_map<Word, std::vector<size_t>> key_index_;
};

}  // namespace incshrink
