#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/relational/growing_table.h"

namespace incshrink {

class CheckpointWriter;
class CheckpointReader;

/// \brief Logical windowed-join count query q_t(D_t).
///
/// Counts pairs (a in T1, b in T2) with a.key == b.key and
/// b.date - a.date in [window_lo, window_hi] over the snapshots at time t.
/// Both paper queries have this shape:
///   Q1: SELECT COUNT(*) FROM Sales s JOIN Returns r ON s.PID = r.PID
///       WHERE r.ReturnDate - s.SaleDate <= 10
///   Q2: SELECT COUNT(*) FROM Allegation a JOIN Award w ON officerID
///       WHERE w.Time - a.CaseEnd <= 10
struct WindowJoinQuery {
  uint32_t window_lo = 0;
  uint32_t window_hi = 10;
  bool use_window = true;

  bool Matches(const LogicalRecord& a, const LogicalRecord& b) const {
    if (a.key != b.key) return false;
    if (!use_window) return true;
    if (b.date < a.date) return false;
    const Word delta = b.date - a.date;
    return delta >= window_lo && delta <= window_hi;
  }
};

/// \brief Incremental ground-truth evaluator for a WindowJoinQuery over two
/// growing tables.
///
/// Feeds per-step insertions and maintains the exact logical answer
/// q_t(D_t) in O(new x matching) time per step, so the benchmark harness can
/// issue one query per step over thousands of steps cheaply.
class WindowJoinCounter {
 public:
  explicit WindowJoinCounter(WindowJoinQuery query) : query_(query) {}

  /// Ingests the records inserted at one step (both sides) and returns the
  /// updated total count.
  uint64_t Step(const std::vector<LogicalRecord>& new_t1,
                const std::vector<LogicalRecord>& new_t2);

  uint64_t count() const { return count_; }

  /// One logical join pair (for ad-hoc ground truth).
  struct MatchedPair {
    Word key;
    Word date1;
    Word date2;
  };

  /// Every qualifying pair found so far, in discovery order. Enables exact
  /// ground truth for the rewritten ad-hoc queries (date-range / key
  /// restrictions over the join relation).
  const std::vector<MatchedPair>& pairs() const { return pairs_; }

  /// Exact recount from scratch (O(n1 x avg-bucket)); used by tests to
  /// validate the incremental path.
  static uint64_t CountFull(const WindowJoinQuery& query,
                            const std::vector<LogicalRecord>& t1,
                            const std::vector<LogicalRecord>& t2);

  /// Checkpoint support: serializes the full incremental state (count,
  /// discovered pairs, both key indexes). Index keys are emitted sorted so
  /// snapshot bytes are deterministic regardless of hash-map iteration
  /// order; per-key bucket vectors keep their insertion order, which is what
  /// the incremental join's discovery order depends on.
  void SaveTo(CheckpointWriter* writer) const;
  /// Restores the state saved by SaveTo; fails closed on malformed input.
  Status RestoreFrom(CheckpointReader* reader);

 private:
  WindowJoinQuery query_;
  std::unordered_map<Word, std::vector<LogicalRecord>> idx1_;
  std::unordered_map<Word, std::vector<LogicalRecord>> idx2_;
  uint64_t count_ = 0;
  std::vector<MatchedPair> pairs_;
};

}  // namespace incshrink
