#include "src/relational/query.h"

namespace incshrink {

uint64_t WindowJoinCounter::Step(const std::vector<LogicalRecord>& new_t1,
                                 const std::vector<LogicalRecord>& new_t2) {
  // New pairs are exactly: new_t2 x (old T1) plus new_t1 x (old T2 + new_t2);
  // inserting new_t2 into idx2_ first makes the two sums disjoint and
  // complete.
  for (const LogicalRecord& b : new_t2) idx2_[b.key].push_back(b);
  for (const LogicalRecord& b : new_t2) {
    const auto it = idx1_.find(b.key);
    if (it == idx1_.end()) continue;
    for (const LogicalRecord& a : it->second) {
      if (query_.Matches(a, b)) {
        ++count_;
        pairs_.push_back({a.key, a.date, b.date});
      }
    }
  }
  for (const LogicalRecord& a : new_t1) {
    const auto it = idx2_.find(a.key);
    if (it != idx2_.end()) {
      for (const LogicalRecord& b : it->second) {
        if (query_.Matches(a, b)) {
          ++count_;
          pairs_.push_back({a.key, a.date, b.date});
        }
      }
    }
    idx1_[a.key].push_back(a);
  }
  return count_;
}

uint64_t WindowJoinCounter::CountFull(const WindowJoinQuery& query,
                                      const std::vector<LogicalRecord>& t1,
                                      const std::vector<LogicalRecord>& t2) {
  std::unordered_map<Word, std::vector<LogicalRecord>> idx;
  for (const LogicalRecord& a : t1) idx[a.key].push_back(a);
  uint64_t count = 0;
  for (const LogicalRecord& b : t2) {
    const auto it = idx.find(b.key);
    if (it == idx.end()) continue;
    for (const LogicalRecord& a : it->second)
      if (query.Matches(a, b)) ++count;
  }
  return count;
}

}  // namespace incshrink
