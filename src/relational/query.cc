#include "src/relational/query.h"

#include <algorithm>

#include "src/storage/checkpoint.h"

namespace incshrink {

namespace {

void SaveIndex(
    CheckpointWriter* writer,
    const std::unordered_map<Word, std::vector<LogicalRecord>>& index) {
  std::vector<Word> keys;
  keys.reserve(index.size());
  for (const auto& [key, bucket] : index) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->U64(keys.size());
  for (Word key : keys) {
    const std::vector<LogicalRecord>& bucket = index.at(key);
    writer->U32(key);
    writer->U64(bucket.size());
    for (const LogicalRecord& rec : bucket) writer->WriteRecord(rec);
  }
}

Status RestoreIndex(CheckpointReader* reader,
                    std::unordered_map<Word, std::vector<LogicalRecord>>* out) {
  out->clear();
  const uint64_t num_keys = reader->U64();
  for (uint64_t i = 0; i < num_keys && reader->ok(); ++i) {
    const Word key = reader->U32();
    const uint64_t bucket_size = reader->U64();
    if (out->count(key) != 0) {
      return Status::InvalidArgument("snapshot join index repeats a key");
    }
    std::vector<LogicalRecord>& bucket = (*out)[key];
    for (uint64_t j = 0; j < bucket_size && reader->ok(); ++j) {
      bucket.push_back(reader->ReadRecord());
    }
  }
  return reader->ExpectOk("ground-truth join index");
}

}  // namespace

uint64_t WindowJoinCounter::Step(const std::vector<LogicalRecord>& new_t1,
                                 const std::vector<LogicalRecord>& new_t2) {
  // New pairs are exactly: new_t2 x (old T1) plus new_t1 x (old T2 + new_t2);
  // inserting new_t2 into idx2_ first makes the two sums disjoint and
  // complete.
  for (const LogicalRecord& b : new_t2) idx2_[b.key].push_back(b);
  for (const LogicalRecord& b : new_t2) {
    const auto it = idx1_.find(b.key);
    if (it == idx1_.end()) continue;
    for (const LogicalRecord& a : it->second) {
      if (query_.Matches(a, b)) {
        ++count_;
        pairs_.push_back({a.key, a.date, b.date});
      }
    }
  }
  for (const LogicalRecord& a : new_t1) {
    const auto it = idx2_.find(a.key);
    if (it != idx2_.end()) {
      for (const LogicalRecord& b : it->second) {
        if (query_.Matches(a, b)) {
          ++count_;
          pairs_.push_back({a.key, a.date, b.date});
        }
      }
    }
    idx1_[a.key].push_back(a);
  }
  return count_;
}

void WindowJoinCounter::SaveTo(CheckpointWriter* writer) const {
  writer->U64(count_);
  writer->U64(pairs_.size());
  for (const MatchedPair& pair : pairs_) {
    writer->U32(pair.key);
    writer->U32(pair.date1);
    writer->U32(pair.date2);
  }
  SaveIndex(writer, idx1_);
  SaveIndex(writer, idx2_);
}

Status WindowJoinCounter::RestoreFrom(CheckpointReader* reader) {
  // Decode into temporaries; commit only after everything validated, so a
  // failed restore leaves the counter untouched.
  const uint64_t count = reader->U64();
  const uint64_t num_pairs = reader->U64();
  std::vector<MatchedPair> pairs;
  for (uint64_t i = 0; i < num_pairs && reader->ok(); ++i) {
    MatchedPair pair;
    pair.key = reader->U32();
    pair.date1 = reader->U32();
    pair.date2 = reader->U32();
    pairs.push_back(pair);
  }
  INCSHRINK_RETURN_NOT_OK(reader->ExpectOk("ground-truth matched pairs"));
  if (count != pairs.size()) {
    return Status::InvalidArgument(
        "snapshot ground-truth count disagrees with its pair list");
  }
  std::unordered_map<Word, std::vector<LogicalRecord>> idx1;
  std::unordered_map<Word, std::vector<LogicalRecord>> idx2;
  INCSHRINK_RETURN_NOT_OK(RestoreIndex(reader, &idx1));
  INCSHRINK_RETURN_NOT_OK(RestoreIndex(reader, &idx2));
  count_ = count;
  pairs_ = std::move(pairs);
  idx1_ = std::move(idx1);
  idx2_ = std::move(idx2);
  return Status::OK();
}

uint64_t WindowJoinCounter::CountFull(const WindowJoinQuery& query,
                                      const std::vector<LogicalRecord>& t1,
                                      const std::vector<LogicalRecord>& t2) {
  std::unordered_map<Word, std::vector<LogicalRecord>> idx;
  for (const LogicalRecord& a : t1) idx[a.key].push_back(a);
  uint64_t count = 0;
  for (const LogicalRecord& b : t2) {
    const auto it = idx.find(b.key);
    if (it == idx.end()) continue;
    for (const LogicalRecord& a : it->second)
      if (query.Matches(a, b)) ++count;
  }
  return count;
}

}  // namespace incshrink
