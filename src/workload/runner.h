#pragma once

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/generators.h"

namespace incshrink {

/// Runs one full deployment of `config` over the generated stream — the
/// generator feeds the deployment's OwnerClients, which push upload frames
/// through the bounded channels the engine drains (lockstep schedule) —
/// and returns the aggregated metrics. Aborts on privacy-ledger violations
/// (which would indicate a bug, not an expected condition).
RunSummary RunWorkload(const IncShrinkConfig& config,
                       const GeneratedWorkload& workload);

/// Protocol seed of replica `i` of an averaged run. Public so the
/// equivalence tests (and anything replaying a single replica) can
/// reconstruct the exact engines a sweep executed.
inline uint64_t DeriveReplicaSeed(uint64_t base_seed, int replica) {
  return base_seed + 7919ull * static_cast<uint64_t>(replica);
}

/// \brief Plain-number aggregates averaged over several protocol seeds.
///
/// The DP protocols are randomized; single runs of short streams carry
/// noticeable noise-realization variance, so the figure benches average a
/// few seeds (the paper averages over long streams instead). Each mean
/// carries its sample standard deviation across seeds (`*_sd`, zero when
/// `num_seeds == 1`) so benches can print error bars.
struct AveragedRun {
  double l1_error = 0;
  double relative_error = 0;
  double qet_seconds = 0;
  double transform_seconds = 0;
  double shrink_seconds = 0;
  double total_mpc_seconds = 0;
  double total_query_seconds = 0;
  double view_mb = 0;
  double updates = 0;

  double l1_error_sd = 0;
  double relative_error_sd = 0;
  double qet_seconds_sd = 0;
  double transform_seconds_sd = 0;
  double shrink_seconds_sd = 0;
  double total_mpc_seconds_sd = 0;
  double total_query_seconds_sd = 0;
  double view_mb_sd = 0;
  double updates_sd = 0;

  int num_seeds = 0;
};

/// Runs `num_seeds` independent engines (seeds via DeriveReplicaSeed) on
/// `num_threads` workers (0 = INCSHRINK_THREADS override, else hardware
/// concurrency) and averages their summaries.
///
/// Determinism guarantee: per-seed results land in an index-ordered buffer
/// and are merged with a fixed-shape pairwise reduction, so the returned
/// AveragedRun is bit-identical for every thread count — including the
/// no-thread reference path RunWorkloadAveragedSerial, which the
/// parallel-equivalence suite compares against with exact `==`.
AveragedRun RunWorkloadAveraged(const IncShrinkConfig& config,
                                const GeneratedWorkload& workload,
                                int num_seeds, int num_threads = 0);

/// Reference implementation: same seeds, same reduction, plain loop, no
/// thread pool involvement at all.
AveragedRun RunWorkloadAveragedSerial(const IncShrinkConfig& config,
                                      const GeneratedWorkload& workload,
                                      int num_seeds);

/// Runs one engine per derived seed concurrently and returns the full
/// per-seed summaries in seed-index order (entry i always used seed
/// DeriveReplicaSeed(config.seed, i), whatever worker computed it).
std::vector<RunSummary> RunSeedSweep(const IncShrinkConfig& config,
                                     const GeneratedWorkload& workload,
                                     int num_seeds, int num_threads = 0);

/// One point of a configuration sweep: a labelled config, the workload it
/// runs against (non-owning; must outlive the sweep call), and how many
/// seeds to average.
struct SweepPoint {
  std::string label;
  IncShrinkConfig config;
  const GeneratedWorkload* workload = nullptr;
  int num_seeds = 1;
};

/// Runs every (point, seed) engine of the sweep concurrently — the whole
/// sweep is one flat task list, so a few slow points cannot starve the
/// workers — and returns one AveragedRun per point, in point order, each
/// reduced exactly as RunWorkloadAveraged would reduce it.
std::vector<AveragedRun> RunConfigSweep(const std::vector<SweepPoint>& points,
                                        int num_threads = 0);

/// Convenience: formats seconds with an adaptive unit (s / ms / us).
std::string FormatSeconds(double seconds);

/// Formats an improvement factor like the paper's "Imp." rows ("1366x",
/// "1.5e+5x"); returns "1x" for the baseline itself.
std::string FormatImprovement(double factor);

/// Formats "mean ± sd" for bench error bars ("12.34±0.56").
std::string FormatWithError(double mean, double sd, int precision = 2);

}  // namespace incshrink
