#pragma once

#include <string>

#include "src/core/engine.h"
#include "src/workload/generators.h"

namespace incshrink {

/// Runs one full deployment of `config` over the generated stream and
/// returns the aggregated metrics. Aborts on privacy-ledger violations
/// (which would indicate a bug, not an expected condition).
RunSummary RunWorkload(const IncShrinkConfig& config,
                       const GeneratedWorkload& workload);

/// \brief Plain-number aggregates averaged over several protocol seeds.
///
/// The DP protocols are randomized; single runs of short streams carry
/// noticeable noise-realization variance, so the figure benches average a
/// few seeds (the paper averages over long streams instead).
struct AveragedRun {
  double l1_error = 0;
  double relative_error = 0;
  double qet_seconds = 0;
  double transform_seconds = 0;
  double shrink_seconds = 0;
  double total_mpc_seconds = 0;
  double total_query_seconds = 0;
  double view_mb = 0;
  double updates = 0;
};

AveragedRun RunWorkloadAveraged(const IncShrinkConfig& config,
                                const GeneratedWorkload& workload,
                                int num_seeds);

/// Convenience: formats seconds with an adaptive unit (s / ms / us).
std::string FormatSeconds(double seconds);

/// Formats an improvement factor like the paper's "Imp." rows ("1366x",
/// "1.5e+5x"); returns "1x" for the baseline itself.
std::string FormatImprovement(double factor);

}  // namespace incshrink
