#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/relational/growing_table.h"

namespace incshrink {

/// \brief A generated growing-data stream: per-step arrival lists for the
/// two relations of a windowed-join workload.
struct GeneratedWorkload {
  std::vector<std::vector<LogicalRecord>> t1;
  std::vector<std::vector<LogicalRecord>> t2;
  uint64_t total_t1 = 0;
  uint64_t total_t2 = 0;
  /// Total qualifying join pairs across the whole stream (exact).
  uint64_t total_view_entries = 0;

  uint64_t steps() const { return t1.size(); }
  double avg_view_entries_per_step() const {
    return t1.empty() ? 0.0
                      : static_cast<double>(total_view_entries) /
                            static_cast<double>(t1.size());
  }
};

/// \brief Synthetic TPC-ds-like Sales/Returns stream (paper Q1 workload).
///
/// The paper streams the TPC-ds Sales (2.2M rows) and Returns (270k rows)
/// tables by sale/return date with daily uploads; the quantity that drives
/// every experiment is the view-entry arrival process — on average 2.7 new
/// join pairs per step, join multiplicity 1 (a sale is returned at most
/// once, within 10 days). This generator reproduces those statistics:
/// Poisson sales arrivals, each returned with fixed probability after a
/// bounded delay.
struct TpcDsParams {
  uint64_t steps = 360;
  double sales_per_step = 6.0;
  double return_probability = 0.45;   ///< 6.0 * 0.45 = 2.7 views/step
  uint32_t max_return_delay_days = 9; ///< within the 10-day window
  double scale = 1.0;                 ///< Fig. 9: scales the whole stream
  double view_rate_scale = 1.0;       ///< Fig. 6: Sparse = 0.1, Burst = 2.0
  /// Fig. 6 Burst variant: concentrates arrivals into periodic spikes
  /// (2 hot steps out of every 10 carry ~80% of the volume) instead of a
  /// uniform rate — the regime where sDPANT's adaptive schedule wins.
  bool bursty = false;
  uint64_t seed = 7;
};
GeneratedWorkload GenerateTpcDs(const TpcDsParams& params);

/// \brief Synthetic CPDB-like Allegation/Award stream (paper Q2 workload).
///
/// Allegation (private) arrivals are Poisson; each allegation's officer
/// later receives several awards (the Award relation is public), giving
/// join multiplicity > 1 — on average 9.8 new view pairs per step. Award
/// delays stay within the 10-day window and within the record's eligibility
/// (b = 2*omega: two Transform participations at 5-day steps).
struct CpdbParams {
  uint64_t steps = 240;
  double allegations_per_step = 1.4;
  double awards_per_allegation = 7.0;  ///< 1.4 * 7 = 9.8 views/step
  uint32_t max_awards = 10;            ///< <= default omega: no truncation
  uint32_t days_per_step = 5;
  double scale = 1.0;
  double view_rate_scale = 1.0;  ///< scales the allegation rate
  bool bursty = false;           ///< see TpcDsParams::bursty
  uint64_t seed = 9;
};
GeneratedWorkload GenerateCpdb(const CpdbParams& params);

// --- Zipf-skewed multi-tenant traffic (fleet serving scenario) ---

/// Zipf(s) popularity weights over `n` ranks, normalized to mean 1 (so a
/// fleet of n skewed tenants carries the same total traffic as n uniform
/// ones): weight of rank r (0-based) is proportional to 1/(r+1)^s. s = 0 is
/// uniform; s ~ 1 is the classic heavy web-traffic skew. Deterministic —
/// no randomness involved.
std::vector<double> ZipfWeights(size_t n, double s);

/// \brief Draws ranks in [0, n) from the Zipf(s) distribution by CDF
/// inversion over the caller's seeded Rng — the only entropy source, so
/// identical seeds reproduce identical skew realizations bit for bit.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;

  size_t n() const { return pmf_.size(); }
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

/// Parameters of a Zipf-skewed tenant fleet: `num_tenants` TPC-ds-shaped
/// streams whose arrival volumes follow ZipfWeights(num_tenants, s) —
/// tenant 0 is the hot head, the tail is near-idle. Each tenant draws from
/// its own splitmix64-derived seed, so streams are independent and any
/// single tenant can be regenerated standalone.
struct ZipfFleetParams {
  size_t num_tenants = 8;
  double s = 1.0;      ///< skew exponent (0 = uniform fleet)
  uint64_t steps = 120;
  double mean_scale = 1.0;  ///< average per-tenant volume multiplier
  uint64_t seed = 77;
};
std::vector<GeneratedWorkload> GenerateZipfFleetWorkloads(
    const ZipfFleetParams& params);

/// Default engine configurations matched to the generators above, mirroring
/// the paper's Section-7 defaults (eps = 1.5; omega = 1, b = 10, T = 10 for
/// TPC-ds; omega = 10, b = 20, T = 3 for CPDB; theta = 30) with the cache
/// flush cadence scaled to our shorter streams.
IncShrinkConfig DefaultTpcDsConfig();
IncShrinkConfig DefaultCpdbConfig();

/// Applies a Fig.9-style scale factor to the upload batch sizes of `config`
/// (data volume scales with the stream).
void ScaleConfigBatches(IncShrinkConfig* config, double scale);

}  // namespace incshrink
