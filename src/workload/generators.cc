#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace incshrink {

namespace {

/// Keys/rids are drawn below 2^30 so composite sort keys (key*2 + tag) fit
/// the 32-bit ring and never collide with dummy-row keys.
constexpr Word kKeyBase = 1;

/// Arrival-rate weight for bursty streams: 2 hot steps out of every 10
/// carry 4x the average rate, the other 8 carry 0.25x (mean weight 1).
double BurstWeight(bool bursty, uint64_t t) {
  if (!bursty) return 1.0;
  return (t % 10) < 2 ? 4.0 : 0.25;
}

}  // namespace

GeneratedWorkload GenerateTpcDs(const TpcDsParams& params) {
  Rng rng(params.seed);
  GeneratedWorkload w;
  w.t1.resize(params.steps);
  w.t2.resize(params.steps);

  const double sales_rate = params.sales_per_step * params.scale;
  const double return_p =
      std::min(1.0, params.return_probability * params.view_rate_scale);

  Word next_key = kKeyBase;
  Word next_rid = 1;
  for (uint64_t t = 0; t < params.steps; ++t) {
    const uint64_t sales =
        rng.Poisson(sales_rate * BurstWeight(params.bursty, t));
    for (uint64_t i = 0; i < sales; ++i) {
      LogicalRecord sale;
      sale.step = t + 1;
      sale.rid = next_rid++;
      sale.key = next_key++;  // each product sold once: multiplicity 1
      sale.date = static_cast<Word>(t + 1);
      sale.payload = rng.Next32();
      w.t1[t].push_back(sale);
      ++w.total_t1;
      if (rng.Bernoulli(return_p)) {
        // In bursty mode returns follow their sales quickly, so the
        // view-entry process spikes with the sales process instead of being
        // smeared across the return window.
        const uint32_t max_delay =
            params.bursty ? std::min(2u, params.max_return_delay_days)
                          : params.max_return_delay_days;
        const uint32_t delay =
            static_cast<uint32_t>(rng.Uniform(max_delay + 1));
        const uint64_t rstep = t + delay;  // 1 day per step
        if (rstep < params.steps) {
          LogicalRecord ret;
          ret.step = rstep + 1;
          ret.rid = next_rid++;
          ret.key = sale.key;
          ret.date = sale.date + delay;
          ret.payload = rng.Next32();
          w.t2[rstep].push_back(ret);
          ++w.total_t2;
          ++w.total_view_entries;
        }
      }
    }
  }
  // Arrival lists must be ordered by step for t2 (they were appended at
  // generation time of the sale, which is already non-decreasing in t).
  return w;
}

GeneratedWorkload GenerateCpdb(const CpdbParams& params) {
  Rng rng(params.seed);
  GeneratedWorkload w;
  w.t1.resize(params.steps);
  w.t2.resize(params.steps);

  const double alleg_rate =
      params.allegations_per_step * params.scale * params.view_rate_scale;

  Word next_key = kKeyBase;
  Word next_rid = 1;
  for (uint64_t t = 0; t < params.steps; ++t) {
    const uint64_t allegations =
        rng.Poisson(alleg_rate * BurstWeight(params.bursty, t));
    for (uint64_t i = 0; i < allegations; ++i) {
      LogicalRecord alleg;
      alleg.step = t + 1;
      alleg.rid = next_rid++;
      alleg.key = next_key++;  // one officer per allegation in this stream
      const uint32_t day_offset = static_cast<uint32_t>(
          rng.Uniform(params.days_per_step));  // 0..4
      alleg.date =
          static_cast<Word>(t * params.days_per_step + day_offset + 1);
      alleg.payload = rng.Next32();
      w.t1[t].push_back(alleg);
      ++w.total_t1;

      uint64_t awards = rng.Poisson(params.awards_per_allegation);
      awards = std::min<uint64_t>(awards, params.max_awards);
      for (uint64_t a = 0; a < awards; ++a) {
        // Award delay stays inside both the 10-day window and the record's
        // next-step eligibility (delta <= 2*days_per_step - 1 - day_offset).
        const uint32_t max_delta =
            2 * params.days_per_step - 1 - day_offset;
        const uint32_t delta =
            static_cast<uint32_t>(rng.Uniform(max_delta + 1));
        const Word award_day = alleg.date + delta;
        const uint64_t astep = (award_day - 1) / params.days_per_step;
        if (astep >= params.steps) continue;
        LogicalRecord award;
        award.step = astep + 1;
        award.rid = next_rid++;
        award.key = alleg.key;
        award.date = award_day;
        award.payload = rng.Next32();
        w.t2[astep].push_back(award);
        ++w.total_t2;
        ++w.total_view_entries;
      }
    }
  }
  // Awards can be emitted out of arrival order within a step; the engine
  // does not care, but keep rids deterministic for reproducibility.
  return w;
}

std::vector<double> ZipfWeights(size_t n, double s) {
  INCSHRINK_CHECK_GE(n, 1u);
  std::vector<double> w(n);
  double sum = 0.0;
  for (size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -s);
    sum += w[r];
  }
  // Normalize to mean 1 so the fleet-wide volume is skew-invariant.
  const double scale = static_cast<double>(n) / sum;
  for (double& v : w) v *= scale;
  return w;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  pmf_ = ZipfWeights(n, s);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (double& v : pmf_) v *= inv_n;  // mean-1 weights -> probabilities
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += pmf_[r];
    cdf_[r] = acc;
  }
  cdf_.back() = 1.0;  // absorb float rounding: the last bucket closes [0,1)
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<size_t>(static_cast<size_t>(it - cdf_.begin()),
                          cdf_.size() - 1);
}

std::vector<GeneratedWorkload> GenerateZipfFleetWorkloads(
    const ZipfFleetParams& params) {
  const std::vector<double> weights =
      ZipfWeights(params.num_tenants, params.s);
  std::vector<GeneratedWorkload> out;
  out.reserve(params.num_tenants);
  for (size_t i = 0; i < params.num_tenants; ++i) {
    TpcDsParams tp;
    tp.steps = params.steps;
    tp.scale = weights[i] * params.mean_scale;
    // Same splitmix64 scramble as DeriveTenantSeed (local copy — workload
    // must not depend on core/): disjoint per-tenant arrival streams.
    uint64_t z = params.seed +
                 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(i) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    tp.seed = z ^ (z >> 31);
    out.push_back(GenerateTpcDs(tp));
  }
  return out;
}

IncShrinkConfig DefaultTpcDsConfig() {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 1;
  cfg.budget_b = 10;
  cfg.join = JoinSpec{0, 10, true, 1, true, true};
  cfg.window_steps = 10;
  cfg.t2_is_public = false;
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 10;  // floor(theta / 2.7) per the paper's consistency rule
  cfg.ant_theta = 30;
  // Paper defaults are f = 2000, s = 15 over ~1800 steps (≈ one flush per
  // run). Our streams are shorter, so we keep a comparable flush-per-run
  // ratio and size the flush by the Theorem-4 deferred-data bound
  // (alpha = 2b/eps * sqrt(k log 1/beta) ~ 113 at k ~ 24, beta = 0.05) so
  // that, per Section 5.2.1, real data is recycled only with small
  // probability.
  cfg.flush_interval = 120;
  cfg.flush_size = 120;
  cfg.upload_rows_t1 = 8;
  cfg.upload_rows_t2 = 8;
  cfg.seed = 42;
  return cfg;
}

IncShrinkConfig DefaultCpdbConfig() {
  IncShrinkConfig cfg;
  cfg.eps = 1.5;
  cfg.omega = 10;
  cfg.budget_b = 20;
  cfg.join = JoinSpec{0, 10, true, 10, true, false};
  cfg.window_steps = 2;
  cfg.t2_is_public = true;
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = 3;  // floor(theta / 9.8)
  cfg.ant_theta = 30;
  // Flush size per the Theorem-4 bound with b = 20 (see the TPC-ds config).
  cfg.flush_interval = 60;
  cfg.flush_size = 240;
  cfg.upload_rows_t1 = 4;
  cfg.upload_rows_t2 = 12;
  cfg.seed = 43;
  return cfg;
}

void ScaleConfigBatches(IncShrinkConfig* config, double scale) {
  INCSHRINK_CHECK_GT(scale, 0.0);
  const auto scale_up = [scale](uint32_t v) -> uint32_t {
    return std::max<uint32_t>(
        1, static_cast<uint32_t>(std::ceil(v * scale)));
  };
  config->upload_rows_t1 = scale_up(config->upload_rows_t1);
  config->upload_rows_t2 = scale_up(config->upload_rows_t2);
}

}  // namespace incshrink
