#include "src/workload/runner.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace incshrink {

RunSummary RunWorkload(const IncShrinkConfig& config,
                       const GeneratedWorkload& workload) {
  Engine engine(config);
  const Status st = engine.Run(workload.t1, workload.t2);
  INCSHRINK_CHECK(st.ok());
  return engine.Summary();
}

AveragedRun RunWorkloadAveraged(const IncShrinkConfig& config,
                                const GeneratedWorkload& workload,
                                int num_seeds) {
  INCSHRINK_CHECK_GT(num_seeds, 0);
  AveragedRun avg;
  for (int i = 0; i < num_seeds; ++i) {
    IncShrinkConfig cfg = config;
    cfg.seed = config.seed + 7919ull * static_cast<uint64_t>(i);
    const RunSummary s = RunWorkload(cfg, workload);
    avg.l1_error += s.l1_error.mean();
    avg.relative_error += s.OverallRelativeError();
    avg.qet_seconds += s.qet_seconds.mean();
    avg.transform_seconds += s.transform_seconds.mean();
    avg.shrink_seconds += s.shrink_seconds.mean();
    avg.total_mpc_seconds += s.total_mpc_seconds;
    avg.total_query_seconds += s.total_query_seconds;
    avg.view_mb += s.final_view_mb;
    avg.updates += static_cast<double>(s.updates);
  }
  const double n = num_seeds;
  avg.l1_error /= n;
  avg.relative_error /= n;
  avg.qet_seconds /= n;
  avg.transform_seconds /= n;
  avg.shrink_seconds /= n;
  avg.total_mpc_seconds /= n;
  avg.total_query_seconds /= n;
  avg.view_mb /= n;
  avg.updates /= n;
  return avg;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FormatImprovement(double factor) {
  char buf[64];
  if (!std::isfinite(factor)) return "inf";
  if (factor >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1ex", factor);
  } else if (factor >= 10) {
    std::snprintf(buf, sizeof(buf), "%.0fx", factor);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fx", factor);
  }
  return buf;
}

}  // namespace incshrink
