#include "src/workload/runner.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/core/owner_client.h"

namespace incshrink {

namespace {

/// The nine per-seed samples an AveragedRun aggregates, extracted from one
/// replica's RunSummary.
struct SeedSample {
  double v[9] = {0};
};

SeedSample ExtractSample(const RunSummary& s) {
  SeedSample x;
  x.v[0] = s.l1_error.mean();
  x.v[1] = s.OverallRelativeError();
  x.v[2] = s.qet_seconds.mean();
  x.v[3] = s.transform_seconds.mean();
  x.v[4] = s.shrink_seconds.mean();
  x.v[5] = s.total_mpc_seconds;
  x.v[6] = s.total_query_seconds;
  x.v[7] = s.final_view_mb;
  x.v[8] = static_cast<double>(s.updates);
  return x;
}

/// Fixed-shape pairwise (tree) sum over v[lo, hi). The reduction order is a
/// pure function of the index range — never of which worker finished first —
/// so parallel and serial sweeps reduce identically, and the tree shape also
/// keeps rounding error O(log n) instead of the running-`+=` loop's O(n).
double PairwiseSum(const std::vector<double>& v, size_t lo, size_t hi) {
  const size_t n = hi - lo;
  if (n == 1) return v[lo];
  if (n == 2) return v[lo] + v[lo + 1];
  const size_t mid = lo + n / 2;
  return PairwiseSum(v, lo, mid) + PairwiseSum(v, mid, hi);
}

/// Reduces index-ordered per-seed samples into means + sample stddevs.
AveragedRun ReduceSamples(const std::vector<SeedSample>& samples) {
  const size_t n = samples.size();
  INCSHRINK_CHECK_GT(n, 0u);
  double mean[9];
  double sd[9];
  std::vector<double> column(n);
  for (size_t k = 0; k < 9; ++k) {
    for (size_t i = 0; i < n; ++i) column[i] = samples[i].v[k];
    mean[k] = PairwiseSum(column, 0, n) / static_cast<double>(n);
    if (n < 2) {
      sd[k] = 0.0;
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double d = samples[i].v[k] - mean[k];
        column[i] = d * d;
      }
      sd[k] = std::sqrt(PairwiseSum(column, 0, n) / static_cast<double>(n - 1));
    }
  }
  AveragedRun avg;
  avg.l1_error = mean[0];
  avg.relative_error = mean[1];
  avg.qet_seconds = mean[2];
  avg.transform_seconds = mean[3];
  avg.shrink_seconds = mean[4];
  avg.total_mpc_seconds = mean[5];
  avg.total_query_seconds = mean[6];
  avg.view_mb = mean[7];
  avg.updates = mean[8];
  avg.l1_error_sd = sd[0];
  avg.relative_error_sd = sd[1];
  avg.qet_seconds_sd = sd[2];
  avg.transform_seconds_sd = sd[3];
  avg.shrink_seconds_sd = sd[4];
  avg.total_mpc_seconds_sd = sd[5];
  avg.total_query_seconds_sd = sd[6];
  avg.view_mb_sd = sd[7];
  avg.updates_sd = sd[8];
  avg.num_seeds = static_cast<int>(n);
  return avg;
}

RunSummary RunReplica(const IncShrinkConfig& config,
                      const GeneratedWorkload& workload, int replica) {
  IncShrinkConfig cfg = config;
  cfg.seed = DeriveReplicaSeed(config.seed, replica);
  return RunWorkload(cfg, workload);
}

}  // namespace

RunSummary RunWorkload(const IncShrinkConfig& config,
                       const GeneratedWorkload& workload) {
  // Generators feed the OwnerClients of a lockstep deployment — the owner
  // side is decoupled from the engine even here; only the drive schedule is
  // synchronous.
  SynchronousDeployment deployment(config);
  const Status st = deployment.Run(workload.t1, workload.t2);
  INCSHRINK_CHECK(st.ok());
  return deployment.engine().Summary();
}

std::vector<RunSummary> RunSeedSweep(const IncShrinkConfig& config,
                                     const GeneratedWorkload& workload,
                                     int num_seeds, int num_threads) {
  INCSHRINK_CHECK_GT(num_seeds, 0);
  std::vector<RunSummary> summaries(static_cast<size_t>(num_seeds));
  ParallelFor(num_threads, summaries.size(), [&](size_t i) {
    summaries[i] = RunReplica(config, workload, static_cast<int>(i));
  });
  return summaries;
}

AveragedRun RunWorkloadAveraged(const IncShrinkConfig& config,
                                const GeneratedWorkload& workload,
                                int num_seeds, int num_threads) {
  const std::vector<RunSummary> summaries =
      RunSeedSweep(config, workload, num_seeds, num_threads);
  std::vector<SeedSample> samples(summaries.size());
  for (size_t i = 0; i < summaries.size(); ++i)
    samples[i] = ExtractSample(summaries[i]);
  return ReduceSamples(samples);
}

AveragedRun RunWorkloadAveragedSerial(const IncShrinkConfig& config,
                                      const GeneratedWorkload& workload,
                                      int num_seeds) {
  INCSHRINK_CHECK_GT(num_seeds, 0);
  std::vector<SeedSample> samples(static_cast<size_t>(num_seeds));
  for (int i = 0; i < num_seeds; ++i)
    samples[static_cast<size_t>(i)] =
        ExtractSample(RunReplica(config, workload, i));
  return ReduceSamples(samples);
}

std::vector<AveragedRun> RunConfigSweep(const std::vector<SweepPoint>& points,
                                        int num_threads) {
  // Flatten every (point, seed) engine into one task list with a stable
  // task -> (point, seed) mapping, so the pool stays saturated across the
  // whole sweep and every sample still lands in its own slot.
  struct Task {
    size_t point;
    int seed;
  };
  std::vector<Task> tasks;
  std::vector<std::vector<SeedSample>> samples(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    INCSHRINK_CHECK(points[p].workload != nullptr);
    INCSHRINK_CHECK_GT(points[p].num_seeds, 0);
    samples[p].resize(static_cast<size_t>(points[p].num_seeds));
    for (int s = 0; s < points[p].num_seeds; ++s) tasks.push_back({p, s});
  }
  ParallelFor(num_threads, tasks.size(), [&](size_t i) {
    const Task& task = tasks[i];
    const SweepPoint& point = points[task.point];
    samples[task.point][static_cast<size_t>(task.seed)] =
        ExtractSample(RunReplica(point.config, *point.workload, task.seed));
  });
  std::vector<AveragedRun> results;
  results.reserve(points.size());
  for (size_t p = 0; p < points.size(); ++p)
    results.push_back(ReduceSamples(samples[p]));
  return results;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FormatImprovement(double factor) {
  char buf[64];
  if (!std::isfinite(factor)) return "inf";
  if (factor >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1ex", factor);
  } else if (factor >= 10) {
    std::snprintf(buf, sizeof(buf), "%.0fx", factor);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fx", factor);
  }
  return buf;
}

std::string FormatWithError(double mean, double sd, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision,
                sd);
  return buf;
}

}  // namespace incshrink
