#include "src/common/fixed_point.h"

#include <cmath>
#include <limits>

namespace incshrink {

double FixedPointOpenUnit(uint32_t z) {
  const uint32_t low31 = z & 0x7FFFFFFFu;
  return (static_cast<double>(low31) + 0.5) * 0x1.0p-31;
}

double SignFromMsb(uint32_t z) { return (z & 0x80000000u) ? 1.0 : -1.0; }

uint32_t SaturatingToRing(double x) {
  if (std::isnan(x) || x <= 0.0) return 0;
  if (x >= static_cast<double>(std::numeric_limits<uint32_t>::max()))
    return std::numeric_limits<uint32_t>::max();
  return static_cast<uint32_t>(std::llround(x));
}

}  // namespace incshrink
