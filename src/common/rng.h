#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace incshrink {

/// Complete serialized state of an Rng: the four xoshiro256** words plus the
/// Box-Muller spare. Capturing and restoring this struct resumes the stream
/// at the exact cursor, so a checkpointed run continues bit-identically. The
/// cached normal is carried as raw IEEE-754 bits to keep the round trip exact
/// through byte-oriented snapshot formats.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  uint64_t cached_normal_bits = 0;
  bool have_cached_normal = false;
};

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Used for share randomization, dummy payloads, workload generation and the
/// party-contributed randomness that feeds joint noise generation. The
/// generator is seedable so every experiment in this repository is exactly
/// reproducible. It satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; distinct seeds yield independent-looking streams
  /// (seed expansion via splitmix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next 64 uniform bits. Inline: this sits in the innermost
  /// loop of every batched resharing-mask draw and share-randomization path,
  /// where an out-of-line call per word was the dominant non-kernel cost.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }
  result_type operator()() { return Next64(); }

  /// Returns the next 32 uniform bits.
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in the open interval (0, 1) — never 0, suitable
  /// for log-based samplers.
  double NextDoubleOpen();

  /// Samples from Exp(mean) via inversion.
  double Exponential(double mean);

  /// Samples from Lap(0, scale) via inversion (sign x Exp magnitude).
  double Laplace(double scale);

  /// Samples a Poisson variate with the given mean (Knuth for small mean,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Samples a standard normal variate (Box-Muller).
  double Normal(double mean, double stddev);

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exports the full stream cursor for checkpointing. The exported state is
  /// a pure function of the seed and the number of draws so far — persisting
  /// it leaks nothing beyond what the (public) seed already determines.
  RngState ExportState() const;

  /// Overwrites the stream cursor with a previously exported state. After
  /// this call the generator produces exactly the draws the exporting
  /// generator would have produced next. Restore never draws.
  void RestoreState(const RngState& state);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Fisher-Yates shuffle driven by the seeded stream. This is the one
/// sanctioned plaintext shuffle: tools/check_no_hidden_entropy.sh bans
/// std::shuffle/random_shuffle everywhere else so that every reordering in
/// the repository is reproducible from an explicit seed. (The *oblivious*
/// shuffle over secret-shared rows is a different animal — see
/// src/oblivious/shuffle.h, which draws its permutation from the protocol's
/// jointly seeded resharing stream instead.)
template <typename RandomIt>
void SeededShuffle(RandomIt first, RandomIt last, Rng* rng) {
  const auto n = static_cast<uint64_t>(last - first);
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng->Uniform(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace incshrink
