#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/logging.h"

namespace incshrink {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("INCSHRINK_THREADS")) {
    // Clamp before narrowing: absurd values (e.g. 2^32) must not wrap to a
    // non-positive worker count.
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(std::min(v, 1024L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunSlice() {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    lock.unlock();
    RunSlice();
    lock.lock();
    if (--workers_active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Single-thread pool: run inline. Error semantics match the
    // multi-worker path — every iteration still runs, then the first
    // exception is rethrown — so slot state after a failure does not
    // depend on the worker count.
    std::exception_ptr first;
    for (size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    INCSHRINK_CHECK(body_ == nullptr);  // no nested / concurrent ParallelFor
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunSlice();  // the calling thread participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& body) {
  // Never spawn more workers than there are tasks: a 5-point sweep on a
  // 64-core host needs 5 threads, not 63 idle wakeups.
  const size_t resolved =
      static_cast<size_t>(ResolveThreadCount(num_threads));
  ThreadPool pool(static_cast<int>(std::min(resolved, std::max<size_t>(n, 1))));
  pool.ParallelFor(n, body);
}

}  // namespace incshrink
