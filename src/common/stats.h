#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace incshrink {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used throughout the benchmark harness to aggregate per-query L1 errors,
/// execution times and view sizes without storing every sample.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// \brief Sample container with quantile queries, for distribution checks in
/// the property test suites (e.g. verifying the joint Laplace sampler).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t size() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double Variance() const {
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return s / static_cast<double>(samples_.size() - 1);
  }

  /// Returns the q-quantile (0 <= q <= 1) via nearest-rank on sorted samples.
  double Quantile(double q) {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  /// Empirical CDF at x: fraction of samples <= x.
  double Cdf(double x) {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Kolmogorov-Smirnov distance between a SampleSet and a reference CDF.
/// `cdf` must be a monotone function mapping double -> [0,1].
template <typename Cdf>
double KsDistance(SampleSet& samples, Cdf cdf) {
  double worst = 0.0;
  const size_t n = samples.size();
  if (n == 0) return 0.0;
  std::vector<double> sorted = samples.samples();
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < n; ++i) {
    const double expected = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    worst = std::max(worst, std::max(std::abs(expected - lo),
                                     std::abs(expected - hi)));
  }
  return worst;
}

}  // namespace incshrink
