#include "src/common/rng.h"

#include <cmath>
#include <cstring>

namespace incshrink {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  return (static_cast<double>(Next64() >> 11) + 0.5) * 0x1.0p-53;
}

double Rng::Exponential(double mean) { return -mean * std::log(NextDoubleOpen()); }

double Rng::Laplace(double scale) {
  const double magnitude = Exponential(scale);
  return (Next64() & 1) ? magnitude : -magnitude;
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = Normal(mean, std::sqrt(mean));
  return sample <= 0 ? 0 : static_cast<uint64_t>(sample + 0.5);
}

RngState Rng::ExportState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  std::memcpy(&state.cached_normal_bits, &cached_normal_,
              sizeof(state.cached_normal_bits));
  state.have_cached_normal = have_cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  std::memcpy(&cached_normal_, &state.cached_normal_bits,
              sizeof(cached_normal_));
  have_cached_normal_ = state.have_cached_normal;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDoubleOpen();
  double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

}  // namespace incshrink
