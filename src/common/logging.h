#pragma once

#include <cstdio>
#include <cstdlib>

namespace incshrink {

/// Minimal check macros in the style of glog/Arrow's DCHECK family. These
/// guard internal invariants (programming errors), never expected runtime
/// failures — those return Status.
#define INCSHRINK_CHECK(cond)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#define INCSHRINK_CHECK_EQ(a, b) INCSHRINK_CHECK((a) == (b))
#define INCSHRINK_CHECK_LE(a, b) INCSHRINK_CHECK((a) <= (b))
#define INCSHRINK_CHECK_LT(a, b) INCSHRINK_CHECK((a) < (b))
#define INCSHRINK_CHECK_GE(a, b) INCSHRINK_CHECK((a) >= (b))
#define INCSHRINK_CHECK_GT(a, b) INCSHRINK_CHECK((a) > (b))

}  // namespace incshrink
