#pragma once

#include <cstdint>

namespace incshrink {

/// \brief Fixed-point helpers used by the joint noise generator.
///
/// sDPTimer/sDPANT (paper Alg. 2 lines 4-6) convert a jointly computed random
/// ring element z = z0 XOR z1 in Z_2^32 into a fixed-point seed r in (0, 1)
/// and take the most significant bit of z as the Laplace sign. These helpers
/// implement exactly that conversion.

/// Converts the low 31 bits of `z` to a fixed-point value strictly inside
/// (0, 1): r = (low31(z) + 0.5) / 2^31. Never returns 0 or 1, so ln(r) is
/// finite — required by the inverse-CDF Laplace sampler.
double FixedPointOpenUnit(uint32_t z);

/// Returns +1.0 if the most significant bit of `z` is set, else -1.0.
/// Used as the Laplace sign bit (paper: sign(msb(z))).
double SignFromMsb(uint32_t z);

/// Converts a double in [0, 2^32) to the nearest ring element (saturating).
uint32_t SaturatingToRing(double x);

}  // namespace incshrink
