#pragma once

#include <string>
#include <utility>

namespace incshrink {

/// \brief Error categories used across the library.
///
/// Mirrors the RocksDB/Arrow convention of returning rich status objects
/// instead of throwing exceptions on expected failure paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kPrivacyBudgetExhausted,
};

/// \brief Lightweight status object carrying a code and a message.
///
/// All fallible public APIs in this library return `Status` (or `Result<T>`)
/// rather than throwing. Construction of an OK status is allocation-free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status PrivacyBudgetExhausted(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad omega".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

}  // namespace incshrink

/// Propagates a non-OK status to the caller, RocksDB-style.
#define INCSHRINK_RETURN_NOT_OK(expr)             \
  do {                                            \
    ::incshrink::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)
