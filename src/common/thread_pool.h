#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace incshrink {

/// Resolves the worker count used by parallel execution: `requested` when
/// positive, else the `INCSHRINK_THREADS` environment override, else the
/// hardware concurrency. This is the *only* place in the repository allowed
/// to consult the machine's core count (tools/check_no_hidden_entropy.sh
/// enforces this statically): the resolved value may steer scheduling but
/// must never reach a simulated result, so experiments stay reproducible on
/// any machine.
int ResolveThreadCount(int requested = 0);

/// \brief Deterministic fork-join thread pool (no work stealing).
///
/// The pool exists to run *independent* tasks — per-seed engines, per-tenant
/// deployments — whose outputs land in caller-preallocated, index-addressed
/// slots. Iterations are claimed from a shared atomic counter, so the
/// task -> index mapping is stable (iteration i always computes slot i) even
/// though the iteration -> worker assignment is not; since tasks share no
/// mutable state and the caller merges slots in index order, the merged
/// output is bit-identical for every worker count.
class ThreadPool {
 public:
  /// Spawns `ResolveThreadCount(num_threads) - 1` workers; the caller's
  /// thread participates in every ParallelFor, so a 1-thread pool runs
  /// everything inline with no synchronization.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) across the workers and blocks until
  /// all iterations completed. `body` must not touch shared mutable state
  /// beyond its own slot i, and must not call back into this pool (no
  /// nesting). The first exception thrown by any iteration is rethrown on
  /// the calling thread after the join.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();
  void RunSlice();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;      ///< bumped once per ParallelFor
  bool shutdown_ = false;
  size_t workers_active_ = 0;    ///< workers still inside the current job

  const std::function<void(size_t)>* body_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};  ///< next unclaimed iteration index
  std::exception_ptr first_error_;
};

/// One-shot convenience: builds a pool of `num_threads` workers, runs the
/// loop, tears the pool down. Prefer a long-lived ThreadPool for repeated
/// fork-joins (the fleet holds one).
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace incshrink
