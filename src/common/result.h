#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace incshrink {

/// \brief A value-or-status holder, analogous to arrow::Result / StatusOr.
///
/// A `Result<T>` either holds a value of type `T` or a non-OK `Status`
/// explaining why the value is absent. Accessing the value of an errored
/// result is a programming error (checked with assert in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a result holding a value (implicit to allow `return value;`).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a result holding an error status. `status.ok()` must be false.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the contained status; OK if a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace incshrink

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define INCSHRINK_ASSIGN_OR_RETURN(lhs, expr)             \
  auto INCSHRINK_CONCAT_(result_, __LINE__) = (expr);     \
  if (!INCSHRINK_CONCAT_(result_, __LINE__).ok())         \
    return INCSHRINK_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(INCSHRINK_CONCAT_(result_, __LINE__)).value()

#define INCSHRINK_CONCAT_IMPL_(a, b) a##b
#define INCSHRINK_CONCAT_(a, b) INCSHRINK_CONCAT_IMPL_(a, b)
