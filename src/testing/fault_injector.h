#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/owner_client.h"
#include "src/relational/growing_table.h"

namespace incshrink {

/// \brief Deterministic fault injection for the crash-recovery suite.
///
/// Every fault — where a process dies, where a write tears, which bit a
/// disk flips, how long a socket stays dark — is drawn from one seeded Rng,
/// so a failing fault schedule is reproducible from its seed alone. The
/// injector only *plans and corrupts*; it never touches live engine state
/// (crashes are simulated by dropping the live object and restoring a
/// snapshot into a fresh one, exactly what a real restart does).
enum class FaultKind : uint8_t {
  kKillAtStep,  ///< process dies after completing engine step `step`
  kTornWrite,   ///< snapshot persisted as a strict prefix of `param` bytes
  kBitFlip,     ///< bit `param` of the persisted snapshot flips
  kSocketDrop,  ///< owner link drops; reconnect after `param` poll rounds
};

struct FaultEvent {
  FaultKind kind = FaultKind::kKillAtStep;
  /// kKillAtStep: the 1-based engine step to die after. Others: unused.
  uint64_t step = 0;
  /// kTornWrite: surviving prefix length. kBitFlip: absolute bit index.
  /// kSocketDrop: outage length in poll rounds.
  uint64_t param = 0;
};

/// A reproducible schedule of faults: the seed it was drawn from plus the
/// ordered events. Tests log the seed on failure so any schedule replays.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }

  /// A uniform kill step in [1, horizon] (horizon >= 1).
  uint64_t PickStep(uint64_t horizon);

  /// A strict prefix of `blob` ending at `len` (< blob.size()).
  static std::vector<uint8_t> TruncateAt(const std::vector<uint8_t>& blob,
                                         size_t len);
  /// A torn write: a uniformly chosen strict prefix (possibly empty).
  std::vector<uint8_t> TornWrite(const std::vector<uint8_t>& blob);

  /// `blob` with absolute bit `bit_index` flipped.
  static std::vector<uint8_t> FlipBit(const std::vector<uint8_t>& blob,
                                      uint64_t bit_index);
  /// `blob` with one uniformly chosen bit flipped.
  std::vector<uint8_t> FlipRandomBit(const std::vector<uint8_t>& blob);

  /// Draws a fault schedule: `kills` kill events over [1, horizon] plus
  /// `corruptions` torn-write/bit-flip events (parameters resolved against
  /// `snapshot_bytes`) plus `drops` socket outages of at most
  /// `max_drop_rounds` rounds. Event order is the draw order — fixed by
  /// the seed.
  FaultPlan MakePlan(uint64_t horizon, size_t kills, size_t corruptions,
                     uint64_t snapshot_bytes, size_t drops,
                     uint64_t max_drop_rounds);

 private:
  uint64_t seed_;
  Rng rng_;
};

/// Crash-restart harness: runs a SynchronousDeployment over the aligned
/// arrival streams, "killing the process" right after engine step
/// `kill_step` — the snapshot taken there is the only thing that survives —
/// then restores it into a freshly constructed deployment and finishes the
/// remaining steps there. Returns the restored deployment so the caller can
/// compare its summaries/transcripts/goldens against an uninterrupted run
/// (they must be bit-identical; tests/checkpoint_restore_test.cc pins
/// this for every DP strategy at 1/2/8 threads).
Result<std::unique_ptr<SynchronousDeployment>> RunWithCrashAtStep(
    const IncShrinkConfig& config,
    const std::vector<std::vector<LogicalRecord>>& arrivals1,
    const std::vector<std::vector<LogicalRecord>>& arrivals2,
    uint64_t kill_step);

}  // namespace incshrink
