#include "src/testing/fault_injector.h"

#include "src/common/logging.h"

namespace incshrink {

uint64_t FaultInjector::PickStep(uint64_t horizon) {
  INCSHRINK_CHECK_GE(horizon, 1u);
  return 1 + rng_.Uniform(horizon);
}

std::vector<uint8_t> FaultInjector::TruncateAt(
    const std::vector<uint8_t>& blob, size_t len) {
  INCSHRINK_CHECK(len < blob.size());
  return {blob.begin(), blob.begin() + static_cast<ptrdiff_t>(len)};
}

std::vector<uint8_t> FaultInjector::TornWrite(
    const std::vector<uint8_t>& blob) {
  INCSHRINK_CHECK(!blob.empty());
  return TruncateAt(blob, rng_.Uniform(blob.size()));
}

std::vector<uint8_t> FaultInjector::FlipBit(const std::vector<uint8_t>& blob,
                                            uint64_t bit_index) {
  INCSHRINK_CHECK(bit_index < blob.size() * 8);
  std::vector<uint8_t> out = blob;
  out[bit_index / 8] ^= static_cast<uint8_t>(1u << (bit_index % 8));
  return out;
}

std::vector<uint8_t> FaultInjector::FlipRandomBit(
    const std::vector<uint8_t>& blob) {
  INCSHRINK_CHECK(!blob.empty());
  return FlipBit(blob, rng_.Uniform(blob.size() * 8));
}

FaultPlan FaultInjector::MakePlan(uint64_t horizon, size_t kills,
                                  size_t corruptions, uint64_t snapshot_bytes,
                                  size_t drops, uint64_t max_drop_rounds) {
  FaultPlan plan;
  plan.seed = seed_;
  for (size_t i = 0; i < kills; ++i) {
    plan.events.push_back(
        {FaultKind::kKillAtStep, PickStep(horizon), /*param=*/0});
  }
  for (size_t i = 0; i < corruptions; ++i) {
    // Alternate deterministically between tears and flips so every plan
    // exercises both corruption classes.
    if (i % 2 == 0) {
      plan.events.push_back({FaultKind::kTornWrite, /*step=*/0,
                             rng_.Uniform(snapshot_bytes)});
    } else {
      plan.events.push_back({FaultKind::kBitFlip, /*step=*/0,
                             rng_.Uniform(snapshot_bytes * 8)});
    }
  }
  for (size_t i = 0; i < drops; ++i) {
    plan.events.push_back({FaultKind::kSocketDrop, /*step=*/0,
                           1 + rng_.Uniform(max_drop_rounds)});
  }
  return plan;
}

Result<std::unique_ptr<SynchronousDeployment>> RunWithCrashAtStep(
    const IncShrinkConfig& config,
    const std::vector<std::vector<LogicalRecord>>& arrivals1,
    const std::vector<std::vector<LogicalRecord>>& arrivals2,
    uint64_t kill_step) {
  INCSHRINK_CHECK_EQ(arrivals1.size(), arrivals2.size());
  INCSHRINK_CHECK(kill_step >= 1 && kill_step <= arrivals1.size());

  // Phase 1: the doomed process. Only `snapshot` survives past the kill.
  std::vector<uint8_t> snapshot;
  {
    SynchronousDeployment doomed(config);
    for (uint64_t t = 0; t < kill_step; ++t) {
      INCSHRINK_RETURN_NOT_OK(doomed.Step(arrivals1[t], arrivals2[t]));
    }
    INCSHRINK_ASSIGN_OR_RETURN(snapshot, doomed.SaveCheckpoint());
  }  // crash: the deployment and all its in-memory state die here

  // Phase 2: the restarted process — a cold deployment restored from the
  // snapshot, finishing the stream.
  auto restored = std::make_unique<SynchronousDeployment>(config);
  INCSHRINK_RETURN_NOT_OK(restored->RestoreCheckpoint(snapshot));
  for (uint64_t t = kill_step; t < arrivals1.size(); ++t) {
    INCSHRINK_RETURN_NOT_OK(restored->Step(arrivals1[t], arrivals2[t]));
  }
  return restored;
}

}  // namespace incshrink
