#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/mpc/cost_model.h"
#include "src/relational/growing_table.h"
#include "src/secret/share.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief ICKP v1: the versioned, bounds-checked snapshot container.
///
/// Every resumable object in the system (engines, owner clients, fleet
/// tenants) serializes into this format. It carries the same hardening
/// discipline as the IUF upload-frame codec: a magic + version header, a flat
/// sequence of tagged length-prefixed sections, reads that can never step
/// outside their section, allocation guards that compare every element count
/// against the bytes actually remaining before reserving, and a trailing
/// FNV-1a64 checksum over everything that precedes it. A torn write (any
/// strict prefix), a bit flip anywhere, or a hostile dimension header is
/// rejected with a Status — the decoder never loads a partial state and never
/// exhibits UB.
///
/// Layout (little-endian):
///   magic "ICKP" | u8 version (1) |
///   sections: (u32 tag | u64 len | len payload bytes)* |
///   u64 fnv1a64 over all preceding bytes
///
/// Leakage contract: a snapshot may contain only public state — logical
/// clocks, ledgers, RNG cursors (functions of public seeds), and share
/// arrays. Share arrays are serialized exclusively through the ISR1
/// share-blob path (WriteSharedRows), which keeps the two servers' halves in
/// separable contiguous sections; each half alone is a uniformly random word
/// stream. The oblivious-leakage linter treats every CheckpointWriter field
/// write as a sink (tools/lint/secret_api.toml), so recovered secrets cannot
/// silently reach a snapshot.

/// FNV-1a 64-bit over `size` bytes, continuing from `h` (pass the offset
/// basis for a fresh hash). Each absorbed byte applies a bijection to the
/// hash state, so any single-byte corruption is detected deterministically.
inline constexpr uint64_t kFnvOffsetBasis64 = 0xCBF29CE484222325ull;
inline constexpr uint64_t kFnvPrime64 = 0x100000001B3ull;
uint64_t Fnv1a64(const uint8_t* data, size_t size,
                 uint64_t h = kFnvOffsetBasis64);

/// Builds a section tag from four printable characters.
constexpr uint32_t CheckpointTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         (static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24);
}

/// \brief Appends typed fields into an ICKP v1 byte stream.
///
/// Usage: BeginSection(tag) ... field writes ... EndSection(), repeated, then
/// Finish() stamps the checksum and yields the blob. Sections may nest; the
/// writer back-patches each section's length when it closes.
class CheckpointWriter {
 public:
  CheckpointWriter();

  void BeginSection(uint32_t tag);
  void EndSection();

  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// Doubles travel as raw IEEE-754 bit patterns so restore is bit-exact.
  void F64(double v);
  /// Length-prefixed opaque byte string.
  void Bytes(const std::vector<uint8_t>& bytes);

  /// Composite helpers, paired with the CheckpointReader equivalents.
  void WriteRng(const RngState& state);
  void WriteStats(const CircuitStats& stats);
  void WriteWordShares(const WordShares& shares);
  /// Plaintext evaluation-only record (owner queues, ground-truth indexes).
  void WriteRecord(const LogicalRecord& rec);
  /// Secret-shared tables go through the ISR1 share-blob path only: two
  /// length-prefixed per-server blobs, halves never interleaved.
  void WriteSharedRows(const SharedRows& rows);

  /// Closes the container: all sections must be ended. Returns the final
  /// blob (header + sections + checksum) and leaves the writer empty.
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> buf_;
  std::vector<size_t> open_sections_;  // offsets of length fields to patch
};

/// \brief Bounds-checked reader over an ICKP v1 byte stream.
///
/// Open() validates magic, version, minimum size and the checksum trailer up
/// front, so by the time field reads happen the bytes are known to be exactly
/// what some writer produced (or an adversarial forgery, which the structural
/// checks below still contain). Field accessors follow the FrameReader
/// ok-flag idiom: a read that would cross the current section boundary (or
/// the end of the body) flips `ok()` and returns a zero value instead of
/// over-reading. Callers check `ExpectOk()` at section granularity and
/// `Finish()` at the end, which also demands every byte was consumed.
///
/// The reader borrows the byte buffer; it must outlive the reader.
class CheckpointReader {
 public:
  /// Validates the container framing. Returns InvalidArgument on any
  /// truncation, bad magic, unknown version, or checksum mismatch.
  static Result<CheckpointReader> Open(const std::vector<uint8_t>& bytes);

  /// Enters the next section, which must carry `tag`; flips ok() otherwise.
  void BeginSection(uint32_t tag);
  /// Leaves the current section; flips ok() if bytes remain unread in it.
  void EndSection();

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  double F64();
  /// Length-prefixed byte string. The length is checked against the bytes
  /// actually remaining in scope before any allocation happens, so a hostile
  /// length cannot trigger an allocation bomb.
  std::vector<uint8_t> Bytes();

  RngState ReadRng();
  CircuitStats ReadStats();
  WordShares ReadWordShares();
  LogicalRecord ReadRecord();
  Result<SharedRows> ReadSharedRows();

  bool ok() const { return ok_; }
  /// InvalidArgument naming `what` if any prior read failed, OK otherwise.
  Status ExpectOk(const char* what) const;
  /// Terminal check: ok, no open sections, every body byte consumed.
  Status Finish() const;

 private:
  CheckpointReader(const uint8_t* data, size_t body_end)
      : data_(data), pos_(kHeaderSize), body_end_(body_end) {}

  static constexpr size_t kHeaderSize = 5;   // "ICKP" + version byte
  static constexpr size_t kTrailerSize = 8;  // fnv1a64

  size_t Limit() const { return ends_.empty() ? body_end_ : ends_.back(); }
  bool Take(size_t n) {
    if (!ok_ || n > Limit() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_ = nullptr;
  size_t pos_ = 0;
  size_t body_end_ = 0;
  std::vector<size_t> ends_;  // enclosing section end offsets
  bool ok_ = true;
};

}  // namespace incshrink
