#include "src/storage/serialization.h"

#include <cstring>

namespace incshrink {

namespace {

constexpr char kMagic[4] = {'I', 'S', 'R', '1'};

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<uint8_t> SerializeShares(const SharedRows& rows, int server) {
  std::vector<uint8_t> out;
  out.reserve(20 + rows.size() * rows.width() * 4);
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, rows.width());
  AppendU64(&out, rows.size());
  const std::vector<Word>& words =
      server == 0 ? rows.shares0() : rows.shares1();
  for (Word w : words) AppendU32(&out, w);
  return out;
}

Result<ShareBlob> ParseShareBlob(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 20) return Status::InvalidArgument("blob too short");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic");
  }
  ShareBlob blob;
  blob.width = ReadU64(bytes.data() + 4);
  blob.rows = ReadU64(bytes.data() + 12);
  const uint64_t expected_words = blob.width * blob.rows;
  if (bytes.size() != 20 + expected_words * 4) {
    return Status::InvalidArgument("blob size does not match dimensions");
  }
  blob.words.reserve(expected_words);
  for (uint64_t i = 0; i < expected_words; ++i) {
    blob.words.push_back(ReadU32(bytes.data() + 20 + i * 4));
  }
  return blob;
}

Result<SharedRows> CombineShareBlobs(const std::vector<uint8_t>& server0,
                                     const std::vector<uint8_t>& server1) {
  INCSHRINK_ASSIGN_OR_RETURN(const ShareBlob b0, ParseShareBlob(server0));
  INCSHRINK_ASSIGN_OR_RETURN(const ShareBlob b1, ParseShareBlob(server1));
  if (b0.width != b1.width || b0.rows != b1.rows) {
    return Status::InvalidArgument("share blobs disagree on dimensions");
  }
  SharedRows rows(b0.width);
  std::vector<Word> row0(b0.width), row1(b0.width);
  for (uint64_t r = 0; r < b0.rows; ++r) {
    for (uint64_t c = 0; c < b0.width; ++c) {
      row0[c] = b0.words[r * b0.width + c];
      row1[c] = b1.words[r * b0.width + c];
    }
    rows.AppendSharedRow(row0, row1);
  }
  return rows;
}

}  // namespace incshrink
