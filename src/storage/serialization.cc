#include "src/storage/serialization.h"

#include <cstring>

#include "src/common/logging.h"

namespace incshrink {

namespace {

constexpr char kMagic[4] = {'I', 'S', 'R', '1'};

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<uint8_t> SerializeShares(const SharedRows& rows, int server) {
  // Only servers 0 and 1 exist; silently mapping any other value onto
  // server 1's shares would hand a caller the wrong half of the secret.
  INCSHRINK_CHECK(server == 0 || server == 1);
  std::vector<uint8_t> out;
  out.reserve(20 + rows.size() * rows.width() * 4);
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, rows.width());
  AppendU64(&out, rows.size());
  const std::vector<Word>& words =
      server == 0 ? rows.shares0() : rows.shares1();
  for (Word w : words) AppendU32(&out, w);
  return out;
}

Result<ShareBlob> ParseShareBlob(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 20) return Status::InvalidArgument("blob too short");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic");
  }
  ShareBlob blob;
  blob.width = ReadU64(bytes.data() + 4);
  blob.rows = ReadU64(bytes.data() + 12);
  // Hostile dimension headers must be rejected with overflow-guarded
  // arithmetic (mirrors DecodeUploadFrame): width = rows = 2^32 wraps
  // width*rows to 0, and width = 1, rows = 2^62 wraps the byte count to 0 —
  // either would slip a blob claiming astronomic dimensions past an
  // unguarded exact-size check and send CombineShareBlobs indexing out of
  // bounds. A zero width must not smuggle a nonzero row count through the
  // words == 0 case for the same reason.
  if (blob.width == 0 && blob.rows != 0) {
    return Status::InvalidArgument("blob dimensions invalid");
  }
  const uint64_t expected_words = blob.width * blob.rows;
  if (blob.width != 0 && expected_words / blob.width != blob.rows) {
    return Status::InvalidArgument("blob dimensions overflow");
  }
  const uint64_t payload_bytes = bytes.size() - 20;
  if (expected_words > payload_bytes / 4 ||
      payload_bytes != expected_words * 4) {
    return Status::InvalidArgument("blob size does not match dimensions");
  }
  blob.words.reserve(expected_words);
  for (uint64_t i = 0; i < expected_words; ++i) {
    blob.words.push_back(ReadU32(bytes.data() + 20 + i * 4));
  }
  return blob;
}

namespace {

constexpr char kFrameMagic[3] = {'I', 'U', 'F'};
constexpr uint8_t kFrameVersion = 1;

/// Bounds-checked little-endian reader over a frame buffer. Every accessor
/// flips `ok` to false instead of reading past the end, so truncated frames
/// fail cleanly.
struct FrameReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint64_t U64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    const uint64_t v = ReadU64(data + pos);
    pos += 8;
    return v;
  }
  uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    const uint32_t v = ReadU32(data + pos);
    pos += 4;
    return v;
  }
};

}  // namespace

std::vector<uint8_t> EncodeUploadFrame(const UploadFrame& frame) {
  const SharedRows& batch = frame.batch;
  std::vector<uint8_t> out;
  out.reserve(36 + batch.size() * batch.width() * 8 + frame.arrivals.size() * 24);
  for (char c : kFrameMagic) out.push_back(static_cast<uint8_t>(c));
  out.push_back(kFrameVersion);
  AppendU64(&out, frame.owner_step);
  AppendU64(&out, batch.width());
  AppendU64(&out, batch.size());
  for (Word w : batch.shares0()) AppendU32(&out, w);
  for (Word w : batch.shares1()) AppendU32(&out, w);
  AppendU64(&out, frame.arrivals.size());
  for (const LogicalRecord& rec : frame.arrivals) {
    AppendU64(&out, rec.step);
    AppendU32(&out, rec.rid);
    AppendU32(&out, rec.key);
    AppendU32(&out, rec.date);
    AppendU32(&out, rec.payload);
  }
  return out;
}

Result<UploadFrame> DecodeUploadFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) return Status::InvalidArgument("frame too short");
  if (std::memcmp(bytes.data(), kFrameMagic, 3) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (bytes[3] != kFrameVersion) {
    return Status::InvalidArgument("unsupported frame version");
  }
  FrameReader r{bytes.data(), bytes.size(), 4};
  UploadFrame frame;
  frame.owner_step = r.U64();
  const uint64_t width = r.U64();
  const uint64_t rows = r.U64();
  if (!r.ok) return Status::InvalidArgument("truncated frame header");
  // Reject dimensions whose payload cannot possibly fit in the buffer
  // before allocating anything (a hostile header must not OOM the server,
  // and a zero-width header must not smuggle an unbounded row count past
  // the payload-fit check below).
  if (width == 0 && rows != 0) {
    return Status::InvalidArgument("frame dimensions invalid");
  }
  const uint64_t words = width * rows;
  if (width != 0 && words / width != rows) {
    return Status::InvalidArgument("frame dimensions overflow");
  }
  if (words > (r.size - r.pos) / 8) {
    return Status::InvalidArgument("truncated frame share section");
  }
  frame.batch = SharedRows(static_cast<size_t>(width));
  // Zero-row frames skip the scratch buffers entirely: a hostile header can
  // pair rows = 0 with an astronomic width (words = 0 sails through every
  // payload-fit check above), and width-sized allocations would turn that
  // 28-byte frame into a multi-gigabyte allocation.
  if (rows > 0) {
    std::vector<Word> share0(words), share1(words);
    for (uint64_t i = 0; i < words; ++i) share0[i] = r.U32();
    for (uint64_t i = 0; i < words; ++i) share1[i] = r.U32();
    std::vector<Word> row0(width), row1(width);
    for (uint64_t row = 0; row < rows; ++row) {
      for (uint64_t c = 0; c < width; ++c) {
        row0[c] = share0[row * width + c];
        row1[c] = share1[row * width + c];
      }
      frame.batch.AppendSharedRow(row0, row1);
    }
  }
  const uint64_t num_arrivals = r.U64();
  if (!r.ok || num_arrivals > (r.size - r.pos) / 24) {
    return Status::InvalidArgument("truncated frame arrival section");
  }
  frame.arrivals.reserve(static_cast<size_t>(num_arrivals));
  for (uint64_t i = 0; i < num_arrivals; ++i) {
    LogicalRecord rec;
    rec.step = r.U64();
    rec.rid = r.U32();
    rec.key = r.U32();
    rec.date = r.U32();
    rec.payload = r.U32();
    frame.arrivals.push_back(rec);
  }
  if (!r.ok) return Status::InvalidArgument("truncated frame");
  if (r.pos != r.size) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return frame;
}

Result<SharedRows> CombineShareBlobs(const std::vector<uint8_t>& server0,
                                     const std::vector<uint8_t>& server1) {
  INCSHRINK_ASSIGN_OR_RETURN(const ShareBlob b0, ParseShareBlob(server0));
  INCSHRINK_ASSIGN_OR_RETURN(const ShareBlob b1, ParseShareBlob(server1));
  if (b0.width != b1.width || b0.rows != b1.rows) {
    return Status::InvalidArgument("share blobs disagree on dimensions");
  }
  SharedRows rows(b0.width);
  // Same zero-row hazard as DecodeUploadFrame: a blob claiming rows = 0 with
  // an astronomic width parses fine (it has no payload to contradict it), so
  // the width-sized scratch rows must not be allocated for it.
  if (b0.rows > 0) {
    std::vector<Word> row0(b0.width), row1(b0.width);
    for (uint64_t r = 0; r < b0.rows; ++r) {
      for (uint64_t c = 0; c < b0.width; ++c) {
        row0[c] = b0.words[r * b0.width + c];
        row1[c] = b1.words[r * b0.width + c];
      }
      rows.AppendSharedRow(row0, row1);
    }
  }
  return rows;
}

}  // namespace incshrink
