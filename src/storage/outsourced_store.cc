#include "src/storage/outsourced_store.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

uint64_t OutsourcedTable::AppendBatch(SharedRows batch) {
  INCSHRINK_CHECK_EQ(batch.width(), width_);
  total_rows_ += batch.size();
  batches_.push_back(std::move(batch));
  return batches_.size() - 1;
}

SharedRows OutsourcedTable::ConcatRange(uint64_t from, uint64_t to) const {
  SharedRows out(width_);
  if (batches_.empty()) return out;
  to = std::min<uint64_t>(to, batches_.size() - 1);
  for (uint64_t s = from; s <= to && s < batches_.size(); ++s) {
    out.AppendAll(batches_[s]);
  }
  return out;
}

SharedRows OutsourcedTable::ConcatAll() const {
  if (batches_.empty()) return SharedRows(width_);
  return ConcatRange(0, batches_.size() - 1);
}

Status OutsourcedTable::RestoreBatches(std::vector<SharedRows> batches) {
  uint64_t total = 0;
  for (const SharedRows& batch : batches) {
    if (batch.width() != width_) {
      return Status::InvalidArgument(
          "snapshot store batch width disagrees with the table width");
    }
    total += batch.size();
  }
  batches_ = std::move(batches);
  total_rows_ = total;
  return Status::OK();
}

}  // namespace incshrink
