#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Snapshot serialization for secret-shared tables.
///
/// Servers must be able to persist and restore their halves of the secure
/// objects (outsourced stores, cache, materialized view) across restarts.
/// Each server serializes *only its own share array*; the wire format is
/// deliberately share-local so a serialized blob from one server reveals
/// nothing (it is a uniformly random word stream plus public dimensions).
///
/// Format (little-endian):
///   magic "ISR1" | u64 width | u64 rows | width*rows u32 words

/// Serializes one server's share of `rows` (`server` is 0 or 1).
std::vector<uint8_t> SerializeShares(const SharedRows& rows, int server);

/// Parses a share blob; returns (width, rows, words).
struct ShareBlob {
  uint64_t width = 0;
  uint64_t rows = 0;
  std::vector<Word> words;
};
Result<ShareBlob> ParseShareBlob(const std::vector<uint8_t>& bytes);

/// Reassembles a SharedRows from the two servers' blobs. Fails unless both
/// blobs agree on dimensions.
Result<SharedRows> CombineShareBlobs(const std::vector<uint8_t>& server0,
                                     const std::vector<uint8_t>& server1);

}  // namespace incshrink
