#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/growing_table.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief Snapshot serialization for secret-shared tables.
///
/// Servers must be able to persist and restore their halves of the secure
/// objects (outsourced stores, cache, materialized view) across restarts.
/// Each server serializes *only its own share array*; the wire format is
/// deliberately share-local so a serialized blob from one server reveals
/// nothing (it is a uniformly random word stream plus public dimensions).
///
/// Format (little-endian):
///   magic "ISR1" | u64 width | u64 rows | width*rows u32 words

/// Serializes one server's share of `rows` (`server` is 0 or 1).
std::vector<uint8_t> SerializeShares(const SharedRows& rows, int server);

/// Parses a share blob; returns (width, rows, words).
struct ShareBlob {
  uint64_t width = 0;
  uint64_t rows = 0;
  std::vector<Word> words;
};
Result<ShareBlob> ParseShareBlob(const std::vector<uint8_t>& bytes);

/// Reassembles a SharedRows from the two servers' blobs. Fails unless both
/// blobs agree on dimensions.
Result<SharedRows> CombineShareBlobs(const std::vector<uint8_t>& server0,
                                     const std::vector<uint8_t>& server1);

// --- Owner upload frames (transport wire format) ---------------------------

/// \brief One owner upload step on the wire: the secret-shared batch plus
/// transport metadata, as carried by an UploadChannel (src/net/).
///
/// The in-process transport bundles both servers' share halves into one
/// frame (a real network deployment would split them onto two sockets; the
/// framing below keeps the halves in separable contiguous sections for
/// exactly that reason). The `arrivals` section is evaluation-only ground
/// truth — the plaintext records contained in the batch, used by the engine
/// to maintain q_t(D_t) for error metrics. Servers in a real deployment
/// would never receive it; it rides the frame so the simulated pipeline
/// stays a single stream.
///
/// Wire format v1 (little-endian):
///   magic "IUF" | u8 version (1) | u64 owner_step | u64 width | u64 rows |
///   rows*width u32 share0 words | rows*width u32 share1 words |
///   u64 num_arrivals | per arrival: u64 step, u32 rid, key, date, payload
///
/// The version byte gates future evolution (compression, MACs, per-server
/// split frames) without breaking decoders.
struct UploadFrame {
  uint64_t owner_step = 0;      ///< owner logical clock at emission
  SharedRows batch{0};          ///< secret-shared, dummy-padded upload batch
  std::vector<LogicalRecord> arrivals;  ///< eval-only: this step's plaintext
};

/// Serializes a frame into its wire bytes.
std::vector<uint8_t> EncodeUploadFrame(const UploadFrame& frame);

/// Parses wire bytes back into a frame. Any truncation, bad magic, unknown
/// version or dimension mismatch returns an InvalidArgument Status — never
/// crashes — so a malformed peer cannot take the server down.
Result<UploadFrame> DecodeUploadFrame(const std::vector<uint8_t>& bytes);

}  // namespace incshrink
