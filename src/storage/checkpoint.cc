#include "src/storage/checkpoint.h"

#include <cassert>
#include <cstring>

#include "src/storage/serialization.h"

namespace incshrink {

namespace {

constexpr uint8_t kVersion = 1;
constexpr char kMagic[4] = {'I', 'C', 'K', 'P'};

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime64;
  }
  return h;
}

// --- CheckpointWriter -------------------------------------------------------

CheckpointWriter::CheckpointWriter() {
  buf_.assign(kMagic, kMagic + 4);
  buf_.push_back(kVersion);
}

void CheckpointWriter::BeginSection(uint32_t tag) {
  AppendU32(&buf_, tag);
  open_sections_.push_back(buf_.size());
  AppendU64(&buf_, 0);  // patched by EndSection
}

void CheckpointWriter::EndSection() {
  assert(!open_sections_.empty() && "EndSection without BeginSection");
  const size_t len_at = open_sections_.back();
  open_sections_.pop_back();
  const uint64_t len = buf_.size() - (len_at + 8);
  for (int i = 0; i < 8; ++i) buf_[len_at + i] = (len >> (8 * i)) & 0xFF;
}

void CheckpointWriter::U8(uint8_t v) { buf_.push_back(v); }
void CheckpointWriter::U32(uint32_t v) { AppendU32(&buf_, v); }
void CheckpointWriter::U64(uint64_t v) { AppendU64(&buf_, v); }

void CheckpointWriter::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(&buf_, bits);
}

void CheckpointWriter::Bytes(const std::vector<uint8_t>& bytes) {
  AppendU64(&buf_, bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void CheckpointWriter::WriteRng(const RngState& state) {
  for (uint64_t word : state.s) AppendU64(&buf_, word);
  AppendU64(&buf_, state.cached_normal_bits);
  U8(state.have_cached_normal ? 1 : 0);
}

void CheckpointWriter::WriteStats(const CircuitStats& stats) {
  AppendU64(&buf_, stats.and_gates);
  AppendU64(&buf_, stats.xor_gates);
  AppendU64(&buf_, stats.bytes);
  AppendU64(&buf_, stats.rounds);
}

void CheckpointWriter::WriteWordShares(const WordShares& shares) {
  AppendU32(&buf_, shares.s0);
  AppendU32(&buf_, shares.s1);
}

void CheckpointWriter::WriteRecord(const LogicalRecord& rec) {
  AppendU64(&buf_, rec.step);
  AppendU32(&buf_, rec.rid);
  AppendU32(&buf_, rec.key);
  AppendU32(&buf_, rec.date);
  AppendU32(&buf_, rec.payload);
}

void CheckpointWriter::WriteSharedRows(const SharedRows& rows) {
  Bytes(SerializeShares(rows, 0));
  Bytes(SerializeShares(rows, 1));
}

std::vector<uint8_t> CheckpointWriter::Finish() {
  assert(open_sections_.empty() && "Finish with open sections");
  const uint64_t checksum = Fnv1a64(buf_.data(), buf_.size());
  AppendU64(&buf_, checksum);
  std::vector<uint8_t> out;
  out.swap(buf_);
  return out;
}

// --- CheckpointReader -------------------------------------------------------

Result<CheckpointReader> CheckpointReader::Open(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return Status::InvalidArgument(
        "snapshot too short to hold an ICKP header and checksum");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad snapshot magic (want \"ICKP\")");
  }
  if (bytes[4] != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  const size_t body_end = bytes.size() - kTrailerSize;
  const uint64_t want = Fnv1a64(bytes.data(), body_end);
  const uint64_t got = LoadU64(bytes.data() + body_end);
  if (want != got) {
    return Status::InvalidArgument(
        "snapshot checksum mismatch (torn write or corruption)");
  }
  return CheckpointReader(bytes.data(), body_end);
}

void CheckpointReader::BeginSection(uint32_t tag) {
  const uint32_t got = U32();
  const uint64_t len = U64();
  if (!ok_) return;
  if (got != tag || len > Limit() - pos_) {
    ok_ = false;
    return;
  }
  ends_.push_back(pos_ + static_cast<size_t>(len));
}

void CheckpointReader::EndSection() {
  if (!ok_) return;
  if (ends_.empty() || pos_ != ends_.back()) {
    // Unread trailing bytes inside a section mean the blob was not produced
    // by this decoder's writer; reject rather than silently skipping.
    ok_ = false;
    return;
  }
  ends_.pop_back();
}

uint8_t CheckpointReader::U8() {
  if (!Take(1)) return 0;
  return data_[pos_++];
}

uint32_t CheckpointReader::U32() {
  if (!Take(4)) return 0;
  const uint32_t v = LoadU32(data_ + pos_);
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::U64() {
  if (!Take(8)) return 0;
  const uint64_t v = LoadU64(data_ + pos_);
  pos_ += 8;
  return v;
}

double CheckpointReader::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<uint8_t> CheckpointReader::Bytes() {
  const uint64_t len = U64();
  // The length is bounded by the bytes actually present in scope before any
  // allocation, so a hostile header cannot request an astronomic buffer.
  if (!ok_ || len > Limit() - pos_) {
    ok_ = false;
    return {};
  }
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += static_cast<size_t>(len);
  return out;
}

RngState CheckpointReader::ReadRng() {
  RngState state;
  for (uint64_t& word : state.s) word = U64();
  state.cached_normal_bits = U64();
  const uint8_t flag = U8();
  if (flag > 1) ok_ = false;  // canonical bool encoding only
  state.have_cached_normal = flag == 1;
  return state;
}

CircuitStats CheckpointReader::ReadStats() {
  CircuitStats stats;
  stats.and_gates = U64();
  stats.xor_gates = U64();
  stats.bytes = U64();
  stats.rounds = U64();
  return stats;
}

WordShares CheckpointReader::ReadWordShares() {
  WordShares shares;
  shares.s0 = U32();
  shares.s1 = U32();
  return shares;
}

LogicalRecord CheckpointReader::ReadRecord() {
  LogicalRecord rec;
  rec.step = U64();
  rec.rid = U32();
  rec.key = U32();
  rec.date = U32();
  rec.payload = U32();
  return rec;
}

Result<SharedRows> CheckpointReader::ReadSharedRows() {
  const std::vector<uint8_t> blob0 = Bytes();
  const std::vector<uint8_t> blob1 = Bytes();
  INCSHRINK_RETURN_NOT_OK(ExpectOk("snapshot share blobs"));
  // CombineShareBlobs re-validates dimensions, overflow and trailing bytes —
  // the same hardened path hostile upload frames go through.
  return CombineShareBlobs(blob0, blob1);
}

Status CheckpointReader::ExpectOk(const char* what) const {
  if (ok_) return Status::OK();
  return Status::InvalidArgument(std::string("malformed snapshot: ") + what);
}

Status CheckpointReader::Finish() const {
  if (!ok_) return Status::InvalidArgument("malformed snapshot");
  if (!ends_.empty()) {
    return Status::InvalidArgument("snapshot decoder left a section open");
  }
  if (pos_ != body_end_) {
    return Status::InvalidArgument("snapshot carries trailing bytes");
  }
  return Status::OK();
}

}  // namespace incshrink
