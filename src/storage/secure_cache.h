#pragma once

#include <cstdint>

#include "src/mpc/protocol.h"
#include "src/oblivious/formats.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief The secure outsourced cache sigma (paper Section 2.2).
///
/// An exhaustively padded, secret-shared array of view-format rows plus the
/// secret-shared cardinality counter c that Transform maintains and Shrink
/// consumes (Alg. 1 lines 1-2, 4-6). The cache's *row count* is public; the
/// split between real entries and dummies is not.
class SecureCache {
 public:
  explicit SecureCache(Protocol2PC* proto)
      : rows_(kViewWidth), counter_(proto->FreshShare(0)) {}

  SharedRows* rows() { return &rows_; }
  const SharedRows& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends Transform output (sigma <- sigma || DeltaV, Alg. 1 line 7).
  void Append(const SharedRows& delta) { rows_.AppendAll(delta); }

  /// The secret-shared cardinality counter [c].
  const WordShares& counter() const { return counter_; }

  /// Recovers c inside the protocol (Alg. 2 line 3 "recover c internally").
  uint32_t RecoverCounterInside(Protocol2PC* proto) const {
    return proto->RecoverInside(counter_);
  }

  /// c <- c + delta, re-shared with fresh randomness (Alg. 1 lines 4-6).
  void AddToCounter(Protocol2PC* proto, uint32_t delta) {
    const uint32_t c = proto->RecoverInside(counter_);
    proto->AccountAndGates(kWordBits);  // in-circuit addition
    counter_ = proto->FreshShare(c + delta);
  }

  /// Resets c = 0 and re-shares it (Alg. 2 line 9).
  void ResetCounter(Protocol2PC* proto) { counter_ = proto->FreshShare(0); }

  /// Monotone insertion sequence used to build FIFO cache sort keys.
  /// 64-bit end-to-end so long runs can never wrap the counter itself (see
  /// MakeCacheSortKey for the residual 32-bit key-cycle bound).
  uint64_t* seq() { return &seq_; }
  uint64_t seq_value() const { return seq_; }

  /// Checkpoint-restore path: overwrites the counter sharing and insertion
  /// sequence with snapshot values. Deliberately does NOT re-share — drawing
  /// fresh randomness here would desynchronize the party streams from the
  /// run being resumed.
  void RestoreCounter(const WordShares& counter) { counter_ = counter; }
  void RestoreSeq(uint64_t seq) { seq_ = seq; }

 private:
  SharedRows rows_;
  WordShares counter_;
  uint64_t seq_ = 0;
};

}  // namespace incshrink
