#pragma once

#include <cstdint>

#include "src/oblivious/formats.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief The materialized view V: a growing secret-shared table of
/// view-format rows, the only object the servers touch to answer queries.
class MaterializedView {
 public:
  MaterializedView() : rows_(kViewWidth) {}

  const SharedRows& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// V <- V union o (Alg. 2 line 8).
  void Append(const SharedRows& batch) { rows_.AppendAll(batch); }

  /// Size in megabytes across both servers' shares — the paper's
  /// "materialized view size (Mb)" metric in Table 2.
  double SizeMb() const {
    return static_cast<double>(rows_.TotalBytes()) / (1024.0 * 1024.0);
  }

  /// Checkpoint-restore path: replaces the view contents wholesale. The
  /// caller validates the width (kViewWidth) before handing rows over.
  void RestoreRows(SharedRows rows) { rows_ = std::move(rows); }

 private:
  SharedRows rows_;
};

}  // namespace incshrink
