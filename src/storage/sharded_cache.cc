#include "src/storage/sharded_cache.h"

#include <limits>

#include "src/common/logging.h"
#include "src/dp/allocation.h"
#include "src/dp/composition.h"
#include "src/oblivious/formats.h"

namespace incshrink {

namespace {

uint64_t SplitMix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t DeriveShardSeed(uint64_t engine_seed, size_t shard_index) {
  // Same splitmix64 expansion as DeriveTenantSeed, salted with a distinct
  // stream constant so shard k of a tenant never aliases tenant k of a
  // fleet rooted at the same seed.
  return SplitMix64((engine_seed ^ 0x5348415244435348ull) +
                    0x9E3779B97F4A7C15ull *
                        (static_cast<uint64_t>(shard_index) + 1));
}

size_t ShardOfAppendIndex(uint64_t append_index, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(SplitMix64(append_index) % num_shards);
}

std::vector<double> SplitShardBudget(double eps_total, size_t num_shards,
                                     double sensitivity, uint64_t releases) {
  INCSHRINK_CHECK_GE(num_shards, 1u);
  if (num_shards == 1) return {eps_total};

  // One identical operator per shard: the shard map is content-oblivious,
  // so in expectation every shard sees the same input share and the
  // Appendix-D.2 optimizer lands on the symmetric split.
  std::vector<OperatorSpec> ops(num_shards);
  for (OperatorSpec& op : ops) {
    op.kind = OperatorSpec::Kind::kFilter;
    op.input_rows1 = 1000;
    op.output_rows = 1000;
    op.sensitivity = sensitivity;
    op.releases = releases;
  }
  const AllocationResult alloc = OptimizePrivacyAllocation(
      ops, eps_total, std::numeric_limits<double>::infinity());
  std::vector<double> slices = alloc.eps;
  INCSHRINK_CHECK_EQ(slices.size(), num_shards);
  for (const double s : slices) INCSHRINK_CHECK_GT(s, 0.0);

  // Nudge the last slice until the *sequentially composed* total reproduces
  // eps_total bit-exactly (a fixpoint in <= a few IEEE steps): the privacy
  // accounting over shards must sum to the configured budget, not to a
  // rounded neighbour of it.
  for (int pass = 0; pass < 8; ++pass) {
    const double composed = SequentialComposition(slices);
    if (composed == eps_total) break;
    slices.back() += eps_total - composed;
  }
  INCSHRINK_CHECK_GT(slices.back(), 0.0);
  INCSHRINK_CHECK_EQ(SequentialComposition(slices), eps_total);
  return slices;
}

ShardedSecureCache::ShardedSecureCache(Protocol2PC* root_proto,
                                       size_t num_shards, double eps_total,
                                       double sensitivity_b,
                                       uint64_t engine_seed,
                                       CostModel cost_model)
    : root_proto_(root_proto),
      shard_eps_(SplitShardBudget(eps_total, num_shards, sensitivity_b,
                                  /*releases=*/1)) {
  INCSHRINK_CHECK_GE(num_shards, 1u);
  shards_.reserve(num_shards);
  if (num_shards == 1) {
    // Unsharded deployment: the single shard lives on the root protocol —
    // no derived protocol, no extra randomness, bit-identical to the
    // pre-sharding engine.
    shards_.push_back(std::make_unique<SecureCache>(root_proto));
    return;
  }
  parties_.reserve(2 * num_shards);
  protos_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const uint64_t derived_seed = DeriveShardSeed(engine_seed, k);
    // Same party-seed expansion the engine applies to its deployment seed.
    // (tools/check_no_hidden_entropy.sh statically enforces that every
    // Party/Rng constructed here is seeded from derived_seed.)
    parties_.push_back(
        std::make_unique<Party>(0, derived_seed * 0x9E3779B97F4A7C15ull + 1));
    parties_.push_back(
        std::make_unique<Party>(1, derived_seed * 0xC2B2AE3D27D4EB4Full + 2));
    protos_.push_back(std::make_unique<Protocol2PC>(
        parties_[2 * k].get(), parties_[2 * k + 1].get(), cost_model));
    shards_.push_back(std::make_unique<SecureCache>(protos_[k].get()));
  }
}

size_t ShardedSecureCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<SecureCache>& s : shards_) total += s->size();
  return total;
}

void ShardedSecureCache::AppendTransformBlock(Protocol2PC* proto,
                                              const SharedRows& block,
                                              uint32_t real_entries) {
  const size_t num = shards_.size();
  if (num == 1) {
    shards_[0]->AddToCounter(proto, real_entries);
    shards_[0]->Append(block);
    append_cursor_ += block.size();
    return;
  }

  // Route rows by the public shard map. The split itself is a public
  // reorganization of shared arrays (no secure computation); the per-shard
  // real-entry tallies are accumulated in-circuit — one 32-bit accumulate
  // per row — and never leave the protocol (they flow straight into the
  // shards' secret-shared counters).
  proto->AccountAndGates(block.size() * kWordBits);
  std::vector<SharedRows> parts;
  parts.reserve(num);
  for (size_t k = 0; k < num; ++k) parts.emplace_back(block.width());
  std::vector<uint32_t> real(num, 0);
  for (size_t r = 0; r < block.size(); ++r) {
    const size_t k = ShardOfAppendIndex(append_cursor_++, num);
    parts[k].AppendRowFrom(block, r);
    real[k] += block.RecoverAt(r, kViewIsViewCol) & 1;
  }
  uint32_t total = 0;
  for (size_t k = 0; k < num; ++k) total += real[k];
  INCSHRINK_CHECK_EQ(total, real_entries);
  for (size_t k = 0; k < num; ++k) {
    shards_[k]->AddToCounter(proto, real[k]);
    shards_[k]->Append(parts[k]);
  }
}

}  // namespace incshrink
