#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

/// \brief The outsourced data DS for one relation: the secret-shared,
/// dummy-padded batches uploaded by the owner, organized by upload step.
///
/// The per-step batch sizes are public (the owner uploads a fixed-size block
/// at predetermined intervals — paper Section 2.3), so exposing batches by
/// step index leaks nothing beyond the public update policy.
class OutsourcedTable {
 public:
  explicit OutsourcedTable(size_t row_width) : width_(row_width) {}

  size_t width() const { return width_; }

  /// Number of upload steps recorded so far.
  uint64_t steps() const { return batches_.size(); }

  /// Total shared rows across all batches (real + padding).
  uint64_t total_rows() const { return total_rows_; }

  /// Appends the batch uploaded at the next step. Returns its step index.
  uint64_t AppendBatch(SharedRows batch);

  /// The batch uploaded at `step` (0-based).
  const SharedRows& batch(uint64_t step) const { return batches_[step]; }

  /// Concatenates the batches of steps [from, to] (inclusive, clamped) —
  /// the sliding-window input to Transform. Returns an empty table when the
  /// range is empty.
  SharedRows ConcatRange(uint64_t from, uint64_t to) const;

  /// Concatenates every batch (the full DS, used by the NM baseline).
  SharedRows ConcatAll() const;

  /// Checkpoint-restore path: replaces all batches wholesale, recomputing
  /// the row total. Rejects any batch whose width disagrees with this
  /// table's width (hostile snapshots must fail closed, not corrupt DS).
  Status RestoreBatches(std::vector<SharedRows> batches);

 private:
  size_t width_;
  std::vector<SharedRows> batches_;
  uint64_t total_rows_ = 0;
};

}  // namespace incshrink
