#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mpc/cost_model.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/secret/shared_rows.h"
#include "src/storage/secure_cache.h"

namespace incshrink {

/// Protocol seed of shard `k` inside a deployment seeded with
/// `engine_seed`: a splitmix64 substream (the same expansion the fleet uses
/// for tenants, salted so shard streams never collide with tenant streams).
/// Public and stable — the equivalence tests reconstruct shard protocols
/// from it, and tools/check_no_hidden_entropy.sh enforces that shard-local
/// RNG state comes from nowhere else.
uint64_t DeriveShardSeed(uint64_t engine_seed, size_t shard_index);

/// Public shard map: which shard the row with global append index `idx`
/// lands in. A splitmix64 hash of the index (the row's public FIFO
/// identity), reduced mod K. Routing on the *public* per-append key — not
/// the secret join key — is what keeps every per-shard append size a
/// deterministic function of public parameters: hashing secret keys would
/// make per-shard sizes data-dependent and leak beyond the DP releases.
size_t ShardOfAppendIndex(uint64_t append_index, size_t num_shards);

/// Splits the deployment's total view-update budget across `num_shards`
/// per-shard Shrink instances. Each shard is modelled as one operator of an
/// Appendix-D.2 allocation problem (sensitivity = the contribution bound b,
/// one DP release per firing) and the slices come out of
/// OptimizePrivacyAllocation; identical shards yield the symmetric eps/K
/// split. The last slice is then nudged so the *sequential composition* of
/// the returned slices reproduces `eps_total` bit-exactly — the composed
/// budget of the sharded deployment equals the configured eps, not an
/// FP-rounded neighbour of it. For num_shards == 1 the result is exactly
/// {eps_total}.
std::vector<double> SplitShardBudget(double eps_total, size_t num_shards,
                                     double sensitivity, uint64_t releases);

/// \brief The secure cache sigma, split into K independent shards so one
/// hot deployment parallelizes its Shrink work across the ThreadPool
/// (ROADMAP "sharded secure cache"; budget-split machinery after
/// Shrinkwrap's per-operator slices and DP-Sync's composed streams).
///
/// Each shard is a full SecureCache — its own exhaustively padded row
/// array and secret-shared cardinality counter — and, for K > 1, its own
/// two-party protocol instance whose randomness derives from
/// DeriveShardSeed, so shards can step concurrently without sharing any
/// mutable protocol state. Transform output is routed per row by the
/// public append-index shard map; the FIFO insertion sequence stays global,
/// so every shard's sort keys are a subsequence of the unsharded order and
/// merging shard results in fixed shard order is deterministic at any
/// thread count.
///
/// K == 1 is bit-identical to the pre-sharding engine: the single shard
/// *is* the root protocol's SecureCache, no derived protocol exists, no
/// extra circuit cost or randomness is consumed, and the budget slice is
/// the whole eps (enforced by the golden-transcript suite).
class ShardedSecureCache {
 public:
  ShardedSecureCache(Protocol2PC* root_proto, size_t num_shards,
                     double eps_total, double sensitivity_b,
                     uint64_t engine_seed, CostModel cost_model);

  size_t num_shards() const { return shards_.size(); }
  SecureCache& shard(size_t k) { return *shards_[k]; }
  const SecureCache& shard(size_t k) const { return *shards_[k]; }

  /// The protocol instance shard `k`'s Shrink steps on: the root protocol
  /// when K == 1, the shard's own derived instance otherwise.
  Protocol2PC* shard_proto(size_t k) {
    return protos_.empty() ? root_proto_ : protos_[k].get();
  }

  /// Per-shard view-update budget slices; sequentially composed they equal
  /// the configured total exactly.
  const std::vector<double>& shard_eps() const { return shard_eps_; }

  /// Global FIFO insertion sequence shared by all shards.
  uint64_t* seq() { return &seq_; }

  /// Total padded rows across all shards (public).
  size_t size() const;

  /// Rows ever routed through AppendTransformBlock (public).
  uint64_t append_cursor() const { return append_cursor_; }

  /// Checkpoint support: shard `k`'s derived party `which` (0 or 1), or
  /// nullptr when K == 1 (the single shard runs on the root protocol's
  /// parties, which the engine snapshot covers already).
  Party* shard_party(size_t k, int which) {
    return parties_.empty() ? nullptr : parties_[2 * k + which].get();
  }

  /// Checkpoint-restore path: overwrites the global FIFO sequence and the
  /// append cursor with snapshot values.
  void RestoreCursors(uint64_t seq, uint64_t append_cursor) {
    seq_ = seq;
    append_cursor_ = append_cursor;
  }

  /// Commits one Transform output block (Alg. 1 lines 4-7, sharded): routes
  /// each row to ShardOfAppendIndex(global append index), updates every
  /// shard's secret-shared counter with its share of `real_entries`, and
  /// appends the per-shard sub-blocks. `proto` is the (serial) protocol the
  /// Transform invocation runs on; per-shard tallies are computed inside it
  /// and charged as in-circuit accumulations. For K == 1 this is exactly
  /// SecureCache::AddToCounter followed by SecureCache::Append.
  void AppendTransformBlock(Protocol2PC* proto, const SharedRows& block,
                            uint32_t real_entries);

 private:
  Protocol2PC* root_proto_;
  // K > 1 only: per-shard parties (2 per shard, derived seeds) + protocols.
  std::vector<std::unique_ptr<Party>> parties_;
  std::vector<std::unique_ptr<Protocol2PC>> protos_;
  std::vector<std::unique_ptr<SecureCache>> shards_;
  std::vector<double> shard_eps_;
  uint64_t seq_ = 0;
  uint64_t append_cursor_ = 0;
};

}  // namespace incshrink
