#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/upload_policy.h"
#include "src/net/upload_channel.h"
#include "src/relational/growing_table.h"

namespace incshrink {

/// Share-randomness seed of owner `owner_index` (0 = T1, 1 = T2) of a
/// deployment rooted at `deployment_seed`: a splitmix64 substream of the
/// deployment seed, salted with the pre-transport engine's owner-rng
/// constant. Public and stable, so any driver (SynchronousDeployment, the
/// fleet, a standalone process) reconstructs the exact same owners.
uint64_t DeriveOwnerShareSeed(uint64_t deployment_seed, int owner_index);

class CheckpointWriter;
class CheckpointReader;

/// \brief A standalone data owner: the client side of one upload channel.
///
/// Owns the record-synchronization policy state (OwnerUploader), the
/// owner-local share randomness, and the owner's logical clock — everything
/// that used to live fused inside Engine::Step. Each TryStep ingests one
/// step of logical arrivals, emits the policy-sized secret-shared batch,
/// serializes it into a wire frame (storage/serialization) and pushes it
/// onto the channel. The owner runs on its own clock: it may be stepped
/// ahead of the engine up to the channel capacity.
///
/// Every owner step pushes exactly one frame — a policy step that uploads
/// nothing still sends a zero-row frame (the frame's presence is the clock
/// tick; its *size* is the DP-protected observable), and the frame carries
/// this step's plaintext arrivals for evaluation-side ground truth.
class OwnerClient {
 public:
  /// \param fixed_rows   C_r of the fixed-size policy
  /// \param is_public    public relations upload unpadded, every step
  /// \param policy_seed  seed of the DP policy noise (matches the
  ///                     pre-transport engine: config.seed + 101 / + 202)
  /// \param share_seed   seed of the owner's sharing randomness
  /// \param channel      non-owning; must outlive the client
  OwnerClient(const UploadPolicyConfig& policy, uint32_t fixed_rows,
              bool is_public, uint64_t policy_seed, uint64_t share_seed,
              UploadChannel* channel);

  /// Advances the owner clock by one step with these arrivals and pushes
  /// the resulting frame. Returns false — with the clock, queue and RNG
  /// state untouched — when the channel refuses the frame (public
  /// backpressure); the caller re-offers the same arrivals later.
  bool TryStep(const std::vector<LogicalRecord>& arrivals);

  uint64_t clock() const { return t_; }
  /// Records received but not yet uploaded (DP-Sync's Theorem-15 logical
  /// gap) — the owner-side component of the composed error bound.
  uint64_t pending() const { return uploader_.pending(); }
  double PolicyEpsilon() const { return uploader_.PolicyEpsilon(); }
  const OwnerUploader& uploader() const { return uploader_; }
  UploadChannel* channel() { return channel_; }

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t rows_sent() const { return rows_sent_; }

  /// Checkpoint support: serializes the owner's full resumable state — the
  /// policy uploader, the share-randomness cursor, the logical clock and
  /// the lifetime counters. The channel backlog is engine-side state and is
  /// captured by Engine::SaveCheckpoint.
  void SaveTo(CheckpointWriter* writer) const;
  /// Restores the state saved by SaveTo into a client constructed with the
  /// same config/seeds; fails closed on malformed input.
  Status RestoreFrom(CheckpointReader* reader);

 private:
  OwnerUploader uploader_;
  Rng share_rng_;
  UploadChannel* channel_;
  uint64_t t_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t rows_sent_ = 0;
};

/// \brief One full deployment — two owners, their channels (owned by the
/// engine) and the engine — driven in lockstep: each Step ticks both owners
/// once and then the engine once, so every frame is drained the step it is
/// produced.
///
/// This is the drop-in replacement for the fused pre-transport
/// `Engine::Step(new1, new2)` / `Run(arrivals)` API and reproduces it bit
/// for bit (the golden-transcript suite pins this). Async drivers — the
/// fleet with an owner lead, tests/upload_channel_test.cc — wire the same
/// pieces together by hand instead.
class SynchronousDeployment {
 public:
  explicit SynchronousDeployment(const IncShrinkConfig& config);

  /// Ticks owner 1 with `new1`, owner 2 with `new2` (join views only), then
  /// the engine once. Lockstep never overflows a channel (capacity >= 1).
  Status Step(const std::vector<LogicalRecord>& new1,
              const std::vector<LogicalRecord>& new2);

  /// Runs `Step` over aligned per-step arrival vectors.
  Status Run(const std::vector<std::vector<LogicalRecord>>& arrivals1,
             const std::vector<std::vector<LogicalRecord>>& arrivals2);

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  OwnerClient& owner1() { return owner1_; }
  OwnerClient& owner2() { return owner2_; }
  const OwnerClient& owner1() const { return owner1_; }
  const OwnerClient& owner2() const { return owner2_; }

  // Forwarders for the most common post-run reads, so driver code can treat
  // a deployment like the old fused engine.
  RunSummary Summary() const { return engine_.Summary(); }
  const std::vector<StepMetrics>& step_metrics() const {
    return engine_.step_metrics();
  }
  const Transcript& transcript() const { return engine_.transcript(); }

  /// Serializes the whole deployment — engine (with channel backlogs) and
  /// both owners — into one ICKP snapshot. Fails between-steps only
  /// (engine-side precondition) and respects config.checkpoint_max_bytes.
  Result<std::vector<uint8_t>> SaveCheckpoint();
  /// Restores a SaveCheckpoint blob into this deployment, which must have
  /// been constructed with the identical config (fingerprint-checked).
  /// Atomic: on any error the deployment is left in its prior state, except
  /// that a torn engine/owner mismatch can only arise from distinct blobs —
  /// within one valid blob all parts restore or none do.
  Status RestoreCheckpoint(const std::vector<uint8_t>& snapshot);

 private:
  Engine engine_;
  OwnerClient owner1_;
  OwnerClient owner2_;
};

/// Constructs the two owner clients of `config` against an engine's inbound
/// channels with the canonical seed derivation. Shared by
/// SynchronousDeployment and the fleet so both drive identical owners.
OwnerClient MakeOwner1(const IncShrinkConfig& config, UploadChannel* channel);
OwnerClient MakeOwner2(const IncShrinkConfig& config, UploadChannel* channel);

}  // namespace incshrink
