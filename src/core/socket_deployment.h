#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/net/socket_transport.h"
#include "src/net/upload_channel.h"

namespace incshrink {

/// \brief The owner side of the socket transport: an OwnerClient whose
/// frames travel over a real TCP connection instead of directly into the
/// engine's queue.
///
/// Composition (nothing above the channel changes):
///
///   OwnerClient --TryPush--> local outbound UploadChannel
///       --Pump--> SocketSender --wire--> SocketListener
///       --TryPush--> engine-side UploadChannel --drain--> Engine
///
/// The OwnerClient is byte-for-byte the in-process one — same policy/share
/// randomness seeds, same frames — it just pushes into a local outbound
/// channel owned by this wrapper. Pump() moves completed frames from that
/// channel onto the wire, one in flight at a time, so end-to-end
/// backpressure is tightly bounded: engine channel full → listener pauses
/// reads → kernel buffers fill → Flush stops → local channel fills →
/// OwnerClient::TryStep probes full() *before* constructing a frame and
/// refuses with NoteBackpressure, exactly the in-process semantics.
class SocketOwnerClient {
 public:
  /// Builds the owner for `owner_index` (0 = T1, 1 = T2) of `config` — via
  /// the canonical MakeOwner1/2, so the seed derivation matches every other
  /// driver — and dials the listener at host:port, announcing engine
  /// channel `owner_index`.
  static Result<std::unique_ptr<SocketOwnerClient>> Dial(
      const IncShrinkConfig& config, int owner_index, const std::string& host,
      uint16_t port, const SocketSenderOptions& options = {});

  /// Moves frames local-channel → sender → kernel as far as the socket
  /// allows without blocking. Returns the number of frames fully handed to
  /// the kernel this call.
  Result<size_t> Pump();

  /// One owner step: pump, then let the OwnerClient probe the (local)
  /// channel and either emit this step's frame or refuse with public
  /// backpressure; pump again so the frame starts traveling immediately.
  /// Returns whether the step was taken.
  Result<bool> TryStep(const std::vector<LogicalRecord>& arrivals);

  /// True when every emitted frame has been handed to the kernel.
  bool drained() const;

  /// Re-dials after a connection loss. Frames already handed to the kernel
  /// may be lost with the old connection; frames still queued locally are
  /// re-sent on the new stream (stamps restart at 1 — the listener sees a
  /// fresh connection).
  Status Reconnect();

  OwnerClient& owner() { return owner_; }
  const OwnerClient& owner() const { return owner_; }
  SocketSender& sender() { return sender_; }
  UploadChannel& local_channel() { return local_channel_; }

 private:
  SocketOwnerClient(const IncShrinkConfig& config, int owner_index,
                    const SocketSenderOptions& options);

  UploadChannel local_channel_;
  SocketSender sender_;
  OwnerClient owner_;
  /// Payload sizes handed to the sender but not yet fully flushed (front =
  /// oldest). Pump only queues a new frame when the previous one left the
  /// building, keeping at most one frame in the sender's buffer.
  uint64_t in_flight_bytes_ = 0;
};

/// \brief One full deployment over the real wire: the engine, a listener
/// bound to an ephemeral loopback port feeding the engine's channels, and
/// socket-backed owners — driven in lockstep like SynchronousDeployment.
///
/// Each Step ticks both owners (frames go over TCP), polls the listener
/// until the engine-side channels hold the step's frame pair, then steps
/// the engine. Because the socket path preserves per-owner frame order and
/// content exactly, a SocketDeployment run is bit-identical to a
/// SynchronousDeployment run — summaries and transcripts — at any thread
/// count (tests/socket_transport_test.cc pins this for every DP strategy).
class SocketDeployment {
 public:
  struct Options {
    SocketListenerOptions listener;
    SocketSenderOptions sender;
    /// Poll sweeps Step() waits for a frame pair before giving up (with
    /// listener.poll_timeout_ms = 1 the default bounds a hung owner at
    /// ~10 s — timeout plumbing, not behavior).
    uint32_t max_wait_polls = 10000;
  };

  explicit SocketDeployment(const IncShrinkConfig& config,
                            const Options& options = DefaultOptions());

  /// Binds the listener and dials the owners. Call once before Step/Run.
  Status Start();

  /// Lockstep step over the wire (see class comment).
  Status Step(const std::vector<LogicalRecord>& new1,
              const std::vector<LogicalRecord>& new2);

  /// Runs `Step` over aligned per-step arrival vectors.
  Status Run(const std::vector<std::vector<LogicalRecord>>& arrivals1,
             const std::vector<std::vector<LogicalRecord>>& arrivals2);

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  SocketListener& listener() { return listener_; }
  SocketOwnerClient& owner1() { return *owner1_; }
  SocketOwnerClient& owner2() { return *owner2_; }

  RunSummary Summary() const { return engine_.Summary(); }
  const Transcript& transcript() const { return engine_.transcript(); }

  static Options DefaultOptions() {
    Options opt;
    opt.listener.poll_timeout_ms = 1;
    return opt;
  }

 private:
  IncShrinkConfig config_;
  Options options_;
  Engine engine_;
  SocketListener listener_;
  std::unique_ptr<SocketOwnerClient> owner1_;
  std::unique_ptr<SocketOwnerClient> owner2_;
  bool started_ = false;
};

}  // namespace incshrink
