#include "src/core/transform.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/sort.h"

namespace incshrink {

TransformProtocol::TransformProtocol(Protocol2PC* proto,
                                     const IncShrinkConfig& config,
                                     PrivacyAccountant* accountant)
    : proto_(proto), config_(config), accountant_(accountant) {}

uint32_t TransformProtocol::EligibleSteps(const IncShrinkConfig& config) {
  const uint32_t budget_steps = config.budget_b / config.omega;
  INCSHRINK_CHECK_GE(budget_steps, 1u);
  return std::min(config.window_steps, budget_steps - 1);
}

uint64_t TransformProtocol::PublicCacheAppendRows(
    const IncShrinkConfig& config, uint64_t t) {
  if (config.view_kind == ViewKind::kFilter) {
    // Selection rewrites flags in place: output size == batch size.
    return config.upload_rows_t1;
  }
  const uint64_t wlen =
      std::min<uint64_t>(EligibleSteps(config), t > 0 ? t - 1 : 0);
  if (config.t2_is_public ||
      config.op == TransformOperator::kNestedLoopJoin) {
    // T1-side bound: every new pair involves either a new T1 record
    // (<= omega each) or an eligible old T1 record joined by a new row
    // (<= omega each). This is also the exact output size of the
    // nested-loop operator, which emits omega slots per outer tuple.
    return static_cast<uint64_t>(config.omega) * config.upload_rows_t1 *
           (1 + wlen);
  }
  // Both sides capped (sort-merge): every new pair involves at least one
  // *new* record and each new record contributes at most omega rows.
  return static_cast<uint64_t>(config.omega) *
         (config.upload_rows_t1 + config.upload_rows_t2);
}

Status TransformProtocol::ChargeBatch(const SharedRows& batch,
                                      std::unordered_set<Word>* charged) {
  // "As long as a record is used as input to Transform (regardless of
  // whether it contributes to generating a real view entry), it is consumed
  // with a fixed amount of budget (equal to the truncation limit omega)."
  proto_->AccountAndGates(batch.size() * 2 * kWordBits);  // budget check+dec
  for (size_t r = 0; r < batch.size(); ++r) {
    const std::vector<Word> row = batch.RecoverRow(r);
    // oblivious-ok: ideal-functionality budget charge — the check+decrement
    // circuit is charged for every row above; the ledger models in-circuit
    // per-record budget state and is only released through the DP path
    if (!(row[kSrcValidCol] & 1)) continue;
    INCSHRINK_RETURN_NOT_OK(
        accountant_->ChargeParticipation(row[kSrcRidCol]));
    charged->insert(row[kSrcRidCol]);
  }
  return Status::OK();
}

Result<TransformProtocol::StepResult> TransformProtocol::StepFilter(
    uint64_t t, const OutsourcedTable& store1, SecureCache* cache) {
  return StepFilterImpl(t, store1, cache->seq(),
                        [this, cache](const SharedRows& block, uint32_t real) {
                          cache->AddToCounter(proto_, real);
                          cache->Append(block);
                        });
}

Result<TransformProtocol::StepResult> TransformProtocol::StepFilter(
    uint64_t t, const OutsourcedTable& store1, ShardedSecureCache* cache) {
  return StepFilterImpl(t, store1, cache->seq(),
                        [this, cache](const SharedRows& block, uint32_t real) {
                          cache->AppendTransformBlock(proto_, block, real);
                        });
}

Result<TransformProtocol::StepResult> TransformProtocol::StepFilterImpl(
    uint64_t t, const OutsourcedTable& store1, uint64_t* seq,
    const CommitFn& commit) {
  INCSHRINK_CHECK_GE(t, 1u);
  INCSHRINK_CHECK_EQ(store1.steps(), t);
  const CircuitStats before = proto_->Snapshot();
  const SharedRows& batch = store1.batch(t - 1);

  std::unordered_set<Word> charged;
  INCSHRINK_RETURN_NOT_OK(ChargeBatch(batch, &charged));

  // Per row: range predicate (2 comparisons) + AND with the valid bit +
  // view-row rewiring muxes.
  proto_->AccountAndGates(batch.size() *
                          (2 * kWordBits + 1 + kViewWidth * kWordBits));
  Rng* rng = proto_->internal_rng();
  SharedRows out(kViewWidth);
  uint32_t real_entries = 0;
  for (size_t r = 0; r < batch.size(); ++r) {
    const std::vector<Word> row = batch.RecoverRow(r);
    const bool keep = (row[kSrcValidCol] & 1) &&
                      row[kSrcPayloadCol] >= config_.filter.lo &&
                      row[kSrcPayloadCol] <= config_.filter.hi;
    std::vector<Word> view(kViewWidth);
    // oblivious-ok: ideal-functionality select — per-row predicate + rewiring
    // mux cost charged above the loop; one fresh-shared view row is appended
    // per input row whether it matches or not
    view[kViewIsViewCol] = keep ? 1 : 0;
    view[kViewSortKeyCol] = MakeCacheSortKey(keep, (*seq)++);
    // oblivious-ok: same site — payload source selection for the view row
    if (keep) {
      view[kViewKeyCol] = row[kSrcKeyCol];
      view[kViewDate1Col] = row[kSrcDateCol];
      view[kViewDate2Col] = row[kSrcDateCol];
      view[kViewRid1Col] = row[kSrcRidCol];
      view[kViewRid2Col] = row[kSrcPayloadCol];
      ++real_entries;
      INCSHRINK_RETURN_NOT_OK(
          accountant_->RecordContribution(row[kSrcRidCol], 1));
    } else {
      for (size_t c = kViewKeyCol; c < kViewWidth; ++c)
        view[c] = rng->Next32();
    }
    out.AppendSecretRow(view, rng);
  }

  const uint64_t appended = out.size();
  commit(out, real_entries);

  StepResult result;
  result.real_entries = real_entries;
  result.appended_rows = appended;
  result.simulated_seconds = proto_->SimulatedSecondsSince(before);
  return result;
}

Result<TransformProtocol::StepResult> TransformProtocol::Step(
    uint64_t t, const OutsourcedTable& store1, const OutsourcedTable& store2,
    SecureCache* cache) {
  if (config_.view_kind == ViewKind::kFilter) {
    return StepFilter(t, store1, cache);
  }
  return StepJoin(t, store1, store2, cache->seq(),
                  [this, cache](const SharedRows& block, uint32_t real) {
                    cache->AddToCounter(proto_, real);
                    cache->Append(block);
                  });
}

Result<TransformProtocol::StepResult> TransformProtocol::Step(
    uint64_t t, const OutsourcedTable& store1, const OutsourcedTable& store2,
    ShardedSecureCache* cache) {
  if (config_.view_kind == ViewKind::kFilter) {
    return StepFilter(t, store1, cache);
  }
  return StepJoin(t, store1, store2, cache->seq(),
                  [this, cache](const SharedRows& block, uint32_t real) {
                    cache->AppendTransformBlock(proto_, block, real);
                  });
}

Result<TransformProtocol::StepResult> TransformProtocol::StepJoin(
    uint64_t t, const OutsourcedTable& store1, const OutsourcedTable& store2,
    uint64_t* seq, const CommitFn& commit) {
  INCSHRINK_CHECK_GE(t, 1u);
  INCSHRINK_CHECK_EQ(store1.steps(), t);
  INCSHRINK_CHECK_EQ(store2.steps(), t);
  const CircuitStats before = proto_->Snapshot();

  const uint64_t wlen = std::min<uint64_t>(EligibleSteps(config_), t - 1);
  const uint64_t step_idx = t - 1;  // stores are 0-indexed by step

  const SharedRows& new1 = store1.batch(step_idx);
  const SharedRows& new2 = store2.batch(step_idx);
  SharedRows old1(kSrcWidth);
  SharedRows old2(kSrcWidth);
  if (wlen > 0) {
    old1 = store1.ConcatRange(step_idx - wlen, step_idx - 1);
    old2 = store2.ConcatRange(step_idx - wlen, step_idx - 1);
  }

  // Budget accounting: every record participating in this invocation is
  // charged omega once (new2 participates in both sub-joins but is charged
  // once — the sub-joins share the per-invocation contribution cap, so the
  // invocation as a whole is omega-stable per record). Public relations
  // carry no privacy budget and are never charged.
  std::unordered_set<Word> charged;
  INCSHRINK_RETURN_NOT_OK(ChargeBatch(new1, &charged));
  INCSHRINK_RETURN_NOT_OK(ChargeBatch(old1, &charged));
  if (!config_.t2_is_public) {
    INCSHRINK_RETURN_NOT_OK(ChargeBatch(new2, &charged));
    INCSHRINK_RETURN_NOT_OK(ChargeBatch(old2, &charged));
  }

  JoinSpec spec = config_.join;
  spec.omega = config_.omega;
  if (config_.t2_is_public) spec.cap_t2 = false;

  // Sub-join A: new1 x (new2 ++ old2); sub-join B: old1 x new2. Together
  // these produce every pair involving at least one new record exactly once.
  SharedRows t2_in(kSrcWidth);
  t2_in.AppendAll(new2);
  t2_in.AppendAll(old2);

  ContributionUsage usage;
  uint32_t real_entries = 0;
  SharedRows padded(kViewWidth);

  if (config_.op == TransformOperator::kSortMergeJoin) {
    JoinResult a = TruncatedSortMergeJoin(proto_, new1, t2_in, spec,
                                          seq, &usage, sort_exec_);
    real_entries += a.real_count;
    padded.AppendAll(a.rows);
    if (!old1.empty() && !new2.empty()) {
      JoinResult b = TruncatedSortMergeJoin(proto_, old1, new2, spec,
                                            seq, &usage, sort_exec_);
      real_entries += b.real_count;
      padded.AppendAll(b.rows);
    }
  } else {
    // Nested-loop variant (Algorithm 4): budgets ride in an extra column
    // initialized from the shared per-invocation usage map.
    auto with_budget = [&](const SharedRows& src,
                           bool capped) -> SharedRows {
      SharedRows out(kSrcWidth + 1);
      for (size_t r = 0; r < src.size(); ++r) {
        std::vector<Word> row = src.RecoverRow(r);
        const Word rid = row[kSrcRidCol];
        const uint32_t used =
            usage.count(rid) != 0 ? usage.at(rid) : 0;
        const Word remaining =
            capped ? (used >= spec.omega ? 0 : spec.omega - used)
                   : 0x7FFFFFFFu;
        row.push_back(remaining);
        out.AppendSecretRow(row, proto_->internal_rng());
      }
      return out;
    };
    auto harvest_usage = [&](const SharedRows& table, bool capped) {
      if (!capped) return;
      // oblivious-ok-begin: ideal-functionality budget read-back — mirrors
      // the in-circuit budget columns the nested-loop join maintained into
      // the (secret-state) usage map; the join already charged the full
      // per-pair decrement circuit, and nothing here is released
      for (size_t r = 0; r < table.size(); ++r) {
        const std::vector<Word> row = table.RecoverRow(r);
        if (!(row[kSrcValidCol] & 1)) continue;
        const uint32_t remaining = row[kSrcWidth];
        const uint32_t initial =
            usage.count(row[kSrcRidCol]) != 0
                ? (spec.omega >= usage.at(row[kSrcRidCol])
                       ? spec.omega - usage.at(row[kSrcRidCol])
                       : 0)
                : spec.omega;
        usage[row[kSrcRidCol]] += initial - remaining;
      }
      // oblivious-ok-end
    };
    {
      SharedRows outer = with_budget(new1, spec.cap_t1);
      SharedRows inner = with_budget(t2_in, spec.cap_t2);
      JoinResult a = TruncatedNestedLoopJoin(proto_, &outer, &inner,
                                             kSrcWidth, kSrcWidth, spec,
                                             seq);
      real_entries += a.real_count;
      padded.AppendAll(a.rows);
      harvest_usage(outer, spec.cap_t1);
      harvest_usage(inner, spec.cap_t2);
    }
    if (!old1.empty() && !new2.empty()) {
      SharedRows outer = with_budget(old1, spec.cap_t1);
      SharedRows inner = with_budget(new2, spec.cap_t2);
      JoinResult b = TruncatedNestedLoopJoin(proto_, &outer, &inner,
                                             kSrcWidth, kSrcWidth, spec,
                                             seq);
      real_entries += b.real_count;
      padded.AppendAll(b.rows);
      harvest_usage(outer, spec.cap_t1);
      harvest_usage(inner, spec.cap_t2);
    }
  }

  // Oblivious compaction: sort the padded operator outputs (real entries
  // first) and keep the public upper bound on new view entries. This is the
  // "exhaustively padded secure cache" append of Alg. 1 line 7, with the
  // padding tightened to the stability bound.
  // The public bound on new view entries, computed from the (public) batch
  // sizes. Under the fixed-size upload policy this equals
  // PublicCacheAppendRows(config, t); under DP upload policies it is a
  // function of the owners' DP-released batch sizes.
  uint64_t bound;
  if (config_.t2_is_public ||
      config_.op == TransformOperator::kNestedLoopJoin) {
    bound = static_cast<uint64_t>(config_.omega) *
            (new1.size() + old1.size());
  } else {
    bound = static_cast<uint64_t>(config_.omega) *
            (new1.size() + new2.size());
  }
  INCSHRINK_CHECK_LE(real_entries, bound);
  SharedRows compacted(kViewWidth);
  if (!config_.compact_transform_output) {
    // EP baseline: cache the raw exhaustively padded operator outputs.
    compacted = std::move(padded);
  } else if (padded.size() > bound) {
    ObliviousSort(proto_, &padded, kViewSortKeyCol, /*ascending=*/false,
                  sort_exec_);
    // In place: the suffix is discarded anyway, so truncating and moving
    // avoids SplitPrefix's copy of `bound` rows every hot-loop step.
    padded.Truncate(bound);
    compacted = std::move(padded);
  } else {
    compacted = std::move(padded);
    // Pad up to the public bound so the cache-append size is a deterministic
    // function of public parameters (transcript indistinguishability).
    while (compacted.size() < bound) {
      AppendDummyViewRow(&compacted, proto_->internal_rng(), seq);
    }
  }

  // Record actual contributions against the ledger (consistency check for
  // the q-stability invariant). Only budget-carrying (charged) records are
  // ledgered — public-side rows appear in the usage map but hold no budget.
  for (const auto& [rid, rows] : usage) {
    if (rows == 0 || charged.count(rid) == 0) continue;
    INCSHRINK_RETURN_NOT_OK(accountant_->RecordContribution(rid, rows));
  }

  // Alg. 1 lines 4-7: update the shared counter, append to the cache.
  const uint64_t appended = compacted.size();
  commit(compacted, real_entries);

  StepResult result;
  result.real_entries = real_entries;
  result.appended_rows = appended;
  result.simulated_seconds = proto_->SimulatedSecondsSince(before);
  return result;
}

}  // namespace incshrink
