#include "src/core/upload_policy.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/dp/laplace.h"
#include "src/oblivious/formats.h"
#include "src/relational/encode.h"
#include "src/storage/checkpoint.h"

namespace incshrink {

OwnerUploader::OwnerUploader(const UploadPolicyConfig& config,
                             uint32_t fixed_rows, bool is_public,
                             uint64_t seed)
    : config_(config), fixed_rows_(fixed_rows), is_public_(is_public),
      policy_rng_(seed ^ 0x5851F42D4C957F2Dull) {
  if (config_.kind == UploadPolicyKind::kDpAntSync) {
    // Record-insertion sensitivity is 1 for the owner's pending counter.
    svt_ = std::make_unique<NumericAboveNoisyThreshold>(
        config_.eps_sync / 2, /*sensitivity=*/1.0, config_.sync_theta,
        &policy_rng_);
  }
}

double OwnerUploader::PolicyEpsilon() const {
  return UploadPolicyEpsilon(config_);
}

void OwnerUploader::SaveTo(CheckpointWriter* writer) const {
  writer->WriteRng(policy_rng_.ExportState());
  writer->U64(queue_.size());
  for (const LogicalRecord& rec : queue_) writer->WriteRecord(rec);
  writer->U8(svt_ ? 1 : 0);
  if (svt_) {
    const NumericAboveNoisyThreshold::State svt_state = svt_->ExportState();
    writer->U64(svt_state.noisy_threshold_bits);
    writer->U64(svt_state.releases);
  }
}

Status OwnerUploader::RestoreFrom(CheckpointReader* reader) {
  const RngState rng_state = reader->ReadRng();
  const uint64_t queue_size = reader->U64();
  std::vector<LogicalRecord> queue;
  for (uint64_t i = 0; i < queue_size && reader->ok(); ++i) {
    queue.push_back(reader->ReadRecord());
  }
  const uint8_t has_svt = reader->U8();
  NumericAboveNoisyThreshold::State svt_state;
  if (has_svt == 1) {
    svt_state.noisy_threshold_bits = reader->U64();
    svt_state.releases = reader->U64();
  }
  INCSHRINK_RETURN_NOT_OK(reader->ExpectOk("owner uploader state"));
  if (has_svt > 1 || (has_svt == 1) != (svt_ != nullptr)) {
    return Status::InvalidArgument(
        "snapshot upload-policy shape disagrees with this uploader's config");
  }
  policy_rng_.RestoreState(rng_state);
  queue_ = std::move(queue);
  if (svt_) svt_->RestoreState(svt_state);
  return Status::OK();
}

SharedRows OwnerUploader::Emit(size_t take, size_t rows, Rng* share_rng) {
  take = std::min(take, queue_.size());
  rows = std::max(rows, take);
  SharedRows batch(kSrcWidth);
  for (size_t i = 0; i < take; ++i) {
    batch.AppendSecretRow(EncodeSourceRow(queue_[i]), share_rng);
  }
  queue_.erase(queue_.begin(), queue_.begin() + take);
  while (batch.size() < rows) {
    batch.AppendSecretRow(MakeDummySourceRow(share_rng), share_rng);
  }
  return batch;
}

SharedRows OwnerUploader::BuildBatch(
    uint64_t t, const std::vector<LogicalRecord>& arrivals, Rng* share_rng) {
  queue_.insert(queue_.end(), arrivals.begin(), arrivals.end());

  if (is_public_) {
    // Public relations leak nothing private: ship everything, unpadded.
    return Emit(queue_.size(), queue_.size(), share_rng);
  }

  switch (config_.kind) {
    case UploadPolicyKind::kFixedSize:
      return Emit(fixed_rows_, fixed_rows_, share_rng);

    case UploadPolicyKind::kDpTimerSync: {
      if (config_.sync_interval == 0 || t % config_.sync_interval != 0) {
        return SharedRows(kSrcWidth);  // no upload this step
      }
      // DP-Sync timer: release |pending| + Lap(1/eps1); upload that many
      // rows (real first, dummy-padded), deferring any surplus records.
      const uint32_t size = NoisyNonNegativeCount(
          static_cast<uint32_t>(queue_.size()),
          1.0 / config_.eps_sync, &policy_rng_);
      return Emit(size, size, share_rng);
    }

    case UploadPolicyKind::kDpAntSync: {
      double release = 0;
      if (!svt_->Observe(static_cast<double>(queue_.size()), &release)) {
        return SharedRows(kSrcWidth);
      }
      const uint32_t size = ClampRoundNonNegative(release);
      return Emit(size, size, share_rng);
    }
  }
  return SharedRows(kSrcWidth);
}

}  // namespace incshrink
