#include "src/core/upload_policy.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/dp/laplace.h"
#include "src/oblivious/formats.h"
#include "src/relational/encode.h"

namespace incshrink {

OwnerUploader::OwnerUploader(const UploadPolicyConfig& config,
                             uint32_t fixed_rows, bool is_public,
                             uint64_t seed)
    : config_(config), fixed_rows_(fixed_rows), is_public_(is_public),
      policy_rng_(seed ^ 0x5851F42D4C957F2Dull) {
  if (config_.kind == UploadPolicyKind::kDpAntSync) {
    // Record-insertion sensitivity is 1 for the owner's pending counter.
    svt_ = std::make_unique<NumericAboveNoisyThreshold>(
        config_.eps_sync / 2, /*sensitivity=*/1.0, config_.sync_theta,
        &policy_rng_);
  }
}

double OwnerUploader::PolicyEpsilon() const {
  return UploadPolicyEpsilon(config_);
}

SharedRows OwnerUploader::Emit(size_t take, size_t rows, Rng* share_rng) {
  take = std::min(take, queue_.size());
  rows = std::max(rows, take);
  SharedRows batch(kSrcWidth);
  for (size_t i = 0; i < take; ++i) {
    batch.AppendSecretRow(EncodeSourceRow(queue_[i]), share_rng);
  }
  queue_.erase(queue_.begin(), queue_.begin() + take);
  while (batch.size() < rows) {
    batch.AppendSecretRow(MakeDummySourceRow(share_rng), share_rng);
  }
  return batch;
}

SharedRows OwnerUploader::BuildBatch(
    uint64_t t, const std::vector<LogicalRecord>& arrivals, Rng* share_rng) {
  queue_.insert(queue_.end(), arrivals.begin(), arrivals.end());

  if (is_public_) {
    // Public relations leak nothing private: ship everything, unpadded.
    return Emit(queue_.size(), queue_.size(), share_rng);
  }

  switch (config_.kind) {
    case UploadPolicyKind::kFixedSize:
      return Emit(fixed_rows_, fixed_rows_, share_rng);

    case UploadPolicyKind::kDpTimerSync: {
      if (config_.sync_interval == 0 || t % config_.sync_interval != 0) {
        return SharedRows(kSrcWidth);  // no upload this step
      }
      // DP-Sync timer: release |pending| + Lap(1/eps1); upload that many
      // rows (real first, dummy-padded), deferring any surplus records.
      const uint32_t size = NoisyNonNegativeCount(
          static_cast<uint32_t>(queue_.size()),
          1.0 / config_.eps_sync, &policy_rng_);
      return Emit(size, size, share_rng);
    }

    case UploadPolicyKind::kDpAntSync: {
      double release = 0;
      if (!svt_->Observe(static_cast<double>(queue_.size()), &release)) {
        return SharedRows(kSrcWidth);
      }
      const uint32_t size = ClampRoundNonNegative(release);
      return Emit(size, size, share_rng);
    }
  }
  return SharedRows(kSrcWidth);
}

}  // namespace incshrink
