#include "src/core/config.h"

#include <cstring>

namespace incshrink {

namespace {

/// Local FNV-1a64 over the canonical field serialization (config.cc must not
/// depend on src/storage; the constants match src/storage/checkpoint.h).
struct FieldHasher {
  uint64_t h = 0xCBF29CE484222325ull;

  void Byte(uint8_t b) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte((v >> (8 * i)) & 0xFF);
  }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
};

}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDpTimer:
      return "DP-Timer";
    case Strategy::kDpAnt:
      return "DP-ANT";
    case Strategy::kEp:
      return "EP";
    case Strategy::kOtm:
      return "OTM";
    case Strategy::kNm:
      return "NM";
  }
  return "Unknown";
}

Status IncShrinkConfig::Validate() const {
  if (eps <= 0) return Status::InvalidArgument("eps must be positive");
  if (omega == 0) return Status::InvalidArgument("omega must be positive");
  if (budget_b < omega)
    return Status::InvalidArgument("budget b must be >= omega");
  if (view_kind == ViewKind::kWindowJoin && join.omega != omega)
    return Status::InvalidArgument("join.omega must equal omega");
  if (view_kind == ViewKind::kFilter && filter.lo > filter.hi)
    return Status::InvalidArgument("filter range is empty");
  if (strategy == Strategy::kDpTimer && timer_T == 0)
    return Status::InvalidArgument("timer T must be positive");
  if (strategy == Strategy::kDpAnt && ant_theta <= 0)
    return Status::InvalidArgument("ANT threshold must be positive");
  if (upload_rows_t1 == 0 || upload_rows_t2 == 0)
    return Status::InvalidArgument("upload batch sizes must be positive");
  if (num_cache_shards == 0)
    return Status::InvalidArgument("num_cache_shards must be >= 1");
  if (num_cache_shards > 256)
    return Status::InvalidArgument("num_cache_shards above 256 is surely "
                                   "a configuration error");
  if (cache_shard_threads < 0)
    return Status::InvalidArgument("cache_shard_threads must be >= 0");
  if (sla_weight == 0)
    return Status::InvalidArgument("sla_weight must be >= 1");
  if (sla_weight > (1u << 20))
    return Status::InvalidArgument(
        "sla_weight above 2^20 would overflow the scheduler's exact "
        "64-bit priority arithmetic");
  if (oblivious_batch_min_layer == 0)
    return Status::InvalidArgument(
        "oblivious_batch_min_layer must be >= 1 (1 = always pool-split)");
  if (sort_algorithm != SortAlgorithm::kBatcher &&
      sort_algorithm != SortAlgorithm::kShuffleSort)
    return Status::InvalidArgument(
        "sort_algorithm must be batcher or shuffle_sort");
  for (const UploadPolicyConfig* policy :
       {&upload_policy1, &upload_policy2}) {
    if (policy->kind != UploadPolicyKind::kFixedSize &&
        policy->eps_sync <= 0) {
      return Status::InvalidArgument("DP upload policy needs eps_sync > 0");
    }
    if (policy->kind == UploadPolicyKind::kDpTimerSync &&
        policy->sync_interval == 0) {
      return Status::InvalidArgument("sync_interval must be positive");
    }
    if (policy->kind == UploadPolicyKind::kDpAntSync &&
        policy->sync_theta < 0) {
      return Status::InvalidArgument("sync_theta must be non-negative");
    }
  }
  if (max_batches_per_step == 0)
    return Status::InvalidArgument("max_batches_per_step must be >= 1");
  if (upload_channel_capacity == 0)
    return Status::InvalidArgument("upload_channel_capacity must be >= 1");
  if (checkpoint_max_bytes < 4096)
    return Status::InvalidArgument(
        "checkpoint_max_bytes below 4096 cannot hold even an empty "
        "snapshot's header, section framing and checksum");
  return Status::OK();
}

uint64_t ConfigFingerprint(const IncShrinkConfig& config) {
  FieldHasher hasher;
  // Every field a running engine's behavior depends on, in declaration
  // order. Deliberately excluded: cache_shard_threads and
  // oblivious_batch_min_layer (scheduling only — results are bit-identical
  // at any value, and a tenant must be able to migrate to a process with a
  // different worker budget), and the checkpoint knobs themselves (a
  // snapshot from an auto-checkpointing run restores fine into an engine
  // that checkpoints on demand only).
  hasher.F64(config.eps);
  hasher.U64(config.omega);
  hasher.U64(config.budget_b);
  hasher.U64(static_cast<uint64_t>(config.view_kind));
  hasher.U64(config.join.window_lo);
  hasher.U64(config.join.window_hi);
  hasher.Byte(config.join.use_window ? 1 : 0);
  hasher.U64(config.join.omega);
  hasher.U64(config.filter.lo);
  hasher.U64(config.filter.hi);
  hasher.U64(config.window_steps);
  hasher.U64(static_cast<uint64_t>(config.op));
  hasher.Byte(config.t2_is_public ? 1 : 0);
  hasher.U64(static_cast<uint64_t>(config.strategy));
  hasher.U64(config.timer_T);
  hasher.F64(config.ant_theta);
  hasher.U64(config.flush_interval);
  hasher.U64(config.flush_size);
  hasher.U64(config.num_cache_shards);
  hasher.U64(config.sla_weight);
  hasher.U64(static_cast<uint64_t>(config.sort_algorithm));
  hasher.U64(config.upload_rows_t1);
  hasher.U64(config.upload_rows_t2);
  for (const UploadPolicyConfig* policy :
       {&config.upload_policy1, &config.upload_policy2}) {
    hasher.U64(static_cast<uint64_t>(policy->kind));
    hasher.F64(policy->eps_sync);
    hasher.U64(policy->sync_interval);
    hasher.F64(policy->sync_theta);
  }
  hasher.U64(config.max_batches_per_step);
  hasher.U64(config.upload_channel_capacity);
  hasher.Byte(config.compact_transform_output ? 1 : 0);
  hasher.F64(config.cost_model.seconds_per_and_gate);
  hasher.F64(config.cost_model.seconds_per_byte);
  hasher.F64(config.cost_model.seconds_per_round);
  hasher.F64(config.cost_model.bytes_per_and_gate);
  hasher.U64(config.seed);
  return hasher.h;
}

}  // namespace incshrink
