#include "src/core/config.h"

namespace incshrink {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDpTimer:
      return "DP-Timer";
    case Strategy::kDpAnt:
      return "DP-ANT";
    case Strategy::kEp:
      return "EP";
    case Strategy::kOtm:
      return "OTM";
    case Strategy::kNm:
      return "NM";
  }
  return "Unknown";
}

Status IncShrinkConfig::Validate() const {
  if (eps <= 0) return Status::InvalidArgument("eps must be positive");
  if (omega == 0) return Status::InvalidArgument("omega must be positive");
  if (budget_b < omega)
    return Status::InvalidArgument("budget b must be >= omega");
  if (view_kind == ViewKind::kWindowJoin && join.omega != omega)
    return Status::InvalidArgument("join.omega must equal omega");
  if (view_kind == ViewKind::kFilter && filter.lo > filter.hi)
    return Status::InvalidArgument("filter range is empty");
  if (strategy == Strategy::kDpTimer && timer_T == 0)
    return Status::InvalidArgument("timer T must be positive");
  if (strategy == Strategy::kDpAnt && ant_theta <= 0)
    return Status::InvalidArgument("ANT threshold must be positive");
  if (upload_rows_t1 == 0 || upload_rows_t2 == 0)
    return Status::InvalidArgument("upload batch sizes must be positive");
  if (num_cache_shards == 0)
    return Status::InvalidArgument("num_cache_shards must be >= 1");
  if (num_cache_shards > 256)
    return Status::InvalidArgument("num_cache_shards above 256 is surely "
                                   "a configuration error");
  if (cache_shard_threads < 0)
    return Status::InvalidArgument("cache_shard_threads must be >= 0");
  if (sla_weight == 0)
    return Status::InvalidArgument("sla_weight must be >= 1");
  if (sla_weight > (1u << 20))
    return Status::InvalidArgument(
        "sla_weight above 2^20 would overflow the scheduler's exact "
        "64-bit priority arithmetic");
  if (oblivious_batch_min_layer == 0)
    return Status::InvalidArgument(
        "oblivious_batch_min_layer must be >= 1 (1 = always pool-split)");
  if (sort_algorithm != SortAlgorithm::kBatcher &&
      sort_algorithm != SortAlgorithm::kShuffleSort)
    return Status::InvalidArgument(
        "sort_algorithm must be batcher or shuffle_sort");
  for (const UploadPolicyConfig* policy :
       {&upload_policy1, &upload_policy2}) {
    if (policy->kind != UploadPolicyKind::kFixedSize &&
        policy->eps_sync <= 0) {
      return Status::InvalidArgument("DP upload policy needs eps_sync > 0");
    }
    if (policy->kind == UploadPolicyKind::kDpTimerSync &&
        policy->sync_interval == 0) {
      return Status::InvalidArgument("sync_interval must be positive");
    }
    if (policy->kind == UploadPolicyKind::kDpAntSync &&
        policy->sync_theta < 0) {
      return Status::InvalidArgument("sync_theta must be non-negative");
    }
  }
  if (max_batches_per_step == 0)
    return Status::InvalidArgument("max_batches_per_step must be >= 1");
  if (upload_channel_capacity == 0)
    return Status::InvalidArgument("upload_channel_capacity must be >= 1");
  return Status::OK();
}

}  // namespace incshrink
