#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/workload/generators.h"

namespace incshrink {

/// Protocol seed of tenant `i` in a fleet rooted at `root_seed`: a
/// splitmix64 substream, so tenants are statistically independent yet every
/// tenant's engine can be reconstructed standalone (the equivalence tests
/// rely on this being public and stable).
uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index);

/// \brief A multi-tenant deployment fleet: N fully independent IncShrink
/// deployments (distinct view definitions, update strategies and streams)
/// served side by side, the shape Shrinkwrap/DP-Sync frame the server side
/// as — one shared service answering many DP-protected instances.
///
/// Tenants never share protocol state: each owns its Engine, parties,
/// accountant and RNG substream, so stepping them concurrently is
/// observationally identical to stepping them one at a time. The fleet's
/// only cross-tenant artifacts are aggregate throughput counters.
class DeploymentFleet {
 public:
  struct TenantSpec {
    std::string name;
    /// Per-tenant deployment config. `config.seed` is *ignored*; the fleet
    /// overrides it with DeriveTenantSeed(root_seed, index).
    IncShrinkConfig config;
    /// Non-owning: the stream must outlive the fleet. Streams may be shared
    /// between tenants (each tenant still runs its own noise realization).
    const GeneratedWorkload* workload = nullptr;
  };

  struct Options {
    uint64_t root_seed = 42;
    int num_threads = 0;  ///< 0 = INCSHRINK_THREADS / hardware concurrency
  };

  DeploymentFleet(std::vector<TenantSpec> tenants, const Options& options);

  /// Advances every tenant that still has stream left by one step,
  /// concurrently across the pool. Returns how many tenants stepped
  /// (0 == the whole fleet has consumed its streams).
  size_t StepAll();

  /// Steps until every tenant has consumed its stream.
  void RunAll();

  bool done() const;
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant(size_t i) const { return tenants_[i]; }
  const Engine& engine(size_t i) const { return *engines_[i]; }
  uint64_t tenant_seed(size_t i) const;
  RunSummary TenantSummary(size_t i) const { return engines_[i]->Summary(); }

  /// Fleet-wide work counters (simulated protocol time, not wall time —
  /// wall-clock throughput is measured by bench_fleet_scaling around
  /// RunAll, outside the deterministic core).
  struct FleetStats {
    uint64_t rounds = 0;        ///< StepAll invocations so far
    uint64_t engine_steps = 0;  ///< total tenant-steps executed
    double simulated_mpc_seconds = 0;
    double simulated_query_seconds = 0;
  };
  FleetStats AggregateStats() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  std::vector<TenantSpec> tenants_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<uint64_t> cursor_;  ///< next stream index per tenant
  uint64_t rounds_ = 0;
  ThreadPool pool_;
};

}  // namespace incshrink
