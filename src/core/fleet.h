#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"

namespace incshrink {

/// Protocol seed of tenant `i` in a fleet rooted at `root_seed`: a
/// splitmix64 substream, so tenants are statistically independent yet every
/// tenant's engine can be reconstructed standalone (the equivalence tests
/// rely on this being public and stable).
uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index);

/// \brief A multi-tenant deployment fleet: N fully independent IncShrink
/// deployments (distinct view definitions, update strategies and streams)
/// served side by side, the shape Shrinkwrap/DP-Sync frame the server side
/// as — one shared service answering many DP-protected instances.
///
/// Tenants never share protocol state: each owns its Engine, owner clients,
/// upload channels, parties, accountant and RNG substream, so stepping them
/// concurrently is observationally identical to stepping them one at a
/// time. The fleet's only cross-tenant artifacts are aggregate throughput
/// counters.
///
/// Each round, a tenant task first runs the *owner phase* — its OwnerClients
/// push upload frames until they reach the configured lead over the engine
/// or the channel backpressures — and then the *engine phase*: the engine
/// steps once iff frames are queued, draining up to its
/// `max_batches_per_step`. Scheduling is queue-depth aware by construction
/// (a backlogged tenant's engine catches up on several owner steps in one
/// engine step) yet fully deterministic: both phases depend only on public
/// clocks and queue depths, never on worker scheduling.
class DeploymentFleet {
 public:
  struct TenantSpec {
    std::string name;
    /// Per-tenant deployment config. `config.seed` is *ignored*; the fleet
    /// overrides it with DeriveTenantSeed(root_seed, index).
    IncShrinkConfig config;
    /// Non-owning: the stream must outlive the fleet. Streams may be shared
    /// between tenants (each tenant still runs its own noise realization).
    const GeneratedWorkload* workload = nullptr;
  };

  struct Options {
    uint64_t root_seed = 42;
    int num_threads = 0;  ///< 0 = INCSHRINK_THREADS / hardware concurrency
    /// How many steps tenants' owners may run ahead of their engines. 0
    /// (the default) is lockstep: one frame pair produced and drained per
    /// round — the pre-transport fleet cadence, bit for bit. Leads are
    /// additionally bounded by the channel capacity (public backpressure).
    uint32_t owner_lead = 0;
    /// Cross-tenant sort coalescing: when set, every round splits tenant
    /// steps into BeginStep (plan) / FinishStep (commit) phases and fuses
    /// all tenants' fired cache sorts into one ObliviousSortBatch
    /// submission between them, so same-shaped sorting networks advance in
    /// shared layer rounds on the fleet pool instead of serializing tenant
    /// by tenant. Scheduling only: every tenant's protocol stream is
    /// untouched (jobs run on pairwise-distinct protocols), so summaries
    /// and transcripts are bit-identical to the unfused fleet at any
    /// thread count (tests/batched_oblivious_test.cc).
    bool coalesce_sorts = false;
    /// `oblivious_batch_min_layer` of the fused cross-tenant submissions.
    uint32_t batch_min_layer = 128;
  };

  DeploymentFleet(std::vector<TenantSpec> tenants, const Options& options);

  /// Advances every tenant that still has stream left (or frames queued) by
  /// one round, concurrently across the pool. Returns how many tenants were
  /// live this round (0 == the whole fleet is drained).
  size_t StepAll();

  /// Steps until every tenant has consumed and drained its stream.
  void RunAll();

  bool done() const;
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant(size_t i) const { return tenants_[i]; }
  const Engine& engine(size_t i) const { return *engines_[i]; }
  const OwnerClient& owner1(size_t i) const { return *owners1_[i]; }
  const OwnerClient& owner2(size_t i) const { return *owners2_[i]; }
  /// Frames queued but not yet drained by tenant `i`'s engine.
  size_t QueueDepth(size_t i) const { return engines_[i]->queue_depth(); }
  uint64_t tenant_seed(size_t i) const;
  RunSummary TenantSummary(size_t i) const { return engines_[i]->Summary(); }

  /// Fleet-wide work counters (simulated protocol time, not wall time —
  /// wall-clock throughput is measured by bench_fleet_scaling around
  /// RunAll, outside the deterministic core).
  struct FleetStats {
    uint64_t rounds = 0;        ///< StepAll invocations so far
    uint64_t engine_steps = 0;  ///< total tenant-steps executed
    uint64_t upload_frames = 0;       ///< frames pushed across all channels
    uint64_t upload_backpressure = 0; ///< refused pushes (channels full)
    uint64_t max_queue_depth = 0;     ///< deepest any channel ever got
    uint64_t fused_sort_jobs = 0;        ///< tenant sorts run coalesced
    uint64_t fused_sort_submissions = 0; ///< cross-tenant batch submissions
    double simulated_mpc_seconds = 0;
    double simulated_query_seconds = 0;
  };
  FleetStats AggregateStats() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  std::vector<TenantSpec> tenants_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<OwnerClient>> owners1_;
  std::vector<std::unique_ptr<OwnerClient>> owners2_;
  std::vector<uint64_t> cursor_;  ///< next stream index per tenant's owners
  uint32_t owner_lead_;
  bool coalesce_sorts_;
  uint32_t batch_min_layer_;
  uint64_t rounds_ = 0;
  uint64_t fused_sort_jobs_ = 0;
  uint64_t fused_sort_submissions_ = 0;
  ThreadPool pool_;
};

}  // namespace incshrink
