#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/owner_client.h"
#include "src/workload/generators.h"

namespace incshrink {

/// Protocol seed of tenant `i` in a fleet rooted at `root_seed`: a
/// splitmix64 substream, so tenants are statistically independent yet every
/// tenant's engine can be reconstructed standalone (the equivalence tests
/// rely on this being public and stable).
uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index);

/// \brief A multi-tenant deployment fleet: N fully independent IncShrink
/// deployments (distinct view definitions, update strategies and streams)
/// served side by side, the shape Shrinkwrap/DP-Sync frame the server side
/// as — one shared service answering many DP-protected instances.
///
/// Tenants never share protocol state: each owns its Engine, owner clients,
/// upload channels, parties, accountant and RNG substream, so stepping them
/// concurrently is observationally identical to stepping them one at a
/// time. The fleet's only cross-tenant artifacts are aggregate throughput
/// counters and the (public) service schedule.
///
/// Two round disciplines:
///
///  * **Lockstep sweep** (`scheduler.enabled == false`, the default, and
///    the benchmarking cadence since PR 2): every live tenant runs one
///    round task — owner pushes up to the configured lead, then one engine
///    step iff frames are queued.
///
///  * **Deterministic priority scheduler** (`scheduler.enabled == true`,
///    the traffic-serving cadence): arrivals are exogenous — every live
///    tenant's owners still push each round — but *engine service* is
///    rationed. Each round the fleet computes a public priority key per
///    backlogged tenant,
///
///        key(i) = sla_weight_i * (depth_weight * queue_depth_i + urgency_i)
///                 + aging_weight * age_i,
///
///    where urgency_i = max(0, H - StepsToNextPublicRelease(i)) pulls
///    tenants whose next publicly scheduled DP release (timer fire / cache
///    flush) is near, and age_i counts backlogged rounds since tenant i was
///    last serviced. The top `services_per_round` tenants by the fixed
///    total order (key descending, tenant id ascending) receive an engine
///    step; everyone else ages. Every input is public — queue depths,
///    clocks, config weights — so the schedule is a function of public
///    state only and can never leak secret cache contents
///    (tests/oblivious_invariants_test.cc), and it is computed serially
///    before any worker runs, so it is bit-identical at any thread count.
///
///    Starvation-freedom: base priorities are bounded (depths by channel
///    capacity, urgency by H, weights by config), while age grows
///    unboundedly, one unit per backlogged round. A continuously backlogged
///    tenant is therefore serviced within StarvationBoundRounds() rounds of
///    its previous service — see the proof sketch on that accessor.
///
///    With uniform weights and services_per_round >= the tenant count (or
///    0 = "all"), every backlogged tenant is selected every round and the
///    scheduler reproduces the lockstep sweep bit for bit
///    (tests/fleet_scheduler_test.cc).
class DeploymentFleet {
 public:
  struct TenantSpec {
    std::string name;
    /// Per-tenant deployment config. `config.seed` is *ignored*; the fleet
    /// overrides it with DeriveTenantSeed(root_seed, index).
    /// `config.sla_weight` is the tenant's scheduling weight.
    IncShrinkConfig config;
    /// Non-owning: the stream must outlive the fleet. Streams may be shared
    /// between tenants (each tenant still runs its own noise realization).
    const GeneratedWorkload* workload = nullptr;
  };

  /// Knobs of the deterministic priority scheduler. All fields are public
  /// constants; none may ever be derived from secret state.
  struct SchedulerOptions {
    /// Off (default): the legacy lockstep sweep, untouched.
    bool enabled = false;
    /// B: engine services granted per round. 0 = every backlogged tenant
    /// (with uniform weights this reproduces the lockstep sweep exactly).
    uint32_t services_per_round = 0;
    /// A: priority gained per backlogged-but-unserviced round. Must be
    /// >= 1 — aging is what guarantees starvation-freedom; larger values
    /// tighten the bound (see StarvationBoundRounds).
    uint32_t aging_weight = 1;
    /// Priority per queued upload frame (scaled by the tenant's
    /// sla_weight).
    uint32_t depth_weight = 1;
    /// H: deadline look-ahead horizon. A tenant whose next public DP
    /// release is d <= H engine steps away gains H - d priority (scaled by
    /// sla_weight); releases further out contribute nothing.
    uint32_t deadline_horizon = 16;
  };

  struct Options {
    uint64_t root_seed = 42;
    int num_threads = 0;  ///< 0 = INCSHRINK_THREADS / hardware concurrency
    /// How many steps tenants' owners may run ahead of their engines. 0
    /// (the default) is lockstep: one frame pair produced and drained per
    /// round — the pre-transport fleet cadence, bit for bit. Leads are
    /// additionally bounded by the channel capacity (public backpressure).
    uint32_t owner_lead = 0;
    /// Cross-tenant sort coalescing: when set, every round splits tenant
    /// steps into BeginStep (plan) / FinishStep (commit) phases and fuses
    /// all tenants' fired cache sorts into one ObliviousSortBatch
    /// submission between them, so same-shaped sorting networks advance in
    /// shared layer rounds on the fleet pool instead of serializing tenant
    /// by tenant. Scheduling only: every tenant's protocol stream is
    /// untouched (jobs run on pairwise-distinct protocols), so summaries
    /// and transcripts are bit-identical to the unfused fleet at any
    /// thread count (tests/batched_oblivious_test.cc). Composes with the
    /// priority scheduler: the fused submission spans whichever tenants
    /// were selected this round.
    bool coalesce_sorts = false;
    /// `oblivious_batch_min_layer` of the fused cross-tenant submissions.
    uint32_t batch_min_layer = 128;
    /// Deterministic deadline/priority service discipline (see class
    /// comment). Default-constructed = disabled = the legacy sweep.
    SchedulerOptions scheduler{};
  };

  DeploymentFleet(std::vector<TenantSpec> tenants, const Options& options);

  /// Advances the fleet by one round (see class comment for the two round
  /// disciplines), concurrently across the pool. Returns how many tenants
  /// were live this round (0 == the whole fleet is drained).
  size_t StepAll();

  /// Steps until every tenant has consumed and drained its stream.
  void RunAll();

  bool done() const;
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant(size_t i) const { return tenants_[i]; }
  const Engine& engine(size_t i) const { return *engines_[i]; }
  const OwnerClient& owner1(size_t i) const { return *owners1_[i]; }
  const OwnerClient& owner2(size_t i) const { return *owners2_[i]; }
  /// Frames queued but not yet drained by tenant `i`'s engine.
  size_t QueueDepth(size_t i) const { return engines_[i]->queue_depth(); }
  uint64_t tenant_seed(size_t i) const;
  RunSummary TenantSummary(size_t i) const { return engines_[i]->Summary(); }

  /// Serializes tenant `i` — its engine (with channel backlogs), both
  /// owners, and the fleet-side scheduling state (stream cursor, age,
  /// service history) — into one ICKP snapshot. Together with RestoreTenant
  /// this is live tenant migration: a tenant checkpointed out of one fleet
  /// resumes bit-identically inside another fleet built from the same specs
  /// (worker budgets may differ — scheduling knobs are excluded from the
  /// config fingerprint).
  Result<std::vector<uint8_t>> CheckpointTenant(size_t i);

  /// Restores a CheckpointTenant blob into slot `i`, whose spec must match
  /// the blob's config fingerprint. Atomic: a malformed or mismatched
  /// snapshot is rejected with a Status and the tenant keeps running on its
  /// prior state.
  Status RestoreTenant(size_t i, const std::vector<uint8_t>& snapshot);

  /// The public priority key of tenant `i` for the *next* round, exactly as
  /// the scheduler would compute it now. Exposed for tests and benches; a
  /// pure function of public state (queue depth, engine clock, config
  /// weights, age counter).
  uint64_t PriorityKey(size_t i) const;

  /// Upper bound, in rounds, on how long a *continuously backlogged*
  /// tenant can wait between engine services under the priority scheduler:
  ///
  ///     D + ceil((N - 1) / B) + 1,   D = floor(Pmax / A),
  ///
  /// where Pmax bounds every tenant's base (age-free) priority —
  /// sla_weight * (depth_weight * channel_capacity + deadline_horizon) —
  /// A is the aging weight and B the per-round service budget. Sketch: a
  /// tenant j can outrank an aged tenant i only while
  /// A * (age_i - age_j) <= Pmax, i.e. only if j's last service was within
  /// D rounds of i's; once serviced later than that, j never outranks i
  /// again. So after D rounds the set of possible over-rankers (at most
  /// N - 1 tenants) only shrinks — every round i is passed over, all B
  /// serviced tenants leave it permanently — and it empties within
  /// ceil((N - 1) / B) further rounds. Property-tested under adversarial
  /// weight/depth patterns in tests/fleet_scheduler_test.cc. Returns 1 when
  /// the scheduler is disabled (lockstep services every live tenant every
  /// round).
  uint64_t StarvationBoundRounds() const;

  /// Per-round service schedule: schedule_log()[r] lists the tenants
  /// granted an engine step in round r, in service (priority) order.
  /// Recorded only while the priority scheduler is enabled. Public by
  /// construction — equal-shaped fleets with different secret contents log
  /// identical schedules (tests/oblivious_invariants_test.cc).
  const std::vector<std::vector<uint32_t>>& schedule_log() const {
    return schedule_log_;
  }

  /// Fleet-wide work counters (simulated protocol time, not wall time —
  /// wall-clock throughput is measured by bench_fleet_scaling around
  /// RunAll, outside the deterministic core).
  struct TenantServiceStats {
    uint64_t services = 0;  ///< engine steps granted to this tenant
    /// Nearest-rank percentiles and maximum of the tenant's service
    /// latency: rounds elapsed between consecutive engine services (1 =
    /// serviced every round, as in lockstep).
    uint64_t gap_p50 = 0;
    uint64_t gap_p95 = 0;
    uint64_t gap_p99 = 0;
    uint64_t gap_max = 0;
  };
  struct FleetStats {
    uint64_t rounds = 0;        ///< StepAll invocations so far
    uint64_t engine_steps = 0;  ///< total tenant-steps executed
    uint64_t upload_frames = 0;       ///< frames pushed across all channels
    uint64_t upload_backpressure = 0; ///< refused pushes (channels full)
    /// Deepest any channel ever got — the true high-water mark, tracked at
    /// push time inside UploadChannel (never sampled at round boundaries,
    /// which would miss intra-round peaks under an owner lead).
    uint64_t max_queue_depth = 0;
    uint64_t fused_sort_jobs = 0;        ///< tenant sorts run coalesced
    uint64_t fused_sort_submissions = 0; ///< cross-tenant batch submissions
    double simulated_mpc_seconds = 0;
    double simulated_query_seconds = 0;
    /// Per-tenant service-latency stats, indexed like the tenant specs.
    std::vector<TenantServiceStats> tenant_service;
    /// Jain fairness index of weighted service counts
    /// (services_i / sla_weight_i): 1.0 = perfectly weight-proportional
    /// service, 1/N = one tenant received everything.
    double jain_fairness = 1.0;
  };
  FleetStats AggregateStats() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  /// Owner phase of tenant `i`: push frames up to the configured lead over
  /// the engine's clock (both round disciplines run exactly this).
  void RunOwnerPhase(size_t i);

  /// Engine phase for the round's `serve` set (tenant indices): plain
  /// Step(), or the BeginStep / fused cross-tenant sort / FinishStep split
  /// when `coalesce_sorts` is set. Shared by both round disciplines.
  void ServiceTenants(const std::vector<size_t>& serve);

  /// Service-latency bookkeeping for a tenant granted an engine step in the
  /// current round.
  void RecordService(size_t i);

  size_t StepAllLockstep();
  size_t StepAllScheduled();

  std::vector<TenantSpec> tenants_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<OwnerClient>> owners1_;
  std::vector<std::unique_ptr<OwnerClient>> owners2_;
  std::vector<uint64_t> cursor_;  ///< next stream index per tenant's owners
  uint32_t owner_lead_;
  bool coalesce_sorts_;
  uint32_t batch_min_layer_;
  SchedulerOptions scheduler_;
  /// Backlogged-but-unserviced rounds per tenant (scheduler aging term).
  std::vector<uint64_t> age_;
  std::vector<uint64_t> services_;            ///< engine steps per tenant
  std::vector<uint64_t> last_service_round_;  ///< 0 = never serviced
  std::vector<std::vector<uint64_t>> service_gaps_;  ///< rounds between
  std::vector<std::vector<uint32_t>> schedule_log_;
  uint64_t rounds_ = 0;
  uint64_t fused_sort_jobs_ = 0;
  uint64_t fused_sort_submissions_ = 0;
  ThreadPool pool_;
};

}  // namespace incshrink
