#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/stats.h"

namespace incshrink {

/// \brief Per-step measurements recorded by the engine: everything needed to
/// regenerate the paper's tables and figures.
struct StepMetrics {
  uint64_t t = 0;
  double transform_seconds = 0;  ///< simulated MPC time of Transform
  double shrink_seconds = 0;     ///< simulated MPC time of Shrink (+flush)
  double query_seconds = 0;      ///< simulated QET of this step's query
  uint64_t true_count = 0;       ///< q_t(D_t), ground truth
  uint64_t view_answer = 0;      ///< q~_t(V_t), the server's answer
  double l1_error = 0;           ///< |view_answer - true_count|
  double relative_error = 0;     ///< l1 / max(1, true_count)
  uint64_t view_rows = 0;        ///< padded rows currently in V
  uint64_t cache_rows = 0;       ///< padded rows currently in sigma
  bool synced = false;
  uint64_t sync_rows = 0;
  bool flushed = false;
};

/// \brief Aggregates over a full run — the rows of Table 2.
struct RunSummary {
  RunningStat l1_error;
  RunningStat relative_error;
  RunningStat true_count_stat;
  RunningStat qet_seconds;
  RunningStat transform_seconds;  ///< per Transform invocation
  RunningStat shrink_seconds;     ///< per *fired* Shrink update
  double total_mpc_seconds = 0;   ///< transform + shrink + flush (simulated)
  double total_query_seconds = 0; ///< sum of QETs (simulated)
  double final_view_mb = 0;
  uint64_t final_view_rows = 0;
  uint64_t final_cache_rows = 0;
  uint64_t updates = 0;   ///< fired Shrink syncs
  uint64_t flushes = 0;
  uint64_t steps = 0;
  uint64_t total_real_entries_cached = 0;  ///< sum of Transform real outputs
  uint64_t final_true_count = 0;

  /// Run-level relative error — mean |error| over mean true answer. This is
  /// the "Relative Error" statistic of the paper's Table 2 (an OTM view
  /// that never updates scores exactly 1).
  double OverallRelativeError() const {
    if (true_count_stat.mean() <= 0) return 0.0;
    return l1_error.mean() / true_count_stat.mean();
  }
};

/// Nearest-rank percentile of an (unsorted) integer sample set: the smallest
/// sample s such that at least pct% of the samples are <= s. Exact integer
/// arithmetic, 0 for an empty set. Used for the fleet's per-tenant
/// service-latency stats (rounds between engine services).
inline uint64_t NearestRankPercentile(std::vector<uint64_t> samples,
                                      uint32_t pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  // rank = ceil(pct/100 * n), 1-based; pct is clamped to [1, 100].
  const uint64_t n = samples.size();
  const uint64_t p = pct == 0 ? 1 : (pct > 100 ? 100 : pct);
  uint64_t rank = (p * n + 99) / 100;
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

/// Jain fairness index of a non-negative allocation vector:
/// (sum x)^2 / (n * sum x^2). 1.0 means perfectly even service, 1/n means
/// one tenant received everything. Degenerate inputs (empty, all-zero)
/// report 1.0 — an idle fleet is trivially fair.
inline double JainFairnessIndex(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

}  // namespace incshrink
