#include "src/core/fleet.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index) {
  // One splitmix64 scramble of (root, index): the same expansion Rng uses
  // for its own state, so adjacent tenant indices yield unrelated streams.
  uint64_t z = root_seed +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(tenant_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

DeploymentFleet::DeploymentFleet(std::vector<TenantSpec> tenants,
                                 const Options& options)
    : tenants_(std::move(tenants)),
      cursor_(tenants_.size(), 0),
      // Workers beyond the tenant count would only collect idle wakeups
      // every StepAll round.
      pool_(static_cast<int>(std::min<size_t>(
          static_cast<size_t>(ResolveThreadCount(options.num_threads)),
          std::max<size_t>(tenants_.size(), 1)))) {
  engines_.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    INCSHRINK_CHECK(tenants_[i].workload != nullptr);
    tenants_[i].config.seed = DeriveTenantSeed(options.root_seed, i);
    engines_.push_back(std::make_unique<Engine>(tenants_[i].config));
  }
}

uint64_t DeploymentFleet::tenant_seed(size_t i) const {
  return tenants_[i].config.seed;
}

bool DeploymentFleet::done() const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps()) return false;
  }
  return true;
}

size_t DeploymentFleet::StepAll() {
  // The set of tenants that step this round is decided up front (it depends
  // only on the cursors, never on scheduling), then executed concurrently:
  // each task touches exactly one tenant's engine and cursor.
  std::vector<size_t> live;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps()) live.push_back(i);
  }
  if (live.empty()) return 0;
  ++rounds_;
  pool_.ParallelFor(live.size(), [&](size_t k) {
    const size_t i = live[k];
    const GeneratedWorkload& w = *tenants_[i].workload;
    const uint64_t t = cursor_[i]++;
    const Status st = engines_[i]->Step(w.t1[t], w.t2[t]);
    INCSHRINK_CHECK(st.ok());
  });
  return live.size();
}

void DeploymentFleet::RunAll() {
  while (StepAll() > 0) {
  }
}

DeploymentFleet::FleetStats DeploymentFleet::AggregateStats() const {
  FleetStats stats;
  stats.rounds = rounds_;
  for (const std::unique_ptr<Engine>& e : engines_) {
    const RunSummary s = e->Summary();
    stats.engine_steps += s.steps;
    stats.simulated_mpc_seconds += s.total_mpc_seconds;
    stats.simulated_query_seconds += s.total_query_seconds;
  }
  return stats;
}

}  // namespace incshrink
