#include "src/core/fleet.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index) {
  // One splitmix64 scramble of (root, index): the same expansion Rng uses
  // for its own state, so adjacent tenant indices yield unrelated streams.
  uint64_t z = root_seed +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(tenant_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

DeploymentFleet::DeploymentFleet(std::vector<TenantSpec> tenants,
                                 const Options& options)
    : tenants_(std::move(tenants)),
      cursor_(tenants_.size(), 0),
      owner_lead_(options.owner_lead),
      coalesce_sorts_(options.coalesce_sorts),
      batch_min_layer_(options.batch_min_layer),
      // Workers beyond the tenant count would only collect idle wakeups
      // every StepAll round.
      pool_(static_cast<int>(std::min<size_t>(
          static_cast<size_t>(ResolveThreadCount(options.num_threads)),
          std::max<size_t>(tenants_.size(), 1)))) {
  engines_.reserve(tenants_.size());
  owners1_.reserve(tenants_.size());
  owners2_.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    INCSHRINK_CHECK(tenants_[i].workload != nullptr);
    tenants_[i].config.seed = DeriveTenantSeed(options.root_seed, i);
    engines_.push_back(std::make_unique<Engine>(tenants_[i].config));
    Engine* engine = engines_.back().get();
    owners1_.push_back(std::make_unique<OwnerClient>(
        MakeOwner1(tenants_[i].config, engine->channel1())));
    owners2_.push_back(std::make_unique<OwnerClient>(
        MakeOwner2(tenants_[i].config, engine->channel2())));
  }
}

uint64_t DeploymentFleet::tenant_seed(size_t i) const {
  return tenants_[i].config.seed;
}

bool DeploymentFleet::done() const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps()) return false;
    if (engines_[i]->queue_depth() > 0) return false;
  }
  return true;
}

size_t DeploymentFleet::StepAll() {
  // The set of tenants that participate in this round is decided up front
  // (it depends only on the cursors and queue depths, never on scheduling),
  // then executed concurrently: each task touches exactly one tenant's
  // owners, channels, engine and cursor, so any interleaving of tasks
  // yields the same per-tenant state.
  std::vector<size_t> live;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps() ||
        engines_[i]->queue_depth() > 0) {
      live.push_back(i);
    }
  }
  if (live.empty()) return 0;
  ++rounds_;
  // Phase A — per-tenant, concurrent: owner pushes plus either the whole
  // engine step (unfused) or its BeginStep half (coalescing). Each task
  // touches only tenant i's state.
  std::vector<std::vector<SortJob>> tenant_jobs(live.size());
  std::vector<uint8_t> stepped(live.size(), 0);
  pool_.ParallelFor(live.size(), [&](size_t k) {
    const size_t i = live[k];
    const GeneratedWorkload& w = *tenants_[i].workload;
    Engine& engine = *engines_[i];
    const bool join_view =
        tenants_[i].config.view_kind != ViewKind::kFilter;
    // Owner phase: push frames up to the configured lead over the engine's
    // clock. The owner pair advances atomically (both channels must have
    // room) so the T1/T2 frame streams stay aligned; a full channel is
    // public backpressure and simply retries next round.
    const uint64_t horizon = engine.current_step() + 1 + owner_lead_;
    while (cursor_[i] < w.steps() && cursor_[i] < horizon) {
      const uint64_t t = cursor_[i];
      // T1 leads the pair: its refusal is the recorded backpressure event.
      // The channels always hold equal depths (frames are pushed and
      // drained strictly in pairs), so if T1's push lands, T2's must too.
      if (!owners1_[i]->TryStep(w.t1[t])) break;
      if (join_view) INCSHRINK_CHECK(owners2_[i]->TryStep(w.t2[t]));
      ++cursor_[i];
    }
    // Engine phase: step iff frames are queued; a backlogged tenant drains
    // up to max_batches_per_step owner steps in this one engine step.
    if (engine.queue_depth() > 0) {
      if (!coalesce_sorts_) {
        INCSHRINK_CHECK(engine.Step().ok());
      } else {
        INCSHRINK_CHECK(engine.BeginStep().ok());
        tenant_jobs[k] = engine.TakePendingSortJobs();
        stepped[k] = 1;
      }
    }
  });
  if (!coalesce_sorts_) return live.size();

  // Phase B — the fused cross-tenant submission: every fired shard sort of
  // every stepped tenant advances through its network in shared layer
  // rounds on the fleet pool. Jobs run on pairwise-distinct protocols (one
  // per tenant shard), so each tenant's randomness stream and cost totals
  // are exactly those of an unfused round.
  std::vector<SortJob> fused;
  for (std::vector<SortJob>& jobs : tenant_jobs) {
    fused.insert(fused.end(), jobs.begin(), jobs.end());
  }
  if (!fused.empty()) {
    ObliviousSortBatch(fused.data(), fused.size(),
                       BatchExec{&pool_, batch_min_layer_});
    fused_sort_jobs_ += fused.size();
    ++fused_sort_submissions_;
  }

  // Phase C — per-tenant commits, concurrent again.
  pool_.ParallelFor(live.size(), [&](size_t k) {
    if (stepped[k]) INCSHRINK_CHECK(engines_[live[k]]->FinishStep().ok());
  });
  return live.size();
}

void DeploymentFleet::RunAll() {
  while (StepAll() > 0) {
  }
}

DeploymentFleet::FleetStats DeploymentFleet::AggregateStats() const {
  FleetStats stats;
  stats.rounds = rounds_;
  stats.fused_sort_jobs = fused_sort_jobs_;
  stats.fused_sort_submissions = fused_sort_submissions_;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const RunSummary s = engines_[i]->Summary();
    stats.engine_steps += s.steps;
    stats.simulated_mpc_seconds += s.total_mpc_seconds;
    stats.simulated_query_seconds += s.total_query_seconds;
    for (UploadChannel* ch :
         {engines_[i]->channel1(), engines_[i]->channel2()}) {
      stats.upload_frames += ch->frames_pushed();
      stats.upload_backpressure += ch->push_rejects();
      stats.max_queue_depth =
          std::max<uint64_t>(stats.max_queue_depth, ch->max_depth());
    }
  }
  return stats;
}

}  // namespace incshrink
