#include "src/core/fleet.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/storage/checkpoint.h"

namespace incshrink {

namespace {

/// Priority arithmetic saturates far below 2^64 so that the aging term can
/// still be added on top of a saturated base without wrapping — an overflow
/// in the key would silently break the total order (and with it the
/// starvation bound).
constexpr uint64_t kPriorityCap = uint64_t{1} << 62;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a >= kPriorityCap || b >= kPriorityCap || a + b >= kPriorityCap) {
    return kPriorityCap;
  }
  return a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a >= kPriorityCap || b >= kPriorityCap || a > kPriorityCap / b) {
    return kPriorityCap;
  }
  return a * b;
}

}  // namespace

uint64_t DeriveTenantSeed(uint64_t root_seed, size_t tenant_index) {
  // One splitmix64 scramble of (root, index): the same expansion Rng uses
  // for its own state, so adjacent tenant indices yield unrelated streams.
  uint64_t z = root_seed +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(tenant_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

DeploymentFleet::DeploymentFleet(std::vector<TenantSpec> tenants,
                                 const Options& options)
    : tenants_(std::move(tenants)),
      cursor_(tenants_.size(), 0),
      owner_lead_(options.owner_lead),
      coalesce_sorts_(options.coalesce_sorts),
      batch_min_layer_(options.batch_min_layer),
      scheduler_(options.scheduler),
      age_(tenants_.size(), 0),
      services_(tenants_.size(), 0),
      last_service_round_(tenants_.size(), 0),
      service_gaps_(tenants_.size()),
      // Workers beyond the tenant count would only collect idle wakeups
      // every StepAll round.
      pool_(static_cast<int>(std::min<size_t>(
          static_cast<size_t>(ResolveThreadCount(options.num_threads)),
          std::max<size_t>(tenants_.size(), 1)))) {
  INCSHRINK_CHECK_GE(scheduler_.aging_weight, 1u);
  engines_.reserve(tenants_.size());
  owners1_.reserve(tenants_.size());
  owners2_.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    INCSHRINK_CHECK(tenants_[i].workload != nullptr);
    tenants_[i].config.seed = DeriveTenantSeed(options.root_seed, i);
    engines_.push_back(std::make_unique<Engine>(tenants_[i].config));
    Engine* engine = engines_.back().get();
    owners1_.push_back(std::make_unique<OwnerClient>(
        MakeOwner1(tenants_[i].config, engine->channel1())));
    owners2_.push_back(std::make_unique<OwnerClient>(
        MakeOwner2(tenants_[i].config, engine->channel2())));
  }
}

uint64_t DeploymentFleet::tenant_seed(size_t i) const {
  return tenants_[i].config.seed;
}

bool DeploymentFleet::done() const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps()) return false;
    if (engines_[i]->queue_depth() > 0) return false;
  }
  return true;
}

void DeploymentFleet::RunOwnerPhase(size_t i) {
  const GeneratedWorkload& w = *tenants_[i].workload;
  Engine& engine = *engines_[i];
  const bool join_view = tenants_[i].config.view_kind != ViewKind::kFilter;
  // Owner phase: push frames up to the configured lead over the engine's
  // clock. The owner pair advances atomically (both channels must have
  // room) so the T1/T2 frame streams stay aligned; a full channel is
  // public backpressure and simply retries next round.
  const uint64_t horizon = engine.current_step() + 1 + owner_lead_;
  while (cursor_[i] < w.steps() && cursor_[i] < horizon) {
    const uint64_t t = cursor_[i];
    // T1 leads the pair: its refusal is the recorded backpressure event.
    // The channels always hold equal depths (frames are pushed and
    // drained strictly in pairs), so if T1's push lands, T2's must too.
    if (!owners1_[i]->TryStep(w.t1[t])) break;
    if (join_view) INCSHRINK_CHECK(owners2_[i]->TryStep(w.t2[t]));
    ++cursor_[i];
  }
}

void DeploymentFleet::RecordService(size_t i) {
  ++services_[i];
  service_gaps_[i].push_back(rounds_ - last_service_round_[i]);
  last_service_round_[i] = rounds_;
}

void DeploymentFleet::ServiceTenants(const std::vector<size_t>& serve) {
  if (serve.empty()) return;
  for (const size_t i : serve) RecordService(i);
  if (!coalesce_sorts_) {
    pool_.ParallelFor(serve.size(), [&](size_t k) {
      INCSHRINK_CHECK(engines_[serve[k]]->Step().ok());
    });
    return;
  }
  // Phase split: per-tenant BeginStep (plan) concurrently, then one fused
  // cross-tenant submission — every fired shard sort of every serviced
  // tenant advances through its network in shared layer rounds on the fleet
  // pool. Jobs run on pairwise-distinct protocols (one per tenant shard),
  // so each tenant's randomness stream and cost totals are exactly those of
  // an unfused round. Finally the per-tenant commits, concurrent again.
  std::vector<std::vector<SortJob>> tenant_jobs(serve.size());
  pool_.ParallelFor(serve.size(), [&](size_t k) {
    Engine& engine = *engines_[serve[k]];
    INCSHRINK_CHECK(engine.BeginStep().ok());
    tenant_jobs[k] = engine.TakePendingSortJobs();
  });
  std::vector<SortJob> fused;
  for (std::vector<SortJob>& jobs : tenant_jobs) {
    fused.insert(fused.end(), jobs.begin(), jobs.end());
  }
  if (!fused.empty()) {
    ObliviousSortBatch(fused.data(), fused.size(),
                       BatchExec{&pool_, batch_min_layer_});
    fused_sort_jobs_ += fused.size();
    ++fused_sort_submissions_;
  }
  pool_.ParallelFor(serve.size(), [&](size_t k) {
    INCSHRINK_CHECK(engines_[serve[k]]->FinishStep().ok());
  });
}

size_t DeploymentFleet::StepAll() {
  return scheduler_.enabled ? StepAllScheduled() : StepAllLockstep();
}

size_t DeploymentFleet::StepAllLockstep() {
  // The set of tenants that participate in this round is decided up front
  // (it depends only on the cursors and queue depths, never on scheduling),
  // then executed concurrently: each task touches exactly one tenant's
  // owners, channels, engine and cursor, so any interleaving of tasks
  // yields the same per-tenant state.
  std::vector<size_t> live;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps() ||
        engines_[i]->queue_depth() > 0) {
      live.push_back(i);
    }
  }
  if (live.empty()) return 0;
  ++rounds_;
  // Phase A — per-tenant, concurrent: owner pushes plus either the whole
  // engine step (unfused) or its BeginStep half (coalescing). Each task
  // touches only tenant i's state.
  std::vector<std::vector<SortJob>> tenant_jobs(live.size());
  std::vector<uint8_t> stepped(live.size(), 0);
  pool_.ParallelFor(live.size(), [&](size_t k) {
    const size_t i = live[k];
    RunOwnerPhase(i);
    Engine& engine = *engines_[i];
    // Engine phase: step iff frames are queued; a backlogged tenant drains
    // up to max_batches_per_step owner steps in this one engine step.
    if (engine.queue_depth() > 0) {
      stepped[k] = 1;
      if (!coalesce_sorts_) {
        INCSHRINK_CHECK(engine.Step().ok());
      } else {
        INCSHRINK_CHECK(engine.BeginStep().ok());
        tenant_jobs[k] = engine.TakePendingSortJobs();
      }
    }
  });
  // Service-latency bookkeeping (stat-only; lockstep services every
  // backlogged tenant every round, so gaps here are typically all 1).
  for (size_t k = 0; k < live.size(); ++k) {
    if (stepped[k]) RecordService(live[k]);
  }
  if (!coalesce_sorts_) return live.size();

  // Phase B — the fused cross-tenant submission (see ServiceTenants; this
  // path keeps owner pushes and BeginStep fused in one task per tenant, the
  // exact PR 5 cadence).
  std::vector<SortJob> fused;
  for (std::vector<SortJob>& jobs : tenant_jobs) {
    fused.insert(fused.end(), jobs.begin(), jobs.end());
  }
  if (!fused.empty()) {
    ObliviousSortBatch(fused.data(), fused.size(),
                       BatchExec{&pool_, batch_min_layer_});
    fused_sort_jobs_ += fused.size();
    ++fused_sort_submissions_;
  }

  // Phase C — per-tenant commits, concurrent again.
  pool_.ParallelFor(live.size(), [&](size_t k) {
    if (stepped[k]) INCSHRINK_CHECK(engines_[live[k]]->FinishStep().ok());
  });
  return live.size();
}

uint64_t DeploymentFleet::PriorityKey(size_t i) const {
  const Engine& e = *engines_[i];
  const uint64_t dist = e.StepsToNextPublicRelease();
  const uint64_t h = scheduler_.deadline_horizon;
  const uint64_t urgency = dist >= h ? 0 : h - dist;
  const uint64_t base =
      SatMul(tenants_[i].config.sla_weight,
             SatAdd(SatMul(scheduler_.depth_weight, e.queue_depth()),
                    urgency));
  return SatAdd(base, SatMul(scheduler_.aging_weight, age_[i]));
}

uint64_t DeploymentFleet::StarvationBoundRounds() const {
  if (!scheduler_.enabled) return 1;
  // Pmax: the largest base (age-free) priority any tenant can ever hold —
  // its queue depth is capped by the channel capacity, its urgency by the
  // horizon. See the header comment for the bound's derivation.
  uint64_t pmax = 0;
  for (const TenantSpec& t : tenants_) {
    const uint64_t cap = t.config.upload_channel_capacity;
    pmax = std::max(
        pmax, SatMul(t.config.sla_weight,
                     SatAdd(SatMul(scheduler_.depth_weight, cap),
                            scheduler_.deadline_horizon)));
  }
  const uint64_t n = tenants_.size();
  const uint64_t b =
      scheduler_.services_per_round == 0
          ? n
          : std::min<uint64_t>(scheduler_.services_per_round, n);
  const uint64_t d = pmax / scheduler_.aging_weight;
  return d + (n - 1 + b - 1) / std::max<uint64_t>(b, 1) + 1;
}

size_t DeploymentFleet::StepAllScheduled() {
  std::vector<size_t> live;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (cursor_[i] < tenants_[i].workload->steps() ||
        engines_[i]->queue_depth() > 0) {
      live.push_back(i);
    }
  }
  if (live.empty()) return 0;
  ++rounds_;

  // Phase O — exogenous arrivals: every live tenant's owners push this
  // round whether or not the tenant wins engine service (traffic does not
  // wait for the scheduler; the scheduler rations *service*, and unserviced
  // tenants simply accumulate public backlog). Identical per-tenant code to
  // the lockstep owner phase, so a scheduler that selects everyone
  // reproduces the sweep bit for bit.
  pool_.ParallelFor(live.size(),
                    [&](size_t k) { RunOwnerPhase(live[k]); });

  // Selection — serial, before any engine work, from public state only:
  // queue depths, engine clocks, config weights and age counters. Sorting
  // by (key descending, tenant id ascending) is a fixed total order, so the
  // schedule is bit-identical at any thread count.
  std::vector<size_t> backlogged;
  for (const size_t i : live) {
    if (engines_[i]->queue_depth() > 0) backlogged.push_back(i);
  }
  std::vector<std::pair<uint64_t, size_t>> order;
  order.reserve(backlogged.size());
  for (const size_t i : backlogged) order.emplace_back(PriorityKey(i), i);
  std::sort(order.begin(), order.end(),
            [](const std::pair<uint64_t, size_t>& a,
               const std::pair<uint64_t, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const size_t budget =
      scheduler_.services_per_round == 0
          ? order.size()
          : std::min<size_t>(scheduler_.services_per_round, order.size());
  std::vector<size_t> serve;
  serve.reserve(budget);
  for (size_t k = 0; k < budget; ++k) serve.push_back(order[k].second);

  schedule_log_.emplace_back(serve.begin(), serve.end());
  // Aging: winners reset, every other backlogged tenant moves one round
  // closer to guaranteed service. (Idle tenants neither age nor need to.)
  for (size_t k = 0; k < order.size(); ++k) {
    age_[order[k].second] =
        k < budget ? 0 : SatAdd(age_[order[k].second], 1);
  }

  // Phase E — engine service for the selected set.
  ServiceTenants(serve);
  return live.size();
}

void DeploymentFleet::RunAll() {
  while (StepAll() > 0) {
  }
}

namespace {

// ICKP layout of one migratable tenant: fingerprint, fleet-side scheduling
// state, the engine's self-validating snapshot blob, then the two owners.
constexpr uint32_t kTagTenantFingerprint = CheckpointTag('T', 'F', 'G', ' ');
constexpr uint32_t kTagTenantSched = CheckpointTag('T', 'S', 'C', 'H');
constexpr uint32_t kTagTenantEngine = CheckpointTag('E', 'N', 'G', ' ');
constexpr uint32_t kTagTenantOwner1 = CheckpointTag('O', 'W', 'N', '1');
constexpr uint32_t kTagTenantOwner2 = CheckpointTag('O', 'W', 'N', '2');

}  // namespace

Result<std::vector<uint8_t>> DeploymentFleet::CheckpointTenant(size_t i) {
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index out of range");
  }
  INCSHRINK_ASSIGN_OR_RETURN(const std::vector<uint8_t> engine_blob,
                             engines_[i]->SaveCheckpoint());
  CheckpointWriter w;
  w.BeginSection(kTagTenantFingerprint);
  w.U64(ConfigFingerprint(tenants_[i].config));
  w.EndSection();
  w.BeginSection(kTagTenantSched);
  w.U64(cursor_[i]);
  w.U64(age_[i]);
  w.U64(services_[i]);
  w.U64(last_service_round_[i]);
  w.U64(service_gaps_[i].size());
  for (const uint64_t gap : service_gaps_[i]) w.U64(gap);
  w.EndSection();
  w.BeginSection(kTagTenantEngine);
  w.Bytes(engine_blob);
  w.EndSection();
  w.BeginSection(kTagTenantOwner1);
  owners1_[i]->SaveTo(&w);
  w.EndSection();
  w.BeginSection(kTagTenantOwner2);
  owners2_[i]->SaveTo(&w);
  w.EndSection();
  std::vector<uint8_t> blob = w.Finish();
  if (blob.size() > tenants_[i].config.checkpoint_max_bytes) {
    return Status::OutOfRange(
        "tenant snapshot exceeds checkpoint_max_bytes");
  }
  return blob;
}

Status DeploymentFleet::RestoreTenant(size_t i,
                                      const std::vector<uint8_t>& snapshot) {
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index out of range");
  }
  INCSHRINK_ASSIGN_OR_RETURN(CheckpointReader r,
                             CheckpointReader::Open(snapshot));
  r.BeginSection(kTagTenantFingerprint);
  const uint64_t fingerprint = r.U64();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("tenant fingerprint"));
  if (fingerprint != ConfigFingerprint(tenants_[i].config)) {
    return Status::FailedPrecondition(
        "tenant snapshot was taken under a different configuration");
  }

  r.BeginSection(kTagTenantSched);
  const uint64_t cursor = r.U64();
  const uint64_t age = r.U64();
  const uint64_t services = r.U64();
  const uint64_t last_service_round = r.U64();
  const uint64_t gap_count = r.U64();
  std::vector<uint64_t> gaps;
  for (uint64_t g = 0; g < gap_count && r.ok(); ++g) {
    gaps.push_back(r.U64());
  }
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("tenant scheduling state"));
  if (cursor > tenants_[i].workload->steps()) {
    return Status::InvalidArgument(
        "tenant snapshot's stream cursor runs past this fleet's workload");
  }

  r.BeginSection(kTagTenantEngine);
  const std::vector<uint8_t> engine_blob = r.Bytes();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("embedded tenant engine snapshot"));

  // Dry-run the owner sections into scratch clients (constructed without
  // drawing anything shared), so every fallible decode precedes the first
  // live mutation; see SynchronousDeployment::RestoreCheckpoint.
  OwnerClient scratch1 =
      MakeOwner1(tenants_[i].config, engines_[i]->channel1());
  OwnerClient scratch2 =
      MakeOwner2(tenants_[i].config, engines_[i]->channel2());
  r.BeginSection(kTagTenantOwner1);
  INCSHRINK_RETURN_NOT_OK(scratch1.RestoreFrom(&r));
  r.EndSection();
  r.BeginSection(kTagTenantOwner2);
  INCSHRINK_RETURN_NOT_OK(scratch2.RestoreFrom(&r));
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.Finish());

  INCSHRINK_RETURN_NOT_OK(engines_[i]->RestoreCheckpoint(engine_blob));
  *owners1_[i] = std::move(scratch1);
  *owners2_[i] = std::move(scratch2);
  cursor_[i] = cursor;
  age_[i] = age;
  services_[i] = services;
  last_service_round_[i] = last_service_round;
  service_gaps_[i] = std::move(gaps);
  return Status::OK();
}

DeploymentFleet::FleetStats DeploymentFleet::AggregateStats() const {
  FleetStats stats;
  stats.rounds = rounds_;
  stats.fused_sort_jobs = fused_sort_jobs_;
  stats.fused_sort_submissions = fused_sort_submissions_;
  std::vector<double> weighted_service(engines_.size(), 0.0);
  stats.tenant_service.resize(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    const RunSummary s = engines_[i]->Summary();
    stats.engine_steps += s.steps;
    stats.simulated_mpc_seconds += s.total_mpc_seconds;
    stats.simulated_query_seconds += s.total_query_seconds;
    for (UploadChannel* ch :
         {engines_[i]->channel1(), engines_[i]->channel2()}) {
      stats.upload_frames += ch->frames_pushed();
      stats.upload_backpressure += ch->push_rejects();
      stats.max_queue_depth =
          std::max<uint64_t>(stats.max_queue_depth, ch->max_depth());
    }
    TenantServiceStats& ts = stats.tenant_service[i];
    ts.services = services_[i];
    ts.gap_p50 = NearestRankPercentile(service_gaps_[i], 50);
    ts.gap_p95 = NearestRankPercentile(service_gaps_[i], 95);
    ts.gap_p99 = NearestRankPercentile(service_gaps_[i], 99);
    for (const uint64_t g : service_gaps_[i]) {
      ts.gap_max = std::max(ts.gap_max, g);
    }
    weighted_service[i] = static_cast<double>(services_[i]) /
                          static_cast<double>(tenants_[i].config.sla_weight);
  }
  stats.jain_fairness = JainFairnessIndex(weighted_service);
  return stats;
}

}  // namespace incshrink
