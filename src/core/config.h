#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/core/upload_policy.h"
#include "src/mpc/cost_model.h"
#include "src/oblivious/join.h"
#include "src/oblivious/sort.h"

namespace incshrink {

/// Which view-update strategy the servers deploy.
enum class Strategy : uint8_t {
  kDpTimer,  ///< sDPTimer (Alg. 2): update every T steps with DP-sized batch
  kDpAnt,    ///< sDPANT (Alg. 3): SVT-triggered updates with DP-sized batch
  kEp,       ///< exhaustive padding: sync the fully padded output each step
  kOtm,      ///< one-time materialization: materialize once, never update
  kNm,       ///< non-materialized: re-join the full DS for every query
};

const char* StrategyName(Strategy s);

/// Which truncated-transformation operator Transform compiles.
enum class TransformOperator : uint8_t {
  kSortMergeJoin,   ///< Example 5.1 (default)
  kNestedLoopJoin,  ///< Algorithm 4 (appendix alternative)
};

/// What the materialized view computes.
enum class ViewKind : uint8_t {
  kWindowJoin,  ///< windowed equi-join of the two streams (Q1/Q2)
  kFilter,      ///< oblivious selection over the T1 stream (Appendix A.1.1)
};

/// Standing selection predicate of a filter view: keep rows whose payload
/// column lies in [lo, hi]. Selection has stability 1 (each record yields at
/// most one view row), so omega = 1 suffices.
struct FilterSpec {
  Word lo = 0;
  Word hi = 0xFFFFFFFFu;
};

/// \brief Full configuration of one IncShrink deployment.
///
/// Defaults mirror the paper's default setting (Section 7): eps = 1.5,
/// cache flush every f = 2000 steps with flush size s = 15, sDPANT threshold
/// theta = 30.
struct IncShrinkConfig {
  // --- privacy ---
  double eps = 1.5;         ///< event-level privacy parameter
  uint32_t omega = 1;       ///< per-invocation truncation bound
  uint32_t budget_b = 10;   ///< lifetime contribution budget per record

  // --- view definition ---
  ViewKind view_kind = ViewKind::kWindowJoin;
  JoinSpec join;            ///< windowed equi-join view (Q1/Q2 shape)
  FilterSpec filter;        ///< selection predicate (kFilter views)
  /// Upload steps a record stays eligible as a window partner: records older
  /// than this never satisfy the window predicate, so Transform skips them.
  uint32_t window_steps = 10;
  TransformOperator op = TransformOperator::kSortMergeJoin;
  bool t2_is_public = false;  ///< CPDB: the Award relation is public

  // --- update strategy ---
  Strategy strategy = Strategy::kDpTimer;
  uint32_t timer_T = 10;     ///< sDPTimer update interval
  double ant_theta = 30;     ///< sDPANT synchronization threshold

  // --- cache flush (Section 5.2.1) ---
  uint32_t flush_interval = 2000;  ///< f; 0 disables flushing
  uint32_t flush_size = 15;        ///< s (per shard when sharded)

  // --- secure-cache sharding ---
  /// Number of independent secure-cache shards. 1 (the default) reproduces
  /// the unsharded engine bit for bit. With K > 1 the cache splits into K
  /// shards by the public append-index shard map; each shard runs its own
  /// Shrink instance at an eps/K budget slice (composed back to exactly
  /// `eps` by sequential composition) on its own derived protocol
  /// substream, and the per-shard steps execute concurrently on the
  /// deployment's ThreadPool with results merged in fixed shard order.
  /// Flushes and the sDPANT threshold apply per shard.
  uint32_t num_cache_shards = 1;
  /// Worker count for the per-shard Shrink fork-join (K > 1 only).
  /// 0 = INCSHRINK_THREADS override, else hardware concurrency; always
  /// capped at the shard count. Never affects results, only wall time.
  int cache_shard_threads = 0;

  // --- fleet serving ---
  /// Relative service-level weight of this deployment when it runs inside a
  /// priority-scheduled DeploymentFleet: a tenant with weight 2w accrues
  /// priority twice as fast as one with weight w at equal backlog/deadline
  /// pressure. Public configuration by definition (the scheduler must never
  /// read secret state), ignored by the lockstep fleet and by standalone
  /// engines. Bounded so priority arithmetic stays exact in 64 bits.
  uint32_t sla_weight = 1;

  // --- batched oblivious execution ---
  /// Minimum combined compare-exchange count of a sorting-network layer (or
  /// fused cross-shard layer round) before the batch executor splits it
  /// across the deployment's ThreadPool; smaller layers run the serial
  /// batch kernel on the submitting thread. Purely a scheduling threshold:
  /// results are bit-identical at any value and any worker count (batched
  /// submissions pre-draw their resharing masks in scalar call order).
  uint32_t oblivious_batch_min_layer = 128;
  /// Execution policy of the oblivious cache sorts (Shrink sync order and
  /// the flush path). kBatcher — the reference odd-even merge network the
  /// goldens are recorded on. kShuffleSort — the Waksman permutation-network
  /// tier (src/oblivious/shuffle.h): sync sorts run ORQ-style
  /// shuffle-then-sort (O(n log n) gates instead of O(n log^2 n)) and
  /// flushes, which only need *some* secret permutation, drop the sort for
  /// a single random Waksman shuffle. Opt-in: the shuffle tier re-randomizes
  /// tie placement and flush selection, so released view contents differ
  /// from the Batcher goldens (equally valid under the same DP guarantees).
  SortAlgorithm sort_algorithm = SortAlgorithm::kBatcher;

  // --- owner update policy ---
  uint32_t upload_rows_t1 = 8;  ///< C_r for the T1 owner (fixed-size policy)
  uint32_t upload_rows_t2 = 8;  ///< C_r for the T2 owner
  /// Record synchronization strategies (Section 8 "Connecting with
  /// DP-Sync"). Defaults to the fixed-size policy the prototype assumes.
  UploadPolicyConfig upload_policy1;
  UploadPolicyConfig upload_policy2;

  // --- upload transport (owners -> servers) ---
  /// Maximum owner upload frames the engine drains from each channel per
  /// engine step. 1 (the default) is the lockstep cadence: one owner step
  /// consumed per engine step, reproducing the pre-transport engine bit for
  /// bit when owners are driven synchronously. Larger values let the engine
  /// catch up on a backlog (owners running ahead on their own clock) by
  /// merging several queued owner steps into one upload batch; the drain
  /// count is a deterministic function of the queue depth and this bound,
  /// never of thread scheduling.
  uint32_t max_batches_per_step = 1;
  /// Bounded capacity (in frames) of each owner upload channel. When a
  /// channel is full the owner's TryStep is refused — public backpressure;
  /// the owner retries on a later round. Must cover the configured owner
  /// lead (owners may queue at most `capacity` steps ahead).
  uint32_t upload_channel_capacity = 64;

  /// Whether Transform obliviously compacts its padded operator outputs to
  /// the tight public bound before caching. The DP protocols rely on this
  /// to keep the cache small; the EP baseline materializes the raw
  /// exhaustively padded outputs (the engine clears this flag for EP).
  bool compact_transform_output = true;

  // --- crash recovery (ICKP snapshots, src/storage/checkpoint.h) ---
  /// Automatic checkpoint cadence in engine steps: after every
  /// `checkpoint_interval`-th completed step the engine serializes its full
  /// resumable state into an in-memory slot (`Engine::last_checkpoint()`)
  /// for a recovery driver to persist. 0 (the default) disables the
  /// automatic slot; explicit `Engine::SaveCheckpoint()` always works.
  /// Snapshotting draws no randomness, so any cadence leaves the run
  /// bit-identical to an uncheckpointed one.
  uint32_t checkpoint_interval = 0;
  /// Ceiling on one serialized snapshot. SaveCheckpoint returns OutOfRange
  /// instead of producing a larger blob, so a misconfigured deployment
  /// cannot fill a disk or the wire with a runaway snapshot. Must be at
  /// least 4096 (header, checksum and section framing need real room).
  uint64_t checkpoint_max_bytes = 1ull << 30;

  // --- simulation ---
  CostModel cost_model = CostModel::EmpLikeLan();
  uint64_t seed = 42;

  /// Validates parameter consistency (omega <= b, eps > 0, ...).
  Status Validate() const;
};

/// FNV-1a64 fingerprint over every behavior-determining config field
/// (doubles as raw IEEE-754 bits). Stored in each ICKP snapshot and compared
/// at restore time: a snapshot only loads into an engine whose configuration
/// matches the one that produced it, because restored RNG cursors and share
/// state only mean anything under identical parameters.
uint64_t ConfigFingerprint(const IncShrinkConfig& config);

}  // namespace incshrink
