#include "src/core/multilevel.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/relational/encode.h"

namespace incshrink {

namespace {

IncShrinkConfig MakeStage1Config(const MultiLevelPipeline::Config& c) {
  IncShrinkConfig cfg;
  cfg.eps = c.eps1;
  cfg.omega = 1;
  cfg.budget_b = 1;  // selection is 1-stable; one participation per record
  cfg.view_kind = ViewKind::kFilter;
  cfg.filter = c.filter;
  cfg.join.omega = 1;
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = c.timer_T1;
  cfg.flush_interval = 0;
  cfg.upload_rows_t1 = c.upload_rows_t1;
  cfg.upload_rows_t2 = c.upload_rows_t2;
  cfg.cost_model = c.cost_model;
  cfg.seed = c.seed + 1;
  return cfg;
}

IncShrinkConfig MakeStage2Config(const MultiLevelPipeline::Config& c) {
  IncShrinkConfig cfg;
  cfg.eps = c.eps2;
  cfg.omega = c.omega;
  cfg.budget_b = c.budget_b;
  cfg.view_kind = ViewKind::kWindowJoin;
  cfg.join = c.join;
  cfg.join.omega = c.omega;
  cfg.window_steps = c.window_steps;
  cfg.strategy = Strategy::kDpTimer;
  cfg.timer_T = c.timer_T2;
  cfg.flush_interval = 0;
  cfg.upload_rows_t1 = c.upload_rows_t1;
  cfg.upload_rows_t2 = c.upload_rows_t2;
  cfg.cost_model = c.cost_model;
  cfg.seed = c.seed + 2;
  return cfg;
}

}  // namespace

MultiLevelPipeline::MultiLevelPipeline(const Config& config)
    : config_(config),
      s0_(0, config.seed * 31 + 7),
      s1_(1, config.seed * 37 + 11),
      proto_(&s0_, &s1_, config.cost_model),
      stage1_cfg_(MakeStage1Config(config)),
      stage2_cfg_(MakeStage2Config(config)),
      accountant1_(stage1_cfg_.eps, stage1_cfg_.budget_b, stage1_cfg_.omega),
      accountant2_(stage2_cfg_.eps, stage2_cfg_.budget_b, stage2_cfg_.omega),
      transform1_(&proto_, stage1_cfg_, &accountant1_),
      transform2_(&proto_, stage2_cfg_, &accountant2_),
      shrink1_(std::make_unique<ShrinkTimer>(&proto_, stage1_cfg_)),
      shrink2_(std::make_unique<ShrinkTimer>(&proto_, stage2_cfg_)),
      store_t1_(kSrcWidth),
      store_v1_(kSrcWidth),
      store_t2_(kSrcWidth),
      cache1_(&proto_),
      cache2_(&proto_),
      truth_(WindowJoinQuery{config.join.window_lo, config.join.window_hi,
                             config.join.use_window}),
      owner_rng_(config.seed ^ 0xBEEF1234CAFE5678ull) {
  INCSHRINK_CHECK(stage1_cfg_.Validate().ok());
  INCSHRINK_CHECK(stage2_cfg_.Validate().ok());
}

SharedRows MultiLevelPipeline::ViewRowsToSourceRows(const SharedRows& rows) {
  // In-circuit rewiring: per row, copy key/date/rid and map isView -> valid.
  proto_.AccountAndGates(rows.size() * kSrcWidth * kWordBits);
  Rng* rng = proto_.internal_rng();
  SharedRows out(kSrcWidth);
  for (size_t r = 0; r < rows.size(); ++r) {
    const std::vector<Word> view = rows.RecoverRow(r);
    // oblivious-ok: ideal-functionality rewiring — per-row copy/mux circuit
    // charged above; exactly one fresh-shared source row is emitted per view
    // row, real or dummy
    if (view[kViewIsViewCol] & 1) {
      std::vector<Word> src(kSrcWidth);
      src[kSrcValidCol] = 1;
      src[kSrcKeyCol] = view[kViewKeyCol];
      src[kSrcDateCol] = view[kViewDate1Col];
      src[kSrcRidCol] = view[kViewRid1Col];
      src[kSrcPayloadCol] = view[kViewRid2Col];
      out.AppendSecretRow(src, rng);
    } else {
      out.AppendSecretRow(MakeDummySourceRow(rng), rng);
    }
  }
  return out;
}

Status MultiLevelPipeline::Step(const std::vector<LogicalRecord>& new1,
                                const std::vector<LogicalRecord>& new2) {
  ++t_;
  StepMetrics m;
  m.t = t_;

  // Ground truth: filtered T1 stream joined with T2.
  std::vector<LogicalRecord> filtered;
  for (const LogicalRecord& rec : new1) {
    if (rec.payload >= config_.filter.lo && rec.payload <= config_.filter.hi)
      filtered.push_back(rec);
  }
  m.true_count = truth_.Step(filtered, new2);

  // Owner uploads (fixed-size policy for both streams).
  auto upload = [&](const std::vector<LogicalRecord>& arrivals,
                    std::vector<LogicalRecord>* overflow,
                    OutsourcedTable* store, uint32_t rows) {
    std::vector<LogicalRecord> pending = std::move(*overflow);
    overflow->clear();
    pending.insert(pending.end(), arrivals.begin(), arrivals.end());
    SharedRows batch(kSrcWidth);
    size_t i = 0;
    for (; i < pending.size() && i < rows; ++i)
      batch.AppendSecretRow(EncodeSourceRow(pending[i]), &owner_rng_);
    while (batch.size() < rows)
      batch.AppendSecretRow(MakeDummySourceRow(&owner_rng_), &owner_rng_);
    overflow->assign(pending.begin() + i, pending.end());
    store->AppendBatch(std::move(batch));
  };
  upload(new1, &overflow1_, &store_t1_, config_.upload_rows_t1);
  upload(new2, &overflow2_, &store_t2_, config_.upload_rows_t2);

  // ---- Stage 1: oblivious selection + DP shrink into V1. Its synchronized
  // rows form the (public-size) input stream of stage 2.
  const CircuitStats before1 = proto_.Snapshot();
  INCSHRINK_ASSIGN_OR_RETURN(
      const TransformProtocol::StepResult tr1,
      transform1_.StepFilter(t_, store_t1_, &cache1_));
  (void)tr1;
  const ShrinkResult sync1 = shrink1_->Step(t_, &cache1_, &view1_);
  SharedRows stage2_input(kSrcWidth);
  if (sync1.fired && sync1.sync_rows > 0) {
    // The freshly synchronized block is both appended to V1 and re-encoded
    // as stage-2 source rows.
    const SharedRows& v1 = view1_.rows();
    SharedRows synced(kViewWidth);
    for (size_t r = v1.size() - sync1.sync_rows; r < v1.size(); ++r) {
      synced.AppendSharedRow(
          std::vector<Word>(v1.shares0().begin() + r * kViewWidth,
                            v1.shares0().begin() + (r + 1) * kViewWidth),
          std::vector<Word>(v1.shares1().begin() + r * kViewWidth,
                            v1.shares1().begin() + (r + 1) * kViewWidth));
    }
    stage2_input = ViewRowsToSourceRows(synced);
  }
  store_v1_.AppendBatch(std::move(stage2_input));
  m.transform_seconds = proto_.SimulatedSecondsSince(before1);

  // ---- Stage 2: truncated join of the stage-1 output stream against T2.
  const CircuitStats before2 = proto_.Snapshot();
  INCSHRINK_ASSIGN_OR_RETURN(
      const TransformProtocol::StepResult tr2,
      transform2_.Step(t_, store_v1_, store_t2_, &cache2_));
  (void)tr2;
  const ShrinkResult sync2 = shrink2_->Step(t_, &cache2_, &view2_);
  m.shrink_seconds = proto_.SimulatedSecondsSince(before2);
  m.synced = sync2.fired;
  m.sync_rows = sync2.sync_rows;

  // ---- Analyst query over V2.
  const CircuitStats before_q = proto_.Snapshot();
  const WordShares count = ObliviousCountWhere(
      &proto_, view2_.rows(), kViewIsViewCol, ObliviousPredicate::True());
  m.view_answer = proto_.Reveal(count);
  m.query_seconds = proto_.SimulatedSecondsSince(before_q);

  m.l1_error = std::abs(static_cast<double>(m.view_answer) -
                        static_cast<double>(m.true_count));
  m.relative_error =
      m.l1_error / std::max<double>(1.0, static_cast<double>(m.true_count));
  m.view_rows = view2_.size();
  m.cache_rows = cache1_.size() + cache2_.size();
  metrics_.push_back(m);
  return Status::OK();
}

RunSummary MultiLevelPipeline::Summary() const {
  RunSummary s;
  for (const StepMetrics& m : metrics_) {
    s.l1_error.Add(m.l1_error);
    s.relative_error.Add(m.relative_error);
    s.true_count_stat.Add(static_cast<double>(m.true_count));
    s.qet_seconds.Add(m.query_seconds);
    if (m.transform_seconds > 0) s.transform_seconds.Add(m.transform_seconds);
    if (m.synced) {
      s.shrink_seconds.Add(m.shrink_seconds);
      ++s.updates;
    }
    s.total_mpc_seconds += m.transform_seconds + m.shrink_seconds;
    s.total_query_seconds += m.query_seconds;
  }
  s.steps = metrics_.size();
  s.final_view_mb = view1_.SizeMb() + view2_.SizeMb();
  s.final_view_rows = view2_.size();
  if (!metrics_.empty()) s.final_true_count = metrics_.back().true_count;
  return s;
}

}  // namespace incshrink
