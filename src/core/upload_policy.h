#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dp/svt.h"
#include "src/relational/growing_table.h"
#include "src/secret/shared_rows.h"

namespace incshrink {

class CheckpointWriter;
class CheckpointReader;

/// \brief Owner-side record synchronization policy (paper Section 8
/// "Connecting with DP-Sync", following DP-Sync's private strategies).
///
/// The prototype default uploads a fixed-size padded block every step; the
/// DP policies instead release *DP-sized* batches so that even the owner's
/// upload pattern is differentially private. Composing an eps1-DP upload
/// policy with the eps2-DP view update protocol yields (eps1 + eps2)-DP for
/// the owner's data by sequential composition.
enum class UploadPolicyKind : uint8_t {
  kFixedSize,    ///< fixed C_r rows every step, padded (prototype default)
  kDpTimerSync,  ///< every sync_interval steps, upload pending + Lap(1/eps)
  kDpAntSync,    ///< SVT: upload when the pending count crosses a threshold
};

struct UploadPolicyConfig {
  UploadPolicyKind kind = UploadPolicyKind::kFixedSize;
  /// Owner-side privacy budget eps1 (record-insertion sensitivity is 1).
  double eps_sync = 1.0;
  /// kDpTimerSync: steps between uploads.
  uint32_t sync_interval = 5;
  /// kDpAntSync: pending-count threshold.
  double sync_theta = 10;
};

/// The owner-policy epsilon of a policy config (0 for the non-DP fixed
/// policy). Free-standing so the engine can compose epsilons from its
/// config without holding the owner-side state.
inline double UploadPolicyEpsilon(const UploadPolicyConfig& config) {
  return config.kind == UploadPolicyKind::kFixedSize ? 0.0 : config.eps_sync;
}

/// \brief Stateful per-owner uploader: queues logical arrivals and emits the
/// secret-shared, dummy-padded batch for each step under the configured
/// policy. The emitted batch size is the only thing the servers observe
/// about the owner's arrival process.
class OwnerUploader {
 public:
  /// \param fixed_rows   the C_r of the fixed-size policy
  /// \param is_public    public relations upload unpadded, every step
  OwnerUploader(const UploadPolicyConfig& config, uint32_t fixed_rows,
                bool is_public, uint64_t seed);

  /// Enqueues this step's arrivals and returns the batch to upload (may be
  /// empty). `share_rng` provides the owner's sharing randomness.
  SharedRows BuildBatch(uint64_t t, const std::vector<LogicalRecord>& arrivals,
                        Rng* share_rng);

  /// Records received but not yet uploaded — DP-Sync's logical gap
  /// (Theorem 15), the owner-side component of the composed error bound.
  uint64_t pending() const { return queue_.size(); }

  /// The owner-policy epsilon (0 for the non-DP fixed policy).
  double PolicyEpsilon() const;

  const UploadPolicyConfig& config() const { return config_; }

  /// Checkpoint support: serializes the policy's mutable state — the policy
  /// RNG cursor, the pending queue (plaintext the owner holds anyway; a
  /// snapshot is owner-side state) and, for the SVT policy, the noised
  /// threshold and release counter.
  void SaveTo(CheckpointWriter* writer) const;
  /// Restores the state saved by SaveTo into an uploader constructed with
  /// the same policy config. Never draws randomness; fails closed when the
  /// snapshot's policy shape (SVT present or not) disagrees with this
  /// uploader's.
  Status RestoreFrom(CheckpointReader* reader);

 private:
  /// Dequeues up to `take` real records and pads the batch to `rows` total.
  SharedRows Emit(size_t take, size_t rows, Rng* share_rng);

  UploadPolicyConfig config_;
  uint32_t fixed_rows_;
  bool is_public_;
  Rng policy_rng_;  ///< owner-local randomness for the DP policy noise
  std::vector<LogicalRecord> queue_;
  std::unique_ptr<NumericAboveNoisyThreshold> svt_;
};

}  // namespace incshrink
