#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "src/common/result.h"
#include "src/core/config.h"
#include "src/dp/accountant.h"
#include "src/mpc/protocol.h"
#include "src/oblivious/join.h"
#include "src/storage/outsourced_store.h"
#include "src/storage/secure_cache.h"
#include "src/storage/sharded_cache.h"

namespace incshrink {

/// \brief The Transform protocol (paper Algorithm 1).
///
/// On every owner upload, Transform:
///  1. assembles its inputs — the new batches plus the still-eligible window
///     partners (records are eligible for min(window_steps, b/omega - 1)
///     steps after upload; eligibility is a *public* schedule because every
///     input record is charged omega per invocation regardless of whether it
///     contributes — Section 5.1 "Contribution over time");
///  2. runs the truncated oblivious transformation (sort-merge join of
///     Example 5.1 or nested-loop join of Algorithm 4) so that new pairs are
///     generated exactly once: new1 x (new2 + window2) and window1 x new2,
///     with a shared per-invocation contribution cap of omega per record;
///  3. obliviously compacts the exhaustively padded operator outputs to the
///     tight public bound on new view entries (omega x new private rows per
///     side), which is what keeps the secure cache small;
///  4. appends the compacted block to the secure cache and updates the
///     secret-shared cardinality counter c (Alg. 1 lines 4-7).
class TransformProtocol {
 public:
  TransformProtocol(Protocol2PC* proto, const IncShrinkConfig& config,
                    PrivacyAccountant* accountant);

  /// Result of one Transform invocation.
  struct StepResult {
    uint32_t real_entries = 0;    ///< new view entries cached (in-protocol)
    uint64_t appended_rows = 0;   ///< public: rows appended to the cache
    double simulated_seconds = 0; ///< simulated MPC time of this invocation
  };

  /// Runs the invocation for upload step `t` (1-based; the batches for step
  /// t must already be present in both stores). Charges contribution budgets
  /// and returns Status::PrivacyBudgetExhausted on ledger violations.
  /// Dispatches on the configured view kind (windowed join or selection).
  Result<StepResult> Step(uint64_t t, const OutsourcedTable& store1,
                          const OutsourcedTable& store2, SecureCache* cache);

  /// Sharded variant: same computation, but the DeltaV block is committed
  /// through ShardedSecureCache::AppendTransformBlock, which routes rows to
  /// shards by the public append-index map and splits the counter update.
  Result<StepResult> Step(uint64_t t, const OutsourcedTable& store1,
                          const OutsourcedTable& store2,
                          ShardedSecureCache* cache);

  /// Selection-view invocation (Appendix A.1.1): converts the step's T1
  /// batch into view rows whose isView bit encodes the predicate, an
  /// inherently 1-stable transformation. Output size == batch size.
  Result<StepResult> StepFilter(uint64_t t, const OutsourcedTable& store1,
                                SecureCache* cache);

  /// Sharded selection-view invocation.
  Result<StepResult> StepFilter(uint64_t t, const OutsourcedTable& store1,
                                ShardedSecureCache* cache);

  /// Steps a record stays eligible as a window partner after its upload:
  /// min(window_steps, b/omega - 1).
  static uint32_t EligibleSteps(const IncShrinkConfig& config);

  /// Public number of rows one invocation appends to the cache at step t
  /// (the exhaustive-padding bound on new view entries). Used by the
  /// transcript simulator.
  static uint64_t PublicCacheAppendRows(const IncShrinkConfig& config,
                                        uint64_t t);

  /// Total view rows a single logical record may ever contribute (the
  /// stability constant q of the composed transformation) — equals b.
  uint32_t StabilityBound() const { return config_.budget_b; }

  /// Batch execution policy for this protocol's oblivious sorts (the
  /// compaction sort and the sort-merge join's network). Scheduling only —
  /// results are bit-identical with any pool/threshold.
  void set_sort_exec(const BatchExec& exec) { sort_exec_ = exec; }

 private:
  /// Commit hook: receives the finished DeltaV block and its in-protocol
  /// real-entry count; the unsharded path appends to one SecureCache, the
  /// sharded path routes per shard. Runs exactly once per invocation,
  /// before the invocation's simulated time is metered.
  using CommitFn = std::function<void(const SharedRows&, uint32_t)>;

  /// The windowed-join invocation body shared by both cache layouts.
  Result<StepResult> StepJoin(uint64_t t, const OutsourcedTable& store1,
                              const OutsourcedTable& store2, uint64_t* seq,
                              const CommitFn& commit);

  /// The selection invocation body shared by both cache layouts.
  Result<StepResult> StepFilterImpl(uint64_t t, const OutsourcedTable& store1,
                                    uint64_t* seq, const CommitFn& commit);

  /// Charges omega to every real record of `batch` (Alg. 1 participation
  /// accounting), collecting charged rids into `charged`; returns error when
  /// a budget would be exceeded.
  Status ChargeBatch(const SharedRows& batch,
                     std::unordered_set<Word>* charged);

  Protocol2PC* proto_;
  IncShrinkConfig config_;
  PrivacyAccountant* accountant_;
  BatchExec sort_exec_;
};

}  // namespace incshrink
