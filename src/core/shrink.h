#pragma once

#include <cstdint>

#include "src/core/config.h"
#include "src/mpc/protocol.h"
#include "src/storage/materialized_view.h"
#include "src/storage/secure_cache.h"

namespace incshrink {

/// Result of one Shrink step (and of a cache flush).
struct ShrinkResult {
  bool fired = false;            ///< whether a view update was posted
  uint64_t sync_rows = 0;        ///< rows moved into the view (public)
  uint32_t released_size = 0;    ///< DP-released batch size v_t (pre-clamp)
  double simulated_seconds = 0;  ///< simulated MPC time consumed
};

/// \brief Phase-split Shrink stepping, the seam batched sort fusion plugs
/// into: `Plan()` runs everything up to (not including) the oblivious cache
/// sort — the timer check / noisy-threshold comparison and the DP release
/// draws — and decides whether the shard fires; the caller then sorts the
/// shard's cache (possibly fused with other shards'/tenants' sorts in one
/// batch submission); `Commit()` performs the prefix fetch, view append and
/// counter/threshold maintenance. Plan + sort + Commit on one shard is
/// bit-identical to `Step()` (which remains, and is implemented that way).
struct ShrinkPlan {
  bool fired = false;          ///< whether the shard's cache must be sorted
  uint32_t released_size = 0;  ///< DP-released batch size (fired only)
  ShrinkResult early;          ///< the finished result when !fired
  CircuitStats before;         ///< stats snapshot at plan start
};

/// \brief sDPTimer (paper Algorithm 2): every T steps, synchronize a
/// DP-sized batch sz = c + Lap(b/eps) from the secure cache to the view.
///
/// The Laplace noise is generated jointly (Alg. 2 lines 4-6) so neither
/// server can predict or bias it; the cardinality counter is recovered only
/// inside the protocol and re-shared afterwards.
class ShrinkTimer {
 public:
  ShrinkTimer(Protocol2PC* proto, const IncShrinkConfig& config);

  /// Runs the timer check for step `t` (1-based).
  ShrinkResult Step(uint64_t t, SecureCache* cache, MaterializedView* view);

  /// Pre-sort phase of Step (see ShrinkPlan).
  ShrinkPlan Plan(uint64_t t, SecureCache* cache);
  /// Post-sort phase: `cache` must have been sorted by the cache key
  /// (descending) after Plan() returned fired == true.
  ShrinkResult Commit(const ShrinkPlan& plan, SecureCache* cache,
                      MaterializedView* view);

 private:
  Protocol2PC* proto_;
  IncShrinkConfig config_;
  double scale_;  // b / eps
};

/// \brief sDPANT (paper Algorithm 3): above-noisy-threshold updates.
///
/// Splits eps into eps1 = eps2 = eps/2; maintains a secret-shared noisy
/// threshold theta~ = theta + Lap(2b/eps1); every step compares
/// c~ = c + Lap(4b/eps1) against theta~ inside the protocol and, on firing,
/// synchronizes sz = c + Lap(b/eps2) rows, refreshes theta~ with fresh
/// randomness, and resets c.
///
/// Note: Algorithm 3 line 8 releases with Lap(b/eps2) (eps2-DP for the
/// b-sensitive counter, composing to eps total); Algorithm 5 / M_ant use
/// the more conservative Lap(2*Delta/eps2). We follow Algorithm 3, which is
/// what the paper's evaluation uses.
class ShrinkAnt {
 public:
  ShrinkAnt(Protocol2PC* proto, const IncShrinkConfig& config);

  ShrinkResult Step(uint64_t t, SecureCache* cache, MaterializedView* view);

  /// Pre-sort phase of Step (see ShrinkPlan): the noisy comparison and, on
  /// firing, the release draw.
  ShrinkPlan Plan(uint64_t t, SecureCache* cache);
  /// Post-sort phase: prefix fetch, threshold refresh, counter reset.
  ShrinkResult Commit(const ShrinkPlan& plan, SecureCache* cache,
                      MaterializedView* view);

  /// Decoded value of the current noisy threshold (test access; the shared
  /// encoding is protocol state).
  double noisy_threshold_inside() const;

  /// Checkpoint support: the fixed-point sharing of the current noisy
  /// threshold, and its restore-path overwrite. Restore deliberately does
  /// not RefreshThreshold() — drawing joint noise here would desynchronize
  /// the protocol streams from the run being resumed.
  const WordShares& shared_theta() const { return shared_theta_; }
  void RestoreTheta(const WordShares& theta) { shared_theta_ = theta; }

 private:
  void RefreshThreshold();

  Protocol2PC* proto_;
  IncShrinkConfig config_;
  double eps1_;
  double eps2_;
  WordShares shared_theta_;  ///< fixed-point sharing of theta~
};

/// \brief Independent cache flush (paper Section 5.2.1): every
/// `flush_interval` steps, fetch a fixed `flush_size` prefix of the sorted
/// cache into the view, recycle the rest, and reset the cardinality counter
/// (the recycled array holds no real entries, so c must return to 0 or the
/// next DP release over-counts already-synchronized rows). Used by both DP
/// protocols.
ShrinkResult MaybeFlushCache(Protocol2PC* proto,
                             const IncShrinkConfig& config, uint64_t t,
                             SecureCache* cache, MaterializedView* view);

/// Whether step `t` is a flush step — the (public) pre-sort half of
/// MaybeFlushCache, split out for fused flush-sort submissions.
bool FlushDue(const IncShrinkConfig& config, uint64_t t);

/// Post-sort half of MaybeFlushCache: fetches the fixed prefix from the
/// (already sorted) cache, recycles the rest and resets the counter.
/// `before` is the stats snapshot taken just before the flush sort began.
ShrinkResult CommitFlush(Protocol2PC* proto, const IncShrinkConfig& config,
                         SecureCache* cache, MaterializedView* view,
                         const CircuitStats& before);

/// Fixed-point encoding used to secret-share the (real-valued) noisy
/// threshold inside 32 bits: enc(x) = (x + 2^20) * 2^10, clamped.
Word EncodeThresholdFixedPoint(double x);
double DecodeThresholdFixedPoint(Word enc);

}  // namespace incshrink
