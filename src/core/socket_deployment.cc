#include "src/core/socket_deployment.h"

#include "src/common/logging.h"

namespace incshrink {

// ---------------------------------------------------------------------------
// SocketOwnerClient
// ---------------------------------------------------------------------------

SocketOwnerClient::SocketOwnerClient(const IncShrinkConfig& config,
                                     int owner_index,
                                     const SocketSenderOptions& options)
    : local_channel_(config.upload_channel_capacity),
      sender_(options),
      owner_(owner_index == 0 ? MakeOwner1(config, &local_channel_)
                              : MakeOwner2(config, &local_channel_)) {}

Result<std::unique_ptr<SocketOwnerClient>> SocketOwnerClient::Dial(
    const IncShrinkConfig& config, int owner_index, const std::string& host,
    uint16_t port, const SocketSenderOptions& options) {
  INCSHRINK_CHECK(owner_index == 0 || owner_index == 1);
  // No make_unique: the constructor is private.
  std::unique_ptr<SocketOwnerClient> client(
      new SocketOwnerClient(config, owner_index, options));
  INCSHRINK_RETURN_NOT_OK(client->sender_.Connect(
      host, port, static_cast<uint32_t>(owner_index)));
  return client;
}

Result<size_t> SocketOwnerClient::Pump() {
  size_t completed = 0;
  for (;;) {
    INCSHRINK_ASSIGN_OR_RETURN(const size_t written, sender_.Flush());
    (void)written;
    if (!sender_.fully_flushed()) break;  // kernel is full; retry later
    if (in_flight_bytes_ > 0) {
      in_flight_bytes_ = 0;
      ++completed;
    }
    std::vector<uint8_t> frame;
    if (!local_channel_.TryPop(&frame)) break;
    in_flight_bytes_ = frame.size();
    INCSHRINK_RETURN_NOT_OK(sender_.QueueFrame(frame));
  }
  return completed;
}

Result<bool> SocketOwnerClient::TryStep(
    const std::vector<LogicalRecord>& arrivals) {
  INCSHRINK_RETURN_NOT_OK(Pump().status());
  // The probe-before-build discipline lives inside OwnerClient::TryStep: a
  // full local channel means the wire (and ultimately the engine) has not
  // kept up, and the refusal is the same public NoteBackpressure event the
  // in-process transport records.
  const bool took = owner_.TryStep(arrivals);
  INCSHRINK_RETURN_NOT_OK(Pump().status());
  return took;
}

bool SocketOwnerClient::drained() const {
  return local_channel_.empty() && in_flight_bytes_ == 0 &&
         sender_.fully_flushed();
}

Status SocketOwnerClient::Reconnect() {
  in_flight_bytes_ = 0;
  return sender_.Reconnect();
}

// ---------------------------------------------------------------------------
// SocketDeployment
// ---------------------------------------------------------------------------

SocketDeployment::SocketDeployment(const IncShrinkConfig& config,
                                   const Options& options)
    : config_(config),
      options_(options),
      engine_(config),
      listener_({engine_.channel1(), engine_.channel2()}, options.listener) {}

Status SocketDeployment::Start() {
  INCSHRINK_CHECK(!started_);
  INCSHRINK_RETURN_NOT_OK(listener_.Bind(0));
  INCSHRINK_ASSIGN_OR_RETURN(
      owner1_, SocketOwnerClient::Dial(config_, 0, "127.0.0.1",
                                       listener_.port(), options_.sender));
  if (config_.view_kind != ViewKind::kFilter) {
    INCSHRINK_ASSIGN_OR_RETURN(
        owner2_, SocketOwnerClient::Dial(config_, 1, "127.0.0.1",
                                         listener_.port(), options_.sender));
  }
  started_ = true;
  return Status::OK();
}

Status SocketDeployment::Step(const std::vector<LogicalRecord>& new1,
                              const std::vector<LogicalRecord>& new2) {
  INCSHRINK_CHECK(started_);
  const bool join_view = config_.view_kind != ViewKind::kFilter;
  // Tick the owners. Lockstep keeps every queue shallow, so a refusal can
  // only mean the previous frame is still in flight — pump the wire and
  // retry, bounded by the step's poll budget.
  bool took1 = false;
  bool took2 = !join_view;
  for (uint32_t i = 0; i <= options_.max_wait_polls; ++i) {
    if (!took1) {
      INCSHRINK_ASSIGN_OR_RETURN(took1, owner1_->TryStep(new1));
    }
    if (!took2) {
      INCSHRINK_ASSIGN_OR_RETURN(took2, owner2_->TryStep(new2));
    }
    if (took1 && took2) break;
    listener_.Poll();
  }
  if (!took1 || !took2) {
    return Status::Internal("owner step never accepted (wire stalled)");
  }
  // Pump the frames across the wire until the engine-side channels hold the
  // pair (the listener's poll timeout bounds each wait; the sweep count
  // bounds the total).
  for (uint32_t i = 0;; ++i) {
    INCSHRINK_RETURN_NOT_OK(owner1_->Pump().status());
    if (join_view) INCSHRINK_RETURN_NOT_OK(owner2_->Pump().status());
    listener_.Poll();
    if (!engine_.channel1()->empty() &&
        (!join_view || !engine_.channel2()->empty())) {
      break;
    }
    if (i >= options_.max_wait_polls) {
      return Status::Internal("upload frames never arrived (wire stalled)");
    }
  }
  return engine_.Step();
}

Status SocketDeployment::Run(
    const std::vector<std::vector<LogicalRecord>>& arrivals1,
    const std::vector<std::vector<LogicalRecord>>& arrivals2) {
  INCSHRINK_CHECK_EQ(arrivals1.size(), arrivals2.size());
  for (size_t i = 0; i < arrivals1.size(); ++i) {
    INCSHRINK_RETURN_NOT_OK(Step(arrivals1[i], arrivals2[i]));
  }
  return Status::OK();
}

}  // namespace incshrink
