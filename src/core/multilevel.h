#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/core/shrink.h"
#include "src/core/transform.h"
#include "src/dp/accountant.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/relational/growing_table.h"
#include "src/relational/query.h"
#include "src/storage/materialized_view.h"
#include "src/storage/outsourced_store.h"
#include "src/storage/secure_cache.h"

namespace incshrink {

/// \brief Multi-level "Transform-and-Shrink" (paper Section 8, "Support for
/// complex query workloads").
///
/// Decomposes the query  sigma_pred(T1) JOIN T2  into two chained
/// IncShrink operators, each with its own secure cache, Shrink instance and
/// privacy slice:
///
///   stage 1: an oblivious-selection Transform over the T1 stream whose
///            DP-sized Shrink output materializes the filtered view V1;
///   stage 2: a truncated windowed join whose T1-side *input stream* is the
///            stage-1 synchronization output, materializing V2 — the view
///            queries are answered from.
///
/// The per-stage budgets eps1/eps2 are exactly the knobs the Appendix-D.2
/// allocation optimizer tunes: a starving stage floods its successor with
/// dummy rows, degrading end-to-end efficiency but not correctness.
class MultiLevelPipeline {
 public:
  struct Config {
    double eps1 = 0.75;      ///< stage-1 (filter) privacy slice
    double eps2 = 0.75;      ///< stage-2 (join) privacy slice
    FilterSpec filter;       ///< stage-1 predicate on T1 payloads
    JoinSpec join;           ///< stage-2 join spec
    uint32_t omega = 1;      ///< join truncation bound
    uint32_t budget_b = 10;  ///< lifetime contribution budget (join stage)
    uint32_t window_steps = 10;
    uint32_t timer_T1 = 5;   ///< stage-1 sDPTimer interval
    uint32_t timer_T2 = 10;  ///< stage-2 sDPTimer interval
    uint32_t upload_rows_t1 = 8;
    uint32_t upload_rows_t2 = 8;
    CostModel cost_model = CostModel::EmpLikeLan();
    uint64_t seed = 77;
  };

  explicit MultiLevelPipeline(const Config& config);

  /// Processes one step of logical arrivals through both stages and answers
  /// the analyst query from V2.
  Status Step(const std::vector<LogicalRecord>& new1,
              const std::vector<LogicalRecord>& new2);

  const std::vector<StepMetrics>& step_metrics() const { return metrics_; }
  RunSummary Summary() const;

  const MaterializedView& v1() const { return view1_; }
  const MaterializedView& v2() const { return view2_; }
  Protocol2PC* proto() { return &proto_; }

 private:
  /// Converts stage-1 synchronized view rows back into source-format rows
  /// (the input encoding stage 2 expects). Dummy view rows become dummy
  /// source rows.
  SharedRows ViewRowsToSourceRows(const SharedRows& rows);

  Config config_;
  Party s0_;
  Party s1_;
  Protocol2PC proto_;

  IncShrinkConfig stage1_cfg_;
  IncShrinkConfig stage2_cfg_;
  PrivacyAccountant accountant1_;
  PrivacyAccountant accountant2_;
  TransformProtocol transform1_;
  TransformProtocol transform2_;
  std::unique_ptr<ShrinkTimer> shrink1_;
  std::unique_ptr<ShrinkTimer> shrink2_;

  OutsourcedTable store_t1_;  ///< raw T1 uploads
  OutsourcedTable store_v1_;  ///< stage-1 outputs, re-encoded as sources
  OutsourcedTable store_t2_;  ///< raw T2 uploads
  SecureCache cache1_;
  SecureCache cache2_;
  MaterializedView view1_;
  MaterializedView view2_;

  WindowJoinCounter truth_;
  Rng owner_rng_;
  std::vector<LogicalRecord> overflow1_;
  std::vector<LogicalRecord> overflow2_;
  uint64_t t_ = 0;
  std::vector<StepMetrics> metrics_;
};

}  // namespace incshrink
