#include "src/core/shrink.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/dp/laplace.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/shuffle.h"
#include "src/oblivious/sort.h"

namespace incshrink {

namespace {
constexpr double kFpOffset = 1048576.0;  // 2^20
constexpr double kFpScale = 1024.0;      // 2^10

/// The sync-path cache sort under the configured execution policy: the
/// fetched prefix must be in real-first FIFO order either way, so the
/// shuffle tier runs the full shuffle-then-sort here (unlike flushes,
/// which keep only a random permutation).
void SortCacheForSync(Protocol2PC* proto, const IncShrinkConfig& config,
                      SecureCache* cache) {
  if (config.sort_algorithm == SortAlgorithm::kShuffleSort) {
    ObliviousShuffleSort(proto, cache->rows(), kViewSortKeyCol,
                         /*ascending=*/false);
  } else {
    ObliviousSort(proto, cache->rows(), kViewSortKeyCol,
                  /*ascending=*/false);
  }
}
}  // namespace

Word EncodeThresholdFixedPoint(double x) {
  const double shifted = (x + kFpOffset) * kFpScale;
  if (shifted <= 0) return 0;
  if (shifted >= 4294967295.0) return 0xFFFFFFFFu;
  return static_cast<Word>(std::llround(shifted));
}

double DecodeThresholdFixedPoint(Word enc) {
  return static_cast<double>(enc) / kFpScale - kFpOffset;
}

// ---------------------------------------------------------------------------
// sDPTimer
// ---------------------------------------------------------------------------

ShrinkTimer::ShrinkTimer(Protocol2PC* proto, const IncShrinkConfig& config)
    : proto_(proto), config_(config),
      scale_(static_cast<double>(config.budget_b) / config.eps) {}

ShrinkPlan ShrinkTimer::Plan(uint64_t t, SecureCache* cache) {
  ShrinkPlan plan;
  if (config_.timer_T == 0 || t % config_.timer_T != 0) return plan;
  plan.before = proto_->Snapshot();

  // Alg. 2 lines 3-6: recover c internally, distort with joint noise.
  const uint32_t c = cache->RecoverCounterInside(proto_);
  const double noise = proto_->JointLaplace(scale_);
  plan.released_size =
      ClampRoundNonNegative(static_cast<double>(c) + noise);
  plan.fired = true;
  return plan;
}

ShrinkResult ShrinkTimer::Commit(const ShrinkPlan& plan, SecureCache* cache,
                                 MaterializedView* view) {
  INCSHRINK_CHECK(plan.fired);
  ShrinkResult result;

  // Alg. 2 lines 7-8: prefix fetch from the sorted cache, view append.
  result.released_size = plan.released_size;
  SharedRows fetched =
      TakeSortedPrefix(proto_, cache->rows(), plan.released_size);
  result.sync_rows = fetched.size();
  view->Append(fetched);

  // Alg. 2 line 9: reset and re-share the counter.
  cache->ResetCounter(proto_);

  result.fired = true;
  result.simulated_seconds = proto_->SimulatedSecondsSince(plan.before);
  return result;
}

ShrinkResult ShrinkTimer::Step(uint64_t t, SecureCache* cache,
                               MaterializedView* view) {
  ShrinkPlan plan = Plan(t, cache);
  // oblivious-ok: timer fire decision is a public function of the step
  // counter and timer_T (Alg. 2 line 2) — never of cache contents
  if (!plan.fired) return plan.early;
  SortCacheForSync(proto_, config_, cache);
  return Commit(plan, cache, view);
}

// ---------------------------------------------------------------------------
// sDPANT
// ---------------------------------------------------------------------------

ShrinkAnt::ShrinkAnt(Protocol2PC* proto, const IncShrinkConfig& config)
    : proto_(proto), config_(config), eps1_(config.eps / 2),
      eps2_(config.eps / 2), shared_theta_(proto->FreshShare(0)) {
  RefreshThreshold();
}

void ShrinkAnt::RefreshThreshold() {
  // theta~ = theta + Lap(2b/eps1), secret-shared across the servers
  // (Alg. 3 lines 2-3 / 11-12).
  const double noise =
      proto_->JointLaplace(2.0 * config_.budget_b / eps1_);
  const Word enc = EncodeThresholdFixedPoint(config_.ant_theta + noise);
  shared_theta_ = proto_->FreshShare(enc);
}

double ShrinkAnt::noisy_threshold_inside() const {
  return DecodeThresholdFixedPoint(
      proto_->RecoverInside(shared_theta_));
}

ShrinkPlan ShrinkAnt::Plan(uint64_t t, SecureCache* cache) {
  (void)t;
  ShrinkPlan plan;
  plan.before = proto_->Snapshot();

  // Alg. 3 lines 5-7: recover c and theta~ internally, distort c, compare.
  const uint32_t c = cache->RecoverCounterInside(proto_);
  const double theta = noisy_threshold_inside();
  const double c_noisy =
      static_cast<double>(c) +
      proto_->JointLaplace(4.0 * config_.budget_b / eps1_);
  proto_->AccountAndGates(kWordBits);  // in-circuit threshold comparison
  // oblivious-ok: above-noisy-threshold test (Alg. 3 lines 5-7) — both
  // operands carry fresh Laplace noise, so the comparison outcome is the
  // eps1-budgeted DP release the SVT analysis pays for; publishing the
  // fire/no-fire bit is the mechanism's sanctioned output
  if (c_noisy < theta) {
    plan.early.simulated_seconds =
        proto_->SimulatedSecondsSince(plan.before);
    return plan;
  }

  // Alg. 3 lines 8-10: sz = c + Lap(b/eps2). A Laplace release at scale
  // b/eps2 is eps2-DP for the b-sensitive counter, so the eps1 + eps2 = eps
  // split of line 1 composes exactly. (Algorithm 5 / M_ant use the more
  // conservative 2b/eps2; that variant only strengthens the guarantee.)
  const double noise =
      proto_->JointLaplace(static_cast<double>(config_.budget_b) / eps2_);
  plan.released_size =
      ClampRoundNonNegative(static_cast<double>(c) + noise);
  plan.fired = true;
  return plan;
}

ShrinkResult ShrinkAnt::Commit(const ShrinkPlan& plan, SecureCache* cache,
                               MaterializedView* view) {
  INCSHRINK_CHECK(plan.fired);
  ShrinkResult result;
  result.released_size = plan.released_size;
  SharedRows fetched =
      TakeSortedPrefix(proto_, cache->rows(), plan.released_size);
  result.sync_rows = fetched.size();
  view->Append(fetched);

  // Alg. 3 lines 11-13: fresh threshold, reset counter.
  RefreshThreshold();
  cache->ResetCounter(proto_);

  result.fired = true;
  result.simulated_seconds = proto_->SimulatedSecondsSince(plan.before);
  return result;
}

ShrinkResult ShrinkAnt::Step(uint64_t t, SecureCache* cache,
                             MaterializedView* view) {
  ShrinkPlan plan = Plan(t, cache);
  // oblivious-ok: ANT fire decision is the DP-released SVT outcome (see the
  // noisy-threshold comparison in Plan) — public by the eps1 budget charge
  if (!plan.fired) return plan.early;
  SortCacheForSync(proto_, config_, cache);
  return Commit(plan, cache, view);
}

// ---------------------------------------------------------------------------
// Cache flush
// ---------------------------------------------------------------------------

bool FlushDue(const IncShrinkConfig& config, uint64_t t) {
  return config.flush_interval != 0 && t % config.flush_interval == 0;
}

ShrinkResult CommitFlush(Protocol2PC* proto, const IncShrinkConfig& config,
                         SecureCache* cache, MaterializedView* view,
                         const CircuitStats& before) {
  ShrinkResult result;
  SharedRows fetched =
      TakeFlushPrefix(proto, cache->rows(), config.flush_size);
  result.sync_rows = fetched.size();
  view->Append(fetched);
  // The flush recycles the entire remaining array, so no cached real entry
  // survives and the secret-shared cardinality counter must drop to zero
  // with it. Leaving it standing made every post-flush DP release re-count
  // rows that were already synchronized (or recycled) and fetch too many
  // entries from the rebuilt cache.
  cache->ResetCounter(proto);
  result.fired = true;
  result.simulated_seconds = proto->SimulatedSecondsSince(before);
  return result;
}

ShrinkResult MaybeFlushCache(Protocol2PC* proto,
                             const IncShrinkConfig& config, uint64_t t,
                             SecureCache* cache, MaterializedView* view) {
  if (!FlushDue(config, t)) return ShrinkResult{};
  const CircuitStats before = proto->Snapshot();
  if (config.sort_algorithm == SortAlgorithm::kShuffleSort) {
    // Flush tier: the prefix cut is public-size and the suffix is recycled,
    // so any secret permutation works — one Waksman shuffle replaces the
    // whole sorting network (~3.7x fewer AND gates at n = 4096).
    ObliviousRandomPermute(proto, cache->rows());
  } else {
    ObliviousSort(proto, cache->rows(), kViewSortKeyCol,
                  /*ascending=*/false);
  }
  return CommitFlush(proto, config, cache, view, before);
}

}  // namespace incshrink
