#include "src/core/analyst.h"

#include "src/oblivious/formats.h"

namespace incshrink {

ObliviousPredicate RewriteToViewPredicate(const AnalystQuery& query) {
  switch (query.kind) {
    case AnalystQuery::Kind::kCountAll:
      return ObliviousPredicate::True();
    case AnalystQuery::Kind::kCountDateRange:
      return ObliviousPredicate::ColumnBetween(kViewDate2Col, query.lo,
                                               query.hi);
    case AnalystQuery::Kind::kCountKeyEquals:
      return ObliviousPredicate::ColumnEquals(kViewKeyCol, query.key);
  }
  return ObliviousPredicate::True();
}

}  // namespace incshrink
