#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/shuffle.h"
#include "src/relational/encode.h"
#include "src/storage/checkpoint.h"
#include "src/storage/serialization.h"

namespace incshrink {

namespace {

IncShrinkConfig AdjustForStrategy(IncShrinkConfig config) {
  if (config.strategy == Strategy::kEp) {
    // EP's defining behaviour: materialize the exhaustively padded MPC
    // outputs verbatim (no oblivious compaction).
    config.compact_transform_output = false;
  }
  return config;
}

// ---------------------------------------------------------------------------
// ICKP snapshot layout of one engine (src/storage/checkpoint.h). Sections in
// fixed order; every variable-length list is count-prefixed and decoded under
// the reader's ok() guard, so hostile counts can never read past a section.
// ---------------------------------------------------------------------------
constexpr uint32_t kTagFingerprint = CheckpointTag('C', 'F', 'G', ' ');
constexpr uint32_t kTagClocks = CheckpointTag('C', 'L', 'K', ' ');
constexpr uint32_t kTagRandomness = CheckpointTag('R', 'N', 'G', ' ');
constexpr uint32_t kTagLedger = CheckpointTag('A', 'C', 'C', 'T');
constexpr uint32_t kTagStore1 = CheckpointTag('S', 'T', 'R', '1');
constexpr uint32_t kTagStore2 = CheckpointTag('S', 'T', 'R', '2');
constexpr uint32_t kTagCache = CheckpointTag('C', 'S', 'H', 'D');
constexpr uint32_t kTagTheta = CheckpointTag('T', 'H', 'T', 'A');
constexpr uint32_t kTagView = CheckpointTag('V', 'I', 'E', 'W');
constexpr uint32_t kTagTruth = CheckpointTag('T', 'R', 'U', 'T');
constexpr uint32_t kTagLogs = CheckpointTag('L', 'O', 'G', 'S');
constexpr uint32_t kTagChannel1 = CheckpointTag('C', 'H', 'N', '1');
constexpr uint32_t kTagChannel2 = CheckpointTag('C', 'H', 'N', '2');

void SaveStore(CheckpointWriter* w, uint32_t tag,
               const OutsourcedTable& store) {
  w->BeginSection(tag);
  w->U64(store.steps());
  for (uint64_t s = 0; s < store.steps(); ++s) {
    w->WriteSharedRows(store.batch(s));
  }
  w->EndSection();
}

Status LoadStore(CheckpointReader* r, uint32_t tag, size_t width,
                 std::vector<SharedRows>* out) {
  r->BeginSection(tag);
  const uint64_t steps = r->U64();
  for (uint64_t s = 0; s < steps && r->ok(); ++s) {
    INCSHRINK_ASSIGN_OR_RETURN(SharedRows batch, r->ReadSharedRows());
    if (batch.width() != width) {
      return Status::InvalidArgument(
          "snapshot store batch has the wrong row width");
    }
    out->push_back(std::move(batch));
  }
  r->EndSection();
  return r->ExpectOk("outsourced store");
}

void SaveChannel(CheckpointWriter* w, uint32_t tag, const UploadChannel& ch) {
  w->BeginSection(tag);
  const std::vector<std::vector<uint8_t>> frames = ch.PendingFrames();
  w->U64(frames.size());
  for (const std::vector<uint8_t>& frame : frames) w->Bytes(frame);
  w->U64(ch.frames_pushed());
  w->U64(ch.frames_popped());
  w->U64(ch.push_rejects());
  w->U64(ch.bytes_pushed());
  w->U64(ch.max_depth());
  w->EndSection();
}

/// Decodes a channel section into a scratch channel of this deployment's
/// capacity; the scratch commits by move-assignment only after every other
/// snapshot section has validated.
Status LoadChannel(CheckpointReader* r, uint32_t tag, UploadChannel* scratch) {
  r->BeginSection(tag);
  const uint64_t count = r->U64();
  std::vector<std::vector<uint8_t>> frames;
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    frames.push_back(r->Bytes());
  }
  UploadChannel::CounterState counters;
  counters.frames_pushed = r->U64();
  counters.frames_popped = r->U64();
  counters.push_rejects = r->U64();
  counters.bytes_pushed = r->U64();
  counters.max_depth = r->U64();
  r->EndSection();
  INCSHRINK_RETURN_NOT_OK(r->ExpectOk("upload channel backlog"));
  return scratch->Restore(std::move(frames), counters);
}

void SaveMetrics(CheckpointWriter* w, const StepMetrics& m) {
  w->U64(m.t);
  w->F64(m.transform_seconds);
  w->F64(m.shrink_seconds);
  w->F64(m.query_seconds);
  w->U64(m.true_count);
  w->U64(m.view_answer);
  w->F64(m.l1_error);
  w->F64(m.relative_error);
  w->U64(m.view_rows);
  w->U64(m.cache_rows);
  w->U8(m.synced ? 1 : 0);
  w->U64(m.sync_rows);
  w->U8(m.flushed ? 1 : 0);
}

/// False on a non-canonical bool byte (hostile snapshot); reader ok-flag
/// failures surface through the caller's ExpectOk.
bool LoadMetrics(CheckpointReader* r, StepMetrics* m) {
  m->t = r->U64();
  m->transform_seconds = r->F64();
  m->shrink_seconds = r->F64();
  m->query_seconds = r->F64();
  m->true_count = r->U64();
  m->view_answer = r->U64();
  m->l1_error = r->F64();
  m->relative_error = r->F64();
  m->view_rows = r->U64();
  m->cache_rows = r->U64();
  const uint8_t synced = r->U8();
  m->sync_rows = r->U64();
  const uint8_t flushed = r->U8();
  if (synced > 1 || flushed > 1) return false;
  m->synced = synced == 1;
  m->flushed = flushed == 1;
  return true;
}

}  // namespace

Engine::Engine(const IncShrinkConfig& config)
    : config_(AdjustForStrategy(config)),
      channel1_(config.upload_channel_capacity),
      channel2_(config.upload_channel_capacity),
      s0_(0, config.seed * 0x9E3779B97F4A7C15ull + 1),
      s1_(1, config.seed * 0xC2B2AE3D27D4EB4Full + 2),
      proto_(&s0_, &s1_, config.cost_model),
      accountant_(config.eps, config.budget_b, config.omega),
      store1_(kSrcWidth),
      store2_(kSrcWidth),
      cache_(&proto_, config_.num_cache_shards, config_.eps,
             static_cast<double>(config_.budget_b), config_.seed,
             config_.cost_model),
      transform_(&proto_, config_, &accountant_),
      truth_(WindowJoinQuery{config.join.window_lo, config.join.window_hi,
                             config.join.use_window}) {
  INCSHRINK_CHECK(config.Validate().ok());
  // One Shrink instance per shard, each constructed on its shard's protocol
  // with its eps slice. For K == 1 the single instance lives on the
  // engine's own protocol with the full eps — exactly the pre-sharding
  // construction, bit for bit.
  const std::vector<double>& slices = cache_.shard_eps();
  shard_configs_.reserve(slices.size());
  for (const double slice : slices) {
    IncShrinkConfig shard_cfg = config_;
    shard_cfg.eps = slice;
    shard_configs_.push_back(shard_cfg);
  }
  if (config.strategy == Strategy::kDpTimer) {
    for (size_t k = 0; k < shard_configs_.size(); ++k) {
      timers_.push_back(std::make_unique<ShrinkTimer>(cache_.shard_proto(k),
                                                      shard_configs_[k]));
    }
  } else if (config.strategy == Strategy::kDpAnt) {
    for (size_t k = 0; k < shard_configs_.size(); ++k) {
      ants_.push_back(std::make_unique<ShrinkAnt>(cache_.shard_proto(k),
                                                  shard_configs_[k]));
    }
  }
  // Only the DP strategies fork-join over shards; EP/OTM materialize
  // serially and NM never touches the cache, so don't park idle workers.
  if (cache_.num_shards() > 1 && (!timers_.empty() || !ants_.empty())) {
    shard_pool_ = std::make_unique<ThreadPool>(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(ResolveThreadCount(
                             config_.cache_shard_threads)),
                         cache_.num_shards())));
  }
  // The transform's join/compaction sorts share the deployment's batch
  // execution policy (and pool) with the Shrink-phase cache sorts.
  transform_.set_sort_exec(batch_exec());
}

uint64_t Engine::MaterializeAll() {
  uint64_t total = 0;
  for (size_t k = 0; k < cache_.num_shards(); ++k) {
    SecureCache& shard = cache_.shard(k);
    const uint64_t rows = shard.rows()->size();
    proto_.AccountBytes(rows * kViewWidth * sizeof(Word) * 2);
    view_.Append(*shard.rows());
    shard.rows()->Clear();
    // On the shard's own protocol: every write to a shard counter must draw
    // its share randomness from the shard's derived substream (== &proto_
    // for the single shard of an unsharded deployment).
    shard.ResetCounter(cache_.shard_proto(k));
    total += rows;
  }
  return total;
}

uint64_t Engine::AnswerQuery(double* seconds) {
  const CircuitStats before = proto_.Snapshot();
  uint64_t answer = 0;
  if (config_.strategy == Strategy::kNm) {
    // Standard SOGDB: re-evaluate the query over the entire outsourced data.
    const SharedRows all1 = store1_.ConcatAll();
    if (config_.view_kind == ViewKind::kFilter) {
      const WordShares count = ObliviousCountWhere(
          &proto_, all1, kSrcValidCol,
          ObliviousPredicate::ColumnBetween(kSrcPayloadCol, config_.filter.lo,
                                            config_.filter.hi));
      answer = proto_.Reveal(count);
    } else {
      const SharedRows all2 = store2_.ConcatAll();
      answer = ObliviousJoinCountFull(&proto_, all1, all2, config_.join);
      proto_.AccountBytes(sizeof(Word) * 2);  // reveal the count
      proto_.AccountRounds(1);
    }
  } else {
    const WordShares count = ObliviousCountWhere(
        &proto_, view_.rows(), kViewIsViewCol, ObliviousPredicate::True());
    answer = proto_.Reveal(count);
  }
  *seconds = proto_.SimulatedSecondsSince(before);
  return answer;
}

void Engine::ForEachShard(const std::function<void(size_t)>& body) {
  const size_t num = cache_.num_shards();
  if (shard_pool_ != nullptr) {
    shard_pool_->ParallelFor(num, body);
  } else {
    for (size_t k = 0; k < num; ++k) body(k);
  }
}

Status Engine::Step() {
  INCSHRINK_RETURN_NOT_OK(BeginStep());
  return FinishStep();
}

Status Engine::BeginStep() {
  INCSHRINK_CHECK(pending_ == nullptr);
  pending_ = std::make_unique<PendingStep>();
  const Status st = BeginStepImpl();
  // A rejected step (malformed peer frame) must leave the engine steppable:
  // drop the half-built step state so the next Begin/Step starts clean.
  if (!st.ok()) pending_.reset();
  return st;
}

Status Engine::BeginStepImpl() {
  PendingStep& p = *pending_;
  ++t_;
  StepMetrics& m = p.m;
  m.t = t_;

  // Drain queued owner frames: at most max_batches_per_step per channel, in
  // fixed owner order (a T1 frame, then its paired T2 frame — join views
  // drain the channels as pairs so the ground-truth counter sees aligned
  // streams). Drained frames merge into one upload batch per relation, so
  // Transform still sees exactly one batch per engine step; the drain count
  // is a pure function of the queue depths and the config bound.
  const bool join_view = config_.view_kind != ViewKind::kFilter;
  SharedRows merged1(kSrcWidth);
  SharedRows merged2(kSrcWidth);
  for (uint32_t b = 0; b < config_.max_batches_per_step; ++b) {
    if (join_view && channel2_.empty()) break;  // wait for the full pair
    std::vector<uint8_t> raw1;
    if (!channel1_.TryPop(&raw1)) break;
    INCSHRINK_ASSIGN_OR_RETURN(const UploadFrame f1, DecodeUploadFrame(raw1));
    // A malformed peer must surface as a Status, never abort the server:
    // validate the decoded width before AppendAll's internal CHECK sees it.
    if (f1.batch.width() != kSrcWidth) {
      return Status::InvalidArgument("upload frame has wrong row width");
    }
    // Ground truth over the logical growing database, replayed from the
    // frames' evaluation-only arrival sections in owner-step order. Under
    // an owner lead the truth counter advances only as frames are drained:
    // the engine's notion of q_t(D_t) is the synchronized prefix.
    if (join_view) {
      std::vector<uint8_t> raw2;
      INCSHRINK_CHECK(channel2_.TryPop(&raw2));
      INCSHRINK_ASSIGN_OR_RETURN(const UploadFrame f2,
                                 DecodeUploadFrame(raw2));
      if (f2.batch.width() != kSrcWidth) {
        return Status::InvalidArgument("upload frame has wrong row width");
      }
      // A hostile or buggy peer can desynchronize the two owner streams;
      // over a real wire that must surface as a Status, never abort the
      // server (the transport's per-connection sequence stamps catch most
      // of this earlier, but the engine is the last line of defense).
      if (f1.owner_step != f2.owner_step) {
        return Status::InvalidArgument(
            "paired upload frames disagree on owner step");
      }
      truth_.Step(f1.arrivals, f2.arrivals);
      merged2.AppendAll(f2.batch);
      ++frames_drained_;
    } else {
      for (const LogicalRecord& rec : f1.arrivals) {
        if (rec.payload >= config_.filter.lo &&
            rec.payload <= config_.filter.hi)
          ++filter_truth_;
      }
    }
    merged1.AppendAll(f1.batch);
    ++frames_drained_;
  }
  m.true_count = join_view ? truth_.count() : filter_truth_;

  const uint64_t up1 = merged1.size();
  proto_.AccountBytes(up1 * kSrcWidth * sizeof(Word) * 2);
  store1_.AppendBatch(std::move(merged1));
  uint64_t up2 = 0;
  if (join_view) {
    up2 = merged2.size();
    proto_.AccountBytes(up2 * kSrcWidth * sizeof(Word) * 2);
    store2_.AppendBatch(std::move(merged2));
  }
  upload_rows_t1_log_.push_back(up1);
  upload_rows_t2_log_.push_back(up2);
  transcript_.push_back({TranscriptEvent::Kind::kUpload, t_, up1 + up2});

  // View maintenance.
  const bool transforms = config_.strategy == Strategy::kDpTimer ||
                          config_.strategy == Strategy::kDpAnt ||
                          config_.strategy == Strategy::kEp ||
                          (config_.strategy == Strategy::kOtm && t_ == 1);
  if (transforms) {
    INCSHRINK_ASSIGN_OR_RETURN(
        const TransformProtocol::StepResult tr,
        transform_.Step(t_, store1_, store2_, &cache_));
    m.transform_seconds = tr.simulated_seconds;
    real_entries_per_step_.push_back(tr.real_entries);
    total_real_entries_ += tr.real_entries;
    transcript_.push_back(
        {TranscriptEvent::Kind::kTransformOut, t_, tr.appended_rows});
  } else {
    real_entries_per_step_.push_back(0);
  }

  p.release = LeakageRelease{t_, 0, false};
  switch (config_.strategy) {
    case Strategy::kDpTimer:
    case Strategy::kDpAnt: {
      // Per-shard Shrink plans. Every shard plans on its own protocol
      // instance, so the K tasks share no mutable state; with K > 1 they
      // run concurrently on the shard pool. The fired shards' cache sorts
      // become one fused batch submission (executed by FinishStep, or by
      // the fleet when it coalesces sorts across tenants).
      p.dp = true;
      const size_t num = cache_.num_shards();
      p.plans.resize(num);
      p.staged_sync.resize(num);
      ForEachShard([&](size_t k) {
        SecureCache* shard = &cache_.shard(k);
        p.plans[k] = !timers_.empty() ? timers_[k]->Plan(t_, shard)
                                      : ants_[k]->Plan(t_, shard);
      });
      for (size_t k = 0; k < num; ++k) {
        if (p.plans[k].fired) {
          p.jobs.push_back(SortJob{cache_.shard_proto(k),
                                   cache_.shard(k).rows(), kViewSortKeyCol,
                                   0, /*lex=*/false, /*ascending=*/false,
                                   config_.sort_algorithm});
        }
      }
      break;
    }
    case Strategy::kEp:
    case Strategy::kOtm: {
      if (transforms) {
        const CircuitStats before = proto_.Snapshot();
        const uint64_t rows = MaterializeAll();
        m.synced = true;
        m.sync_rows = rows;
        m.shrink_seconds += proto_.SimulatedSecondsSince(before);
        transcript_.push_back({TranscriptEvent::Kind::kSync, t_, rows});
      }
      break;
    }
    case Strategy::kNm:
      break;
  }
  return Status::OK();
}

std::vector<SortJob> Engine::TakePendingSortJobs() {
  INCSHRINK_CHECK(pending_ != nullptr);
  pending_->jobs_taken = true;
  return std::move(pending_->jobs);
}

Status Engine::FinishStep() {
  INCSHRINK_CHECK(pending_ != nullptr);
  PendingStep& p = *pending_;
  StepMetrics& m = p.m;

  if (p.dp) {
    const size_t num = cache_.num_shards();
    // Fused sync sorts of the fired shards (unless the caller already
    // executed the jobs it took): one cross-shard batch submission whose
    // layer rounds pool all shards' pair work on the deployment pool.
    if (!p.jobs_taken && !p.jobs.empty()) {
      ObliviousSortBatch(p.jobs.data(), p.jobs.size(), batch_exec());
    }
    std::vector<ShrinkResult> syncs(num);
    ForEachShard([&](size_t k) {
      if (!p.plans[k].fired) {
        syncs[k] = p.plans[k].early;
        return;
      }
      SecureCache* shard = &cache_.shard(k);
      syncs[k] = !timers_.empty()
                     ? timers_[k]->Commit(p.plans[k], shard,
                                          &p.staged_sync[k])
                     : ants_[k]->Commit(p.plans[k], shard,
                                        &p.staged_sync[k]);
    });

    // Flush phase: public schedule, so one fused submission sorts every
    // shard's remaining cache, then the fixed-prefix commits run per shard.
    std::vector<ShrinkResult> flushes(num);
    std::vector<MaterializedView> staged_flush(num);
    if (FlushDue(config_, t_)) {
      std::vector<CircuitStats> before(num);
      for (size_t k = 0; k < num; ++k) {
        before[k] = cache_.shard_proto(k)->Snapshot();
      }
      if (config_.sort_algorithm == SortAlgorithm::kShuffleSort) {
        // Shuffle tier: flushes recycle the suffix anyway, so a fused
        // random Waksman permute replaces the cross-shard flush sort.
        std::vector<PermuteJob> permute_jobs;
        permute_jobs.reserve(num);
        for (size_t k = 0; k < num; ++k) {
          permute_jobs.push_back(
              PermuteJob{cache_.shard_proto(k), cache_.shard(k).rows()});
        }
        ObliviousRandomPermuteBatch(permute_jobs.data(), permute_jobs.size(),
                                    batch_exec());
      } else {
        std::vector<SortJob> flush_jobs;
        flush_jobs.reserve(num);
        for (size_t k = 0; k < num; ++k) {
          flush_jobs.push_back(
              SortJob{cache_.shard_proto(k), cache_.shard(k).rows(),
                      kViewSortKeyCol, 0, /*lex=*/false, /*ascending=*/false});
        }
        ObliviousSortBatch(flush_jobs.data(), flush_jobs.size(),
                           batch_exec());
      }
      ForEachShard([&](size_t k) {
        flushes[k] = CommitFlush(cache_.shard_proto(k), shard_configs_[k],
                                 &cache_.shard(k), &staged_flush[k],
                                 before[k]);
      });
    }

    // Fixed shard-order merge — the exact pre-fusion loop, so the view
    // contents, transcript and metrics are bit-identical at any worker
    // count (and, for K == 1, identical to the unsharded engine).
    for (size_t k = 0; k < num; ++k) {
      m.shrink_seconds += syncs[k].simulated_seconds;
      if (syncs[k].fired) {
        m.synced = true;
        m.sync_rows += syncs[k].sync_rows;
        p.release.size += syncs[k].released_size;
        p.release.fired = true;
        view_.Append(p.staged_sync[k].rows());
        transcript_.push_back(
            {TranscriptEvent::Kind::kSync, t_, syncs[k].sync_rows});
      }
      if (flushes[k].fired) {
        m.flushed = true;
        m.shrink_seconds += flushes[k].simulated_seconds;
        view_.Append(staged_flush[k].rows());
        transcript_.push_back(
            {TranscriptEvent::Kind::kFlush, t_, flushes[k].sync_rows});
      }
    }
  }
  releases_.push_back(p.release);

  // Analyst query.
  m.view_answer = AnswerQuery(&m.query_seconds);
  m.l1_error = std::abs(static_cast<double>(m.view_answer) -
                        static_cast<double>(m.true_count));
  m.relative_error =
      m.l1_error / std::max<double>(1.0, static_cast<double>(m.true_count));
  m.view_rows = view_.size();
  m.cache_rows = cache_.size();
  metrics_.push_back(m);
  pending_.reset();

  // Automatic checkpoint slot. Snapshotting draws no randomness, so the run
  // stays bit-identical to an uncheckpointed one at any cadence.
  if (config_.checkpoint_interval > 0 &&
      t_ % config_.checkpoint_interval == 0) {
    Result<std::vector<uint8_t>> snapshot = SaveCheckpoint();
    if (!snapshot.ok()) return snapshot.status();
    last_checkpoint_ = std::move(snapshot).value();
    last_checkpoint_step_ = t_;
    ++checkpoints_taken_;
  }
  return Status::OK();
}

uint64_t Engine::StepsToNextPublicRelease() const {
  // The next step is t_ + 1; a cadence of period P fires at steps divisible
  // by P, so the distance is P - (t_ mod P), in [1, P].
  uint64_t dist = std::numeric_limits<uint64_t>::max();
  const bool dp = config_.strategy == Strategy::kDpTimer ||
                  config_.strategy == Strategy::kDpAnt;
  if (config_.strategy == Strategy::kDpTimer && config_.timer_T > 0) {
    dist = std::min<uint64_t>(dist, config_.timer_T - (t_ % config_.timer_T));
  }
  if (dp && config_.flush_interval > 0) {
    dist = std::min<uint64_t>(
        dist, config_.flush_interval - (t_ % config_.flush_interval));
  }
  return dist;
}

RunSummary Engine::Summary() const {
  RunSummary s;
  for (const StepMetrics& m : metrics_) {
    s.l1_error.Add(m.l1_error);
    s.relative_error.Add(m.relative_error);
    s.true_count_stat.Add(static_cast<double>(m.true_count));
    s.qet_seconds.Add(m.query_seconds);
    if (m.transform_seconds > 0) s.transform_seconds.Add(m.transform_seconds);
    if (m.synced) {
      s.shrink_seconds.Add(m.shrink_seconds);
      ++s.updates;
    }
    if (m.flushed) ++s.flushes;
    s.total_mpc_seconds += m.transform_seconds + m.shrink_seconds;
    s.total_query_seconds += m.query_seconds;
  }
  s.steps = metrics_.size();
  s.final_view_mb = view_.SizeMb();
  s.final_view_rows = view_.size();
  s.final_cache_rows = cache_.size();
  s.total_real_entries_cached = total_real_entries_;
  if (!metrics_.empty()) s.final_true_count = metrics_.back().true_count;
  return s;
}

SimulatorPublicParams Engine::MakeSimulatorParams() const {
  SimulatorPublicParams pp;
  const std::vector<uint64_t> u1 = upload_rows_t1_log_;
  const std::vector<uint64_t> u2 = upload_rows_t2_log_;
  pp.upload_rows = [u1, u2](uint64_t t) -> uint64_t {
    if (t < 1 || t > u1.size()) return 0;
    return u1[t - 1] + u2[t - 1];
  };
  // The transform output size is a deterministic function of the public
  // upload sizes (themselves fixed constants or DP releases of the owners'
  // synchronization policies) and public protocol constants.
  const IncShrinkConfig cfg = config_;
  pp.transform_rows = [cfg, u1, u2](uint64_t t) -> uint64_t {
    if (t < 1 || t > u1.size()) return 0;
    if (cfg.view_kind == ViewKind::kFilter) return u1[t - 1];
    if (cfg.t2_is_public ||
        cfg.op == TransformOperator::kNestedLoopJoin) {
      const uint64_t wlen = std::min<uint64_t>(
          TransformProtocol::EligibleSteps(cfg), t - 1);
      uint64_t old1 = 0;
      for (uint64_t s = t - 1 - wlen; s + 1 <= t - 1; ++s) old1 += u1[s];
      return cfg.omega * (u1[t - 1] + old1);
    }
    return cfg.omega * (u1[t - 1] + u2[t - 1]);
  };
  // The Table-1 simulator models one flush of `flush_size` per interval;
  // sharded deployments flush per shard, so scale the modelled size.
  pp.flush_interval = config_.flush_interval;
  pp.flush_size =
      static_cast<uint64_t>(config_.flush_size) * cache_.num_shards();
  return pp;
}

Engine::AdHocResult Engine::AnswerAdHocQuery(const AnalystQuery& query) {
  INCSHRINK_CHECK(config_.view_kind == ViewKind::kWindowJoin);
  AdHocResult result;
  const CircuitStats before = proto_.Snapshot();
  const WordShares count =
      ObliviousCountWhere(&proto_, view_.rows(), kViewIsViewCol,
                          RewriteToViewPredicate(query));
  result.answer = proto_.Reveal(count);
  result.query_seconds = proto_.SimulatedSecondsSince(before);

  for (const WindowJoinCounter::MatchedPair& pair : truth_.pairs()) {
    switch (query.kind) {
      case AnalystQuery::Kind::kCountAll:
        ++result.truth;
        break;
      case AnalystQuery::Kind::kCountDateRange:
        if (pair.date2 >= query.lo && pair.date2 <= query.hi) ++result.truth;
        break;
      case AnalystQuery::Kind::kCountKeyEquals:
        if (pair.key == query.key) ++result.truth;
        break;
    }
  }
  return result;
}

Result<std::vector<uint8_t>> Engine::SaveCheckpoint() {
  if (pending_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot checkpoint between BeginStep and FinishStep");
  }
  CheckpointWriter w;

  w.BeginSection(kTagFingerprint);
  w.U64(ConfigFingerprint(config_));
  w.EndSection();

  w.BeginSection(kTagClocks);
  w.U64(t_);
  w.U64(frames_drained_);
  w.U64(filter_truth_);
  w.U64(total_real_entries_);
  w.EndSection();

  w.BeginSection(kTagRandomness);
  w.WriteRng(s0_.rng()->ExportState());
  w.WriteRng(s1_.rng()->ExportState());
  w.WriteRng(proto_.internal_rng()->ExportState());
  w.WriteStats(proto_.Snapshot());
  w.EndSection();

  w.BeginSection(kTagLedger);
  const std::vector<PrivacyAccountant::LedgerEntry> ledger =
      accountant_.ExportLedger();
  w.U64(ledger.size());
  for (const PrivacyAccountant::LedgerEntry& e : ledger) {
    w.U32(e.rid);
    w.U32(e.charged);
    w.U32(e.contributed);
  }
  w.EndSection();

  SaveStore(&w, kTagStore1, store1_);
  SaveStore(&w, kTagStore2, store2_);

  w.BeginSection(kTagCache);
  w.U64(*cache_.seq());
  w.U64(cache_.append_cursor());
  w.U64(cache_.num_shards());
  for (size_t k = 0; k < cache_.num_shards(); ++k) {
    w.WriteSharedRows(*cache_.shard(k).rows());
    w.WriteWordShares(cache_.shard(k).counter());
    w.U64(cache_.shard(k).seq_value());
  }
  const bool derived = cache_.shard_party(0, 0) != nullptr;
  w.U8(derived ? 1 : 0);
  if (derived) {
    for (size_t k = 0; k < cache_.num_shards(); ++k) {
      w.WriteRng(cache_.shard_party(k, 0)->rng()->ExportState());
      w.WriteRng(cache_.shard_party(k, 1)->rng()->ExportState());
      w.WriteRng(cache_.shard_proto(k)->internal_rng()->ExportState());
      w.WriteStats(cache_.shard_proto(k)->Snapshot());
    }
  }
  w.EndSection();

  w.BeginSection(kTagTheta);
  w.U64(ants_.size());
  for (const std::unique_ptr<ShrinkAnt>& ant : ants_) {
    w.WriteWordShares(ant->shared_theta());
  }
  w.EndSection();

  w.BeginSection(kTagView);
  w.WriteSharedRows(view_.rows());
  w.EndSection();

  w.BeginSection(kTagTruth);
  truth_.SaveTo(&w);
  w.EndSection();

  w.BeginSection(kTagLogs);
  w.U64(metrics_.size());
  for (const StepMetrics& m : metrics_) SaveMetrics(&w, m);
  w.U64(transcript_.size());
  for (const TranscriptEvent& e : transcript_) {
    w.U8(static_cast<uint8_t>(e.kind));
    w.U64(e.t);
    w.U64(e.rows);
  }
  w.U64(releases_.size());
  for (const LeakageRelease& rel : releases_) {
    w.U64(rel.t);
    w.U32(rel.size);
    w.U8(rel.fired ? 1 : 0);
  }
  w.U64(real_entries_per_step_.size());
  for (const uint32_t v : real_entries_per_step_) w.U32(v);
  w.U64(upload_rows_t1_log_.size());
  for (const uint64_t v : upload_rows_t1_log_) w.U64(v);
  w.U64(upload_rows_t2_log_.size());
  for (const uint64_t v : upload_rows_t2_log_) w.U64(v);
  w.EndSection();

  SaveChannel(&w, kTagChannel1, channel1_);
  SaveChannel(&w, kTagChannel2, channel2_);

  std::vector<uint8_t> blob = w.Finish();
  if (blob.size() > config_.checkpoint_max_bytes) {
    return Status::OutOfRange(
        "snapshot exceeds checkpoint_max_bytes; raise the ceiling or "
        "checkpoint a smaller deployment");
  }
  return blob;
}

Status Engine::RestoreCheckpoint(const std::vector<uint8_t>& snapshot) {
  if (pending_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot restore between BeginStep and FinishStep");
  }
  INCSHRINK_ASSIGN_OR_RETURN(CheckpointReader r,
                             CheckpointReader::Open(snapshot));

  // Decode phase: everything lands in temporaries; no engine member is
  // touched until every section (and the container itself) has validated.
  r.BeginSection(kTagFingerprint);
  const uint64_t fingerprint = r.U64();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("snapshot fingerprint"));
  if (fingerprint != ConfigFingerprint(config_)) {
    return Status::FailedPrecondition(
        "snapshot was taken under a different configuration");
  }

  r.BeginSection(kTagClocks);
  const uint64_t t = r.U64();
  const uint64_t frames_drained = r.U64();
  const uint64_t filter_truth = r.U64();
  const uint64_t total_real_entries = r.U64();
  r.EndSection();

  r.BeginSection(kTagRandomness);
  const RngState rng0 = r.ReadRng();
  const RngState rng1 = r.ReadRng();
  const RngState proto_rng = r.ReadRng();
  const CircuitStats proto_stats = r.ReadStats();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("engine clocks and randomness"));

  r.BeginSection(kTagLedger);
  const uint64_t ledger_size = r.U64();
  std::vector<PrivacyAccountant::LedgerEntry> ledger;
  for (uint64_t i = 0; i < ledger_size && r.ok(); ++i) {
    PrivacyAccountant::LedgerEntry e;
    e.rid = r.U32();
    e.charged = r.U32();
    e.contributed = r.U32();
    ledger.push_back(e);
  }
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("privacy ledger"));

  std::vector<SharedRows> batches1;
  std::vector<SharedRows> batches2;
  INCSHRINK_RETURN_NOT_OK(LoadStore(&r, kTagStore1, kSrcWidth, &batches1));
  INCSHRINK_RETURN_NOT_OK(LoadStore(&r, kTagStore2, kSrcWidth, &batches2));

  r.BeginSection(kTagCache);
  const uint64_t cache_seq = r.U64();
  const uint64_t append_cursor = r.U64();
  const uint64_t num_shards = r.U64();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("sharded cache header"));
  if (num_shards != cache_.num_shards()) {
    return Status::InvalidArgument(
        "snapshot shard count disagrees with this engine's configuration");
  }
  std::vector<SharedRows> shard_rows;
  std::vector<WordShares> shard_counters;
  std::vector<uint64_t> shard_seqs;
  for (uint64_t k = 0; k < num_shards && r.ok(); ++k) {
    INCSHRINK_ASSIGN_OR_RETURN(SharedRows rows, r.ReadSharedRows());
    if (rows.width() != kViewWidth) {
      return Status::InvalidArgument(
          "snapshot cache shard has the wrong row width");
    }
    shard_rows.push_back(std::move(rows));
    shard_counters.push_back(r.ReadWordShares());
    shard_seqs.push_back(r.U64());
  }
  const uint8_t has_derived = r.U8();
  std::vector<RngState> shard_party_rngs;
  std::vector<RngState> shard_proto_rngs;
  std::vector<CircuitStats> shard_stats;
  if (has_derived == 1) {
    for (uint64_t k = 0; k < num_shards && r.ok(); ++k) {
      shard_party_rngs.push_back(r.ReadRng());
      shard_party_rngs.push_back(r.ReadRng());
      shard_proto_rngs.push_back(r.ReadRng());
      shard_stats.push_back(r.ReadStats());
    }
  }
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("sharded cache"));
  if (has_derived > 1 ||
      (has_derived == 1) != (cache_.shard_party(0, 0) != nullptr)) {
    return Status::InvalidArgument(
        "snapshot cache shape disagrees with this engine's sharding");
  }

  r.BeginSection(kTagTheta);
  const uint64_t theta_count = r.U64();
  std::vector<WordShares> thetas;
  for (uint64_t k = 0; k < theta_count && r.ok(); ++k) {
    thetas.push_back(r.ReadWordShares());
  }
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("ANT thresholds"));
  if (theta_count != ants_.size()) {
    return Status::InvalidArgument(
        "snapshot strategy state disagrees with this engine's strategy");
  }

  r.BeginSection(kTagView);
  INCSHRINK_ASSIGN_OR_RETURN(SharedRows view_rows, r.ReadSharedRows());
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("materialized view"));
  if (view_rows.width() != kViewWidth) {
    return Status::InvalidArgument(
        "snapshot view has the wrong row width");
  }

  WindowJoinCounter truth = truth_;
  r.BeginSection(kTagTruth);
  INCSHRINK_RETURN_NOT_OK(truth.RestoreFrom(&r));
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("ground-truth counter"));

  r.BeginSection(kTagLogs);
  const uint64_t metrics_count = r.U64();
  std::vector<StepMetrics> metrics;
  for (uint64_t i = 0; i < metrics_count && r.ok(); ++i) {
    StepMetrics m;
    if (!LoadMetrics(&r, &m)) {
      return Status::InvalidArgument(
          "snapshot step metrics carry non-canonical flags");
    }
    metrics.push_back(m);
  }
  const uint64_t transcript_count = r.U64();
  Transcript transcript;
  for (uint64_t i = 0; i < transcript_count && r.ok(); ++i) {
    const uint8_t kind = r.U8();
    TranscriptEvent e{TranscriptEvent::Kind::kUpload, 0, 0};
    e.t = r.U64();
    e.rows = r.U64();
    if (!r.ok()) break;
    if (kind > static_cast<uint8_t>(TranscriptEvent::Kind::kFlush)) {
      return Status::InvalidArgument(
          "snapshot transcript carries an unknown event kind");
    }
    e.kind = static_cast<TranscriptEvent::Kind>(kind);
    transcript.push_back(e);
  }
  const uint64_t release_count = r.U64();
  std::vector<LeakageRelease> releases;
  for (uint64_t i = 0; i < release_count && r.ok(); ++i) {
    LeakageRelease rel;
    rel.t = r.U64();
    rel.size = r.U32();
    const uint8_t fired = r.U8();
    if (!r.ok()) break;
    if (fired > 1) {
      return Status::InvalidArgument(
          "snapshot release log carries non-canonical flags");
    }
    rel.fired = fired == 1;
    releases.push_back(rel);
  }
  const uint64_t real_count = r.U64();
  std::vector<uint32_t> real_entries;
  for (uint64_t i = 0; i < real_count && r.ok(); ++i) {
    real_entries.push_back(r.U32());
  }
  const uint64_t up1_count = r.U64();
  std::vector<uint64_t> up1_log;
  for (uint64_t i = 0; i < up1_count && r.ok(); ++i) {
    up1_log.push_back(r.U64());
  }
  const uint64_t up2_count = r.U64();
  std::vector<uint64_t> up2_log;
  for (uint64_t i = 0; i < up2_count && r.ok(); ++i) {
    up2_log.push_back(r.U64());
  }
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("engine logs"));

  UploadChannel ch1(config_.upload_channel_capacity);
  UploadChannel ch2(config_.upload_channel_capacity);
  INCSHRINK_RETURN_NOT_OK(LoadChannel(&r, kTagChannel1, &ch1));
  INCSHRINK_RETURN_NOT_OK(LoadChannel(&r, kTagChannel2, &ch2));

  INCSHRINK_RETURN_NOT_OK(r.Finish());

  // Commit phase. The ledger restore validates its own invariants and is
  // atomic, so it goes first; everything after it cannot fail (store widths
  // were validated above, the rest are plain assignments). No step below
  // draws randomness — restored cursors resume the exact party streams.
  INCSHRINK_RETURN_NOT_OK(accountant_.RestoreLedger(ledger));
  INCSHRINK_RETURN_NOT_OK(store1_.RestoreBatches(std::move(batches1)));
  INCSHRINK_RETURN_NOT_OK(store2_.RestoreBatches(std::move(batches2)));
  s0_.rng()->RestoreState(rng0);
  s1_.rng()->RestoreState(rng1);
  proto_.internal_rng()->RestoreState(proto_rng);
  proto_.RestoreStats(proto_stats);
  cache_.RestoreCursors(cache_seq, append_cursor);
  for (size_t k = 0; k < cache_.num_shards(); ++k) {
    *cache_.shard(k).rows() = std::move(shard_rows[k]);
    cache_.shard(k).RestoreCounter(shard_counters[k]);
    cache_.shard(k).RestoreSeq(shard_seqs[k]);
  }
  if (has_derived == 1) {
    for (size_t k = 0; k < cache_.num_shards(); ++k) {
      cache_.shard_party(k, 0)->rng()->RestoreState(shard_party_rngs[2 * k]);
      cache_.shard_party(k, 1)->rng()->RestoreState(
          shard_party_rngs[2 * k + 1]);
      cache_.shard_proto(k)->internal_rng()->RestoreState(
          shard_proto_rngs[k]);
      cache_.shard_proto(k)->RestoreStats(shard_stats[k]);
    }
  }
  for (size_t k = 0; k < ants_.size(); ++k) {
    ants_[k]->RestoreTheta(thetas[k]);
  }
  view_.RestoreRows(std::move(view_rows));
  truth_ = std::move(truth);
  t_ = t;
  frames_drained_ = frames_drained;
  filter_truth_ = filter_truth;
  total_real_entries_ = total_real_entries;
  metrics_ = std::move(metrics);
  transcript_ = std::move(transcript);
  releases_ = std::move(releases);
  real_entries_per_step_ = std::move(real_entries);
  upload_rows_t1_log_ = std::move(up1_log);
  upload_rows_t2_log_ = std::move(up2_log);
  channel1_ = std::move(ch1);
  channel2_ = std::move(ch2);
  return Status::OK();
}

double Engine::ComposedEpsilon() const {
  const double owner1 = UploadPolicyEpsilon(config_.upload_policy1);
  const double owner2 =
      config_.t2_is_public ? 0.0 : UploadPolicyEpsilon(config_.upload_policy2);
  return config_.eps + std::max(owner1, owner2);
}

}  // namespace incshrink
