#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/oblivious/cache_ops.h"
#include "src/oblivious/filter.h"
#include "src/oblivious/formats.h"
#include "src/oblivious/join.h"
#include "src/oblivious/shuffle.h"
#include "src/relational/encode.h"
#include "src/storage/serialization.h"

namespace incshrink {

namespace {

IncShrinkConfig AdjustForStrategy(IncShrinkConfig config) {
  if (config.strategy == Strategy::kEp) {
    // EP's defining behaviour: materialize the exhaustively padded MPC
    // outputs verbatim (no oblivious compaction).
    config.compact_transform_output = false;
  }
  return config;
}

}  // namespace

Engine::Engine(const IncShrinkConfig& config)
    : config_(AdjustForStrategy(config)),
      channel1_(config.upload_channel_capacity),
      channel2_(config.upload_channel_capacity),
      s0_(0, config.seed * 0x9E3779B97F4A7C15ull + 1),
      s1_(1, config.seed * 0xC2B2AE3D27D4EB4Full + 2),
      proto_(&s0_, &s1_, config.cost_model),
      accountant_(config.eps, config.budget_b, config.omega),
      store1_(kSrcWidth),
      store2_(kSrcWidth),
      cache_(&proto_, config_.num_cache_shards, config_.eps,
             static_cast<double>(config_.budget_b), config_.seed,
             config_.cost_model),
      transform_(&proto_, config_, &accountant_),
      truth_(WindowJoinQuery{config.join.window_lo, config.join.window_hi,
                             config.join.use_window}) {
  INCSHRINK_CHECK(config.Validate().ok());
  // One Shrink instance per shard, each constructed on its shard's protocol
  // with its eps slice. For K == 1 the single instance lives on the
  // engine's own protocol with the full eps — exactly the pre-sharding
  // construction, bit for bit.
  const std::vector<double>& slices = cache_.shard_eps();
  shard_configs_.reserve(slices.size());
  for (const double slice : slices) {
    IncShrinkConfig shard_cfg = config_;
    shard_cfg.eps = slice;
    shard_configs_.push_back(shard_cfg);
  }
  if (config.strategy == Strategy::kDpTimer) {
    for (size_t k = 0; k < shard_configs_.size(); ++k) {
      timers_.push_back(std::make_unique<ShrinkTimer>(cache_.shard_proto(k),
                                                      shard_configs_[k]));
    }
  } else if (config.strategy == Strategy::kDpAnt) {
    for (size_t k = 0; k < shard_configs_.size(); ++k) {
      ants_.push_back(std::make_unique<ShrinkAnt>(cache_.shard_proto(k),
                                                  shard_configs_[k]));
    }
  }
  // Only the DP strategies fork-join over shards; EP/OTM materialize
  // serially and NM never touches the cache, so don't park idle workers.
  if (cache_.num_shards() > 1 && (!timers_.empty() || !ants_.empty())) {
    shard_pool_ = std::make_unique<ThreadPool>(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(ResolveThreadCount(
                             config_.cache_shard_threads)),
                         cache_.num_shards())));
  }
  // The transform's join/compaction sorts share the deployment's batch
  // execution policy (and pool) with the Shrink-phase cache sorts.
  transform_.set_sort_exec(batch_exec());
}

uint64_t Engine::MaterializeAll() {
  uint64_t total = 0;
  for (size_t k = 0; k < cache_.num_shards(); ++k) {
    SecureCache& shard = cache_.shard(k);
    const uint64_t rows = shard.rows()->size();
    proto_.AccountBytes(rows * kViewWidth * sizeof(Word) * 2);
    view_.Append(*shard.rows());
    shard.rows()->Clear();
    // On the shard's own protocol: every write to a shard counter must draw
    // its share randomness from the shard's derived substream (== &proto_
    // for the single shard of an unsharded deployment).
    shard.ResetCounter(cache_.shard_proto(k));
    total += rows;
  }
  return total;
}

uint64_t Engine::AnswerQuery(double* seconds) {
  const CircuitStats before = proto_.Snapshot();
  uint64_t answer = 0;
  if (config_.strategy == Strategy::kNm) {
    // Standard SOGDB: re-evaluate the query over the entire outsourced data.
    const SharedRows all1 = store1_.ConcatAll();
    if (config_.view_kind == ViewKind::kFilter) {
      const WordShares count = ObliviousCountWhere(
          &proto_, all1, kSrcValidCol,
          ObliviousPredicate::ColumnBetween(kSrcPayloadCol, config_.filter.lo,
                                            config_.filter.hi));
      answer = proto_.Reveal(count);
    } else {
      const SharedRows all2 = store2_.ConcatAll();
      answer = ObliviousJoinCountFull(&proto_, all1, all2, config_.join);
      proto_.AccountBytes(sizeof(Word) * 2);  // reveal the count
      proto_.AccountRounds(1);
    }
  } else {
    const WordShares count = ObliviousCountWhere(
        &proto_, view_.rows(), kViewIsViewCol, ObliviousPredicate::True());
    answer = proto_.Reveal(count);
  }
  *seconds = proto_.SimulatedSecondsSince(before);
  return answer;
}

void Engine::ForEachShard(const std::function<void(size_t)>& body) {
  const size_t num = cache_.num_shards();
  if (shard_pool_ != nullptr) {
    shard_pool_->ParallelFor(num, body);
  } else {
    for (size_t k = 0; k < num; ++k) body(k);
  }
}

Status Engine::Step() {
  INCSHRINK_RETURN_NOT_OK(BeginStep());
  return FinishStep();
}

Status Engine::BeginStep() {
  INCSHRINK_CHECK(pending_ == nullptr);
  pending_ = std::make_unique<PendingStep>();
  const Status st = BeginStepImpl();
  // A rejected step (malformed peer frame) must leave the engine steppable:
  // drop the half-built step state so the next Begin/Step starts clean.
  if (!st.ok()) pending_.reset();
  return st;
}

Status Engine::BeginStepImpl() {
  PendingStep& p = *pending_;
  ++t_;
  StepMetrics& m = p.m;
  m.t = t_;

  // Drain queued owner frames: at most max_batches_per_step per channel, in
  // fixed owner order (a T1 frame, then its paired T2 frame — join views
  // drain the channels as pairs so the ground-truth counter sees aligned
  // streams). Drained frames merge into one upload batch per relation, so
  // Transform still sees exactly one batch per engine step; the drain count
  // is a pure function of the queue depths and the config bound.
  const bool join_view = config_.view_kind != ViewKind::kFilter;
  SharedRows merged1(kSrcWidth);
  SharedRows merged2(kSrcWidth);
  for (uint32_t b = 0; b < config_.max_batches_per_step; ++b) {
    if (join_view && channel2_.empty()) break;  // wait for the full pair
    std::vector<uint8_t> raw1;
    if (!channel1_.TryPop(&raw1)) break;
    INCSHRINK_ASSIGN_OR_RETURN(const UploadFrame f1, DecodeUploadFrame(raw1));
    // A malformed peer must surface as a Status, never abort the server:
    // validate the decoded width before AppendAll's internal CHECK sees it.
    if (f1.batch.width() != kSrcWidth) {
      return Status::InvalidArgument("upload frame has wrong row width");
    }
    // Ground truth over the logical growing database, replayed from the
    // frames' evaluation-only arrival sections in owner-step order. Under
    // an owner lead the truth counter advances only as frames are drained:
    // the engine's notion of q_t(D_t) is the synchronized prefix.
    if (join_view) {
      std::vector<uint8_t> raw2;
      INCSHRINK_CHECK(channel2_.TryPop(&raw2));
      INCSHRINK_ASSIGN_OR_RETURN(const UploadFrame f2,
                                 DecodeUploadFrame(raw2));
      if (f2.batch.width() != kSrcWidth) {
        return Status::InvalidArgument("upload frame has wrong row width");
      }
      // A hostile or buggy peer can desynchronize the two owner streams;
      // over a real wire that must surface as a Status, never abort the
      // server (the transport's per-connection sequence stamps catch most
      // of this earlier, but the engine is the last line of defense).
      if (f1.owner_step != f2.owner_step) {
        return Status::InvalidArgument(
            "paired upload frames disagree on owner step");
      }
      truth_.Step(f1.arrivals, f2.arrivals);
      merged2.AppendAll(f2.batch);
      ++frames_drained_;
    } else {
      for (const LogicalRecord& rec : f1.arrivals) {
        if (rec.payload >= config_.filter.lo &&
            rec.payload <= config_.filter.hi)
          ++filter_truth_;
      }
    }
    merged1.AppendAll(f1.batch);
    ++frames_drained_;
  }
  m.true_count = join_view ? truth_.count() : filter_truth_;

  const uint64_t up1 = merged1.size();
  proto_.AccountBytes(up1 * kSrcWidth * sizeof(Word) * 2);
  store1_.AppendBatch(std::move(merged1));
  uint64_t up2 = 0;
  if (join_view) {
    up2 = merged2.size();
    proto_.AccountBytes(up2 * kSrcWidth * sizeof(Word) * 2);
    store2_.AppendBatch(std::move(merged2));
  }
  upload_rows_t1_log_.push_back(up1);
  upload_rows_t2_log_.push_back(up2);
  transcript_.push_back({TranscriptEvent::Kind::kUpload, t_, up1 + up2});

  // View maintenance.
  const bool transforms = config_.strategy == Strategy::kDpTimer ||
                          config_.strategy == Strategy::kDpAnt ||
                          config_.strategy == Strategy::kEp ||
                          (config_.strategy == Strategy::kOtm && t_ == 1);
  if (transforms) {
    INCSHRINK_ASSIGN_OR_RETURN(
        const TransformProtocol::StepResult tr,
        transform_.Step(t_, store1_, store2_, &cache_));
    m.transform_seconds = tr.simulated_seconds;
    real_entries_per_step_.push_back(tr.real_entries);
    total_real_entries_ += tr.real_entries;
    transcript_.push_back(
        {TranscriptEvent::Kind::kTransformOut, t_, tr.appended_rows});
  } else {
    real_entries_per_step_.push_back(0);
  }

  p.release = LeakageRelease{t_, 0, false};
  switch (config_.strategy) {
    case Strategy::kDpTimer:
    case Strategy::kDpAnt: {
      // Per-shard Shrink plans. Every shard plans on its own protocol
      // instance, so the K tasks share no mutable state; with K > 1 they
      // run concurrently on the shard pool. The fired shards' cache sorts
      // become one fused batch submission (executed by FinishStep, or by
      // the fleet when it coalesces sorts across tenants).
      p.dp = true;
      const size_t num = cache_.num_shards();
      p.plans.resize(num);
      p.staged_sync.resize(num);
      ForEachShard([&](size_t k) {
        SecureCache* shard = &cache_.shard(k);
        p.plans[k] = !timers_.empty() ? timers_[k]->Plan(t_, shard)
                                      : ants_[k]->Plan(t_, shard);
      });
      for (size_t k = 0; k < num; ++k) {
        if (p.plans[k].fired) {
          p.jobs.push_back(SortJob{cache_.shard_proto(k),
                                   cache_.shard(k).rows(), kViewSortKeyCol,
                                   0, /*lex=*/false, /*ascending=*/false,
                                   config_.sort_algorithm});
        }
      }
      break;
    }
    case Strategy::kEp:
    case Strategy::kOtm: {
      if (transforms) {
        const CircuitStats before = proto_.Snapshot();
        const uint64_t rows = MaterializeAll();
        m.synced = true;
        m.sync_rows = rows;
        m.shrink_seconds += proto_.SimulatedSecondsSince(before);
        transcript_.push_back({TranscriptEvent::Kind::kSync, t_, rows});
      }
      break;
    }
    case Strategy::kNm:
      break;
  }
  return Status::OK();
}

std::vector<SortJob> Engine::TakePendingSortJobs() {
  INCSHRINK_CHECK(pending_ != nullptr);
  pending_->jobs_taken = true;
  return std::move(pending_->jobs);
}

Status Engine::FinishStep() {
  INCSHRINK_CHECK(pending_ != nullptr);
  PendingStep& p = *pending_;
  StepMetrics& m = p.m;

  if (p.dp) {
    const size_t num = cache_.num_shards();
    // Fused sync sorts of the fired shards (unless the caller already
    // executed the jobs it took): one cross-shard batch submission whose
    // layer rounds pool all shards' pair work on the deployment pool.
    if (!p.jobs_taken && !p.jobs.empty()) {
      ObliviousSortBatch(p.jobs.data(), p.jobs.size(), batch_exec());
    }
    std::vector<ShrinkResult> syncs(num);
    ForEachShard([&](size_t k) {
      if (!p.plans[k].fired) {
        syncs[k] = p.plans[k].early;
        return;
      }
      SecureCache* shard = &cache_.shard(k);
      syncs[k] = !timers_.empty()
                     ? timers_[k]->Commit(p.plans[k], shard,
                                          &p.staged_sync[k])
                     : ants_[k]->Commit(p.plans[k], shard,
                                        &p.staged_sync[k]);
    });

    // Flush phase: public schedule, so one fused submission sorts every
    // shard's remaining cache, then the fixed-prefix commits run per shard.
    std::vector<ShrinkResult> flushes(num);
    std::vector<MaterializedView> staged_flush(num);
    if (FlushDue(config_, t_)) {
      std::vector<CircuitStats> before(num);
      for (size_t k = 0; k < num; ++k) {
        before[k] = cache_.shard_proto(k)->Snapshot();
      }
      if (config_.sort_algorithm == SortAlgorithm::kShuffleSort) {
        // Shuffle tier: flushes recycle the suffix anyway, so a fused
        // random Waksman permute replaces the cross-shard flush sort.
        std::vector<PermuteJob> permute_jobs;
        permute_jobs.reserve(num);
        for (size_t k = 0; k < num; ++k) {
          permute_jobs.push_back(
              PermuteJob{cache_.shard_proto(k), cache_.shard(k).rows()});
        }
        ObliviousRandomPermuteBatch(permute_jobs.data(), permute_jobs.size(),
                                    batch_exec());
      } else {
        std::vector<SortJob> flush_jobs;
        flush_jobs.reserve(num);
        for (size_t k = 0; k < num; ++k) {
          flush_jobs.push_back(
              SortJob{cache_.shard_proto(k), cache_.shard(k).rows(),
                      kViewSortKeyCol, 0, /*lex=*/false, /*ascending=*/false});
        }
        ObliviousSortBatch(flush_jobs.data(), flush_jobs.size(),
                           batch_exec());
      }
      ForEachShard([&](size_t k) {
        flushes[k] = CommitFlush(cache_.shard_proto(k), shard_configs_[k],
                                 &cache_.shard(k), &staged_flush[k],
                                 before[k]);
      });
    }

    // Fixed shard-order merge — the exact pre-fusion loop, so the view
    // contents, transcript and metrics are bit-identical at any worker
    // count (and, for K == 1, identical to the unsharded engine).
    for (size_t k = 0; k < num; ++k) {
      m.shrink_seconds += syncs[k].simulated_seconds;
      if (syncs[k].fired) {
        m.synced = true;
        m.sync_rows += syncs[k].sync_rows;
        p.release.size += syncs[k].released_size;
        p.release.fired = true;
        view_.Append(p.staged_sync[k].rows());
        transcript_.push_back(
            {TranscriptEvent::Kind::kSync, t_, syncs[k].sync_rows});
      }
      if (flushes[k].fired) {
        m.flushed = true;
        m.shrink_seconds += flushes[k].simulated_seconds;
        view_.Append(staged_flush[k].rows());
        transcript_.push_back(
            {TranscriptEvent::Kind::kFlush, t_, flushes[k].sync_rows});
      }
    }
  }
  releases_.push_back(p.release);

  // Analyst query.
  m.view_answer = AnswerQuery(&m.query_seconds);
  m.l1_error = std::abs(static_cast<double>(m.view_answer) -
                        static_cast<double>(m.true_count));
  m.relative_error =
      m.l1_error / std::max<double>(1.0, static_cast<double>(m.true_count));
  m.view_rows = view_.size();
  m.cache_rows = cache_.size();
  metrics_.push_back(m);
  pending_.reset();
  return Status::OK();
}

uint64_t Engine::StepsToNextPublicRelease() const {
  // The next step is t_ + 1; a cadence of period P fires at steps divisible
  // by P, so the distance is P - (t_ mod P), in [1, P].
  uint64_t dist = std::numeric_limits<uint64_t>::max();
  const bool dp = config_.strategy == Strategy::kDpTimer ||
                  config_.strategy == Strategy::kDpAnt;
  if (config_.strategy == Strategy::kDpTimer && config_.timer_T > 0) {
    dist = std::min<uint64_t>(dist, config_.timer_T - (t_ % config_.timer_T));
  }
  if (dp && config_.flush_interval > 0) {
    dist = std::min<uint64_t>(
        dist, config_.flush_interval - (t_ % config_.flush_interval));
  }
  return dist;
}

RunSummary Engine::Summary() const {
  RunSummary s;
  for (const StepMetrics& m : metrics_) {
    s.l1_error.Add(m.l1_error);
    s.relative_error.Add(m.relative_error);
    s.true_count_stat.Add(static_cast<double>(m.true_count));
    s.qet_seconds.Add(m.query_seconds);
    if (m.transform_seconds > 0) s.transform_seconds.Add(m.transform_seconds);
    if (m.synced) {
      s.shrink_seconds.Add(m.shrink_seconds);
      ++s.updates;
    }
    if (m.flushed) ++s.flushes;
    s.total_mpc_seconds += m.transform_seconds + m.shrink_seconds;
    s.total_query_seconds += m.query_seconds;
  }
  s.steps = metrics_.size();
  s.final_view_mb = view_.SizeMb();
  s.final_view_rows = view_.size();
  s.final_cache_rows = cache_.size();
  s.total_real_entries_cached = total_real_entries_;
  if (!metrics_.empty()) s.final_true_count = metrics_.back().true_count;
  return s;
}

SimulatorPublicParams Engine::MakeSimulatorParams() const {
  SimulatorPublicParams pp;
  const std::vector<uint64_t> u1 = upload_rows_t1_log_;
  const std::vector<uint64_t> u2 = upload_rows_t2_log_;
  pp.upload_rows = [u1, u2](uint64_t t) -> uint64_t {
    if (t < 1 || t > u1.size()) return 0;
    return u1[t - 1] + u2[t - 1];
  };
  // The transform output size is a deterministic function of the public
  // upload sizes (themselves fixed constants or DP releases of the owners'
  // synchronization policies) and public protocol constants.
  const IncShrinkConfig cfg = config_;
  pp.transform_rows = [cfg, u1, u2](uint64_t t) -> uint64_t {
    if (t < 1 || t > u1.size()) return 0;
    if (cfg.view_kind == ViewKind::kFilter) return u1[t - 1];
    if (cfg.t2_is_public ||
        cfg.op == TransformOperator::kNestedLoopJoin) {
      const uint64_t wlen = std::min<uint64_t>(
          TransformProtocol::EligibleSteps(cfg), t - 1);
      uint64_t old1 = 0;
      for (uint64_t s = t - 1 - wlen; s + 1 <= t - 1; ++s) old1 += u1[s];
      return cfg.omega * (u1[t - 1] + old1);
    }
    return cfg.omega * (u1[t - 1] + u2[t - 1]);
  };
  // The Table-1 simulator models one flush of `flush_size` per interval;
  // sharded deployments flush per shard, so scale the modelled size.
  pp.flush_interval = config_.flush_interval;
  pp.flush_size =
      static_cast<uint64_t>(config_.flush_size) * cache_.num_shards();
  return pp;
}

Engine::AdHocResult Engine::AnswerAdHocQuery(const AnalystQuery& query) {
  INCSHRINK_CHECK(config_.view_kind == ViewKind::kWindowJoin);
  AdHocResult result;
  const CircuitStats before = proto_.Snapshot();
  const WordShares count =
      ObliviousCountWhere(&proto_, view_.rows(), kViewIsViewCol,
                          RewriteToViewPredicate(query));
  result.answer = proto_.Reveal(count);
  result.query_seconds = proto_.SimulatedSecondsSince(before);

  for (const WindowJoinCounter::MatchedPair& pair : truth_.pairs()) {
    switch (query.kind) {
      case AnalystQuery::Kind::kCountAll:
        ++result.truth;
        break;
      case AnalystQuery::Kind::kCountDateRange:
        if (pair.date2 >= query.lo && pair.date2 <= query.hi) ++result.truth;
        break;
      case AnalystQuery::Kind::kCountKeyEquals:
        if (pair.key == query.key) ++result.truth;
        break;
    }
  }
  return result;
}

double Engine::ComposedEpsilon() const {
  const double owner1 = UploadPolicyEpsilon(config_.upload_policy1);
  const double owner2 =
      config_.t2_is_public ? 0.0 : UploadPolicyEpsilon(config_.upload_policy2);
  return config_.eps + std::max(owner1, owner2);
}

}  // namespace incshrink
