#pragma once

#include <cstdint>

#include "src/oblivious/filter.h"
#include "src/secret/share.h"

namespace incshrink {

/// \brief Analyst-facing logical queries over the growing join relation
/// (paper KI-1/KI-3: registered queries are *rewritten* into queries over
/// the materialized view and answered from the view object alone).
///
/// Beyond the standing COUNT(*) the evaluation uses, IncShrink supports a
/// rich class of selections over the view's columns — here: restrictions on
/// the T2-side event date (e.g. "returns recorded in the last 30 days") and
/// on the join key.
struct AnalystQuery {
  enum class Kind : uint8_t {
    kCountAll,        ///< COUNT(*) over the join relation
    kCountDateRange,  ///< ... WHERE lo <= T2.date <= hi
    kCountKeyEquals,  ///< ... WHERE key == `key`
  };
  Kind kind = Kind::kCountAll;
  Word lo = 0;
  Word hi = 0xFFFFFFFFu;
  Word key = 0;

  static AnalystQuery CountAll() { return AnalystQuery{}; }
  static AnalystQuery CountDateRange(Word lo, Word hi) {
    return AnalystQuery{Kind::kCountDateRange, lo, hi, 0};
  }
  static AnalystQuery CountKeyEquals(Word key) {
    return AnalystQuery{Kind::kCountKeyEquals, 0, 0, key};
  }
};

/// Rewrites the logical query into a predicate over view-format rows: the
/// server-side half of view-based query answering. The returned predicate
/// is evaluated obliviously (`ObliviousCountWhere`), so the server learns
/// nothing about which view rows matched.
ObliviousPredicate RewriteToViewPredicate(const AnalystQuery& query);

}  // namespace incshrink
