#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/analyst.h"
#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/core/shrink.h"
#include "src/core/transform.h"
#include "src/dp/accountant.h"
#include "src/dp/mechanisms.h"
#include "src/dp/simulator.h"
#include "src/dp/transcript.h"
#include "src/mpc/party.h"
#include "src/mpc/protocol.h"
#include "src/net/upload_channel.h"
#include "src/oblivious/sort.h"
#include "src/relational/growing_table.h"
#include "src/relational/query.h"
#include "src/storage/materialized_view.h"
#include "src/storage/outsourced_store.h"
#include "src/storage/secure_cache.h"
#include "src/storage/sharded_cache.h"

namespace incshrink {

/// \brief The IncShrink engine: the server side of one secure outsourced
/// growing database deployment (two servers, one view definition, one
/// update strategy).
///
/// Owners are decoupled from the engine (paper Section 3 separates the data
/// owners from the two untrusted servers): each owner is an OwnerClient
/// (src/core/owner_client.h) that synchronizes records on its *own* logical
/// clock and pushes serialized upload frames into the engine's bounded
/// inbound UploadChannels (src/net/). Per engine step:
///  1. the engine drains a deterministic, config-bounded number of queued
///     owner frames per channel (`max_batches_per_step`, fixed T1-then-T2
///     interleave) and appends them to the outsourced stores;
///  2. the configured strategy maintains the materialized view —
///     Transform + Shrink for the DP protocols, direct materialization for
///     EP/OTM, nothing for NM;
///  3. the analyst's COUNT query is answered from the view (or, for NM, by
///     re-joining the entire outsourced data) and accuracy/efficiency
///     metrics are recorded.
///
/// Determinism contract of the transport: the drain schedule is a pure
/// function of the queue depths and `max_batches_per_step` — never of
/// thread scheduling — so a deployment's observables are a pure function of
/// (config, the owners' schedules). Owners stepped in lockstep with the
/// engine (SynchronousDeployment) reproduce the pre-transport fused engine
/// bit for bit.
///
/// The engine also logs the observable transcript and the DP releases so
/// the test suite can replay the Table-1 simulator against the real run.
///
/// With `num_cache_shards > 1` the secure cache splits into K shards
/// (src/storage/sharded_cache.h), each running its own Shrink instance at
/// an eps/K budget slice on its own protocol substream; the per-shard
/// steps execute concurrently on a deployment-local ThreadPool and merge
/// in fixed shard order, so results are bit-identical at any thread count
/// (and, at K = 1, identical to the unsharded engine).
class Engine {
 public:
  explicit Engine(const IncShrinkConfig& config);

  /// Processes one engine time step, draining queued owner upload frames
  /// (see class comment). A step with no queued frames still advances the
  /// strategy clock with an empty upload.
  Status Step();

  // ------------------------------------------------------------------
  // Phase-split stepping (cross-tenant sort coalescing).
  //
  // BeginStep runs the step through the Shrink plans (drain, transform,
  // per-shard timer/ANT decisions), TakePendingSortJobs exposes the fired
  // shards' cache sorts as batchable jobs, and FinishStep completes the
  // step (sync commits, flush phase, analyst query). BeginStep + execute
  // jobs + FinishStep is bit-identical to Step() at any thread count;
  // Step() itself is implemented exactly that way, executing the jobs on
  // the deployment-local pool. DeploymentFleet uses the split to fuse
  // same-shaped sorts across tenants into one batch submission per round.
  // ------------------------------------------------------------------

  /// First phase of Step(). Must be balanced by FinishStep().
  Status BeginStep();

  /// The fired shards' pending cache sorts (empty for non-DP strategies or
  /// quiet steps). The caller assumes responsibility for executing every
  /// returned job (ObliviousSortBatch) before calling FinishStep; jobs left
  /// untaken are executed by FinishStep itself.
  std::vector<SortJob> TakePendingSortJobs();

  /// Second phase of Step().
  Status FinishStep();

  /// Inbound upload channel of the T1 owner (server-side endpoint).
  UploadChannel* channel1() { return &channel1_; }
  /// Inbound upload channel of the T2 owner (unused by filter views).
  UploadChannel* channel2() { return &channel2_; }
  /// Queued frames not yet drained. Channels drain as pairs, so the T1
  /// depth is the public queue depth of the deployment.
  size_t queue_depth() const { return channel1_.depth(); }
  /// Total owner frames drained across all steps so far.
  uint64_t frames_drained() const { return frames_drained_; }

  /// Distance, in engine steps, to the next *publicly scheduled* DP release
  /// of this deployment: the sooner of the next sDPTimer firing and the next
  /// cache flush. This is a pure function of the public clock and config —
  /// sDPANT's data-dependent firings deliberately do not contribute — so a
  /// fleet scheduler may fold it into priorities without the service order
  /// ever becoming a leakage channel (tests/oblivious_invariants_test.cc
  /// pins this). Returns UINT64_MAX when no public release is scheduled
  /// (EP/OTM/NM, or flushing disabled for sDPANT).
  uint64_t StepsToNextPublicRelease() const;

  /// Aggregated results (Table 2 rows).
  RunSummary Summary() const;

  const std::vector<StepMetrics>& step_metrics() const { return metrics_; }
  const Transcript& transcript() const { return transcript_; }
  const std::vector<LeakageRelease>& releases() const { return releases_; }
  const std::vector<uint32_t>& per_step_real_entries() const {
    return real_entries_per_step_;
  }

  const IncShrinkConfig& config() const { return config_; }
  const PrivacyAccountant& accountant() const { return accountant_; }
  Protocol2PC* proto() { return &proto_; }
  uint64_t current_step() const { return t_; }
  const MaterializedView& view() const { return view_; }
  /// Shard `k` of the secure cache — the whole cache is shard 0 in the
  /// (default) unsharded deployment.
  const SecureCache& shard_cache(size_t k) const { return cache_.shard(k); }
  const ShardedSecureCache& sharded_cache() const { return cache_; }
  /// Per-shard view-update budget slices; SequentialComposition over them
  /// equals config().eps exactly (== {eps} when unsharded).
  const std::vector<double>& shard_epsilons() const {
    return cache_.shard_eps();
  }
  const OutsourcedTable& store1() const { return store1_; }
  const OutsourcedTable& store2() const { return store2_; }

  /// Public parameters for the SIM-CDP transcript simulator, capturing the
  /// recorded public upload sizes and the deterministic transform-output
  /// schedule of this run. Everything inside is a function of public
  /// constants and of DP-released sizes (upload sizes are either fixed or
  /// the output of the owners' DP synchronization policies).
  SimulatorPublicParams MakeSimulatorParams() const;

  /// Total event-level epsilon of the composed system: the view-update
  /// leakage eps plus the strongest private owner upload-policy eps
  /// (sequential composition, Section 8).
  double ComposedEpsilon() const;

  /// Result of an ad-hoc analyst query answered from the view.
  struct AdHocResult {
    uint64_t answer = 0;         ///< q~(V_t): the server's response
    uint64_t truth = 0;          ///< q(D_t): exact logical answer
    double query_seconds = 0;    ///< simulated QET
  };

  /// Answers a rewritten ad-hoc query (date-range / key restriction) over
  /// the current materialized view (join views only). Demonstrates the
  /// paper's KI-3 claim: despite contribution constraints, a rich class of
  /// queries is answerable from the view with small error.
  AdHocResult AnswerAdHocQuery(const AnalystQuery& query);

  // ------------------------------------------------------------------
  // Crash-safe checkpoint/restore (ICKP v1, src/storage/checkpoint.h).
  // ------------------------------------------------------------------

  /// Serializes the engine's full resumable state — clocks, RNG cursors,
  /// privacy ledger, stores, cache shards, view, ground truth, logs and
  /// channel backlogs — into one ICKP snapshot. Draws no randomness, so
  /// checkpointing never perturbs the run. Fails with FailedPrecondition
  /// between BeginStep and FinishStep (in-flight step state is not
  /// serializable) and with OutOfRange when the blob would exceed
  /// config().checkpoint_max_bytes.
  Result<std::vector<uint8_t>> SaveCheckpoint();

  /// Restores a SaveCheckpoint blob into this engine, which must have been
  /// constructed with the identical config (fingerprint-checked). Atomic:
  /// everything is decoded and validated into temporaries before any member
  /// changes, so a malformed or hostile snapshot is rejected with a Status
  /// and the engine keeps running on its prior state. Never draws
  /// randomness — restored RNG cursors resume the exact party streams.
  Status RestoreCheckpoint(const std::vector<uint8_t>& snapshot);

  /// Automatic checkpoint slot: when config().checkpoint_interval > 0,
  /// FinishStep refreshes this after every interval-th completed step so a
  /// recovery driver can persist it. Empty until the first auto-checkpoint.
  const std::vector<uint8_t>& last_checkpoint() const {
    return last_checkpoint_;
  }
  /// Step the auto-checkpoint slot was taken at (0 = never).
  uint64_t last_checkpoint_step() const { return last_checkpoint_step_; }
  /// Auto-checkpoints taken over the engine's lifetime.
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  /// In-flight state between BeginStep and FinishStep.
  struct PendingStep {
    StepMetrics m;
    LeakageRelease release{0, 0, false};
    bool dp = false;               ///< DP strategy: shard plans pending
    std::vector<ShrinkPlan> plans;
    std::vector<MaterializedView> staged_sync;
    std::vector<SortJob> jobs;     ///< fired shards' sync sorts
    bool jobs_taken = false;       ///< caller executes them before Finish
  };

  /// Answers this step's COUNT query; returns the revealed answer and
  /// records the simulated QET in *seconds.
  uint64_t AnswerQuery(double* seconds);

  /// Moves the whole cache straight into the view (EP / OTM materialize).
  uint64_t MaterializeAll();

  /// Runs body(k) over all shards, on the shard pool when one exists.
  void ForEachShard(const std::function<void(size_t)>& body);

  /// Body of BeginStep (wrapped so error returns reset the pending state).
  Status BeginStepImpl();

  /// Batch execution policy of this deployment's oblivious submissions.
  BatchExec batch_exec() {
    return BatchExec{shard_pool_.get(), config_.oblivious_batch_min_layer};
  }

  IncShrinkConfig config_;
  UploadChannel channel1_;
  UploadChannel channel2_;
  Party s0_;
  Party s1_;
  Protocol2PC proto_;
  PrivacyAccountant accountant_;
  OutsourcedTable store1_;
  OutsourcedTable store2_;
  ShardedSecureCache cache_;
  MaterializedView view_;
  TransformProtocol transform_;
  /// Per-shard Shrink instances (one entry per shard for the strategy in
  /// use; both empty for EP/OTM/NM). Shard k steps on cache_.shard_proto(k)
  /// with the eps slice baked into shard_configs_[k].
  std::vector<std::unique_ptr<ShrinkTimer>> timers_;
  std::vector<std::unique_ptr<ShrinkAnt>> ants_;
  std::vector<IncShrinkConfig> shard_configs_;
  /// Fork-join pool for the per-shard Shrink phase; null when K == 1 (the
  /// unsharded engine never spawns a thread).
  std::unique_ptr<ThreadPool> shard_pool_;
  WindowJoinCounter truth_;

  std::unique_ptr<PendingStep> pending_;  ///< set between Begin/FinishStep
  uint64_t filter_truth_ = 0;  ///< ground truth for filter views
  uint64_t frames_drained_ = 0;
  uint64_t t_ = 0;
  std::vector<StepMetrics> metrics_;
  Transcript transcript_;
  std::vector<LeakageRelease> releases_;
  std::vector<uint32_t> real_entries_per_step_;
  std::vector<uint64_t> upload_rows_t1_log_;  ///< per-step T1 upload sizes
  std::vector<uint64_t> upload_rows_t2_log_;  ///< per-step T2 upload sizes
  uint64_t total_real_entries_ = 0;

  std::vector<uint8_t> last_checkpoint_;  ///< auto-checkpoint slot
  uint64_t last_checkpoint_step_ = 0;
  uint64_t checkpoints_taken_ = 0;
};

}  // namespace incshrink
