#include "src/core/owner_client.h"

#include "src/common/logging.h"
#include "src/storage/serialization.h"

namespace incshrink {

uint64_t DeriveOwnerShareSeed(uint64_t deployment_seed, int owner_index) {
  // Splitmix64 scramble of (deployment seed, owner index), salted with the
  // pre-transport engine's owner-rng constant so the streams stay disjoint
  // from the tenant/shard/replica derivations.
  uint64_t z = (deployment_seed ^ 0xD1B54A32D192ED03ull) +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(owner_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

OwnerClient::OwnerClient(const UploadPolicyConfig& policy, uint32_t fixed_rows,
                         bool is_public, uint64_t policy_seed,
                         uint64_t share_seed, UploadChannel* channel)
    : uploader_(policy, fixed_rows, is_public, policy_seed),
      share_rng_(share_seed),
      channel_(channel) {
  INCSHRINK_CHECK(channel_ != nullptr);
}

bool OwnerClient::TryStep(const std::vector<LogicalRecord>& arrivals) {
  // Refuse before touching any state: a backpressured step must be
  // re-offerable later with identical results (clock, queue and RNG draws
  // all untouched). Capacity was checked, so the push below cannot fail.
  if (channel_->full()) {
    channel_->NoteBackpressure();
    return false;
  }
  ++t_;
  UploadFrame frame;
  frame.owner_step = t_;
  frame.arrivals = arrivals;
  frame.batch = uploader_.BuildBatch(t_, arrivals, &share_rng_);
  ++frames_sent_;
  rows_sent_ += frame.batch.size();
  INCSHRINK_CHECK(channel_->TryPush(EncodeUploadFrame(frame)));
  return true;
}

OwnerClient MakeOwner1(const IncShrinkConfig& config, UploadChannel* channel) {
  // Policy seeds match the pre-transport engine (config.seed + 101 / + 202)
  // so the DP-released batch-size sequences are unchanged.
  return OwnerClient(config.upload_policy1, config.upload_rows_t1,
                     /*is_public=*/false, config.seed + 101,
                     DeriveOwnerShareSeed(config.seed, 0), channel);
}

OwnerClient MakeOwner2(const IncShrinkConfig& config, UploadChannel* channel) {
  return OwnerClient(config.upload_policy2, config.upload_rows_t2,
                     config.t2_is_public, config.seed + 202,
                     DeriveOwnerShareSeed(config.seed, 1), channel);
}

SynchronousDeployment::SynchronousDeployment(const IncShrinkConfig& config)
    : engine_(config),
      owner1_(MakeOwner1(config, engine_.channel1())),
      owner2_(MakeOwner2(config, engine_.channel2())) {}

Status SynchronousDeployment::Step(const std::vector<LogicalRecord>& new1,
                                   const std::vector<LogicalRecord>& new2) {
  // Lockstep leaves every channel empty between steps, so these pushes can
  // never hit backpressure (capacity >= 1 is validated).
  INCSHRINK_CHECK(owner1_.TryStep(new1));
  if (engine_.config().view_kind != ViewKind::kFilter) {
    INCSHRINK_CHECK(owner2_.TryStep(new2));
  }
  return engine_.Step();
}

Status SynchronousDeployment::Run(
    const std::vector<std::vector<LogicalRecord>>& arrivals1,
    const std::vector<std::vector<LogicalRecord>>& arrivals2) {
  INCSHRINK_CHECK_EQ(arrivals1.size(), arrivals2.size());
  for (size_t i = 0; i < arrivals1.size(); ++i) {
    INCSHRINK_RETURN_NOT_OK(Step(arrivals1[i], arrivals2[i]));
  }
  return Status::OK();
}

}  // namespace incshrink
