#include "src/core/owner_client.h"

#include "src/common/logging.h"
#include "src/storage/checkpoint.h"
#include "src/storage/serialization.h"

namespace incshrink {

uint64_t DeriveOwnerShareSeed(uint64_t deployment_seed, int owner_index) {
  // Splitmix64 scramble of (deployment seed, owner index), salted with the
  // pre-transport engine's owner-rng constant so the streams stay disjoint
  // from the tenant/shard/replica derivations.
  uint64_t z = (deployment_seed ^ 0xD1B54A32D192ED03ull) +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(owner_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

OwnerClient::OwnerClient(const UploadPolicyConfig& policy, uint32_t fixed_rows,
                         bool is_public, uint64_t policy_seed,
                         uint64_t share_seed, UploadChannel* channel)
    : uploader_(policy, fixed_rows, is_public, policy_seed),
      share_rng_(share_seed),
      channel_(channel) {
  INCSHRINK_CHECK(channel_ != nullptr);
}

bool OwnerClient::TryStep(const std::vector<LogicalRecord>& arrivals) {
  // Refuse before touching any state: a backpressured step must be
  // re-offerable later with identical results (clock, queue and RNG draws
  // all untouched). Capacity was checked, so the push below cannot fail.
  if (channel_->full()) {
    channel_->NoteBackpressure();
    return false;
  }
  ++t_;
  UploadFrame frame;
  frame.owner_step = t_;
  frame.arrivals = arrivals;
  frame.batch = uploader_.BuildBatch(t_, arrivals, &share_rng_);
  ++frames_sent_;
  rows_sent_ += frame.batch.size();
  INCSHRINK_CHECK(channel_->TryPush(EncodeUploadFrame(frame)));
  return true;
}

void OwnerClient::SaveTo(CheckpointWriter* writer) const {
  uploader_.SaveTo(writer);
  writer->WriteRng(share_rng_.ExportState());
  writer->U64(t_);
  writer->U64(frames_sent_);
  writer->U64(rows_sent_);
}

Status OwnerClient::RestoreFrom(CheckpointReader* reader) {
  // The uploader restores first (it validates its own shape) but commits
  // into itself, so a later failure here would tear the client. The scalar
  // reads below can only fail through the reader's ok flag, which the
  // deployment's dry-run pass has already cleared — still, check it before
  // committing the scalars so a standalone caller stays safe.
  INCSHRINK_RETURN_NOT_OK(uploader_.RestoreFrom(reader));
  const RngState share_state = reader->ReadRng();
  const uint64_t t = reader->U64();
  const uint64_t frames_sent = reader->U64();
  const uint64_t rows_sent = reader->U64();
  INCSHRINK_RETURN_NOT_OK(reader->ExpectOk("owner client state"));
  share_rng_.RestoreState(share_state);
  t_ = t;
  frames_sent_ = frames_sent;
  rows_sent_ = rows_sent;
  return Status::OK();
}

OwnerClient MakeOwner1(const IncShrinkConfig& config, UploadChannel* channel) {
  // Policy seeds match the pre-transport engine (config.seed + 101 / + 202)
  // so the DP-released batch-size sequences are unchanged.
  return OwnerClient(config.upload_policy1, config.upload_rows_t1,
                     /*is_public=*/false, config.seed + 101,
                     DeriveOwnerShareSeed(config.seed, 0), channel);
}

OwnerClient MakeOwner2(const IncShrinkConfig& config, UploadChannel* channel) {
  return OwnerClient(config.upload_policy2, config.upload_rows_t2,
                     config.t2_is_public, config.seed + 202,
                     DeriveOwnerShareSeed(config.seed, 1), channel);
}

SynchronousDeployment::SynchronousDeployment(const IncShrinkConfig& config)
    : engine_(config),
      owner1_(MakeOwner1(config, engine_.channel1())),
      owner2_(MakeOwner2(config, engine_.channel2())) {}

Status SynchronousDeployment::Step(const std::vector<LogicalRecord>& new1,
                                   const std::vector<LogicalRecord>& new2) {
  // Lockstep leaves every channel empty between steps, so these pushes can
  // never hit backpressure (capacity >= 1 is validated).
  INCSHRINK_CHECK(owner1_.TryStep(new1));
  if (engine_.config().view_kind != ViewKind::kFilter) {
    INCSHRINK_CHECK(owner2_.TryStep(new2));
  }
  return engine_.Step();
}

namespace {

// Outer ICKP layout of a whole deployment: fingerprint, the engine's own
// (self-validating) snapshot blob, then the two owner sections.
constexpr uint32_t kTagDeployFingerprint = CheckpointTag('D', 'F', 'G', ' ');
constexpr uint32_t kTagEngineBlob = CheckpointTag('E', 'N', 'G', ' ');
constexpr uint32_t kTagOwner1 = CheckpointTag('O', 'W', 'N', '1');
constexpr uint32_t kTagOwner2 = CheckpointTag('O', 'W', 'N', '2');

}  // namespace

Result<std::vector<uint8_t>> SynchronousDeployment::SaveCheckpoint() {
  INCSHRINK_ASSIGN_OR_RETURN(const std::vector<uint8_t> engine_blob,
                             engine_.SaveCheckpoint());
  CheckpointWriter w;
  w.BeginSection(kTagDeployFingerprint);
  w.U64(ConfigFingerprint(engine_.config()));
  w.EndSection();
  w.BeginSection(kTagEngineBlob);
  w.Bytes(engine_blob);
  w.EndSection();
  w.BeginSection(kTagOwner1);
  owner1_.SaveTo(&w);
  w.EndSection();
  w.BeginSection(kTagOwner2);
  owner2_.SaveTo(&w);
  w.EndSection();
  std::vector<uint8_t> blob = w.Finish();
  if (blob.size() > engine_.config().checkpoint_max_bytes) {
    return Status::OutOfRange(
        "deployment snapshot exceeds checkpoint_max_bytes");
  }
  return blob;
}

Status SynchronousDeployment::RestoreCheckpoint(
    const std::vector<uint8_t>& snapshot) {
  INCSHRINK_ASSIGN_OR_RETURN(CheckpointReader r,
                             CheckpointReader::Open(snapshot));
  r.BeginSection(kTagDeployFingerprint);
  const uint64_t fingerprint = r.U64();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("deployment fingerprint"));
  if (fingerprint != ConfigFingerprint(engine_.config())) {
    return Status::FailedPrecondition(
        "snapshot was taken under a different configuration");
  }
  r.BeginSection(kTagEngineBlob);
  const std::vector<uint8_t> engine_blob = r.Bytes();
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.ExpectOk("embedded engine snapshot"));

  // Dry-run pass: the owner sections restore into freshly constructed
  // scratch clients first (their constructors draw nothing shared with the
  // engine), so every fallible decode happens before any live object
  // changes. The engine restore is atomic on its own, and the final owner
  // commit is a pair of moves that cannot fail — the deployment restores
  // all-or-nothing.
  OwnerClient scratch1 = MakeOwner1(engine_.config(), engine_.channel1());
  OwnerClient scratch2 = MakeOwner2(engine_.config(), engine_.channel2());
  r.BeginSection(kTagOwner1);
  INCSHRINK_RETURN_NOT_OK(scratch1.RestoreFrom(&r));
  r.EndSection();
  r.BeginSection(kTagOwner2);
  INCSHRINK_RETURN_NOT_OK(scratch2.RestoreFrom(&r));
  r.EndSection();
  INCSHRINK_RETURN_NOT_OK(r.Finish());

  INCSHRINK_RETURN_NOT_OK(engine_.RestoreCheckpoint(engine_blob));
  owner1_ = std::move(scratch1);
  owner2_ = std::move(scratch2);
  return Status::OK();
}

Status SynchronousDeployment::Run(
    const std::vector<std::vector<LogicalRecord>>& arrivals1,
    const std::vector<std::vector<LogicalRecord>>& arrivals2) {
  INCSHRINK_CHECK_EQ(arrivals1.size(), arrivals2.size());
  for (size_t i = 0; i < arrivals1.size(); ++i) {
    INCSHRINK_RETURN_NOT_OK(Step(arrivals1[i], arrivals2[i]));
  }
  return Status::OK();
}

}  // namespace incshrink
