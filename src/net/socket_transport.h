#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/net/frame_codec.h"
#include "src/net/upload_channel.h"

namespace incshrink {

/// \brief Real TCP transport behind the UploadChannel interface.
///
/// SocketListener is the engine-side endpoint: it accepts owner connections
/// on a loopback/LAN TCP port, reassembles length-prefixed IUF v1 frames
/// (frame_codec.h) and delivers them into the engine's bounded
/// UploadChannels — the exact same queues the in-process transport uses, so
/// nothing above the channel can tell the difference. SocketSender is the
/// owner-side endpoint: connect with bounded retries, non-blocking
/// backpressure-aware sends, reconnect.
///
/// Threat model: the listener trusts nothing it reads. Every byte goes
/// through the bounds-checked FrameAssembler (envelope hardening: length
/// limits, strictly consecutive sequence stamps) and — by default — the
/// bounds-checked DecodeUploadFrame (payload hardening: hostile dimension
/// headers, truncations), so a malformed peer costs one closed connection
/// and a public reject counter, never a crash, an OOM or an out-of-bounds
/// read. Connections are isolated: one hostile or dead owner cannot perturb
/// another tenant's stream.
///
/// Determinism contract: this layer moves opaque bytes and counts public
/// events; it draws no randomness and never reads a clock
/// (tools/check_no_hidden_entropy.sh statically enforces both for all of
/// src/net/). The only timing anywhere is the integer millisecond timeout
/// handed to poll(2)/epoll_wait(2) — clearly marked plumbing that bounds a
/// blocking wait and feeds nothing back into behavior. Frames arrive on a
/// connection in FIFO order (TCP) carrying their sequence stamps, each
/// connection feeds exactly the channel its hello named, and the engine
/// drains channels in its fixed public merge order — so *when* bytes arrive
/// never changes *what* any deployment computes, and a socket-fed engine
/// reproduces the in-process transport bit for bit
/// (tests/socket_transport_test.cc).

// ---------------------------------------------------------------------------
// Engine side: listener
// ---------------------------------------------------------------------------

struct SocketListenerOptions {
  /// Upper bound on a single frame payload; a hostile length prefix beyond
  /// this is rejected before any allocation.
  uint32_t max_frame_bytes = 1u << 20;
  /// Decode every payload with DecodeUploadFrame before delivery, rejecting
  /// malformed/hostile frames at the door. Costs one decode per frame;
  /// disable only for trusted in-process benchmarking of raw byte movement.
  bool validate_frames = true;
  /// Use epoll(7) when available (Linux); false forces the portable poll(2)
  /// path (also used automatically on non-Linux platforms).
  bool use_epoll = true;
  /// Millisecond timeout of one Poll() sweep's wait: 0 = non-blocking sweep.
  /// Timeout plumbing only — bounds the wait, never feeds into behavior.
  int poll_timeout_ms = 0;
  /// Evict a connection after this many consecutive Poll() sweeps without a
  /// byte from it (0 = never). Idleness is measured in poll rounds, not wall
  /// time, so eviction stays a deterministic function of the driver's
  /// schedule; a dead owner just reconnects.
  uint32_t idle_poll_limit = 0;
  /// Accept at most this many concurrent connections; further accepts are
  /// closed immediately (counted publicly).
  size_t max_connections = 4096;
};

/// Public per-connection transport statistics (reject counters are part of
/// the observable surface: operators must see hostile peers).
struct ConnectionStats {
  uint64_t conn_id = 0;       ///< accept-order id, unique per listener
  uint32_t channel_id = 0;    ///< engine channel the hello named
  bool hello_done = false;
  bool open = false;
  uint64_t frames_delivered = 0;
  uint64_t frames_rejected = 0;   ///< malformed envelope/payload events
  uint64_t bytes_received = 0;
  uint64_t last_seq = 0;          ///< last accepted sequence stamp
  uint64_t idle_polls = 0;        ///< consecutive byte-less Poll() sweeps
  std::string last_error;         ///< public reason of the last reject/close
};

class SocketListener {
 public:
  /// \param channels engine-side destination queues, indexed by the
  ///        channel_id connections name in their hello; non-owning, must
  ///        outlive the listener.
  SocketListener(std::vector<UploadChannel*> channels,
                 const SocketListenerOptions& options);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Call once.
  Status Bind(uint16_t port = 0);
  /// The bound port (valid after Bind).
  uint16_t port() const { return port_; }

  /// One event-loop sweep: accepts pending connections, reads every ready
  /// socket, reassembles/validates frames and delivers them into the
  /// channels. A frame whose channel is full stays buffered and pauses
  /// reads from its connection (TCP backpressure propagates to the owner);
  /// delivery is retried on the next sweep. Returns frames delivered this
  /// sweep.
  size_t Poll();

  /// Closes the listening socket and every connection.
  void Close();

  // Public aggregate counters.
  uint64_t connections_accepted() const { return accepted_; }
  uint64_t connections_closed() const { return closed_; }
  uint64_t connections_refused() const { return refused_; }
  uint64_t frames_delivered() const { return delivered_; }
  uint64_t frames_rejected() const { return rejected_; }
  size_t open_connections() const;

  /// Per-connection stats, accept order, closed connections included.
  std::vector<ConnectionStats> Stats() const;

 private:
  struct Conn;

  void AcceptPending();
  /// Reads every available byte from the connection, then delivers.
  void HandleReadable(Conn* conn);
  /// Parses and delivers as many buffered frames as channel space allows.
  void DeliverBuffered(Conn* conn);
  /// Records `why`, counts a reject and closes the connection.
  void RejectConn(Conn* conn, const Status& why);
  void CloseConn(Conn* conn);
  size_t PollOnce();

  std::vector<UploadChannel*> channels_;
  SocketListenerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t accepted_ = 0;
  uint64_t closed_ = 0;
  uint64_t refused_ = 0;
  uint64_t delivered_ = 0;
  uint64_t rejected_ = 0;
};

// ---------------------------------------------------------------------------
// Owner side: sender
// ---------------------------------------------------------------------------

struct SocketSenderOptions {
  /// Millisecond bound on one connect attempt (timeout plumbing only).
  int connect_timeout_ms = 1000;
  /// Connect attempts before Connect()/Reconnect() gives up.
  int connect_attempts = 10;
  /// --- Round-driven reconnect (ReconnectRound) -----------------------------
  /// Backoff is counted in *poll rounds* — calls to ReconnectRound by the
  /// owner's drive loop — never in wall time, so reconnect schedules stay a
  /// deterministic function of the driver's round count and src/net stays
  /// clock-free. After a failed re-dial the sender waits
  /// `reconnect_backoff_rounds` rounds, doubling per failure up to
  /// `reconnect_backoff_max_rounds`.
  uint32_t reconnect_backoff_rounds = 1;
  uint32_t reconnect_backoff_max_rounds = 64;
  /// Re-dial attempts per outage before ReconnectRound gives up for good
  /// (a fresh explicit Connect() resets the outage). Must be >= 1.
  uint32_t reconnect_max_attempts = 8;
};

/// \brief Owner-side connection: dials the listener, sends the hello, then
/// streams sequence-stamped frames with non-blocking backpressure-aware
/// flushes.
///
/// QueueFrame stages one frame's bytes; Flush pushes staged bytes into the
/// kernel until it would block. When the engine side pauses reads (its
/// channel is full), the kernel buffers fill and Flush stops making
/// progress — the caller sees `!fully_flushed()` and refrains from queueing
/// more, which is exactly the probe-before-build discipline OwnerClient's
/// NoteBackpressure contract wants (src/core/socket_deployment.h wires it
/// up).
class SocketSender {
 public:
  explicit SocketSender(const SocketSenderOptions& options = {});
  ~SocketSender();

  SocketSender(const SocketSender&) = delete;
  SocketSender& operator=(const SocketSender&) = delete;
  SocketSender(SocketSender&& other) noexcept;
  SocketSender& operator=(SocketSender&& other) noexcept;

  /// Dials host:port with bounded retries and queues the hello for
  /// `channel_id`. Sequence stamps (re)start at 1.
  Status Connect(const std::string& host, uint16_t port, uint32_t channel_id);
  /// Closes and re-dials the same endpoint. The new connection is a fresh
  /// stream: stamps restart at 1.
  Status Reconnect();
  void CloseConn();
  bool connected() const { return fd_ >= 0; }

  /// One round of the bounded deterministic reconnect schedule. Call once
  /// per driver poll round while disconnected: a round either burns one
  /// backoff round, or spends one re-dial attempt (one Reconnect() call).
  /// Failed attempts back off exponentially in rounds (see
  /// SocketSenderOptions); after `reconnect_max_attempts` failed attempts in
  /// one outage the sender gives up permanently (`reconnect_gave_up()`)
  /// until an explicit Connect() starts a fresh outage cycle. Returns true
  /// when connected after this round. Already-connected rounds are no-ops.
  bool ReconnectRound();

  /// Public retry statistics (operators must see flapping links).
  uint64_t reconnect_attempts() const { return reconnect_attempts_; }
  uint64_t reconnect_successes() const { return reconnect_successes_; }
  uint64_t reconnect_rounds_waited() const { return reconnect_rounds_waited_; }
  bool reconnect_gave_up() const { return reconnect_gave_up_; }

  /// Stages one opaque frame payload (envelope + stamp added here).
  /// Fails if not connected.
  Status QueueFrame(const std::vector<uint8_t>& payload);

  /// Non-blocking: writes staged bytes to the socket until done or the
  /// kernel would block. Returns bytes written; a hard socket error (peer
  /// reset) closes the connection and surfaces as a Status.
  Result<size_t> Flush();

  /// True when every queued byte has reached the kernel.
  bool fully_flushed() const { return outbuf_.size() == out_pos_; }
  /// Bytes staged but not yet written.
  size_t pending_bytes() const { return outbuf_.size() - out_pos_; }

  uint64_t frames_queued() const { return frames_queued_; }
  /// Stamp the next QueueFrame will carry.
  uint64_t next_seq() const { return next_seq_; }

 private:
  void ResetStream();

  SocketSenderOptions options_;
  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  uint32_t channel_id_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t frames_queued_ = 0;
  std::vector<uint8_t> outbuf_;
  size_t out_pos_ = 0;
  // Round-driven reconnect state (ReconnectRound).
  uint64_t reconnect_attempts_ = 0;
  uint64_t reconnect_successes_ = 0;
  uint64_t reconnect_rounds_waited_ = 0;
  uint32_t attempts_this_outage_ = 0;
  uint32_t backoff_rounds_left_ = 0;
  uint32_t next_backoff_rounds_ = 0;
  bool reconnect_gave_up_ = false;
};

}  // namespace incshrink
