#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace incshrink {

/// \brief Wire envelope of the socket transport (src/net/socket_transport.h).
///
/// A connection carries one owner→server upload stream:
///
///   hello   : magic "IUH1" | u32 channel_id            (once, at connect)
///   frame   : u32 payload_len | u64 seq | payload[payload_len]
///
/// all little-endian. `payload` is an opaque IUF upload frame
/// (storage/serialization.h) — this layer never interprets it. `seq` starts
/// at 1 and increments by exactly 1 per frame on a connection, so the
/// receiver detects dropped, reordered, duplicated or injected frames at the
/// transport level before the payload decoder ever runs; the engine's
/// deterministic drain order is derived from these public stamps and queue
/// depths only, never from arrival timing.
///
/// Everything here is pure byte shuffling: no randomness, no clock, no
/// syscalls (tools/check_no_hidden_entropy.sh statically enforces that for
/// all of src/net/), so hostile-input behavior is exhaustively testable
/// without a socket in sight.

/// Size of the connection hello ("IUH1" + u32 channel id).
inline constexpr size_t kHelloBytes = 8;
/// Size of the per-frame envelope header (u32 length + u64 sequence stamp).
inline constexpr size_t kEnvelopeBytes = 12;

/// Encodes the connection hello for `channel_id`.
std::vector<uint8_t> EncodeHello(uint32_t channel_id);

/// Appends the envelope header + payload for sequence stamp `seq` to *out.
/// `payload` must be non-empty (a zero-length payload is not expressible on
/// the wire; the smallest legal payload is a zero-row IUF frame).
void AppendEnvelope(std::vector<uint8_t>* out, uint64_t seq,
                    const std::vector<uint8_t>& payload);

/// One complete frame extracted from a connection's byte stream.
struct WireFrame {
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

/// \brief Incremental, bounds-checked parser over one connection's inbound
/// byte stream: feed raw bytes as they arrive, take hellos/frames out as
/// they complete.
///
/// The assembler enforces the transport-level hardening rules itself —
/// payload lengths in (0, max_frame_bytes], sequence stamps strictly
/// consecutive from 1 — and poisons the stream (every later call returns the
/// same Status) on the first violation, because a framing error leaves no
/// way to resynchronize a length-prefixed stream.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends `n` raw bytes from the connection.
  void Feed(const uint8_t* data, size_t n);

  /// Extracts the hello. Returns true and sets *channel_id once kHelloBytes
  /// have arrived; false while bytes are still missing; a Status forever
  /// after a bad magic.
  Result<bool> TakeHello(uint32_t* channel_id);

  /// Extracts the next complete frame into *out. Returns true when a frame
  /// was extracted, false when more bytes are needed, a Status forever after
  /// a malformed envelope (oversized/zero length, sequence break).
  Result<bool> TakeFrame(WireFrame* out);

  /// Bytes buffered but not yet consumed by TakeHello/TakeFrame.
  size_t buffered_bytes() const { return buf_.size() - pos_; }
  /// Sequence stamp of the last extracted frame (0 before the first).
  uint64_t last_seq() const { return next_seq_ - 1; }
  bool poisoned() const { return !poison_.ok(); }

 private:
  /// Drops consumed bytes once they dominate the buffer (amortized O(1)).
  void Compact();

  uint32_t max_frame_bytes_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  uint64_t next_seq_ = 1;
  Status poison_ = Status::OK();
};

}  // namespace incshrink
