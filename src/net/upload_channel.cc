#include "src/net/upload_channel.h"

#include "src/common/logging.h"

namespace incshrink {

UploadChannel::UploadChannel(size_t capacity) : capacity_(capacity) {
  INCSHRINK_CHECK_GE(capacity_, 1u);
}

bool UploadChannel::TryPush(std::vector<uint8_t> frame) {
  if (full()) {
    ++push_rejects_;
    return false;
  }
  ++frames_pushed_;
  bytes_pushed_ += frame.size();
  queue_.push_back(std::move(frame));
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  return true;
}

bool UploadChannel::TryPop(std::vector<uint8_t>* frame) {
  if (queue_.empty()) return false;
  *frame = std::move(queue_.front());
  queue_.pop_front();
  ++frames_popped_;
  return true;
}

}  // namespace incshrink
