#include "src/net/upload_channel.h"

#include "src/common/logging.h"

namespace incshrink {

UploadChannel::UploadChannel(size_t capacity) : capacity_(capacity) {
  INCSHRINK_CHECK_GE(capacity_, 1u);
}

bool UploadChannel::TryPush(std::vector<uint8_t> frame) {
  if (full()) {
    ++push_rejects_;
    return false;
  }
  ++frames_pushed_;
  bytes_pushed_ += frame.size();
  queue_.push_back(std::move(frame));
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  return true;
}

Status UploadChannel::Restore(std::vector<std::vector<uint8_t>> frames,
                              const CounterState& counters) {
  if (frames.size() > capacity_) {
    return Status::InvalidArgument(
        "snapshot backlog exceeds this channel's capacity");
  }
  if (counters.frames_popped + frames.size() != counters.frames_pushed) {
    return Status::InvalidArgument(
        "snapshot channel counters inconsistent with its backlog");
  }
  if (counters.max_depth > capacity_ || frames.size() > counters.max_depth) {
    return Status::InvalidArgument(
        "snapshot channel high-water mark inconsistent");
  }
  queue_.assign(std::make_move_iterator(frames.begin()),
                std::make_move_iterator(frames.end()));
  frames_pushed_ = counters.frames_pushed;
  frames_popped_ = counters.frames_popped;
  push_rejects_ = counters.push_rejects;
  bytes_pushed_ = counters.bytes_pushed;
  max_depth_ = static_cast<size_t>(counters.max_depth);
  return Status::OK();
}

bool UploadChannel::TryPop(std::vector<uint8_t>* frame) {
  if (queue_.empty()) return false;
  *frame = std::move(queue_.front());
  queue_.pop_front();
  ++frames_popped_;
  return true;
}

}  // namespace incshrink
