#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/status.h"

namespace incshrink {

/// \brief Bounded, deterministic, in-process byte-frame channel — the
/// transport between a data owner and the two untrusted servers.
///
/// The interface is deliberately socket-shaped: opaque byte frames go in,
/// opaque byte frames come out, FIFO, with a public bounded buffer. Nothing
/// in this layer interprets frame contents, draws randomness, or consults
/// the clock, so a future TCP transport can replace the deque without
/// touching the engine — and the channel itself can never perturb a
/// deterministic run (tools/check_no_hidden_entropy.sh statically enforces
/// that src/net/ stays entropy-free).
///
/// Backpressure is public by design: `TryPush` refusing a frame reveals only
/// the queue depth, which is already a deterministic function of public
/// upload-policy schedules and the engine's drain cadence
/// (`max_batches_per_step`), never of record contents.
///
/// Threading: a channel is owned by one owner/engine pair and must be
/// accessed by at most one thread at a time (the fleet steps a tenant's
/// owners and engine inside a single task). Under that discipline the
/// push/pop sequence — and therefore every observable — is a pure function
/// of the driver's schedule.
class UploadChannel {
 public:
  /// \param capacity maximum queued frames; must be >= 1.
  explicit UploadChannel(size_t capacity);

  /// Enqueues a frame. Returns false — leaving the channel unchanged and
  /// counting a public backpressure event — when the buffer is full.
  bool TryPush(std::vector<uint8_t> frame);

  /// Dequeues the oldest frame into *frame. Returns false when empty.
  bool TryPop(std::vector<uint8_t>* frame);

  /// Records a public backpressure event observed by a sender that checked
  /// capacity *before* constructing its frame (frame construction has side
  /// effects — RNG draws, queue mutation — so owners probe first). Counts
  /// alongside the rejects TryPush records itself.
  void NoteBackpressure() { ++push_rejects_; }

  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }

  /// Public depth snapshot — the transport-side input to fleet scheduling
  /// (priorities must be computable from transport counters alone, never
  /// from frame contents). `high_water` is tracked at push time inside
  /// TryPush, so intra-round peaks under an owner lead are captured even
  /// when snapshots are only taken at round boundaries
  /// (tests/upload_channel_test.cc pins this against regressing to
  /// round-end sampling).
  struct DepthSnapshot {
    size_t depth = 0;       ///< frames currently queued
    size_t high_water = 0;  ///< lifetime peak depth, push-time accurate
  };
  DepthSnapshot Snapshot() const { return {queue_.size(), max_depth_}; }

  /// Lifetime counters (public transport statistics).
  uint64_t frames_pushed() const { return frames_pushed_; }
  uint64_t frames_popped() const { return frames_popped_; }
  uint64_t push_rejects() const { return push_rejects_; }
  uint64_t bytes_pushed() const { return bytes_pushed_; }
  /// High-water mark of the queue depth over the channel's lifetime.
  size_t max_depth() const { return max_depth_; }

  /// Checkpoint support: copies of the queued frames, oldest first. The
  /// backlog is public transport state (opaque frames already committed to
  /// the wire), so persisting it leaks nothing beyond the depth counters.
  std::vector<std::vector<uint8_t>> PendingFrames() const {
    return {queue_.begin(), queue_.end()};
  }

  /// Checkpoint-restore path: replaces the backlog and lifetime counters
  /// wholesale. Fails closed when the snapshot claims more queued frames
  /// than this channel's capacity admits, or counters that could not have
  /// produced the backlog (popped + queued != pushed).
  struct CounterState {
    uint64_t frames_pushed = 0;
    uint64_t frames_popped = 0;
    uint64_t push_rejects = 0;
    uint64_t bytes_pushed = 0;
    uint64_t max_depth = 0;
  };
  Status Restore(std::vector<std::vector<uint8_t>> frames,
                 const CounterState& counters);

 private:
  size_t capacity_;
  std::deque<std::vector<uint8_t>> queue_;
  uint64_t frames_pushed_ = 0;
  uint64_t frames_popped_ = 0;
  uint64_t push_rejects_ = 0;
  uint64_t bytes_pushed_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace incshrink
