#include "src/net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"
#include "src/storage/serialization.h"

#if defined(__linux__)
#include <sys/epoll.h>
#define INCSHRINK_HAVE_EPOLL 1
#else
#define INCSHRINK_HAVE_EPOLL 0
#endif

namespace incshrink {

namespace {

/// Marks a socket non-blocking (the whole transport is non-blocking; the
/// only waits are the poll/epoll timeouts).
Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: latency tuning only, never correctness.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketListener
// ---------------------------------------------------------------------------

struct SocketListener::Conn {
  Conn(uint64_t conn_id, int fd_in, uint32_t max_frame_bytes)
      : fd(fd_in), assembler(max_frame_bytes) {
    stats.conn_id = conn_id;
    stats.open = true;
  }

  int fd;
  ConnectionStats stats;
  FrameAssembler assembler;
  /// Frame extracted from the assembler whose channel was full; delivery is
  /// retried each sweep, and reads stay paused until it drains (this is how
  /// engine-side backpressure reaches the owner's socket).
  bool has_staged = false;
  WireFrame staged;
  UploadChannel* channel = nullptr;  ///< resolved from the hello
  bool in_event_set = false;         ///< registered for readiness events
  bool peer_closed = false;          ///< EOF seen; drain-then-close
  bool got_bytes_this_sweep = false;
};

SocketListener::SocketListener(std::vector<UploadChannel*> channels,
                               const SocketListenerOptions& options)
    : channels_(std::move(channels)), options_(options) {
  INCSHRINK_CHECK(!channels_.empty());
  for (UploadChannel* ch : channels_) INCSHRINK_CHECK(ch != nullptr);
#if !INCSHRINK_HAVE_EPOLL
  options_.use_epoll = false;
#endif
}

SocketListener::~SocketListener() { Close(); }

Status SocketListener::Bind(uint16_t port) {
  INCSHRINK_CHECK(listen_fd_ < 0);
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  INCSHRINK_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal("bind() failed");
  }
  if (listen(listen_fd_, 1024) != 0) return Status::Internal("listen() failed");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
#if INCSHRINK_HAVE_EPOLL
  if (options_.use_epoll) {
    epoll_fd_ = epoll_create1(0);
    if (epoll_fd_ < 0) return Status::Internal("epoll_create1() failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = UINT64_MAX;  // sentinel: the listening socket
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(listen) failed");
    }
  }
#endif
  return Status::OK();
}

void SocketListener::Close() {
  for (std::unique_ptr<Conn>& conn : conns_) {
    if (conn->fd >= 0) CloseConn(conn.get());
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

size_t SocketListener::open_connections() const {
  size_t n = 0;
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->fd >= 0) ++n;
  }
  return n;
}

std::vector<ConnectionStats> SocketListener::Stats() const {
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const std::unique_ptr<Conn>& conn : conns_) out.push_back(conn->stats);
  return out;
}

void SocketListener::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained the accept queue. Anything else: transient; the
      // next sweep retries.
      return;
    }
    if (open_connections() >= options_.max_connections) {
      ::close(fd);
      ++refused_;
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      ++refused_;
      continue;
    }
    SetNoDelay(fd);
    ++accepted_;
    conns_.push_back(
        std::make_unique<Conn>(accepted_, fd, options_.max_frame_bytes));
    Conn* conn = conns_.back().get();
#if INCSHRINK_HAVE_EPOLL
    if (epoll_fd_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conns_.size() - 1;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
        conn->in_event_set = true;
      }
    } else {
      conn->in_event_set = true;
    }
#else
    conn->in_event_set = true;
#endif
  }
}

void SocketListener::CloseConn(Conn* conn) {
  if (conn->fd < 0) return;
#if INCSHRINK_HAVE_EPOLL
  if (epoll_fd_ >= 0 && conn->in_event_set) {
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  }
#endif
  conn->in_event_set = false;
  ::close(conn->fd);
  conn->fd = -1;
  conn->stats.open = false;
  ++closed_;
}

void SocketListener::RejectConn(Conn* conn, const Status& why) {
  ++conn->stats.frames_rejected;
  ++rejected_;
  conn->stats.last_error = why.ToString();
  conn->has_staged = false;
  CloseConn(conn);
}

void SocketListener::DeliverBuffered(Conn* conn) {
  // Hello first: the connection names its destination channel before any
  // frame may flow.
  if (!conn->stats.hello_done) {
    uint32_t channel_id = 0;
    const Result<bool> hello = conn->assembler.TakeHello(&channel_id);
    if (!hello.ok()) {
      RejectConn(conn, hello.status());
      return;
    }
    if (!*hello) return;  // hello bytes still in flight
    if (channel_id >= channels_.size()) {
      RejectConn(conn, Status::InvalidArgument("unknown channel id"));
      return;
    }
    conn->stats.hello_done = true;
    conn->stats.channel_id = channel_id;
    conn->channel = channels_[channel_id];
  }
  for (;;) {
    if (conn->has_staged) {
      // Probe-before-push keeps the channel's own reject counter a pure
      // owner-side observable, exactly as in the in-process transport.
      if (conn->channel->full()) return;  // still paused
      INCSHRINK_CHECK(conn->channel->TryPush(std::move(conn->staged.payload)));
      conn->has_staged = false;
      conn->stats.last_seq = conn->staged.seq;
      ++conn->stats.frames_delivered;
      ++delivered_;
    }
    WireFrame frame;
    const Result<bool> got = conn->assembler.TakeFrame(&frame);
    if (!got.ok()) {
      RejectConn(conn, got.status());
      return;
    }
    if (!*got) break;  // need more bytes
    if (options_.validate_frames) {
      // The payload decoder is the bounds-checked DecodeUploadFrame: any
      // truncation, hostile dimension header or trailing garbage surfaces
      // here as a Status and costs the peer its connection.
      const Result<UploadFrame> decoded = DecodeUploadFrame(frame.payload);
      if (!decoded.ok()) {
        RejectConn(conn, decoded.status());
        return;
      }
    }
    conn->staged = std::move(frame);
    conn->has_staged = true;
  }
  // EOF after every buffered frame drained: a clean close, unless the peer
  // died mid-frame.
  if (conn->peer_closed && !conn->has_staged) {
    if (conn->assembler.buffered_bytes() > 0) {
      RejectConn(conn,
                 Status::InvalidArgument("connection closed mid-frame"));
    } else {
      CloseConn(conn);
    }
  }
}

void SocketListener::HandleReadable(Conn* conn) {
  uint8_t buf[65536];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->got_bytes_this_sweep = true;
      conn->stats.bytes_received += static_cast<uint64_t>(n);
      conn->assembler.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // Hard socket error (peer reset): close; not a protocol reject.
    conn->stats.last_error = "socket read error";
    CloseConn(conn);
    return;
  }
  DeliverBuffered(conn);
}

size_t SocketListener::PollOnce() {
  const uint64_t delivered_before = delivered_;
  // Retry paused deliveries first: channel space freed since the last sweep
  // is the only way a paused connection makes progress. (A connection with
  // an undrained staged frame keeps its fd open, even after peer EOF, until
  // the frame lands.)
  for (std::unique_ptr<Conn>& conn : conns_) {
    if (conn->fd >= 0 &&
        (conn->has_staged || conn->assembler.buffered_bytes() > 0 ||
         conn->peer_closed)) {
      DeliverBuffered(conn.get());
    }
    conn->got_bytes_this_sweep = false;
  }

#if INCSHRINK_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    // Paused connections (a staged frame waiting on channel space) leave
    // the event set so backpressure reaches the peer's kernel buffers;
    // everyone else (re)joins.
    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn* conn = conns_[i].get();
      if (conn->fd < 0) continue;
      const bool want = !conn->has_staged;
      if (want && !conn->in_event_set) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = i;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
          conn->in_event_set = true;
        }
      } else if (!want && conn->in_event_set) {
        (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
        conn->in_event_set = false;
      }
    }
    epoll_event events[128];
    for (;;) {
      const int n = epoll_wait(epoll_fd_, events, 128,
                               options_.poll_timeout_ms);  // net-timeout-ok
      if (n < 0 && errno == EINTR) continue;
      for (int i = 0; i < n; ++i) {
        if (events[i].data.u64 == UINT64_MAX) {
          AcceptPending();
        } else {
          Conn* conn = conns_[events[i].data.u64].get();
          if (conn->fd >= 0 && !conn->has_staged) HandleReadable(conn);
        }
      }
      break;
    }
  } else {
#endif
    std::vector<pollfd> fds;
    std::vector<Conn*> fd_conns;
    fds.push_back({listen_fd_, POLLIN, 0});
    fd_conns.push_back(nullptr);
    for (std::unique_ptr<Conn>& conn : conns_) {
      if (conn->fd >= 0 && !conn->has_staged) {
        fds.push_back({conn->fd, POLLIN, 0});
        fd_conns.push_back(conn.get());
      }
    }
    for (;;) {
      const int n = poll(fds.data(), fds.size(),
                         options_.poll_timeout_ms);  // net-timeout-ok
      if (n < 0 && errno == EINTR) continue;
      if (n > 0) {
        for (size_t i = 0; i < fds.size(); ++i) {
          if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          if (fd_conns[i] == nullptr) {
            AcceptPending();
          } else if (fd_conns[i]->fd >= 0) {
            HandleReadable(fd_conns[i]);
          }
        }
      }
      break;
    }
#if INCSHRINK_HAVE_EPOLL
  }
#endif

  // Idle accounting: consecutive byte-less sweeps, a deterministic function
  // of the driver's Poll schedule (never wall time). Paused connections are
  // exempt — they are waiting on the engine, not dead.
  if (options_.idle_poll_limit > 0) {
    for (std::unique_ptr<Conn>& conn : conns_) {
      if (conn->fd < 0) continue;
      if (conn->got_bytes_this_sweep || conn->has_staged) {
        conn->stats.idle_polls = 0;
      } else if (++conn->stats.idle_polls >= options_.idle_poll_limit) {
        conn->stats.last_error = "idle poll limit exceeded";
        CloseConn(conn.get());
      }
    }
  }
  return static_cast<size_t>(delivered_ - delivered_before);
}

size_t SocketListener::Poll() {
  INCSHRINK_CHECK(listen_fd_ >= 0);
  return PollOnce();
}

// ---------------------------------------------------------------------------
// SocketSender
// ---------------------------------------------------------------------------

SocketSender::SocketSender(const SocketSenderOptions& options)
    : options_(options),
      next_backoff_rounds_(options.reconnect_backoff_rounds) {}

SocketSender::~SocketSender() { CloseConn(); }

SocketSender::SocketSender(SocketSender&& other) noexcept
    : options_(other.options_),
      fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      channel_id_(other.channel_id_),
      next_seq_(other.next_seq_),
      frames_queued_(other.frames_queued_),
      outbuf_(std::move(other.outbuf_)),
      out_pos_(other.out_pos_),
      reconnect_attempts_(other.reconnect_attempts_),
      reconnect_successes_(other.reconnect_successes_),
      reconnect_rounds_waited_(other.reconnect_rounds_waited_),
      attempts_this_outage_(other.attempts_this_outage_),
      backoff_rounds_left_(other.backoff_rounds_left_),
      next_backoff_rounds_(other.next_backoff_rounds_),
      reconnect_gave_up_(other.reconnect_gave_up_) {
  other.fd_ = -1;
}

SocketSender& SocketSender::operator=(SocketSender&& other) noexcept {
  if (this == &other) return *this;
  CloseConn();
  options_ = other.options_;
  fd_ = other.fd_;
  host_ = std::move(other.host_);
  port_ = other.port_;
  channel_id_ = other.channel_id_;
  next_seq_ = other.next_seq_;
  frames_queued_ = other.frames_queued_;
  outbuf_ = std::move(other.outbuf_);
  out_pos_ = other.out_pos_;
  reconnect_attempts_ = other.reconnect_attempts_;
  reconnect_successes_ = other.reconnect_successes_;
  reconnect_rounds_waited_ = other.reconnect_rounds_waited_;
  attempts_this_outage_ = other.attempts_this_outage_;
  backoff_rounds_left_ = other.backoff_rounds_left_;
  next_backoff_rounds_ = other.next_backoff_rounds_;
  reconnect_gave_up_ = other.reconnect_gave_up_;
  other.fd_ = -1;
  return *this;
}

void SocketSender::ResetStream() {
  next_seq_ = 1;
  outbuf_.clear();
  out_pos_ = 0;
}

void SocketSender::CloseConn() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SocketSender::Connect(const std::string& host, uint16_t port,
                             uint32_t channel_id) {
  host_ = host;
  port_ = port;
  channel_id_ = channel_id;
  // An explicit dial starts a fresh outage cycle: the round-driven schedule
  // forgets any give-up verdict and backs off from the configured base again.
  attempts_this_outage_ = 0;
  backoff_rounds_left_ = 0;
  next_backoff_rounds_ = options_.reconnect_backoff_rounds;
  reconnect_gave_up_ = false;
  return Reconnect();
}

bool SocketSender::ReconnectRound() {
  if (connected()) return true;
  if (reconnect_gave_up_) return false;
  if (backoff_rounds_left_ > 0) {
    --backoff_rounds_left_;
    ++reconnect_rounds_waited_;
    return false;
  }
  ++reconnect_attempts_;
  ++attempts_this_outage_;
  if (Reconnect().ok()) {
    ++reconnect_successes_;
    attempts_this_outage_ = 0;
    next_backoff_rounds_ = options_.reconnect_backoff_rounds;
    return true;
  }
  if (attempts_this_outage_ >= options_.reconnect_max_attempts) {
    reconnect_gave_up_ = true;
    return false;
  }
  backoff_rounds_left_ = next_backoff_rounds_;
  const uint64_t doubled = static_cast<uint64_t>(next_backoff_rounds_) * 2;
  next_backoff_rounds_ = static_cast<uint32_t>(
      doubled > options_.reconnect_backoff_max_rounds
          ? options_.reconnect_backoff_max_rounds
          : doubled);
  return false;
}

Status SocketSender::Reconnect() {
  CloseConn();
  ResetStream();
  sockaddr_in addr = LoopbackAddr(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address");
  }
  Status last = Status::Internal("connect never attempted");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Status::Internal("socket() failed");
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      last = Status::Internal("fcntl(O_NONBLOCK) failed");
      continue;
    }
    int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      for (;;) {
        rc = poll(&pfd, 1, options_.connect_timeout_ms);  // net-timeout-ok
        if (rc < 0 && errno == EINTR) continue;
        break;
      }
      if (rc == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        rc = (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
              err == 0)
                 ? 0
                 : -1;
      } else {
        rc = -1;  // timeout
      }
    }
    if (rc != 0) {
      ::close(fd);
      last = Status::Internal("connect attempt failed");
      continue;
    }
    SetNoDelay(fd);
    fd_ = fd;
    // The hello rides the front of the stream; Flush sends it with the
    // first frame bytes.
    const std::vector<uint8_t> hello = EncodeHello(channel_id_);
    outbuf_.insert(outbuf_.end(), hello.begin(), hello.end());
    return Status::OK();
  }
  return last;
}

Status SocketSender::QueueFrame(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  AppendEnvelope(&outbuf_, next_seq_, payload);
  ++next_seq_;
  ++frames_queued_;
  return Status::OK();
}

Result<size_t> SocketSender::Flush() {
  if (fd_ < 0) return Status::FailedPrecondition("sender not connected");
  size_t written = 0;
  while (out_pos_ < outbuf_.size()) {
    const ssize_t n = send(fd_, outbuf_.data() + out_pos_,
                           outbuf_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn();
    return Status::Internal("socket write failed (peer closed?)");
  }
  if (out_pos_ == outbuf_.size()) {
    outbuf_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > 65536 && out_pos_ * 2 > outbuf_.size()) {
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<ptrdiff_t>(out_pos_));
    out_pos_ = 0;
  }
  return written;
}

}  // namespace incshrink
