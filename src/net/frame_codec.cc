#include "src/net/frame_codec.h"

#include <cstring>

#include "src/common/logging.h"

namespace incshrink {

namespace {

constexpr char kHelloMagic[4] = {'I', 'U', 'H', '1'};

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<uint8_t> EncodeHello(uint32_t channel_id) {
  std::vector<uint8_t> out;
  out.reserve(kHelloBytes);
  for (char c : kHelloMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU32(&out, channel_id);
  return out;
}

void AppendEnvelope(std::vector<uint8_t>* out, uint64_t seq,
                    const std::vector<uint8_t>& payload) {
  INCSHRINK_CHECK(!payload.empty());
  INCSHRINK_CHECK_LE(payload.size(), UINT32_MAX);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU64(out, seq);
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameAssembler::Feed(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void FrameAssembler::Compact() {
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

Result<bool> FrameAssembler::TakeHello(uint32_t* channel_id) {
  if (!poison_.ok()) return poison_;
  if (buffered_bytes() < kHelloBytes) return false;
  if (std::memcmp(buf_.data() + pos_, kHelloMagic, 4) != 0) {
    poison_ = Status::InvalidArgument("bad hello magic");
    return poison_;
  }
  *channel_id = ReadU32(buf_.data() + pos_ + 4);
  pos_ += kHelloBytes;
  Compact();
  return true;
}

Result<bool> FrameAssembler::TakeFrame(WireFrame* out) {
  if (!poison_.ok()) return poison_;
  if (buffered_bytes() < kEnvelopeBytes) return false;
  const uint8_t* head = buf_.data() + pos_;
  const uint32_t payload_len = ReadU32(head);
  // Validate the envelope before waiting for (or allocating) the payload: a
  // hostile length must neither OOM the server nor stall the stream.
  if (payload_len == 0) {
    poison_ = Status::InvalidArgument("zero-length frame payload");
    return poison_;
  }
  if (payload_len > max_frame_bytes_) {
    poison_ = Status::InvalidArgument("frame payload exceeds size limit");
    return poison_;
  }
  const uint64_t stamp = ReadU64(head + 4);
  if (stamp != next_seq_) {
    poison_ = Status::InvalidArgument("sequence stamp break");
    return poison_;
  }
  if (buffered_bytes() < kEnvelopeBytes + payload_len) return false;
  out->seq = stamp;
  out->payload.assign(head + kEnvelopeBytes,
                      head + kEnvelopeBytes + payload_len);
  pos_ += kEnvelopeBytes + payload_len;
  ++next_seq_;
  Compact();
  return true;
}

}  // namespace incshrink
