#include "src/secret/shared_rows.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

void SharedRows::AppendSecretRow(const std::vector<Word>& row, Rng* rng) {
  INCSHRINK_CHECK_EQ(row.size(), width_);
  for (Word v : row) {
    const WordShares s = ShareWord(v, rng);
    shares0_.push_back(s.s0);
    shares1_.push_back(s.s1);
  }
  ++rows_;
}

void SharedRows::AppendSharedRow(const std::vector<Word>& share0,
                                 const std::vector<Word>& share1) {
  INCSHRINK_CHECK_EQ(share0.size(), width_);
  INCSHRINK_CHECK_EQ(share1.size(), width_);
  shares0_.insert(shares0_.end(), share0.begin(), share0.end());
  shares1_.insert(shares1_.end(), share1.begin(), share1.end());
  ++rows_;
}

void SharedRows::AppendRowFrom(const SharedRows& src, size_t row) {
  INCSHRINK_CHECK_EQ(src.width_, width_);
  INCSHRINK_CHECK_LT(row, src.rows_);
  const size_t base = row * width_;
  shares0_.insert(shares0_.end(), src.shares0_.begin() + base,
                  src.shares0_.begin() + base + width_);
  shares1_.insert(shares1_.end(), src.shares1_.begin() + base,
                  src.shares1_.begin() + base + width_);
  ++rows_;
}

void SharedRows::AppendAll(const SharedRows& other) {
  INCSHRINK_CHECK_EQ(other.width_, width_);
  shares0_.insert(shares0_.end(), other.shares0_.begin(),
                  other.shares0_.end());
  shares1_.insert(shares1_.end(), other.shares1_.begin(),
                  other.shares1_.end());
  rows_ += other.rows_;
}

SharedRows SharedRows::SplitPrefix(size_t n) {
  n = std::min(n, rows_);
  SharedRows head(width_);
  const size_t words = n * width_;
  // One exact allocation per share array: prefix cuts run on every cache
  // read/flush, and assign()'s growth path may over- or re-allocate.
  head.Reserve(n);
  head.shares0_.insert(head.shares0_.end(), shares0_.begin(),
                       shares0_.begin() + words);
  head.shares1_.insert(head.shares1_.end(), shares1_.begin(),
                       shares1_.begin() + words);
  head.rows_ = n;
  shares0_.erase(shares0_.begin(), shares0_.begin() + words);
  shares1_.erase(shares1_.begin(), shares1_.begin() + words);
  rows_ -= n;
  return head;
}

void SharedRows::Clear() {
  shares0_.clear();
  shares1_.clear();
  rows_ = 0;
}

void SharedRows::Truncate(size_t n) {
  if (n >= rows_) return;
  shares0_.resize(n * width_);
  shares1_.resize(n * width_);
  rows_ = n;
}

std::vector<Word> SharedRows::RecoverRow(size_t i) const {
  INCSHRINK_CHECK_LT(i, rows_);
  std::vector<Word> out(width_);
  for (size_t c = 0; c < width_; ++c)
    out[c] = shares0_[i * width_ + c] ^ shares1_[i * width_ + c];
  return out;
}

Word SharedRows::RecoverAt(size_t row, size_t col) const {
  INCSHRINK_CHECK_LT(row, rows_);
  INCSHRINK_CHECK_LT(col, width_);
  return shares0_[row * width_ + col] ^ shares1_[row * width_ + col];
}

}  // namespace incshrink
