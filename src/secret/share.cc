#include "src/secret/share.h"

#include "src/common/logging.h"

namespace incshrink {

WordShares ShareWord(Word value, Rng* rng) {
  const Word mask = rng->Next32();
  return WordShares{mask, static_cast<Word>(value ^ mask)};
}

WordShares RerandomizeWord(const WordShares& shares, Rng* rng) {
  const Word mask = rng->Next32();
  return WordShares{static_cast<Word>(shares.s0 ^ mask),
                    static_cast<Word>(shares.s1 ^ mask)};
}

void ShareWords(const std::vector<Word>& values, Rng* rng,
                std::vector<Word>* out0, std::vector<Word>* out1) {
  out0->reserve(out0->size() + values.size());
  out1->reserve(out1->size() + values.size());
  for (Word v : values) {
    const WordShares s = ShareWord(v, rng);
    out0->push_back(s.s0);
    out1->push_back(s.s1);
  }
}

std::vector<Word> RecoverWords(const std::vector<Word>& shares0,
                               const std::vector<Word>& shares1) {
  INCSHRINK_CHECK_EQ(shares0.size(), shares1.size());
  std::vector<Word> out(shares0.size());
  for (size_t i = 0; i < shares0.size(); ++i) out[i] = shares0[i] ^ shares1[i];
  return out;
}

}  // namespace incshrink
