#include "src/secret/nparty.h"

#include <cmath>

#include "src/common/fixed_point.h"
#include "src/common/logging.h"

namespace incshrink {

std::vector<Word> ShareWordN(Word value, size_t n, Rng* rng) {
  INCSHRINK_CHECK_GE(n, 2u);
  std::vector<Word> shares(n);
  Word acc = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    shares[i] = rng->Next32();
    acc ^= shares[i];
  }
  shares[n - 1] = value ^ acc;
  return shares;
}

Word RecoverWordN(const std::vector<Word>& shares) {
  Word value = 0;
  for (Word s : shares) value ^= s;
  return value;
}

std::vector<Word> ReshareInsideMpcN(
    Word value, const std::vector<std::vector<Word>>& contributions) {
  const size_t n = contributions.size();
  INCSHRINK_CHECK_GE(n, 2u);
  // z^j = XOR_i z_i^j: the j-th mask folds one value from every party, so
  // it is uniform as long as any single party is honest (Appendix A.2
  // steps 4-5).
  std::vector<Word> shares(n);
  Word acc = 0;
  for (size_t j = 0; j + 1 < n; ++j) {
    Word mask = 0;
    for (size_t i = 0; i < n; ++i) {
      INCSHRINK_CHECK_EQ(contributions[i].size(), n - 1);
      mask ^= contributions[i][j];
    }
    shares[j] = mask;
    acc ^= mask;
  }
  shares[n - 1] = value ^ acc;
  return shares;
}

double JointLaplaceN(const std::vector<Word>& contributions, double scale) {
  INCSHRINK_CHECK_GE(contributions.size(), 2u);
  INCSHRINK_CHECK_GT(scale, 0.0);
  Word z = 0;
  for (Word c : contributions) z ^= c;
  const double r = FixedPointOpenUnit(z);
  return scale * std::log(r) * SignFromMsb(z);
}

}  // namespace incshrink
