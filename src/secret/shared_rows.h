#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/secret/share.h"

namespace incshrink {

/// \brief A secret-shared table of fixed-width rows over Z_2^32.
///
/// Each logical row is a block of `width` ring words; the two servers each
/// hold one XOR share of every word. This is the physical representation of
/// the paper's secure objects: the outsourced data DS, the secure cache
/// sigma, and the materialized view V.
///
/// The class itself performs no computation on secrets — all data-dependent
/// logic runs inside the simulated 2PC runtime (`Protocol2PC`), which
/// accesses the raw share arrays via `share_row0/1`.
class SharedRows {
 public:
  /// Creates an empty shared table whose rows are `width` words wide.
  explicit SharedRows(size_t width) : width_(width) {}

  size_t width() const { return width_; }
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Total bytes held across both servers (shares are 4 bytes/word/server).
  size_t TotalBytes() const { return rows_ * width_ * sizeof(Word) * 2; }

  /// Pre-sizes the share arrays for `rows` total rows so append-heavy paths
  /// (join union building, padded operator outputs) never reallocate
  /// mid-loop. Capacity only — size and contents are untouched.
  void Reserve(size_t rows) {
    shares0_.reserve(rows * width_);
    shares1_.reserve(rows * width_);
  }

  /// Shares the plaintext `row` (length == width) and appends it.
  void AppendSecretRow(const std::vector<Word>& row, Rng* rng);

  /// Appends a row given its two pre-computed share blocks.
  void AppendSharedRow(const std::vector<Word>& share0,
                       const std::vector<Word>& share1);

  /// Appends a copy of row `row` of `src` (widths must match) straight from
  /// its share arrays — no per-row temporaries.
  void AppendRowFrom(const SharedRows& src, size_t row);

  /// Appends all rows of `other` (widths must match).
  void AppendAll(const SharedRows& other);

  /// Moves the first `n` rows into a new SharedRows and drops them from this
  /// one (the cache-read "cut off the head of the sorted array" step).
  /// `n` is clamped to size().
  SharedRows SplitPrefix(size_t n);

  /// Drops all rows ("recycle the remaining array" during a cache flush).
  void Clear();

  /// Keeps only the first `n` rows.
  void Truncate(size_t n);

  /// Recovers the plaintext of row `i` (test/ideal-functionality use only).
  std::vector<Word> RecoverRow(size_t i) const;

  /// Recovers the word at (row, col).
  Word RecoverAt(size_t row, size_t col) const;

  /// Raw share access for the 2PC runtime. Index = row * width + col.
  Word* mutable_share0() { return shares0_.data(); }
  Word* mutable_share1() { return shares1_.data(); }
  const std::vector<Word>& shares0() const { return shares0_; }
  const std::vector<Word>& shares1() const { return shares1_; }

  Word share0_at(size_t row, size_t col) const {
    return shares0_[row * width_ + col];
  }
  Word share1_at(size_t row, size_t col) const {
    return shares1_[row * width_ + col];
  }
  void set_share0_at(size_t row, size_t col, Word v) {
    shares0_[row * width_ + col] = v;
  }
  void set_share1_at(size_t row, size_t col, Word v) {
    shares1_[row * width_ + col] = v;
  }

 private:
  size_t width_;
  size_t rows_ = 0;
  std::vector<Word> shares0_;
  std::vector<Word> shares1_;
};

}  // namespace incshrink
