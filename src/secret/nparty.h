#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/secret/share.h"

namespace incshrink {

/// \brief (N, N)-XOR secret sharing — the paper's multi-server extension
/// (Section 8 "Expanding to multiple servers", Appendix A.2).
///
/// Owners share each ring word to N >= 2 servers; all N shares are required
/// to recover, and any N-1 shares are jointly uniform, so the design
/// tolerates up to N-1 corrupted servers.

/// share(x) to n parties: n-1 uniform masks, the last share completes the
/// XOR. Requires n >= 2.
std::vector<Word> ShareWordN(Word value, size_t n, Rng* rng);

/// recover: XOR of all shares.
Word RecoverWordN(const std::vector<Word>& shares);

/// \brief In-MPC re-sharing with party-contributed randomness
/// (Appendix A.2): every party i contributes n-1 uniform values z_i^j; the
/// protocol folds them into per-share masks so that no coalition of n-1
/// parties can predict the remaining share.
///
/// `contributions[i]` holds party i's n-1 contributed values.
std::vector<Word> ReshareInsideMpcN(
    Word value, const std::vector<std::vector<Word>>& contributions);

/// \brief N-party joint Laplace noise (Section 8): each server contributes a
/// uniform ring element; the protocol XOR-folds all N into the fixed-point
/// seed, so one honest contributor suffices for unpredictability, and only
/// one noise instance is produced regardless of N.
double JointLaplaceN(const std::vector<Word>& contributions, double scale);

}  // namespace incshrink
