#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace incshrink {

/// Ring element of Z_m with m = 2^32 — the ring the paper's XOR-based
/// (2,2)-secret sharing operates over (Section 3).
using Word = uint32_t;

/// \brief A logical pair of XOR shares of one ring element.
///
/// Physically the two components live on different servers; this struct is
/// only materialized inside the simulated 2PC runtime (the "ideal
/// functionality") and in tests.
struct WordShares {
  Word s0 = 0;  ///< Share held by server S0.
  Word s1 = 0;  ///< Share held by server S1.

  bool operator==(const WordShares&) const = default;
};

/// share(x): samples x0 uniformly from Z_2^32, sets x1 = x XOR x0 (paper
/// Section 3). The caller supplies the randomness source so parties can
/// contribute their own randomness (Appendix A.2).
WordShares ShareWord(Word value, Rng* rng);

/// recover([x]): x = x0 XOR x1.
inline Word RecoverWord(const WordShares& shares) {
  return shares.s0 ^ shares.s1;
}

/// Re-randomizes a sharing without changing the secret: both shares are XORed
/// with the same fresh mask. Used when counters are re-shared after updates.
WordShares RerandomizeWord(const WordShares& shares, Rng* rng);

/// Shares every element of `values`, appending one share vector per party.
void ShareWords(const std::vector<Word>& values, Rng* rng,
                std::vector<Word>* out0, std::vector<Word>* out1);

/// Recovers a vector of secrets from aligned per-party share vectors.
/// The two inputs must have equal length.
std::vector<Word> RecoverWords(const std::vector<Word>& shares0,
                               const std::vector<Word>& shares1);

}  // namespace incshrink
