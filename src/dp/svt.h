#pragma once

#include <cstdint>

#include "src/common/rng.h"

namespace incshrink {

/// \brief Numeric Above Noisy Threshold (paper Algorithm 5).
///
/// The sparse-vector-technique core of sDPANT, in its plaintext (trusted)
/// form: observe a running count, fire when the noisy count crosses a noisy
/// threshold, then release a noisy value and refresh the threshold. Each
/// fire + release consumes (eps1 + eps2) where eps1 = eps2 = eps/2.
///
/// The secure protocol (`ShrinkAnt`) reproduces this logic with jointly
/// generated noise; this class backs the leakage-profile mechanism `M_ant`
/// and the statistical tests.
class NumericAboveNoisyThreshold {
 public:
  /// \param eps total privacy parameter per release cycle
  /// \param sensitivity query sensitivity Delta_f (the paper uses the
  ///        contribution bound b)
  /// \param threshold the public threshold theta
  NumericAboveNoisyThreshold(double eps, double sensitivity, double threshold,
                             Rng* rng);

  /// Feeds the current count. Returns true (and sets *release to the noisy
  /// count) when the noisy count crosses the noisy threshold; the threshold
  /// is refreshed and the caller is expected to reset its count.
  bool Observe(double count, double* release);

  double noisy_threshold() const { return noisy_threshold_; }
  uint64_t releases() const { return releases_; }

  /// Mutable SVT state for checkpointing (the noised threshold and the
  /// release counter; parameters and the Rng pointer are reconstructed from
  /// config). The threshold travels as raw IEEE-754 bits for exactness.
  struct State {
    uint64_t noisy_threshold_bits = 0;
    uint64_t releases = 0;
  };
  State ExportState() const;
  /// Overwrites the mutable state. Never draws: refreshing the threshold
  /// here would desynchronize the owner's policy stream.
  void RestoreState(const State& state);

 private:
  void RefreshThreshold();

  double eps1_;
  double eps2_;
  double sensitivity_;
  double threshold_;
  double noisy_threshold_ = 0;
  uint64_t releases_ = 0;
  Rng* rng_;
};

}  // namespace incshrink
