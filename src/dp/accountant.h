#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace incshrink {

/// \brief Event-level privacy accounting for the view update pipeline.
///
/// Implements the paper's composition story (Lemmas 1-2, Theorem 3):
///  * the truncated transformation is q-stable with q = b (each logical
///    update contributes at most `b` view rows over its lifetime);
///  * each Shrink release is (eps / b)-DP with respect to the cache contents
///    (Laplace scale b/eps has sensitivity-b numerators);
///  * releases touch disjoint sets of cached tuples (parallel composition),
///    so the overall leakage is eps-DP w.r.t. logical updates.
///
/// The accountant both reports the closed-form guarantee and *enforces* the
/// stability premise at runtime via a per-record contribution ledger: every
/// time a record is fed to Transform it is charged `omega`; a record whose
/// remaining budget is below `omega` must be retired. A charge that would
/// exceed `b` returns PrivacyBudgetExhausted — the invariant the proofs rely
/// on can therefore never be violated silently.
class PrivacyAccountant {
 public:
  /// \param eps   overall event-level privacy parameter
  /// \param b     lifetime contribution budget per record
  /// \param omega per-invocation truncation bound (charged per use)
  PrivacyAccountant(double eps, uint32_t b, uint32_t omega);

  double eps() const { return eps_; }
  uint32_t contribution_budget() const { return b_; }
  uint32_t omega() const { return omega_; }

  /// Remaining contribution budget of a record (b if never seen).
  uint32_t RemainingBudget(uint32_t rid) const;

  /// True iff the record can still be used as Transform input.
  bool CanParticipate(uint32_t rid) const {
    return RemainingBudget(rid) >= omega_;
  }

  /// Charges `omega` to the record for one Transform invocation
  /// ("as long as a record is used as input to Transform ... it is consumed
  /// with a fixed amount of budget equal to the truncation limit omega").
  Status ChargeParticipation(uint32_t rid);

  /// Records that `rows` real view rows were actually generated from the
  /// record (must never exceed the budget already charged).
  Status RecordContribution(uint32_t rid, uint32_t rows);

  /// Number of records ever charged.
  size_t tracked_records() const { return charged_.size(); }

  /// Total view-entry contributions recorded (across all records).
  uint64_t total_contributions() const { return total_contributions_; }

  /// The event-level epsilon guaranteed by the composition analysis: the
  /// mechanism releases are (eps/b)-DP over cache contents and the
  /// transformation is b-stable, so the product is eps (Lemma 2).
  double EventLevelEpsilon() const { return eps_; }

  /// User-level epsilon when one user owns at most `max_tuples_per_user`
  /// logical updates (group privacy).
  double UserLevelEpsilon(uint32_t max_tuples_per_user) const {
    return eps_ * static_cast<double>(max_tuples_per_user);
  }

  /// Laplace scale used by Shrink releases: b / eps.
  double ReleaseScale() const { return static_cast<double>(b_) / eps_; }

  /// One record's row in the serialized ledger.
  struct LedgerEntry {
    uint32_t rid = 0;
    uint32_t charged = 0;
    uint32_t contributed = 0;
  };

  /// Exports the full contribution ledger, sorted by rid so snapshot bytes
  /// are deterministic regardless of hash-map iteration order.
  std::vector<LedgerEntry> ExportLedger() const;

  /// Replaces the ledger wholesale from a snapshot. A restored accountant
  /// must resume with bit-exact remaining budget or the eps guarantee is
  /// silently broken, so this validates every entry against the invariants
  /// ChargeParticipation/RecordContribution enforce incrementally: charges
  /// never exceed b, contributions never exceed charges, rids are unique.
  /// A hostile ledger is rejected with InvalidArgument and the accountant
  /// is left unchanged.
  Status RestoreLedger(const std::vector<LedgerEntry>& entries);

 private:
  double eps_;
  uint32_t b_;
  uint32_t omega_;
  std::unordered_map<uint32_t, uint32_t> charged_;        // rid -> charged
  std::unordered_map<uint32_t, uint32_t> contributed_;    // rid -> rows
  uint64_t total_contributions_ = 0;
};

}  // namespace incshrink
