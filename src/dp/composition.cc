#include "src/dp/composition.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

double SequentialComposition(const std::vector<double>& epsilons) {
  double total = 0;
  for (double e : epsilons) {
    INCSHRINK_CHECK_GE(e, 0.0);
    total += e;
  }
  return total;
}

double ParallelComposition(const std::vector<double>& epsilons) {
  double worst = 0;
  for (double e : epsilons) {
    INCSHRINK_CHECK_GE(e, 0.0);
    worst = std::max(worst, e);
  }
  return worst;
}

double UserLevelEpsilon(double event_epsilon,
                        uint32_t max_updates_per_user) {
  INCSHRINK_CHECK_GE(max_updates_per_user, 1u);
  return event_epsilon * static_cast<double>(max_updates_per_user);
}

double StableTransformationEpsilon(double mechanism_epsilon, double q) {
  INCSHRINK_CHECK_GE(q, 0.0);
  return mechanism_epsilon * q;
}

double RecordLevelEpsilon(const std::vector<double>& stabilities,
                          const std::vector<double>& epsilons) {
  INCSHRINK_CHECK_EQ(stabilities.size(), epsilons.size());
  double total = 0;
  for (size_t i = 0; i < stabilities.size(); ++i) {
    total += stabilities[i] * epsilons[i];
  }
  return total;
}

}  // namespace incshrink
