#pragma once

#include <cstdint>

namespace incshrink {

/// \brief Closed-form utility bounds from the paper (Theorems 4, 5, 6 and
/// Corollary 11), used to pick cache-flush sizes and checked empirically by
/// the property-test suite.

/// Corollary 11: P[sum of k iid Lap(delta/eps) >= alpha] <= beta for
/// alpha = (2 delta / eps) sqrt(k log(1/beta)), valid when k >= 4 log(1/beta).
/// Returns that alpha.
double LaplaceSumTailBound(double delta, double eps, uint64_t k, double beta);

/// Theorem 4: with probability >= 1 - beta, the number of deferred tuples
/// after the k-th sDPTimer update is below this bound.
double TimerDeferredBound(double b, double eps, uint64_t k, double beta);

/// Theorem 5: bound on the number of *dummy* tuples inserted into the
/// materialized view after the k-th sDPTimer update, with flush interval f,
/// flush size s and update interval T.
double TimerDummyBound(double b, double eps, uint64_t k, double beta,
                       uint64_t T, uint64_t f, uint64_t s);

/// Theorem 6: bound on deferred data at time t under sDPANT
/// (O(16 b log(t) / eps) with the log(2/beta) slack made explicit).
double AntDeferredBound(double b, double eps, uint64_t t, double beta);

/// Theorem 6 (second part): bound on dummy tuples inserted into the view by
/// time t under sDPANT with flush interval f and flush size s.
double AntDummyBound(double b, double eps, uint64_t t, double beta,
                     uint64_t f, uint64_t s);

/// Minimum k for which the Theorem 4/Corollary 11 tail bound is valid.
uint64_t MinUpdatesForBound(double beta);

}  // namespace incshrink
