#pragma once

#include <cstdint>
#include <vector>

namespace incshrink {

/// \brief Differential-privacy composition calculators (paper Section 4.2
/// and Section 8).
///
/// IncShrink's guarantees are stated at event level (one logical update is
/// the protected secret); these helpers derive the guarantees quoted in the
/// paper for richer threat models:
///  * sequential composition — independent mechanisms over the same data
///    add their budgets (used for the DP-Sync + IncShrink composed system
///    and for the eps1/eps2 split inside sDPANT);
///  * parallel composition — mechanisms over disjoint data cost only the
///    maximum (used by M_timer's proof across disjoint intervals);
///  * group privacy — protecting a user owning up to l updates multiplies
///    the event-level budget by l.

/// Sequential composition: sum of budgets.
double SequentialComposition(const std::vector<double>& epsilons);

/// Parallel composition over disjoint inputs: maximum budget.
double ParallelComposition(const std::vector<double>& epsilons);

/// Event-level -> user-level epsilon for users owning at most
/// `max_updates_per_user` logical updates (Section 4.2).
double UserLevelEpsilon(double event_epsilon, uint32_t max_updates_per_user);

/// The q-stable transformation rule (Lemma 2): an eps-DP mechanism applied
/// to the output of a q-stable transformation is (q * eps)-DP on the input.
double StableTransformationEpsilon(double mechanism_epsilon, double q);

/// Theorem 3's composed bound: given per-invocation stability q_i and
/// mechanism budgets eps_i for every invocation a record can influence,
/// the record-level loss is sum_i q_i * eps_i. Returns that sum.
double RecordLevelEpsilon(const std::vector<double>& stabilities,
                          const std::vector<double>& epsilons);

/// \brief Accounts the full IncShrink deployment budget:
/// event-level view-update eps, optional owner-policy eps (DP-Sync), and a
/// user-level multiplier.
struct DeploymentBudget {
  double view_update_eps = 1.5;  ///< eps of the Shrink leakage profile
  double owner_policy_eps = 0;   ///< eps1 of the record-sync policy (0=fixed)
  uint32_t max_updates_per_user = 1;

  /// Event-level epsilon of the composed system (Section 8).
  double EventLevel() const {
    return SequentialComposition({view_update_eps, owner_policy_eps});
  }
  /// User-level epsilon via group privacy.
  double UserLevel() const {
    return UserLevelEpsilon(EventLevel(), max_updates_per_user);
  }
};

}  // namespace incshrink
