#include "src/dp/mechanisms.h"

#include "src/common/logging.h"
#include "src/dp/laplace.h"

namespace incshrink {

TimerLeakageMechanism::TimerLeakageMechanism(double eps, double b, uint64_t T,
                                             Rng* rng)
    : scale_(b / eps), T_(T), rng_(rng) {
  INCSHRINK_CHECK_GT(T, 0u);
}

LeakageRelease TimerLeakageMechanism::Step(uint32_t new_entries) {
  ++t_;
  window_count_ += new_entries;
  LeakageRelease rel{t_, 0, false};
  if (t_ % T_ == 0) {
    rel.fired = true;
    rel.size = NoisyNonNegativeCount(
        static_cast<uint32_t>(window_count_), scale_, rng_);
    window_count_ = 0;
    ++updates_;
  }
  return rel;
}

AntLeakageMechanism::AntLeakageMechanism(double eps, double b, double theta,
                                         Rng* rng)
    : svt_(eps, b, theta, rng) {}

LeakageRelease AntLeakageMechanism::Step(uint32_t new_entries) {
  ++t_;
  running_count_ += new_entries;
  LeakageRelease rel{t_, 0, false};
  double release = 0;
  if (svt_.Observe(static_cast<double>(running_count_), &release)) {
    rel.fired = true;
    rel.size = ClampRoundNonNegative(release);
    running_count_ = 0;
    ++updates_;
  }
  return rel;
}

}  // namespace incshrink
