#include "src/dp/bounds.h"

#include <cmath>

#include "src/common/logging.h"

namespace incshrink {

double LaplaceSumTailBound(double delta, double eps, uint64_t k,
                           double beta) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  INCSHRINK_CHECK_GT(beta, 0.0);
  INCSHRINK_CHECK_LT(beta, 1.0);
  return 2.0 * delta / eps *
         std::sqrt(static_cast<double>(k) * std::log(1.0 / beta));
}

double TimerDeferredBound(double b, double eps, uint64_t k, double beta) {
  return LaplaceSumTailBound(b, eps, k, beta);
}

double TimerDummyBound(double b, double eps, uint64_t k, double beta,
                       uint64_t T, uint64_t f, uint64_t s) {
  INCSHRINK_CHECK_GT(f, 0u);
  const double flushes = static_cast<double>(k * T) / static_cast<double>(f);
  return LaplaceSumTailBound(b, eps, k, beta) +
         static_cast<double>(s) * flushes;
}

double AntDeferredBound(double b, double eps, uint64_t t, double beta) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  const double lt = std::log(std::max<double>(2.0, static_cast<double>(t)));
  return 16.0 * b * (lt + std::log(2.0 / beta)) / eps;
}

double AntDummyBound(double b, double eps, uint64_t t, double beta,
                     uint64_t f, uint64_t s) {
  INCSHRINK_CHECK_GT(f, 0u);
  return AntDeferredBound(b, eps, t, beta) +
         static_cast<double>(s) * std::floor(static_cast<double>(t) /
                                             static_cast<double>(f));
}

uint64_t MinUpdatesForBound(double beta) {
  return static_cast<uint64_t>(std::ceil(4.0 * std::log(1.0 / beta)));
}

}  // namespace incshrink
