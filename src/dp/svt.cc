#include "src/dp/svt.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/dp/laplace.h"

namespace incshrink {

NumericAboveNoisyThreshold::NumericAboveNoisyThreshold(double eps,
                                                       double sensitivity,
                                                       double threshold,
                                                       Rng* rng)
    : eps1_(eps / 2), eps2_(eps / 2), sensitivity_(sensitivity),
      threshold_(threshold), rng_(rng) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  INCSHRINK_CHECK_GT(sensitivity, 0.0);
  RefreshThreshold();
}

void NumericAboveNoisyThreshold::RefreshThreshold() {
  // theta~ = theta + Lap(2 * Delta / eps1)   (Alg. 5 line 2 / Alg. 3 line 2)
  noisy_threshold_ =
      threshold_ + SampleLaplace(rng_, 2.0 * sensitivity_ / eps1_);
}

NumericAboveNoisyThreshold::State NumericAboveNoisyThreshold::ExportState()
    const {
  State state;
  std::memcpy(&state.noisy_threshold_bits, &noisy_threshold_,
              sizeof(state.noisy_threshold_bits));
  state.releases = releases_;
  return state;
}

void NumericAboveNoisyThreshold::RestoreState(const State& state) {
  std::memcpy(&noisy_threshold_, &state.noisy_threshold_bits,
              sizeof(noisy_threshold_));
  releases_ = state.releases;
}

bool NumericAboveNoisyThreshold::Observe(double count, double* release) {
  // c~ = c + Lap(4 * Delta / eps1)           (Alg. 5 line 4)
  const double noisy_count =
      count + SampleLaplace(rng_, 4.0 * sensitivity_ / eps1_);
  if (noisy_count < noisy_threshold_) return false;
  // Release c + Lap(2 * Delta / eps2) and refresh the threshold.
  *release = count + SampleLaplace(rng_, 2.0 * sensitivity_ / eps2_);
  ++releases_;
  RefreshThreshold();
  return true;
}

}  // namespace incshrink
