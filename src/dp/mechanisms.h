#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/dp/svt.h"

namespace incshrink {

/// \brief Leakage-profile mechanisms M_timer / M_ant (paper Section 6).
///
/// These are the *trusted-curator* DP mechanisms whose outputs, by
/// Theorems 7 and 8, suffice to simulate everything an admissible adversary
/// observes during protocol execution. They consume the stream of true
/// per-step new-view-entry counts and emit the sequence {(t, v_t)} of
/// released batch sizes. The structural SIM-CDP test feeds these into the
/// Table-1 simulator and compares against the real protocol transcript.

/// One released observation.
struct LeakageRelease {
  uint64_t t = 0;      ///< time step
  uint32_t size = 0;   ///< released (noisy) batch size; 0 = no update
  bool fired = false;  ///< whether an update was posted at t
};

/// M_timer: every T steps, release count(new entries in (t-T, t]) + Lap(b/eps).
class TimerLeakageMechanism {
 public:
  TimerLeakageMechanism(double eps, double b, uint64_t T, Rng* rng);

  /// Feeds the number of real view entries generated at step t (in order).
  /// Returns the release for this step.
  LeakageRelease Step(uint32_t new_entries);

  uint64_t updates() const { return updates_; }

 private:
  double scale_;
  uint64_t T_;
  Rng* rng_;
  uint64_t t_ = 0;
  uint64_t window_count_ = 0;
  uint64_t updates_ = 0;
};

/// M_ant: SVT over the running count since the last update; on firing,
/// releases a noisy count and resets (paper Theorem 8 / Algorithm 5).
class AntLeakageMechanism {
 public:
  AntLeakageMechanism(double eps, double b, double theta, Rng* rng);

  LeakageRelease Step(uint32_t new_entries);

  uint64_t updates() const { return updates_; }

 private:
  NumericAboveNoisyThreshold svt_;
  uint64_t t_ = 0;
  uint64_t running_count_ = 0;
  uint64_t updates_ = 0;
};

/// Convenience: runs a mechanism over a whole count stream.
template <typename Mechanism>
std::vector<LeakageRelease> RunLeakageMechanism(
    Mechanism* mech, const std::vector<uint32_t>& per_step_new_entries) {
  std::vector<LeakageRelease> out;
  out.reserve(per_step_new_entries.size());
  for (uint32_t c : per_step_new_entries) out.push_back(mech->Step(c));
  return out;
}

}  // namespace incshrink
