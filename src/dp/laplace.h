#pragma once

#include <cstdint>

#include "src/common/rng.h"

namespace incshrink {

/// \brief Classic (trusted-curator) Laplace mechanism utilities.
///
/// The protocol itself uses `Protocol2PC::JointLaplace` so that neither
/// server controls the randomness; this header provides the plain sampler
/// (used by leakage-profile mechanisms and tests) plus distribution helpers.

/// Samples Lap(0, scale).
double SampleLaplace(Rng* rng, double scale);

/// CDF of Lap(0, scale) at x.
double LaplaceCdf(double x, double scale);

/// Adds Lap(scale) noise to `value` and rounds to the nearest non-negative
/// integer (counts can never be negative). This is how Shrink converts the
/// noisy cardinality into a read size.
uint32_t NoisyNonNegativeCount(uint32_t value, double scale, Rng* rng);

/// Rounds a real-valued noisy count to a non-negative integer (shared by the
/// joint-noise path).
uint32_t ClampRoundNonNegative(double x);

}  // namespace incshrink
