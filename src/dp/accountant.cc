#include "src/dp/accountant.h"

#include "src/common/logging.h"

namespace incshrink {

PrivacyAccountant::PrivacyAccountant(double eps, uint32_t b, uint32_t omega)
    : eps_(eps), b_(b), omega_(omega) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  INCSHRINK_CHECK_GT(b, 0u);
  INCSHRINK_CHECK_GT(omega, 0u);
  INCSHRINK_CHECK_LE(omega, b);
}

uint32_t PrivacyAccountant::RemainingBudget(uint32_t rid) const {
  const auto it = charged_.find(rid);
  const uint32_t used = it == charged_.end() ? 0 : it->second;
  return used >= b_ ? 0 : b_ - used;
}

Status PrivacyAccountant::ChargeParticipation(uint32_t rid) {
  uint32_t& used = charged_[rid];
  if (used + omega_ > b_) {
    return Status::PrivacyBudgetExhausted(
        "record " + std::to_string(rid) + " has budget " +
        std::to_string(b_ - used) + " < omega " + std::to_string(omega_));
  }
  used += omega_;
  return Status::OK();
}

Status PrivacyAccountant::RecordContribution(uint32_t rid, uint32_t rows) {
  uint32_t& rows_so_far = contributed_[rid];
  const auto it = charged_.find(rid);
  const uint32_t charged = it == charged_.end() ? 0 : it->second;
  if (rows_so_far + rows > charged) {
    return Status::Internal(
        "record " + std::to_string(rid) + " contributed " +
        std::to_string(rows_so_far + rows) + " rows but was only charged " +
        std::to_string(charged));
  }
  rows_so_far += rows;
  total_contributions_ += rows;
  return Status::OK();
}

}  // namespace incshrink
