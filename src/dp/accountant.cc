#include "src/dp/accountant.h"

#include <algorithm>

#include "src/common/logging.h"

namespace incshrink {

PrivacyAccountant::PrivacyAccountant(double eps, uint32_t b, uint32_t omega)
    : eps_(eps), b_(b), omega_(omega) {
  INCSHRINK_CHECK_GT(eps, 0.0);
  INCSHRINK_CHECK_GT(b, 0u);
  INCSHRINK_CHECK_GT(omega, 0u);
  INCSHRINK_CHECK_LE(omega, b);
}

uint32_t PrivacyAccountant::RemainingBudget(uint32_t rid) const {
  const auto it = charged_.find(rid);
  const uint32_t used = it == charged_.end() ? 0 : it->second;
  return used >= b_ ? 0 : b_ - used;
}

Status PrivacyAccountant::ChargeParticipation(uint32_t rid) {
  uint32_t& used = charged_[rid];
  if (used + omega_ > b_) {
    return Status::PrivacyBudgetExhausted(
        "record " + std::to_string(rid) + " has budget " +
        std::to_string(b_ - used) + " < omega " + std::to_string(omega_));
  }
  used += omega_;
  return Status::OK();
}

Status PrivacyAccountant::RecordContribution(uint32_t rid, uint32_t rows) {
  uint32_t& rows_so_far = contributed_[rid];
  const auto it = charged_.find(rid);
  const uint32_t charged = it == charged_.end() ? 0 : it->second;
  if (rows_so_far + rows > charged) {
    return Status::Internal(
        "record " + std::to_string(rid) + " contributed " +
        std::to_string(rows_so_far + rows) + " rows but was only charged " +
        std::to_string(charged));
  }
  rows_so_far += rows;
  total_contributions_ += rows;
  return Status::OK();
}

std::vector<PrivacyAccountant::LedgerEntry> PrivacyAccountant::ExportLedger()
    const {
  std::vector<LedgerEntry> out;
  out.reserve(charged_.size());
  for (const auto& [rid, charged] : charged_) {
    const auto it = contributed_.find(rid);
    out.push_back({rid, charged, it == contributed_.end() ? 0 : it->second});
  }
  // A contribution without a charge is impossible live (RecordContribution
  // rejects rows > charged, and charged==0 forces rows==0), but a zero-row
  // contributed_ entry can exist; it carries no state worth persisting.
  std::sort(out.begin(), out.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return a.rid < b.rid;
            });
  return out;
}

Status PrivacyAccountant::RestoreLedger(
    const std::vector<LedgerEntry>& entries) {
  // Validate the whole ledger before touching any member: restore is atomic.
  for (size_t i = 0; i < entries.size(); ++i) {
    const LedgerEntry& e = entries[i];
    if (i > 0 && entries[i - 1].rid >= e.rid) {
      return Status::InvalidArgument(
          "snapshot ledger rids not strictly increasing");
    }
    if (e.charged > b_) {
      return Status::InvalidArgument(
          "snapshot ledger charges record " + std::to_string(e.rid) +
          " beyond its lifetime budget");
    }
    if (e.contributed > e.charged) {
      return Status::InvalidArgument(
          "snapshot ledger record " + std::to_string(e.rid) +
          " contributed more rows than it was charged");
    }
  }
  charged_.clear();
  contributed_.clear();
  total_contributions_ = 0;
  for (const LedgerEntry& e : entries) {
    charged_[e.rid] = e.charged;
    if (e.contributed > 0) contributed_[e.rid] = e.contributed;
    total_contributions_ += e.contributed;
  }
  return Status::OK();
}

}  // namespace incshrink
