#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dp/mechanisms.h"
#include "src/dp/transcript.h"

namespace incshrink {

/// \brief Public parameters available to the SIM-CDP simulator (paper
/// Table 1): everything here is data-independent.
struct SimulatorPublicParams {
  /// Rows per owner upload at step t (C_r; fixed-size padded batches).
  std::function<uint64_t(uint64_t t)> upload_rows;
  /// Rows Transform appends to the cache at step t — a function of public
  /// constants only (omega, batch sizes, window length).
  std::function<uint64_t(uint64_t t)> transform_rows;
  uint64_t flush_interval = 0;  ///< f; 0 disables flushing
  uint64_t flush_size = 0;      ///< s
};

/// \brief The p.p.t. simulator S of Theorem 7/8 (paper Table 1), restricted
/// to the structural part of the transcript.
///
/// Given only the leakage mechanism's outputs {(t, v_t)} and public
/// parameters, reproduces the exact sequence of observable events (kinds,
/// times and sizes) of a real protocol run. The test suite asserts equality
/// with the transcript logged by the real engine — the executable core of
/// the paper's indistinguishability argument (share payloads on both sides
/// are uniformly random by the security of (2,2)-XOR sharing).
Transcript SimulateTranscript(const std::vector<LeakageRelease>& releases,
                              const SimulatorPublicParams& pp);

}  // namespace incshrink
