#include "src/dp/laplace.h"

#include <cmath>

#include "src/common/logging.h"

namespace incshrink {

double SampleLaplace(Rng* rng, double scale) {
  INCSHRINK_CHECK_GT(scale, 0.0);
  return rng->Laplace(scale);
}

double LaplaceCdf(double x, double scale) {
  if (x < 0) return 0.5 * std::exp(x / scale);
  return 1.0 - 0.5 * std::exp(-x / scale);
}

uint32_t ClampRoundNonNegative(double x) {
  if (std::isnan(x) || x <= 0.0) return 0;
  return static_cast<uint32_t>(std::llround(x));
}

uint32_t NoisyNonNegativeCount(uint32_t value, double scale, Rng* rng) {
  return ClampRoundNonNegative(static_cast<double>(value) +
                               SampleLaplace(rng, scale));
}

}  // namespace incshrink
