#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace incshrink {

/// \brief One observable event of the view-update protocol.
///
/// This is exactly what an admissible adversary (one corrupted server) sees
/// beyond uniformly random shares: the timing and *size* of each secure
/// array that crosses the protocol boundary. Payloads never appear here —
/// the security argument is that sizes alone (which are DP by Theorems 7/8)
/// suffice to reproduce the whole transcript structure.
struct TranscriptEvent {
  enum class Kind : uint8_t {
    kUpload,        ///< owners provision a (padded) batch of shared rows
    kTransformOut,  ///< Transform appends padded view entries to the cache
    kSync,          ///< Shrink moves a DP-sized prefix into the view
    kFlush,         ///< cache flush moves a fixed prefix and recycles sigma
  };

  Kind kind;
  uint64_t t;     ///< time step
  uint64_t rows;  ///< observable number of shared rows moved

  bool operator==(const TranscriptEvent&) const = default;
};

using Transcript = std::vector<TranscriptEvent>;

/// Renders an event kind for test failure messages.
const char* TranscriptKindName(TranscriptEvent::Kind kind);

}  // namespace incshrink
