#include "src/dp/simulator.h"

#include <algorithm>

#include "src/dp/transcript.h"

namespace incshrink {

const char* TranscriptKindName(TranscriptEvent::Kind kind) {
  switch (kind) {
    case TranscriptEvent::Kind::kUpload:
      return "Upload";
    case TranscriptEvent::Kind::kTransformOut:
      return "TransformOut";
    case TranscriptEvent::Kind::kSync:
      return "Sync";
    case TranscriptEvent::Kind::kFlush:
      return "Flush";
  }
  return "Unknown";
}

Transcript SimulateTranscript(const std::vector<LeakageRelease>& releases,
                              const SimulatorPublicParams& pp) {
  Transcript out;
  uint64_t cache_rows = 0;  // public: padded sizes only
  for (const LeakageRelease& rel : releases) {
    const uint64_t t = rel.t;
    // 2.i: B1 — the owner-uploaded batch (size C_r, public).
    out.push_back({TranscriptEvent::Kind::kUpload, t, pp.upload_rows(t)});
    // 2.i/2.ii: B2 — the padded Transform output appended to the cache.
    const uint64_t produced = pp.transform_rows(t);
    out.push_back({TranscriptEvent::Kind::kTransformOut, t, produced});
    cache_rows += produced;
    // 2.ii/2.iii: B3 — the synchronized batch, |B3| = v_t (clamped to the
    // public cache size exactly as the real cache read clamps).
    if (rel.fired) {
      const uint64_t sync = std::min<uint64_t>(rel.size, cache_rows);
      out.push_back({TranscriptEvent::Kind::kSync, t, sync});
      cache_rows -= sync;
    }
    // 2.iv: cache flush — fixed-size fetch, remainder recycled.
    if (pp.flush_interval > 0 && t % pp.flush_interval == 0) {
      const uint64_t flushed = std::min<uint64_t>(pp.flush_size, cache_rows);
      out.push_back({TranscriptEvent::Kind::kFlush, t, flushed});
      cache_rows = 0;
    }
  }
  return out;
}

}  // namespace incshrink
